package cdrstoch

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// multigrid cycle kind, the smoothing budget per level, the depth of the
// coarsening hierarchy, and the Krylov alternative to aggregation. Each
// reports cycles/sweeps alongside time so the convergence-vs-work
// trade-off is visible in one run.

import (
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/multigrid"
)

func scaledModel(b *testing.B, refine int) *core.Model {
	b.Helper()
	spec, err := experiments.ScaledSpec(refine)
	if err != nil {
		b.Fatal(err)
	}
	return buildOrFatal(b, spec)
}

// BenchmarkAblationCycleKind compares V- and W-cycles at equal smoothing.
func BenchmarkAblationCycleKind(b *testing.B) {
	m := scaledModel(b, 2)
	for _, tc := range []struct {
		name string
		kind multigrid.CycleKind
	}{
		{"vcycle", multigrid.VCycle},
		{"wcycle", multigrid.WCycle},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parts, err := m.Hierarchy(4)
				if err != nil {
					b.Fatal(err)
				}
				s, err := multigrid.New(m.P, parts,
					multigrid.Config{Tol: 1e-10, PreSmooth: 2, PostSmooth: 2, Cycle: tc.kind})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(nil)
				if err != nil || !res.Converged {
					b.Fatalf("%v %v", err, res)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationSmoothing varies the Gauss–Seidel sweeps per level.
func BenchmarkAblationSmoothing(b *testing.B) {
	m := scaledModel(b, 2)
	for _, sweeps := range []int{1, 2, 4} {
		name := map[int]string{1: "smooth1", 2: "smooth2", 4: "smooth4"}[sweeps]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parts, err := m.Hierarchy(4)
				if err != nil {
					b.Fatal(err)
				}
				s, err := multigrid.New(m.P, parts, multigrid.Config{
					Tol: 1e-10, PreSmooth: sweeps, PostSmooth: sweeps, Cycle: multigrid.WCycle,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(nil)
				if err != nil || !res.Converged {
					b.Fatalf("%v %v", err, res)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationHierarchyDepth varies where the phase coarsening stops.
func BenchmarkAblationHierarchyDepth(b *testing.B) {
	m := scaledModel(b, 2)
	for _, minSeg := range []int{2, 4, 8} {
		name := map[int]string{2: "minseg2", 4: "minseg4", 8: "minseg8"}[minSeg]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := m.Solve(core.SolveOptions{
					MinSegLen: minSeg,
					Multigrid: multigrid.Config{Tol: 1e-10, PreSmooth: 2, PostSmooth: 2, Cycle: multigrid.WCycle},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(a.Multigrid.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationGMRESRestart varies the Krylov subspace size of the
// GMRES alternative.
func BenchmarkAblationGMRESRestart(b *testing.B) {
	m := scaledModel(b, 2)
	ch, err := m.Chain()
	if err != nil {
		b.Fatal(err)
	}
	for _, restart := range []int{10, 30, 60} {
		name := map[int]string{10: "m10", 30: "m30", 60: "m60"}[restart]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := ch.StationaryGMRES(markov.GMRESOptions{
					Tol: 1e-10, Restart: restart, MaxIter: 200000,
				})
				if err != nil || !res.Converged {
					b.Fatalf("%v %+v", err, res)
				}
				b.ReportMetric(float64(res.Iterations), "matvecs")
			}
		})
	}
}

// BenchmarkBathtub measures the post-solve measure extraction: a 65-point
// bathtub curve plus the eye opening at 1e-9.
func BenchmarkBathtub(b *testing.B) {
	m := buildOrFatal(b, experiments.Fig5Spec(8))
	a, err := m.Solve(core.SolveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Bathtub(a.Pi, 65); err != nil {
			b.Fatal(err)
		}
		if _, err := m.EyeOpening(a.Pi, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBoundaryModel compares the saturating and wrapping
// boundary treatments of the phase grid: build + solve + slip measure.
func BenchmarkAblationBoundaryModel(b *testing.B) {
	for _, wrap := range []bool{false, true} {
		name := "saturate"
		if wrap {
			name = "wrap"
		}
		b.Run(name, func(b *testing.B) {
			spec := experiments.Fig5Spec(8)
			spec.WrapPhase = wrap
			for i := 0; i < b.N; i++ {
				m, err := core.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				a, err := m.Solve(core.SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if wrap {
					rate, _, err := m.WrapSlipRate(a.Pi)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rate, "slip-rate")
				} else {
					stats, err := m.SlipStats(a.Pi)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(stats.Flux, "slip-rate")
				}
				b.ReportMetric(a.BER, "BER")
			}
		})
	}
}

// BenchmarkFrameErrorRate measures the exact frame-survival propagation
// over an STS-1 frame.
func BenchmarkFrameErrorRate(b *testing.B) {
	m := buildOrFatal(b, experiments.Fig5Spec(8))
	a, err := m.Solve(core.SolveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FrameErrorRate(a.Pi, 810*8); err != nil {
			b.Fatal(err)
		}
	}
}
