module cdrstoch

go 1.22
