#!/bin/sh
# ci.sh — the tier-1+ gate for cdrstoch.
#
# Tier 1 (the seed's contract) is `go build ./... && go test ./...`.
# This script is the stricter gate run before merging: it adds vet, the
# race detector, and a one-iteration benchmark smoke so the benchmark
# harness (and the BenchmarkStationary allocation baseline for the obs
# layer) cannot silently rot. Run it from the repository root:
#
#     ./ci.sh
#
# It needs only the Go toolchain — no external dependencies.
#
#     ./ci.sh chaos
#
# runs only the chaos stage (the fault-injection suite under -race,
# replayed across a fixed seed matrix). The suite self-skips under
# `go test -short`, so short CI legs stay fast automatically.
set -eu

# chaos_stage replays the deterministic fault-injection suite (storms at
# every seam: solver entry, cache insert/evict, singleflight leader,
# job dequeue, cycle boundaries) across a fixed seed matrix, under the
# race detector. Seeds are pinned so a CI failure reproduces locally
# with the printed CDR_FAULTS_SEED.
chaos_stage() {
    echo "== chaos (fault-injection suite, -race, seed matrix) =="
    for seed in 1 7 42; do
        echo "-- CDR_FAULTS_SEED=$seed"
        CDR_FAULTS_SEED="$seed" go test -race -count=1 ./internal/faults
        CDR_FAULTS_SEED="$seed" go test -race -count=1 \
            -run 'Chaos|CachedLeaderDeath|LeaderPanic|JobsShed|SubmitCloseRace|RequestTimeout' \
            ./internal/serve
    done
}

if [ "${1:-}" = "chaos" ]; then
    chaos_stage
    echo "== ci.sh: chaos gate passed =="
    exit 0
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

chaos_stage

echo "== metrics lint (every name survives Prometheus sanitization, no collisions) =="
go test -count=1 -run 'TestServerMetricsSurviveLint|TestLintMetrics' \
    ./internal/serve ./internal/obs
go test -count=1 -run 'TestRuntimeCollectorPoll' ./internal/obs/cost
# The progress/watchdog metric families (progress.*, watchdog.*) are
# touched eagerly at tracker construction, so this lint sees them all.
go test -count=1 -run 'TestTrackerMetricsSurviveLint' ./internal/obs/progress

echo "== cost accounting allocs (zero-alloc kernel hot path, -race) =="
go test -race -count=1 \
    -run 'TestPoolKernelsAllocFree|TestPoolMulVecsAllocFree|TestPoolMulVecsBitIdentical' \
    ./internal/spmat

echo "== kron backend parity (matrix-free vs explicit, -race) =="
# The matrix-free Kronecker backend must agree with the explicit CSR
# backend at every layer it plugs into: the shuffle kernels against the
# materialized matrix (including the parallel split), the operator-backed
# markov solvers, the implicit-fine-level multigrid, the core analysis,
# the FSM synchronous product, and the HTTP backend selector end to end.
go test -race -count=1 \
    -run 'TestParallelShuffleMatchesSerial|TestStructuralSurfaceMatchesMaterialized|TestDescriptorMatchesFSMProduct|TestUnconvergedSentinelCrossesLayers' \
    ./internal/kron
go test -race -count=1 -run 'TestOperatorChain' ./internal/markov
go test -race -count=1 -run 'TestKronSolver' ./internal/multigrid
go test -race -count=1 -run 'TestSolveKron|TestBuildShell' ./internal/core
go test -race -count=1 -run 'TestAnalyzeKronBackendParity|TestBackendValidation' ./internal/serve

echo "== kron workspace allocs (zero-alloc shuffle products) =="
go test -count=1 -run 'TestShuffleProductsAllocFree|TestRowIterAllocFree' ./internal/kron

echo "== bench smoke (1 iteration per benchmark) =="
go test -run '^$' -bench 'BenchmarkStationary|BenchmarkFig3MatrixForm' \
    -benchtime 1x -benchmem .

echo "== sweep throughput (batched vs pointwise, 1 iteration) =="
# One full 12-point Figure 5 noise sweep per mode. The batch sub-benchmark
# cross-checks its BERs against the pointwise reference and fails the run
# on drift, so this stage gates accuracy; the committed BENCH_*.json
# snapshots (diffed below) gate the throughput ratio over time.
go test -run '^$' -bench '^BenchmarkSweepFig5$' -benchtime 1x -benchmem .

echo "== cdrserved smoke (build, serve, cache-hit replay, SIGTERM drain) =="
go test -count=1 -run '^TestServerSmoke$' -v ./cmd/cdrserved

echo "== live progress (SSE stream + seeded stall injection, -race) =="
# The SSE smoke proves a batched sweep job streams one parseable progress
# event per point plus a terminal frame; the stall case injects a delay
# fault at the multigrid.cycle seam and requires the watchdog to classify
# the solve stalled (with the job's trace ID on the verdict) within the
# configured window, then cancel it. Seeded like the chaos stage.
CDR_FAULTS_SEED=1 go test -race -count=1 \
    -run 'TestJobEventsSSE|TestWatchdogStallInjection|TestDebugProgressLiveETA' \
    ./internal/serve

echo "== bench compare (optional; needs two committed BENCH_*.json) =="
# Diff the two newest committed benchmark snapshots. With fewer than two
# snapshots there is nothing to compare, so the stage skips cleanly —
# fresh clones and the first benchmarked commit must not fail CI. The
# generous time threshold (50%) absorbs machine-to-machine noise; tighten
# it locally when hunting a specific regression. Allocation metrics are
# exact counts, so they gate tighter: 25% growth in allocs/op or B/op
# fails — that is what catches an instrumented hot loop that silently
# started allocating.
set -- $(ls -t BENCH_*.json 2>/dev/null || true)
if [ "$#" -ge 2 ]; then
    new="$1"
    old="$2"
    echo "comparing $old (old) -> $new (new)"
    go run ./cmd/cdrbench -compare -threshold 0.5 \
        -threshold-allocs 0.25 -threshold-bytes 0.25 "$old" "$new"
else
    echo "skipped: found $# snapshot(s), need 2"
fi

echo "== ci.sh: all gates passed =="
