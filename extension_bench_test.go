package cdrstoch

// Benchmarks for the model extensions beyond the paper's figures:
// second-order loops, regime modulation, censored chains, spectral
// estimation, decision-diagram compression and the parallel Monte Carlo
// runner. Indexed in DESIGN.md alongside the ablations.

import (
	"testing"

	"cdrstoch/internal/bitsim"
	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
	"cdrstoch/internal/freqloop"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/pdd"
	"cdrstoch/internal/regime"
)

// BenchmarkFreqLoopSolve builds and solves the second-order loop at the
// configuration of examples/freqacquisition (F = 1).
func BenchmarkFreqLoopSolve(b *testing.B) {
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.01, Shape: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	base := core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.06),
		Drift:             drift,
		CounterLen:        4,
		Threshold:         0.5,
	}
	for i := 0; i < b.N; i++ {
		m, err := freqloop.Build(freqloop.Spec{Base: base, FreqLen: 1, FreqStep: h})
		if err != nil {
			b.Fatal(err)
		}
		pi, _, err := m.Solve(1e-11, 500000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.BER(pi), "BER")
	}
}

// BenchmarkRegimeSolve builds and solves the interference-burst model of
// examples/interference.
func BenchmarkRegimeSolve(b *testing.B) {
	h := 1.0 / 32
	base := core.Spec{
		GridStep:          h,
		PhaseMax:          0.625,
		CorrectionStep:    1.0 / 16,
		TransitionDensity: 0.5,
		MaxRunLength:      4,
		CounterLen:        6,
		Threshold:         0.5,
	}
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.0005, Shape: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	spec := regime.Spec{
		Base: base,
		Regimes: []regime.Regime{
			{Name: "quiet", EyeJitter: dist.NewGaussian(0, 0.04), Drift: drift},
			{Name: "burst", EyeJitter: dist.NewGaussian(0, 0.12), Drift: drift},
		},
		Switch: [][]float64{
			{1 - 1.0/600, 1.0 / 600},
			{1.0 / 30, 1 - 1.0/30},
		},
	}
	for i := 0; i < b.N; i++ {
		m, err := regime.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		pi, _, err := m.Solve(multigrid.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.BER(pi), "BER")
	}
}

// BenchmarkCensor measures the stochastic-complement reduction of the
// Fig-5 model onto its zero-counter slice.
func BenchmarkCensor(b *testing.B) {
	m := buildOrFatal(b, experiments.Fig5Spec(2))
	ch, err := m.Chain()
	if err != nil {
		b.Fatal(err)
	}
	watched := make([]bool, m.NumStates())
	for d := 0; d < m.D; d++ {
		for mi := 0; mi < m.M; mi++ {
			watched[m.StateIndex(d, m.Spec.CounterLen-1, mi)] = true
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ch.Censor(watched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseNoiseSpectrum measures the autocovariance-based spectral
// estimate at 32 frequencies with a 1024-lag window.
func BenchmarkPhaseNoiseSpectrum(b *testing.B) {
	m := buildOrFatal(b, experiments.Fig5Spec(8))
	a, err := m.Solve(core.SolveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	freqs := make([]float64, 32)
	for i := range freqs {
		freqs[i] = 0.5 * float64(i+1) / 32
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PhaseNoiseSpectrum(a.Pi, 1024, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDDCompression measures building the decision diagram of a
// stationary vector at solver-tolerance quantization.
func BenchmarkPDDCompression(b *testing.B) {
	p, err := experiments.RunPanel(experiments.Fig4Spec(false))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pdd.FromVector(p.Analysis.Pi, 1e-15)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.CompressionRatio(), "ratio")
	}
}

// BenchmarkParallelMonteCarlo compares the serial and parallel Monte
// Carlo runners on the same workload.
func BenchmarkParallelMonteCarlo(b *testing.B) {
	spec := experiments.Fig4Spec(true)
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "workers4"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bitsim.RunParallel(bitsim.Config{
					Spec: spec, Bits: 400000, Seed: int64(i + 1),
				}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
