package kron

import (
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/spmat"
)

// FuzzShuffleVecMul cross-checks the shuffle-algorithm products against
// the materialized matrix on randomly shaped descriptors: arbitrary
// factor counts, ragged sizes, signed coefficients, variable density and
// a random worker width. Any divergence between the implicit and the
// explicit evaluation beyond accumulation-order noise is a bug in the
// mode-product kernels.
func FuzzShuffleVecMul(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(60), uint8(1))
	f.Add(int64(7), uint8(3), uint8(1), uint8(90), uint8(4))
	f.Add(int64(42), uint8(1), uint8(2), uint8(30), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nFactors, nTerms, density, workers uint8) {
		rng := rand.New(rand.NewSource(seed))
		nf := 1 + int(nFactors)%4
		nt := 1 + int(nTerms)%3
		dens := 0.2 + float64(density%100)/125
		sizes := make([]int, nf)
		dim := 1
		for c := range sizes {
			sizes[c] = 1 + rng.Intn(5)
			dim *= sizes[c]
		}
		terms := make([]Term, nt)
		for ti := range terms {
			fs := make([]*spmat.CSR, nf)
			for c := range fs {
				fs[c] = randomCSR(sizes[c], sizes[c], dens, rng)
			}
			terms[ti] = Term{Coeff: rng.NormFloat64(), Factors: fs}
		}
		d, err := NewDescriptor(terms)
		if err != nil {
			t.Fatal(err)
		}
		d.SetWorkers(1 + int(workers)%4)
		m := d.ToCSR()
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, dim)
		want := make([]float64, dim)
		scale := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-12 * (1 + scale) * float64(dim)
		d.VecMul(got, x)
		m.VecMul(want, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("VecMul[%d] = %g, want %g (sizes %v, %d terms)", i, got[i], want[i], sizes, nt)
			}
		}
		d.MulVec(got, x)
		m.MulVec(want, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("MulVec[%d] = %g, want %g (sizes %v, %d terms)", i, got[i], want[i], sizes, nt)
			}
		}
	})
}
