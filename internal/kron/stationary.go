package kron

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// PowerOptions configures a damped power-iteration stationary solve on
// the implicit matrix. The zero value selects the defaults.
type PowerOptions struct {
	// Tol is the convergence threshold on ‖xP − x‖₁. Default 1e-12.
	Tol float64
	// MaxIter bounds the iteration count. Default 100000.
	MaxIter int
	// Damping is the factor α in x ← α·xP + (1−α)·x; 1 (undamped) by
	// default. Damping below 1 makes the iteration converge on periodic
	// chains.
	Damping float64
	// Ctx, when non-nil, is checked at every sweep boundary — the same
	// cadence as the markov power/Jacobi/GS/GMRES loops — so watchdog
	// cancel-on-stall and request deadlines reach Kron solves too. A
	// canceled context stops the solve with a partial-progress error
	// wrapping ctx.Err(). Nil never cancels.
	Ctx context.Context
	// X0 is the initial distribution; uniform when nil.
	X0 []float64
	// Ws supplies the shuffle scratch, reused across sweeps and — when
	// the caller keeps it — across solves. Nil uses a private workspace.
	Ws *Workspace
}

func (o PowerOptions) withDefaults() PowerOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	if o.Ws == nil {
		o.Ws = &Workspace{}
	}
	return o
}

// PowerResult reports a power-iteration solve.
type PowerResult struct {
	// Pi is the final iterate. On an ErrUnconverged return it is the
	// best (non-converged) iterate, so postmortems can inspect it.
	Pi []float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final ‖xP − x‖₁.
	Residual float64
	// Converged reports whether Residual ≤ Tol was reached.
	Converged bool
}

// StationaryPower computes the stationary distribution of a stochastic
// descriptor by damped power iteration without materializing the matrix.
// A solve that exhausts MaxIter returns the iterate together with an
// error wrapping ErrUnconverged (which core.ErrUnconverged aliases), and
// a canceled context returns a partial-progress error wrapping ctx.Err()
// — the same contract as every markov solver.
func (d *Descriptor) StationaryPower(opt PowerOptions) (PowerResult, error) {
	opt = opt.withDefaults()
	n := d.dim
	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return PowerResult{}, fmt.Errorf("kron: X0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	} else {
		for i := range x {
			x[i] = 1 / float64(n)
		}
	}
	y := make([]float64, n)
	res := PowerResult{}
	a := opt.Damping
	for it := 1; it <= opt.MaxIter; it++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				res.Pi = x
				return res, fmt.Errorf("kron: power solve stopped after %d sweeps (residual %.3e): %w",
					res.Iterations, res.Residual, err)
			}
		}
		d.VecMulWs(opt.Ws, y, x)
		r := 0.0
		sum := 0.0
		for i := range x {
			r += math.Abs(y[i] - x[i])
			x[i] = a*y[i] + (1-a)*x[i]
			sum += x[i]
		}
		if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
			return PowerResult{}, errors.New("kron: iterate lost probability mass")
		}
		inv := 1 / sum
		for i := range x {
			x[i] *= inv
		}
		res.Iterations = it
		res.Residual = r
		if r <= opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Pi = x
	if !res.Converged {
		return res, fmt.Errorf("kron: power %w after %d sweeps (residual %.3e)",
			ErrUnconverged, res.Iterations, res.Residual)
	}
	return res, nil
}
