// Package kron_test holds the cross-package integration checks: the
// unconverged sentinel must be recognizable under the core alias, and a
// descriptor built from independent FSM components must reproduce the
// explicit synchronous-product chain that fsm.Network assembles.
package kron_test

import (
	"errors"
	"math"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/fsm"
	"cdrstoch/internal/kron"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/spmat"
)

// TestUnconvergedSentinelCrossesLayers pins the bug fix end to end: a
// kron solve that exhausts its budget must be detectable with errors.Is
// under BOTH names — kron.ErrUnconverged where it originates and
// core.ErrUnconverged where callers of the analysis layer look for it.
func TestUnconvergedSentinelCrossesLayers(t *testing.T) {
	// Non-uniform stationary vector, so a uniform start cannot converge
	// in a single sweep.
	tr := spmat.NewTriplet(4, 4)
	rows := [4][4]float64{
		{0.9, 0.1, 0, 0},
		{0.2, 0.5, 0.3, 0},
		{0, 0.3, 0.4, 0.3},
		{0.1, 0, 0.4, 0.5},
	}
	for i, row := range rows {
		for j, v := range row {
			if v > 0 {
				tr.Add(i, j, v)
			}
		}
	}
	d, err := kron.NewDescriptor([]kron.Term{{Coeff: 1, Factors: []*spmat.CSR{tr.ToCSR()}}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.StationaryPower(kron.PowerOptions{Tol: 1e-16, MaxIter: 1})
	if err == nil {
		t.Fatal("1-iteration solve reported convergence")
	}
	if !errors.Is(err, kron.ErrUnconverged) {
		t.Fatalf("err = %v, not kron.ErrUnconverged", err)
	}
	if !errors.Is(err, core.ErrUnconverged) {
		t.Fatalf("err = %v, not core.ErrUnconverged", err)
	}
}

// marginal builds one machine's transition probability matrix under its
// private source: P[s][s'] = Σ_sym p(sym)·[next(s, sym) = s'].
func marginal(numStates int, prob []float64, next func(s, sym int) int) *spmat.CSR {
	tr := spmat.NewTriplet(numStates, numStates)
	for s := 0; s < numStates; s++ {
		for sym, p := range prob {
			if p > 0 {
				tr.Add(s, next(s, sym), p)
			}
		}
	}
	return tr.ToCSR()
}

// TestDescriptorMatchesFSMProduct solves the same compositional model
// both ways: fsm.Network.BuildChain materializes the synchronous product
// of two independent stochastic machines, while a Kronecker descriptor
// over the per-machine marginals never forms it. The stationary
// distributions must agree state-for-state to 1e-12 after mapping the
// descriptor's lexicographic layout onto the chain's BFS indices.
func TestDescriptorMatchesFSMProduct(t *testing.T) {
	aProb := []float64{0.5, 0.3, 0.2}
	bProb := []float64{0.6, 0.4}
	aNext := func(s, sym int) int { return (s + sym) % 3 }
	bNext := func(s, sym int) int { return (s + sym + 1) % 2 }

	n := fsm.NewNetwork()
	if err := n.AddSource(&fsm.Source{Name: "sa", Prob: aProb}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(&fsm.Source{Name: "sb", Prob: bProb}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddMachine(&fsm.Machine{
		Name: "A", NumStates: 3,
		Inputs: []fsm.Port{{Name: "in", Size: len(aProb)}},
		Next:   func(s int, in []int) int { return aNext(s, in[0]) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddMachine(&fsm.Machine{
		Name: "B", NumStates: 2,
		Inputs: []fsm.Port{{Name: "in", Size: len(bProb)}},
		Next:   func(s int, in []int) int { return bNext(s, in[0]) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("A", "in", fsm.SourceOut("sa")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("B", "in", fsm.SourceOut("sb")); err != nil {
		t.Fatal(err)
	}
	chain, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := chain.P.Dims(); got != 6 {
		t.Fatalf("product chain has %d states, want 6", got)
	}

	d, err := kron.NewDescriptor([]kron.Term{{Coeff: 1, Factors: []*spmat.CSR{
		marginal(3, aProb, aNext),
		marginal(2, bProb, bNext),
	}}})
	if err != nil {
		t.Fatal(err)
	}

	// Explicit reference solve on the materialized product.
	mc, err := markov.New(chain.P)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}

	// Matrix-free solve over the descriptor, then again through the
	// markov.Operator seam that the solver stack uses.
	res, err := d.StationaryPower(kron.PowerOptions{Tol: 1e-14, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := markov.NewOperator(d)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := oc.StationaryPower(markov.Options{Tol: 1e-14, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}

	tuple := []int{0, 0}
	for a := 0; a < 3; a++ {
		for b := 0; b < 2; b++ {
			tuple[0], tuple[1] = a, b
			ci := chain.StateIndex(tuple)
			if ci < 0 {
				t.Fatalf("tuple (%d,%d) unreachable in explicit chain", a, b)
			}
			ki := a*2 + b
			if math.Abs(res.Pi[ki]-ref[ci]) > 1e-12 {
				t.Fatalf("pi(%d,%d): kron %g vs explicit %g", a, b, res.Pi[ki], ref[ci])
			}
			if math.Abs(ores.Pi[ki]-ref[ci]) > 1e-12 {
				t.Fatalf("pi(%d,%d): operator-chain %g vs explicit %g", a, b, ores.Pi[ki], ref[ci])
			}
		}
	}
}
