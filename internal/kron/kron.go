// Package kron implements stochastic-automata-network (SAN) descriptors:
// transition probability matrices represented as sums of Kronecker
// products of small per-component matrices, in the spirit of Plateau's
// stochastic automata networks and the "hierarchical Kronecker
// algebra-like techniques" the paper identifies as the scaling path for
// storing and manipulating very large structured TPMs.
//
// A descriptor never materializes the global matrix: the fundamental
// operation y = x·P is evaluated term by term with the shuffle algorithm,
// one tensor mode at a time, at a cost proportional to the component
// matrices' nonzeros times the remaining dimensions.
package kron

import (
	"errors"
	"fmt"

	"cdrstoch/internal/spmat"
)

// Term is one Kronecker-product summand c·(F₁ ⊗ F₂ ⊗ … ⊗ F_C).
type Term struct {
	// Coeff scales the product term (typically an event probability).
	Coeff float64
	// Factors holds one square matrix per component, outermost first.
	Factors []*spmat.CSR
}

// Descriptor is a sum of Kronecker-product terms over a fixed component
// structure. All terms must agree on the per-component dimensions.
type Descriptor struct {
	sizes []int
	dim   int
	terms []Term
}

// NewDescriptor validates the terms and returns a descriptor.
func NewDescriptor(terms []Term) (*Descriptor, error) {
	if len(terms) == 0 {
		return nil, errors.New("kron: no terms")
	}
	var sizes []int
	for ti, t := range terms {
		if len(t.Factors) == 0 {
			return nil, fmt.Errorf("kron: term %d has no factors", ti)
		}
		if sizes == nil {
			sizes = make([]int, len(t.Factors))
			for c, f := range t.Factors {
				r, cl := f.Dims()
				if r != cl {
					return nil, fmt.Errorf("kron: term %d factor %d is %dx%d, want square", ti, c, r, cl)
				}
				sizes[c] = r
			}
		} else {
			if len(t.Factors) != len(sizes) {
				return nil, fmt.Errorf("kron: term %d has %d factors, want %d", ti, len(t.Factors), len(sizes))
			}
			for c, f := range t.Factors {
				r, cl := f.Dims()
				if r != sizes[c] || cl != sizes[c] {
					return nil, fmt.Errorf("kron: term %d factor %d is %dx%d, want %dx%d",
						ti, c, r, cl, sizes[c], sizes[c])
				}
			}
		}
	}
	dim := 1
	for _, s := range sizes {
		if s <= 0 {
			return nil, errors.New("kron: zero-dimensional factor")
		}
		next := dim * s
		if next/s != dim {
			return nil, errors.New("kron: global dimension overflows")
		}
		dim = next
	}
	return &Descriptor{sizes: sizes, dim: dim, terms: terms}, nil
}

// Dim returns the global state-space size (product of component sizes).
func (d *Descriptor) Dim() int { return d.dim }

// Sizes returns the per-component dimensions, outermost first.
func (d *Descriptor) Sizes() []int {
	out := make([]int, len(d.sizes))
	copy(out, d.sizes)
	return out
}

// NumTerms returns the number of Kronecker terms.
func (d *Descriptor) NumTerms() int { return len(d.terms) }

// modeVecMul computes the mode-k vector–matrix product of the tensorized
// vector x with factor a: out[l, j, r] = Σ_i x[l, i, r]·a[i, j], where l
// ranges over the product of dimensions before mode k and r after it.
// out must be zeroed by the caller.
func modeVecMul(out, x []float64, a *spmat.CSR, left, n, right int) {
	for l := 0; l < left; l++ {
		base := l * n * right
		for i := 0; i < n; i++ {
			cols, vals := a.Row(i)
			if len(cols) == 0 {
				continue
			}
			xi := base + i*right
			for kk, j := range cols {
				v := vals[kk]
				if v == 0 {
					continue
				}
				yj := base + j*right
				xr := x[xi : xi+right]
				yr := out[yj : yj+right]
				for r := range xr {
					yr[r] += v * xr[r]
				}
			}
		}
	}
}

// VecMul computes y = x·P where P is the descriptor's implicit matrix.
// y must have length Dim and may not alias x.
func (d *Descriptor) VecMul(y, x []float64) {
	if len(x) != d.dim || len(y) != d.dim {
		panic("kron: VecMul dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	cur := make([]float64, d.dim)
	next := make([]float64, d.dim)
	for _, t := range d.terms {
		if t.Coeff == 0 {
			continue
		}
		copy(cur, x)
		left := 1
		right := d.dim
		for c, f := range t.Factors {
			n := d.sizes[c]
			right /= n
			for i := range next {
				next[i] = 0
			}
			modeVecMul(next, cur, f, left, n, right)
			cur, next = next, cur
			left *= n
		}
		for i := range y {
			y[i] += t.Coeff * cur[i]
		}
	}
}

// ToCSR materializes the descriptor as an explicit sparse matrix. Intended
// for tests and small models; the memory cost is the full global nnz.
func (d *Descriptor) ToCSR() *spmat.CSR {
	tr := spmat.NewTriplet(d.dim, d.dim)
	// Expand each term by depth-first enumeration of factor entries.
	var expand func(t Term, c, row, col int, prod float64)
	expand = func(t Term, c, row, col int, prod float64) {
		if c == len(t.Factors) {
			tr.Add(row, col, prod)
			return
		}
		n := d.sizes[c]
		for i := 0; i < n; i++ {
			cols, vals := t.Factors[c].Row(i)
			for k, j := range cols {
				if vals[k] == 0 {
					continue
				}
				expand(t, c+1, row*n+i, col*n+j, prod*vals[k])
			}
		}
	}
	for _, t := range d.terms {
		if t.Coeff != 0 {
			expand(t, 0, 0, 0, t.Coeff)
		}
	}
	return tr.ToCSR()
}

// Kron returns the explicit Kronecker product A ⊗ B.
func Kron(a, b *spmat.CSR) *spmat.CSR {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	tr := spmat.NewTriplet(ar*br, ac*bc)
	tr.Reserve(a.NNZ() * b.NNZ())
	for i := 0; i < ar; i++ {
		acols, avals := a.Row(i)
		for k, aj := range acols {
			av := avals[k]
			if av == 0 {
				continue
			}
			for p := 0; p < br; p++ {
				bcols, bvals := b.Row(p)
				for q, bj := range bcols {
					if bvals[q] == 0 {
						continue
					}
					tr.Add(i*br+p, aj*bc+bj, av*bvals[q])
				}
			}
		}
	}
	return tr.ToCSR()
}

// StationaryPower computes the stationary distribution of a stochastic
// descriptor by damped power iteration without materializing the matrix.
// It returns the iterate, the iteration count and the final ‖xP − x‖₁.
func (d *Descriptor) StationaryPower(tol float64, maxIter int, damping float64) ([]float64, int, float64) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	if damping <= 0 || damping > 1 {
		damping = 1
	}
	n := d.dim
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	y := make([]float64, n)
	var it int
	var resid float64
	for it = 1; it <= maxIter; it++ {
		d.VecMul(y, x)
		resid = 0
		sum := 0.0
		for i := range x {
			r := y[i] - x[i]
			if r < 0 {
				r = -r
			}
			resid += r
			x[i] = damping*y[i] + (1-damping)*x[i]
			sum += x[i]
		}
		if sum > 0 {
			inv := 1 / sum
			for i := range x {
				x[i] *= inv
			}
		}
		if resid <= tol {
			break
		}
	}
	if it > maxIter {
		it = maxIter
	}
	return x, it, resid
}
