// Package kron implements stochastic-automata-network (SAN) descriptors:
// transition probability matrices represented as sums of Kronecker
// products of small per-component matrices, in the spirit of Plateau's
// stochastic automata networks and the "hierarchical Kronecker
// algebra-like techniques" the paper identifies as the scaling path for
// storing and manipulating very large structured TPMs.
//
// A descriptor never materializes the global matrix: the fundamental
// operations y = x·P and y = P·x are evaluated term by term with the
// shuffle algorithm, one tensor mode at a time, at a cost proportional to
// the component matrices' nonzeros times the remaining dimensions. A
// Descriptor satisfies markov.Operator (Dims, MulVec, VecMul, Diag,
// RowSums), so every operator-backed markov solver — power, Jacobi,
// GMRES — and the multigrid Kron path run directly on the implicit form.
package kron

import (
	"errors"
	"fmt"
	"sync"

	"cdrstoch/internal/spmat"
)

// ErrUnconverged marks an iterative Kron solve that exhausted its budget
// without reaching tolerance. core.ErrUnconverged aliases this sentinel
// (core imports kron, never the reverse), so errors.Is matches a Kron
// solve's failure against either name — the service's postmortem and
// retry classification work unchanged for the matrix-free path.
var ErrUnconverged = errors.New("did not converge")

// Term is one Kronecker-product summand c·(F₁ ⊗ F₂ ⊗ … ⊗ F_C).
type Term struct {
	// Coeff scales the product term (typically an event probability).
	Coeff float64
	// Factors holds one square matrix per component, outermost first.
	Factors []*spmat.CSR
}

// Descriptor is a sum of Kronecker-product terms over a fixed component
// structure. All terms must agree on the per-component dimensions.
type Descriptor struct {
	sizes []int
	dim   int
	terms []Term

	// workers is the slab-parallel width of the shuffle products; set
	// once via SetWorkers before the descriptor is shared.
	workers int
	// ws recycles shuffle scratch for the convenience VecMul/MulVec
	// forms, so repeated multiplies allocate nothing after warmup.
	ws sync.Pool
}

// NewDescriptor validates the terms and returns a descriptor.
func NewDescriptor(terms []Term) (*Descriptor, error) {
	if len(terms) == 0 {
		return nil, errors.New("kron: no terms")
	}
	var sizes []int
	for ti, t := range terms {
		if len(t.Factors) == 0 {
			return nil, fmt.Errorf("kron: term %d has no factors", ti)
		}
		if sizes == nil {
			sizes = make([]int, len(t.Factors))
			for c, f := range t.Factors {
				r, cl := f.Dims()
				if r != cl {
					return nil, fmt.Errorf("kron: term %d factor %d is %dx%d, want square", ti, c, r, cl)
				}
				sizes[c] = r
			}
		} else {
			if len(t.Factors) != len(sizes) {
				return nil, fmt.Errorf("kron: term %d has %d factors, want %d", ti, len(t.Factors), len(sizes))
			}
			for c, f := range t.Factors {
				r, cl := f.Dims()
				if r != sizes[c] || cl != sizes[c] {
					return nil, fmt.Errorf("kron: term %d factor %d is %dx%d, want %dx%d",
						ti, c, r, cl, sizes[c], sizes[c])
				}
			}
		}
	}
	dim := 1
	for _, s := range sizes {
		if s <= 0 {
			return nil, errors.New("kron: zero-dimensional factor")
		}
		next := dim * s
		if next/s != dim {
			return nil, errors.New("kron: global dimension overflows")
		}
		dim = next
	}
	d := &Descriptor{sizes: sizes, dim: dim, terms: terms}
	d.ws.New = func() any { return &Workspace{} }
	return d, nil
}

// Dim returns the global state-space size (product of component sizes).
func (d *Descriptor) Dim() int { return d.dim }

// Dims returns the square global dimensions, matching spmat.CSR.Dims and
// the markov.Operator surface.
func (d *Descriptor) Dims() (r, c int) { return d.dim, d.dim }

// Sizes returns the per-component dimensions, outermost first.
func (d *Descriptor) Sizes() []int {
	out := make([]int, len(d.sizes))
	copy(out, d.sizes)
	return out
}

// NumTerms returns the number of Kronecker terms.
func (d *Descriptor) NumTerms() int { return len(d.terms) }

// SetWorkers sets the parallel width of subsequent shuffle products:
// each mode product splits race-free over disjoint tensor slabs (the
// leading mode when it is wide enough, the trailing stride otherwise).
// 0 or 1 keeps the products serial; descriptors below
// spmat.ParallelCutoff stay serial regardless. Set once before the
// descriptor is shared across goroutines — the width is read unlocked on
// the multiply hot path.
func (d *Descriptor) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	d.workers = n
}

// NNZ returns the stored entries across all factor matrices — the
// descriptor's actual storage, as opposed to the global matrix's nnz.
func (d *Descriptor) NNZ() int64 {
	var n int64
	for _, t := range d.terms {
		for _, f := range t.Factors {
			n += int64(f.NNZ())
		}
	}
	return n
}

// MemoryBytes estimates the descriptor's heap footprint: the factor
// matrices' CSR arrays. This is the matrix-memory number the cost
// accounting reports for Kron-backed solves; compare it against the
// materialized product's CSR.MemoryBytes to see the compression.
func (d *Descriptor) MemoryBytes() int64 {
	var b int64
	for _, t := range d.terms {
		for _, f := range t.Factors {
			b += f.MemoryBytes()
		}
	}
	return b
}

// OpsPerMul estimates the multiply-add count of one shuffle product:
// Σ_t Σ_c nnz(F_c)·(dim/n_c). The cost layer attributes this as the
// "entries touched" of each implicit SpMV, keeping effective-bandwidth
// estimates meaningful for matrix-free solves.
func (d *Descriptor) OpsPerMul() int64 {
	var ops int64
	for _, t := range d.terms {
		if t.Coeff == 0 {
			continue
		}
		for c, f := range t.Factors {
			ops += int64(f.NNZ()) * int64(d.dim/d.sizes[c])
		}
	}
	return ops
}

// Workspace holds the two scratch vectors a shuffle product ping-pongs
// between. The zero value is ready; buffers grow to the descriptor
// dimension on first use and are reused afterwards, so a solver that
// keeps a Workspace performs zero allocations per multiply. A Workspace
// serves one multiply at a time — share descriptors, not workspaces.
type Workspace struct {
	cur, next []float64
}

// ensure sizes the scratch for an n-dimensional product, reusing capacity.
func (w *Workspace) ensure(n int) {
	if cap(w.cur) < n {
		w.cur = make([]float64, n)
		w.next = make([]float64, n)
	}
	w.cur = w.cur[:n]
	w.next = w.next[:n]
}

// modeVecMulPart computes the mode-k vector–matrix product of the
// tensorized vector x with factor a over the slab lo ≤ l < hi and the
// stride window rlo ≤ r < rhi: out[l, j, r] += Σ_i x[l, i, r]·a[i, j].
// Distinct (l-range, r-range) slabs write disjoint regions of out, which
// is what makes the parallel split race-free.
func modeVecMulPart(out, x []float64, a *spmat.CSR, n, right, lo, hi, rlo, rhi int) {
	for l := lo; l < hi; l++ {
		base := l * n * right
		for i := 0; i < n; i++ {
			cols, vals := a.Row(i)
			if len(cols) == 0 {
				continue
			}
			xi := base + i*right
			for kk, j := range cols {
				v := vals[kk]
				if v == 0 {
					continue
				}
				yj := base + j*right
				xr := x[xi+rlo : xi+rhi]
				yr := out[yj+rlo : yj+rhi]
				for r := range xr {
					yr[r] += v * xr[r]
				}
			}
		}
	}
}

// modeMulVecPart is the matrix–vector twin: out[l, i, r] += Σ_j
// a[i, j]·x[l, j, r], the mode-k product of y = P·x.
func modeMulVecPart(out, x []float64, a *spmat.CSR, n, right, lo, hi, rlo, rhi int) {
	for l := lo; l < hi; l++ {
		base := l * n * right
		for i := 0; i < n; i++ {
			cols, vals := a.Row(i)
			if len(cols) == 0 {
				continue
			}
			yi := base + i*right
			for kk, j := range cols {
				v := vals[kk]
				if v == 0 {
					continue
				}
				xj := base + j*right
				xr := x[xj+rlo : xj+rhi]
				yr := out[yi+rlo : yi+rhi]
				for r := range xr {
					yr[r] += v * xr[r]
				}
			}
		}
	}
}

// partFunc is the signature shared by modeVecMulPart and modeMulVecPart.
type partFunc func(out, x []float64, a *spmat.CSR, n, right, lo, hi, rlo, rhi int)

// pickPart selects the mode-product kernel. Returning the func (rather
// than reassigning a local that goroutine closures later capture) keeps
// the serial path allocation-free: a captured-and-mutated func variable
// would be moved to the heap on every call.
func pickPart(vecMul bool) partFunc {
	if vecMul {
		return modeVecMulPart
	}
	return modeMulVecPart
}

// modeProduct dispatches one mode product, splitting it across the
// descriptor's worker width when the tensor shape offers enough
// race-free slabs: the leading (left) mode partitions whole blocks, the
// trailing stride partitions the innermost contiguous runs. Small
// descriptors and width ≤ 1 stay on the serial path.
func (d *Descriptor) modeProduct(vecMul bool, out, x []float64, a *spmat.CSR, left, n, right int) {
	part := pickPart(vecMul)
	w := d.workers
	if w > left {
		w = left
	}
	if left < 2 && right >= 2 {
		w = d.workers
		if w > right {
			w = right
		}
		if w > 1 && d.dim >= spmat.ParallelCutoff {
			var wg sync.WaitGroup
			chunk := (right + w - 1) / w
			for rlo := 0; rlo < right; rlo += chunk {
				rhi := rlo + chunk
				if rhi > right {
					rhi = right
				}
				wg.Add(1)
				go func(rlo, rhi int) {
					defer wg.Done()
					part(out, x, a, n, right, 0, left, rlo, rhi)
				}(rlo, rhi)
			}
			wg.Wait()
			return
		}
		part(out, x, a, n, right, 0, left, 0, right)
		return
	}
	if w > 1 && d.dim >= spmat.ParallelCutoff {
		var wg sync.WaitGroup
		chunk := (left + w - 1) / w
		for lo := 0; lo < left; lo += chunk {
			hi := lo + chunk
			if hi > left {
				hi = left
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				part(out, x, a, n, right, lo, hi, 0, right)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	part(out, x, a, n, right, 0, left, 0, right)
}

// mul runs the full shuffle evaluation of y = x·P (vecMul) or y = P·x
// into y using ws scratch.
func (d *Descriptor) mul(vecMul bool, ws *Workspace, y, x []float64) {
	if len(x) != d.dim || len(y) != d.dim {
		panic("kron: multiply dimension mismatch")
	}
	ws.ensure(d.dim)
	cur, next := ws.cur, ws.next
	for i := range y {
		y[i] = 0
	}
	for _, t := range d.terms {
		if t.Coeff == 0 {
			continue
		}
		copy(cur, x)
		left := 1
		right := d.dim
		for c, f := range t.Factors {
			n := d.sizes[c]
			right /= n
			for i := range next {
				next[i] = 0
			}
			d.modeProduct(vecMul, next, cur, f, left, n, right)
			cur, next = next, cur
			left *= n
		}
		coeff := t.Coeff
		for i := range y {
			y[i] += coeff * cur[i]
		}
	}
	ws.cur, ws.next = cur, next
}

// VecMulWs computes y = x·P with caller-owned scratch: the zero-alloc
// form every solver loop uses. y must have length Dim and not alias x.
func (d *Descriptor) VecMulWs(ws *Workspace, y, x []float64) { d.mul(true, ws, y, x) }

// MulVecWs computes y = P·x with caller-owned scratch.
func (d *Descriptor) MulVecWs(ws *Workspace, y, x []float64) { d.mul(false, ws, y, x) }

// VecMul computes y = x·P where P is the descriptor's implicit matrix.
// y must have length Dim and may not alias x. Scratch comes from an
// internal pool, so repeated calls allocate nothing after warmup;
// solvers that multiply in a tight loop should hold a Workspace and call
// VecMulWs to skip the pool round-trip entirely.
func (d *Descriptor) VecMul(y, x []float64) {
	ws := d.ws.Get().(*Workspace)
	d.mul(true, ws, y, x)
	d.ws.Put(ws)
}

// MulVec computes y = P·x — the column-action the flux measures and the
// restriction operators need. Same scratch discipline as VecMul.
func (d *Descriptor) MulVec(y, x []float64) {
	ws := d.ws.Get().(*Workspace)
	d.mul(false, ws, y, x)
	d.ws.Put(ws)
}

// kronExpand accumulates coeff·(v₁ ⊗ v₂ ⊗ … ⊗ v_C) into out, where the
// outer product is taken outermost-first — the expansion both Diag and
// RowSums reduce to, since both are Kronecker-factorizable per term.
func kronExpand(out []float64, coeff float64, vecs [][]float64) {
	cur := []float64{coeff}
	for _, v := range vecs {
		next := make([]float64, len(cur)*len(v))
		for a, ca := range cur {
			if ca == 0 {
				continue
			}
			base := a * len(v)
			for b, vb := range v {
				next[base+b] = ca * vb
			}
		}
		cur = next
	}
	for i := range out {
		out[i] += cur[i]
	}
}

// Diag returns the implicit matrix's diagonal: per term, the diagonal of
// a Kronecker product is the Kronecker product of the factor diagonals.
// The slice is freshly allocated (call once per solve, as the Jacobi
// splitting does).
func (d *Descriptor) Diag() []float64 {
	out := make([]float64, d.dim)
	vecs := make([][]float64, len(d.sizes))
	for _, t := range d.terms {
		if t.Coeff == 0 {
			continue
		}
		for c, f := range t.Factors {
			vecs[c] = f.Diag()
		}
		kronExpand(out, t.Coeff, vecs)
	}
	return out
}

// RowSums returns the implicit matrix's row sums — the Kronecker product
// of the factor row sums, summed over terms. A stochastic descriptor
// returns the all-ones vector (to rounding), which is how the operator
// backend validates stochasticity without materializing anything.
func (d *Descriptor) RowSums() []float64 {
	out := make([]float64, d.dim)
	vecs := make([][]float64, len(d.sizes))
	for _, t := range d.terms {
		if t.Coeff == 0 {
			continue
		}
		for c, f := range t.Factors {
			vecs[c] = f.RowSums()
		}
		kronExpand(out, t.Coeff, vecs)
	}
	return out
}

// RowIter enumerates single rows of the implicit matrix without
// materializing it — the access pattern the multigrid restriction uses
// to lump an implicit fine level into an explicit coarse matrix. Create
// one per traversal; after the first row, Row performs no allocations
// (the visit closure should likewise be hoisted outside the row loop).
// A RowIter is not safe for concurrent use.
type RowIter struct {
	d      *Descriptor
	digits []int
}

// NewRowIter returns a row enumerator for the descriptor.
func (d *Descriptor) NewRowIter() *RowIter {
	return &RowIter{d: d, digits: make([]int, len(d.sizes))}
}

// Row calls visit for every stored entry of row i, as (column, value)
// pairs. Columns may repeat across terms (the implicit matrix entry is
// the sum); callers accumulate.
func (it *RowIter) Row(i int, visit func(col int, v float64)) {
	d := it.d
	if i < 0 || i >= d.dim {
		panic("kron: row index out of range")
	}
	rem := i
	for c := len(d.sizes) - 1; c >= 0; c-- {
		it.digits[c] = rem % d.sizes[c]
		rem /= d.sizes[c]
	}
	for ti := range d.terms {
		t := &d.terms[ti]
		if t.Coeff != 0 {
			it.expand(t, 0, 0, t.Coeff, visit)
		}
	}
}

func (it *RowIter) expand(t *Term, c, col int, prod float64, visit func(col int, v float64)) {
	if c == len(it.d.sizes) {
		visit(col, prod)
		return
	}
	cols, vals := t.Factors[c].Row(it.digits[c])
	n := it.d.sizes[c]
	for k, j := range cols {
		if v := vals[k]; v != 0 {
			it.expand(t, c+1, col*n+j, prod*v, visit)
		}
	}
}

// ToCSR materializes the descriptor as an explicit sparse matrix. Intended
// for tests and small models; the memory cost is the full global nnz.
func (d *Descriptor) ToCSR() *spmat.CSR {
	tr := spmat.NewTriplet(d.dim, d.dim)
	it := d.NewRowIter()
	for i := 0; i < d.dim; i++ {
		it.Row(i, func(j int, v float64) { tr.Add(i, j, v) })
	}
	return tr.ToCSR()
}

// Kron returns the explicit Kronecker product A ⊗ B.
func Kron(a, b *spmat.CSR) *spmat.CSR {
	ar, ac := a.Dims()
	br, bc := b.Dims()
	tr := spmat.NewTriplet(ar*br, ac*bc)
	tr.Reserve(a.NNZ() * b.NNZ())
	for i := 0; i < ar; i++ {
		acols, avals := a.Row(i)
		for k, aj := range acols {
			av := avals[k]
			if av == 0 {
				continue
			}
			for p := 0; p < br; p++ {
				bcols, bvals := b.Row(p)
				for q, bj := range bcols {
					if bvals[q] == 0 {
						continue
					}
					tr.Add(i*br+p, aj*bc+bj, av*bvals[q])
				}
			}
		}
	}
	return tr.ToCSR()
}
