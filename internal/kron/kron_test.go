package kron

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdrstoch/internal/spmat"
)

func randomCSR(r, c int, density float64, rng *rand.Rand) *spmat.CSR {
	tr := spmat.NewTriplet(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				tr.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return tr.ToCSR()
}

func randomStochasticCSR(n int, rng *rand.Rand) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			s += row[j]
		}
		for j := range row {
			tr.Add(i, j, row[j]/s)
		}
	}
	return tr.ToCSR()
}

func TestKronSmallKnown(t *testing.T) {
	// A = [[1,2],[3,4]], B = [[0,1],[1,0]].
	ta := spmat.NewTriplet(2, 2)
	ta.Add(0, 0, 1)
	ta.Add(0, 1, 2)
	ta.Add(1, 0, 3)
	ta.Add(1, 1, 4)
	tb := spmat.NewTriplet(2, 2)
	tb.Add(0, 1, 1)
	tb.Add(1, 0, 1)
	k := Kron(ta.ToCSR(), tb.ToCSR())
	want := [][]float64{
		{0, 1, 0, 2},
		{1, 0, 2, 0},
		{0, 3, 0, 4},
		{3, 0, 4, 0},
	}
	for i := range want {
		for j := range want[i] {
			if got := k.At(i, j); got != want[i][j] {
				t.Fatalf("K(%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}

func TestKronOfStochasticIsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomStochasticCSR(3, rng)
	b := randomStochasticCSR(4, rng)
	if err := Kron(a, b).CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestNewDescriptorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomStochasticCSR(2, rng)
	b := randomStochasticCSR(3, rng)
	if _, err := NewDescriptor(nil); err == nil {
		t.Error("empty descriptor accepted")
	}
	if _, err := NewDescriptor([]Term{{Coeff: 1}}); err == nil {
		t.Error("factorless term accepted")
	}
	if _, err := NewDescriptor([]Term{
		{Coeff: 1, Factors: []*spmat.CSR{a, b}},
		{Coeff: 1, Factors: []*spmat.CSR{b, a}},
	}); err == nil {
		t.Error("size-mismatched terms accepted")
	}
	if _, err := NewDescriptor([]Term{
		{Coeff: 1, Factors: []*spmat.CSR{a, b}},
		{Coeff: 1, Factors: []*spmat.CSR{a}},
	}); err == nil {
		t.Error("arity-mismatched terms accepted")
	}
	nonSquare := randomCSR(2, 3, 1, rng)
	if _, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{nonSquare}}}); err == nil {
		t.Error("non-square factor accepted")
	}
	d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a, b}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 6 || d.NumTerms() != 1 {
		t.Error("descriptor shape")
	}
	s := d.Sizes()
	if len(s) != 2 || s[0] != 2 || s[1] != 3 {
		t.Errorf("sizes = %v", s)
	}
}

func TestDescriptorVecMulMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		nc := 1 + rng.Intn(3)
		sizes := make([]int, nc)
		dim := 1
		for c := range sizes {
			sizes[c] = 2 + rng.Intn(3)
			dim *= sizes[c]
		}
		nt := 1 + rng.Intn(3)
		terms := make([]Term, nt)
		for ti := range terms {
			fs := make([]*spmat.CSR, nc)
			for c := range fs {
				fs[c] = randomCSR(sizes[c], sizes[c], 0.6, rng)
			}
			terms[ti] = Term{Coeff: rng.NormFloat64(), Factors: fs}
		}
		d, err := NewDescriptor(terms)
		if err != nil {
			t.Fatal(err)
		}
		m := d.ToCSR()
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, dim)
		d.VecMul(y1, x)
		ref := make([]float64, dim)
		m.VecMul(ref, x)
		for i := range y1 {
			if math.Abs(y1[i]-ref[i]) > 1e-10 {
				t.Fatalf("trial %d: VecMul[%d] = %g, want %g", trial, i, y1[i], ref[i])
			}
		}
	}
}

func TestDescriptorOfProductChain(t *testing.T) {
	// Two independent chains: P = A ⊗ B; the stationary distribution is
	// the product of component stationaries.
	rng := rand.New(rand.NewSource(4))
	a := randomStochasticCSR(3, rng)
	b := randomStochasticCSR(4, rng)
	d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a, b}}})
	if err != nil {
		t.Fatal(err)
	}
	piA, err := spmat.StationaryGTHCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	piB, err := spmat.StationaryGTHCSR(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.StationaryPower(PowerOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-12 {
		t.Fatalf("power residual %g", res.Residual)
	}
	pi := res.Pi
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			want := piA[i] * piB[j]
			if got := pi[i*4+j]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("pi[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestDescriptorMixtureOfStochasticTermsIsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a1 := randomStochasticCSR(2, rng)
	a2 := randomStochasticCSR(2, rng)
	b1 := randomStochasticCSR(3, rng)
	b2 := randomStochasticCSR(3, rng)
	d, err := NewDescriptor([]Term{
		{Coeff: 0.3, Factors: []*spmat.CSR{a1, b1}},
		{Coeff: 0.7, Factors: []*spmat.CSR{a2, b2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ToCSR().CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestVecMulPanicsOnBadDims(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomStochasticCSR(2, rng)
	d, _ := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a}}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.VecMul(make([]float64, 3), make([]float64, 2))
}

func TestQuickDescriptorMatchesExplicit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1, s2 := 2+rng.Intn(3), 2+rng.Intn(3)
		a := randomStochasticCSR(s1, rng)
		b := randomStochasticCSR(s2, rng)
		d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a, b}}})
		if err != nil {
			return false
		}
		explicit := Kron(a, b)
		x := make([]float64, s1*s2)
		for i := range x {
			x[i] = rng.Float64()
		}
		y1 := make([]float64, len(x))
		ref := make([]float64, len(x))
		d.VecMul(y1, x)
		explicit.VecMul(ref, x)
		for i := range y1 {
			if math.Abs(y1[i]-ref[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
