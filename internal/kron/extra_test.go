package kron

import (
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/spmat"
)

func TestZeroCoefficientTermSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := randomStochasticCSR(3, rng)
	b := randomStochasticCSR(3, rng)
	with, err := NewDescriptor([]Term{
		{Coeff: 1, Factors: []*spmat.CSR{a}},
		{Coeff: 0, Factors: []*spmat.CSR{b}},
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a}}})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.3, 0.5}
	y1 := make([]float64, 3)
	y2 := make([]float64, 3)
	with.VecMul(y1, x)
	without.VecMul(y2, x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("zero-coeff term contributed at %d", i)
		}
	}
	m1 := with.ToCSR()
	m2 := without.ToCSR()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m1.At(i, j) != m2.At(i, j) {
				t.Fatalf("materialized mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestThreeFactorDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := randomStochasticCSR(2, rng)
	b := randomStochasticCSR(3, rng)
	c := randomStochasticCSR(2, rng)
	d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a, b, c}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 12 {
		t.Fatalf("dim = %d", d.Dim())
	}
	explicit := Kron(Kron(a, b), c)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.Float64()
	}
	y1 := make([]float64, 12)
	y2 := make([]float64, 12)
	d.VecMul(y1, x)
	explicit.VecMul(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("three-factor mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
	// The product of stochastic factors stays stochastic.
	if err := d.ToCSR().CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestStationaryPowerDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := randomStochasticCSR(4, rng)
	d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a}}})
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate option values fall back to defaults.
	res, err := d.StationaryPower(PowerOptions{Tol: -1, MaxIter: -1, Damping: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-11 || res.Iterations < 1 || !res.Converged {
		t.Fatalf("resid %g iters %d", res.Residual, res.Iterations)
	}
	pi := res.Pi
	ref, err := spmat.StationaryGTHCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(pi[i]-ref[i]) > 1e-9 {
			t.Fatalf("pi[%d] off", i)
		}
	}
}
