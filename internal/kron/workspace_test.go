package kron

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"cdrstoch/internal/spmat"
)

// The VecMul workspace fix is pinned by this test: after one warmup
// multiply, neither the Workspace forms nor the pooled convenience forms
// may allocate per call.
func TestShuffleProductsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d, err := NewDescriptor([]Term{
		{Coeff: 0.5, Factors: []*spmat.CSR{
			randomStochasticCSR(3, rng), randomStochasticCSR(4, rng), randomStochasticCSR(5, rng),
		}},
		{Coeff: 0.5, Factors: []*spmat.CSR{
			randomStochasticCSR(3, rng), randomStochasticCSR(4, rng), randomStochasticCSR(5, rng),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, d.Dim())
	y := make([]float64, d.Dim())
	for i := range x {
		x[i] = 1 / float64(len(x))
	}
	var ws Workspace
	cases := []struct {
		name string
		f    func()
	}{
		{"VecMulWs", func() { d.VecMulWs(&ws, y, x) }},
		{"MulVecWs", func() { d.MulVecWs(&ws, y, x) }},
		{"VecMul", func() { d.VecMul(y, x) }},
		{"MulVec", func() { d.MulVec(y, x) }},
	}
	for _, tc := range cases {
		tc.f() // warmup: grow scratch once
		if allocs := testing.AllocsPerRun(20, tc.f); allocs != 0 {
			t.Errorf("%s: %v allocs per call after warmup", tc.name, allocs)
		}
	}
}

// Row enumeration is allocation-free after the first row, which is what
// keeps the multigrid coarse refresh cycle-allocation-free.
func TestRowIterAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d, err := NewDescriptor([]Term{
		{Coeff: 1, Factors: []*spmat.CSR{randomStochasticCSR(4, rng), randomStochasticCSR(6, rng)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	it := d.NewRowIter()
	sum := 0.0
	visit := func(_ int, v float64) { sum += v }
	it.Row(0, visit)
	if allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < d.Dim(); i++ {
			it.Row(i, visit)
		}
	}); allocs != 0 {
		t.Errorf("RowIter.Row: %v allocs per sweep", allocs)
	}
}

// Parallel shuffle products must agree with the serial evaluation and be
// race-free under concurrent use of one shared descriptor (run under
// -race in ci).
func TestParallelShuffleMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// Wide innermost factor so the right-stride split engages, and a wide
	// outermost so the left-slab split engages; dimension beyond the
	// parallel cutoff.
	a := randomStochasticCSR(8, rng)
	b := randomStochasticCSR(8, rng)
	c := randomStochasticCSR(512, rng)
	serial, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a, b, c}}})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{a, b, c}}})
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	if parallel.Dim() < spmat.ParallelCutoff {
		t.Fatalf("test descriptor below parallel cutoff: %d", parallel.Dim())
	}
	x := make([]float64, serial.Dim())
	for i := range x {
		x[i] = rng.Float64()
	}
	for name, pair := range map[string]func(d *Descriptor, y []float64){
		"VecMul": func(d *Descriptor, y []float64) { d.VecMul(y, x) },
		"MulVec": func(d *Descriptor, y []float64) { d.MulVec(y, x) },
	} {
		want := make([]float64, serial.Dim())
		pair(serial, want)
		var wg sync.WaitGroup
		errs := make([]int, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got := make([]float64, parallel.Dim())
				pair(parallel, got)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-12 {
						errs[g]++
					}
				}
			}(g)
		}
		wg.Wait()
		for g, n := range errs {
			if n > 0 {
				t.Fatalf("%s: goroutine %d saw %d mismatches vs serial", name, g, n)
			}
		}
	}
}

// Diag, RowSums and RowIter are the structural surface the operator
// backend and the multigrid restriction rely on; all must agree with the
// materialized matrix.
func TestStructuralSurfaceMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 5; trial++ {
		nt := 1 + rng.Intn(3)
		terms := make([]Term, nt)
		for ti := range terms {
			terms[ti] = Term{Coeff: rng.NormFloat64(), Factors: []*spmat.CSR{
				randomCSR(3, 3, 0.6, rng), randomCSR(4, 4, 0.6, rng),
			}}
		}
		d, err := NewDescriptor(terms)
		if err != nil {
			t.Fatal(err)
		}
		m := d.ToCSR()
		diag := d.Diag()
		sums := d.RowSums()
		refSums := m.RowSums()
		for i := 0; i < d.Dim(); i++ {
			if math.Abs(diag[i]-m.At(i, i)) > 1e-12 {
				t.Fatalf("trial %d: diag[%d] = %g, want %g", trial, i, diag[i], m.At(i, i))
			}
			if math.Abs(sums[i]-refSums[i]) > 1e-12 {
				t.Fatalf("trial %d: rowsum[%d] = %g, want %g", trial, i, sums[i], refSums[i])
			}
		}
		it := d.NewRowIter()
		row := make([]float64, d.Dim())
		for i := 0; i < d.Dim(); i++ {
			for j := range row {
				row[j] = 0
			}
			it.Row(i, func(j int, v float64) { row[j] += v })
			for j := range row {
				if math.Abs(row[j]-m.At(i, j)) > 1e-12 {
					t.Fatalf("trial %d: row %d col %d = %g, want %g", trial, i, j, row[j], m.At(i, j))
				}
			}
		}
	}
}

// A canceled context stops the power solve at the next sweep boundary
// with a partial-progress error wrapping ctx.Err (the repo-wide sweep
// cadence convention).
func TestStationaryPowerCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{randomStochasticCSR(6, rng)}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := d.StationaryPower(PowerOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Pi) != d.Dim() {
		t.Fatal("no partial iterate returned")
	}
}

// An exhausted iteration budget returns the best iterate AND the wrapped
// sentinel — the silent-nonconvergence bug this PR fixes.
func TestStationaryPowerUnconverged(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	d, err := NewDescriptor([]Term{{Coeff: 1, Factors: []*spmat.CSR{randomStochasticCSR(8, rng)}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.StationaryPower(PowerOptions{Tol: 1e-16, MaxIter: 2})
	if err == nil {
		t.Fatal("2-sweep solve reported success")
	}
	if !errors.Is(err, ErrUnconverged) {
		t.Fatalf("err = %v, want ErrUnconverged", err)
	}
	if res.Converged || res.Iterations != 2 || len(res.Pi) != d.Dim() {
		t.Fatalf("partial result %+v", res)
	}
}
