package fsm

import (
	"math"
	"testing"

	"cdrstoch/internal/spmat"
)

func TestSimulatorOccupancyMatchesStationary(t *testing.T) {
	// A toggler driven by a biased coin: stationary occupancy = (1-p, p).
	n := NewNetwork()
	p := 0.3
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", p)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("t", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := spmat.StationaryGTHCSR(ch.P)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := n.NewSimulator(42)
	if err != nil {
		t.Fatal(err)
	}
	occ, missing, err := sim.Occupancy(ch, 1000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("%d steps landed outside the reachable chain", missing)
	}
	for i := range pi {
		if math.Abs(occ[i]-pi[i]) > 0.01 {
			t.Fatalf("state %d: occupancy %g vs stationary %g", i, occ[i], pi[i])
		}
	}
}

func TestSimulatorWiredNetwork(t *testing.T) {
	// Delayed-copy network from the chain tests: simulate and verify the
	// invariant b == previous a along the trajectory.
	n := NewNetwork()
	if err := n.AddMachine(toggler("a")); err != nil {
		t.Fatal(err)
	}
	b := &Machine{
		Name:      "b",
		NumStates: 2,
		Inputs:    []Port{{Name: "in", Size: 2}},
		Next:      func(s int, in []int) int { return in[0] },
	}
	if err := n.AddMachine(b); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("b", "in", MachineOut("a")); err != nil {
		t.Fatal(err)
	}
	sim, err := n.NewSimulator(7)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 1000; k++ {
		prevA := sim.State()[0]
		sim.Step()
		if sim.State()[1] != prevA {
			t.Fatalf("step %d: b=%d, want previous a=%d", k, sim.State()[1], prevA)
		}
	}
}

func TestSimulatorValidation(t *testing.T) {
	if _, err := NewNetwork().NewSimulator(1); err == nil {
		t.Error("empty network accepted")
	}
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewSimulator(1); err == nil {
		t.Error("unwired network accepted")
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	mk := func() *Simulator {
		n := NewNetwork()
		if err := n.AddMachine(toggler("t")); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(coin("c", 0.5)); err != nil {
			t.Fatal(err)
		}
		if err := n.Connect("t", "in", SourceOut("c")); err != nil {
			t.Fatal(err)
		}
		s, err := n.NewSimulator(99)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for k := 0; k < 500; k++ {
		a.Step()
		b.Step()
		if a.State()[0] != b.State()[0] {
			t.Fatal("same seed diverged")
		}
	}
}
