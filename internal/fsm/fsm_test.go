package fsm

import (
	"math"
	"strings"
	"testing"
)

// coin returns a Bernoulli(p) source over {0,1}.
func coin(name string, p float64) *Source {
	return &Source{Name: name, Prob: []float64{1 - p, p}}
}

// toggler is a 2-state machine that moves to the input symbol and outputs
// its current state (Moore).
func toggler(name string) *Machine {
	return &Machine{
		Name:      name,
		NumStates: 2,
		Inputs:    []Port{{Name: "in", Size: 2}},
		OutSize:   2,
		Moore:     true,
		Next:      func(s int, in []int) int { return in[0] },
		Out:       func(s int, _ []int) int { return s },
	}
}

func TestMachineValidation(t *testing.T) {
	n := NewNetwork()
	cases := []*Machine{
		{Name: "", NumStates: 1, Next: func(int, []int) int { return 0 }},
		{Name: "m", NumStates: 0, Next: func(int, []int) int { return 0 }},
		{Name: "m", NumStates: 2, Initial: 5, Next: func(int, []int) int { return 0 }},
		{Name: "m", NumStates: 2},
		{Name: "m", NumStates: 2, OutSize: 2, Next: func(int, []int) int { return 0 }},
		{Name: "m", NumStates: 2, Inputs: []Port{{Name: "x", Size: 0}}, Next: func(int, []int) int { return 0 }},
	}
	for i, m := range cases {
		if err := n.AddMachine(m); err == nil {
			t.Errorf("case %d: invalid machine accepted", i)
		}
	}
}

func TestSourceValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.AddSource(&Source{Name: "", Prob: []float64{1}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := n.AddSource(&Source{Name: "s", Prob: nil}); err == nil {
		t.Error("empty alphabet accepted")
	}
	if err := n.AddSource(&Source{Name: "s", Prob: []float64{-1, 2}}); err == nil {
		t.Error("negative prob accepted")
	}
	if err := n.AddSource(&Source{Name: "s", Prob: []float64{0, 0}}); err == nil {
		t.Error("zero mass accepted")
	}
	if err := n.AddSource(coin("s", 0.5)); err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
	if err := n.AddSource(coin("s", 0.5)); err == nil {
		t.Error("duplicate source accepted")
	}
}

func TestConnectErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("nope", "in", SourceOut("c")); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := n.Connect("t", "nope", SourceOut("c")); err == nil {
		t.Error("unknown port accepted")
	}
	if err := n.Connect("t", "in", SourceOut("nope")); err == nil {
		t.Error("unknown source accepted")
	}
	if err := n.Connect("t", "in", MachineOut("nope")); err == nil {
		t.Error("unknown machine output accepted")
	}
	// Alphabet overflow: wire a 3-symbol source into a 2-symbol port.
	if err := n.AddSource(&Source{Name: "wide", Prob: []float64{0.3, 0.3, 0.4}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("t", "in", SourceOut("wide")); err == nil {
		t.Error("alphabet overflow accepted")
	}
	if err := n.Connect("t", "in", SourceOut("c")); err != nil {
		t.Errorf("valid wire rejected: %v", err)
	}
}

func TestFinalizeUnwiredPort(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err == nil {
		t.Error("unwired port accepted")
	}
}

func TestFinalizeMealyCycle(t *testing.T) {
	mk := func(name string) *Machine {
		return &Machine{
			Name:      name,
			NumStates: 2,
			Inputs:    []Port{{Name: "in", Size: 2}},
			OutSize:   2,
			Moore:     false, // Mealy: output depends on input -> cycle
			Next:      func(s int, in []int) int { return in[0] },
			Out:       func(s int, in []int) int { return in[0] },
		}
	}
	n := NewNetwork()
	if err := n.AddMachine(mk("a")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddMachine(mk("b")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "in", MachineOut("b")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("b", "in", MachineOut("a")); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err == nil {
		t.Error("Mealy cycle accepted")
	}
}

func TestMooreBreaksCycle(t *testing.T) {
	moore := toggler("a") // Moore
	mealy := &Machine{
		Name:      "b",
		NumStates: 2,
		Inputs:    []Port{{Name: "in", Size: 2}},
		OutSize:   2,
		Next:      func(s int, in []int) int { return in[0] },
		Out:       func(s int, in []int) int { return in[0] },
	}
	n := NewNetwork()
	if err := n.AddMachine(moore); err != nil {
		t.Fatal(err)
	}
	if err := n.AddMachine(mealy); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "in", MachineOut("b")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("b", "in", MachineOut("a")); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Errorf("Moore-broken cycle rejected: %v", err)
	}
}

// TestSingleMachineChain checks the chain of one machine driven by a coin:
// the machine copies the input, so the chain is a two-state chain with
// P(s -> 1) = p regardless of s.
func TestSingleMachineChain(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	p := 0.3
	if err := n.AddSource(coin("c", p)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("t", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.States) != 2 {
		t.Fatalf("reachable states = %d, want 2", len(ch.States))
	}
	for i := 0; i < 2; i++ {
		one := ch.StateIndex([]int{1})
		zero := ch.StateIndex([]int{0})
		if got := ch.P.At(i, one); math.Abs(got-p) > 1e-15 {
			t.Errorf("P(%d->1) = %g", i, got)
		}
		if got := ch.P.At(i, zero); math.Abs(got-(1-p)) > 1e-15 {
			t.Errorf("P(%d->0) = %g", i, got)
		}
	}
}

// TestProductChain composes two independent togglers and checks the product
// transition probabilities factorize.
func TestProductChain(t *testing.T) {
	n := NewNetwork()
	pa, pb := 0.2, 0.7
	if err := n.AddMachine(toggler("a")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddMachine(toggler("b")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("ca", pa)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("cb", pb)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "in", SourceOut("ca")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("b", "in", SourceOut("cb")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.States) != 4 {
		t.Fatalf("reachable = %d, want 4", len(ch.States))
	}
	probOf := func(sym int, p float64) float64 {
		if sym == 1 {
			return p
		}
		return 1 - p
	}
	for from := 0; from < 4; from++ {
		for _, sa := range []int{0, 1} {
			for _, sb := range []int{0, 1} {
				to := ch.StateIndex([]int{sa, sb})
				want := probOf(sa, pa) * probOf(sb, pb)
				if got := ch.P.At(from, to); math.Abs(got-want) > 1e-15 {
					t.Errorf("P(%d->{%d,%d}) = %g, want %g", from, sa, sb, got, want)
				}
			}
		}
	}
}

// TestWiredChain checks machine-to-machine wiring: b copies a's Moore
// output (a's previous state), producing a delayed copy.
func TestWiredChain(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("a")); err != nil {
		t.Fatal(err)
	}
	b := &Machine{
		Name:      "b",
		NumStates: 2,
		Inputs:    []Port{{Name: "in", Size: 2}},
		Next:      func(s int, in []int) int { return in[0] },
	}
	if err := n.AddMachine(b); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("b", "in", MachineOut("a")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	// From (a=x, b=y), next must be (a=coin, b=x): b' always equals a.
	for i, tuple := range ch.States {
		cols, vals := ch.P.Row(i)
		for k, c := range cols {
			if vals[k] == 0 {
				continue
			}
			next := ch.States[c]
			if next[1] != tuple[0] {
				t.Fatalf("b' = %d, want a = %d", next[1], tuple[0])
			}
		}
	}
}

func TestReachabilityPrunesStates(t *testing.T) {
	// A machine with 10 states but dynamics confined to {0,1}.
	m := &Machine{
		Name:      "m",
		NumStates: 10,
		Inputs:    []Port{{Name: "in", Size: 2}},
		Next:      func(s int, in []int) int { return in[0] },
	}
	n := NewNetwork()
	if err := n.AddMachine(m); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("m", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.States) != 2 {
		t.Fatalf("reachable = %d, want 2", len(ch.States))
	}
}

func TestZeroProbabilitySymbolsSkipped(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(&Source{Name: "c", Prob: []float64{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("t", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	// Symbol 1 never fires: only state 0 reachable.
	if len(ch.States) != 1 {
		t.Fatalf("reachable = %d, want 1", len(ch.States))
	}
}

func TestBuildChainEmptyNetwork(t *testing.T) {
	if _, err := NewNetwork().BuildChain(); err == nil {
		t.Error("empty network accepted")
	}
}

func TestStateLabelAndDOT(t *testing.T) {
	n := NewNetwork()
	m := toggler("phase")
	m.StateName = func(s int) string { return []string{"lo", "hi"}[s] }
	if err := n.AddMachine(m); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("nr", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("phase", "in", SourceOut("nr")); err != nil {
		t.Fatal(err)
	}
	ch, err := n.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	lbl := n.StateLabel(ch, ch.StateIndex([]int{1}))
	if lbl != "phase=hi" {
		t.Errorf("label = %q", lbl)
	}
	dot := n.DOT()
	for _, want := range []string{"digraph", "src_nr", "m_phase", "Moore", "->", "(2 symbols)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTSourceSymbolNames(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	src := coin("c", 0.5)
	src.SymbolName = func(sym int) string { return []string{"hold", "flip"}[sym] }
	if err := n.AddSource(src); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("t", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n.DOT(), "hold,flip") {
		t.Errorf("DOT missing symbol names:\n%s", n.DOT())
	}
}

func TestAddAfterFinalizeRejected(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("t", "in", SourceOut("c")); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := n.AddMachine(toggler("u")); err == nil {
		t.Error("AddMachine after Finalize accepted")
	}
	if err := n.AddSource(coin("d", 0.5)); err == nil {
		t.Error("AddSource after Finalize accepted")
	}
	if err := n.Connect("t", "in", SourceOut("c")); err == nil {
		t.Error("Connect after Finalize accepted")
	}
}

func TestAccessors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddMachine(toggler("t")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(coin("c", 0.5)); err != nil {
		t.Fatal(err)
	}
	if n.NumMachines() != 1 {
		t.Error("NumMachines")
	}
	if n.Machine("t") == nil || n.Machine("x") != nil {
		t.Error("Machine accessor")
	}
	if n.Source("c") == nil || n.Source("x") != nil {
		t.Error("Source accessor")
	}
}
