// Package fsm implements the paper's modeling formalism: networks of
// finite state machines whose inputs are either outputs of other machines
// or stochastic sources (random symbols drawn from fixed distributions —
// "functions on a Markov chain state-space"). The synchronous product of
// such a network is itself a Markov chain; BuildChain assembles its
// transition probability matrix over the reachable state space.
//
// The CDR model of the paper's Figure 2 is one such network: a data-source
// machine, a phase detector, an up/down counter and a phase-error
// integrator, driven by the stochastic sources n_w and n_r. Package core
// builds that model directly (with the eye jitter n_w handled through
// exact CDFs), and uses this package both to export the compositional
// structure and to cross-validate the direct construction against a fully
// discretized network.
package fsm

import (
	"errors"
	"fmt"
	"sort"
)

// Port describes one input of a machine: a name and the size of the finite
// alphabet it accepts.
type Port struct {
	Name string
	// Size is the alphabet size; wired symbols must lie in [0, Size).
	Size int
}

// Machine is a synchronous finite state machine. If Moore is true the
// output depends on the state only, which breaks combinational feedback
// loops in a network (the phase-error machine in the CDR model is Moore:
// its quantized phase feeds back into the phase detector).
type Machine struct {
	Name string
	// NumStates is the size of the state space.
	NumStates int
	// Inputs lists the machine's input ports in positional order.
	Inputs []Port
	// OutSize is the alphabet size of the single output.
	OutSize int
	// Moore marks the output as state-only (in is ignored by Out).
	Moore bool
	// Next returns the successor state given the current state and one
	// symbol per input port.
	Next func(state int, in []int) int
	// Out returns the output symbol. For Moore machines it is called with
	// a nil input slice.
	Out func(state int, in []int) int
	// Initial is the initial state.
	Initial int
	// StateName optionally labels states for diagnostics and DOT export.
	StateName func(state int) string
}

// validate checks structural sanity of a machine definition.
func (m *Machine) validate() error {
	if m.Name == "" {
		return errors.New("fsm: machine with empty name")
	}
	if m.NumStates <= 0 {
		return fmt.Errorf("fsm: machine %q has %d states", m.Name, m.NumStates)
	}
	if m.Initial < 0 || m.Initial >= m.NumStates {
		return fmt.Errorf("fsm: machine %q initial state %d out of range", m.Name, m.Initial)
	}
	if m.Next == nil {
		return fmt.Errorf("fsm: machine %q has no Next function", m.Name)
	}
	if m.OutSize > 0 && m.Out == nil {
		return fmt.Errorf("fsm: machine %q declares an output but no Out function", m.Name)
	}
	for _, p := range m.Inputs {
		if p.Size <= 0 {
			return fmt.Errorf("fsm: machine %q port %q has alphabet size %d", m.Name, p.Name, p.Size)
		}
	}
	return nil
}

// Source is a stochastic input: at every clock tick it emits symbol s with
// probability Prob[s], independently of everything else.
type Source struct {
	Name string
	// Prob[s] is the probability of emitting symbol s.
	Prob []float64
	// SymbolName optionally labels symbols for DOT export.
	SymbolName func(sym int) string
}

// validate checks that the source is a probability distribution.
func (s *Source) validate() error {
	if s.Name == "" {
		return errors.New("fsm: source with empty name")
	}
	if len(s.Prob) == 0 {
		return fmt.Errorf("fsm: source %q has empty alphabet", s.Name)
	}
	total := 0.0
	for sym, p := range s.Prob {
		if p < 0 {
			return fmt.Errorf("fsm: source %q symbol %d has negative probability", s.Name, sym)
		}
		total += p
	}
	if total <= 0 {
		return fmt.Errorf("fsm: source %q has zero total mass", s.Name)
	}
	return nil
}

// Endpoint names a signal producer in a network: either a machine's output
// or a stochastic source.
type Endpoint struct {
	// Kind selects the producer type.
	Kind EndpointKind
	// Name is the machine or source name.
	Name string
}

// EndpointKind discriminates Endpoint producers.
type EndpointKind int

// Endpoint kinds.
const (
	FromSource EndpointKind = iota
	FromMachine
)

// SourceOut returns an endpoint referring to a stochastic source.
func SourceOut(name string) Endpoint { return Endpoint{Kind: FromSource, Name: name} }

// MachineOut returns an endpoint referring to a machine output.
func MachineOut(name string) Endpoint { return Endpoint{Kind: FromMachine, Name: name} }

// Network is a closed synchronous composition: every machine input port is
// wired to exactly one endpoint.
type Network struct {
	machines []*Machine
	sources  []*Source
	byName   map[string]int // machine name -> index
	srcByNm  map[string]int // source name -> index
	// wiring[mi][pi] is the endpoint feeding port pi of machine mi.
	wiring [][]Endpoint
	// eval is the machine evaluation order (indices), Mealy-dependency
	// topological; computed by Finalize.
	eval      []int
	finalized bool
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{byName: map[string]int{}, srcByNm: map[string]int{}}
}

// AddMachine registers a machine. Names must be unique across machines.
func (n *Network) AddMachine(m *Machine) error {
	if n.finalized {
		return errors.New("fsm: network already finalized")
	}
	if err := m.validate(); err != nil {
		return err
	}
	if _, dup := n.byName[m.Name]; dup {
		return fmt.Errorf("fsm: duplicate machine %q", m.Name)
	}
	n.byName[m.Name] = len(n.machines)
	n.machines = append(n.machines, m)
	n.wiring = append(n.wiring, make([]Endpoint, len(m.Inputs)))
	for i := range n.wiring[len(n.wiring)-1] {
		n.wiring[len(n.wiring)-1][i] = Endpoint{Kind: -1}
	}
	return nil
}

// AddSource registers a stochastic source. Names must be unique across
// sources.
func (n *Network) AddSource(s *Source) error {
	if n.finalized {
		return errors.New("fsm: network already finalized")
	}
	if err := s.validate(); err != nil {
		return err
	}
	if _, dup := n.srcByNm[s.Name]; dup {
		return fmt.Errorf("fsm: duplicate source %q", s.Name)
	}
	n.srcByNm[s.Name] = len(n.sources)
	n.sources = append(n.sources, s)
	return nil
}

// Connect wires endpoint ep into input port portName of machine machineName.
func (n *Network) Connect(machineName, portName string, ep Endpoint) error {
	if n.finalized {
		return errors.New("fsm: network already finalized")
	}
	mi, ok := n.byName[machineName]
	if !ok {
		return fmt.Errorf("fsm: unknown machine %q", machineName)
	}
	m := n.machines[mi]
	pi := -1
	for i, p := range m.Inputs {
		if p.Name == portName {
			pi = i
			break
		}
	}
	if pi < 0 {
		return fmt.Errorf("fsm: machine %q has no port %q", machineName, portName)
	}
	var alphabet int
	switch ep.Kind {
	case FromSource:
		si, ok := n.srcByNm[ep.Name]
		if !ok {
			return fmt.Errorf("fsm: unknown source %q", ep.Name)
		}
		alphabet = len(n.sources[si].Prob)
	case FromMachine:
		omi, ok := n.byName[ep.Name]
		if !ok {
			return fmt.Errorf("fsm: unknown machine %q", ep.Name)
		}
		alphabet = n.machines[omi].OutSize
		if alphabet == 0 {
			return fmt.Errorf("fsm: machine %q has no output", ep.Name)
		}
	default:
		return errors.New("fsm: invalid endpoint kind")
	}
	if alphabet > m.Inputs[pi].Size {
		return fmt.Errorf("fsm: endpoint %q alphabet %d exceeds port %s.%s size %d",
			ep.Name, alphabet, machineName, portName, m.Inputs[pi].Size)
	}
	n.wiring[mi][pi] = ep
	return nil
}

// Finalize checks that every port is wired and computes a combinational
// evaluation order. Mealy outputs depend on resolved inputs, so a Mealy
// machine must be evaluated after its producers; Moore outputs are
// available immediately. A combinational cycle through Mealy machines is
// an error (insert a Moore machine to break it, as real hardware would
// insert a register).
func (n *Network) Finalize() error {
	if n.finalized {
		return nil
	}
	for mi, m := range n.machines {
		for pi := range m.Inputs {
			if n.wiring[mi][pi].Kind != FromSource && n.wiring[mi][pi].Kind != FromMachine {
				return fmt.Errorf("fsm: port %s.%s is unwired", m.Name, m.Inputs[pi].Name)
			}
		}
	}
	// Kahn topological sort on Mealy dependencies.
	indeg := make([]int, len(n.machines))
	deps := make([][]int, len(n.machines)) // producer -> consumers
	for mi := range n.machines {
		for _, ep := range n.wiring[mi] {
			if ep.Kind == FromMachine {
				p := n.byName[ep.Name]
				if !n.machines[p].Moore {
					deps[p] = append(deps[p], mi)
					indeg[mi]++
				}
			}
		}
	}
	queue := []int{}
	for mi, d := range indeg {
		if d == 0 {
			queue = append(queue, mi)
		}
	}
	sort.Ints(queue)
	order := make([]int, 0, len(n.machines))
	for len(queue) > 0 {
		mi := queue[0]
		queue = queue[1:]
		order = append(order, mi)
		for _, c := range deps[mi] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(n.machines) {
		return errors.New("fsm: combinational cycle through Mealy machines")
	}
	n.eval = order
	n.finalized = true
	return nil
}

// NumMachines returns the machine count.
func (n *Network) NumMachines() int { return len(n.machines) }

// Machine returns the machine registered under name, or nil.
func (n *Network) Machine(name string) *Machine {
	if mi, ok := n.byName[name]; ok {
		return n.machines[mi]
	}
	return nil
}

// Source returns the source registered under name, or nil.
func (n *Network) Source(name string) *Source {
	if si, ok := n.srcByNm[name]; ok {
		return n.sources[si]
	}
	return nil
}

// step resolves all wires and computes the successor of a global state for
// one fixed assignment of source symbols. state and nextState are indexed
// by machine position; out holds machine outputs; in is scratch.
func (n *Network) step(state, srcSym, nextState []int) {
	outs := make([]int, len(n.machines))
	ready := make([]bool, len(n.machines))
	// Moore outputs first: they depend on state only.
	for mi, m := range n.machines {
		if m.Moore && m.OutSize > 0 {
			outs[mi] = m.Out(state[mi], nil)
			ready[mi] = true
		}
	}
	ins := make([][]int, len(n.machines))
	for _, mi := range n.eval {
		m := n.machines[mi]
		in := make([]int, len(m.Inputs))
		for pi, ep := range n.wiring[mi] {
			switch ep.Kind {
			case FromSource:
				in[pi] = srcSym[n.srcByNm[ep.Name]]
			case FromMachine:
				p := n.byName[ep.Name]
				if !ready[p] {
					// Cannot happen after a successful Finalize.
					panic("fsm: evaluation order violated")
				}
				in[pi] = outs[p]
			}
		}
		ins[mi] = in
		if !m.Moore && m.OutSize > 0 {
			outs[mi] = m.Out(state[mi], in)
			ready[mi] = true
		}
	}
	for mi, m := range n.machines {
		nextState[mi] = m.Next(state[mi], ins[mi])
	}
}
