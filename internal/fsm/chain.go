package fsm

import (
	"errors"
	"fmt"
	"strings"

	"cdrstoch/internal/spmat"
)

// Chain is the Markov chain induced by a network's synchronous product,
// restricted to the states reachable from the initial state tuple.
type Chain struct {
	// P is the row-stochastic transition probability matrix over reachable
	// states.
	P *spmat.CSR
	// States[i] holds the machine-state tuple of reachable state i, in
	// machine registration order.
	States [][]int
	// Index maps an encoded tuple (mixed-radix over machine state counts)
	// to its reachable-state index.
	Index map[uint64]int
	// Initial is the reachable-state index of the initial tuple.
	Initial int

	radices []uint64
}

// Encode packs a machine-state tuple into the mixed-radix key used by
// Chain.Index.
func (c *Chain) Encode(tuple []int) uint64 {
	var key uint64
	for i, s := range tuple {
		key += uint64(s) * c.radices[i]
	}
	return key
}

// StateIndex returns the reachable index of a tuple, or -1.
func (c *Chain) StateIndex(tuple []int) int {
	if idx, ok := c.Index[c.Encode(tuple)]; ok {
		return idx
	}
	return -1
}

// BuildChain explores the reachable product state space with BFS and
// assembles the transition probability matrix. For each global state it
// enumerates the cartesian product of source symbols (skipping zero-
// probability symbols) and accumulates the joint probability onto the
// successor tuple — the explicit form of the paper's equation (4).
func (n *Network) BuildChain() (*Chain, error) {
	if err := n.Finalize(); err != nil {
		return nil, err
	}
	if len(n.machines) == 0 {
		return nil, errors.New("fsm: empty network")
	}
	// Mixed-radix encoding over machine state counts; guard overflow.
	radices := make([]uint64, len(n.machines))
	prod := uint64(1)
	for i, m := range n.machines {
		radices[i] = prod
		next := prod * uint64(m.NumStates)
		if next/uint64(m.NumStates) != prod {
			return nil, errors.New("fsm: product state space exceeds 64-bit encoding")
		}
		prod = next
	}

	// Enumerate source symbol combinations with nonzero probability once.
	type combo struct {
		sym  []int
		prob float64
	}
	combos := []combo{{sym: make([]int, len(n.sources)), prob: 1}}
	for si, s := range n.sources {
		var next []combo
		for sym, p := range s.Prob {
			if p == 0 {
				continue
			}
			for _, c := range combos {
				ns := make([]int, len(c.sym))
				copy(ns, c.sym)
				ns[si] = sym
				next = append(next, combo{sym: ns, prob: c.prob * p})
			}
		}
		combos = next
		if len(combos) == 0 {
			return nil, fmt.Errorf("fsm: source %q has no usable symbols", s.Name)
		}
	}

	init := make([]int, len(n.machines))
	for i, m := range n.machines {
		init[i] = m.Initial
	}
	ch := &Chain{Index: map[uint64]int{}, radices: radices}
	ch.Index[ch.Encode(init)] = 0
	ch.States = append(ch.States, init)
	ch.Initial = 0

	type edge struct {
		from, to int
		p        float64
	}
	var edges []edge
	next := make([]int, len(n.machines))
	for head := 0; head < len(ch.States); head++ {
		state := ch.States[head]
		for _, c := range combos {
			n.step(state, c.sym, next)
			key := ch.Encode(next)
			to, ok := ch.Index[key]
			if !ok {
				to = len(ch.States)
				ch.Index[key] = to
				tuple := make([]int, len(next))
				copy(tuple, next)
				ch.States = append(ch.States, tuple)
			}
			edges = append(edges, edge{from: head, to: to, p: c.prob})
		}
	}

	tr := spmat.NewTriplet(len(ch.States), len(ch.States))
	tr.Reserve(len(edges))
	for _, e := range edges {
		tr.Add(e.from, e.to, e.p)
	}
	ch.P = tr.ToCSR()
	if err := ch.P.CheckStochastic(1e-9); err != nil {
		return nil, fmt.Errorf("fsm: assembled chain is not stochastic: %w", err)
	}
	return ch, nil
}

// StateLabel renders a human-readable label for reachable state i using the
// machines' StateName hooks where available.
func (n *Network) StateLabel(c *Chain, i int) string {
	parts := make([]string, len(n.machines))
	for mi, m := range n.machines {
		s := c.States[i][mi]
		if m.StateName != nil {
			parts[mi] = fmt.Sprintf("%s=%s", m.Name, m.StateName(s))
		} else {
			parts[mi] = fmt.Sprintf("%s=%d", m.Name, s)
		}
	}
	return strings.Join(parts, " ")
}

// DOT renders the network's compositional structure (paper Figure 2) in
// Graphviz dot syntax: sources as ellipses, machines as boxes, wires as
// labeled edges.
func (n *Network) DOT() string {
	var b strings.Builder
	b.WriteString("digraph cdr {\n  rankdir=LR;\n")
	for _, s := range n.sources {
		label := s.Name
		if s.SymbolName != nil && len(s.Prob) <= 4 {
			names := make([]string, len(s.Prob))
			for sym := range s.Prob {
				names[sym] = s.SymbolName(sym)
			}
			label = fmt.Sprintf("%s\\n{%s}", s.Name, strings.Join(names, ","))
		} else {
			label = fmt.Sprintf("%s\\n(%d symbols)", s.Name, len(s.Prob))
		}
		fmt.Fprintf(&b, "  %q [shape=ellipse,label=%q];\n", "src_"+s.Name, label)
	}
	for _, m := range n.machines {
		shape := "box"
		kind := "Mealy"
		if m.Moore {
			kind = "Moore"
		}
		fmt.Fprintf(&b, "  %q [shape=%s,label=\"%s\\n(%d states, %s)\"];\n",
			"m_"+m.Name, shape, m.Name, m.NumStates, kind)
	}
	for mi, m := range n.machines {
		for pi, ep := range n.wiring[mi] {
			var from string
			switch ep.Kind {
			case FromSource:
				from = "src_" + ep.Name
			case FromMachine:
				from = "m_" + ep.Name
			default:
				continue
			}
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", from, "m_"+m.Name, m.Inputs[pi].Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
