package fsm

import (
	"errors"
	"math/rand"
)

// Trajectory simulation of a network: draws source symbols step by step
// and advances the synchronous product. It provides an independent check
// of the BuildChain construction (empirical state occupancies must match
// the chain's stationary distribution) and a cheap way to exercise very
// large networks whose product chain would not fit in memory.

// Simulator holds the mutable state of one network trajectory.
type Simulator struct {
	net   *Network
	state []int
	next  []int
	sym   []int
	// cum[s] holds the cumulative distribution of source s for inverse-
	// CDF sampling.
	cum [][]float64
	rng *rand.Rand
}

// NewSimulator prepares a trajectory simulator; the network is finalized
// if it was not already.
func (n *Network) NewSimulator(seed int64) (*Simulator, error) {
	if err := n.Finalize(); err != nil {
		return nil, err
	}
	if len(n.machines) == 0 {
		return nil, errors.New("fsm: empty network")
	}
	s := &Simulator{
		net:   n,
		state: make([]int, len(n.machines)),
		next:  make([]int, len(n.machines)),
		sym:   make([]int, len(n.sources)),
		rng:   rand.New(rand.NewSource(seed)),
	}
	for i, m := range n.machines {
		s.state[i] = m.Initial
	}
	s.cum = make([][]float64, len(n.sources))
	for i, src := range n.sources {
		total := 0.0
		for _, p := range src.Prob {
			total += p
		}
		cum := make([]float64, len(src.Prob))
		acc := 0.0
		for j, p := range src.Prob {
			acc += p / total
			cum[j] = acc
		}
		s.cum[i] = cum
	}
	return s, nil
}

// State returns the current machine-state tuple (aliased; do not modify).
func (s *Simulator) State() []int { return s.state }

// Step draws one symbol per source and advances every machine one
// synchronous step.
func (s *Simulator) Step() {
	for i, cum := range s.cum {
		u := s.rng.Float64()
		// Inverse CDF by linear scan: source alphabets are small.
		k := 0
		for k < len(cum)-1 && u > cum[k] {
			k++
		}
		s.sym[i] = k
	}
	s.net.step(s.state, s.sym, s.next)
	s.state, s.next = s.next, s.state
}

// Occupancy runs steps transitions after a warmup and returns the fraction
// of time spent in each reachable state of the given chain (states not in
// the chain's index are counted under index −1, which indicates a
// construction bug and is returned as the second value).
func (s *Simulator) Occupancy(ch *Chain, warmup, steps int) ([]float64, int, error) {
	if steps <= 0 {
		return nil, 0, errors.New("fsm: steps must be positive")
	}
	for k := 0; k < warmup; k++ {
		s.Step()
	}
	counts := make([]float64, len(ch.States))
	missing := 0
	for k := 0; k < steps; k++ {
		idx := ch.StateIndex(s.state)
		if idx < 0 {
			missing++
		} else {
			counts[idx]++
		}
		s.Step()
	}
	for i := range counts {
		counts[i] /= float64(steps)
	}
	return counts, missing, nil
}
