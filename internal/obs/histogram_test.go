package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int // expected bucket index
	}{
		{1, 20},      // exactly 2^0 → upper bound 1
		{1.5, 21},    // (1, 2] → upper bound 2
		{2, 21},      // exactly 2^1 stays in its own bucket
		{2.0001, 22}, // just past a bound moves up
		{0.5, 19},    // exactly 2^-1
		{1e-9, 0},    // below the smallest bound clamps to bucket 0
	}
	for _, c := range cases {
		if got := histBucketIndex(c.v); got != c.want {
			t.Errorf("histBucketIndex(%g) = %d (le=%g), want %d (le=%g)",
				c.v, got, HistogramUpperBound(got), c.want, HistogramUpperBound(c.want))
		}
	}
	// The invariant behind the layout: v ≤ bound(idx) and v > bound(idx-1).
	for _, v := range []float64{0.001, 0.1, 0.7, 1, 3, 100, 1e6, 1e9} {
		idx := histBucketIndex(v)
		if v > HistogramUpperBound(idx) {
			t.Errorf("v=%g above its bucket bound %g", v, HistogramUpperBound(idx))
		}
		if idx > 0 && v <= HistogramUpperBound(idx-1) {
			t.Errorf("v=%g fits the lower bucket %g", v, HistogramUpperBound(idx-1))
		}
	}
}

func TestHistogramObserveAndStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.75, 3, 3, 2e9, 0, -1, math.NaN()} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 6 { // NaN dropped; 0 and -1 land in bucket 0
		t.Errorf("count = %d, want 6", s.Count)
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1 (2e9 > 2^30)", s.Overflow)
	}
	wantSum := 0.75 + 3 + 3 + 2e9 - 1
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
	// Occupied buckets ascend and cover exactly the observed values.
	counts := map[float64]int64{}
	prev := math.Inf(-1)
	for _, b := range s.Buckets {
		if b.Le <= prev {
			t.Errorf("buckets not ascending: %g after %g", b.Le, prev)
		}
		prev = b.Le
		counts[b.Le] = b.Count
	}
	if counts[1] != 1 || counts[4] != 2 {
		t.Errorf("buckets = %+v", s.Buckets)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	s := h.Stats()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("nil stats = %+v", s)
	}
	if q := s.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %g, want NaN", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []float64{1, 3, 1e12} {
		a.Observe(v)
	}
	for _, v := range []float64{3, 500} {
		b.Observe(v)
	}
	m := a.Stats().Merge(b.Stats())
	if m.Count != 5 || m.Overflow != 1 {
		t.Errorf("merged count/overflow = %d/%d, want 5/1", m.Count, m.Overflow)
	}
	// Merging must equal observing everything in one histogram.
	var all Histogram
	for _, v := range []float64{1, 3, 1e12, 3, 500} {
		all.Observe(v)
	}
	want := all.Stats()
	if len(m.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets = %+v, want %+v", m.Buckets, want.Buckets)
	}
	for i := range m.Buckets {
		if m.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, m.Buckets[i], want.Buckets[i])
		}
	}
	if math.Abs(m.Sum-want.Sum) > 1e-3 {
		t.Errorf("merged sum = %g, want %g", m.Sum, want.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10) // all mass in the (8, 16] bucket
	}
	s := h.Stats()
	for _, q := range []float64{0.1, 0.5, 0.99} {
		v := s.Quantile(q)
		if v <= 8 || v > 16 {
			t.Errorf("q%.2f = %g outside the only occupied bucket (8, 16]", q, v)
		}
	}
	// Quantiles are monotone in q.
	if s.Quantile(0.9) < s.Quantile(0.1) {
		t.Error("quantiles not monotone")
	}

	// With mass in the overflow bucket, high quantiles report the largest
	// finite bound rather than inventing a value.
	var o Histogram
	o.Observe(1e12)
	if got := o.Stats().Quantile(0.99); got != HistogramUpperBound(histNumBuckets-1) {
		t.Errorf("overflow quantile = %g", got)
	}
}

// TestHistogramQuantileEmpty pins the no-data contract: every quantile
// of an empty distribution is NaN — no value exists to estimate, and
// NaN poisons downstream arithmetic instead of smuggling in a plausible
// zero. A NaN q is equally unanswerable, even on populated data.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 1, -3, 7, math.NaN()} {
		if got := h.Stats().Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty histogram Quantile(%g) = %g, want NaN", q, got)
		}
	}
	h.Observe(10)
	if got := h.Stats().Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g on populated histogram, want NaN", got)
	}
}

// TestHistogramQuantileAllOverflow pins the saturation contract: when
// every observation landed beyond the largest finite bound, all that is
// known is "bigger than 2^30", so every quantile — including q=0 —
// reports exactly that bound rather than inventing magnitude.
func TestHistogramQuantileAllOverflow(t *testing.T) {
	var h Histogram
	for i := 0; i < 5; i++ {
		h.Observe(1e12)
	}
	s := h.Stats()
	if s.Overflow != 5 || len(s.Buckets) != 0 {
		t.Fatalf("overflow setup wrong: %+v", s)
	}
	want := HistogramUpperBound(histNumBuckets - 1) // 2^30
	for _, q := range []float64{0, 0.01, 0.5, 1} {
		if got := s.Quantile(q); got != want {
			t.Errorf("all-overflow Quantile(%g) = %g, want %g", q, got, want)
		}
	}
}

// TestHistogramQuantileSingleObservation pins the one-sample contract:
// the estimate interpolates geometrically across the containing bucket
// (Le/2, Le] — its lower bound at q=0, Le/2·2^q in between, the upper
// bound at q=1. The observed value itself is recoverable only up to
// the factor-of-two bucket resolution.
func TestHistogramQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(100) // bucket (64, 128]
	s := h.Stats()
	for _, tc := range []struct{ q, want float64 }{
		{0, 64},
		{0.5, 64 * math.Sqrt2},
		{1, 128},
		{-1, 64}, // clamps to q=0
		{2, 128}, // clamps to q=1
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("single-sample Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// The bucket's span always brackets the actual observation.
	if lo, hi := s.Quantile(0), s.Quantile(1); lo >= 100 || hi < 100 {
		t.Errorf("bucket [%g, %g] does not bracket the observation", lo, hi)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.14) }); n != 0 {
		t.Errorf("Observe allocates %.1f/op", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(3.14) }); n != 0 {
		t.Errorf("nil Observe allocates %.1f/op", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perG; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	s := h.Stats()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	wantSum := float64(goroutines) * perG * (perG + 1) / 2
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

// TestHistogramSumExactUnderContention verifies the documented CAS
// guarantee: under concurrent observers every contribution lands exactly
// once. The observations are small integers, whose float64 sums are
// exact regardless of addition order, so the final Sum must match the
// closed form EXACTLY — a single lost or double-counted CAS shifts it by
// at least 1. Concurrent Stats/Merge readers run throughout to pin the
// snapshot path's race-freedom under -race.
func TestHistogramSumExactUnderContention(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 20000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Snapshots taken mid-race must stay self-consistent:
				// Count is derived from the bucket counts, and Merge of a
				// snapshot with itself doubles every field.
				s := h.Stats()
				var fromBuckets int64
				for _, b := range s.Buckets {
					fromBuckets += b.Count
				}
				if s.Count != fromBuckets+s.Overflow {
					t.Errorf("snapshot count %d != buckets %d + overflow %d",
						s.Count, fromBuckets, s.Overflow)
					return
				}
				m := s.Merge(s)
				if m.Count != 2*s.Count || m.Sum != 2*s.Sum {
					t.Errorf("self-merge: count %d sum %g, want %d %g",
						m.Count, m.Sum, 2*s.Count, 2*s.Sum)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(1 + (g+i)%2)) // 1s and 2s, exact in float64
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	s := h.Stats()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	// Each goroutine observes perG/2 ones and perG/2 twos.
	wantSum := float64(goroutines) * perG / 2 * 3
	if s.Sum != wantSum {
		t.Errorf("sum = %g, want exactly %g (a lost or doubled CAS moves it by >= 1)", s.Sum, wantSum)
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("serve.solve_ms").Observe(12)
	reg.Histogram("serve.solve_ms").Observe(40)
	s := reg.Snapshot()
	h, ok := s.Histograms["serve.solve_ms"]
	if !ok || h.Count != 2 {
		t.Fatalf("snapshot histograms = %+v", s.Histograms)
	}
	// Nil registry: no-op, no panic.
	var nilReg *Registry
	nilReg.Histogram("x").Observe(1)
	if n := len(nilReg.Snapshot().Histograms); n != 0 {
		t.Errorf("nil registry has %d histograms", n)
	}
}
