package obs

import "sync"

// DefaultFlightSize is the ring capacity used when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightSize = 4096

// FlightRecorder is a fixed-size concurrent ring buffer of the most
// recent events — the always-on "black box" of a running service. Emit
// overwrites the oldest slot once the ring is full and never allocates,
// so the recorder can sit in every tracer chain at near-zero cost; the
// ring is only read out when a solve fails (postmortem dumps into logs
// and error responses) or on demand (GET /debug/flight).
//
// A nil *FlightRecorder is a valid no-op sink, matching the package's
// nil-tolerance contract.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever emitted
}

// NewFlightRecorder returns a recorder retaining the last size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{buf: make([]Event, size)}
}

// Emit records the event, overwriting the oldest one when the ring is
// full. The hot path is a mutex acquire and a struct copy: no
// allocation, no time syscall.
func (f *FlightRecorder) Emit(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.total%uint64(len(f.buf))] = e
	f.total++
	f.mu.Unlock()
}

// Dropped reports how many events have been overwritten since creation.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total <= uint64(len(f.buf)) {
		return 0
	}
	return f.total - uint64(len(f.buf))
}

// Snapshot copies the retained events, oldest first.
func (f *FlightRecorder) Snapshot() []Event {
	return f.Tail(-1)
}

// Tail returns up to n of the most recent events, oldest first. n < 0
// returns everything retained.
func (f *FlightRecorder) Tail(n int) []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := uint64(len(f.buf))
	held := f.total
	if held > size {
		held = size
	}
	if n >= 0 && uint64(n) < held {
		held = uint64(n)
	}
	out := make([]Event, held)
	start := f.total - held
	for i := uint64(0); i < held; i++ {
		out[i] = f.buf[(start+i)%size]
	}
	return out
}

// TailFor returns up to n of the most recent events stamped with the
// given trace ID, oldest first — the per-request postmortem view. n < 0
// removes the cap. An empty traceID matches nothing.
func (f *FlightRecorder) TailFor(traceID string, n int) []Event {
	if f == nil || traceID == "" {
		return nil
	}
	all := f.Tail(-1)
	var out []Event
	for _, e := range all {
		if e.Trace == traceID {
			out = append(out, e)
		}
	}
	if n >= 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
