package obs

import (
	"math"
	"sync"
	"time"
)

// Event is one structured observability record. Kind discriminates the
// payload; unused fields stay at their zero value and are omitted from the
// JSON encoding where possible.
//
// Kinds emitted by this repository:
//
//	span_start / span_end  wall-clock span around a named operation
//	                       (span_end carries DurNS)
//	iter                   one solver iteration: Iter, Residual
//	level                  one multigrid level visit: Iter (cycle), Level, Size
//	progress               Monte Carlo worker progress: Worker, Done, Total
//	solve_start/solve_end  one tracked solve's lifetime (obs/progress);
//	                       solve_end carries the final Iter/Residual and,
//	                       on failure, the error in Reason
//	watchdog               a watchdog classification transition; Name is the
//	                       new state (stalled, diverging, recovered,
//	                       canceled) and Reason says why
type Event struct {
	// T is the event timestamp in Unix nanoseconds.
	T int64 `json:"t"`
	// Kind is the event discriminator (see the package list above).
	Kind string `json:"kind"`
	// Name identifies the emitting component ("power", "multigrid",
	// "bitsim", "cdranalyze.solve", ...).
	Name string `json:"name"`
	// Iter is the iteration, sweep, or cycle number (1-based).
	Iter int `json:"iter,omitempty"`
	// Residual is the convergence measure after this iteration.
	Residual float64 `json:"residual,omitempty"`
	// Level and Size describe a multigrid level visit.
	Level int `json:"level,omitempty"`
	Size  int `json:"size,omitempty"`
	// Worker, Done, and Total describe simulation progress.
	Worker int   `json:"worker,omitempty"`
	Done   int64 `json:"done,omitempty"`
	Total  int64 `json:"total,omitempty"`
	// DurNS is the span duration (span_end only).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Trace is the request-scoped trace ID the event belongs to; Parent
	// is the root span ID of the request or job that initiated the solve.
	// Both are stamped by WithTrace/StampFromContext wrappers and stay
	// empty (and absent from the JSON encoding) outside traced requests.
	Trace  string `json:"trace,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Reason explains watchdog transitions and solve_end failures
	// ("no heartbeat within 10s", "context canceled", ...).
	Reason string `json:"reason,omitempty"`
}

// Tracer is the sink for structured events. Implementations must be safe
// for concurrent use. Production code passes Tracer values through
// optional fields whose nil default disables tracing; use the package
// emit helpers, which tolerate nil, rather than calling Emit directly.
type Tracer interface {
	Emit(e Event)
}

type noop struct{}

func (noop) Emit(Event) {}

// Discard is a Tracer that drops every event. Prefer a nil Tracer in
// option structs (it skips event construction entirely); Discard exists
// for call sites that require a non-nil sink.
var Discard Tracer = noop{}

// StartSpan emits a span_start event and returns a function that emits
// the matching span_end with the elapsed duration. With a nil tracer it
// does nothing and returns a no-op function.
func StartSpan(t Tracer, name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	t.Emit(Event{T: start.UnixNano(), Kind: "span_start", Name: name})
	return func() {
		end := time.Now()
		t.Emit(Event{T: end.UnixNano(), Kind: "span_end", Name: name, DurNS: int64(end.Sub(start))})
	}
}

// IterEvent emits one per-iteration residual event; nil tracers cost one
// branch and nothing else.
func IterEvent(t Tracer, name string, iter int, residual float64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: time.Now().UnixNano(), Kind: "iter", Name: name, Iter: iter, Residual: residual})
}

// LevelEvent emits one multigrid level-visit event for the given cycle.
func LevelEvent(t Tracer, name string, cycle, level, size int) {
	if t == nil {
		return
	}
	t.Emit(Event{T: time.Now().UnixNano(), Kind: "level", Name: name, Iter: cycle, Level: level, Size: size})
}

// ProgressEvent emits one worker-progress event.
func ProgressEvent(t Tracer, name string, worker int, done, total int64) {
	if t == nil {
		return
	}
	t.Emit(Event{T: time.Now().UnixNano(), Kind: "progress", Name: name, Worker: worker, Done: done, Total: total})
}

// Collector is a Tracer that records events in memory, optionally
// forwarding each one to a next sink. It backs post-hoc analyses such as
// residual-decay slopes without requiring a file sink.
type Collector struct {
	mu     sync.Mutex
	events []Event
	next   Tracer
}

// NewCollector returns a collector forwarding to next (which may be nil).
func NewCollector(next Tracer) *Collector {
	return &Collector{next: next}
}

// Emit records the event and forwards it.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
	if c.next != nil {
		c.next.Emit(e)
	}
}

// Events returns a copy of the recorded events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Reset discards the recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// DecaySlope fits log10(residual) against the iteration index over the
// "iter" events carrying the given name and returns the least-squares
// slope in decades per iteration (negative when converging) together with
// the number of points used. Events with non-positive residuals are
// skipped; fewer than two usable points yield (NaN, n).
func DecaySlope(events []Event, name string) (float64, int) {
	var xs, ys []float64
	for _, e := range events {
		if e.Kind != "iter" || e.Name != name || e.Residual <= 0 {
			continue
		}
		xs = append(xs, float64(e.Iter))
		ys = append(ys, math.Log10(e.Residual))
	}
	n := len(xs)
	if n < 2 {
		return math.NaN(), n
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return math.NaN(), n
	}
	return (float64(n)*sxy - sx*sy) / den, n
}
