package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenSnapshot builds the deterministic registry state behind
// testdata/prometheus.golden: one of each metric kind, including a
// histogram with an overflow observation and a name needing sanitizing.
func goldenSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("serve.solves").Add(3)
	reg.Gauge("serve.cache_entries").Set(2.5)
	reg.Timer("solve").Observe(1500 * time.Millisecond)
	h := reg.Histogram("serve.solve_ms")
	h.Observe(0.75)
	h.Observe(3)
	h.Observe(3)
	h.Observe(2e9) // beyond the largest finite bound: overflow
	return reg.Snapshot()
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition diverged from golden (rerun with -update to accept):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusWellFormed checks structural validity independent of
// the golden bytes: every sample line parses, every family has HELP and
// TYPE, histogram buckets are cumulative and end at +Inf == count.
func TestWritePrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (\S+)$`)
	var bucketCounts []int64
	var histCount int64 = -1
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if strings.HasPrefix(m[2], `{le=`) {
			v, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				t.Errorf("bucket value %q: %v", m[3], err)
			}
			bucketCounts = append(bucketCounts, v)
		}
		if m[1] == "serve_solve_ms_count" {
			histCount, _ = strconv.ParseInt(m[3], 10, 64)
		}
	}
	if len(bucketCounts) == 0 {
		t.Fatal("no bucket samples")
	}
	for i := 1; i < len(bucketCounts); i++ {
		if bucketCounts[i] < bucketCounts[i-1] {
			t.Errorf("bucket series not cumulative: %v", bucketCounts)
		}
	}
	if last := bucketCounts[len(bucketCounts)-1]; last != histCount {
		t.Errorf("+Inf bucket %d != count %d", last, histCount)
	}
	if !strings.Contains(buf.String(), `le="+Inf"`) {
		t.Error("missing mandatory +Inf bucket")
	}
	// Sanitizing: dots became underscores, HELP preserves the original.
	if !strings.Contains(buf.String(), "serve_solves 3") {
		t.Errorf("sanitized counter missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "# HELP serve_solves serve.solves") {
		t.Errorf("HELP does not preserve the registry name:\n%s", buf.String())
	}
	// Timers expose as <name>_seconds summaries.
	if !strings.Contains(buf.String(), "solve_seconds_sum 1.5") {
		t.Errorf("timer summary missing:\n%s", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.solve_ms": "serve_solve_ms",
		"9lives":         "_lives",
		"a:b-c d":        "a:b_c_d",
		"ok_name":        "ok_name",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
