package cost

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultRingSize is the number of SolveReports a Ring retains when the
// caller does not choose a size.
const DefaultRingSize = 512

// Ring is a bounded, concurrency-safe buffer of the most recent
// SolveReports: the backing store of GET /debug/solves. When full, each
// Add overwrites the oldest report and increments the sticky Dropped
// counter, so silent loss is observable in the Registry.
type Ring struct {
	mu      sync.Mutex
	buf     []SolveReport
	next    uint64 // total reports ever added (write cursor)
	dropped uint64
}

// NewRing creates a ring holding size reports; size <= 0 selects
// DefaultRingSize.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{buf: make([]SolveReport, size)}
}

// Add records a report, evicting the oldest when full. Nil-tolerant.
func (r *Ring) Add(rep SolveReport) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.next >= uint64(len(r.buf)) {
		r.dropped++
	}
	r.buf[r.next%uint64(len(r.buf))] = rep
	r.next++
	r.mu.Unlock()
}

// Dropped reports how many reports were evicted before being read.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports how many reports the ring currently retains.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.held())
}

// held returns the retained count; callers hold r.mu.
func (r *Ring) held() uint64 {
	if r.next < uint64(len(r.buf)) {
		return r.next
	}
	return uint64(len(r.buf))
}

// Filter selects reports from a Ring. Zero-valued fields match
// everything; string fields match exactly.
type Filter struct {
	Trace    string
	SpecKey  string
	Endpoint string
	// MinWall drops reports that finished faster than this.
	MinWall time.Duration
	// Limit caps the result count; <= 0 means no cap beyond ring size.
	Limit int
}

func (f Filter) match(rep *SolveReport) bool {
	if f.Trace != "" && rep.Trace != f.Trace {
		return false
	}
	if f.SpecKey != "" && rep.SpecKey != f.SpecKey {
		return false
	}
	if f.Endpoint != "" && rep.Endpoint != f.Endpoint {
		return false
	}
	if f.MinWall > 0 && rep.WallNS < f.MinWall.Nanoseconds() {
		return false
	}
	return true
}

// Reports returns the matching reports newest first, copied out so the
// caller can render without holding the ring lock.
func (r *Ring) Reports(f Filter) []SolveReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.held()
	var out []SolveReport
	for i := uint64(0); i < held; i++ {
		rep := &r.buf[(r.next-1-i)%uint64(len(r.buf))]
		if !f.match(rep) {
			continue
		}
		out = append(out, *rep)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// LatestByTrace returns the newest report with the given trace ID, or
// false when none is retained.
func (r *Ring) LatestByTrace(trace string) (SolveReport, bool) {
	if trace == "" {
		return SolveReport{}, false
	}
	reps := r.Reports(Filter{Trace: trace, Limit: 1})
	if len(reps) == 0 {
		return SolveReport{}, false
	}
	return reps[0], true
}

// WriteTable renders reports as a fixed-width human text table, sorted
// by CPU time descending — the /debug/solves text rendering and the
// cdrreport -top screen share it.
func WriteTable(w io.Writer, reps []SolveReport) error {
	sorted := make([]SolveReport, len(reps))
	copy(sorted, reps)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CPUNS > sorted[j].CPUNS })
	if _, err := fmt.Fprintf(w, "%-10s %-8s %-12s %9s %9s %7s %7s %9s %7s %6s %s\n",
		"TRACE", "ENDPOINT", "SPEC", "CPU_MS", "WALL_MS", "CYCLES", "SWEEPS", "SPMVS", "GB/S", "CACHE", "ERR"); err != nil {
		return err
	}
	for i := range sorted {
		rep := &sorted[i]
		cache := "miss"
		if rep.Cached {
			cache = "hit"
		}
		if _, err := fmt.Fprintf(w, "%-10s %-8s %-12s %9.2f %9.2f %7d %7d %9d %7.2f %6s %s\n",
			clip(rep.Trace, 10), clip(rep.Endpoint, 8), clip(rep.SpecKey, 12),
			rep.CPUMS(), rep.WallMS(), rep.Cycles, rep.Sweeps,
			rep.Pool.SpMVs, rep.SpMVGBps, cache, rep.Err); err != nil {
			return err
		}
	}
	return nil
}

// clip truncates s to at most n bytes for table cells.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
