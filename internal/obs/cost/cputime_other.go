//go:build !unix

package cost

import "time"

// ProcessCPU is unavailable on this platform; reports carry CPUNS = 0
// and readers fall back to wall time.
func ProcessCPU() time.Duration { return 0 }
