package cost

import (
	"runtime/metrics"
	"sync"
	"time"

	"cdrstoch/internal/obs"
)

// runtimeSamples is the fixed runtime/metrics read set of the collector.
// Each entry maps one runtime sample to one (or, for histograms, a few)
// gauges in the Registry under the runtime.* namespace. The set is
// deliberately small and fixed-cardinality: scheduler decisions need GC
// pressure, heap size, scheduling latency, and goroutine count — not the
// full runtime/metrics catalogue.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeCollector polls runtime/metrics into Registry gauges so the
// process's GC and scheduler health exports alongside solver metrics.
type RuntimeCollector struct {
	reg     *obs.Registry
	samples []metrics.Sample
}

// NewRuntimeCollector prepares a collector writing into reg.
func NewRuntimeCollector(reg *obs.Registry) *RuntimeCollector {
	s := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		s[i].Name = name
	}
	return &RuntimeCollector{reg: reg, samples: s}
}

// Poll reads the sample set once and updates the gauges. Unknown or
// unsupported samples (KindBad on older runtimes) are skipped, so the
// collector degrades instead of panicking across Go versions.
func (c *RuntimeCollector) Poll() {
	if c == nil || c.reg == nil {
		return
	}
	metrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			c.reg.Gauge(runtimeGaugeName(s.Name)).Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			c.reg.Gauge(runtimeGaugeName(s.Name)).Set(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			base := runtimeGaugeName(s.Name)
			c.reg.Gauge(base + "_p50").Set(histQuantile(h, 0.5))
			c.reg.Gauge(base + "_p99").Set(histQuantile(h, 0.99))
		}
	}
}

// Start polls immediately and then every interval until the returned
// stop function is called. interval <= 0 disables polling (stop is still
// valid). Stop is idempotent — shutdown paths may race to call it. The
// polling goroutine is the only writer of these gauges.
func (c *RuntimeCollector) Start(interval time.Duration) (stop func()) {
	if c == nil || c.reg == nil || interval <= 0 {
		return func() {}
	}
	c.Poll()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Poll()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// runtimeGaugeName maps a runtime/metrics name like
// "/gc/pauses:seconds" to a registry gauge name like
// "runtime.gc_pauses_seconds" — characters outside the metric-name
// convention (see obs.LintNames) become underscores.
func runtimeGaugeName(sample string) string {
	b := []byte("runtime.")
	for i := 0; i < len(sample); i++ {
		ch := sample[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9':
			b = append(b, ch)
		case ch == '/' && i == 0:
			// drop the leading slash
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// histQuantile estimates quantile q of a runtime Float64Histogram by
// walking bucket counts and returning the lower bound of the bucket
// where the cumulative count crosses q. Infinite bounds clamp to the
// nearest finite neighbour; an empty histogram reports 0.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			lo := h.Buckets[i]
			if isInf(lo) {
				// -Inf lower bound: use the bucket's finite upper bound.
				lo = h.Buckets[i+1]
				if isInf(lo) {
					return 0
				}
			}
			return lo
		}
	}
	// q beyond the last populated bucket: the highest finite bound.
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if !isInf(h.Buckets[i]) {
			return h.Buckets[i]
		}
	}
	return 0
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }
