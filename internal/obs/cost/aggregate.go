package cost

import "cdrstoch/internal/obs"

// Aggregate folds one report into the registry's per-endpoint cost
// histograms. The metric family is cost.<endpoint>.<measure>:
//
//	cost.<endpoint>.cpu_seconds   histogram of process-CPU time per solve
//	cost.<endpoint>.wall_seconds  histogram of wall time per solve
//	cost.<endpoint>.spmv_total    histogram of sparse products per solve
//	cost.<endpoint>.cycles        histogram of multigrid cycles per solve
//	cost.reports                  counter of reports aggregated
//
// Cardinality is bounded by the endpoint set (a handful of code paths),
// never by spec or trace. Cached replays are counted only in
// cost.reports — their solver work was already attributed when the
// original solve ran. Nil registry is a no-op.
func Aggregate(reg *obs.Registry, rep SolveReport) {
	if reg == nil {
		return
	}
	reg.Counter("cost.reports").Inc()
	if rep.Cached {
		return
	}
	ep := rep.Endpoint
	if ep == "" {
		ep = "unknown"
	}
	reg.Histogram("cost." + ep + ".cpu_seconds").Observe(float64(rep.CPUNS) / 1e9)
	reg.Histogram("cost." + ep + ".wall_seconds").Observe(float64(rep.WallNS) / 1e9)
	reg.Histogram("cost." + ep + ".spmv_total").Observe(float64(rep.Pool.SpMVs))
	reg.Histogram("cost." + ep + ".cycles").Observe(float64(rep.Cycles))
}
