package cost

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/spmat"
)

func TestMeterNilIsNoOp(t *testing.T) {
	var m *Meter
	m.SampleGoroutines()
	m.AddCycles(3)
	m.AddSweeps(5)
	m.AddRestarts(1)
	m.AddWorkspaceBytes(64)
	m.AddResidual(1e-9)
	m.SetLevels([]LevelCost{{Level: 0}})
	m.AddPoolDelta(spmat.PoolStats{}, spmat.PoolStats{SpMVs: 3})
	rep := m.Finish()
	if rep.Cycles != 0 || rep.Sweeps != 0 || rep.Pool.SpMVs != 0 {
		t.Errorf("nil meter produced non-zero report: %+v", rep)
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.AddCycles(7)
	m.AddSweeps(40)
	m.AddRestarts(2)
	m.AddWorkspaceBytes(1024)
	m.AddPoolDelta(
		spmat.PoolStats{SpMVs: 2, NNZ: 100, KernelNS: 50},
		spmat.PoolStats{SpMVs: 12, RowSweeps: 4, NNZ: 1100, KernelNS: 1050},
	)
	m.SetLevels([]LevelCost{{Level: 0, Size: 64, Visits: 7, SmoothNS: 123}})
	for i := 0; i < 5; i++ {
		m.AddResidual(1.0 / float64(i+1))
	}
	rep := m.Finish()
	if rep.Cycles != 7 || rep.Sweeps != 40 || rep.Restarts != 2 {
		t.Errorf("cycles/sweeps/restarts = %d/%d/%d", rep.Cycles, rep.Sweeps, rep.Restarts)
	}
	if rep.WorkspaceBytes != 1024 {
		t.Errorf("workspace = %d", rep.WorkspaceBytes)
	}
	if rep.Pool.SpMVs != 10 || rep.Pool.RowSweeps != 4 || rep.Pool.NNZ != 1000 || rep.Pool.KernelNS != 1000 {
		t.Errorf("pool delta = %+v", rep.Pool)
	}
	// 1000 nnz · 16 B over 1000 ns = 16 GB/s.
	if rep.SpMVGBps < 15.9 || rep.SpMVGBps > 16.1 {
		t.Errorf("bandwidth = %g, want 16", rep.SpMVGBps)
	}
	if rep.FinalResidual != 0.2 {
		t.Errorf("final residual = %g, want 0.2", rep.FinalResidual)
	}
	if len(rep.ResidualTail) != 5 || rep.ResidualTail[0] != 1.0 || rep.ResidualTail[4] != 0.2 {
		t.Errorf("residual tail = %v", rep.ResidualTail)
	}
	if len(rep.Levels) != 1 || rep.Levels[0].Visits != 7 {
		t.Errorf("levels = %+v", rep.Levels)
	}
	if rep.WallNS <= 0 {
		t.Errorf("wall = %d", rep.WallNS)
	}
	if rep.PeakGoroutines < 1 {
		t.Errorf("peak goroutines = %d", rep.PeakGoroutines)
	}
}

func TestMeterResidualTailBounded(t *testing.T) {
	m := NewMeter()
	const n = ResidualTailMax + 7
	for i := 1; i <= n; i++ {
		m.AddResidual(float64(i))
	}
	rep := m.Finish()
	if len(rep.ResidualTail) != ResidualTailMax {
		t.Fatalf("tail length = %d, want %d", len(rep.ResidualTail), ResidualTailMax)
	}
	// Oldest retained first: residuals n-ResidualTailMax+1 .. n.
	if rep.ResidualTail[0] != float64(n-ResidualTailMax+1) {
		t.Errorf("tail[0] = %g, want %g", rep.ResidualTail[0], float64(n-ResidualTailMax+1))
	}
	if rep.ResidualTail[ResidualTailMax-1] != float64(n) {
		t.Errorf("tail last = %g, want %g", rep.ResidualTail[ResidualTailMax-1], float64(n))
	}
	if rep.FinalResidual != float64(n) {
		t.Errorf("final = %g", rep.FinalResidual)
	}
}

func TestMeterContextRoundTrip(t *testing.T) {
	m := NewMeter()
	ctx := ContextWith(context.Background(), m)
	if got := FromContext(ctx); got != m {
		t.Error("meter did not round-trip through context")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context yielded a meter")
	}
	if FromContext(nil) != nil {
		t.Error("nil context yielded a meter")
	}
	// Nil meter leaves ctx untouched; nil ctx is upgraded.
	if ContextWith(ctx, nil) != ctx {
		t.Error("nil meter should return ctx unchanged")
	}
	if FromContext(ContextWith(nil, m)) != m {
		t.Error("nil ctx with meter lost the meter")
	}
}

func TestProcessCPUAdvances(t *testing.T) {
	c0 := ProcessCPU()
	if c0 < 0 {
		t.Fatalf("ProcessCPU = %v", c0)
	}
	// Burn a little CPU; the rusage clock should not go backwards.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if c1 := ProcessCPU(); c1 < c0 {
		t.Errorf("CPU time went backwards: %v -> %v", c0, c1)
	}
}

func TestRingEvictionAndFilter(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(SolveReport{Trace: string(rune('a' + i)), Endpoint: "analyze",
			WallNS: int64(i+1) * int64(time.Millisecond)})
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	reps := r.Reports(Filter{})
	if len(reps) != 4 || reps[0].Trace != "f" || reps[3].Trace != "c" {
		t.Errorf("newest-first order broken: %+v", reps)
	}
	// Evicted entries are gone.
	if _, ok := r.LatestByTrace("a"); ok {
		t.Error("evicted report still findable")
	}
	if rep, ok := r.LatestByTrace("e"); !ok || rep.Trace != "e" {
		t.Errorf("LatestByTrace(e) = %+v, %v", rep, ok)
	}
	// MinWall and Limit compose.
	reps = r.Reports(Filter{MinWall: 4 * time.Millisecond, Limit: 1})
	if len(reps) != 1 || reps[0].Trace != "f" {
		t.Errorf("filtered = %+v", reps)
	}
	if got := r.Reports(Filter{Endpoint: "slip"}); len(got) != 0 {
		t.Errorf("endpoint filter matched %d", len(got))
	}
}

func TestRingNilTolerant(t *testing.T) {
	var r *Ring
	r.Add(SolveReport{})
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil ring reported contents")
	}
	if got := r.Reports(Filter{}); got != nil {
		t.Errorf("nil ring reports = %v", got)
	}
	if _, ok := r.LatestByTrace("x"); ok {
		t.Error("nil ring found a trace")
	}
}

func TestWriteTableSortsByCPU(t *testing.T) {
	var sb strings.Builder
	err := WriteTable(&sb, []SolveReport{
		{Trace: "cheap", CPUNS: 1e6},
		{Trace: "costly", CPUNS: 9e6, Cached: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "TRACE") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "costly") || !strings.Contains(lines[1], "hit") {
		t.Errorf("row 1 = %q, want costly/hit first", lines[1])
	}
	if !strings.HasPrefix(lines[2], "cheap") || !strings.Contains(lines[2], "miss") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

// failAfter fails every write after the first n bytes succeed.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errors.New("sink broke")
	}
	f.written += len(p)
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	var sb strings.Builder
	s := NewJSONL(&sb)
	s.Write(SolveReport{Trace: "t1"})
	if s.Err() != nil || s.Dropped() != 0 {
		t.Fatalf("healthy sink: err=%v dropped=%d", s.Err(), s.Dropped())
	}
	var rep SolveReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil || rep.Trace != "t1" {
		t.Fatalf("line = %q: %v", sb.String(), err)
	}

	broken := NewJSONL(&failAfter{})
	broken.Write(SolveReport{})
	broken.Write(SolveReport{})
	if broken.Err() == nil {
		t.Error("write error did not stick")
	}
	if broken.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", broken.Dropped())
	}

	var nilSink *JSONL
	nilSink.Write(SolveReport{})
	if nilSink.Err() != nil || nilSink.Dropped() != 0 {
		t.Error("nil sink misbehaved")
	}
}

func TestAggregateEndpointHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	Aggregate(reg, SolveReport{Endpoint: "analyze", CPUNS: 2e9, WallNS: 3e9,
		Cycles: 11, Pool: PoolCost{SpMVs: 44}})
	Aggregate(reg, SolveReport{Endpoint: "analyze", Cached: true})
	Aggregate(reg, SolveReport{}) // endpoint defaults to "unknown"
	Aggregate(nil, SolveReport{}) // nil registry no-op

	snap := reg.Snapshot()
	if got := snap.Counters["cost.reports"]; got != 3 {
		t.Errorf("cost.reports = %d, want 3", got)
	}
	h, ok := snap.Histograms["cost.analyze.cpu_seconds"]
	if !ok || h.Count != 1 {
		t.Fatalf("cpu_seconds hist = %+v (cached replay must not count)", h)
	}
	if h.Sum < 1.9 || h.Sum > 2.1 {
		t.Errorf("cpu_seconds sum = %g", h.Sum)
	}
	if h := snap.Histograms["cost.analyze.spmv_total"]; h.Sum != 44 {
		t.Errorf("spmv_total sum = %g", h.Sum)
	}
	if h := snap.Histograms["cost.analyze.cycles"]; h.Sum != 11 {
		t.Errorf("cycles sum = %g", h.Sum)
	}
	if _, ok := snap.Histograms["cost.unknown.cpu_seconds"]; !ok {
		t.Error("empty endpoint did not map to unknown")
	}
}

func TestRuntimeCollectorPoll(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Poll()
	snap := reg.Snapshot()
	if g := snap.Gauges["runtime.sched_goroutines_goroutines"]; g < 1 {
		t.Errorf("goroutine gauge = %g", g)
	}
	if g := snap.Gauges["runtime.memory_classes_total_bytes"]; g <= 0 {
		t.Errorf("total memory gauge = %g", g)
	}
	// Histogram samples export as _p50/_p99 quantile gauges.
	for _, name := range []string{"runtime.gc_pauses_seconds_p50", "runtime.gc_pauses_seconds_p99",
		"runtime.sched_latencies_seconds_p50", "runtime.sched_latencies_seconds_p99"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("missing quantile gauge %s", name)
		}
	}
	// Every exported name must survive metrics lint.
	if probs := snap.LintMetrics(); len(probs) != 0 {
		t.Errorf("runtime gauges fail lint: %v", probs)
	}
	// Nil collector / registry are no-ops.
	var nc *RuntimeCollector
	nc.Poll()
	NewRuntimeCollector(nil).Poll()
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewRuntimeCollector(reg)
	stop := c.Start(time.Millisecond)
	defer stop()
	// The immediate poll guarantees the gauges exist before any tick.
	if g := reg.Snapshot().Gauges["runtime.sched_goroutines_goroutines"]; g < 1 {
		t.Errorf("immediate poll missing: %g", g)
	}
	stop()
	// interval <= 0 returns a valid no-op stop.
	c.Start(0)()
}

func TestRuntimeGaugeName(t *testing.T) {
	for in, want := range map[string]string{
		"/gc/pauses:seconds":           "runtime.gc_pauses_seconds",
		"/sched/goroutines:goroutines": "runtime.sched_goroutines_goroutines",
	} {
		if got := runtimeGaugeName(in); got != want {
			t.Errorf("runtimeGaugeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSolveReportJSONOmitsEmpty(t *testing.T) {
	b, err := json.Marshal(SolveReport{WallNS: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"trace_id", "levels", "residual_tail", "error", "cached"} {
		if strings.Contains(string(b), `"`+absent+`"`) {
			t.Errorf("zero report JSON contains %q: %s", absent, b)
		}
	}
}
