// Package cost is the per-solve cost accounting and convergence audit
// layer: every solve — a synchronous HTTP handler, an async job, one
// point of a sweep, or a CLI run — carries a Meter through its context
// and ends with a structured SolveReport stating what the solve actually
// cost (wall and CPU time, solver cycles and sweeps, sparse-kernel
// operation counts and effective bandwidth, per-level multigrid work,
// residual history, workspace bytes, peak goroutines).
//
// The package follows internal/obs's zero-cost-when-disabled contract: a
// nil *Meter is a valid no-op, every method tolerates it, and solvers
// fetch the meter from their context once per solve — never inside an
// iteration loop — so unmetered runs pay one context lookup and nothing
// else. Reports flow four ways in the service: X-Solve-Cost-* response
// headers and the async JobView; the bounded Ring behind GET
// /debug/solves; per-endpoint histograms in the obs Registry (and thus
// /metrics, JSON and Prometheus); and an optional JSONL sink for offline
// analysis.
package cost

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdrstoch/internal/spmat"
)

// LevelCost is the per-level work attribution of one multigrid solve:
// how many times the level was visited across all cycles and how long
// its smoothing (or coarsest-level direct) work took.
type LevelCost struct {
	Level    int   `json:"level"`
	Size     int   `json:"size"`
	Visits   int   `json:"visits"`
	SmoothNS int64 `json:"smooth_ns"`
}

// PoolCost is the sparse-kernel operation count of one solve, deltas of
// spmat.PoolStats between solve start and end.
type PoolCost struct {
	// SpMVs counts sparse matrix–vector products (MulVec and VecMul).
	SpMVs int64 `json:"spmvs"`
	// RowSweeps counts RunRows dispatches (row-parallel solver sweeps).
	RowSweeps int64 `json:"row_sweeps"`
	// NNZ is the total stored entries processed across all kernels.
	NNZ int64 `json:"nnz_processed"`
	// KernelNS is the wall time spent inside the kernels.
	KernelNS int64 `json:"kernel_ns"`
}

// SolveReport is the structured cost record of one solve. Zero-valued
// fields are omitted from the JSON encoding where that cannot mislead
// (a residual of 0 is "not recorded", not "converged to zero").
type SolveReport struct {
	// Trace is the request-scoped trace ID the solve ran under; the same
	// ID correlates the report with flight-recorder events and response
	// headers. Parent is the root span (request or job ID).
	Trace  string `json:"trace_id,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Endpoint labels the code path ("analyze", "slip", "cli", ...);
	// SpecKey is the content hash of the solved spec.
	Endpoint string `json:"endpoint,omitempty"`
	SpecKey  string `json:"spec_key,omitempty"`
	// Start is when the meter was created; WallNS the wall-clock span to
	// Finish; CPUNS the process CPU time (user+system) consumed over that
	// span. CPU time is a process-wide delta: concurrent solves
	// over-attribute each other's cycles, which is the honest upper bound
	// a scheduler needs (documented, not hidden).
	Start  time.Time `json:"start"`
	WallNS int64     `json:"wall_ns"`
	CPUNS  int64     `json:"cpu_ns"`
	// PeakGoroutines is the highest runtime.NumGoroutine() observed at
	// the meter's sample points (solve start, stage boundaries, finish).
	PeakGoroutines int `json:"peak_goroutines,omitempty"`
	// States/NNZ/MatrixBytes describe the finest-level matrix;
	// WorkspaceBytes estimates the solver hierarchy's extra footprint
	// (coarse matrices, transposes, iterate buffers).
	States         int   `json:"states,omitempty"`
	NNZ            int   `json:"nnz,omitempty"`
	MatrixBytes    int64 `json:"matrix_bytes,omitempty"`
	WorkspaceBytes int64 `json:"workspace_bytes,omitempty"`
	// Cycles counts multigrid cycles; Sweeps counts fixed-point sweeps
	// (power/Jacobi/Gauss–Seidel/quasi-stationary); Restarts counts GMRES
	// restarts.
	Cycles   int64 `json:"cycles,omitempty"`
	Sweeps   int64 `json:"sweeps,omitempty"`
	Restarts int64 `json:"restarts,omitempty"`
	// FinalResidual is the last recorded convergence measure;
	// ResidualTail the most recent per-cycle (or per-restart) residuals,
	// oldest first, capped at ResidualTailMax.
	FinalResidual float64   `json:"final_residual,omitempty"`
	ResidualTail  []float64 `json:"residual_tail,omitempty"`
	// Levels attributes multigrid work per level, finest first.
	Levels []LevelCost `json:"levels,omitempty"`
	// Pool is the sparse-kernel operation delta; SpMVGBps the effective
	// kernel bandwidth estimate derived from it (16 bytes per stored
	// entry: the value and its column index).
	Pool     PoolCost `json:"pool"`
	SpMVGBps float64  `json:"spmv_gbps,omitempty"`
	// Cached is true on reports replayed for a cache hit (the solve that
	// produced the body happened earlier); fresh solve reports are false.
	Cached bool `json:"cached,omitempty"`
	// WarmStarted is true when the solve's initial iterate was a
	// neighboring sweep point's solution (or an extrapolation of two)
	// rather than the uniform vector — the continuation path of the sweep
	// engine. Consumers attributing latency differences across otherwise
	// identical specs should check this first.
	WarmStarted bool `json:"warm_started,omitempty"`
	// Retries counts async-job re-runs (filled by the job layer).
	Retries int `json:"retries,omitempty"`
	// Err is the failure, when the solve did not finish cleanly.
	Err string `json:"error,omitempty"`
}

// WallMS and CPUMS return the durations in fractional milliseconds, the
// unit the response headers and cost tables use.
func (r SolveReport) WallMS() float64 { return float64(r.WallNS) / 1e6 }

// CPUMS returns the CPU time in fractional milliseconds.
func (r SolveReport) CPUMS() float64 { return float64(r.CPUNS) / 1e6 }

// ResidualTailMax bounds the residual history retained per report.
const ResidualTailMax = 16

// Meter accumulates the cost of one solve. Construct with NewMeter,
// carry through the solve's context (ContextWith / FromContext), and
// call Finish once to produce the SolveReport. All recording methods are
// safe for concurrent use (sweep fan-outs share one request meter) and
// tolerate a nil receiver, so solver code records unconditionally.
type Meter struct {
	start time.Time
	cpu0  time.Duration

	peakG    atomic.Int64
	cycles   atomic.Int64
	sweeps   atomic.Int64
	restarts atomic.Int64
	wsBytes  atomic.Int64
	warm     atomic.Bool

	mu       sync.Mutex
	finalRes float64
	hasRes   bool
	tail     [ResidualTailMax]float64
	tailN    uint64 // total residuals ever recorded (ring write cursor)
	levels   []LevelCost
	pool     PoolCost
}

// NewMeter starts a meter: wall clock, process CPU baseline, and a first
// goroutine sample.
func NewMeter() *Meter {
	m := &Meter{start: time.Now(), cpu0: ProcessCPU()}
	m.SampleGoroutines()
	return m
}

// SampleGoroutines records the current goroutine count into the running
// peak. Call at stage boundaries; never inside iteration loops.
func (m *Meter) SampleGoroutines() {
	if m == nil {
		return
	}
	g := int64(runtime.NumGoroutine())
	for {
		cur := m.peakG.Load()
		if g <= cur || m.peakG.CompareAndSwap(cur, g) {
			return
		}
	}
}

// AddCycles adds multigrid cycles.
func (m *Meter) AddCycles(n int64) {
	if m == nil {
		return
	}
	m.cycles.Add(n)
}

// AddSweeps adds fixed-point solver sweeps.
func (m *Meter) AddSweeps(n int64) {
	if m == nil {
		return
	}
	m.sweeps.Add(n)
}

// AddRestarts adds GMRES restarts.
func (m *Meter) AddRestarts(n int64) {
	if m == nil {
		return
	}
	m.restarts.Add(n)
}

// AddWorkspaceBytes adds to the solver-workspace footprint estimate.
func (m *Meter) AddWorkspaceBytes(n int64) {
	if m == nil {
		return
	}
	m.wsBytes.Add(n)
}

// MarkWarmStarted flags the solve as warm-started (non-uniform initial
// iterate from a neighboring sweep point).
func (m *Meter) MarkWarmStarted() {
	if m == nil {
		return
	}
	m.warm.Store(true)
}

// AddResidual records one convergence measurement: it becomes the
// current final residual and joins the bounded residual tail.
func (m *Meter) AddResidual(r float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.finalRes = r
	m.hasRes = true
	m.tail[m.tailN%ResidualTailMax] = r
	m.tailN++
	m.mu.Unlock()
}

// SetLevels records the per-level multigrid attribution (copied).
func (m *Meter) SetLevels(levels []LevelCost) {
	if m == nil {
		return
	}
	cp := make([]LevelCost, len(levels))
	copy(cp, levels)
	m.mu.Lock()
	m.levels = cp
	m.mu.Unlock()
}

// AddPoolDelta accumulates the kernel-stat delta after − before of one
// solver stage's worker team.
func (m *Meter) AddPoolDelta(before, after spmat.PoolStats) {
	if m == nil {
		return
	}
	d := after.Sub(before)
	m.mu.Lock()
	m.pool.SpMVs += d.SpMVs
	m.pool.RowSweeps += d.RowSweeps
	m.pool.NNZ += d.NNZ
	m.pool.KernelNS += d.KernelNS
	m.mu.Unlock()
}

// spmvBytesPerNNZ is the traffic estimate per stored entry of a sparse
// product: the 8-byte value plus the 8-byte column index. Vector traffic
// is excluded — for the banded TPMs here it is second-order.
const spmvBytesPerNNZ = 16

// Finish closes the meter and assembles the report. The caller fills the
// identity fields (Trace, Endpoint, SpecKey) and matrix dimensions it
// knows. Finish may be called on a nil meter (zero report).
func (m *Meter) Finish() SolveReport {
	if m == nil {
		return SolveReport{}
	}
	m.SampleGoroutines()
	wall := time.Since(m.start)
	cpu := ProcessCPU() - m.cpu0
	if cpu < 0 {
		cpu = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := SolveReport{
		Start:          m.start,
		WallNS:         wall.Nanoseconds(),
		CPUNS:          cpu.Nanoseconds(),
		PeakGoroutines: int(m.peakG.Load()),
		WorkspaceBytes: m.wsBytes.Load(),
		Cycles:         m.cycles.Load(),
		Sweeps:         m.sweeps.Load(),
		Restarts:       m.restarts.Load(),
		WarmStarted:    m.warm.Load(),
		Pool:           m.pool,
		Levels:         m.levels,
	}
	if m.hasRes {
		rep.FinalResidual = m.finalRes
		held := m.tailN
		if held > ResidualTailMax {
			held = ResidualTailMax
		}
		rep.ResidualTail = make([]float64, held)
		for i := uint64(0); i < held; i++ {
			rep.ResidualTail[i] = m.tail[(m.tailN-held+i)%ResidualTailMax]
		}
	}
	if m.pool.KernelNS > 0 {
		rep.SpMVGBps = float64(m.pool.NNZ) * spmvBytesPerNNZ / float64(m.pool.KernelNS)
	}
	return rep
}

// meterKey carries the solve's meter through its context.
type meterKey struct{}

// ContextWith returns a context carrying the meter; solver entry points
// read it back with FromContext. A nil meter returns ctx unchanged.
func ContextWith(ctx context.Context, m *Meter) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, meterKey{}, m)
}

// FromContext returns the meter carried by ctx, or nil (the valid no-op
// meter) when the context carries none or is nil.
func FromContext(ctx context.Context) *Meter {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}
