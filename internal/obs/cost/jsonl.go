package cost

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL writes SolveReports as JSON Lines for offline analysis — the
// report-level sibling of obs.JSONL. The first write error sticks: later
// writes are dropped and counted rather than spamming a broken sink, and
// the sticky error plus drop count surface through Err/Dropped (and from
// there the Registry).
type JSONL struct {
	mu      sync.Mutex
	enc     *json.Encoder
	err     error
	dropped uint64
}

// NewJSONL wraps w as a report sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write appends one report line. Nil-tolerant; after the first error all
// writes are counted as dropped.
func (s *JSONL) Write(rep SolveReport) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		s.dropped++
		return
	}
	if err := s.enc.Encode(rep); err != nil {
		s.err = err
		s.dropped++
	}
}

// Err returns the sticky write error, if any.
func (s *JSONL) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dropped reports how many reports were lost to the sticky error.
func (s *JSONL) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
