//go:build unix

package cost

import (
	"syscall"
	"time"
)

// ProcessCPU returns the process's cumulative CPU time, user plus
// system, via getrusage(RUSAGE_SELF). Meters difference two readings to
// attribute CPU to a solve; because the reading is process-wide,
// concurrent solves over-attribute each other's work (documented on
// SolveReport.CPUNS).
func ProcessCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano()+ru.Stime.Nano()) * time.Nanosecond
}
