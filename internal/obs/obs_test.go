package obs

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("bits").Add(2)
				reg.Gauge("rate").Set(float64(g))
				reg.Timer("step").Observe(time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["bits"]; got != 2*goroutines*perG {
		t.Errorf("counter = %d, want %d", got, 2*goroutines*perG)
	}
	if s.Timers["step"].Count != goroutines*perG {
		t.Errorf("timer count = %d", s.Timers["step"].Count)
	}
	if s.Timers["step"].Min != time.Microsecond || s.Timers["step"].Max != time.Microsecond {
		t.Errorf("timer min/max = %v/%v", s.Timers["step"].Min, s.Timers["step"].Max)
	}
	if r := s.Gauges["rate"]; r < 0 || r >= goroutines {
		t.Errorf("gauge = %g", r)
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Timer("z").Observe(time.Second)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Timers) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPathAllocations pins the zero-cost-when-disabled contract:
// the per-iteration emit helpers must not allocate (nor call time.Now)
// when the tracer is nil, and nil-registry metric updates must not
// allocate either.
func TestDisabledPathAllocations(t *testing.T) {
	var tr Tracer // nil: the disabled default in every option struct
	if n := testing.AllocsPerRun(1000, func() {
		IterEvent(tr, "power", 7, 1e-9)
		LevelEvent(tr, "multigrid", 1, 2, 64)
		ProgressEvent(tr, "bitsim", 0, 100, 1000)
	}); n != 0 {
		t.Errorf("nil-tracer emit helpers allocate %.1f/op", n)
	}
	var reg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		reg.Counter("bits").Add(1)
		reg.Gauge("rate").Set(1)
	}); n != 0 {
		t.Errorf("nil-registry updates allocate %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		done := StartSpan(tr, "solve")
		done()
	}); n != 0 {
		t.Errorf("nil-tracer StartSpan allocates %.1f/op", n)
	}
	var reg2 *Registry
	if n := testing.AllocsPerRun(1000, func() {
		reg2.Histogram("lat").Observe(1.5)
	}); n != 0 {
		t.Errorf("nil-registry histogram observe allocates %.1f/op", n)
	}
	var flight *FlightRecorder
	if n := testing.AllocsPerRun(1000, func() {
		flight.Emit(Event{Kind: "iter", Iter: 1})
	}); n != 0 {
		t.Errorf("nil flight recorder Emit allocates %.1f/op", n)
	}
}

// failAfterWriter errors on every write past the first n bytes.
type failAfterWriter struct {
	n       int
	written int
	err     error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, w.err
	}
	w.written += len(p)
	return len(p), nil
}

// TestJSONLStickyError pins the failure contract: the first write error
// is retained by Err, later events are dropped (not written, not
// panicking), and Dropped counts every loss including the failing event.
func TestJSONLStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	sink := NewJSONL(&failAfterWriter{n: 1, err: wantErr}) // first event already fails
	IterEvent(sink, "power", 1, 0.5)
	IterEvent(sink, "power", 2, 0.25)
	IterEvent(sink, "power", 3, 0.125)
	if err := sink.Err(); !errors.Is(err, wantErr) {
		t.Errorf("Err() = %v, want %v", err, wantErr)
	}
	if d := sink.Dropped(); d != 3 {
		t.Errorf("Dropped() = %d, want 3", d)
	}
	// A healthy sink reports no drops.
	var buf bytes.Buffer
	ok := NewJSONL(&buf)
	IterEvent(ok, "power", 1, 0.5)
	if ok.Err() != nil || ok.Dropped() != 0 {
		t.Errorf("healthy sink: err=%v dropped=%d", ok.Err(), ok.Dropped())
	}
}

// TestCollectorConcurrentAccess exercises Emit, Events and Reset racing —
// run under -race this pins the Collector's locking discipline.
func TestCollectorConcurrentAccess(t *testing.T) {
	col := NewCollector(nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				IterEvent(col, "gs", i, 0.5)
				if i%100 == 0 {
					for _, e := range col.Events() {
						_ = e.Iter
					}
				}
				if g == 0 && i%250 == 0 {
					col.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
	// No assertion beyond absence of races/panics; the event count is
	// unknowable with concurrent Resets.
	col.Events()
}

func TestDiscardTracerDropsEvents(t *testing.T) {
	// Must simply not panic and accept anything.
	Discard.Emit(Event{Kind: "iter", Name: "x", Iter: 1, Residual: 0.5})
	done := StartSpan(Discard, "span")
	done()
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	done := StartSpan(sink, "solve")
	IterEvent(sink, "power", 1, 0.25)
	IterEvent(sink, "power", 2, 0.0625)
	LevelEvent(sink, "multigrid", 3, 1, 128)
	ProgressEvent(sink, "bitsim", 2, 500, 1000)
	done()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("round-tripped %d events, want 6", len(events))
	}
	if events[0].Kind != "span_start" || events[0].Name != "solve" {
		t.Errorf("first event = %+v", events[0])
	}
	if e := events[1]; e.Kind != "iter" || e.Name != "power" || e.Iter != 1 || e.Residual != 0.25 {
		t.Errorf("iter event = %+v", e)
	}
	if e := events[3]; e.Kind != "level" || e.Level != 1 || e.Size != 128 || e.Iter != 3 {
		t.Errorf("level event = %+v", e)
	}
	if e := events[4]; e.Kind != "progress" || e.Worker != 2 || e.Done != 500 || e.Total != 1000 {
		t.Errorf("progress event = %+v", e)
	}
	last := events[5]
	if last.Kind != "span_end" || last.DurNS < 0 || last.T < events[0].T {
		t.Errorf("span_end event = %+v", last)
	}
}

func TestCollectorAndDecaySlope(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector(NewJSONL(&buf))
	// Exact decade-per-iteration decay: slope must be -1.
	for i := 1; i <= 5; i++ {
		IterEvent(col, "gs", i, math.Pow(10, -float64(i)))
	}
	IterEvent(col, "other", 1, 0.5) // different name: excluded from the fit
	slope, n := DecaySlope(col.Events(), "gs")
	if n != 5 {
		t.Fatalf("fit used %d points, want 5", n)
	}
	if math.Abs(slope+1) > 1e-12 {
		t.Errorf("slope = %g, want -1", slope)
	}
	if got := strings.Count(buf.String(), "\n"); got != 6 {
		t.Errorf("forwarded %d lines, want 6", got)
	}
	if _, n := DecaySlope(col.Events(), "missing"); n != 0 {
		t.Errorf("missing solver matched %d points", n)
	}
	col.Reset()
	if len(col.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

func TestSnapshotWriters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("solver.iterations").Add(42)
	reg.Gauge("bitsim.bits_per_sec").Set(1.5e8)
	reg.Timer("solve").Observe(3 * time.Millisecond)
	s := reg.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"solver.iterations", "42", "bitsim.bits_per_sec", "count=1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"solver.iterations":42`) {
		t.Errorf("json snapshot missing counter: %s", js.String())
	}
}

// TestSnapshotJSONMatchesWriteJSON pins the byte-level contract the
// cdrserved /metrics endpoint relies on: SnapshotJSON is exactly what
// Snapshot().WriteJSON writes.
func TestSnapshotJSONMatchesWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.solves").Add(3)
	reg.Gauge("serve.cache_entries").Set(2)
	reg.Timer("serve.solve").Observe(5 * time.Millisecond)

	got, err := reg.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("SnapshotJSON diverges from WriteJSON:\n%s\nvs\n%s", got, want.Bytes())
	}

	nilGot, err := (*Registry)(nil).SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(nilGot), "{") {
		t.Errorf("nil registry snapshot: %q", nilGot)
	}
}
