package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONL is a Tracer that writes one JSON object per line to an io.Writer.
// Writes are serialized by a mutex, so one sink can be shared by
// concurrent solver workers. Encoding errors are sticky: the first one is
// retained and reported by Err, the event that hit it and every
// subsequent one are dropped, and Dropped counts the losses so callers
// can tell a clean trace from a truncated one.
type JSONL struct {
	mu      sync.Mutex
	enc     *json.Encoder
	err     error
	dropped int64
}

// NewJSONL returns a JSON-lines tracer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit encodes the event as one JSON line. After the first write error
// the sink stops writing; the error stays visible through Err and the
// losses through Dropped.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		j.dropped++
		return
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = err
		j.dropped++
	}
}

// Err reports the first encoding error, if any. It is sticky: once set
// it never changes, so a single check after a run surfaces the earliest
// failure rather than the most recent one.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Dropped reports how many events were lost to the sticky error (the
// failing event included).
func (j *JSONL) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// ReadEvents decodes a JSON-lines event stream, skipping blank lines.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
