package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONL is a Tracer that writes one JSON object per line to an io.Writer.
// Writes are serialized by a mutex, so one sink can be shared by
// concurrent solver workers. Encoding errors are sticky: the first one is
// retained and reported by Err, and subsequent events are dropped.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSON-lines tracer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit encodes the event as one JSON line.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(e)
}

// Err reports the first encoding error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadEvents decodes a JSON-lines event stream, skipping blank lines.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
