package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: one bucket per power of two, upper bounds
// 2^histMinExp … 2^histMaxExp inclusive, plus an overflow bucket beyond
// the largest bound. The layout is fixed at compile time, so histograms
// from different processes (or different snapshots of the same process)
// merge exactly, bucket by bucket.
//
// The span covers nine decades below 1 and nine above: microsecond-scale
// stage latencies in milliseconds, iteration counts in the hundreds, and
// byte counts in the gigabytes all land inside the finite buckets.
const (
	histMinExp     = -20 // smallest upper bound 2^-20 ≈ 9.5e-7
	histMaxExp     = 30  // largest finite upper bound 2^30 ≈ 1.07e9
	histNumBuckets = histMaxExp - histMinExp + 1
)

// HistogramUpperBound returns the inclusive upper bound of finite bucket
// i (0 ≤ i < histNumBuckets), i.e. 2^(i+histMinExp).
func HistogramUpperBound(i int) float64 {
	return math.Ldexp(1, i+histMinExp)
}

// histBucketIndex maps a positive observation to its bucket: the
// smallest i with v ≤ HistogramUpperBound(i). Results ≥ histNumBuckets
// mean overflow.
func histBucketIndex(v float64) int {
	f, exp := math.Frexp(v) // v = f·2^exp, f ∈ [0.5, 1)
	idx := exp - histMinExp
	if f == 0.5 {
		idx-- // v is exactly 2^(exp-1): it belongs in the lower bucket
	}
	if idx < 0 {
		return 0
	}
	return idx
}

// Histogram is a log₂-bucketed distribution metric: fixed bucket layout,
// lock-free atomic counters, safe for concurrent use, and nil-tolerant
// like every other metric in this package. Observe never allocates, so
// hot solver loops can record per-iteration values unconditionally.
type Histogram struct {
	counts   [histNumBuckets]atomic.Int64
	overflow atomic.Int64
	sumBits  atomic.Uint64
}

// Observe records one value. Non-positive values land in the smallest
// bucket (the paper's measures are all non-negative; zeros come from
// e.g. instant cache replies). NaN is dropped.
//
// The sum update is a compare-and-swap loop on the float's bit pattern:
// under concurrent observers every contribution is added exactly once —
// a lost CAS retries against the fresh value, so contributions are never
// dropped or double-counted. Only the addition ORDER is scheduling-
// dependent, so concurrent runs may differ in the last ulps of Sum;
// integer-valued observations that fit a float64 exactly sum exactly.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if v <= 0 {
		h.counts[0].Add(1)
		return
	}
	idx := histBucketIndex(v)
	if idx >= histNumBuckets {
		h.overflow.Add(1)
		return
	}
	h.counts[idx].Add(1)
}

// HistogramBucket is one occupied bucket of a snapshot: Count
// observations with value ≤ Le (and above the next-lower bound).
type HistogramBucket struct {
	// Le is the inclusive upper bound of the bucket, always a power of 2.
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramStats is a point-in-time copy of a histogram. Buckets holds
// only occupied finite buckets, ascending by bound; Overflow counts
// observations beyond the largest finite bound. Count is the sum of all
// bucket counts (including overflow), so the derived cumulative series
// is always self-consistent even when the snapshot raced concurrent
// observers. Observe updates the sum before the bucket count, so a
// racing snapshot's Sum may transiently LEAD Count by the in-flight
// observations (never lag: a counted observation is always in Sum).
// Once observers quiesce, Sum and the bucket counts agree exactly.
// Merge operates on snapshot copies and needs no synchronization.
type HistogramStats struct {
	Count    int64             `json:"count"`
	Sum      float64           `json:"sum"`
	Buckets  []HistogramBucket `json:"buckets,omitempty"`
	Overflow int64             `json:"overflow,omitempty"`
}

// Stats copies the current distribution. A nil histogram yields the zero
// stats.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	s := HistogramStats{Sum: math.Float64frombits(h.sumBits.Load())}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: HistogramUpperBound(i), Count: c})
		s.Count += c
	}
	s.Overflow = h.overflow.Load()
	s.Count += s.Overflow
	return s
}

// Merge returns the combined distribution of s and o. Both sides share
// the package's fixed bucket layout, so merging is exact: counts add
// bucket by bucket.
func (s HistogramStats) Merge(o HistogramStats) HistogramStats {
	out := HistogramStats{
		Count:    s.Count + o.Count,
		Sum:      s.Sum + o.Sum,
		Overflow: s.Overflow + o.Overflow,
	}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Le < o.Buckets[j].Le):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Le < s.Buckets[i].Le:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, HistogramBucket{
				Le:    s.Buckets[i].Le,
				Count: s.Buckets[i].Count + o.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by geometric
// interpolation within the containing bucket — the natural choice for
// log-scaled buckets, exact up to the factor-of-two bucket resolution.
// q outside [0, 1] clamps to the nearest end.
//
// Edge cases, pinned by tests:
//   - An empty distribution yields NaN for every q (as does q = NaN):
//     there is no value to estimate, and NaN poisons downstream
//     arithmetic instead of smuggling in a plausible zero.
//   - A quantile landing in the overflow bucket reports the largest
//     finite bound (2^30): the true value is only known to be beyond
//     it, so the estimate saturates rather than invents magnitude. A
//     distribution that is ALL overflow therefore reports 2^30 for
//     every q, including q = 0.
//   - A single observation v interpolates across its containing bucket
//     (Le/2, Le]: Le/2·2^q, i.e. the bucket's lower bound at q = 0
//     rising geometrically to its upper bound at q = 1 — the value is
//     recoverable only up to bucket resolution, never exactly.
func (s HistogramStats) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		prev := cum
		cum += float64(b.Count)
		if cum >= rank {
			frac := (rank - prev) / float64(b.Count)
			// Bucket spans (Le/2, Le]; interpolate in log space.
			return b.Le / 2 * math.Pow(2, frac)
		}
	}
	return HistogramUpperBound(histNumBuckets - 1)
}
