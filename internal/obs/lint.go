package obs

import (
	"fmt"
	"sort"
	"strings"
)

// LintMetrics checks every metric name in the snapshot against the
// repository's naming convention and the Prometheus exposition mapping,
// returning one message per violation (empty means clean). It is the
// engine of the metrics-lint CI stage.
//
// The convention: names are lowercase-ish identifiers with '.' as the
// one documented namespace separator ("serve.cache_hits",
// "cost.analyze.cpu_seconds"). The lint asserts that Prometheus
// sanitization is the identity apart from that fixed '.'→'_' mapping —
// no silently mangled characters, no leading digit — and that no two
// registered metrics collide after sanitization (families, with the
// timer "_seconds" suffix applied, must stay distinct, or two metrics
// would silently merge in the exposition).
func (s Snapshot) LintMetrics() []string {
	var problems []string
	exposed := map[string][]string{} // exposed family name -> registry names

	check := func(name, exposedName string) {
		want := strings.ReplaceAll(name, ".", "_")
		if got := promName(name); got != want {
			problems = append(problems,
				fmt.Sprintf("metric %q: prometheus sanitization rewrites it to %q (only '.' may map to '_')", name, got))
		}
		if name == "" || (name[0] >= '0' && name[0] <= '9') || name[0] == '.' {
			problems = append(problems,
				fmt.Sprintf("metric %q: must start with a letter or underscore", name))
		}
		exposed[exposedName] = append(exposed[exposedName], name)
	}

	for name := range s.Counters {
		check(name, promName(name))
	}
	for name := range s.Gauges {
		check(name, promName(name))
	}
	for name := range s.Timers {
		// Timers expose as <name>_seconds summaries.
		check(name, promName(name)+"_seconds")
	}
	for name := range s.Histograms {
		check(name, promName(name))
	}

	families := make([]string, 0, len(exposed))
	for f := range exposed {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		if names := exposed[f]; len(names) > 1 {
			sort.Strings(names)
			problems = append(problems,
				fmt.Sprintf("metrics %v collide after prometheus sanitization (all expose as %q)", names, f))
		}
	}
	sort.Strings(problems)
	return problems
}
