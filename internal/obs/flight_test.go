package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Emit(Event{Kind: "iter", Iter: i})
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Iter != 6+i { // oldest-first: 6,7,8,9
			t.Errorf("event %d has Iter=%d, want %d", i, e.Iter, 6+i)
		}
	}
	if d := f.Dropped(); d != 6 {
		t.Errorf("dropped = %d, want 6", d)
	}
	if tail := f.Tail(2); len(tail) != 2 || tail[0].Iter != 8 || tail[1].Iter != 9 {
		t.Errorf("Tail(2) = %+v", tail)
	}
}

func TestFlightRecorderTailFor(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 6; i++ {
		trace := "aaaa"
		if i%2 == 1 {
			trace = "bbbb"
		}
		f.Emit(Event{Kind: "iter", Iter: i, Trace: trace})
	}
	got := f.TailFor("aaaa", -1)
	if len(got) != 3 {
		t.Fatalf("TailFor(aaaa) = %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Trace != "aaaa" || e.Iter != 2*i {
			t.Errorf("event %d = %+v", i, e)
		}
	}
	if got := f.TailFor("aaaa", 2); len(got) != 2 || got[0].Iter != 2 {
		t.Errorf("capped TailFor = %+v", got)
	}
	if got := f.TailFor("", -1); got != nil {
		t.Errorf("empty trace matched %d events", len(got))
	}
	if got := f.TailFor("cccc", -1); got != nil {
		t.Errorf("unknown trace matched %d events", len(got))
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Emit(Event{Kind: "iter"})
	if f.Snapshot() != nil || f.Tail(3) != nil || f.TailFor("x", 1) != nil || f.Dropped() != 0 {
		t.Error("nil recorder not a no-op")
	}
}

// TestFlightRecorderEmitZeroAlloc pins the always-on cost: once the ring
// is full (every Emit an overwrite), recording must not allocate.
func TestFlightRecorderEmitZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(8)
	e := Event{Kind: "iter", Name: "power", Iter: 3, Residual: 0.5, Trace: "aaaa"}
	for i := 0; i < 16; i++ {
		f.Emit(e) // fill past capacity so every later Emit drops an event
	}
	if n := testing.AllocsPerRun(1000, func() { f.Emit(e) }); n != 0 {
		t.Errorf("full-ring Emit allocates %.1f/op", n)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			trace := fmt.Sprintf("t%d", g)
			for i := 0; i < perG; i++ {
				f.Emit(Event{Kind: "iter", Iter: i, Trace: trace})
				if i%50 == 0 {
					f.Tail(8)
					f.TailFor(trace, 4)
					f.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(f.Snapshot()); got != 32 {
		t.Errorf("retained %d events, want 32", got)
	}
	if d := f.Dropped(); d != goroutines*perG-32 {
		t.Errorf("dropped = %d, want %d", d, goroutines*perG-32)
	}
}

func TestTeeFansOutAndDropsNils(t *testing.T) {
	a, b := NewCollector(nil), NewCollector(nil)
	tr := Tee(nil, a, nil, b)
	tr.Emit(Event{Kind: "iter", Iter: 1})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("tee delivered %d/%d events", len(a.Events()), len(b.Events()))
	}
	if got := Tee(nil, nil); got != nil {
		t.Errorf("all-nil tee = %#v, want nil", got)
	}
	if got := Tee(a); got != Tracer(a) {
		t.Errorf("single-member tee = %#v, want the member itself", got)
	}
}
