package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one family per metric with HELP and TYPE
// lines, families sorted by exposed name. Counters and gauges map
// directly; timers become summaries named <name>_seconds carrying sum
// (in seconds) and count; histograms keep their recorded unit and emit
// the standard cumulative _bucket/_sum/_count series ending in the
// mandatory le="+Inf" bucket.
//
// Metric names are sanitized to the Prometheus alphabet ([a-zA-Z0-9_:],
// so "serve.http_200" exposes as "serve_http_200"); the HELP line
// preserves the registry's original name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type family struct {
		name string
		text string
	}
	var families []family
	add := func(name, text string) {
		families = append(families, family{name: name, text: text})
	}

	for orig, v := range s.Counters {
		name := promName(orig)
		add(name, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, orig, name, name, v))
	}
	for orig, v := range s.Gauges {
		name := promName(orig)
		add(name, fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, orig, name, name, promFloat(v)))
	}
	for orig, t := range s.Timers {
		name := promName(orig) + "_seconds"
		add(name, fmt.Sprintf("# HELP %s %s\n# TYPE %s summary\n%s_sum %s\n%s_count %d\n",
			name, orig, name, name, promFloat(t.Total.Seconds()), name, t.Count))
	}
	for orig, h := range s.Histograms {
		name := promName(orig)
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, orig, name)
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(bk.Le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count)
		add(name, b.String())
	}

	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })
	for _, f := range families {
		if _, err := io.WriteString(w, f.text); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus alphabet:
// every character outside [a-zA-Z0-9_:] (leading digits included)
// becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat formats a float the way the exposition format expects,
// spelling infinities as +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
