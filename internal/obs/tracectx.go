package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// fallbackSeq drives trace-ID generation when crypto/rand is unavailable
// (it never is on the supported platforms, but the fallback keeps IDs
// unique within the process regardless).
var fallbackSeq atomic.Uint64

// NewTraceID returns a 16-hex-character random identifier suitable for
// request and span IDs.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], fallbackSeq.Add(1)|1<<63)
	}
	return hex.EncodeToString(b[:])
}

// traceKey is the context key carrying a request's trace identity.
type traceKey struct{}

type traceInfo struct {
	trace, span string
}

// ContextWithTrace returns a context carrying the given trace ID and the
// root span ID of the emitting request/job. Solver entry points read it
// back with StampFromContext so every event they emit carries the IDs.
func ContextWithTrace(ctx context.Context, traceID, spanID string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceKey{}, traceInfo{trace: traceID, span: spanID})
}

// TraceFromContext returns the trace and root-span IDs carried by ctx,
// or empty strings when the context carries none (or is nil).
func TraceFromContext(ctx context.Context) (traceID, spanID string) {
	if ctx == nil {
		return "", ""
	}
	info, _ := ctx.Value(traceKey{}).(traceInfo)
	return info.trace, info.span
}

// stamped decorates a sink by filling the Trace and Parent fields of
// every event that does not already carry them.
type stamped struct {
	next   Tracer
	trace  string
	parent string
}

func (s stamped) Emit(e Event) {
	if e.Trace == "" {
		e.Trace = s.trace
	}
	if e.Parent == "" {
		e.Parent = s.parent
	}
	s.next.Emit(e)
}

// WithTrace returns a Tracer that stamps trace/parent IDs onto events
// before forwarding them to next. A nil next or empty traceID returns
// next unchanged, preserving the zero-cost disabled path.
func WithTrace(next Tracer, traceID, parent string) Tracer {
	if next == nil || traceID == "" {
		return next
	}
	return stamped{next: next, trace: traceID, parent: parent}
}

// StampFromContext wraps next so events carry the trace identity of ctx.
// It is the one-line hook every solver entry point calls on its
// configured tracer: nil tracers and trace-less contexts pass through
// untouched (and unallocated), so the disabled path stays free.
func StampFromContext(ctx context.Context, next Tracer) Tracer {
	if next == nil || ctx == nil {
		return next
	}
	traceID, spanID := TraceFromContext(ctx)
	return WithTrace(next, traceID, spanID)
}

// tee fans every event out to multiple sinks in order.
type tee []Tracer

func (t tee) Emit(e Event) {
	for _, x := range t {
		x.Emit(e)
	}
}

// Tee combines tracers into one sink, dropping nil members. Zero live
// members yield nil (the disabled tracer); one yields that member
// directly, avoiding the fan-out indirection.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}
