// Package obs is the observability layer of the repository: a lightweight
// metrics registry (counters, gauges, timers, log-bucketed histograms)
// with snapshot APIs (aligned text, JSON, Prometheus text exposition), a
// Tracer interface with a JSON-lines sink for structured solver events
// (spans, per-iteration residuals, multigrid level visits, Monte Carlo
// worker progress), request-scoped trace IDs propagated through contexts
// and stamped onto events, and an always-on FlightRecorder ring holding
// the most recent events for postmortem dumps.
//
// The package is built around a zero-cost-when-disabled contract: every
// emit helper tolerates a nil Tracer, and every registry accessor
// tolerates a nil *Registry, so instrumented hot paths pay only a nil
// check (no time.Now call, no allocation) when observability is off.
// Solver loops therefore carry their probes unconditionally; callers
// enable them by supplying a sink.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric. All methods are safe
// for concurrent use and tolerate a nil receiver (no-op / zero value).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric. All methods are safe for
// concurrent use and tolerate a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 before the first Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates duration observations. All methods are safe for
// concurrent use and tolerate a nil receiver.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
	t.mu.Unlock()
}

// Time starts a stopwatch; the returned function stops it and records the
// elapsed duration. Usage: defer reg.Timer("solve").Time()().
func (t *Timer) Time() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Stats returns the accumulated statistics.
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStats{Count: t.count, Total: t.total, Min: t.min, Max: t.max}
	if t.count > 0 {
		s.Mean = t.total / time.Duration(t.count)
	}
	return s
}

// TimerStats summarizes a Timer. Durations serialize as nanoseconds.
type TimerStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Registry is a name-indexed collection of metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: accessors return nil metrics whose methods do nothing, so
// instrumented code can hold an optional registry without nil checks.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
	gaugeFuncs map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is computed at snapshot time
// by calling fn — the right shape for values the process already tracks
// elsewhere (uptime, ring drop counts, queue depths). fn must be safe
// for concurrent use and must not call back into the registry. A
// computed gauge shares the gauge namespace: it shadows any stored Gauge
// of the same name in snapshots. Nil registry or nil fn is a no-op.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Timers     map[string]TimerStats     `json:"timers,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Timers:     map[string]TimerStats{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	gaugeFuncs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	// Computed gauges run after the unlock (they may be slow or sample
	// other locks) and win name conflicts with stored gauges.
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, v := range timers {
		s.Timers[k] = v.Stats()
	}
	for k, v := range histograms {
		s.Histograms[k] = v.Stats()
	}
	return s
}

// WriteText renders the snapshot as an aligned table with one metric per
// line, sorted by name within each metric family.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, m := range []int{maxKeyLen(s.Counters), maxKeyLen(s.Gauges), maxKeyLen(s.Timers), maxKeyLen(s.Histograms)} {
		if m > width {
			width = m
		}
	}
	if width < len("metric") {
		width = len("metric")
	}
	if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, "metric", "value"); err != nil {
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-*s  %d\n", width, k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-*s  %g\n", width, k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Timers) {
		t := s.Timers[k]
		if _, err := fmt.Fprintf(w, "%-*s  count=%d total=%v mean=%v min=%v max=%v\n",
			width, k, t.Count, t.Total, t.Mean, t.Min, t.Max); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%-*s  count=%d sum=%g p50=%g p90=%g p99=%g\n",
			width, k, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a single JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// SnapshotJSON returns the current snapshot as one newline-terminated JSON
// object — byte-identical to what Snapshot().WriteJSON would produce
// (encoding/json sorts map keys, so the bytes are deterministic for a
// given metric state). cdrserved's /metrics endpoint serves exactly these
// bytes. A nil registry yields an empty snapshot object.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func maxKeyLen[V any](m map[string]V) int {
	n := 0
	for k := range m {
		if len(k) > n {
			n = len(k)
		}
	}
	return n
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
