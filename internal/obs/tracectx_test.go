package obs

import (
	"context"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestContextTraceRoundTrip(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), "trace1", "span1")
	trace, span := TraceFromContext(ctx)
	if trace != "trace1" || span != "span1" {
		t.Errorf("round trip = %q/%q", trace, span)
	}
	if trace, span := TraceFromContext(context.Background()); trace != "" || span != "" {
		t.Errorf("bare context = %q/%q", trace, span)
	}
	if trace, _ := TraceFromContext(nil); trace != "" {
		t.Errorf("nil context = %q", trace)
	}
	// A nil parent context is tolerated.
	if trace, _ := TraceFromContext(ContextWithTrace(nil, "t", "s")); trace != "t" {
		t.Errorf("nil-base context = %q", trace)
	}
}

func TestWithTraceStampsEvents(t *testing.T) {
	col := NewCollector(nil)
	tr := WithTrace(col, "trace1", "span1")
	tr.Emit(Event{Kind: "iter", Iter: 1})
	tr.Emit(Event{Kind: "iter", Iter: 2, Trace: "preset", Parent: "presetspan"})
	got := col.Events()
	if len(got) != 2 {
		t.Fatalf("%d events", len(got))
	}
	if got[0].Trace != "trace1" || got[0].Parent != "span1" {
		t.Errorf("unstamped event = %+v", got[0])
	}
	// Pre-existing IDs win: nested solvers keep their own attribution.
	if got[1].Trace != "preset" || got[1].Parent != "presetspan" {
		t.Errorf("pre-stamped event overwritten: %+v", got[1])
	}

	if got := WithTrace(nil, "t", "s"); got != nil {
		t.Error("WithTrace(nil, ...) must stay nil")
	}
	if got := WithTrace(col, "", "s"); got != Tracer(col) {
		t.Error("empty trace ID must return the sink unchanged")
	}
}

func TestStampFromContext(t *testing.T) {
	col := NewCollector(nil)
	ctx := ContextWithTrace(context.Background(), "trace9", "span9")
	StampFromContext(ctx, col).Emit(Event{Kind: "iter"})
	if got := col.Events(); len(got) != 1 || got[0].Trace != "trace9" || got[0].Parent != "span9" {
		t.Errorf("events = %+v", got)
	}
	// The disabled paths pass through untouched.
	if got := StampFromContext(ctx, nil); got != nil {
		t.Error("nil tracer must stay nil")
	}
	if got := StampFromContext(context.Background(), col); got != Tracer(col) {
		t.Error("trace-less context must return the sink unchanged")
	}
	if got := StampFromContext(nil, col); got != Tracer(col) {
		t.Error("nil context must return the sink unchanged")
	}
}

// TestStampFromContextDisabledZeroAlloc extends the zero-cost-when-
// disabled contract to the trace-stamping hook solvers call in
// withDefaults: with a nil tracer it must not allocate.
func TestStampFromContextDisabledZeroAlloc(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), "t", "s")
	if n := testing.AllocsPerRun(1000, func() {
		_ = StampFromContext(ctx, nil)
	}); n != 0 {
		t.Errorf("nil-tracer StampFromContext allocates %.1f/op", n)
	}
}
