package progress

import (
	"strings"
	"testing"
	"time"

	"cdrstoch/internal/obs"
)

func TestPrinterRendersIterAndCompletion(t *testing.T) {
	var buf strings.Builder
	p := NewPrinter(&buf, 0, 1e-12) // no throttle: print every event
	p.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 1, Residual: 1e-2})
	p.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 2, Residual: 1e-4})
	p.Emit(obs.Event{Kind: "span_end", Name: "multigrid", DurNS: int64(120 * time.Millisecond)})
	out := buf.String()
	for _, want := range []string{
		"progress: multigrid iter 1 residual 1.000e-02",
		"progress: multigrid iter 2 residual 1.000e-04",
		"slope",
		"progress: multigrid done: 2 iters, residual 1.000e-04, 120ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q:\n%s", want, out)
		}
	}
	// A span with no recorded iterations prints nothing.
	buf.Reset()
	p.Emit(obs.Event{Kind: "span_end", Name: "serve.build", DurNS: 5})
	if buf.Len() != 0 {
		t.Fatalf("span without iterations printed: %q", buf.String())
	}
}

func TestPrinterThrottles(t *testing.T) {
	var buf strings.Builder
	p := NewPrinter(&buf, time.Hour, 0)
	for i := 1; i <= 20; i++ {
		p.Emit(obs.Event{Kind: "iter", Name: "power", Iter: i, Residual: 1e-3})
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("throttled printer wrote %d lines, want 1:\n%s", got, buf.String())
	}
}

func TestPrinterMonteCarloProgress(t *testing.T) {
	var buf strings.Builder
	p := NewPrinter(&buf, 0, 0)
	p.Emit(obs.Event{Kind: "progress", Name: "bitsim", Worker: 1, Done: 500, Total: 1000})
	if !strings.Contains(buf.String(), "bitsim 500/1000 (50%)") {
		t.Fatalf("MC progress line missing: %q", buf.String())
	}
}
