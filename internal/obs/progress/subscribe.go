package progress

import (
	"sync/atomic"

	"cdrstoch/internal/obs"
)

// Sub is one live event subscription, keyed by trace ID. Delivery is
// strictly non-blocking: a subscriber that cannot keep up loses events
// (counted per subscription and in progress.events_dropped) — the solver
// is never throttled by a slow SSE client.
type Sub struct {
	t       *Tracker
	trace   string
	ch      chan obs.Event
	dropped atomic.Uint64
}

// Subscribe registers a subscription for the given trace's events with a
// bounded buffer (buf < 1 selects 64). Returns nil on a nil tracker or an
// empty trace. Close the subscription when done.
func (t *Tracker) Subscribe(trace string, buf int) *Sub {
	if t == nil || trace == "" {
		return nil
	}
	if buf < 1 {
		buf = 64
	}
	s := &Sub{t: t, trace: trace, ch: make(chan obs.Event, buf)}
	t.mu.Lock()
	set := t.subs[trace]
	if set == nil {
		set = make(map[*Sub]struct{})
		t.subs[trace] = set
	}
	set[s] = struct{}{}
	t.mu.Unlock()
	t.nsubs.Add(1)
	return s
}

// C is the subscription's event channel. Nil on a nil subscription, so a
// select over it blocks forever rather than panicking.
func (s *Sub) C() <-chan obs.Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many events this subscription lost to a full
// buffer.
func (s *Sub) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unsubscribes. The channel is not closed — a racing publish may
// still hold it — it simply stops receiving.
func (s *Sub) Close() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if set, ok := t.subs[s.trace]; ok {
		if _, present := set[s]; present {
			delete(set, s)
			if len(set) == 0 {
				delete(t.subs, s.trace)
			}
			t.nsubs.Add(-1)
		}
	}
	t.mu.Unlock()
}

// publish delivers one event to the trace's subscribers. The no-subscriber
// fast path is a single atomic load, keeping the per-iteration event cost
// unchanged when nobody is streaming.
func (t *Tracker) publish(trace string, e obs.Event) {
	if t == nil || trace == "" || t.nsubs.Load() == 0 {
		return
	}
	t.mu.Lock()
	for s := range t.subs[trace] {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			t.reg.Counter("progress.events_dropped").Inc()
		}
	}
	t.mu.Unlock()
}
