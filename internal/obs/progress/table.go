package progress

import (
	"fmt"
	"io"
	"time"
)

// WriteTable renders the in-flight solves as the aligned human table
// behind Accept: text/plain on /debug/progress, mirroring the
// /debug/solves table convention.
func WriteTable(w io.Writer, solves []SolveProgress) error {
	if _, err := fmt.Fprintf(w, "%-4s %-10s %-14s %-12s %-12s %6s %12s %10s %10s %10s\n",
		"id", "endpoint", "spec", "phase", "state", "iter", "residual", "eta", "age", "idle"); err != nil {
		return err
	}
	for _, s := range solves {
		eta := "-"
		if s.EtaSeconds != nil {
			eta = (time.Duration(*s.EtaSeconds * float64(time.Second))).Round(time.Millisecond).String()
		}
		age := time.Duration(s.AgeMS * float64(time.Millisecond)).Round(time.Millisecond)
		idle := time.Duration(s.IdleMS * float64(time.Millisecond)).Round(time.Millisecond)
		if _, err := fmt.Fprintf(w, "%-4d %-10s %-14s %-12s %-12s %6d %12.3e %10s %10s %10s\n",
			s.ID, s.Endpoint, s.SpecKey, s.Phase, s.State, s.Iter, s.Residual, eta, age, idle); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d solve(s) in flight\n", len(solves))
	return err
}
