// Package progress is the live view of in-flight solves: a Tracker keeps
// one record per registered solve (phase, iteration, current residual,
// geometric-decay ETA) fed by the existing tracer probe points — the
// per-cycle multigrid residuals, the per-sweep stationary iterations, the
// engine spans — with no new instrumentation in the solver loops. On top
// of the records sits a watchdog (watchdog.go) that classifies each solve
// as progressing, stalled, or diverging and can optionally cancel
// hopeless ones.
//
// The package keeps the repository's zero-cost-when-disabled contract: a
// nil *Tracker is a valid no-op (Begin returns a nil *Handle whose
// methods do nothing), so code paths that do not opt in pay one nil
// check. When enabled, a Handle's Emit is allocation-free: it updates a
// fixed-size per-solve record under a mutex and forwards to subscribers
// only when any exist.
package progress

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cdrstoch/internal/obs"
)

// Solve states as classified by the watchdog.
const (
	StateProgressing = "progressing"
	StateStalled     = "stalled"
	StateDiverging   = "diverging"
)

// Config parameterizes a Tracker.
type Config struct {
	// Registry receives the progress.* and watchdog.* metrics. May be nil.
	Registry *obs.Registry
	// Out receives the watchdog's typed events in addition to the
	// tracker's own ring — the server passes its flight recorder, so
	// stall/divergence verdicts land in the same postmortem trail as the
	// solver events that led to them. May be nil.
	Out obs.Tracer
	// Tol is the residual the ETA extrapolates to. Default 1e-12 (the
	// multigrid default tolerance).
	Tol float64
	// StallWindow is the staleness horizon: a solve with no event, or no
	// best-residual improvement, for longer than this is stalled.
	// Default 10s.
	StallWindow time.Duration
	// Interval is the watchdog check period. Default 1s.
	Interval time.Duration
	// DivergeChecks is the number of consecutive watchdog checks with a
	// growing residual before a solve is classified diverging. Default 3.
	DivergeChecks int
	// CancelOnStall arms early cancellation: the watchdog cancels solves
	// it classifies stalled or diverging, so the job layer's retry/backoff
	// kicks in without waiting for the request deadline. Off by default —
	// see DESIGN.md §13 for why detection and action are separated.
	CancelOnStall bool
	// RingSize bounds the watchdog event ring. Default 1024.
	RingSize int
}

func (c Config) withDefaults() Config {
	if c.Tol <= 0 {
		c.Tol = 1e-12
	}
	if c.StallWindow <= 0 {
		c.StallWindow = 10 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.DivergeChecks <= 0 {
		c.DivergeChecks = 3
	}
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	return c
}

// Tracker is the per-solve live progress registry. All methods are safe
// for concurrent use, and every method on a nil *Tracker is a no-op.
type Tracker struct {
	cfg  Config
	reg  *obs.Registry
	ring *obs.FlightRecorder

	mu     sync.Mutex
	seq    uint64
	solves map[uint64]*solveState
	subs   map[string]map[*Sub]struct{}
	nsubs  atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New returns a ready Tracker. Call Start to run the watchdog and Stop
// during shutdown.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{
		cfg:    cfg,
		reg:    cfg.Registry,
		ring:   obs.NewFlightRecorder(cfg.RingSize),
		solves: make(map[uint64]*solveState),
		subs:   make(map[string]map[*Sub]struct{}),
		stop:   make(chan struct{}),
	}
	// The gauges are computed at snapshot time; the counters are touched
	// eagerly so every metric family the tracker can emit exists from the
	// first scrape (and is covered by the metrics-name lint).
	t.reg.GaugeFunc("progress.solves_inflight", func() float64 { return float64(t.inflight()) })
	t.reg.GaugeFunc("progress.solves_stalled", func() float64 { return float64(t.countState(StateStalled)) })
	t.reg.GaugeFunc("progress.subscribers", func() float64 { return float64(t.nsubs.Load()) })
	t.reg.GaugeFunc("watchdog.ring_dropped", func() float64 { return float64(t.ring.Dropped()) })
	for _, name := range []string{
		"progress.solves_started", "progress.solves_finished",
		"progress.solves_stalled_total", "progress.events_dropped",
		"watchdog.checks_total", "watchdog.divergences_total",
		"watchdog.recoveries_total", "watchdog.cancels_total",
	} {
		t.reg.Counter(name)
	}
	return t
}

// Ring exposes the watchdog event ring (for /debug handlers and tests).
func (t *Tracker) Ring() *obs.FlightRecorder {
	if t == nil {
		return nil
	}
	return t.ring
}

// solveState is one registered solve's live record. Its own mutex keeps
// the event hot path off the tracker lock.
type solveState struct {
	mu       sync.Mutex
	id       uint64
	trace    string
	parent   string
	endpoint string
	key      string
	cancel   context.CancelFunc

	startedAt   time.Time
	lastEvent   time.Time
	lastImprove time.Time
	phase       string
	iter        int
	residual    float64
	best        float64 // lowest residual seen; +Inf until the first one
	est         estimator

	// Watchdog bookkeeping: the residual at the previous check and how
	// many consecutive checks it grew across.
	state     string
	lastCheck float64
	haveCheck bool
	grow      int
	canceled  bool
	done      bool
}

// Handle is one solve's registration: an obs.Tracer the engine tees into
// the solve's event chain, so the events that update this record are
// attributed by construction — no trace-matching, which would misattribute
// concurrent solves sharing a request trace (sweep fan-out). A nil
// *Handle is a valid no-op.
type Handle struct {
	t *Tracker
	s *solveState
}

// Begin registers a solve and returns its handle. endpoint and key label
// the record; cancel (may be nil) is what the watchdog calls when
// CancelOnStall is armed. The trace identity is read from ctx.
func (t *Tracker) Begin(ctx context.Context, endpoint, key string, cancel context.CancelFunc) *Handle {
	if t == nil {
		return nil
	}
	trace, parent := obs.TraceFromContext(ctx)
	now := time.Now()
	s := &solveState{
		trace:       trace,
		parent:      parent,
		endpoint:    endpoint,
		key:         key,
		cancel:      cancel,
		startedAt:   now,
		lastEvent:   now,
		lastImprove: now,
		best:        math.Inf(1),
		state:       StateProgressing,
	}
	t.mu.Lock()
	t.seq++
	s.id = t.seq
	t.solves[s.id] = s
	t.mu.Unlock()
	t.reg.Counter("progress.solves_started").Inc()
	t.publish(trace, obs.Event{
		T: now.UnixNano(), Kind: "solve_start", Name: endpoint,
		Trace: trace, Parent: parent,
	})
	return &Handle{t: t, s: s}
}

// Emit feeds one solver event into the record: spans set the phase, iter
// events advance the iteration/residual and the decay estimator, and
// everything refreshes the heartbeat. Allocation-free; forwards to
// subscribers only when any exist.
func (h *Handle) Emit(e obs.Event) {
	if h == nil {
		return
	}
	now := time.Now()
	s := h.s
	s.mu.Lock()
	s.lastEvent = now
	switch e.Kind {
	case "span_start":
		s.phase = e.Name
	case "iter":
		s.phase = e.Name
		s.iter = e.Iter
		s.residual = e.Residual
		s.est.add(e.Iter, now.UnixNano(), e.Residual)
		if e.Residual > 0 && e.Residual < s.best {
			s.best = e.Residual
			s.lastImprove = now
		}
	}
	s.mu.Unlock()
	h.t.publish(s.trace, e)
}

// End closes the registration: the record leaves the in-flight table and
// subscribers receive a terminal solve_end event carrying the final
// iteration, residual, and (on failure) the error.
func (h *Handle) End(err error) {
	if h == nil {
		return
	}
	t, s := h.t, h.s
	s.mu.Lock()
	s.done = true
	iter, residual := s.iter, s.residual
	s.mu.Unlock()
	t.mu.Lock()
	delete(t.solves, s.id)
	t.mu.Unlock()
	t.reg.Counter("progress.solves_finished").Inc()
	e := obs.Event{
		T: time.Now().UnixNano(), Kind: "solve_end", Name: s.endpoint,
		Iter: iter, Residual: residual, Trace: s.trace, Parent: s.parent,
	}
	if err != nil {
		e.Reason = err.Error()
	}
	t.publish(s.trace, e)
}

func (t *Tracker) inflight() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.solves)
}

func (t *Tracker) countState(state string) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, s := range t.states() {
		s.mu.Lock()
		if s.state == state {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// states snapshots the in-flight records under the tracker lock.
func (t *Tracker) states() []*solveState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*solveState, 0, len(t.solves))
	for _, s := range t.solves {
		out = append(out, s)
	}
	return out
}

// SolveProgress is one in-flight solve as reported by Snapshot,
// /debug/progress, and JobView.Progress. EtaSeconds is present only when
// the decay fit predicts convergence (negative slope, at least two
// residuals); SlopePerIter is the fitted log10-residual slope in decades
// per iteration, 0 until the fit exists.
type SolveProgress struct {
	ID           uint64    `json:"id"`
	Trace        string    `json:"trace,omitempty"`
	Endpoint     string    `json:"endpoint,omitempty"`
	SpecKey      string    `json:"spec_key,omitempty"`
	Phase        string    `json:"phase,omitempty"`
	State        string    `json:"state"`
	Iter         int       `json:"iter"`
	Residual     float64   `json:"residual,omitempty"`
	BestResidual float64   `json:"best_residual,omitempty"`
	SlopePerIter float64   `json:"slope_per_iter,omitempty"`
	EtaSeconds   *float64  `json:"eta_seconds,omitempty"`
	StartedAt    time.Time `json:"started_at"`
	AgeMS        float64   `json:"age_ms"`
	IdleMS       float64   `json:"idle_ms"`
}

// progressLocked assembles the exported view; s.mu must be held.
func (s *solveState) progressLocked(now time.Time, tol float64) SolveProgress {
	p := SolveProgress{
		ID:        s.id,
		Trace:     s.trace,
		Endpoint:  s.endpoint,
		SpecKey:   s.key,
		Phase:     s.phase,
		State:     s.state,
		Iter:      s.iter,
		Residual:  s.residual,
		StartedAt: s.startedAt,
		AgeMS:     float64(now.Sub(s.startedAt)) / float64(time.Millisecond),
		IdleMS:    float64(now.Sub(s.lastEvent)) / float64(time.Millisecond),
	}
	if !math.IsInf(s.best, 1) {
		p.BestResidual = s.best
	}
	if slope, ok := s.est.slope(); ok {
		p.SlopePerIter = slope
	}
	if eta, ok := s.est.eta(tol); ok {
		secs := eta.Seconds()
		p.EtaSeconds = &secs
	}
	return p
}

// Snapshot returns the in-flight solves, oldest registration first.
func (t *Tracker) Snapshot() []SolveProgress {
	if t == nil {
		return nil
	}
	now := time.Now()
	states := t.states()
	out := make([]SolveProgress, 0, len(states))
	for _, s := range states {
		s.mu.Lock()
		if !s.done {
			out = append(out, s.progressLocked(now, t.cfg.Tol))
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LatestByTrace returns the most recently registered in-flight solve
// carrying the given trace ID — the enrichment /v1/jobs/{id} uses while a
// job runs.
func (t *Tracker) LatestByTrace(trace string) (SolveProgress, bool) {
	if t == nil || trace == "" {
		return SolveProgress{}, false
	}
	now := time.Now()
	var best SolveProgress
	found := false
	for _, s := range t.states() {
		s.mu.Lock()
		if !s.done && s.trace == trace && (!found || s.id > best.ID) {
			best = s.progressLocked(now, t.cfg.Tol)
			found = true
		}
		s.mu.Unlock()
	}
	return best, found
}
