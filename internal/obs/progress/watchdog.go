package progress

import (
	"fmt"
	"time"

	"cdrstoch/internal/obs"
)

// Start runs the watchdog loop: every Interval it classifies each
// in-flight solve and emits typed events on transitions. Safe on a nil
// tracker; call Stop during shutdown.
func (t *Tracker) Start() {
	if t == nil {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-ticker.C:
				t.check(time.Now())
			}
		}
	}()
}

// Stop terminates the watchdog loop. Idempotent; safe on a nil tracker.
func (t *Tracker) Stop() {
	if t == nil {
		return
	}
	t.stopOnce.Do(func() { close(t.stop) })
	t.wg.Wait()
}

// check classifies every in-flight solve once. Factored out of the loop
// so tests can drive the watchdog deterministically.
func (t *Tracker) check(now time.Time) {
	t.reg.Counter("watchdog.checks_total").Inc()
	for _, s := range t.states() {
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			continue
		}
		// Divergence bookkeeping: a residual strictly above the previous
		// check's grows the streak; strictly below resets it. Equality —
		// typically "no new iteration since last check" — is the stall
		// detector's business, not evidence either way here.
		if s.iter > 0 && s.residual > 0 {
			if s.haveCheck {
				switch {
				case s.residual > s.lastCheck:
					s.grow++
				case s.residual < s.lastCheck:
					s.grow = 0
				}
			}
			s.lastCheck, s.haveCheck = s.residual, true
		}
		state, reason := StateProgressing, ""
		switch {
		case s.grow >= t.cfg.DivergeChecks:
			state = StateDiverging
			reason = fmt.Sprintf("residual grew across %d consecutive checks", s.grow)
		case now.Sub(s.lastEvent) > t.cfg.StallWindow:
			state = StateStalled
			reason = fmt.Sprintf("no heartbeat for %v (window %v)",
				now.Sub(s.lastEvent).Round(time.Millisecond), t.cfg.StallWindow)
		case s.haveCheck && now.Sub(s.lastImprove) > t.cfg.StallWindow:
			state = StateStalled
			reason = fmt.Sprintf("no residual improvement for %v (window %v)",
				now.Sub(s.lastImprove).Round(time.Millisecond), t.cfg.StallWindow)
		}
		prev := s.state
		s.state = state
		doCancel := t.cfg.CancelOnStall && state != StateProgressing && !s.canceled && s.cancel != nil
		if doCancel {
			s.canceled = true
		}
		trace, parent := s.trace, s.parent
		iter, residual := s.iter, s.residual
		cancel := s.cancel
		s.mu.Unlock()

		if state != prev {
			name := state
			if state == StateProgressing {
				name = "recovered"
				reason = "events and residual decay resumed"
			}
			switch state {
			case StateStalled:
				t.reg.Counter("progress.solves_stalled_total").Inc()
			case StateDiverging:
				t.reg.Counter("watchdog.divergences_total").Inc()
			case StateProgressing:
				t.reg.Counter("watchdog.recoveries_total").Inc()
			}
			t.emitWatchdog(name, reason, trace, parent, iter, residual)
		}
		if doCancel {
			t.reg.Counter("watchdog.cancels_total").Inc()
			t.emitWatchdog("canceled", "cancel-on-stall: solve classified "+state, trace, parent, iter, residual)
			cancel()
		}
	}
}

// emitWatchdog fans one typed watchdog event out to the watchdog ring,
// the configured Out tracer (the server's flight recorder), and any
// per-trace subscribers.
func (t *Tracker) emitWatchdog(name, reason, trace, parent string, iter int, residual float64) {
	e := obs.Event{
		T: time.Now().UnixNano(), Kind: "watchdog", Name: name,
		Iter: iter, Residual: residual,
		Trace: trace, Parent: parent, Reason: reason,
	}
	t.ring.Emit(e)
	if t.cfg.Out != nil {
		t.cfg.Out.Emit(e)
	}
	t.publish(trace, e)
}
