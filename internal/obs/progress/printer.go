package progress

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cdrstoch/internal/obs"
)

// Printer is the CLI face of live progress (-progress on cdrsweep /
// cdranalyze): an obs.Tracer that renders throttled per-solver progress
// lines — iteration, residual, fitted decay slope, ETA — and a completion
// line per finished solver span. It tees after any -trace sink, so both
// can be active at once.
type Printer struct {
	w     io.Writer
	every time.Duration
	tol   float64

	mu     sync.Mutex
	states map[string]*printState
}

type printState struct {
	est       estimator
	iter      int
	residual  float64
	started   time.Time
	lastPrint time.Time
}

// NewPrinter returns a printer writing to w at most one line per solver
// per interval (every < 1 prints every iteration — for tests). tol <= 0
// selects the 1e-12 default the ETA extrapolates to.
func NewPrinter(w io.Writer, every time.Duration, tol float64) *Printer {
	if tol <= 0 {
		tol = 1e-12
	}
	return &Printer{w: w, every: every, tol: tol, states: make(map[string]*printState)}
}

// Emit renders iter events as throttled progress lines and span_end
// events as completion lines for solvers that reported iterations.
// Other kinds pass through silently.
func (p *Printer) Emit(e obs.Event) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case "iter":
		st := p.states[e.Name]
		if st == nil {
			st = &printState{started: now}
			p.states[e.Name] = st
		}
		st.iter = e.Iter
		st.residual = e.Residual
		st.est.add(e.Iter, now.UnixNano(), e.Residual)
		if now.Sub(st.lastPrint) < p.every {
			return
		}
		st.lastPrint = now
		line := fmt.Sprintf("progress: %s iter %d residual %.3e", e.Name, e.Iter, e.Residual)
		if slope, ok := st.est.slope(); ok {
			line += fmt.Sprintf(" slope %+.3f/iter", slope)
		}
		if eta, ok := st.est.eta(p.tol); ok {
			line += fmt.Sprintf(" eta %s", eta.Round(time.Millisecond))
		}
		fmt.Fprintln(p.w, line)
	case "span_end":
		st := p.states[e.Name]
		if st == nil {
			return
		}
		delete(p.states, e.Name)
		fmt.Fprintf(p.w, "progress: %s done: %d iters, residual %.3e, %s\n",
			e.Name, st.iter, st.residual, time.Duration(e.DurNS).Round(time.Millisecond))
	case "progress":
		if e.Total > 0 {
			st := p.states[e.Name]
			if st == nil {
				st = &printState{started: now}
				p.states[e.Name] = st
			}
			if now.Sub(st.lastPrint) < p.every {
				return
			}
			st.lastPrint = now
			fmt.Fprintf(p.w, "progress: %s %d/%d (%.0f%%)\n",
				e.Name, e.Done, e.Total, 100*float64(e.Done)/float64(e.Total))
		}
	}
}
