package progress

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cdrstoch/internal/obs"
)

// tracedCtx returns a context carrying a fixed trace identity.
func tracedCtx(trace string) context.Context {
	return obs.ContextWithTrace(context.Background(), trace, "span-"+trace)
}

func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	h := tr.Begin(context.Background(), "analyze", "key", nil)
	if h != nil {
		t.Fatalf("nil tracker Begin returned non-nil handle")
	}
	h.Emit(obs.Event{Kind: "iter", Iter: 1, Residual: 0.5})
	h.End(nil)
	tr.Start()
	tr.Stop()
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracker Snapshot = %v, want nil", got)
	}
	if _, ok := tr.LatestByTrace("x"); ok {
		t.Fatalf("nil tracker LatestByTrace found something")
	}
	if sub := tr.Subscribe("x", 1); sub != nil {
		t.Fatalf("nil tracker Subscribe returned non-nil")
	}
	if tr.Ring() != nil {
		t.Fatalf("nil tracker Ring returned non-nil")
	}
}

// TestHandleEmitAllocFree pins the enabled-but-unwatched hot path: with
// no subscribers, feeding an iteration event into a handle allocates
// nothing, so teeing a handle into a solver's tracer chain cannot perturb
// the solver's allocation profile.
func TestHandleEmitAllocFree(t *testing.T) {
	tr := New(Config{Registry: obs.NewRegistry()})
	h := tr.Begin(tracedCtx("t1"), "analyze", "key", nil)
	e := obs.Event{T: 1, Kind: "iter", Name: "multigrid", Iter: 3, Residual: 1e-5, Trace: "t1"}
	allocs := testing.AllocsPerRun(200, func() { h.Emit(e) })
	if allocs != 0 {
		t.Fatalf("Handle.Emit allocated %.1f allocs/op, want 0", allocs)
	}
	var nilH *Handle
	allocs = testing.AllocsPerRun(200, func() { nilH.Emit(e) })
	if allocs != 0 {
		t.Fatalf("nil Handle.Emit allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEstimatorSlopeAndETA(t *testing.T) {
	var e estimator
	// Residual decays half a decade per iteration, 10ms wall per
	// iteration: res(k) = 10^(-k/2), starting at iteration 1.
	const stepNS = int64(10 * time.Millisecond)
	for k := 1; k <= 8; k++ {
		e.add(k, int64(k)*stepNS, math.Pow(10, -float64(k)/2))
	}
	slope, ok := e.slope()
	if !ok || math.Abs(slope+0.5) > 1e-9 {
		t.Fatalf("slope = %v (ok=%v), want -0.5", slope, ok)
	}
	// At iteration 8 the residual is 1e-4; reaching 1e-12 needs 16 more
	// iterations at 10ms each.
	eta, ok := e.eta(1e-12)
	if !ok {
		t.Fatalf("eta not available")
	}
	want := 160 * time.Millisecond
	if diff := eta - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("eta = %v, want ~%v", eta, want)
	}
	// A residual already below tolerance has nothing left.
	if eta, ok := e.eta(1e-3); !ok || eta != 0 {
		t.Fatalf("past-tolerance eta = %v (ok=%v), want 0, true", eta, ok)
	}
}

func TestEstimatorRefusesNonConverging(t *testing.T) {
	var e estimator
	if _, ok := e.eta(1e-12); ok {
		t.Fatalf("empty estimator produced an ETA")
	}
	e.add(1, 0, 1e-3)
	if _, ok := e.eta(1e-12); ok {
		t.Fatalf("single-point estimator produced an ETA")
	}
	// Growing residual: slope positive, no ETA.
	e.add(2, int64(time.Millisecond), 1e-2)
	e.add(3, 2*int64(time.Millisecond), 1e-1)
	if slope, ok := e.slope(); !ok || slope <= 0 {
		t.Fatalf("growing-residual slope = %v (ok=%v), want positive", slope, ok)
	}
	if _, ok := e.eta(1e-12); ok {
		t.Fatalf("growing-residual estimator produced an ETA")
	}
}

func TestSnapshotAndLatestByTrace(t *testing.T) {
	tr := New(Config{Registry: obs.NewRegistry()})
	h1 := tr.Begin(tracedCtx("tA"), "analyze", "k1", nil)
	h2 := tr.Begin(tracedCtx("tB"), "sweep", "k2", nil)
	h1.Emit(obs.Event{Kind: "span_start", Name: "serve.build"})
	h1.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 1, Residual: 1e-2})
	h1.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 2, Residual: 1e-4})

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d solves, want 2", len(snap))
	}
	if snap[0].ID > snap[1].ID {
		t.Fatalf("Snapshot not ordered by registration: %v", snap)
	}
	p, ok := tr.LatestByTrace("tA")
	if !ok {
		t.Fatalf("LatestByTrace(tA) not found")
	}
	if p.Endpoint != "analyze" || p.Iter != 2 || p.Residual != 1e-4 || p.Phase != "multigrid" {
		t.Fatalf("LatestByTrace(tA) = %+v", p)
	}
	if p.State != StateProgressing {
		t.Fatalf("fresh solve state = %q, want progressing", p.State)
	}
	if p.BestResidual != 1e-4 {
		t.Fatalf("best residual = %v, want 1e-4", p.BestResidual)
	}
	if p.EtaSeconds == nil || *p.EtaSeconds < 0 {
		t.Fatalf("two decaying residuals should produce an ETA, got %+v", p.EtaSeconds)
	}

	h1.End(nil)
	if len(tr.Snapshot()) != 1 {
		t.Fatalf("ended solve still in Snapshot")
	}
	if _, ok := tr.LatestByTrace("tA"); ok {
		t.Fatalf("ended solve still found by trace")
	}
	h2.End(errors.New("boom"))
	if got := tr.inflight(); got != 0 {
		t.Fatalf("inflight = %d after both ended, want 0", got)
	}
}

func TestWatchdogStallAndRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Registry: reg, StallWindow: 50 * time.Millisecond, DivergeChecks: 3})
	h := tr.Begin(tracedCtx("tS"), "analyze", "k", nil)
	h.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 1, Residual: 1e-3, Trace: "tS"})

	tr.check(time.Now())
	if got := tr.countState(StateStalled); got != 0 {
		t.Fatalf("fresh solve classified stalled")
	}
	// Pretend the window elapsed with no events: classify from a future
	// instant rather than sleeping.
	tr.check(time.Now().Add(60 * time.Millisecond))
	p, _ := tr.LatestByTrace("tS")
	if p.State != StateStalled {
		t.Fatalf("state = %q after silent window, want stalled", p.State)
	}
	if got := reg.Counter("progress.solves_stalled_total").Value(); got != 1 {
		t.Fatalf("solves_stalled_total = %d, want 1", got)
	}
	events := tr.Ring().Tail(-1)
	if len(events) == 0 {
		t.Fatalf("watchdog ring empty after stall")
	}
	last := events[len(events)-1]
	if last.Kind != "watchdog" || last.Name != StateStalled || last.Trace != "tS" || last.Reason == "" {
		t.Fatalf("stall event = %+v", last)
	}

	// New events with an improving residual recover the solve.
	h.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 2, Residual: 1e-5, Trace: "tS"})
	tr.check(time.Now())
	p, _ = tr.LatestByTrace("tS")
	if p.State != StateProgressing {
		t.Fatalf("state = %q after recovery, want progressing", p.State)
	}
	if got := reg.Counter("watchdog.recoveries_total").Value(); got != 1 {
		t.Fatalf("recoveries_total = %d, want 1", got)
	}
	h.End(nil)
}

func TestWatchdogDivergence(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Registry: reg, StallWindow: time.Hour, DivergeChecks: 3})
	h := tr.Begin(tracedCtx("tD"), "analyze", "k", nil)
	res := 1e-3
	h.Emit(obs.Event{Kind: "iter", Name: "power", Iter: 1, Residual: res, Trace: "tD"})
	tr.check(time.Now()) // baseline
	for i := 2; i <= 4; i++ {
		res *= 2
		h.Emit(obs.Event{Kind: "iter", Name: "power", Iter: i, Residual: res, Trace: "tD"})
		tr.check(time.Now())
	}
	p, _ := tr.LatestByTrace("tD")
	if p.State != StateDiverging {
		t.Fatalf("state = %q after 3 growing checks, want diverging", p.State)
	}
	if got := reg.Counter("watchdog.divergences_total").Value(); got != 1 {
		t.Fatalf("divergences_total = %d, want 1", got)
	}
	h.End(nil)
}

func TestWatchdogCancelOnStall(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{
		Registry: reg, StallWindow: 10 * time.Millisecond,
		DivergeChecks: 3, CancelOnStall: true,
	})
	ctx, cancel := context.WithCancel(tracedCtx("tC"))
	h := tr.Begin(ctx, "analyze", "k", cancel)
	tr.check(time.Now().Add(20 * time.Millisecond))
	select {
	case <-ctx.Done():
	default:
		t.Fatalf("cancel-on-stall did not cancel the solve context")
	}
	if got := reg.Counter("watchdog.cancels_total").Value(); got != 1 {
		t.Fatalf("cancels_total = %d, want 1", got)
	}
	// A second check must not cancel (or count) again.
	tr.check(time.Now().Add(40 * time.Millisecond))
	if got := reg.Counter("watchdog.cancels_total").Value(); got != 1 {
		t.Fatalf("cancels_total after second check = %d, want 1", got)
	}
	h.End(ctx.Err())
}

// TestWatchdogLoop exercises the real ticker loop end to end: a solve
// that stops emitting is reported stalled within a few intervals.
func TestWatchdogLoop(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Registry: reg, StallWindow: 30 * time.Millisecond, Interval: 10 * time.Millisecond})
	tr.Start()
	defer tr.Stop()
	h := tr.Begin(tracedCtx("tL"), "analyze", "k", nil)
	defer h.End(nil)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("progress.solves_stalled_total").Value() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("watchdog loop never reported the silent solve as stalled")
}

// TestSubscribeSlowReader pins the misbehaving-client contract: a
// subscriber that never drains loses events beyond its buffer — counted,
// never blocking the emitter.
func TestSubscribeSlowReader(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Registry: reg})
	sub := tr.Subscribe("tQ", 4)
	defer sub.Close()
	h := tr.Begin(tracedCtx("tQ"), "analyze", "k", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 50; i++ {
			h.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: i, Residual: 1e-3, Trace: "tQ"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("publishing blocked on a slow subscriber")
	}
	// Begin's solve_start plus 50 iters were published into a 4-slot
	// buffer: everything beyond 4 must be in the drop accounting.
	if got, want := sub.Dropped(), uint64(47); got != want {
		t.Fatalf("sub.Dropped() = %d, want %d", got, want)
	}
	if got := reg.Counter("progress.events_dropped").Value(); got != 47 {
		t.Fatalf("progress.events_dropped = %d, want 47", got)
	}
	if got := len(sub.C()); got != 4 {
		t.Fatalf("buffered events = %d, want 4", got)
	}
	h.End(nil)
}

func TestSubscribeReceivesLifecycleEvents(t *testing.T) {
	tr := New(Config{Registry: obs.NewRegistry()})
	sub := tr.Subscribe("tE", 16)
	defer sub.Close()
	h := tr.Begin(tracedCtx("tE"), "sweep", "k", nil)
	h.Emit(obs.Event{Kind: "iter", Name: "multigrid", Iter: 1, Residual: 1e-2, Trace: "tE"})
	h.End(errors.New("injected: boom"))
	var kinds []string
	var endReason string
	for len(kinds) < 3 {
		select {
		case e := <-sub.C():
			kinds = append(kinds, e.Kind)
			if e.Kind == "solve_end" {
				endReason = e.Reason
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for events, got %v", kinds)
		}
	}
	want := []string{"solve_start", "iter", "solve_end"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	if endReason != "injected: boom" {
		t.Fatalf("solve_end reason = %q", endReason)
	}
	// After Close, publishes stop reaching the channel.
	sub.Close()
	h2 := tr.Begin(tracedCtx("tE"), "sweep", "k", nil)
	h2.End(nil)
	select {
	case e := <-sub.C():
		t.Fatalf("closed subscription received %+v", e)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestTrackerMetricsSurviveLint covers the new progress_* / watchdog_*
// metric families with the repository naming lint.
func TestTrackerMetricsSurviveLint(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{Registry: reg})
	h := tr.Begin(tracedCtx("tM"), "analyze", "k", nil)
	tr.check(time.Now())
	h.End(nil)
	snap := reg.Snapshot()
	if problems := snap.LintMetrics(); len(problems) != 0 {
		t.Fatalf("metrics lint: %v", problems)
	}
	for _, name := range []string{
		"progress.solves_inflight", "progress.subscribers", "watchdog.ring_dropped",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %q missing from snapshot", name)
		}
	}
	for _, name := range []string{
		"progress.solves_stalled_total", "watchdog.checks_total", "watchdog.cancels_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %q missing from snapshot", name)
		}
	}
}
