package progress

import (
	"math"
	"time"
)

// estWindow is how many recent iterations feed the decay fit. Geometric
// decay means the recent slope is the right extrapolation basis; a short
// window also lets the ETA track multigrid's cycle-kind switches instead
// of averaging across them.
const estWindow = 16

type estPoint struct {
	iter float64
	tns  int64
	logr float64
}

// estimator fits log10(residual) against the iteration index over a
// sliding window — the same least-squares decay-slope fit as
// obs.DecaySlope, kept incremental and allocation-free so it can sit on
// the per-iteration event path. The slope is in decades per iteration
// (negative when converging); eta extrapolates it to a target tolerance
// using the window's observed wall-clock per iteration.
type estimator struct {
	pts [estWindow]estPoint
	n   int
	pos int
}

// add records one residual observation. Non-positive residuals carry no
// log-decay information and are skipped.
func (e *estimator) add(iter int, tns int64, residual float64) {
	if residual <= 0 || math.IsNaN(residual) {
		return
	}
	e.pts[e.pos] = estPoint{iter: float64(iter), tns: tns, logr: math.Log10(residual)}
	e.pos = (e.pos + 1) % estWindow
	if e.n < estWindow {
		e.n++
	}
}

// at returns the i-th point of the window, oldest first.
func (e *estimator) at(i int) estPoint {
	if e.n < estWindow {
		return e.pts[i]
	}
	return e.pts[(e.pos+i)%estWindow]
}

// slope returns the least-squares log10-residual slope in decades per
// iteration; ok is false with fewer than two points or a degenerate fit
// (all observations at one iteration index).
func (e *estimator) slope() (float64, bool) {
	if e.n < 2 {
		return 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < e.n; i++ {
		p := e.at(i)
		sx += p.iter
		sy += p.logr
		sxx += p.iter * p.iter
		sxy += p.iter * p.logr
	}
	n := float64(e.n)
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// eta extrapolates the fitted decay to the target tolerance: remaining
// iterations from the residual gap over the slope, wall clock from the
// window's observed seconds per iteration. ok is false when the fit does
// not predict convergence (no fit, non-negative slope, or no iteration
// advance inside the window).
func (e *estimator) eta(tol float64) (time.Duration, bool) {
	slope, ok := e.slope()
	if !ok || slope >= 0 || tol <= 0 {
		return 0, false
	}
	last := e.at(e.n - 1)
	first := e.at(0)
	iterSpan := last.iter - first.iter
	tSpan := float64(last.tns - first.tns)
	if iterSpan <= 0 || tSpan <= 0 {
		return 0, false
	}
	remaining := (last.logr - math.Log10(tol)) / -slope
	if remaining <= 0 {
		return 0, true
	}
	return time.Duration(remaining * tSpan / iterSpan), true
}
