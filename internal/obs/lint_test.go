package obs

import (
	"strings"
	"testing"
)

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	reg := NewRegistry()
	v := 1.5
	reg.GaugeFunc("proc.computed", func() float64 { return v })
	if got := reg.Snapshot().Gauges["proc.computed"]; got != 1.5 {
		t.Errorf("computed gauge = %g, want 1.5", got)
	}
	v = 7.25
	if got := reg.Snapshot().Gauges["proc.computed"]; got != 7.25 {
		t.Errorf("computed gauge after update = %g, want 7.25", got)
	}
}

func TestGaugeFuncShadowsStoredGauge(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("both.ways").Set(1)
	reg.GaugeFunc("both.ways", func() float64 { return 2 })
	if got := reg.Snapshot().Gauges["both.ways"]; got != 2 {
		t.Errorf("computed gauge did not win the name conflict: %g", got)
	}
}

func TestGaugeFuncNilTolerant(t *testing.T) {
	var reg *Registry
	reg.GaugeFunc("x", func() float64 { return 1 }) // must not panic
	live := NewRegistry()
	live.GaugeFunc("y", nil) // nil fn ignored
	if _, ok := live.Snapshot().Gauges["y"]; ok {
		t.Error("nil gauge func registered")
	}
}

func TestLintMetricsCleanRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.cache_hits").Inc()
	reg.Gauge("process.uptime_seconds").Set(1)
	reg.Timer("serve.solve").Observe(0)
	reg.Histogram("cost.analyze.cpu_seconds").Observe(0.5)
	if probs := reg.Snapshot().LintMetrics(); len(probs) != 0 {
		t.Errorf("clean registry flagged: %v", probs)
	}
}

func TestLintMetricsFlagsMangledNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.cache-hits").Inc() // '-' silently becomes '_'
	probs := reg.Snapshot().LintMetrics()
	if len(probs) != 1 || !strings.Contains(probs[0], "serve.cache-hits") {
		t.Errorf("mangled name not flagged: %v", probs)
	}
}

func TestLintMetricsFlagsLeadingDigit(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("9lives").Set(1)
	probs := reg.Snapshot().LintMetrics()
	found := false
	for _, p := range probs {
		if strings.Contains(p, "start with a letter") {
			found = true
		}
	}
	if !found {
		t.Errorf("leading digit not flagged: %v", probs)
	}
}

func TestLintMetricsFlagsSanitizationCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.cache.hits").Inc()
	reg.Counter("serve.cache_hits").Inc() // both expose as serve_cache_hits
	probs := reg.Snapshot().LintMetrics()
	found := false
	for _, p := range probs {
		if strings.Contains(p, "collide") {
			found = true
		}
	}
	if !found {
		t.Errorf("collision not flagged: %v", probs)
	}
}

func TestLintMetricsFlagsTimerSuffixCollision(t *testing.T) {
	reg := NewRegistry()
	// Timer "x.y" exposes as x_y_seconds — same family as this histogram.
	reg.Timer("x.y").Observe(0)
	reg.Histogram("x.y_seconds").Observe(1)
	probs := reg.Snapshot().LintMetrics()
	found := false
	for _, p := range probs {
		if strings.Contains(p, "collide") && strings.Contains(p, "x_y_seconds") {
			found = true
		}
	}
	if !found {
		t.Errorf("timer-suffix collision not flagged: %v", probs)
	}
}
