// Package cliutil binds the CDR model specification to command-line flags
// so that every tool in cmd/ exposes the same, consistently named knobs.
package cliutil

import (
	"flag"
	"fmt"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/experiments"
)

// SpecFlags holds the flag values that assemble a core.Spec.
type SpecFlags struct {
	Preset     *string
	Counter    *int
	StdNw      *float64
	DriftMean  *float64
	DriftMax   *float64
	DriftShape *float64
	GridDenom  *int
	PhaseMax   *float64
	CorrDenom  *int
	Density    *float64
	MaxRun     *int
	Threshold  *float64
}

// BindWorkers registers the shared -workers flag: the width of the
// parallel worker team the sparse solvers use. Every CLI exposes the same
// knob so "-workers 1" means "serial" and "-workers 0" means "all cores"
// across the whole tool set.
func BindWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"solver parallelism: sparse-kernel worker team width (0 = all cores, 1 = serial)")
}

// Bind registers the spec flags on the given FlagSet.
func Bind(fs *flag.FlagSet) *SpecFlags {
	return &SpecFlags{
		Preset: fs.String("preset", "", "experiment preset: fig4-low, fig4-high, fig5 (with -counter), base, default"),
		Counter: fs.Int("counter", 8,
			"loop-filter up/down counter overflow length L"),
		StdNw: fs.Float64("stdnw", 0.02,
			"eye-opening jitter n_w standard deviation in UI (Gaussian)"),
		DriftMean: fs.Float64("drift-mean", 0.0002,
			"n_r mean (frequency offset) in UI per bit"),
		DriftMax: fs.Float64("drift-max", 2.0/64,
			"n_r support bound MAXnr in UI"),
		DriftShape: fs.Float64("drift-shape", 0.05,
			"n_r geometric decay shape in (0,1]"),
		GridDenom: fs.Int("grid", 64,
			"phase grid resolution: step = 1/grid UI"),
		PhaseMax: fs.Float64("phasemax", 0.75,
			"phase grid half-span in UI"),
		CorrDenom: fs.Int("corr", 16,
			"phase correction step: G = 1/corr UI (number of selectable clock phases)"),
		Density: fs.Float64("density", 0.5,
			"data transition density"),
		MaxRun: fs.Int("maxrun", 4,
			"maximum run of identical bits (0 = unconstrained)"),
		Threshold: fs.Float64("threshold", 0.5,
			"decision threshold in UI"),
	}
}

// Spec assembles and validates the model specification from the parsed
// flags. Presets take precedence over individual knobs except -counter,
// which composes with the fig5 preset.
func (f *SpecFlags) Spec() (core.Spec, error) {
	switch *f.Preset {
	case "fig4-low":
		return experiments.Fig4Spec(false), nil
	case "fig4-high":
		return experiments.Fig4Spec(true), nil
	case "fig5":
		return experiments.Fig5Spec(*f.Counter), nil
	case "base":
		return experiments.BaseSpec(), nil
	case "default":
		return core.DefaultSpec(), nil
	case "":
	default:
		return core.Spec{}, fmt.Errorf("unknown preset %q", *f.Preset)
	}
	step := 1.0 / float64(*f.GridDenom)
	drift, err := dist.DriftPMF(dist.DriftSpec{
		Step:  step,
		Max:   *f.DriftMax,
		Mean:  *f.DriftMean,
		Shape: *f.DriftShape,
	})
	if err != nil {
		return core.Spec{}, err
	}
	s := core.Spec{
		GridStep:          step,
		PhaseMax:          *f.PhaseMax,
		CorrectionStep:    1.0 / float64(*f.CorrDenom),
		TransitionDensity: *f.Density,
		MaxRunLength:      *f.MaxRun,
		EyeJitter:         dist.NewGaussian(0, *f.StdNw),
		Drift:             drift,
		CounterLen:        *f.Counter,
		Threshold:         *f.Threshold,
	}
	return s, s.Validate()
}
