package cliutil

import (
	"flag"
	"testing"
)

func parse(t *testing.T, args ...string) *SpecFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := Bind(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf
}

func TestDefaultsProduceValidSpec(t *testing.T) {
	sf := parse(t)
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.CounterLen != 8 || spec.GridStep != 1.0/64 {
		t.Errorf("defaults wrong: %+v", spec)
	}
}

func TestPresets(t *testing.T) {
	for _, preset := range []string{"fig4-low", "fig4-high", "fig5", "base", "default"} {
		sf := parse(t, "-preset", preset)
		spec, err := sf.Spec()
		if err != nil {
			t.Fatalf("preset %s: %v", preset, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", preset, err)
		}
	}
	sf := parse(t, "-preset", "nope")
	if _, err := sf.Spec(); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFig5PresetComposesWithCounter(t *testing.T) {
	sf := parse(t, "-preset", "fig5", "-counter", "32")
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.CounterLen != 32 {
		t.Errorf("counter = %d", spec.CounterLen)
	}
}

func TestCustomKnobs(t *testing.T) {
	sf := parse(t,
		"-counter", "4", "-stdnw", "0.05", "-grid", "32", "-corr", "8",
		"-phasemax", "0.5", "-density", "0.3", "-maxrun", "2",
		"-drift-mean", "0.001", "-drift-max", "0.0625", "-drift-shape", "0.2",
	)
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.CounterLen != 4 || spec.GridStep != 1.0/32 || spec.CorrectionStep != 1.0/8 {
		t.Errorf("knobs not honored: %+v", spec)
	}
	if spec.EyeJitter.Std() != 0.05 {
		t.Error("stdnw not honored")
	}
}

func TestInvalidKnobsRejected(t *testing.T) {
	// Correction step not a grid multiple.
	sf := parse(t, "-grid", "64", "-corr", "48")
	if _, err := sf.Spec(); err == nil {
		t.Error("non-multiple correction accepted")
	}
	// Unreachable drift mean.
	sf = parse(t, "-drift-mean", "0.5", "-drift-max", "0.01")
	if _, err := sf.Spec(); err == nil {
		t.Error("unreachable drift mean accepted")
	}
}
