package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// App bundles the per-command boilerplate shared by every CLI in cmd/:
// a named FlagSet carrying the standard flag groups, name-prefixed fatal
// error reporting, and observability setup. Commands add their own flags
// on App.Flags before parsing.
type App struct {
	// Name prefixes error output and names the FlagSet.
	Name string
	// Flags is the command's flag set (flag.ExitOnError).
	Flags *flag.FlagSet
	// Spec holds the model-specification flag group; nil for commands
	// that receive specs another way (e.g. cdrserved, over HTTP).
	Spec *SpecFlags
	// Obs holds the observability flag group (-trace, -metrics, -pprof, -progress).
	Obs *ObsFlags
	// Workers is the shared -workers flag: solver worker-team width
	// (0 = all cores, 1 = serial).
	Workers *int
}

// NewApp returns an App with both the spec and observability flag groups
// bound — the shape of the analysis CLIs.
func NewApp(name string) *App {
	a := NewObsApp(name)
	a.Spec = Bind(a.Flags)
	return a
}

// NewObsApp returns an App with only the observability flag group bound —
// for commands whose model parameters do not come from flags.
func NewObsApp(name string) *App {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &App{Name: name, Flags: fs, Obs: BindObs(fs), Workers: BindWorkers(fs)}
}

// Parse parses the command-line arguments, exiting with status 2 on error
// (matching flag.ExitOnError behavior for programmatic errors).
func (a *App) Parse(args []string) {
	if err := a.Flags.Parse(args); err != nil {
		os.Exit(2)
	}
}

// Fatal reports err prefixed with the command name and exits 1.
func (a *App) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
	os.Exit(1)
}

// Setup configures the observability sinks from the parsed flags, exiting
// fatally on failure.
func (a *App) Setup() *Obs {
	o, err := a.Obs.Setup()
	if err != nil {
		a.Fatal(err)
	}
	return o
}

// ParseInts parses a comma-separated integer list ("1, 2,4" → [1 2 4]).
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
