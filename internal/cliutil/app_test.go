package cliutil

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 1,2, 4 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Errorf("got %v", got)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Error("bad integer accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0.5, 1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0.5, 1e-3}) {
		t.Errorf("got %v", got)
	}
	if _, err := ParseFloats(""); err == nil {
		t.Error("empty element accepted")
	}
}

func TestNewAppBindsFlagGroups(t *testing.T) {
	a := NewApp("x")
	if a.Spec == nil || a.Obs == nil || a.Flags == nil {
		t.Fatalf("incomplete app: %+v", a)
	}
	if a.Flags.Lookup("counter") == nil || a.Flags.Lookup("trace") == nil {
		t.Error("standard flags not bound")
	}
	b := NewObsApp("y")
	if b.Spec != nil {
		t.Error("obs-only app bound spec flags")
	}
	if b.Flags.Lookup("trace") == nil {
		t.Error("obs flags not bound")
	}
	if b.Flags.Lookup("counter") != nil {
		t.Error("spec flags leaked into obs-only app")
	}
}
