package cliutil

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"
	"time"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/progress"
)

// ObsFlags holds the shared observability flag values every command in
// cmd/ exposes: -trace (JSON-lines event sink), -metrics (snapshot table
// on exit), -pprof (live profiling server) and -progress (live solve
// progress lines on stderr).
type ObsFlags struct {
	Trace    *string
	Metrics  *bool
	Pprof    *string
	Progress *bool
}

// BindObs registers the observability flags on the given FlagSet.
func BindObs(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		Trace: fs.String("trace", "",
			`write JSON-lines observability events (spans, per-iteration residuals, progress) to this file ("-" = stderr)`),
		Metrics: fs.Bool("metrics", false,
			"print the metrics snapshot table on exit"),
		Pprof: fs.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060)"),
		Progress: fs.Bool("progress", false,
			"print live solve progress (iteration, residual, decay slope, ETA) to stderr"),
	}
}

// progressPrintEvery throttles the -progress stderr lines: at most one
// line per solve per this interval, plus every completion line.
const progressPrintEvery = 500 * time.Millisecond

// Obs bundles the configured observability sinks of one command run.
// Tracer is nil when -trace is unset, so passing it straight into solver
// options preserves the zero-cost disabled path.
type Obs struct {
	Registry *obs.Registry
	Tracer   obs.Tracer
	file     *os.File
	jsonl    *obs.JSONL
	metrics  bool
}

// Setup opens the trace sink and starts the pprof server as requested by
// the parsed flags. Call Close when the command finishes.
func (f *ObsFlags) Setup() (*Obs, error) {
	o := &Obs{Registry: obs.NewRegistry(), metrics: *f.Metrics}
	switch *f.Trace {
	case "":
	case "-":
		o.Tracer = obs.NewJSONL(os.Stderr)
	default:
		file, err := os.Create(*f.Trace)
		if err != nil {
			return nil, fmt.Errorf("open trace sink: %w", err)
		}
		o.file = file
		o.Tracer = obs.NewJSONL(file)
	}
	if j, ok := o.Tracer.(*obs.JSONL); ok {
		o.jsonl = j
		// Sticky-sink losses surface in the exit snapshot (and /metrics
		// when the registry is served), not only in Close's error.
		o.Registry.GaugeFunc("obs.jsonl_dropped", func() float64 { return float64(j.Dropped()) })
	}
	if *f.Progress {
		// The printer tees in front of any -trace sink: the JSONL file
		// still gets every event while stderr gets the throttled human
		// lines. Tol 0 selects the printer's default ETA target.
		o.Tracer = obs.Tee(progress.NewPrinter(os.Stderr, progressPrintEvery, 0), o.Tracer)
	}
	if *f.Pprof != "" {
		addr := *f.Pprof
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	return o, nil
}

// Close flushes and closes the trace sink and, when -metrics was given,
// writes the snapshot table to w.
func (o *Obs) Close(w io.Writer) error {
	var err error
	if o.jsonl != nil {
		err = o.jsonl.Err()
	}
	if o.file != nil {
		if e := o.file.Close(); e != nil && err == nil {
			err = e
		}
	}
	if o.metrics {
		if _, e := fmt.Fprintln(w); e != nil && err == nil {
			err = e
		}
		if e := o.Registry.Snapshot().WriteText(w); e != nil && err == nil {
			err = e
		}
	}
	return err
}
