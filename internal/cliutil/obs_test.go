package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdrstoch/internal/obs"
)

func parseObs(t *testing.T, args ...string) *ObsFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	of := BindObs(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return of
}

func TestObsDefaultsAreDisabled(t *testing.T) {
	of := parseObs(t)
	o, err := of.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer != nil {
		t.Error("tracer enabled without -trace")
	}
	if o.Registry == nil {
		t.Error("registry missing")
	}
	var buf bytes.Buffer
	if err := o.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("metrics printed without -metrics: %q", buf.String())
	}
}

func TestObsTraceSinkWritesJSONLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	of := parseObs(t, "-trace", path, "-metrics")
	o, err := of.Setup()
	if err != nil {
		t.Fatal(err)
	}
	done := obs.StartSpan(o.Tracer, "test.op")
	obs.IterEvent(o.Tracer, "power", 1, 0.5)
	done()
	o.Registry.Counter("solver.iterations").Add(3)

	var buf bytes.Buffer
	if err := o.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "solver.iterations") {
		t.Errorf("-metrics table missing counter:\n%s", buf.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("trace has %d events, want 3", len(events))
	}
	if events[0].Kind != "span_start" || events[1].Kind != "iter" || events[2].Kind != "span_end" {
		t.Errorf("event kinds = %s/%s/%s", events[0].Kind, events[1].Kind, events[2].Kind)
	}
}

func TestObsProgressFlagEnablesTracer(t *testing.T) {
	o, err := parseObs(t, "-progress").Setup()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tracer == nil {
		t.Fatal("-progress left the tracer nil")
	}
	var buf bytes.Buffer
	if err := o.Close(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestObsProgressComposesWithTraceSink(t *testing.T) {
	// -progress tees a stderr printer in front of the JSONL sink; the
	// trace file must still receive every event.
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	o, err := parseObs(t, "-trace", path, "-progress").Setup()
	if err != nil {
		t.Fatal(err)
	}
	obs.IterEvent(o.Tracer, "power", 1, 0.5)
	var buf bytes.Buffer
	if err := o.Close(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != "iter" {
		t.Fatalf("trace sink behind -progress recorded %v", events)
	}
}

func TestObsTraceSinkOpenFailure(t *testing.T) {
	of := parseObs(t, "-trace", filepath.Join(t.TempDir(), "missing", "trace.jsonl"))
	if _, err := of.Setup(); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

func TestObsTraceSinkExportsDropGauge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	of := parseObs(t, "-trace", path)
	o, err := of.Setup()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := o.Registry.Snapshot().Gauges["obs.jsonl_dropped"]
	if !ok {
		t.Fatal("obs.jsonl_dropped gauge not registered with a JSONL tracer")
	}
	if got != 0 {
		t.Errorf("healthy sink dropped = %g", got)
	}
	var buf bytes.Buffer
	if err := o.Close(&buf); err != nil {
		t.Fatal(err)
	}

	// No tracer, no gauge.
	o2, err := parseObs(t).Setup()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o2.Registry.Snapshot().Gauges["obs.jsonl_dropped"]; ok {
		t.Error("drop gauge registered without a tracer")
	}
}
