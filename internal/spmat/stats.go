package spmat

import (
	"sync/atomic"
	"time"
)

// PoolStats is a snapshot of a Pool's cumulative kernel counters. The
// cost-accounting layer differences two snapshots (Sub) to attribute
// kernel work to one solve. Counts are monotone over a pool's lifetime.
type PoolStats struct {
	// SpMVs counts sparse matrix–vector products (MulVec plus VecMul; a
	// parallel VecMul's delegated transpose product counts once).
	SpMVs int64
	// RowSweeps counts RunRows dispatches.
	RowSweeps int64
	// NNZ is the total stored entries processed across those kernels.
	NNZ int64
	// KernelNS is wall time spent inside the kernels, dispatch included.
	KernelNS int64
}

// Sub returns s − o component-wise.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	return PoolStats{
		SpMVs:     s.SpMVs - o.SpMVs,
		RowSweeps: s.RowSweeps - o.RowSweeps,
		NNZ:       s.NNZ - o.NNZ,
		KernelNS:  s.KernelNS - o.KernelNS,
	}
}

// poolStats is the Pool-embedded accumulator. Plain atomic adds with no
// allocation and no locking: the kernels stay on their zero-alloc hot
// path (pinned by TestPoolKernelsAllocFree) and concurrent readers (the
// cost layer snapshotting mid-solve) see a consistent-enough view — each
// field is individually exact, and solver stages snapshot at quiescent
// points (before/after a solve), never mid-dispatch.
type poolStats struct {
	spmvs     atomic.Int64
	rowSweeps atomic.Int64
	nnz       atomic.Int64
	kernelNS  atomic.Int64
}

// Stats snapshots the pool's cumulative kernel counters. A nil pool has
// no counters: serial kernels invoked without a Pool are unaccounted,
// which is fine — every accounted path in this repository threads a Pool.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		SpMVs:     p.stats.spmvs.Load(),
		RowSweeps: p.stats.rowSweeps.Load(),
		NNZ:       p.stats.nnz.Load(),
		KernelNS:  p.stats.kernelNS.Load(),
	}
}

// MemoryBytes estimates the matrix's heap footprint: the CSR row
// pointer, column index, and value arrays (8 bytes per element each).
// A materialized transpose cache is not included — peeking at it would
// race with a concurrent first T() call; callers that know a transpose
// exists can add m.NNZ() contributions themselves.
func (m *CSR) MemoryBytes() int64 {
	return int64(len(m.rowPtr)+len(m.colIdx)+len(m.val)) * 8
}

// CountExternal attributes n matrix–vector products executed outside the
// pool's own kernels — matrix-free operator backends (the Kron shuffle
// products) run their multiplies themselves but account them here, so
// the cost layer's SpMV counts and effective-bandwidth estimates cover
// explicit and implicit solves alike. entries is the stored-entry
// equivalent touched (e.g. kron.Descriptor.OpsPerMul per product);
// start is when the kernel began. Nil-tolerant like the internal
// counters, so unaccounted serial paths can call it unconditionally.
func (p *Pool) CountExternal(n, entries int, start time.Time) {
	p.countKernels(true, n, entries, start)
}

// countKernel records one kernel execution. spmv distinguishes products
// from row sweeps.
func (p *Pool) countKernel(spmv bool, nnz int, start time.Time) {
	p.countKernels(spmv, 1, nnz, start)
}

// countKernels records a blocked execution of n logical kernels (a
// MulVecs over n packed vectors counts n SpMVs) touching nnz stored
// entries in total. Tolerates a nil receiver so serial fallbacks can call
// it unconditionally.
func (p *Pool) countKernels(spmv bool, n, nnz int, start time.Time) {
	if p == nil {
		return
	}
	if spmv {
		p.stats.spmvs.Add(int64(n))
	} else {
		p.stats.rowSweeps.Add(int64(n))
	}
	p.stats.nnz.Add(int64(nnz))
	p.stats.kernelNS.Add(time.Since(start).Nanoseconds())
}
