package spmat

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket coordinate-format stream
// ("matrix coordinate real general", 1-indexed) back into a CSR matrix —
// the inverse of WriteMatrixMarket, so assembled TPMs can round-trip
// through files and external tools.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	if !sc.Scan() {
		return nil, fmt.Errorf("spmat: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" ||
		header[2] != "coordinate" || header[3] != "real" || header[4] != "general" {
		return nil, fmt.Errorf("spmat: unsupported MatrixMarket header %q", sc.Text())
	}

	// Skip comment lines, then read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("spmat: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("spmat: bad dimensions %dx%d nnz=%d", rows, cols, nnz)
	}

	tr := NewTriplet(rows, cols)
	tr.Reserve(nnz)
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		var i, j int
		var v float64
		if _, err := fmt.Sscan(line, &i, &j, &v); err != nil {
			return nil, fmt.Errorf("spmat: bad entry line %q: %w", line, err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("spmat: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		tr.Add(i-1, j-1, v)
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("spmat: header promised %d entries, found %d", nnz, read)
	}
	return tr.ToCSR(), nil
}
