package spmat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser: arbitrary input must either
// parse into a structurally valid CSR matrix or return an error — never
// panic, and a successful parse must re-serialize and re-parse to the
// same matrix.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.5\n2 2 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n3 4 1\n2 3 -1e-9\n")
	f.Add("")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		r, c := m.Dims()
		if r <= 0 || c <= 0 {
			t.Fatalf("parsed matrix with dims %dx%d", r, c)
		}
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		m2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		r2, c2 := m2.Dims()
		if r2 != r || c2 != c || m2.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				r, c, m.NNZ(), r2, c2, m2.NNZ())
		}
	})
}
