package spmat

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser: arbitrary input must either
// parse into a structurally valid CSR matrix or return an error — never
// panic, and a successful parse must re-serialize and re-parse to the
// same matrix.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.5\n2 2 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n3 4 1\n2 3 -1e-9\n")
	f.Add("")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		r, c := m.Dims()
		if r <= 0 || c <= 0 {
			t.Fatalf("parsed matrix with dims %dx%d", r, c)
		}
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		m2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		r2, c2 := m2.Dims()
		if r2 != r || c2 != c || m2.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				r, c, m.NNZ(), r2, c2, m2.NNZ())
		}
	})
}

// FuzzTransposeRoundTrip checks Transpose∘Transpose is the identity on
// arbitrary fuzz-assembled matrices — exact equality of the pattern and
// values, since both passes reproduce row-major entry order — and that
// the cached T agrees with a fresh Transpose.
func FuzzTransposeRoundTrip(f *testing.F) {
	f.Add(uint16(3), uint16(4), []byte{0, 1, 16, 2, 3, 200, 0, 1, 16})
	f.Add(uint16(1), uint16(1), []byte{0, 0, 1})
	f.Add(uint16(200), uint16(7), []byte{})
	f.Fuzz(func(t *testing.T, r16, c16 uint16, data []byte) {
		r := int(r16%300) + 1
		c := int(c16%300) + 1
		tr := NewTriplet(r, c)
		for len(data) >= 3 {
			i := int(data[0]) % r
			j := int(data[1]) % c
			v := float64(int8(data[2])) / 16
			tr.Add(i, j, v)
			data = data[3:]
		}
		m := tr.ToCSR()
		rt := m.Transpose().Transpose()
		rr, rc := rt.Dims()
		if rr != r || rc != c || rt.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				r, c, m.NNZ(), rr, rc, rt.NNZ())
		}
		for i := 0; i <= r; i++ {
			if m.rowPtr[i] != rt.rowPtr[i] {
				t.Fatalf("rowPtr[%d]: %d vs %d", i, m.rowPtr[i], rt.rowPtr[i])
			}
		}
		for k := range m.val {
			if m.colIdx[k] != rt.colIdx[k] || m.val[k] != rt.val[k] {
				t.Fatalf("entry %d: (%d,%g) vs (%d,%g)",
					k, m.colIdx[k], m.val[k], rt.colIdx[k], rt.val[k])
			}
		}
		cached := m.T()
		fresh := m.Transpose()
		for k := range fresh.val {
			if cached.colIdx[k] != fresh.colIdx[k] || cached.val[k] != fresh.val[k] {
				t.Fatalf("cached transpose diverges at entry %d", k)
			}
		}
	})
}
