package spmat

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randomCSR builds an r×c matrix with roughly density fraction of stored
// entries, deliberately skewed (a few very heavy rows) so the nnz-balanced
// partition is exercised on uneven work.
func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	tr := NewTriplet(r, c)
	for i := 0; i < r; i++ {
		d := density
		if i%17 == 0 {
			d = math.Min(1, density*10) // heavy rows
		}
		for j := 0; j < c; j++ {
			if rng.Float64() < d {
				tr.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return tr.ToCSR()
}

func randomVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		den := math.Abs(a[i])
		if den < 1 {
			den = 1
		}
		if d := math.Abs(a[i]-b[i]) / den; d > worst {
			worst = d
		}
	}
	return worst
}

// workerCounts is the matrix of team sizes every differential test runs:
// serial, even, odd/prime, and whatever the host reports.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestPoolMulVecMatchesSerial checks the row-parallel y = A·x against the
// serial kernel for random skewed matrices at several worker counts. The
// per-row reductions are identical, so the match must be exact.
func TestPoolMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer forceParallel(t)()
	for _, shape := range [][2]int{{1, 1}, {3, 50}, {200, 200}, {613, 401}} {
		m := randomCSR(rng, shape[0], shape[1], 0.05)
		x := randomVec(rng, shape[1])
		want := make([]float64, shape[0])
		m.MulVec(want, x)
		for _, w := range workerCounts() {
			pool := NewPool(w)
			got := make([]float64, shape[0])
			pool.MulVec(m, got, x)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%dx%d workers=%d: y[%d] = %g, serial %g",
						shape[0], shape[1], w, i, got[i], want[i])
				}
			}
			pool.Close()
		}
	}
}

// TestPoolVecMulMatchesSerial checks the transpose-gather y = x·A against
// the serial scatter within 1e-12: the two sum each y[j] in different
// orders, so only rounding-level disagreement is allowed.
func TestPoolVecMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	defer forceParallel(t)()
	for _, shape := range [][2]int{{3, 50}, {200, 200}, {401, 613}} {
		m := randomCSR(rng, shape[0], shape[1], 0.05)
		x := randomVec(rng, shape[0])
		want := make([]float64, shape[1])
		m.VecMul(want, x)
		for _, w := range workerCounts() {
			pool := NewPool(w)
			got := make([]float64, shape[1])
			pool.VecMul(m, got, x)
			if d := maxRelDiff(want, got); d > 1e-12 {
				t.Fatalf("%dx%d workers=%d: max rel diff %g", shape[0], shape[1], w, d)
			}
			pool.Close()
		}
	}
}

// TestPoolDeterministicForFixedWorkers dispatches the same product many
// times on the same pool and on a fresh pool of the same width: every
// repetition must be bit-identical — the partition depends only on the
// matrix and the worker count.
func TestPoolDeterministicForFixedWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer forceParallel(t)()
	m := randomCSR(rng, 500, 500, 0.04)
	x := randomVec(rng, 500)
	for _, w := range workerCounts() {
		pool := NewPool(w)
		ref := make([]float64, 500)
		pool.VecMul(m, ref, x)
		got := make([]float64, 500)
		for rep := 0; rep < 5; rep++ {
			pool.VecMul(m, got, x)
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("workers=%d rep %d: y[%d] drifted", w, rep, i)
				}
			}
		}
		fresh := NewPool(w)
		fresh.VecMul(m, got, x)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d: fresh pool disagrees at %d", w, i)
			}
		}
		fresh.Close()
		pool.Close()
	}
}

// TestPoolRunRowsPartialSums exercises the custom-kernel path with the
// deterministic partial-sum reduction pattern (one slot per part, serial
// combine) and checks it against the serial sum.
func TestPoolRunRowsPartialSums(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	defer forceParallel(t)()
	m := randomCSR(rng, 300, 300, 0.05)
	want := 0.0
	for _, v := range m.val {
		want += v * v
	}
	for _, w := range workerCounts() {
		pool := NewPool(w)
		partials := make([]float64, pool.Workers())
		pool.RunRows(m, func(part, lo, hi int) {
			s := 0.0
			for k := m.rowPtr[lo]; k < m.rowPtr[hi]; k++ {
				s += m.val[k] * m.val[k]
			}
			partials[part] = s
		})
		got := 0.0
		for _, s := range partials {
			got += s
		}
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Fatalf("workers=%d: partial-sum total %g, want %g", w, got, want)
		}
		pool.Close()
	}
}

// TestPoolSerialFallbacks checks the three serial cases — nil pool,
// single worker, matrix under the cutoff — all produce the plain-kernel
// result without dispatch.
func TestPoolSerialFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 40, 40, 0.2) // tiny: far below ParallelCutoff
	x := randomVec(rng, 40)
	want := make([]float64, 40)
	m.MulVec(want, x)
	var nilPool *Pool
	got := make([]float64, 40)
	nilPool.MulVec(m, got, x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("nil pool differs at %d", i)
		}
	}
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", nilPool.Workers())
	}
	nilPool.Close() // must not panic
	one := NewPool(1)
	one.MulVec(m, got, x)
	one.Close()
	big := NewPool(4)
	defer big.Close()
	big.MulVec(m, got, x) // under cutoff: serial path on a live team
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("cutoff fallback differs at %d", i)
		}
	}
}

// TestPoolCloseIdempotent double-closes live and serial pools.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close()
	s := NewPool(1)
	s.Close()
	s.Close()
}

// TestTransposeCacheSharedAndConsistent checks T() returns one cached
// transpose equal to a fresh Transpose and that concurrent first calls
// are safe (run under -race).
func TestTransposeCacheSharedAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomCSR(rng, 120, 80, 0.1)
	done := make(chan *CSR, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- m.T() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; got != first {
			t.Fatal("T returned different instances")
		}
	}
	want := m.Transpose()
	if d := maxRelDiff(want.val, first.val); d != 0 {
		t.Fatalf("cached transpose values differ: %g", d)
	}
}

// TestTransposeWithPermRefresh mutates values in place and refreshes the
// transpose through the permutation, checking it matches a rebuild.
func TestTransposeWithPermRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 90, 110, 0.08)
	tr, perm := m.TransposeWithPerm()
	vals := m.RawValues()
	for k := range vals {
		vals[k] *= 1.5
	}
	tvals := tr.RawValues()
	for k, v := range vals {
		tvals[perm[k]] = v
	}
	want := m.Transpose()
	for k := range want.val {
		if want.val[k] != tr.val[k] {
			t.Fatalf("refreshed transpose differs at %d", k)
		}
	}
}

// forceParallel drops the crossover cutoff so the dispatch path runs even
// for the small matrices tests use, restoring it on cleanup.
func forceParallel(t *testing.T) func() {
	t.Helper()
	old := ParallelCutoff
	ParallelCutoff = 0
	return func() { ParallelCutoff = old }
}
