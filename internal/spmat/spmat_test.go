package spmat

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// randomStochastic builds a random dense row-stochastic matrix with strictly
// positive entries, guaranteeing irreducibility and aperiodicity.
func randomStochastic(n int, rng *rand.Rand) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		row := d.Row(i)
		for j := 0; j < n; j++ {
			row[j] = rng.Float64() + 1e-3
			sum += row[j]
		}
		for j := 0; j < n; j++ {
			row[j] /= sum
		}
	}
	return d
}

func denseToCSR(d *Dense) *CSR {
	r, c := d.Dims()
	t := NewTriplet(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if v := d.At(i, j); v != 0 {
				t.Add(i, j, v)
			}
		}
	}
	return t.ToCSR()
}

func TestTripletToCSRSumsDuplicates(t *testing.T) {
	tr := NewTriplet(2, 3)
	tr.Add(0, 1, 0.25)
	tr.Add(0, 1, 0.25)
	tr.Add(0, 0, 0.5)
	tr.Add(1, 2, 1.0)
	m := tr.ToCSR()
	if got := m.At(0, 1); got != 0.5 {
		t.Errorf("At(0,1) = %g, want 0.5", got)
	}
	if got := m.At(0, 0); got != 0.5 {
		t.Errorf("At(0,0) = %g, want 0.5", got)
	}
	if got := m.At(1, 2); got != 1.0 {
		t.Errorf("At(1,2) = %g, want 1", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %g, want 0", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestTripletReserveKeepsEntries(t *testing.T) {
	tr := NewTriplet(4, 4)
	tr.Add(0, 0, 1)
	tr.Add(3, 3, 2)
	tr.Reserve(1024)
	tr.Add(1, 1, 3)
	m := tr.ToCSR()
	if m.At(0, 0) != 1 || m.At(3, 3) != 2 || m.At(1, 1) != 3 {
		t.Fatal("Reserve lost entries")
	}
}

func TestTripletOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	NewTriplet(2, 2).Add(2, 0, 1)
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(2, 2, []int{0, 1}, []int{0}, []float64{1}); err == nil {
		t.Error("short rowPtr accepted")
	}
	if _, err := NewCSR(1, 2, []int{0, 2}, []int{1, 0}, []float64{1, 1}); err == nil {
		t.Error("non-increasing columns accepted")
	}
	if _, err := NewCSR(1, 2, []int{0, 1}, []int{5}, []float64{1}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := NewCSR(1, 2, []int{0, 2}, []int{0, 1}, []float64{0.5, 0.5}); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
}

func TestMulVecAndVecMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		d := randomStochastic(n, rng)
		m := denseToCSR(d)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		yd := make([]float64, n)
		ys := make([]float64, n)
		d.MulVec(yd, x)
		m.MulVec(ys, x)
		if !vecAlmostEqual(yd, ys, 1e-12) {
			t.Fatalf("MulVec mismatch: %v vs %v", yd, ys)
		}
		d.VecMul(yd, x)
		m.VecMul(ys, x)
		if !vecAlmostEqual(yd, ys, 1e-12) {
			t.Fatalf("VecMul mismatch: %v vs %v", yd, ys)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewTriplet(5, 7)
	for k := 0; k < 15; k++ {
		tr.Add(rng.Intn(5), rng.Intn(7), rng.Float64())
	}
	m := tr.ToCSR()
	tt := m.Transpose().Transpose()
	if r, c := tt.Dims(); r != 5 || c != 7 {
		t.Fatalf("double transpose dims = %dx%d", r, c)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if !almostEqual(m.At(i, j), tt.At(i, j), 0) {
				t.Fatalf("transpose involution broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeMatchesVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomStochastic(9, rng)
	m := denseToCSR(d)
	mt := m.Transpose()
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.Float64()
	}
	// x·A == Aᵀ·x
	y1 := make([]float64, 9)
	y2 := make([]float64, 9)
	m.VecMul(y1, x)
	mt.MulVec(y2, x)
	if !vecAlmostEqual(y1, y2, 1e-13) {
		t.Fatalf("xA != A^T x: %v vs %v", y1, y2)
	}
}

func TestRowSumsAndCheckStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := denseToCSR(randomStochastic(8, rng))
	for i, s := range m.RowSums() {
		if !almostEqual(s, 1, 1e-12) {
			t.Errorf("row %d sums to %g", i, s)
		}
	}
	if err := m.CheckStochastic(1e-10); err != nil {
		t.Errorf("CheckStochastic: %v", err)
	}
	bad := NewTriplet(2, 2)
	bad.Add(0, 0, 0.7)
	bad.Add(1, 1, 1)
	if err := bad.ToCSR().CheckStochastic(1e-10); err == nil {
		t.Error("deficient row accepted")
	}
	neg := NewTriplet(1, 1)
	neg.Add(0, 0, -0.5)
	if err := neg.ToCSR().CheckStochastic(1e-10); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestScaleAndScaleRows(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	tr.Add(1, 1, 3)
	m := tr.ToCSR()
	s := m.Scale(2)
	if s.At(0, 1) != 4 || s.At(1, 1) != 6 {
		t.Error("Scale wrong")
	}
	if m.At(0, 1) != 2 {
		t.Error("Scale mutated receiver")
	}
	sr := m.ScaleRows([]float64{10, 100})
	if sr.At(0, 0) != 10 || sr.At(1, 1) != 300 {
		t.Error("ScaleRows wrong")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	id.MulVec(y, x)
	if !reflect.DeepEqual(x, y) {
		t.Fatalf("I x = %v", y)
	}
	if err := id.CheckStochastic(0); err != nil {
		t.Fatal(err)
	}
}

func TestDiag(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 0.5)
	tr.Add(1, 2, 1)
	tr.Add(2, 2, 0.25)
	d := tr.ToCSR().Diag()
	want := []float64{0.5, 0, 0.25}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Diag = %v, want %v", d, want)
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance: nonsingular
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		lu, err := Factorize(a)
		if err != nil {
			t.Fatal(err)
		}
		got := lu.Solve(b)
		if !vecAlmostEqual(got, want, 1e-9) {
			t.Fatalf("LU solve: got %v want %v", got, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factorize(a); err == nil {
		t.Fatal("singular matrix factored")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(lu.Det(), 10, 1e-12) {
		t.Fatalf("det = %g, want 10", lu.Det())
	}
}

func TestGTHTwoState(t *testing.T) {
	// Birth-death 2-state chain with known stationary distribution:
	// P = [[1-a, a], [b, 1-b]], pi = (b, a)/(a+b).
	a, b := 0.3, 0.1
	p := NewDense(2, 2)
	p.Set(0, 0, 1-a)
	p.Set(0, 1, a)
	p.Set(1, 0, b)
	p.Set(1, 1, 1-b)
	pi, err := StationaryGTH(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{b / (a + b), a / (a + b)}
	if !vecAlmostEqual(pi, want, 1e-14) {
		t.Fatalf("pi = %v, want %v", pi, want)
	}
}

func TestGTHMatchesPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(15)
		p := randomStochastic(n, rng)
		pi, err := StationaryGTH(p)
		if err != nil {
			t.Fatal(err)
		}
		// Long power iteration as an independent reference.
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = 1 / float64(n)
		}
		for it := 0; it < 20000; it++ {
			p.VecMul(y, x)
			x, y = y, x
		}
		if !vecAlmostEqual(pi, x, 1e-10) {
			t.Fatalf("GTH %v vs power %v", pi, x)
		}
	}
}

func TestGTHPreservesTinyMass(t *testing.T) {
	// A chain engineered so one state has stationary mass ~1e-12; GTH must
	// resolve it without catastrophic cancellation.
	eps := 1e-12
	p := NewDense(2, 2)
	p.Set(0, 0, 1-eps)
	p.Set(0, 1, eps)
	p.Set(1, 0, 1)
	pi, err := StationaryGTH(p)
	if err != nil {
		t.Fatal(err)
	}
	want := eps / (1 + eps)
	if rel := math.Abs(pi[1]-want) / want; rel > 1e-12 {
		t.Fatalf("tiny mass rel error %g", rel)
	}
}

func TestGTHRejectsReducible(t *testing.T) {
	p := NewDense(2, 2)
	p.Set(0, 0, 1)
	p.Set(1, 1, 1)
	if _, err := StationaryGTH(p); err == nil {
		t.Fatal("reducible chain accepted")
	}
}

func TestGTHCSRWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomStochastic(6, rng)
	piD, err := StationaryGTH(d)
	if err != nil {
		t.Fatal(err)
	}
	piS, err := StationaryGTHCSR(denseToCSR(d))
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(piD, piS, 1e-14) {
		t.Fatal("CSR wrapper disagrees with dense GTH")
	}
}

// Property: the stationary vector returned by GTH satisfies pi P = pi and
// sums to 1, for arbitrary random positive stochastic matrices.
func TestQuickGTHFixedPoint(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz%14)
		rng := rand.New(rand.NewSource(seed))
		p := randomStochastic(n, rng)
		pi, err := StationaryGTH(p)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range pi {
			if v < 0 {
				return false
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-12) {
			return false
		}
		y := make([]float64, n)
		p.VecMul(y, pi)
		return vecAlmostEqual(y, pi, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: triplet assembly then CSR expansion is lossless with respect to
// summed duplicate coordinates.
func TestQuickTripletRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		ref := NewDense(r, c)
		tr := NewTriplet(r, c)
		for k := 0; k < rng.Intn(40); k++ {
			i, j, v := rng.Intn(r), rng.Intn(c), rng.NormFloat64()
			ref.Add(i, j, v)
			tr.Add(i, j, v)
		}
		m := tr.ToCSR()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if !almostEqual(m.At(i, j), ref.At(i, j), 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
