package spmat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix used for small systems: the coarsest
// multigrid level, fundamental-matrix computations, and reference checks
// in tests.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c dense matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("spmat: negative dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// Dims returns the matrix dimensions.
func (d *Dense) Dims() (r, c int) { return d.rows, d.cols }

// At returns the entry at (i, j).
func (d *Dense) At(i, j int) float64 { return d.data[i*d.cols+j] }

// Set stores v at (i, j).
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.cols+j] = v }

// Add accumulates v at (i, j).
func (d *Dense) Add(i, j int, v float64) { d.data[i*d.cols+j] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.rows, d.cols)
	copy(out.data, d.data)
	return out
}

// Row returns row i; the slice aliases internal storage.
func (d *Dense) Row(i int) []float64 { return d.data[i*d.cols : (i+1)*d.cols] }

// MulVec computes y = D·x.
func (d *Dense) MulVec(y, x []float64) {
	if len(x) != d.cols || len(y) != d.rows {
		panic("spmat: dense MulVec dimension mismatch")
	}
	for i := 0; i < d.rows; i++ {
		row := d.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
}

// VecMul computes y = x·D.
func (d *Dense) VecMul(y, x []float64) {
	if len(x) != d.rows || len(y) != d.cols {
		panic("spmat: dense VecMul dimension mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < d.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := d.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// LU holds an LU factorization with partial pivoting, PA = LU.
type LU struct {
	n    int
	lu   *Dense
	piv  []int
	sign int
}

// Factorize computes the LU factorization of a square matrix. It returns an
// error if the matrix is singular to working precision.
func Factorize(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, errors.New("spmat: LU requires a square matrix")
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("spmat: singular matrix at pivot %d", k)
		}
		if p != k {
			ri, rk := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b, overwriting and returning x (a fresh slice).
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("spmat: LU solve dimension mismatch")
	}
	x := make([]float64, f.n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < f.n; i++ {
		row := f.lu.Row(i)
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		sum := x[i]
		for j := i + 1; j < f.n; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum / row[i]
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	det := float64(f.sign)
	for i := 0; i < f.n; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// StationaryGTH computes the stationary distribution of an irreducible
// row-stochastic matrix P using the Grassmann–Taksar–Heyman algorithm.
// GTH is subtraction-free (it never forms 1−p differences that cancel), so
// it is numerically reliable even when the stationary vector spans many
// orders of magnitude — exactly the regime of BER ≈ 1e−14 tail analysis.
// The input matrix is not modified.
func StationaryGTH(p *Dense) ([]float64, error) {
	if p.rows != p.cols {
		return nil, errors.New("spmat: GTH requires a square matrix")
	}
	n := p.rows
	if n == 0 {
		return nil, errors.New("spmat: GTH on empty matrix")
	}
	pi := make([]float64, n)
	if err := gthInPlace(p.Clone(), pi); err != nil {
		return nil, err
	}
	return pi, nil
}

// gthInPlace runs the GTH elimination and back-substitution, destroying a
// and writing the normalized stationary vector into pi (len a.rows).
func gthInPlace(a *Dense, pi []float64) error {
	n := a.rows
	// Elimination sweep: state n-1, n-2, ..., 1 are censored in turn.
	for k := n - 1; k > 0; k-- {
		row := a.Row(k)
		s := 0.0
		for j := 0; j < k; j++ {
			s += row[j]
		}
		if s <= 0 {
			return fmt.Errorf("spmat: GTH: state %d unreachable backwards (reducible chain?)", k)
		}
		for i := 0; i < k; i++ {
			aik := a.At(i, k) / s
			if aik == 0 {
				continue
			}
			ri := a.Row(i)
			for j := 0; j < k; j++ {
				ri[j] += aik * row[j]
			}
			a.Set(i, k, aik)
		}
		// Store the normalized row for back-substitution.
		for j := 0; j < k; j++ {
			row[j] /= s
		}
	}
	// Back substitution: unnormalized stationary measure.
	pi[0] = 1
	for k := 1; k < n; k++ {
		s := 0.0
		for i := 0; i < k; i++ {
			s += pi[i] * a.At(i, k)
		}
		pi[k] = s
	}
	total := 0.0
	for _, v := range pi {
		total += v
	}
	if total == 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return errors.New("spmat: GTH produced a degenerate measure")
	}
	for i := range pi {
		pi[i] /= total
	}
	return nil
}

// StationaryGTHCSR is a convenience wrapper that densifies a (small) CSR
// matrix and runs GTH on it.
func StationaryGTHCSR(p *CSR) ([]float64, error) {
	return StationaryGTH(p.ToDense())
}

// GTHWorkspace reuses the dense elimination matrix and result vector
// across repeated GTH solves — the multigrid coarsest level runs one per
// cycle on a chain of fixed size, which without reuse dominates the
// cycle's allocation volume. The zero value is ready to use.
type GTHWorkspace struct {
	a  *Dense
	pi []float64
}

// StationaryCSR densifies p into the workspace and solves it with GTH.
// The returned vector aliases the workspace and is valid until the next
// call; callers that keep it must copy it out.
func (w *GTHWorkspace) StationaryCSR(p *CSR) ([]float64, error) {
	n, m := p.Dims()
	if n != m {
		return nil, errors.New("spmat: GTH requires a square matrix")
	}
	if n == 0 {
		return nil, errors.New("spmat: GTH on empty matrix")
	}
	if w.a == nil || w.a.rows != n {
		w.a = NewDense(n, n)
		w.pi = make([]float64, n)
	} else {
		clear(w.a.data)
	}
	for r := 0; r < n; r++ {
		for k := p.rowPtr[r]; k < p.rowPtr[r+1]; k++ {
			w.a.data[r*n+p.colIdx[k]] = p.val[k]
		}
	}
	if err := gthInPlace(w.a, w.pi); err != nil {
		return nil, err
	}
	return w.pi, nil
}
