// Package spmat provides the sparse and dense matrix kernels used by the
// Markov-chain analyses in this repository: a COO (triplet) builder, an
// immutable CSR format with row- and column-oriented vector products, a
// small dense type with LU factorization, and the subtraction-free GTH
// (Grassmann–Taksar–Heyman) stationary-distribution solver used at the
// coarsest level of the multigrid hierarchy.
//
// All matrices are real, float64, and indexed from zero. Transition
// probability matrices (TPMs) are stored row-stochastic: row i holds the
// distribution of the next state given current state i.
package spmat

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
)

// Triplet accumulates matrix entries in coordinate form. Duplicate entries
// are summed when the triplet is compressed to CSR, which is exactly the
// semantics needed when assembling a TPM by enumerating noise outcomes:
// several (state, noise) combinations may land in the same target state.
type Triplet struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewTriplet returns an empty triplet accumulator for an r×c matrix.
func NewTriplet(r, c int) *Triplet {
	if r < 0 || c < 0 {
		panic("spmat: negative dimension")
	}
	return &Triplet{rows: r, cols: c}
}

// Dims returns the matrix dimensions.
func (t *Triplet) Dims() (r, c int) { return t.rows, t.cols }

// NNZ returns the number of accumulated entries (before duplicate merging).
func (t *Triplet) NNZ() int { return len(t.v) }

// Add accumulates v at (i, j). Zero values are kept so that an explicitly
// stored structural zero survives into the CSR pattern; callers that do not
// want them should simply not add them.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("spmat: triplet index (%d,%d) out of range %dx%d", i, j, t.rows, t.cols))
	}
	t.i = append(t.i, i)
	t.j = append(t.j, j)
	t.v = append(t.v, v)
}

// Reserve grows the internal buffers to hold at least n entries, reducing
// reallocation while assembling large models.
func (t *Triplet) Reserve(n int) {
	if cap(t.v) >= n {
		return
	}
	i := make([]int, len(t.i), n)
	copy(i, t.i)
	j := make([]int, len(t.j), n)
	copy(j, t.j)
	v := make([]float64, len(t.v), n)
	copy(v, t.v)
	t.i, t.j, t.v = i, j, v
}

// ToCSR compresses the triplet into CSR form, summing duplicates.
func (t *Triplet) ToCSR() *CSR {
	// Counting sort by row, then sort each row segment by column and merge
	// duplicates. This is O(nnz log rowNNZ) and allocation-frugal.
	rowCount := make([]int, t.rows+1)
	for _, i := range t.i {
		rowCount[i+1]++
	}
	for r := 0; r < t.rows; r++ {
		rowCount[r+1] += rowCount[r]
	}
	perm := make([]int, len(t.v))
	next := make([]int, t.rows)
	copy(next, rowCount[:t.rows])
	for k, i := range t.i {
		perm[next[i]] = k
		next[i]++
	}

	rowPtr := make([]int, t.rows+1)
	colIdx := make([]int, 0, len(t.v))
	val := make([]float64, 0, len(t.v))
	type ent struct {
		j int
		v float64
	}
	var scratch []ent
	for r := 0; r < t.rows; r++ {
		lo, hi := rowCount[r], rowCount[r+1]
		scratch = scratch[:0]
		for k := lo; k < hi; k++ {
			e := perm[k]
			scratch = append(scratch, ent{t.j[e], t.v[e]})
		}
		slices.SortFunc(scratch, func(a, b ent) int { return cmp.Compare(a.j, b.j) })
		for k := 0; k < len(scratch); {
			j := scratch[k].j
			sum := 0.0
			for k < len(scratch) && scratch[k].j == j {
				sum += scratch[k].v
				k++
			}
			colIdx = append(colIdx, j)
			val = append(val, sum)
		}
		rowPtr[r+1] = len(val)
	}
	return &CSR{rows: t.rows, cols: t.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// CSR is an immutable compressed-sparse-row matrix.
//
// Immutability has one sanctioned exception: solvers that keep the
// sparsity pattern fixed may refresh the stored values in place through
// RawValues (see its contract). The lazily cached transpose (T) is shared
// and must only be used on matrices whose values do not change.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64

	tOnce sync.Once
	t     *CSR // lazily cached transpose, see T
}

// NewCSR builds a CSR matrix from raw slices. The slices are adopted, not
// copied; callers must not modify them afterwards. It validates structure.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("spmat: rowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(val) || len(colIdx) != len(val) {
		return nil, errors.New("spmat: inconsistent CSR buffers")
	}
	for r := 0; r < rows; r++ {
		if rowPtr[r] > rowPtr[r+1] {
			return nil, fmt.Errorf("spmat: rowPtr not monotone at row %d", r)
		}
		for k := rowPtr[r]; k < rowPtr[r+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= cols {
				return nil, fmt.Errorf("spmat: column %d out of range in row %d", colIdx[k], r)
			}
			if k > rowPtr[r] && colIdx[k] <= colIdx[k-1] {
				return nil, fmt.Errorf("spmat: columns not strictly increasing in row %d", r)
			}
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// Dims returns the matrix dimensions.
func (m *CSR) Dims() (r, c int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// Row returns the column indices and values of row i. The returned slices
// alias internal storage and must not be modified.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// At returns the entry at (i, j), zero if not stored. O(log rowNNZ).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	if k, ok := slices.BinarySearch(cols, j); ok {
		return m.val[lo+k]
	}
	return 0
}

// MulVec computes y = A·x (column vector on the right). y must have length
// equal to the row count and may not alias x.
func (m *CSR) MulVec(y, x []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic("spmat: MulVec dimension mismatch")
	}
	m.mulVecRange(y, x, 0, m.rows)
}

// mulVecRange computes y[lo:hi] = (A·x)[lo:hi], the row-range kernel the
// parallel pool partitions by stored-entry count. Each y[r] is a serial
// per-row reduction, so the result is independent of the partitioning.
func (m *CSR) mulVecRange(y, x []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		sum := 0.0
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			sum += m.val[k] * x[m.colIdx[k]]
		}
		y[r] = sum
	}
}

// mulVecsBlock is the register-blocking width of the multi-vector kernel:
// up to this many right-hand sides accumulate in one fixed-size stack
// array while the row's stored entries stream past once.
const mulVecsBlock = 8

// mulVecsRange computes ys[b][lo:hi] = (A·xs[b])[lo:hi] for every packed
// right-hand side b — the blocked SpMM row-range kernel. The matrix row is
// traversed once per block of mulVecsBlock vectors: each stored entry's
// value and column index are loaded once and applied to the whole block,
// so k sweep iterates advance per matrix traversal instead of per SpMV.
// For each (b, r) the accumulation visits the row's entries in exactly the
// order mulVecRange does, so every output is bit-identical to the serial
// single-vector kernel.
func (m *CSR) mulVecsRange(ys, xs [][]float64, lo, hi int) {
	for b0 := 0; b0 < len(ys); b0 += mulVecsBlock {
		bn := len(ys) - b0
		if bn > mulVecsBlock {
			bn = mulVecsBlock
		}
		yb, xb := ys[b0:b0+bn], xs[b0:b0+bn]
		for r := lo; r < hi; r++ {
			var acc [mulVecsBlock]float64
			for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
				v, c := m.val[k], m.colIdx[k]
				for b := 0; b < bn; b++ {
					acc[b] += v * xb[b][c]
				}
			}
			for b := 0; b < bn; b++ {
				yb[b][r] = acc[b]
			}
		}
	}
}

// SamePattern reports whether a and b have identical dimensions and an
// identical sparsity pattern (rowPtr and colIdx element-wise equal). The
// sweep engine uses it to decide between an in-place value refresh and a
// full symbolic rebuild when moving to a neighboring parameter point.
func SamePattern(a, b *CSR) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.rows != b.rows || a.cols != b.cols || len(a.val) != len(b.val) {
		return false
	}
	for i, p := range a.rowPtr {
		if b.rowPtr[i] != p {
			return false
		}
	}
	for i, c := range a.colIdx {
		if b.colIdx[i] != c {
			return false
		}
	}
	return true
}

// VecMul computes y = x·A (row vector on the left), the fundamental
// operation of a Markov-chain power step: η' = η·P. y must have length
// equal to the column count and may not alias x.
func (m *CSR) VecMul(y, x []float64) {
	if len(x) != m.rows || len(y) != m.cols {
		panic("spmat: VecMul dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			y[m.colIdx[k]] += xr * m.val[k]
		}
	}
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	return m.transpose(nil)
}

// TransposeWithPerm returns Aᵀ together with the value permutation
// linking the two: t.val[perm[k]] = m.val[k] for every stored entry k.
// Solvers that refresh a fixed-pattern matrix's values in place use perm
// to refresh the transpose in one O(nnz) pass instead of rebuilding it.
func (m *CSR) TransposeWithPerm() (t *CSR, perm []int) {
	perm = make([]int, len(m.val))
	return m.transpose(perm), perm
}

// T returns Aᵀ, computing and caching it on first use. The cached
// transpose is what turns the left-multiply x·A (a scatter over rows)
// into a race-free row-parallel gather for the pool kernels, and is
// shared by the column-sweep solvers. Only valid on matrices whose
// values never change; in-place refreshers (RawValues) must manage
// their own transposes via TransposeWithPerm.
func (m *CSR) T() *CSR {
	m.tOnce.Do(func() { m.t = m.Transpose() })
	return m.t
}

func (m *CSR) transpose(perm []int) *CSR {
	count := make([]int, m.cols+1)
	for _, j := range m.colIdx {
		count[j+1]++
	}
	for c := 0; c < m.cols; c++ {
		count[c+1] += count[c]
	}
	rowPtr := make([]int, m.cols+1)
	copy(rowPtr, count)
	colIdx := make([]int, len(m.colIdx))
	val := make([]float64, len(m.val))
	next := make([]int, m.cols)
	copy(next, count[:m.cols])
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			j := m.colIdx[k]
			p := next[j]
			colIdx[p] = r
			val[p] = m.val[k]
			if perm != nil {
				perm[k] = p
			}
			next[j]++
		}
	}
	return &CSR{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// EntryIndex returns the position of stored entry (i, j) within RawValues,
// or -1 when the entry is not stored. O(log rowNNZ).
func (m *CSR) EntryIndex(i, j int) int {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	if k, ok := slices.BinarySearch(m.colIdx[lo:hi], j); ok {
		return lo + k
	}
	return -1
}

// RefreshTranspose re-derives t's values from m through the permutation
// returned by TransposeWithPerm, after m's values were rewritten in place.
// One O(nnz) pass, no allocation.
func (m *CSR) RefreshTranspose(t *CSR, perm []int) {
	if len(perm) != len(m.val) || len(t.val) != len(m.val) {
		panic("spmat: RefreshTranspose permutation mismatch")
	}
	for k, v := range m.val {
		t.val[perm[k]] = v
	}
}

// RawValues exposes the backing value slice so that fixed-pattern solvers
// (repeated iterate-weighted lumping, transpose refresh) can rewrite the
// stored values in place without reallocating the matrix. The sparsity
// pattern (rowPtr, colIdx) must never change, values must stay consistent
// with any invariants the caller relies on (e.g. row-stochasticity), and
// a transpose already materialized by T is NOT refreshed — in-place
// mutators must maintain their own transposes via TransposeWithPerm.
func (m *CSR) RawValues() []float64 { return m.val }

// RowSums returns the vector of row sums (all 1 for a stochastic matrix).
func (m *CSR) RowSums() []float64 {
	s := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			sum += m.val[k]
		}
		s[r] = sum
	}
	return s
}

// Diag returns the main diagonal as a dense vector. One linear pass over
// each row's column slice (columns are strictly increasing, so the scan
// stops at the first column past the diagonal).
func (m *CSR) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			if j > i {
				break
			}
			if j == i {
				d[i] = m.val[k]
				break
			}
		}
	}
	return d
}

// Scale returns a new CSR with every entry multiplied by s. The pattern
// slices are shared with the receiver; the new matrix has its own values
// (and its own, empty, transpose cache).
func (m *CSR) Scale(s float64) *CSR {
	val := make([]float64, len(m.val))
	for i, v := range m.val {
		val[i] = v * s
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: m.rowPtr, colIdx: m.colIdx, val: val}
}

// ScaleRows returns a new CSR whose row i is multiplied by d[i].
func (m *CSR) ScaleRows(d []float64) *CSR {
	if len(d) != m.rows {
		panic("spmat: ScaleRows dimension mismatch")
	}
	val := make([]float64, len(m.val))
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			val[k] = m.val[k] * d[r]
		}
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: m.rowPtr, colIdx: m.colIdx, val: val}
}

// CheckStochastic reports whether every row sums to 1 within tol and every
// entry is non-negative. It returns a descriptive error on failure.
func (m *CSR) CheckStochastic(tol float64) error {
	if m.rows != m.cols {
		return fmt.Errorf("spmat: TPM must be square, got %dx%d", m.rows, m.cols)
	}
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if m.val[k] < -tol {
				return fmt.Errorf("spmat: negative probability %g at (%d,%d)", m.val[k], r, m.colIdx[k])
			}
			sum += m.val[k]
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("spmat: row %d sums to %g, want 1±%g", r, sum, tol)
		}
	}
	return nil
}

// ToDense expands the matrix into a dense copy. For small matrices only.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			d.Set(r, m.colIdx[k], m.val[k])
		}
	}
	return d
}

// Identity returns the n×n identity matrix in CSR form.
func Identity(n int) *CSR {
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		colIdx[i] = i
		val[i] = 1
	}
	return &CSR{rows: n, cols: n, rowPtr: rowPtr, colIdx: colIdx, val: val}
}
