package spmat

import (
	"math/rand"
	"testing"
)

func TestPoolStatsCountKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 200, 200, 0.05)
	x := randomVec(rng, 200)
	y := make([]float64, 200)

	for _, w := range []int{1, 4} {
		pool := NewPool(w)
		s0 := pool.Stats()
		if s0 != (PoolStats{}) {
			t.Fatalf("workers=%d: fresh pool stats = %+v", w, s0)
		}
		pool.MulVec(m, y, x)
		pool.MulVec(m, y, x)
		pool.VecMul(m, y, x)
		pool.RunRows(m, func(part, lo, hi int) {})
		s := pool.Stats()
		// VecMul delegates to MulVec over the transpose in the parallel
		// path and is timed directly in the serial path; either way each
		// product counts exactly once.
		if s.SpMVs != 3 {
			t.Errorf("workers=%d: SpMVs = %d, want 3", w, s.SpMVs)
		}
		if s.RowSweeps != 1 {
			t.Errorf("workers=%d: RowSweeps = %d, want 1", w, s.RowSweeps)
		}
		// Three products plus one row sweep, each touching every entry.
		if want := int64(4 * m.NNZ()); s.NNZ != want {
			t.Errorf("workers=%d: NNZ = %d, want %d", w, s.NNZ, want)
		}
		if s.KernelNS <= 0 {
			t.Errorf("workers=%d: KernelNS = %d", w, s.KernelNS)
		}
		pool.Close()
	}
}

func TestPoolStatsNilPool(t *testing.T) {
	var pool *Pool
	if pool.Stats() != (PoolStats{}) {
		t.Error("nil pool stats non-zero")
	}
	// Nil-pool kernel calls stay valid (serial, unaccounted).
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 20, 20, 0.2)
	x := randomVec(rng, 20)
	y := make([]float64, 20)
	pool.MulVec(m, y, x)
	pool.VecMul(m, y, x)
	pool.RunRows(m, func(part, lo, hi int) {})
}

func TestPoolStatsSub(t *testing.T) {
	a := PoolStats{SpMVs: 10, RowSweeps: 5, NNZ: 1000, KernelNS: 900}
	b := PoolStats{SpMVs: 4, RowSweeps: 2, NNZ: 300, KernelNS: 400}
	d := a.Sub(b)
	if d != (PoolStats{SpMVs: 6, RowSweeps: 3, NNZ: 700, KernelNS: 500}) {
		t.Errorf("Sub = %+v", d)
	}
}

func TestCSRMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 50, 40, 0.1)
	got := m.MemoryBytes()
	want := int64(50+1+2*m.NNZ()) * 8
	if got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

// TestPoolKernelsAllocFree pins the acceptance criterion that the
// always-on accounting adds zero allocations to the hot kernels: the
// counters are two atomic adds and a monotonic clock read, nothing that
// escapes to the heap.
func TestPoolKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 300, 300, 0.05)
	x := randomVec(rng, 300)
	y := make([]float64, 300)

	pool := NewPool(2)
	defer pool.Close()
	// Warm the transpose cache and row bounds so steady-state is measured.
	pool.MulVec(m, y, x)
	pool.VecMul(m, y, x)

	if n := testing.AllocsPerRun(50, func() { pool.MulVec(m, y, x) }); n != 0 {
		t.Errorf("MulVec allocates %.1f per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { pool.VecMul(m, y, x) }); n != 0 {
		t.Errorf("VecMul allocates %.1f per call", n)
	}

	serial := NewPool(1)
	defer serial.Close()
	serial.VecMul(m, y, x)
	if n := testing.AllocsPerRun(50, func() { serial.MulVec(m, y, x) }); n != 0 {
		t.Errorf("serial MulVec allocates %.1f per call", n)
	}
}
