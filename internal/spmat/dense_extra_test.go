package spmat

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseMulVecVecMulAdjoint(t *testing.T) {
	// <y, D·x> == <Dᵀ·y, x> — check via VecMul: (y·D)·x == y·(D·x).
	rng := rand.New(rand.NewSource(71))
	r, c := 5, 7
	d := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	x := make([]float64, c)
	y := make([]float64, r)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	dx := make([]float64, r)
	d.MulVec(dx, x)
	lhs := 0.0
	for i := range y {
		lhs += y[i] * dx[i]
	}
	yd := make([]float64, c)
	d.VecMul(yd, y)
	rhs := 0.0
	for j := range x {
		rhs += yd[j] * x[j]
	}
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Fatalf("adjoint identity broken: %g vs %g", lhs, rhs)
	}
}

func TestDenseCloneIndependence(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	cl := d.Clone()
	cl.Set(0, 0, 5)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDenseDimensionPanics(t *testing.T) {
	d := NewDense(2, 3)
	for _, f := range []func(){
		func() { d.MulVec(make([]float64, 2), make([]float64, 2)) },
		func() { d.VecMul(make([]float64, 3), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected dimension panic")
				}
			}()
			f()
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("expected negative-dimension panic")
		}
	}()
	NewDense(-1, 2)
}

func TestLUSolveDimensionPanic(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong RHS length")
		}
	}()
	lu.Solve(make([]float64, 3))
}

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestGTHSingleState(t *testing.T) {
	p := NewDense(1, 1)
	p.Set(0, 0, 1)
	pi, err := StationaryGTH(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pi) != 1 || pi[0] != 1 {
		t.Fatalf("pi = %v", pi)
	}
	if _, err := StationaryGTH(NewDense(0, 0)); err == nil {
		t.Fatal("empty matrix accepted")
	}
}
