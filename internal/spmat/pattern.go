package spmat

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Pattern renders the nonzero structure of a matrix coarsened onto a
// w×h character cell grid. Each cell is '#' if any nonzero of the matrix
// falls into it and '.' otherwise. This regenerates Figure 3 of the paper
// (the nonzero pattern of the CDR transition probability matrix) in a
// terminal-friendly form.
func (m *CSR) Pattern(w, h int) string {
	if w <= 0 || h <= 0 {
		panic("spmat: non-positive pattern size")
	}
	if w > m.cols {
		w = m.cols
	}
	if h > m.rows {
		h = m.rows
	}
	grid := make([]bool, w*h)
	for r := 0; r < m.rows; r++ {
		cr := r * h / m.rows
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			cc := m.colIdx[k] * w / m.cols
			grid[cr*w+cc] = true
		}
	}
	var b strings.Builder
	b.Grow((w + 1) * h)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			if grid[i*w+j] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePGM writes the nonzero pattern as a binary-valued PGM image of size
// w×h (nonzero cells black), suitable for direct visual comparison with the
// paper's Figure 3.
func (m *CSR) WritePGM(wr io.Writer, w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("spmat: non-positive PGM size %dx%d", w, h)
	}
	grid := make([]bool, w*h)
	for r := 0; r < m.rows; r++ {
		cr := r * h / m.rows
		if cr >= h {
			cr = h - 1
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			cc := m.colIdx[k] * w / m.cols
			if cc >= w {
				cc = w - 1
			}
			grid[cr*w+cc] = true
		}
	}
	bw := bufio.NewWriter(wr)
	if _, err := fmt.Fprintf(bw, "P2\n%d %d\n255\n", w, h); err != nil {
		return err
	}
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			v := 255
			if grid[i*w+j] {
				v = 0
			}
			sep := byte(' ')
			if j == w-1 {
				sep = '\n'
			}
			if _, err := fmt.Fprintf(bw, "%d%c", v, sep); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real general"), 1-indexed, which lets
// the assembled TPM be inspected with external tools.
func (m *CSR) WriteMatrixMarket(wr io.Writer) error {
	bw := bufio.NewWriter(wr)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.rows, m.cols, m.NNZ()); err != nil {
		return err
	}
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, m.colIdx[k]+1, m.val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Bandwidth returns the maximum |i−j| over stored nonzeros; the CDR TPM is
// narrow-banded within FSM blocks, which the multigrid coarsening exploits.
func (m *CSR) Bandwidth() int {
	band := 0
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			d := m.colIdx[k] - r
			if d < 0 {
				d = -d
			}
			if d > band {
				band = d
			}
		}
	}
	return band
}
