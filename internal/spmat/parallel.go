package spmat

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// ParallelCutoff is the stored-entry count below which the pool kernels
// fall back to the serial loops: at this size one sparse product costs on
// the order of the dispatch itself (two channel operations per worker, a
// few microseconds), so splitting smaller matrices only adds latency.
// Chosen with BenchmarkPoolCrossover in parallel_bench_test.go; it is a
// variable so deployments on unusual hardware can retune it at startup.
var ParallelCutoff = 1 << 14

// Kernel identifiers of a pool dispatch.
const (
	jobNone = iota
	jobMulVec
	jobMulVecs
	jobRows
)

// poolJob carries the arguments of the dispatch in flight. Workers hold
// only the job and the channels — never the Pool — so an abandoned Pool
// becomes unreachable and its finalizer can release the team.
type poolJob struct {
	kind   int
	m      *CSR
	y, x   []float64
	ys, xs [][]float64
	fn     func(part, lo, hi int)
	bounds []int // row partition, len workers+1
}

// run executes the in-flight kernel over partition member id.
func (j *poolJob) run(id int) {
	lo, hi := j.bounds[id], j.bounds[id+1]
	switch j.kind {
	case jobMulVec:
		j.m.mulVecRange(j.y, j.x, lo, hi)
	case jobMulVecs:
		j.m.mulVecsRange(j.ys, j.xs, lo, hi)
	case jobRows:
		j.fn(id, lo, hi)
	}
}

// Pool is a reusable team of worker goroutines executing row-partitioned
// sparse kernels. Rows are split into Workers() contiguous spans of
// roughly equal stored-entry count (nnz-balanced), so skewed matrices do
// not idle most of the team. A Pool is NOT safe for concurrent dispatch:
// one kernel runs at a time, matching the solver loops it serves. The
// zero-cost serial cases — nil Pool, a single worker, or a matrix below
// ParallelCutoff — run the plain loops on the calling goroutine, so
// callers can thread a Pool unconditionally.
//
// Close releases the worker goroutines; it is idempotent and also runs
// as a finalizer, so pools handed to sync.Pool (the service path) are
// reclaimed even when dropped without Close.
type Pool struct {
	workers   int
	cmd       chan int
	done      chan struct{}
	job       *poolJob
	closeOnce sync.Once
	stats     poolStats
}

// NewPool starts a team of the given size. workers <= 0 selects
// runtime.GOMAXPROCS(0) — the "use the machine" default; workers == 1
// yields a serial pool with no goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	p.job = &poolJob{bounds: make([]int, workers+1)}
	p.cmd = make(chan int, workers)
	p.done = make(chan struct{}, workers)
	job, cmd, done := p.job, p.cmd, p.done
	for i := 0; i < workers; i++ {
		go func() {
			for id := range cmd {
				job.run(id)
				done <- struct{}{}
			}
		}()
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

// Workers reports the partition width. A nil pool is serial.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the worker goroutines. Idempotent; a closed pool must not
// be dispatched to again.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() {
		if p.cmd != nil {
			runtime.SetFinalizer(p, nil)
			close(p.cmd)
		}
	})
}

// serialFor reports whether m should bypass the team.
func (p *Pool) serialFor(m *CSR) bool {
	return p == nil || p.workers == 1 || m.NNZ() < ParallelCutoff
}

// rowBounds fills the job's partition with row spans of roughly equal
// stored-entry count. Depends only on (matrix, worker count), so repeated
// dispatches partition — and therefore reduce — identically: results are
// deterministic for a fixed worker count.
func (p *Pool) rowBounds(m *CSR) {
	b := p.job.bounds
	w := p.workers
	nnz := int64(m.NNZ())
	b[0] = 0
	for i := 1; i < w; i++ {
		target := int(nnz * int64(i) / int64(w))
		r := sort.SearchInts(m.rowPtr, target)
		if r < b[i-1] {
			r = b[i-1]
		}
		if r > m.rows {
			r = m.rows
		}
		b[i] = r
	}
	b[w] = m.rows
}

// dispatch fans the prepared job out to every worker and waits for all of
// them. The channel operations publish the job fields to the workers and
// their writes back to the caller (happens-before in both directions).
func (p *Pool) dispatch() {
	for i := 0; i < p.workers; i++ {
		p.cmd <- i
	}
	for i := 0; i < p.workers; i++ {
		<-p.done
	}
	j := p.job
	j.kind, j.m, j.y, j.x, j.fn = jobNone, nil, nil, nil, nil
	j.ys, j.xs = nil, nil
}

// MulVec computes y = A·x over the team: rows are partitioned nnz-
// balanced, each y[r] is produced by exactly one worker as the same
// serial per-row reduction the scalar loop performs, so the result is
// bit-identical to the serial kernel regardless of worker count.
// Each dispatch also bumps the pool's cumulative kernel counters (see
// Stats) — two atomic adds and a time.Since, no allocation, so the
// accounting rides the hot path for free; a nil pool is unaccounted.
func (p *Pool) MulVec(m *CSR, y, x []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic("spmat: MulVec dimension mismatch")
	}
	if p == nil {
		m.MulVec(y, x)
		return
	}
	start := time.Now()
	if p.serialFor(m) {
		m.MulVec(y, x)
	} else {
		p.rowBounds(m)
		j := p.job
		j.kind, j.m, j.y, j.x = jobMulVec, m, y, x
		p.dispatch()
	}
	p.countKernel(true, m.NNZ(), start)
}

// MulVecs computes ys[b] = A·xs[b] for k column-packed right-hand sides
// in one blocked traversal of the matrix: rows are partitioned with the
// same nnz-balanced bounds as MulVec, and each worker streams its rows'
// stored entries once, advancing all k vectors per entry load. Every
// ys[b][r] is the same serial per-row reduction MulVec performs, so the
// result is bit-identical to k serial MulVec calls regardless of worker
// count or blocking, and race-clean: workers write disjoint row ranges of
// every output vector. Counts k SpMVs over k·nnz entries in Stats.
// ys[b] must not alias xs[c] for any b, c.
func (p *Pool) MulVecs(m *CSR, ys, xs [][]float64) {
	if len(ys) != len(xs) {
		panic("spmat: MulVecs vector count mismatch")
	}
	k := len(xs)
	if k == 0 {
		return
	}
	for b := 0; b < k; b++ {
		if len(xs[b]) != m.cols || len(ys[b]) != m.rows {
			panic("spmat: MulVecs dimension mismatch")
		}
	}
	if p == nil {
		m.mulVecsRange(ys, xs, 0, m.rows)
		return
	}
	start := time.Now()
	if p.serialFor(m) {
		m.mulVecsRange(ys, xs, 0, m.rows)
	} else {
		p.rowBounds(m)
		j := p.job
		j.kind, j.m, j.ys, j.xs = jobMulVecs, m, ys, xs
		p.dispatch()
	}
	p.countKernels(true, k, k*m.NNZ(), start)
}

// VecMuls computes ys[b] = xs[b]·A for k packed left-hand sides — the
// batched Markov power step. Like VecMul, the parallel path gathers over
// the lazily cached transpose via MulVecs (one blocked traversal instead
// of k), while serial pools scatter each vector with the plain kernel.
// Either way the result is bit-identical to k VecMul calls at the same
// worker count; as with VecMul, serial and parallel answers agree to
// rounding, not bitwise.
func (p *Pool) VecMuls(m *CSR, ys, xs [][]float64) {
	if len(ys) != len(xs) {
		panic("spmat: VecMuls vector count mismatch")
	}
	k := len(xs)
	if k == 0 {
		return
	}
	for b := 0; b < k; b++ {
		if len(xs[b]) != m.rows || len(ys[b]) != m.cols {
			panic("spmat: VecMuls dimension mismatch")
		}
	}
	if p == nil || p.serialFor(m) {
		start := time.Now()
		for b := 0; b < k; b++ {
			m.VecMul(ys[b], xs[b])
		}
		p.countKernels(true, k, k*m.NNZ(), start)
		return
	}
	// The delegated transpose product counts itself in MulVecs.
	p.MulVecs(m.T(), ys, xs)
}

// VecMulT computes y = x·A like VecMul, but the parallel gather runs over
// the caller-supplied transpose t instead of A's lazily cached one. The
// refreshable multigrid path needs this: after an in-place value refresh
// of A, a previously materialized cache A.T() would be stale, so the
// solver keeps (and refreshes) its own transpose and passes it here. With
// t equal in value to A's transpose this is numerically identical to
// VecMul at the same worker count.
func (p *Pool) VecMulT(m, t *CSR, y, x []float64) {
	if p == nil || p.serialFor(m) {
		p.VecMul(m, y, x)
		return
	}
	p.MulVec(t, y, x)
}

// VecMul computes y = x·A, the Markov power step η' = η·P. The serial
// kernel scatters along rows; scattering from concurrent rows would race
// on y, so the parallel path instead gathers over the lazily cached
// transpose: (x·A)ⱼ = (Aᵀ·x)ⱼ, a conflict-free row-parallel reduction.
// The first parallel call on a matrix pays one Transpose; every later
// call reuses it. Gather and scatter sum each y[j] in different orders,
// so parallel and serial results agree to rounding (≲1e−15 relative),
// not bitwise; for a fixed worker count results are deterministic.
func (p *Pool) VecMul(m *CSR, y, x []float64) {
	if len(x) != m.rows || len(y) != m.cols {
		panic("spmat: VecMul dimension mismatch")
	}
	if p == nil {
		m.VecMul(y, x)
		return
	}
	if p.serialFor(m) {
		start := time.Now()
		m.VecMul(y, x)
		p.countKernel(true, m.NNZ(), start)
		return
	}
	// The delegated transpose product counts itself in MulVec.
	p.MulVec(m.T(), y, x)
}

// RunRows invokes fn over an nnz-balanced partition of m's rows:
// fn(part, lo, hi) handles rows [lo, hi) as partition member part, with
// part < Workers(). fn must be race-free across row ranges — writes
// confined to its rows plus per-part slots indexed by part (the partial-
// sum pattern for deterministic reductions: accumulate per part, then
// combine serially in part order). Serial pools and matrices below
// ParallelCutoff invoke fn(0, 0, rows) on the calling goroutine; callers
// combining partials must therefore zero all Workers() slots first.
func (p *Pool) RunRows(m *CSR, fn func(part, lo, hi int)) {
	if p == nil {
		fn(0, 0, m.rows)
		return
	}
	start := time.Now()
	if p.serialFor(m) {
		fn(0, 0, m.rows)
	} else {
		p.rowBounds(m)
		j := p.job
		j.kind, j.fn = jobRows, fn
		p.dispatch()
	}
	p.countKernel(false, m.NNZ(), start)
}
