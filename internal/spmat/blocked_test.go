package spmat

import (
	"math/rand"
	"testing"
)

// packVecs builds k random vectors of length n.
func packVecs(rng *rand.Rand, k, n int) [][]float64 {
	vs := make([][]float64, k)
	for b := range vs {
		vs[b] = randomVec(rng, n)
	}
	return vs
}

// blockCounts crosses the register-blocking boundaries of mulVecsRange:
// below, at, and above mulVecsBlock, plus a multi-block tail.
func blockCounts() []int {
	return []int{1, 2, 3, mulVecsBlock - 1, mulVecsBlock, mulVecsBlock + 1, 2*mulVecsBlock + 3}
}

// TestPoolMulVecsBitIdentical is the differential test of the blocked
// SpMM: ys = A·xs over k packed vectors must be bit-identical to k serial
// MulVec calls at every worker count, every block-boundary k, and skewed
// shapes. Run under -race this also proves the dispatch race-clean —
// workers write disjoint row ranges of every output vector.
func TestPoolMulVecsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	defer forceParallel(t)()
	for _, shape := range [][2]int{{1, 1}, {3, 50}, {200, 200}, {613, 401}} {
		m := randomCSR(rng, shape[0], shape[1], 0.05)
		for _, k := range blockCounts() {
			xs := packVecs(rng, k, shape[1])
			want := make([][]float64, k)
			for b := range want {
				want[b] = make([]float64, shape[0])
				m.MulVec(want[b], xs[b])
			}
			for _, w := range workerCounts() {
				pool := NewPool(w)
				got := packVecs(rng, k, shape[0]) // junk contents: kernel must overwrite
				pool.MulVecs(m, got, xs)
				for b := range want {
					for i := range want[b] {
						if want[b][i] != got[b][i] {
							t.Fatalf("%dx%d k=%d workers=%d: ys[%d][%d] = %g, serial %g",
								shape[0], shape[1], k, w, b, i, got[b][i], want[b][i])
						}
					}
				}
				pool.Close()
			}
		}
	}
}

// TestPoolMulVecsNilAndEmpty covers the nil-pool fallback and the k = 0
// no-op.
func TestPoolMulVecsNilAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(rng, 60, 40, 0.1)
	xs := packVecs(rng, 3, 40)
	want := make([]float64, 60)
	var nilPool *Pool
	got := packVecs(rng, 3, 60)
	nilPool.MulVecs(m, got, xs)
	for b := range xs {
		m.MulVec(want, xs[b])
		for i := range want {
			if want[i] != got[b][i] {
				t.Fatalf("nil pool ys[%d][%d] differs", b, i)
			}
		}
	}
	nilPool.MulVecs(m, nil, nil) // k = 0: no-op
	p := NewPool(2)
	defer p.Close()
	p.MulVecs(m, nil, nil)
}

// TestPoolVecMulsMatchesVecMul checks the batched Markov step against k
// individual VecMul calls on the same pool: both sides take the same
// gather-or-scatter path at a given worker count, so the match must be
// exact.
func TestPoolVecMulsMatchesVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	defer forceParallel(t)()
	for _, shape := range [][2]int{{3, 50}, {200, 200}, {401, 613}} {
		m := randomCSR(rng, shape[0], shape[1], 0.05)
		for _, k := range []int{1, 3, mulVecsBlock + 2} {
			xs := packVecs(rng, k, shape[0])
			for _, w := range workerCounts() {
				pool := NewPool(w)
				want := packVecs(rng, k, shape[1])
				for b := range xs {
					pool.VecMul(m, want[b], xs[b])
				}
				got := packVecs(rng, k, shape[1])
				pool.VecMuls(m, got, xs)
				for b := range want {
					for i := range want[b] {
						if want[b][i] != got[b][i] {
							t.Fatalf("%dx%d k=%d workers=%d: ys[%d][%d] differs",
								shape[0], shape[1], k, w, b, i)
						}
					}
				}
				pool.Close()
			}
		}
	}
}

// TestPoolVecMulTMatchesVecMul checks that gathering over a caller-owned
// transpose is bit-identical to VecMul's cached-transpose path at every
// worker count (the two transposes have identical CSR layout, so the
// reductions are the same).
func TestPoolVecMulTMatchesVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	defer forceParallel(t)()
	m := randomCSR(rng, 300, 220, 0.05)
	tr := m.Transpose()
	x := randomVec(rng, 300)
	for _, w := range workerCounts() {
		pool := NewPool(w)
		want := make([]float64, 220)
		pool.VecMul(m, want, x)
		got := make([]float64, 220)
		pool.VecMulT(m, tr, got, x)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d: y[%d] differs", w, i)
			}
		}
		pool.Close()
	}
}

// TestPoolMulVecsAllocFree pins the steady-state allocation count of the
// blocked kernels at zero: after the transpose cache and row bounds are
// warm, neither MulVecs nor VecMuls may allocate, at any block count —
// the accumulators are fixed-size stack arrays and the job struct is
// pooled. This is the alloc-scaling guarantee: cost per point of a sweep
// batch is kernel work only.
func TestPoolMulVecsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	defer forceParallel(t)()
	m := randomCSR(rng, 300, 300, 0.05)
	for _, k := range []int{1, 3, mulVecsBlock, 2*mulVecsBlock + 1} {
		xs := packVecs(rng, k, 300)
		ys := packVecs(rng, k, 300)
		pool := NewPool(2)
		// Warm the transpose cache and row bounds so steady-state is measured.
		pool.MulVecs(m, ys, xs)
		pool.VecMuls(m, ys, xs)
		if n := testing.AllocsPerRun(50, func() { pool.MulVecs(m, ys, xs) }); n != 0 {
			t.Errorf("k=%d: MulVecs allocates %.1f per call", k, n)
		}
		if n := testing.AllocsPerRun(50, func() { pool.VecMuls(m, ys, xs) }); n != 0 {
			t.Errorf("k=%d: VecMuls allocates %.1f per call", k, n)
		}
		pool.Close()
		serial := NewPool(1)
		if n := testing.AllocsPerRun(50, func() { serial.MulVecs(m, ys, xs) }); n != 0 {
			t.Errorf("k=%d: serial MulVecs allocates %.1f per call", k, n)
		}
		serial.Close()
	}
}

// TestPoolMulVecsStats checks the blocked kernel counts k SpMVs over
// k·nnz entries, matching what k serial dispatches would have recorded.
func TestPoolMulVecsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	defer forceParallel(t)()
	m := randomCSR(rng, 200, 200, 0.05)
	k := 5
	xs := packVecs(rng, k, 200)
	ys := packVecs(rng, k, 200)
	pool := NewPool(2)
	defer pool.Close()
	before := pool.Stats()
	pool.MulVecs(m, ys, xs)
	d := pool.Stats().Sub(before)
	if d.SpMVs != int64(k) {
		t.Errorf("SpMVs = %d, want %d", d.SpMVs, k)
	}
	if d.NNZ != int64(k*m.NNZ()) {
		t.Errorf("NNZ = %d, want %d", d.NNZ, k*m.NNZ())
	}
}

// TestSamePattern covers equal patterns, value-only differences (still
// same pattern), and structural differences.
func TestSamePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomCSR(rng, 80, 90, 0.07)
	if !SamePattern(a, a) {
		t.Fatal("matrix does not match its own pattern")
	}
	b := a.Transpose().Transpose() // same pattern, fresh storage
	bv := b.RawValues()
	for i := range bv {
		bv[i] *= 2
	}
	if !SamePattern(a, b) {
		t.Fatal("value-only change reported as pattern change")
	}
	c := randomCSR(rng, 80, 90, 0.07)
	if SamePattern(a, c) {
		t.Fatal("different random patterns reported equal")
	}
	d := randomCSR(rng, 81, 90, 0.07)
	if SamePattern(a, d) {
		t.Fatal("different dimensions reported equal")
	}
	if !SamePattern(nil, nil) || SamePattern(a, nil) || SamePattern(nil, a) {
		t.Fatal("nil handling wrong")
	}
}
