package spmat

import (
	"bytes"
	"strings"
	"testing"
)

func TestPatternDiagonal(t *testing.T) {
	m := Identity(8)
	p := m.Pattern(8, 8)
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines", len(lines))
	}
	for i, l := range lines {
		for j, ch := range l {
			want := byte('.')
			if i == j {
				want = '#'
			}
			if byte(ch) != want {
				t.Fatalf("cell (%d,%d) = %c, want %c", i, j, ch, want)
			}
		}
	}
}

func TestPatternCoarsening(t *testing.T) {
	// 100x100 diagonal coarsened to 10x10 must still be diagonal.
	m := Identity(100)
	p := m.Pattern(10, 10)
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	for i, l := range lines {
		if l[i] != '#' {
			t.Fatalf("row %d: diagonal cell missing: %q", i, l)
		}
		if strings.Count(l, "#") != 1 {
			t.Fatalf("row %d has off-diagonal marks: %q", i, l)
		}
	}
}

func TestPatternClampsToDims(t *testing.T) {
	m := Identity(3)
	p := m.Pattern(100, 100) // larger than matrix: clamp to 3x3
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	if len(lines) != 3 || len(lines[0]) != 3 {
		t.Fatalf("pattern not clamped: %dx%d", len(lines), len(lines[0]))
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	m := Identity(4)
	if err := m.WritePGM(&buf, 4, 4); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P2\n4 4\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:20])
	}
	if strings.Count(s, "0") < 4 {
		t.Error("expected 4 black pixels")
	}
	if err := m.WritePGM(&buf, 0, 4); err == nil {
		t.Error("zero width accepted")
	}
}

func TestWriteMatrixMarket(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 1, 0.5)
	tr.Add(0, 0, 0.5)
	tr.Add(1, 0, 1)
	var buf bytes.Buffer
	if err := tr.ToCSR().WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	want := "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 0.5\n1 2 0.5\n2 1 1\n"
	if buf.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestBandwidth(t *testing.T) {
	tr := NewTriplet(5, 5)
	tr.Add(0, 0, 1)
	tr.Add(1, 3, 1)
	tr.Add(4, 1, 1)
	if bw := tr.ToCSR().Bandwidth(); bw != 3 {
		t.Fatalf("bandwidth = %d, want 3", bw)
	}
	if bw := Identity(4).Bandwidth(); bw != 0 {
		t.Fatalf("identity bandwidth = %d", bw)
	}
}
