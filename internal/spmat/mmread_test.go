package spmat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := NewTriplet(7, 5)
	for k := 0; k < 20; k++ {
		tr.Add(rng.Intn(7), rng.Intn(5), rng.NormFloat64())
	}
	orig := tr.ToCSR()
	var buf bytes.Buffer
	if err := orig.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, c := back.Dims()
	if r != 7 || c != 5 {
		t.Fatalf("dims %dx%d", r, c)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			if orig.At(i, j) != back.At(i, j) {
				t.Fatalf("(%d,%d): %g vs %g", i, j, orig.At(i, j), back.At(i, j))
			}
		}
	}
}

func TestReadMatrixMarketComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
2 2 2
1 1 0.5
2 2 1.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0.5 || m.At(1, 1) != 1.5 {
		t.Fatal("values wrong")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate real general\n0 2 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n", // entry count short
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n", // garbage entry
		"%%MatrixMarket matrix coordinate real general\nnot a size line\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
