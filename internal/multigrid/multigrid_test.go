package multigrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdrstoch/internal/lump"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/spmat"
)

// randomWalkChain builds a birth–death chain on n states with reflecting
// boundaries and a drift — a 1-D caricature of the phase-error dynamics,
// on which pair coarsening is the natural hierarchy.
func randomWalkChain(n int, up, down float64) *spmat.CSR {
	stay := 1 - up - down
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		switch {
		case i == 0:
			tr.Add(0, 0, stay+down)
			tr.Add(0, 1, up)
		case i == n-1:
			tr.Add(n-1, n-1, stay+up)
			tr.Add(n-1, n-2, down)
		default:
			tr.Add(i, i-1, down)
			tr.Add(i, i, stay)
			tr.Add(i, i+1, up)
		}
	}
	return tr.ToCSR()
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewValidation(t *testing.T) {
	p := randomWalkChain(8, 0.3, 0.2)
	// Partition over wrong size.
	bad, _ := lump.PairsWithinSegments(3, 2)
	if _, err := New(p, []*lump.Partition{bad}, Config{}); err == nil {
		t.Error("size-mismatched partition accepted")
	}
	// Non-coarsening partition (identity).
	id := make([]int, 8)
	for i := range id {
		id[i] = i
	}
	pid, _ := lump.NewPartition(id)
	if _, err := New(p, []*lump.Partition{pid}, Config{}); err == nil {
		t.Error("identity partition accepted")
	}
	// Non-square matrix.
	tr := spmat.NewTriplet(2, 3)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 1)
	if _, err := New(tr.ToCSR(), nil, Config{}); err == nil {
		t.Error("non-square accepted")
	}
}

func TestBuildPairHierarchy(t *testing.T) {
	parts, err := BuildPairHierarchy(16, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 16 -> 8 -> 4 -> 2: three partitions.
	if len(parts) != 3 {
		t.Fatalf("levels = %d, want 3", len(parts))
	}
	sizes := []int{16 * 3, 8 * 3, 4 * 3, 2 * 3}
	for k, part := range parts {
		if part.NumStates() != sizes[k] || part.NumBlocks() != sizes[k+1] {
			t.Fatalf("level %d: %d -> %d", k, part.NumStates(), part.NumBlocks())
		}
	}
	if _, err := BuildPairHierarchy(0, 1, 1); err == nil {
		t.Error("bad layout accepted")
	}
}

func TestBuildPairHierarchyOddLengths(t *testing.T) {
	parts, err := BuildPairHierarchy(7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 7 -> 4 -> 2 -> 1.
	want := []int{14, 8, 4, 2}
	if len(parts) != 3 {
		t.Fatalf("levels = %d", len(parts))
	}
	for k, part := range parts {
		if part.NumStates() != want[k] || part.NumBlocks() != want[k+1] {
			t.Fatalf("level %d: %d -> %d", k, part.NumStates(), part.NumBlocks())
		}
	}
}

func TestSolveMatchesGTHOnRandomWalk(t *testing.T) {
	n := 64
	p := randomWalkChain(n, 0.3, 0.25)
	parts, err := BuildPairHierarchy(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, parts, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %v", res)
	}
	ref, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Pi, ref); d > 1e-10 {
		t.Fatalf("multigrid off by %g", d)
	}
}

func TestSolveWCycle(t *testing.T) {
	n := 32
	p := randomWalkChain(n, 0.4, 0.1)
	parts, _ := BuildPairHierarchy(n, 1, 2)
	s, err := New(p, parts, Config{Tol: 1e-12, Cycle: WCycle})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil || !res.Converged {
		t.Fatalf("W-cycle failed: %v %v", err, res)
	}
	ref, _ := spmat.StationaryGTHCSR(p)
	if d := maxAbsDiff(res.Pi, ref); d > 1e-10 {
		t.Fatalf("W-cycle off by %g", d)
	}
}

func TestSolveSegmentedChain(t *testing.T) {
	// Two independent 8-state random walks glued as a product-like block
	// structure: segments of length 8 with rare inter-segment hops.
	segLen, segs := 8, 3
	n := segLen * segs
	tr := spmat.NewTriplet(n, n)
	hop := 0.01
	for s := 0; s < segs; s++ {
		base := s * segLen
		for i := 0; i < segLen; i++ {
			idx := base + i
			rem := 1.0 - hop
			if i > 0 {
				tr.Add(idx, idx-1, 0.3*rem)
			} else {
				tr.Add(idx, idx, 0.3*rem)
			}
			if i < segLen-1 {
				tr.Add(idx, idx+1, 0.3*rem)
			} else {
				tr.Add(idx, idx, 0.3*rem)
			}
			tr.Add(idx, idx, 0.4*rem)
			tr.Add(idx, ((s+1)%segs)*segLen+i, hop)
		}
	}
	p := tr.ToCSR()
	parts, err := BuildPairHierarchy(segLen, segs, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, parts, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil || !res.Converged {
		t.Fatalf("segmented solve failed: %v %v", err, res)
	}
	ref, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Pi, ref); d > 1e-9 {
		t.Fatalf("segmented multigrid off by %g", d)
	}
}

func TestMultigridBeatsPowerIterationInIterations(t *testing.T) {
	// Slow-mixing chain: weak drift random walk; power iteration needs many
	// sweeps, multigrid few cycles. Each cycle costs a handful of sweeps
	// per level, so compare against cycles × (smoothing per cycle × levels).
	n := 256
	p := randomWalkChain(n, 0.26, 0.25)
	parts, _ := BuildPairHierarchy(n, 1, 4)
	s, err := New(p, parts, Config{Tol: 1e-10, Cycle: WCycle, PreSmooth: 2, PostSmooth: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := s.Solve(nil)
	if err != nil || !mg.Converged {
		t.Fatalf("mg: %v %v", err, mg)
	}
	ch, err := markov.New(p)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := ch.StationaryPower(markov.Options{Tol: 1e-10, MaxIter: 2000000, Damping: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// A W-cycle on L levels with halving sizes and 4 sweeps per level costs
	// roughly 4·L fine-sweep equivalents; grant a generous 8·L and still
	// demand an order-of-magnitude win over plain power iteration.
	mgWork := mg.Cycles * 8 * len(mg.LevelSizes)
	if !pw.Converged || pw.Iterations < 10*mgWork {
		t.Fatalf("expected clear multigrid win: mg cycles=%d (≈%d sweep-equivalents), power iters=%d (converged=%v)",
			mg.Cycles, mgWork, pw.Iterations, pw.Converged)
	}
}

func TestSolveX0Validation(t *testing.T) {
	p := randomWalkChain(8, 0.3, 0.2)
	parts, _ := BuildPairHierarchy(8, 1, 2)
	s, err := New(p, parts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve([]float64{1, 2}); err == nil {
		t.Error("bad x0 length accepted")
	}
	if _, err := s.Solve(make([]float64, 8)); err == nil {
		t.Error("zero x0 accepted")
	}
	if _, err := s.Solve([]float64{-1, 2, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("negative x0 accepted")
	}
}

func TestLevelSizes(t *testing.T) {
	p := randomWalkChain(16, 0.3, 0.2)
	parts, _ := BuildPairHierarchy(16, 1, 2)
	s, err := New(p, parts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := s.LevelSizes()
	want := []int{16, 8, 4, 2}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestResidualHistoryMonotoneOverall(t *testing.T) {
	p := randomWalkChain(64, 0.3, 0.2)
	parts, _ := BuildPairHierarchy(64, 1, 4)
	s, _ := New(p, parts, Config{Tol: 1e-12})
	res, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ResidualHistory) != res.Cycles {
		t.Fatalf("history length %d, cycles %d", len(res.ResidualHistory), res.Cycles)
	}
	first, last := res.ResidualHistory[0], res.ResidualHistory[len(res.ResidualHistory)-1]
	if last >= first {
		t.Fatalf("residual did not decrease: %g -> %g", first, last)
	}
}

// Property: on random segmented chains, multigrid converges to a fixed
// point of P within tolerance.
func TestQuickMultigridFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		segLen := 4 * (1 + rng.Intn(3)) // 4, 8, 12
		segs := 1 + rng.Intn(3)
		n := segLen * segs
		tr := spmat.NewTriplet(n, n)
		for i := 0; i < n; i++ {
			// Local random walk plus a small uniform background keeps the
			// chain irreducible and aperiodic.
			bg := 0.02
			for j := 0; j < n; j++ {
				tr.Add(i, j, bg/float64(n))
			}
			left := i - 1
			if left < 0 {
				left = i
			}
			right := i + 1
			if right >= n {
				right = i
			}
			u := 0.2 + 0.3*rng.Float64()
			tr.Add(i, left, (1-bg)*u)
			tr.Add(i, right, (1-bg)*(1-u))
		}
		p := tr.ToCSR()
		parts, err := BuildPairHierarchy(segLen, segs, 2)
		if err != nil {
			return false
		}
		s, err := New(p, parts, Config{Tol: 1e-11, MaxCycles: 500})
		if err != nil {
			return false
		}
		res, err := s.Solve(nil)
		if err != nil || !res.Converged {
			return false
		}
		sum := 0.0
		for _, v := range res.Pi {
			if v < -1e-15 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
