// Package multigrid implements the multi-level aggregation solver for
// stationary distributions of large Markov chains, in the style of
// Horton & Leutenegger (the method the paper employs): a hierarchy of
// recursively lumped chains, iterate-weighted aggregation and
// disaggregation between levels, simple (damped) power/Gauss–Jacobi
// smoothing interleaved with the lumping and expanding steps, and an
// exact direct solve (subtraction-free GTH) at the coarsest level.
//
// The coarsening strategy is supplied by the caller as a chain of
// partitions; for the CDR model, each partition lumps pairs of consecutive
// discretized phase-error values within every (data state, filter state)
// segment, so coarse problems "resemble the original problem but with
// coarser phase error discretization".
package multigrid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"cdrstoch/internal/faults"
	"cdrstoch/internal/lump"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

// CycleKind selects the recursion pattern between levels.
type CycleKind int

// Supported cycle kinds.
const (
	// VCycle visits each coarse level once per cycle.
	VCycle CycleKind = iota
	// WCycle visits each coarse level twice per cycle, trading work for
	// stronger coarse-grid correction.
	WCycle
)

// Config tunes the multilevel solver.
type Config struct {
	// PreSmooth is the number of damped power (Gauss–Jacobi) sweeps before
	// descending to the coarse level. Default 1.
	PreSmooth int
	// PostSmooth is the number of sweeps after the coarse-grid correction.
	// Default 1.
	PostSmooth int
	// Damping is the smoother's relaxation factor ω (Gauss–Seidel when 1,
	// under-relaxed below 1). Default 0.9, robust on nearly periodic
	// chains.
	Damping float64
	// Tol is the convergence threshold on ‖xP − x‖₁. Default 1e-12.
	Tol float64
	// MaxCycles bounds the number of multilevel cycles. Default 200.
	MaxCycles int
	// Cycle selects V- or W-cycles. Default VCycle.
	Cycle CycleKind
	// CoarsestMaxIter bounds the fallback iterative solve when the direct
	// coarsest solve fails (e.g. the weighted coarse chain is reducible).
	// Default 500.
	CoarsestMaxIter int
	// Trace receives a span around the solve, one "iter" event per cycle
	// with the fine-level residual, and one "level" event per level visit
	// (smoothing or coarsest solve) within each cycle. Nil disables
	// tracing at zero cost.
	Trace obs.Tracer
	// Ctx, when non-nil, is checked at every cycle boundary: a canceled or
	// expired context stops the solve within one cycle and Solve returns a
	// partial-progress error wrapping ctx.Err(). Nil never cancels.
	Ctx context.Context
	// Workers is the width of the parallel team used for the sparse
	// products the cycle performs (the per-cycle residual on the finest
	// level). 0 selects runtime.GOMAXPROCS, 1 forces serial; matrices
	// below spmat.ParallelCutoff run serially regardless. The smoothing
	// sweeps are Gauss–Seidel and therefore inherently sequential; they
	// are not parallelized. Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, supplies an externally owned worker team (the
	// service path shares pooled teams across requests so concurrent
	// solves do not oversubscribe the machine). The solver never closes
	// a caller-supplied pool.
	Pool *spmat.Pool
	// Faults arms the multigrid.cycle injection point, hit at every cycle
	// boundary alongside the Ctx check. Nil (the default) disables
	// injection at the cost of one branch per cycle.
	Faults *faults.Injector
	// Refreshable prepares the solver for in-place value refreshes of the
	// finest matrix (RefreshFine): level 0 keeps a solver-owned transpose
	// with a refresh permutation instead of sharing the matrix's lazily
	// cached one, and the per-cycle residual gathers over that owned
	// transpose. A one-shot solver leaves this false and shares the cache.
	Refreshable bool
}

func (c Config) withDefaults() Config {
	// Stamp the request's trace identity (when Ctx carries one) onto every
	// span, iter, and level event the cycle emits.
	c.Trace = obs.StampFromContext(c.Ctx, c.Trace)
	if c.PreSmooth <= 0 {
		c.PreSmooth = 1
	}
	if c.PostSmooth <= 0 {
		c.PostSmooth = 1
	}
	if c.Damping <= 0 || c.Damping > 1 {
		c.Damping = 0.9
	}
	if c.Tol <= 0 {
		c.Tol = 1e-12
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 200
	}
	if c.CoarsestMaxIter <= 0 {
		c.CoarsestMaxIter = 500
	}
	return c
}

// Result reports a multilevel solve.
type Result struct {
	// Pi is the computed stationary distribution.
	Pi []float64
	// Cycles is the number of multilevel cycles performed.
	Cycles int
	// Residual is the final ‖πP − π‖₁.
	Residual float64
	// Converged reports whether Residual ≤ Tol.
	Converged bool
	// LevelSizes lists the state-space size of every level, finest first.
	LevelSizes []int
	// ResidualHistory records the residual after each cycle.
	ResidualHistory []float64
	// LevelStats attributes the solve's work per level, finest first:
	// visit counts across all cycles and wall time inside the level's
	// smoother (or coarsest direct solve).
	LevelStats []LevelStat
}

// LevelStat is the per-level work record of one solve.
type LevelStat struct {
	// Level is the hierarchy depth, 0 = finest.
	Level int `json:"level"`
	// Size is the level's state count.
	Size int `json:"size"`
	// Visits counts how often the cycle entered the level.
	Visits int `json:"visits"`
	// SmoothNS is wall time in the level's smoothing (finest/middle) or
	// direct GTH solve (coarsest).
	SmoothNS int64 `json:"smooth_ns"`
}

func (r Result) String() string {
	return fmt.Sprintf("cycles=%d residual=%.3e converged=%v levels=%v",
		r.Cycles, r.Residual, r.Converged, r.LevelSizes)
}

// mgLevel is the per-level workspace of the hierarchy: the level's matrix,
// its transpose (refreshed in place on coarse levels, whose values change
// every cycle), the lumping plan down to the next level, and the coarse
// iterate buffer. Everything is allocated once in New so the cycles run
// allocation-free.
type mgLevel struct {
	p    *spmat.CSR // level matrix; level 0 is the caller's, others are plan-owned
	pt   *spmat.CSR // transpose of p, used by the Gauss–Seidel smoother
	perm []int      // p→pt value permutation for in-place refresh; nil at level 0
	plan *lump.Plan // lumping onto the next level; nil at the coarsest
	xc   []float64  // coarse iterate buffer; nil at the coarsest
}

// Solver is a configured multilevel hierarchy for one transition matrix.
type Solver struct {
	p        *spmat.CSR
	parts    []*lump.Partition
	cfg      Config
	levels   []*mgLevel
	gth      spmat.GTHWorkspace
	pool     *spmat.Pool
	curCycle int // cycle number stamped on level-visit trace events

	// rawTrace is the caller's tracer before trace-identity stamping, kept
	// so SetSolveContext can restamp per-solve contexts on a reused solver.
	rawTrace obs.Tracer

	// Per-level work attribution, preallocated in New and reset per
	// Solve so the cycles stay allocation-free.
	levelVisits []int
	levelWorkNS []int64

	// resBufs holds the product buffers of Residuals, grown on demand and
	// reused across calls.
	resBufs [][]float64
}

// New validates the partition chain against the matrix and returns a
// solver. parts[k] must partition the state space of level k (level 0 is
// p itself; level k+1 has parts[k].NumBlocks() states). An empty partition
// chain degenerates to a smoothed direct solve and is rejected for
// matrices beyond the coarsest size; supply at least one level for real
// problems.
//
// New builds the whole hierarchy structurally — coarse patterns, lumping
// plans, transposes and iterate buffers — so that Solve's cycles only
// rewrite values in place: after New, a cycle performs no heap allocation.
func New(p *spmat.CSR, parts []*lump.Partition, cfg Config) (*Solver, error) {
	n, m := p.Dims()
	if n != m {
		return nil, errors.New("multigrid: TPM must be square")
	}
	size := n
	for k, part := range parts {
		if part.NumStates() != size {
			return nil, fmt.Errorf("multigrid: partition %d covers %d states, level has %d",
				k, part.NumStates(), size)
		}
		if part.NumBlocks() >= size {
			return nil, fmt.Errorf("multigrid: partition %d does not coarsen (%d -> %d)",
				k, size, part.NumBlocks())
		}
		size = part.NumBlocks()
	}
	rawTrace := cfg.Trace
	cfg = cfg.withDefaults()
	s := &Solver{p: p, parts: parts, cfg: cfg, pool: cfg.Pool, rawTrace: rawTrace}
	if s.pool == nil {
		s.pool = spmat.NewPool(cfg.Workers)
	}
	cur := p
	s.levels = make([]*mgLevel, len(parts)+1)
	for k := range s.levels {
		lv := &mgLevel{p: cur}
		if k == 0 && !cfg.Refreshable {
			// The finest matrix's values never change; share the chain-owned
			// cached transpose.
			lv.pt = cur.T()
		} else {
			lv.pt, lv.perm = cur.TransposeWithPerm()
		}
		if k < len(parts) {
			plan, err := lump.NewPlan(cur, parts[k])
			if err != nil {
				return nil, fmt.Errorf("multigrid: level %d: %w", k, err)
			}
			lv.plan = plan
			lv.xc = make([]float64, parts[k].NumBlocks())
			cur = plan.Coarse()
		}
		s.levels[k] = lv
	}
	s.levelVisits = make([]int, len(s.levels))
	s.levelWorkNS = make([]int64, len(s.levels))
	return s, nil
}

// LevelSizes returns the state count of every level, finest first.
func (s *Solver) LevelSizes() []int {
	sizes := []int{dimOf(s.p)}
	for _, part := range s.parts {
		sizes = append(sizes, part.NumBlocks())
	}
	return sizes
}

func dimOf(p *spmat.CSR) int {
	n, _ := p.Dims()
	return n
}

// smooth performs steps relaxed Gauss–Seidel sweeps on (I − Pᵀ)x = 0,
// x_i ← (1−ω)x_i + ω·Σ_{j≠i} P_ji x_j / (1 − P_ii), keeping x normalized.
// Gauss–Seidel damps the within-aggregate (high-frequency) error far more
// effectively than power iteration, which is what the aggregation cycle
// relies on: the coarse correction fixes block masses, the smoother fixes
// the shape inside blocks. pt is Pᵀ in CSR form.
func (s *Solver) smooth(pt *spmat.CSR, x []float64, steps int) {
	omega := s.cfg.Damping
	n := len(x)
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			cols, vals := pt.Row(i)
			sum, diag := 0.0, 0.0
			for k, j := range cols {
				if j == i {
					diag = vals[k]
				} else {
					sum += vals[k] * x[j]
				}
			}
			if 1-diag < 1e-14 {
				continue // absorbing-in-isolation state: leave mass as is
			}
			gs := sum / (1 - diag)
			x[i] = (1-omega)*x[i] + omega*gs
		}
		norm := 0.0
		for _, v := range x {
			norm += v
		}
		if norm > 0 {
			inv := 1 / norm
			for i := range x {
				x[i] *= inv
			}
		}
	}
}

// coarsestSolve solves the stationary distribution of a small chain
// exactly with GTH (through the reusable dense workspace), falling back to
// Gauss–Seidel sweeps when the weighted coarse chain is numerically
// reducible. The result is written into x.
func (s *Solver) coarsestSolve(lv *mgLevel, x []float64) []float64 {
	pi, err := s.gth.StationaryCSR(lv.p)
	if err == nil {
		copy(x, pi)
		return x
	}
	s.smooth(lv.pt, x, s.cfg.CoarsestMaxIter)
	return x
}

// cycle runs one multilevel cycle at the given level and returns the
// improved iterate. All buffers — coarse matrices, transposes, iterate
// vectors — live in the per-level workspaces; a cycle allocates nothing.
func (s *Solver) cycle(level int, x []float64) ([]float64, error) {
	lv := s.levels[level]
	obs.LevelEvent(s.cfg.Trace, "multigrid", s.curCycle, level, dimOf(lv.p))
	s.levelVisits[level]++
	if level == len(s.parts) {
		start := time.Now()
		x = s.coarsestSolve(lv, x)
		s.levelWorkNS[level] += time.Since(start).Nanoseconds()
		return x, nil
	}
	start := time.Now()
	s.smooth(lv.pt, x, s.cfg.PreSmooth)
	s.levelWorkNS[level] += time.Since(start).Nanoseconds()

	if err := lv.plan.Update(x); err != nil {
		return nil, fmt.Errorf("multigrid: level %d: %w", level, err)
	}
	next := s.levels[level+1]
	next.p.RefreshTranspose(next.pt, next.perm)
	part := s.parts[level]
	xc := part.Restrict(lv.xc, x)
	visits := 1
	if s.cfg.Cycle == WCycle {
		visits = 2
	}
	var err error
	for v := 0; v < visits; v++ {
		xc, err = s.cycle(level+1, xc)
		if err != nil {
			return nil, err
		}
	}
	x = part.Prolong(x, xc, lv.plan.Weights())
	start = time.Now()
	s.smooth(lv.pt, x, s.cfg.PostSmooth)
	s.levelWorkNS[level] += time.Since(start).Nanoseconds()
	return x, nil
}

// levelStats snapshots the per-level attribution accumulated since the
// last reset, finest first.
func (s *Solver) levelStats() []LevelStat {
	sizes := s.LevelSizes()
	stats := make([]LevelStat, len(s.levels))
	for k := range s.levels {
		stats[k] = LevelStat{Level: k, Size: sizes[k], Visits: s.levelVisits[k], SmoothNS: s.levelWorkNS[k]}
	}
	return stats
}

// workspaceBytes estimates the hierarchy's heap footprint beyond the
// caller's finest matrix: coarse matrices, transposes, and iterate
// buffers.
func (s *Solver) workspaceBytes() int64 {
	var b int64
	for k, lv := range s.levels {
		if k > 0 {
			b += lv.p.MemoryBytes()
		}
		b += lv.pt.MemoryBytes()
		b += int64(len(lv.perm))*8 + int64(len(lv.xc))*8
	}
	return b
}

// Solve runs multilevel cycles from x0 (uniform when nil) until the
// residual criterion is met or MaxCycles is exhausted.
func (s *Solver) Solve(x0 []float64) (Result, error) {
	n := dimOf(s.p)
	x := make([]float64, n)
	if x0 == nil {
		for i := range x {
			x[i] = 1 / float64(n)
		}
	} else {
		if len(x0) != n {
			return Result{}, fmt.Errorf("multigrid: x0 length %d, want %d", len(x0), n)
		}
		copy(x, x0)
		sum := 0.0
		for _, v := range x {
			if v < 0 {
				return Result{}, errors.New("multigrid: negative initial mass")
			}
			sum += v
		}
		if sum <= 0 {
			return Result{}, errors.New("multigrid: zero initial mass")
		}
		for i := range x {
			x[i] /= sum
		}
	}

	res := Result{
		LevelSizes:      s.LevelSizes(),
		ResidualHistory: make([]float64, 0, s.cfg.MaxCycles),
	}
	y := make([]float64, n)
	var err error
	endSpan := obs.StartSpan(s.cfg.Trace, "multigrid")
	defer endSpan()
	// Cost accounting: one meter lookup per solve, never per cycle. The
	// deferred attribution also covers the error returns, so a canceled
	// or faulted solve still reports the work it did.
	for k := range s.levels {
		s.levelVisits[k], s.levelWorkNS[k] = 0, 0
	}
	meter := cost.FromContext(s.cfg.Ctx)
	if meter != nil {
		stats0 := s.pool.Stats()
		meter.SampleGoroutines()
		defer func() {
			meter.AddCycles(int64(res.Cycles))
			meter.AddPoolDelta(stats0, s.pool.Stats())
			meter.AddWorkspaceBytes(s.workspaceBytes())
			stats := s.levelStats()
			lc := make([]cost.LevelCost, len(stats))
			for i, st := range stats {
				lc[i] = cost.LevelCost{Level: st.Level, Size: st.Size, Visits: st.Visits, SmoothNS: st.SmoothNS}
			}
			meter.SetLevels(lc)
			meter.SampleGoroutines()
		}()
	}
	for c := 1; c <= s.cfg.MaxCycles; c++ {
		if s.cfg.Ctx != nil {
			if cerr := s.cfg.Ctx.Err(); cerr != nil {
				return Result{}, fmt.Errorf("multigrid: solve stopped after %d of %d cycles (residual %.3e): %w",
					res.Cycles, s.cfg.MaxCycles, res.Residual, cerr)
			}
		}
		if ferr := s.cfg.Faults.FireCtx(s.cfg.Ctx, "multigrid.cycle"); ferr != nil {
			return Result{}, fmt.Errorf("multigrid: solve stopped after %d of %d cycles (residual %.3e): %w",
				res.Cycles, s.cfg.MaxCycles, res.Residual, ferr)
		}
		s.curCycle = c
		x, err = s.cycle(0, x)
		if err != nil {
			return Result{}, err
		}
		// Gather over the level-0 transpose: in the default mode that is the
		// matrix's shared cache (same object VecMul would use), in
		// refreshable mode the solver-owned, value-current copy.
		s.pool.VecMulT(s.p, s.levels[0].pt, y, x)
		r := 0.0
		for i := range x {
			r += math.Abs(y[i] - x[i])
		}
		res.Cycles = c
		res.Residual = r
		res.ResidualHistory = append(res.ResidualHistory, r)
		obs.IterEvent(s.cfg.Trace, "multigrid", c, r)
		meter.AddResidual(r)
		if r <= s.cfg.Tol {
			res.Converged = true
			break
		}
	}
	res.Pi = x
	res.LevelStats = s.levelStats()
	return res, nil
}

// RefreshFine rewrites the finest level's values in place from src, which
// must have the identical sparsity pattern (the sweep engine checks with
// spmat.SamePattern before calling; this only validates dimensions). The
// level-0 transpose is refreshed through its permutation; coarse levels
// need nothing — their values are recomputed from the fine iterate every
// cycle anyway. Requires Config.Refreshable.
func (s *Solver) RefreshFine(src *spmat.CSR) error {
	if !s.cfg.Refreshable {
		return errors.New("multigrid: RefreshFine on a non-refreshable solver")
	}
	dst := s.p.RawValues()
	vals := src.RawValues()
	if len(vals) != len(dst) {
		return fmt.Errorf("multigrid: RefreshFine value count %d, want %d", len(vals), len(dst))
	}
	copy(dst, vals)
	lv := s.levels[0]
	s.p.RefreshTranspose(lv.pt, lv.perm)
	return nil
}

// SetCycle switches the recursion pattern for subsequent Solve calls. The
// hierarchy is cycle-kind independent, so flipping between the robust
// W-cycle (cold starts) and the cheaper V-cycle (warm-started continuation
// points) on a reused solver is safe at any quiescent point.
func (s *Solver) SetCycle(k CycleKind) { s.cfg.Cycle = k }

// SetSolveContext rebinds the context consulted at every cycle boundary —
// cancellation, cost metering, fault injection — and restamps the trace
// identity, so one long-lived solver can serve a sequence of per-request
// solves. Call between Solves, never during one.
func (s *Solver) SetSolveContext(ctx context.Context) {
	s.cfg.Ctx = ctx
	s.cfg.Trace = obs.StampFromContext(ctx, s.rawTrace)
}

// Residuals evaluates ‖xP − x‖₁ for several candidate vectors in one
// blocked traversal of the fine matrix (Pool.MulVecs over the level-0
// transpose) — the sweep engine's seed selection: score the previous
// point's solution, an extrapolation, and the uniform vector together,
// then warm-start from the best. Candidates must be normalized
// distributions of the fine dimension.
func (s *Solver) Residuals(xs [][]float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	n := dimOf(s.p)
	for len(s.resBufs) < len(xs) {
		s.resBufs = append(s.resBufs, make([]float64, n))
	}
	ys := s.resBufs[:len(xs)]
	s.pool.MulVecs(s.levels[0].pt, ys, xs)
	out := make([]float64, len(xs))
	for b := range xs {
		r := 0.0
		for i := range xs[b] {
			r += math.Abs(ys[b][i] - xs[b][i])
		}
		out[b] = r
	}
	return out
}

// BuildPairHierarchy constructs the partition chain for a state space laid
// out as `segments` contiguous segments of `segLen` entries each (in the
// CDR model: one segment per (data, filter) state pair, phase index
// fastest). Each level pairs consecutive entries within every segment
// until the segment length drops to at most minSegLen. It returns the
// partitions, finest first.
func BuildPairHierarchy(segLen, segments, minSegLen int) ([]*lump.Partition, error) {
	if segLen <= 0 || segments <= 0 {
		return nil, fmt.Errorf("multigrid: bad layout %dx%d", segLen, segments)
	}
	if minSegLen < 1 {
		minSegLen = 1
	}
	var parts []*lump.Partition
	cur := segLen
	for cur > minSegLen {
		part, err := lump.PairsWithinSegments(cur, segments)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		cur = (cur + 1) / 2
	}
	return parts, nil
}
