package multigrid

import (
	"runtime"
	"testing"

	"cdrstoch/internal/spmat"
)

// forceParallel drops the serial-fallback cutoff so the small test
// hierarchies exercise the parallel kernels, restoring it afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	old := spmat.ParallelCutoff
	spmat.ParallelCutoff = 0
	t.Cleanup(func() { spmat.ParallelCutoff = old })
}

// Multigrid only parallelizes the residual products; smoothing is the
// sequential Gauss–Seidel sweep at every width. Results must therefore
// agree between serial and any team width to well below the tolerance.
func TestSolveWorkersMatchSerial(t *testing.T) {
	forceParallel(t)
	n := 64
	p := randomWalkChain(n, 0.3, 0.25)
	parts, err := BuildPairHierarchy(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) []float64 {
		t.Helper()
		s, err := New(p, parts, Config{Tol: 1e-13, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(nil)
		if err != nil || !res.Converged {
			t.Fatalf("workers=%d: %v %v", workers, err, res)
		}
		return res.Pi
	}
	serial := solve(1)
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		if d := maxAbsDiff(solve(w), serial); d > 1e-12 {
			t.Errorf("workers=%d differs from serial by %g", w, d)
		}
	}
}

// A caller-supplied pool must be used as-is and never closed by the solver.
func TestSolverSharedPoolSurvives(t *testing.T) {
	forceParallel(t)
	pool := spmat.NewPool(2)
	defer pool.Close()
	n := 32
	p := randomWalkChain(n, 0.4, 0.1)
	parts, _ := BuildPairHierarchy(n, 1, 2)
	for trial := 0; trial < 3; trial++ {
		s, err := New(p, parts, Config{Tol: 1e-12, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if res, err := s.Solve(nil); err != nil || !res.Converged {
			t.Fatalf("trial %d: %v %v", trial, err, res)
		}
	}
	// The pool must still dispatch after the solvers are gone.
	y := make([]float64, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	pool.MulVec(p, y, x)
}

// After the first cycle warms the hierarchy, further cycles must not
// allocate: the structural plans, transposes and coarse iterates are all
// preallocated by New.
func TestCycleAllocsDoNotScaleWithCycles(t *testing.T) {
	n := 64
	p := randomWalkChain(n, 0.26, 0.25)
	parts, err := BuildPairHierarchy(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(cycles int) float64 {
		return testing.AllocsPerRun(10, func() {
			s, err := New(p, parts, Config{Tol: 1e-300, MaxCycles: cycles, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Solve(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(2)
	long := measure(20)
	// Setup dominates; the 18 extra cycles may not add allocations.
	if long > short {
		t.Errorf("allocs grew with cycle count: %v (2 cycles) -> %v (20 cycles)", short, long)
	}
}
