package multigrid

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/kron"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

func randomStochasticFactor(n int, rng *rand.Rand) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			s += row[j]
		}
		for j := range row {
			tr.Add(i, j, row[j]/s)
		}
	}
	return tr.ToCSR()
}

// kronTestDescriptor builds a two-term stochastic mixture over a
// CDR-shaped component layout (two small outer modes, a wide innermost
// phase mode).
func kronTestDescriptor(t *testing.T, seed int64, phase int) *kron.Descriptor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func() []*spmat.CSR {
		return []*spmat.CSR{
			randomStochasticFactor(2, rng),
			randomStochasticFactor(3, rng),
			randomStochasticFactor(phase, rng),
		}
	}
	d, err := kron.NewDescriptor([]kron.Term{
		{Coeff: 0.4, Factors: mk()},
		{Coeff: 0.6, Factors: mk()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKronSolverMatchesDirect(t *testing.T) {
	d := kronTestDescriptor(t, 21, 16)
	ref, err := spmat.StationaryGTHCSR(d.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	segs := d.Dim() / 16
	// Two pairings in the implicit restriction (phase 16 → 4), then the
	// explicit hierarchy pairs down to 2.
	parts, err := BuildPairHierarchy(4, segs, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewKron(d, 2, parts, Config{Tol: 1e-13, Cycle: WCycle})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %v", res)
	}
	for i := range ref {
		if math.Abs(res.Pi[i]-ref[i]) > 1e-12 {
			t.Fatalf("pi[%d] = %g, want %g (diff %g)", i, res.Pi[i], ref[i], res.Pi[i]-ref[i])
		}
	}
	if len(res.LevelSizes) < 2 || res.LevelSizes[0] != d.Dim() {
		t.Fatalf("level sizes %v", res.LevelSizes)
	}
}

func TestKronSolverEmptyPartsUsesGTH(t *testing.T) {
	d := kronTestDescriptor(t, 22, 8)
	ref, err := spmat.StationaryGTHCSR(d.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	// Three pairings collapse phase 8 → 1; the coarse chain (one state per
	// outer segment pair) is solved directly.
	s, err := NewKron(d, 3, nil, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %v", res)
	}
	for i := range ref {
		if math.Abs(res.Pi[i]-ref[i]) > 1e-12 {
			t.Fatalf("pi[%d] = %g, want %g", i, res.Pi[i], ref[i])
		}
	}
}

func TestKronSolverWarmStart(t *testing.T) {
	d := kronTestDescriptor(t, 23, 8)
	s, err := NewKron(d, 2, nil, Config{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(cold.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged || warm.Cycles > cold.Cycles {
		t.Fatalf("warm start did not help: cold %d cycles, warm %d", cold.Cycles, warm.Cycles)
	}
}

func TestKronSolverValidation(t *testing.T) {
	d := kronTestDescriptor(t, 24, 8)
	if _, err := NewKron(d, 0, nil, Config{}); err == nil {
		t.Fatal("aggLevels 0 accepted")
	}
	if _, err := NewKron(d, 4, nil, Config{}); err == nil {
		// 4 pairings of phase 8 do not coarsen past 1.
		t.Fatal("over-deep aggregation accepted")
	}
	s, err := NewKron(d, 1, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(make([]float64, 3)); err == nil {
		t.Fatal("bad x0 length accepted")
	}
}

func TestKronSolverCancellation(t *testing.T) {
	d := kronTestDescriptor(t, 25, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewKron(d, 2, nil, Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestKronSolverCostAccounting(t *testing.T) {
	d := kronTestDescriptor(t, 26, 8)
	meter := cost.NewMeter()
	ctx := cost.ContextWith(context.Background(), meter)
	s, err := NewKron(d, 2, nil, Config{Tol: 1e-12, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := meter.Finish()
	if rep.Cycles != int64(res.Cycles) {
		t.Fatalf("meter cycles %d, result %d", rep.Cycles, res.Cycles)
	}
	// At least one shuffle product per smoothing step and residual check.
	if rep.Pool.SpMVs < int64(res.Cycles)*3 {
		t.Fatalf("SpMVs %d for %d cycles", rep.Pool.SpMVs, res.Cycles)
	}
	if rep.WorkspaceBytes <= 0 {
		t.Fatal("no workspace bytes reported")
	}
}
