package multigrid

import (
	"math"
	"testing"

	"cdrstoch/internal/spmat"
)

func TestSolveCustomX0ConvergesSameFixedPoint(t *testing.T) {
	n := 32
	p := randomWalkChain(n, 0.3, 0.2)
	parts, err := BuildPairHierarchy(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, parts, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately lopsided but valid start.
	x0 := make([]float64, n)
	x0[0] = 10
	x0[n-1] = 1
	res, err := s.Solve(x0)
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
	ref, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Pi, ref); d > 1e-10 {
		t.Fatalf("custom X0 converged elsewhere: off by %g", d)
	}
}

func TestSolverReuseAcrossSolves(t *testing.T) {
	// The solver is stateless across Solve calls: two solves from
	// different starts agree.
	n := 16
	p := randomWalkChain(n, 0.35, 0.15)
	parts, err := BuildPairHierarchy(n, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, parts, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Solve(nil)
	if err != nil || !a.Converged {
		t.Fatalf("%v %+v", err, a)
	}
	x0 := make([]float64, n)
	x0[3] = 1
	b, err := s.Solve(x0)
	if err != nil || !b.Converged {
		t.Fatalf("%v %+v", err, b)
	}
	if d := maxAbsDiff(a.Pi, b.Pi); d > 1e-10 {
		t.Fatalf("solves disagree by %g", d)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.PreSmooth != 1 || cfg.PostSmooth != 1 {
		t.Error("smoothing defaults")
	}
	if math.Abs(cfg.Damping-0.9) > 1e-15 {
		t.Error("damping default")
	}
	if cfg.Tol != 1e-12 || cfg.MaxCycles != 200 || cfg.CoarsestMaxIter != 500 {
		t.Error("iteration defaults")
	}
	// Out-of-range damping resets to the default.
	cfg = Config{Damping: 1.5}.withDefaults()
	if cfg.Damping != 0.9 {
		t.Error("damping clamp")
	}
}
