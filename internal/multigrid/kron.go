package multigrid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cdrstoch/internal/kron"
	"cdrstoch/internal/lump"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

// KronSolver is the multilevel aggregation solver for a chain whose TPM
// exists only as a Kronecker descriptor. The finest level stays implicit:
// smoothing runs matrix-free through the descriptor's shuffle products
// (weighted Jacobi — the one splitting that needs only y = x·P and the
// diagonal, both of which a descriptor provides without a transpose).
// The first restriction lumps the innermost tensor mode — the phase-error
// discretization in the CDR model — AggLevels pairings at once, producing
// an explicit coarse CSR roughly 2^AggLevels smaller than the global nnz;
// from there the ordinary explicit hierarchy (Solver) takes over. The
// coarse matrix's sparsity pattern is fixed at construction; each cycle
// rewrites only its values with the iterate-weighted (Horton–Leutenegger)
// aggregation, so cycles allocate nothing.
type KronSolver struct {
	d   *kron.Descriptor
	cfg Config
	agg int // innermost-mode pairings folded into the first restriction

	n    int // fine dimension
	m    int // fine innermost (phase) size
	mc   int // coarse innermost size after agg pairings
	segs int // n / m: outer-mode segment count
	nc   int // coarse dimension segs·mc

	diag []float64 // fine diagonal, cached at construction
	ws   kron.Workspace
	y    []float64 // fine product buffer
	pool *spmat.Pool

	pc    *spmat.CSR // coarse matrix: fixed pattern, values refreshed per cycle
	it    *kron.RowIter
	inner *Solver // explicit hierarchy below the coarse level; nil when parts empty
	gth   spmat.GTHWorkspace
	xcOld []float64 // restricted block masses (pre-correction)
	xcNew []float64 // coarse solve iterate

	rawTrace obs.Tracer
	curCycle int

	fineVisits, coarseVisits int
	fineNS, coarseNS         int64
}

// NewKron validates the aggregation layout and builds the solver. The
// descriptor's innermost component is paired aggLevels times in the first
// restriction (its size m coarsens to the aggLevels-fold iterated ceiling
// of m/2); parts then describes the explicit hierarchy below that coarse
// level and must partition its nc states (empty parts solve the coarse
// level directly with GTH). Construction enumerates every implicit fine
// row once to fix the coarse sparsity pattern — O(global nnz) time but
// only O(coarse nnz) memory, which is the point: the global matrix never
// exists.
func NewKron(d *kron.Descriptor, aggLevels int, parts []*lump.Partition, cfg Config) (*KronSolver, error) {
	sizes := d.Sizes()
	if len(sizes) == 0 {
		return nil, errors.New("multigrid: empty descriptor")
	}
	if aggLevels < 1 {
		return nil, errors.New("multigrid: aggLevels must be at least 1")
	}
	m := sizes[len(sizes)-1]
	mc := m
	for a := 0; a < aggLevels; a++ {
		if mc == 1 {
			return nil, fmt.Errorf("multigrid: %d pairings exceed innermost size %d", aggLevels, m)
		}
		mc = (mc + 1) / 2
	}
	if mc >= m {
		return nil, fmt.Errorf("multigrid: %d pairings do not coarsen innermost size %d", aggLevels, m)
	}
	n := d.Dim()
	segs := n / m
	s := &KronSolver{
		d: d, agg: aggLevels,
		n: n, m: m, mc: mc, segs: segs, nc: segs * mc,
		rawTrace: cfg.Trace,
	}
	s.cfg = cfg.withDefaults()
	s.pool = s.cfg.Pool
	if s.pool == nil {
		s.pool = spmat.NewPool(s.cfg.Workers)
	}
	s.diag = d.Diag()
	s.y = make([]float64, n)
	s.it = d.NewRowIter()
	s.xcOld = make([]float64, s.nc)
	s.xcNew = make([]float64, s.nc)
	if err := s.buildCoarsePattern(); err != nil {
		return nil, err
	}
	if len(parts) > 0 {
		innerCfg := s.cfg
		innerCfg.Refreshable = true
		innerCfg.Pool = s.pool
		// The inner hierarchy runs uninstrumented: the outer solve owns the
		// meter (one pool delta, one level report) and checks cancellation
		// and faults at its own cycle boundaries, so a shared context here
		// would double-attribute the coarse work.
		innerCfg.Ctx = nil
		innerCfg.Faults = nil
		innerCfg.Trace = nil
		if innerCfg.MaxCycles > 30 {
			innerCfg.MaxCycles = 30
		}
		inner, err := New(s.pc, parts, innerCfg)
		if err != nil {
			return nil, fmt.Errorf("multigrid: coarse hierarchy: %w", err)
		}
		s.inner = inner
	}
	return s, nil
}

// blockOf maps a fine state index to its coarse aggregate: the outer-mode
// segment is kept, the innermost (phase) digit drops agg bits — integer
// halving composed agg times is exactly one shift, ragged tails included.
func (s *KronSolver) blockOf(i int) int {
	seg := i / s.m
	return seg*s.mc + (i-seg*s.m)>>s.agg
}

// blockSize returns the fine-state count of coarse aggregate I (the last
// phase block of each segment may be ragged).
func (s *KronSolver) blockSize(I int) int {
	lo := (I % s.mc) << s.agg
	hi := lo + 1<<s.agg
	if hi > s.m {
		hi = s.m
	}
	return hi - lo
}

// buildCoarsePattern fixes the coarse matrix's sparsity: the union, over
// each aggregate's fine rows, of the aggregated column indices. Values
// start at zero; refreshCoarse rewrites them every cycle.
func (s *KronSolver) buildCoarsePattern() error {
	rowPtr := make([]int, s.nc+1)
	var colIdx []int
	var scratch []int
	visit := func(j int, _ float64) {
		seg := j / s.m
		scratch = append(scratch, seg*s.mc+(j-seg*s.m)>>s.agg)
	}
	for I := 0; I < s.nc; I++ {
		scratch = scratch[:0]
		seg := I / s.mc
		lo := (I % s.mc) << s.agg
		hi := lo + 1<<s.agg
		if hi > s.m {
			hi = s.m
		}
		for p := lo; p < hi; p++ {
			s.it.Row(seg*s.m+p, visit)
		}
		sort.Ints(scratch)
		for k, J := range scratch {
			if k == 0 || J != scratch[k-1] {
				colIdx = append(colIdx, J)
			}
		}
		rowPtr[I+1] = len(colIdx)
	}
	pc, err := spmat.NewCSR(s.nc, s.nc, rowPtr, colIdx, make([]float64, len(colIdx)))
	if err != nil {
		return fmt.Errorf("multigrid: coarse pattern: %w", err)
	}
	s.pc = pc
	return nil
}

// refreshCoarse recomputes the coarse values with the current iterate's
// aggregation weights — Pc[I][J] = Σ_{i∈I} (x_i/‖x‖_I)·Σ_{j∈J} P_ij — and
// leaves the block masses ‖x‖_I in xcOld for the later disaggregation.
// Aggregates that carry no iterate mass fall back to uniform weights so
// the coarse chain stays stochastic.
func (s *KronSolver) refreshCoarse(x []float64) {
	vals := s.pc.RawValues()
	for k := range vals {
		vals[k] = 0
	}
	for I := range s.xcOld {
		s.xcOld[I] = 0
	}
	for i, v := range x {
		s.xcOld[s.blockOf(i)] += v
	}
	var curI int
	var curW float64
	visit := func(j int, v float64) {
		seg := j / s.m
		J := seg*s.mc + (j-seg*s.m)>>s.agg
		vals[s.pc.EntryIndex(curI, J)] += curW * v
	}
	for i := range x {
		curI = s.blockOf(i)
		if mass := s.xcOld[curI]; mass > 0 {
			curW = x[i] / mass
		} else {
			curW = 1 / float64(s.blockSize(curI))
		}
		if curW == 0 {
			continue
		}
		s.it.Row(i, visit)
	}
}

// smoothFine runs steps weighted-Jacobi sweeps on the implicit level:
// x_i ← (1−ω)x_i + ω·((x·P)_i − P_ii·x_i)/(1 − P_ii), the transpose-free
// splitting, with one shuffle product per sweep accounted on the pool.
func (s *KronSolver) smoothFine(x []float64, steps int) {
	omega := s.cfg.Damping
	for t := 0; t < steps; t++ {
		start := time.Now()
		s.d.VecMulWs(&s.ws, s.y, x)
		s.pool.CountExternal(1, int(s.d.OpsPerMul()), start)
		for i := range x {
			den := 1 - s.diag[i]
			if den < 1e-14 {
				continue // absorbing-in-isolation state: leave mass as is
			}
			gs := (s.y[i] - s.diag[i]*x[i]) / den
			x[i] = (1-omega)*x[i] + omega*gs
		}
		norm := 0.0
		for _, v := range x {
			norm += v
		}
		if norm > 0 {
			inv := 1 / norm
			for i := range x {
				x[i] *= inv
			}
		}
	}
}

// coarseSolve improves the restricted iterate: through the inner explicit
// hierarchy when one exists (its finest values refreshed in place from
// the just-rebuilt coarse matrix), by direct GTH otherwise, with damped
// power sweeps as the reducible-chain fallback.
func (s *KronSolver) coarseSolve() error {
	copy(s.xcNew, s.xcOld)
	if s.inner != nil {
		if err := s.inner.RefreshFine(s.pc); err != nil {
			return err
		}
		res, err := s.inner.Solve(s.xcNew)
		if err != nil {
			return err
		}
		copy(s.xcNew, res.Pi)
		return nil
	}
	if pi, err := s.gth.StationaryCSR(s.pc); err == nil {
		copy(s.xcNew, pi)
		return nil
	}
	buf := make([]float64, s.nc)
	omega := s.cfg.Damping
	for t := 0; t < s.cfg.CoarsestMaxIter; t++ {
		s.pc.VecMul(buf, s.xcNew)
		norm := 0.0
		for i := range s.xcNew {
			s.xcNew[i] = (1-omega)*s.xcNew[i] + omega*buf[i]
			norm += s.xcNew[i]
		}
		if norm > 0 {
			inv := 1 / norm
			for i := range s.xcNew {
				s.xcNew[i] *= inv
			}
		}
	}
	return nil
}

// prolong disaggregates the coarse correction multiplicatively: states in
// aggregate I are rescaled by xcNew[I]/xcOld[I], preserving the smoothed
// within-block shape; blocks that had no mass receive theirs uniformly.
func (s *KronSolver) prolong(x []float64) {
	for i := range x {
		I := s.blockOf(i)
		if s.xcOld[I] > 0 {
			x[i] *= s.xcNew[I] / s.xcOld[I]
		} else {
			x[i] = s.xcNew[I] / float64(s.blockSize(I))
		}
	}
	norm := 0.0
	for _, v := range x {
		norm += v
	}
	if norm > 0 {
		inv := 1 / norm
		for i := range x {
			x[i] *= inv
		}
	}
}

// LevelSizes returns the state count of every level, finest first: the
// implicit fine level, the aggregated coarse level, then the inner
// explicit hierarchy's coarser levels.
func (s *KronSolver) LevelSizes() []int {
	sizes := []int{s.n}
	if s.inner != nil {
		sizes = append(sizes, s.inner.LevelSizes()...)
	} else {
		sizes = append(sizes, s.nc)
	}
	return sizes
}

// workspaceBytes estimates the solver's heap footprint beyond the
// descriptor itself: the coarse matrix and hierarchy, the fine-level
// vectors, and the shuffle scratch.
func (s *KronSolver) workspaceBytes() int64 {
	b := s.pc.MemoryBytes()
	b += int64(len(s.diag)+len(s.y)+len(s.xcOld)+len(s.xcNew)) * 8
	b += 2 * int64(s.n) * 8 // shuffle ping-pong scratch
	if s.inner != nil {
		b += s.inner.workspaceBytes()
	}
	return b
}

// SetSolveContext rebinds the context consulted at every cycle boundary,
// mirroring Solver.SetSolveContext for reused solvers.
func (s *KronSolver) SetSolveContext(ctx context.Context) {
	s.cfg.Ctx = ctx
	s.cfg.Trace = obs.StampFromContext(ctx, s.rawTrace)
}

// Solve runs aggregation cycles from x0 (uniform when nil) until the
// residual criterion is met or MaxCycles is exhausted. One cycle is:
// pre-smooth the implicit level, rebuild the coarse values with the
// iterate's weights, solve the coarse chain, disaggregate, post-smooth,
// then measure ‖xP − x‖₁ with one shuffle product.
func (s *KronSolver) Solve(x0 []float64) (Result, error) {
	x := make([]float64, s.n)
	if x0 == nil {
		for i := range x {
			x[i] = 1 / float64(s.n)
		}
	} else {
		if len(x0) != s.n {
			return Result{}, fmt.Errorf("multigrid: x0 length %d, want %d", len(x0), s.n)
		}
		copy(x, x0)
		sum := 0.0
		for _, v := range x {
			if v < 0 {
				return Result{}, errors.New("multigrid: negative initial mass")
			}
			sum += v
		}
		if sum <= 0 {
			return Result{}, errors.New("multigrid: zero initial mass")
		}
		for i := range x {
			x[i] /= sum
		}
	}

	res := Result{
		LevelSizes:      s.LevelSizes(),
		ResidualHistory: make([]float64, 0, s.cfg.MaxCycles),
	}
	s.fineVisits, s.coarseVisits = 0, 0
	s.fineNS, s.coarseNS = 0, 0
	endSpan := obs.StartSpan(s.cfg.Trace, "multigrid-kron")
	defer endSpan()
	meter := cost.FromContext(s.cfg.Ctx)
	if meter != nil {
		stats0 := s.pool.Stats()
		meter.SampleGoroutines()
		defer func() {
			meter.AddCycles(int64(res.Cycles))
			meter.AddPoolDelta(stats0, s.pool.Stats())
			meter.AddWorkspaceBytes(s.workspaceBytes())
			meter.SetLevels([]cost.LevelCost{
				{Level: 0, Size: s.n, Visits: s.fineVisits, SmoothNS: s.fineNS},
				{Level: 1, Size: s.nc, Visits: s.coarseVisits, SmoothNS: s.coarseNS},
			})
			meter.SampleGoroutines()
		}()
	}
	for c := 1; c <= s.cfg.MaxCycles; c++ {
		if s.cfg.Ctx != nil {
			if cerr := s.cfg.Ctx.Err(); cerr != nil {
				return Result{}, fmt.Errorf("multigrid: kron solve stopped after %d of %d cycles (residual %.3e): %w",
					res.Cycles, s.cfg.MaxCycles, res.Residual, cerr)
			}
		}
		if ferr := s.cfg.Faults.FireCtx(s.cfg.Ctx, "multigrid.cycle"); ferr != nil {
			return Result{}, fmt.Errorf("multigrid: kron solve stopped after %d of %d cycles (residual %.3e): %w",
				res.Cycles, s.cfg.MaxCycles, res.Residual, ferr)
		}
		s.curCycle = c
		obs.LevelEvent(s.cfg.Trace, "multigrid", c, 0, s.n)
		s.fineVisits++
		start := time.Now()
		s.smoothFine(x, s.cfg.PreSmooth)
		s.fineNS += time.Since(start).Nanoseconds()

		obs.LevelEvent(s.cfg.Trace, "multigrid", c, 1, s.nc)
		s.coarseVisits++
		start = time.Now()
		s.refreshCoarse(x)
		if err := s.coarseSolve(); err != nil {
			return Result{}, err
		}
		s.coarseNS += time.Since(start).Nanoseconds()
		s.prolong(x)

		start = time.Now()
		s.smoothFine(x, s.cfg.PostSmooth)
		s.fineNS += time.Since(start).Nanoseconds()

		mulStart := time.Now()
		s.d.VecMulWs(&s.ws, s.y, x)
		s.pool.CountExternal(1, int(s.d.OpsPerMul()), mulStart)
		r := 0.0
		for i := range x {
			r += math.Abs(s.y[i] - x[i])
		}
		res.Cycles = c
		res.Residual = r
		res.ResidualHistory = append(res.ResidualHistory, r)
		obs.IterEvent(s.cfg.Trace, "multigrid", c, r)
		meter.AddResidual(r)
		if r <= s.cfg.Tol {
			res.Converged = true
			break
		}
	}
	res.Pi = x
	res.LevelStats = []LevelStat{
		{Level: 0, Size: s.n, Visits: s.fineVisits, SmoothNS: s.fineNS},
		{Level: 1, Size: s.nc, Visits: s.coarseVisits, SmoothNS: s.coarseNS},
	}
	return res, nil
}
