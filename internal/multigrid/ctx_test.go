package multigrid

import (
	"context"
	"errors"
	"testing"

	"cdrstoch/internal/obs"
)

// cancelAfterIter is a Tracer that cancels a context as soon as it sees
// the "iter" event of the given cycle, while recording every event.
type cancelAfterIter struct {
	*obs.Collector
	cancel context.CancelFunc
	cycle  int
}

func (c *cancelAfterIter) Emit(e obs.Event) {
	c.Collector.Emit(e)
	if e.Kind == "iter" && e.Iter >= c.cycle {
		c.cancel()
	}
}

func TestSolveCanceledStopsWithinOneCycle(t *testing.T) {
	p := randomWalkChain(256, 0.3, 0.2)
	parts, err := BuildPairHierarchy(256, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelAfterIter{Collector: obs.NewCollector(nil), cancel: cancel, cycle: 2}
	s, err := New(p, parts, Config{Tol: 1e-300, MaxCycles: 50, Trace: tr, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The context was canceled while cycle 2's residual event was emitted;
	// the solver must not start another cycle: no "iter" event beyond 2 and
	// no "level" visit stamped with a later cycle.
	for _, e := range tr.Events() {
		if e.Kind == "iter" && e.Iter > 2 {
			t.Errorf("iteration traced after cancellation: %+v", e)
		}
		if e.Kind == "level" && e.Iter > 2 {
			t.Errorf("level visit traced after cancellation: %+v", e)
		}
	}
}

func TestSolveExpiredContext(t *testing.T) {
	p := randomWalkChain(64, 0.3, 0.2)
	parts, err := BuildPairHierarchy(64, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before the first cycle
	s, err := New(p, parts, Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSolveNilContextUnaffected(t *testing.T) {
	p := randomWalkChain(64, 0.3, 0.2)
	parts, err := BuildPairHierarchy(64, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, parts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil || !res.Converged {
		t.Fatalf("solve failed without context: %v %v", res, err)
	}
}
