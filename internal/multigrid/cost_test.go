package multigrid

import (
	"context"
	"testing"

	"cdrstoch/internal/obs/cost"
)

// TestSolveLevelStatsAndMeter pins the cost wiring: a metered solve
// attributes per-level work, cycles, residuals, pool kernel counts, and
// workspace bytes to the context's meter, and the Result carries the
// same per-level stats.
func TestSolveLevelStatsAndMeter(t *testing.T) {
	n := 64
	p := randomWalkChain(n, 0.3, 0.25)
	parts, err := BuildPairHierarchy(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	meter := cost.NewMeter()
	s, err := New(p, parts, Config{Tol: 1e-13, Ctx: cost.ContextWith(context.Background(), meter)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.LevelStats) != len(parts)+1 {
		t.Fatalf("LevelStats = %d levels, want %d", len(res.LevelStats), len(parts)+1)
	}
	if res.LevelStats[0].Size != n {
		t.Errorf("finest level size = %d, want %d", res.LevelStats[0].Size, n)
	}
	for i, ls := range res.LevelStats {
		if ls.Level != i {
			t.Errorf("level %d labeled %d", i, ls.Level)
		}
		// A V-cycle visits every level at least once per cycle.
		if ls.Visits < res.Cycles {
			t.Errorf("level %d visits = %d < cycles %d", i, ls.Visits, res.Cycles)
		}
		if ls.SmoothNS <= 0 {
			t.Errorf("level %d smooth time = %d", i, ls.SmoothNS)
		}
	}

	rep := meter.Finish()
	if rep.Cycles != int64(res.Cycles) {
		t.Errorf("meter cycles = %d, want %d", rep.Cycles, res.Cycles)
	}
	if len(rep.Levels) != len(res.LevelStats) {
		t.Errorf("meter levels = %d, want %d", len(rep.Levels), len(res.LevelStats))
	}
	if rep.FinalResidual <= 0 || rep.FinalResidual > 1e-13 {
		t.Errorf("meter final residual = %g", rep.FinalResidual)
	}
	if len(rep.ResidualTail) == 0 {
		t.Error("meter recorded no residual tail")
	}
	if rep.Pool.SpMVs == 0 && rep.Pool.RowSweeps == 0 {
		t.Errorf("meter pool counters empty: %+v", rep.Pool)
	}
	if rep.WorkspaceBytes <= 0 {
		t.Errorf("workspace bytes = %d", rep.WorkspaceBytes)
	}
}

// TestSolveUnmeteredNoLevelRegression checks the disabled path: no meter
// in the context still produces LevelStats on the result, and two solves
// from one solver reset the per-level tallies rather than accumulating.
func TestSolveUnmeteredNoLevelRegression(t *testing.T) {
	n := 32
	p := randomWalkChain(n, 0.4, 0.1)
	parts, _ := BuildPairHierarchy(n, 1, 2)
	s, err := New(p, parts, Config{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.LevelStats) == 0 || len(res2.LevelStats) == 0 {
		t.Fatal("unmetered solve lost LevelStats")
	}
	// Same problem, same start: the second solve must not report the
	// first solve's visits on top of its own.
	if res1.Cycles == res2.Cycles &&
		res1.LevelStats[0].Visits != res2.LevelStats[0].Visits {
		t.Errorf("visit tally leaked across solves: %d vs %d",
			res1.LevelStats[0].Visits, res2.LevelStats[0].Visits)
	}
}
