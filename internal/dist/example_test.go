package dist_test

import (
	"fmt"
	"log"

	"cdrstoch/internal/dist"
)

// ExampleDriftPMF builds the paper's n_r: bounded, grid-aligned,
// non-Gaussian, with an exact frequency-offset mean.
func ExampleDriftPMF() {
	pmf, err := dist.DriftPMF(dist.DriftSpec{
		Step:  1.0 / 64,
		Max:   2.0 / 64,
		Mean:  0.0002,
		Shape: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("support: [%+.4f, %+.4f] UI\n", pmf.Min(), pmf.Max())
	fmt.Printf("mean:    %+.4f UI/bit\n", pmf.Mean())
	// Output:
	// support: [-0.0312, +0.0312] UI
	// mean:    +0.0002 UI/bit
}

// ExampleGaussian_TailAbove shows the deep-tail evaluation BER analysis
// relies on: 1 − CDF would round to zero long before these magnitudes.
func ExampleGaussian_TailAbove() {
	g := dist.NewGaussian(0, 0.02)
	fmt.Printf("P(n_w > 0.25 UI) = %.2e\n", g.TailAbove(0.25))
	// Output:
	// P(n_w > 0.25 UI) = 3.73e-36
}

// ExampleQuantize folds a continuous law onto the phase grid, conserving
// probability mass exactly.
func ExampleQuantize() {
	pmf, err := dist.Quantize(dist.NewSinusoidal(0.05), 1.0/64, -4, 4)
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	for _, p := range pmf.Prob {
		total += p
	}
	fmt.Printf("bins: %d, mass: %.3f\n", pmf.Len(), total)
	// Output:
	// bins: 9, mass: 1.000
}
