package dist

import (
	"math"
)

// Laplace is the two-sided exponential law with location mu and scale b
// (std = b·√2). Measured jitter tails are frequently heavier than
// Gaussian — crosstalk and supply noise produce near-exponential tails —
// and the difference matters enormously at BER targets: at equal RMS, a
// Laplace eye jitter can cost many orders of magnitude of BER relative to
// a Gaussian one. The tails are computed in closed form, so deep-tail
// accuracy matches the Gaussian path.
type Laplace struct {
	Mu, B float64
}

// NewLaplace returns a Laplace law with the given location and scale.
func NewLaplace(mu, b float64) Laplace {
	if b <= 0 {
		panic("dist: Laplace scale must be positive")
	}
	return Laplace{Mu: mu, B: b}
}

// LaplaceFromStd returns a zero-mean Laplace law with the given standard
// deviation (scale = std/√2), for like-for-like comparisons with
// NewGaussian(0, std).
func LaplaceFromStd(std float64) Laplace {
	if std <= 0 {
		panic("dist: Laplace std must be positive")
	}
	return Laplace{Mu: 0, B: std / math.Sqrt2}
}

// CDF returns P(X ≤ x).
func (l Laplace) CDF(x float64) float64 {
	z := (x - l.Mu) / l.B
	if z < 0 {
		return 0.5 * math.Exp(z)
	}
	return 1 - 0.5*math.Exp(-z)
}

// Mean returns mu.
func (l Laplace) Mean() float64 { return l.Mu }

// Std returns b·√2.
func (l Laplace) Std() float64 { return l.B * math.Sqrt2 }

// TailAbove returns P(X > x) without cancellation.
func (l Laplace) TailAbove(x float64) float64 {
	z := (x - l.Mu) / l.B
	if z < 0 {
		return 1 - 0.5*math.Exp(z)
	}
	return 0.5 * math.Exp(-z)
}

// TailBelow returns P(X ≤ x) without cancellation.
func (l Laplace) TailBelow(x float64) float64 {
	z := (x - l.Mu) / l.B
	if z < 0 {
		return 0.5 * math.Exp(z)
	}
	return 1 - 0.5*math.Exp(-z)
}
