package dist

import (
	"math"
	"testing"
)

func TestDualDiracPureRJ(t *testing.T) {
	law, err := DualDirac(0, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := law.(Gaussian); !ok {
		t.Fatalf("zero DJ should collapse to Gaussian, got %T", law)
	}
	// Sub-grid DJ also collapses.
	law, err = DualDirac(0.001, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := law.(Gaussian); !ok {
		t.Fatalf("sub-grid DJ should collapse to Gaussian, got %T", law)
	}
}

func TestDualDiracMoments(t *testing.T) {
	w, sigma := 0.1, 0.02
	law, err := DualDirac(w, sigma, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(law.Mean()) > 1e-15 {
		t.Errorf("mean = %g", law.Mean())
	}
	// Var = sigma² + (W/2)².
	want := math.Sqrt(sigma*sigma + 0.05*0.05)
	if math.Abs(law.Std()-want) > 1e-12 {
		t.Errorf("std = %g, want %g", law.Std(), want)
	}
}

func TestDualDiracCDFShape(t *testing.T) {
	law, err := DualDirac(0.2, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Far from both atoms: CDF saturates; between them: plateau at 1/2.
	if got := law.CDF(0); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("CDF(0) = %g", got)
	}
	if got := law.CDF(-0.2); got > 1e-10 {
		t.Errorf("CDF(-0.2) = %g", got)
	}
	if got := law.CDF(0.2); got < 1-1e-10 {
		t.Errorf("CDF(0.2) = %g", got)
	}
	// The atoms split the tail: P(X > 0.1 + 3σ-ish) ≈ contribution of the
	// +0.1 atom's Gaussian tail only.
	tail := TailAbove(law, 0.13)
	want := 0.5 * NewGaussian(0, 0.01).TailAbove(0.03)
	if math.Abs(tail-want) > want*0.01 {
		t.Errorf("tail = %g, want %g", tail, want)
	}
}

func TestDualDiracValidation(t *testing.T) {
	if _, err := DualDirac(-0.1, 0.01, 0.01); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := DualDirac(0.1, 0, 0.01); err == nil {
		t.Error("zero sigma accepted")
	}
	if _, err := DualDirac(0.1, 0.01, 0); err == nil {
		t.Error("zero step accepted")
	}
}
