package dist

// Tailer is implemented by continuous laws that can evaluate deep tail
// probabilities without the catastrophic cancellation of 1 − CDF(x).
// Gaussian implements it via erfc; BER computations rely on it to resolve
// probabilities down to ~1e−300.
type Tailer interface {
	// TailAbove returns P(X > x).
	TailAbove(x float64) float64
	// TailBelow returns P(X ≤ x).
	TailBelow(x float64) float64
}

// TailAbove returns P(X > x), using the law's Tailer implementation when
// available and 1 − CDF(x) otherwise.
func TailAbove(c Continuous, x float64) float64 {
	if t, ok := c.(Tailer); ok {
		return t.TailAbove(x)
	}
	return 1 - c.CDF(x)
}

// TailBelow returns P(X ≤ x) with the same dispatch as TailAbove.
func TailBelow(c Continuous, x float64) float64 {
	if t, ok := c.(Tailer); ok {
		return t.TailBelow(x)
	}
	return c.CDF(x)
}
