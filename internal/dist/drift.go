package dist

import (
	"errors"
	"fmt"
	"math"
)

// DriftSpec parameterizes the paper's n_r: a white noise process with
// nonzero mean and a bounded, non-Gaussian amplitude distribution "chosen
// to reflect SONET system specifications". The nonzero mean models the
// maximal frequency drift between transmitter and receiver clocks (phase
// accumulates by Mean UI per bit); the bounded random part models the
// cumulative (random-walk) jitter component.
type DriftSpec struct {
	// Step is the phase grid spacing in UI; the PMF support is on
	// multiples of Step, as the model construction requires.
	Step float64
	// Max bounds the support: |n_r| ≤ Max (in UI). Rounded to the grid.
	Max float64
	// Mean is the target E[n_r] in UI per bit (the frequency offset).
	Mean float64
	// Shape skews mass towards zero; larger values concentrate the
	// distribution (geometric decay rate per grid step). Must be in (0,1].
	Shape float64
}

// DriftPMF builds the n_r distribution for a DriftSpec. The construction is
// a two-sided truncated geometric: P(k) ∝ Shape^{|k|} for grid index k in
// [−K, +K], tilted exponentially to match the requested mean exactly (the
// tilt parameter is found by bisection on the monotone mean-vs-tilt map).
// The result is bounded, grid-aligned, non-Gaussian and skewed — the
// properties the paper attributes to its SONET-inspired n_r.
func DriftPMF(spec DriftSpec) (*PMF, error) {
	if spec.Step <= 0 {
		return nil, errors.New("dist: DriftSpec.Step must be positive")
	}
	if spec.Shape <= 0 || spec.Shape > 1 {
		return nil, fmt.Errorf("dist: DriftSpec.Shape %g outside (0,1]", spec.Shape)
	}
	k := int(math.Floor(spec.Max/spec.Step + 1e-9))
	if k < 1 {
		return nil, fmt.Errorf("dist: DriftSpec.Max %g smaller than one grid step %g", spec.Max, spec.Step)
	}
	if math.Abs(spec.Mean) >= spec.Max {
		return nil, fmt.Errorf("dist: mean %g not achievable within |n_r| <= %g", spec.Mean, spec.Max)
	}

	base := make([]float64, 2*k+1)
	for i := -k; i <= k; i++ {
		base[i+k] = math.Pow(spec.Shape, math.Abs(float64(i)))
	}

	meanOf := func(tilt float64) (float64, []float64) {
		w := make([]float64, len(base))
		total, acc := 0.0, 0.0
		for i := -k; i <= k; i++ {
			v := base[i+k] * math.Exp(tilt*float64(i))
			w[i+k] = v
			total += v
			acc += v * float64(i) * spec.Step
		}
		for i := range w {
			w[i] /= total
		}
		return acc / total, w
	}

	target := spec.Mean
	lo, hi := -60.0, 60.0
	mLo, _ := meanOf(lo)
	mHi, _ := meanOf(hi)
	if target < mLo || target > mHi {
		return nil, fmt.Errorf("dist: mean %g outside tiltable range [%g, %g]", target, mLo, mHi)
	}
	var w []float64
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		var m float64
		m, w = meanOf(mid)
		if math.Abs(m-target) <= 1e-15+1e-12*math.Abs(target) {
			break
		}
		if m < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return NewPMF(spec.Step, 0, -k, w)
}

// DefaultDrift returns the n_r specification used throughout the examples
// and benchmarks: bounded at max UI with a slight positive frequency-offset
// mean of meanFrac·max. It mirrors the magnitudes the paper's figures quote
// ("MAXnr" annotations).
func DefaultDrift(step, max float64) DriftSpec {
	return DriftSpec{Step: step, Max: max, Mean: 0.25 * max, Shape: 0.5}
}
