// Package dist provides the probability distributions that drive the CDR
// stochastic model: continuous laws with exact CDFs for the eye-opening
// jitter n_w, and grid-aligned discrete PMFs for the accumulating noise n_r
// (the paper requires n_r to live on the phase-error discretization grid so
// that its "small jumps in phase error" are captured exactly).
//
// Two noise inputs appear in the paper's difference equations:
//
//	Φ_{k+1} = Φ_k − f(Φ_k + n_w(k), S_k) + n_r(k)
//
// n_w is zero-mean white noise (usually Gaussian) modeling the data eye
// opening; it only ever enters through probabilities of threshold crossings,
// so it is represented by a Continuous law with an exact CDF and never
// discretized. n_r is white with (usually) nonzero mean; it shifts the
// phase-error state directly and therefore must be a PMF on grid multiples.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Continuous is a real-valued law with an exact CDF. The model only needs
// CDF evaluations (threshold-crossing probabilities, BER tail masses), so
// this minimal interface suffices for Gaussian, uniform, sinusoidal and
// user-supplied jitter laws alike.
type Continuous interface {
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Mean returns E[X].
	Mean() float64
	// Std returns the standard deviation of X.
	Std() float64
}

// Gaussian is the normal law N(mu, sigma²).
type Gaussian struct {
	Mu, Sigma float64
}

// NewGaussian returns a Gaussian with the given mean and standard deviation.
// Sigma must be positive.
func NewGaussian(mu, sigma float64) Gaussian {
	if sigma <= 0 {
		panic("dist: Gaussian sigma must be positive")
	}
	return Gaussian{Mu: mu, Sigma: sigma}
}

// CDF returns the normal CDF via the error function.
func (g Gaussian) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// Mean returns mu.
func (g Gaussian) Mean() float64 { return g.Mu }

// Std returns sigma.
func (g Gaussian) Std() float64 { return g.Sigma }

// TailAbove returns P(X > x) computed without cancellation for deep tails,
// which matters when BER ~ 1e−14 comes from Gaussian tails.
func (g Gaussian) TailAbove(x float64) float64 {
	return 0.5 * math.Erfc((x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// TailBelow returns P(X ≤ x) with the same deep-tail accuracy as TailAbove.
func (g Gaussian) TailBelow(x float64) float64 {
	return 0.5 * math.Erfc(-(x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// Uniform is the continuous uniform law on [A, B].
type Uniform struct {
	A, B float64
}

// NewUniform returns a Uniform on [a, b], a < b.
func NewUniform(a, b float64) Uniform {
	if a >= b {
		panic("dist: Uniform requires a < b")
	}
	return Uniform{A: a, B: b}
}

// CDF returns the uniform CDF.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Std returns (B−A)/√12.
func (u Uniform) Std() float64 { return (u.B - u.A) / math.Sqrt(12) }

// Sinusoidal is the law of A·sin(θ) with θ uniform — the amplitude
// distribution of deterministic sinusoidal jitter. The paper notes that
// sinusoidally varying jitter can be mimicked "by assigning the amplitude
// distribution of n_r appropriately"; this is that distribution (arcsine).
type Sinusoidal struct {
	Amp float64
}

// NewSinusoidal returns the arcsine law of amplitude amp > 0.
func NewSinusoidal(amp float64) Sinusoidal {
	if amp <= 0 {
		panic("dist: Sinusoidal amplitude must be positive")
	}
	return Sinusoidal{Amp: amp}
}

// CDF returns the arcsine CDF 1/2 + asin(x/A)/π.
func (s Sinusoidal) CDF(x float64) float64 {
	switch {
	case x <= -s.Amp:
		return 0
	case x >= s.Amp:
		return 1
	default:
		return 0.5 + math.Asin(x/s.Amp)/math.Pi
	}
}

// Mean returns 0.
func (s Sinusoidal) Mean() float64 { return 0 }

// Std returns A/√2.
func (s Sinusoidal) Std() float64 { return s.Amp / math.Sqrt2 }

// Mixture is a finite mixture of continuous laws, used to combine several
// jitter specifications (e.g. random plus sinusoidal) into one eye-opening
// law without losing the exact-CDF property.
type Mixture struct {
	comps   []Continuous
	weights []float64
}

// NewMixture builds a mixture; weights must be non-negative and sum to a
// positive total (they are normalized internally).
func NewMixture(comps []Continuous, weights []float64) (*Mixture, error) {
	if len(comps) == 0 || len(comps) != len(weights) {
		return nil, errors.New("dist: mixture needs matching, non-empty components and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("dist: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("dist: mixture weights sum to zero")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &Mixture{comps: comps, weights: norm}, nil
}

// CDF returns the weighted component CDF.
func (m *Mixture) CDF(x float64) float64 {
	s := 0.0
	for i, c := range m.comps {
		s += m.weights[i] * c.CDF(x)
	}
	return s
}

// Mean returns the weighted component mean.
func (m *Mixture) Mean() float64 {
	s := 0.0
	for i, c := range m.comps {
		s += m.weights[i] * c.Mean()
	}
	return s
}

// Std returns the mixture standard deviation (law of total variance).
func (m *Mixture) Std() float64 {
	mu := m.Mean()
	v := 0.0
	for i, c := range m.comps {
		d := c.Mean() - mu
		v += m.weights[i] * (c.Std()*c.Std() + d*d)
	}
	return math.Sqrt(v)
}

// Components returns copies of the mixture's component laws and its
// normalized weights, in construction order. Serialization layers (the
// core.Spec JSON codec) use this to encode mixtures without reaching into
// package internals.
func (m *Mixture) Components() ([]Continuous, []float64) {
	comps := make([]Continuous, len(m.comps))
	copy(comps, m.comps)
	weights := make([]float64, len(m.weights))
	copy(weights, m.weights)
	return comps, weights
}

// PMF is a discrete law on grid-aligned support: outcome k has value
// k·Step + Origin and probability Prob[k−MinK]. All model-facing discrete
// noise is expressed this way so that state transitions land exactly on
// grid points.
type PMF struct {
	// Step is the grid spacing; every support point is an integer multiple
	// of Step away from Origin.
	Step float64
	// Origin is the value of support index 0.
	Origin float64
	// MinK is the smallest support index with nonzero probability.
	MinK int
	// Prob[i] is the probability of index MinK+i.
	Prob []float64
}

// NewPMF validates and normalizes a PMF. The probability slice is copied.
func NewPMF(step, origin float64, minK int, prob []float64) (*PMF, error) {
	if step <= 0 {
		return nil, errors.New("dist: PMF step must be positive")
	}
	if len(prob) == 0 {
		return nil, errors.New("dist: empty PMF")
	}
	total := 0.0
	for _, p := range prob {
		if p < 0 {
			return nil, fmt.Errorf("dist: negative PMF probability %g", p)
		}
		total += p
	}
	if total <= 0 {
		return nil, errors.New("dist: PMF has zero total mass")
	}
	cp := make([]float64, len(prob))
	for i, p := range prob {
		cp[i] = p / total
	}
	return &PMF{Step: step, Origin: origin, MinK: minK, Prob: cp}, nil
}

// Delta returns the degenerate PMF concentrated at value v (up to grid
// rounding of v onto multiples of step).
func Delta(step, v float64) *PMF {
	k := int(math.Round(v / step))
	return &PMF{Step: step, Origin: 0, MinK: k, Prob: []float64{1}}
}

// Len returns the support size.
func (p *PMF) Len() int { return len(p.Prob) }

// Value returns the value of the i-th support point (i in [0, Len)).
func (p *PMF) Value(i int) float64 { return p.Origin + float64(p.MinK+i)*p.Step }

// Support invokes fn for every support point with nonzero probability.
func (p *PMF) Support(fn func(value float64, k int, prob float64)) {
	for i, pr := range p.Prob {
		if pr > 0 {
			fn(p.Value(i), p.MinK+i, pr)
		}
	}
}

// Mean returns E[X].
func (p *PMF) Mean() float64 {
	s := 0.0
	for i, pr := range p.Prob {
		s += pr * p.Value(i)
	}
	return s
}

// Var returns Var[X].
func (p *PMF) Var() float64 {
	mu := p.Mean()
	s := 0.0
	for i, pr := range p.Prob {
		d := p.Value(i) - mu
		s += pr * d * d
	}
	return s
}

// Std returns the standard deviation.
func (p *PMF) Std() float64 { return math.Sqrt(p.Var()) }

// Min returns the smallest support value.
func (p *PMF) Min() float64 { return p.Value(0) }

// Max returns the largest support value.
func (p *PMF) Max() float64 { return p.Value(len(p.Prob) - 1) }

// MaxAbs returns max(|Min|, |Max|) — the "MAXnr" figure annotation.
func (p *PMF) MaxAbs() float64 { return math.Max(math.Abs(p.Min()), math.Abs(p.Max())) }

// CDF returns P(X ≤ x).
func (p *PMF) CDF(x float64) float64 {
	s := 0.0
	for i, pr := range p.Prob {
		if p.Value(i) <= x+1e-15 {
			s += pr
		}
	}
	return s
}

// Convolve returns the law of the sum of two independent PMFs on the same
// grid step. Convolution is the core of composing several accumulated
// jitter specifications into a single n_r.
func (p *PMF) Convolve(q *PMF) (*PMF, error) {
	if math.Abs(p.Step-q.Step) > 1e-15*math.Max(p.Step, q.Step) {
		return nil, fmt.Errorf("dist: convolving PMFs with different steps %g and %g", p.Step, q.Step)
	}
	if math.Abs(p.Origin)+math.Abs(q.Origin) > 0 {
		return nil, errors.New("dist: convolution requires zero-origin PMFs")
	}
	minK := p.MinK + q.MinK
	out := make([]float64, p.Len()+q.Len()-1)
	for i, a := range p.Prob {
		if a == 0 {
			continue
		}
		for j, b := range q.Prob {
			out[i+j] += a * b
		}
	}
	return NewPMF(p.Step, 0, minK, out)
}

// Rescaled returns the same probabilities reinterpreted on a new grid step.
// It is used when the phase grid is refined: a PMF built on step h lands on
// every q-th point of step h/q.
func (p *PMF) Rescaled(newStep float64, factor int) (*PMF, error) {
	if factor < 1 {
		return nil, errors.New("dist: rescale factor must be >= 1")
	}
	prob := make([]float64, (p.Len()-1)*factor+1)
	for i, pr := range p.Prob {
		prob[i*factor] = pr
	}
	return NewPMF(newStep, p.Origin, p.MinK*factor, prob)
}

// Quantize builds a grid PMF from a continuous law by assigning each grid
// point k·step the probability mass of ((k−1/2)step, (k+1/2)step], then
// truncating indices outside [minK, maxK] into the end bins. This is the
// discretization the paper applies to the noise sources.
func Quantize(c Continuous, step float64, minK, maxK int) (*PMF, error) {
	if step <= 0 {
		return nil, errors.New("dist: quantize step must be positive")
	}
	if minK > maxK {
		return nil, errors.New("dist: quantize needs minK <= maxK")
	}
	n := maxK - minK + 1
	prob := make([]float64, n)
	for k := minK; k <= maxK; k++ {
		lo := (float64(k) - 0.5) * step
		hi := (float64(k) + 0.5) * step
		pm := c.CDF(hi) - c.CDF(lo)
		if pm < 0 {
			pm = 0
		}
		prob[k-minK] = pm
	}
	// Fold the tails into the extreme bins so mass is conserved.
	prob[0] += c.CDF((float64(minK) - 0.5) * step)
	prob[n-1] += 1 - c.CDF((float64(maxK)+0.5)*step)
	return NewPMF(step, 0, minK, prob)
}

// String summarizes the PMF.
func (p *PMF) String() string {
	return fmt.Sprintf("PMF{step=%g support=[%g,%g] n=%d mean=%g std=%g}",
		p.Step, p.Min(), p.Max(), p.Len(), p.Mean(), p.Std())
}

// FromSamples builds an empirical grid PMF from raw samples (used to fold a
// simulated PLL clock-jitter characterization into the Markov model). Each
// sample is rounded to the nearest grid index; indices beyond maxAbsK are
// clamped. Returns an error when no samples are given.
func FromSamples(samples []float64, step float64, maxAbsK int) (*PMF, error) {
	if len(samples) == 0 {
		return nil, errors.New("dist: no samples")
	}
	if step <= 0 || maxAbsK < 0 {
		return nil, errors.New("dist: bad grid for FromSamples")
	}
	counts := make([]float64, 2*maxAbsK+1)
	for _, s := range samples {
		k := int(math.Round(s / step))
		if k < -maxAbsK {
			k = -maxAbsK
		}
		if k > maxAbsK {
			k = maxAbsK
		}
		counts[k+maxAbsK]++
	}
	return NewPMF(step, 0, -maxAbsK, counts)
}

// Trim returns a copy with leading/trailing zero-probability bins removed,
// keeping transition assembly loops tight.
func (p *PMF) Trim() *PMF {
	lo, hi := 0, len(p.Prob)
	for lo < hi && p.Prob[lo] == 0 {
		lo++
	}
	for hi > lo && p.Prob[hi-1] == 0 {
		hi--
	}
	if lo == hi {
		return p
	}
	out, err := NewPMF(p.Step, p.Origin, p.MinK+lo, p.Prob[lo:hi])
	if err != nil {
		return p
	}
	return out
}

// Quantile returns the smallest support value v with CDF(v) >= q.
func (p *PMF) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Min()
	}
	cum := 0.0
	for i, pr := range p.Prob {
		cum += pr
		if cum >= q-1e-15 {
			return p.Value(i)
		}
	}
	return p.Max()
}

// SortedValues returns the support values in increasing order (they already
// are; the method exists for symmetry and defensive copies in callers).
func (p *PMF) SortedValues() []float64 {
	vs := make([]float64, p.Len())
	for i := range vs {
		vs[i] = p.Value(i)
	}
	sort.Float64s(vs)
	return vs
}
