package dist

import (
	"errors"
	"math"
)

// SumLaw is the law of X + Y where X follows a continuous law and Y an
// independent grid PMF: CDF(x) = Σ_k p_k·CDF_X(x − y_k). It is the exact
// composition used to add a discretized jitter contribution (sinusoidal
// jitter, characterized PLL clock jitter) to a continuous eye-jitter law
// without losing the deep-tail accuracy of the continuous component.
type SumLaw struct {
	base Continuous
	pmf  *PMF
}

// NewSumLaw composes a continuous law with an independent PMF.
func NewSumLaw(base Continuous, pmf *PMF) (*SumLaw, error) {
	if base == nil || pmf == nil {
		return nil, errors.New("dist: SumLaw needs both components")
	}
	return &SumLaw{base: base, pmf: pmf.Trim()}, nil
}

// CDF returns P(X + Y ≤ x).
func (s *SumLaw) CDF(x float64) float64 {
	acc := 0.0
	s.pmf.Support(func(v float64, _ int, p float64) {
		acc += p * s.base.CDF(x-v)
	})
	return acc
}

// Mean returns E[X] + E[Y].
func (s *SumLaw) Mean() float64 { return s.base.Mean() + s.pmf.Mean() }

// Std returns the standard deviation of the independent sum.
func (s *SumLaw) Std() float64 {
	return math.Sqrt(s.base.Std()*s.base.Std() + s.pmf.Var())
}

// TailAbove returns P(X + Y > x), delegating to the base law's deep-tail
// path when available.
func (s *SumLaw) TailAbove(x float64) float64 {
	acc := 0.0
	s.pmf.Support(func(v float64, _ int, p float64) {
		acc += p * TailAbove(s.base, x-v)
	})
	return acc
}

// TailBelow returns P(X + Y ≤ x) with the same deep-tail dispatch.
func (s *SumLaw) TailBelow(x float64) float64 {
	acc := 0.0
	s.pmf.Support(func(v float64, _ int, p float64) {
		acc += p * TailBelow(s.base, x-v)
	})
	return acc
}
