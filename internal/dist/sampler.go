package dist

import (
	"errors"
	"math/rand"
)

// Sampler draws variates from a PMF in O(1) per draw using Walker's alias
// method. The Monte Carlo baseline (internal/bitsim) samples millions of
// n_r values per BER estimate, so constant-time sampling matters.
type Sampler struct {
	pmf   *PMF
	prob  []float64
	alias []int
}

// NewSampler preprocesses a PMF into alias tables.
func NewSampler(p *PMF) (*Sampler, error) {
	n := p.Len()
	if n == 0 {
		return nil, errors.New("dist: empty PMF")
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	var small, large []int
	for i, pr := range p.Prob {
		scaled[i] = pr * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return &Sampler{pmf: p, prob: prob, alias: alias}, nil
}

// Sample draws one variate (a support value of the underlying PMF).
func (s *Sampler) Sample(rng *rand.Rand) float64 {
	i := rng.Intn(len(s.prob))
	if rng.Float64() >= s.prob[i] {
		i = s.alias[i]
	}
	return s.pmf.Value(i)
}

// SampleIndex draws a support index instead of a value.
func (s *Sampler) SampleIndex(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() >= s.prob[i] {
		i = s.alias[i]
	}
	return s.pmf.MinK + i
}
