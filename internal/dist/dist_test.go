package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianCDFKnownValues(t *testing.T) {
	g := NewGaussian(0, 1)
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
	}
	for _, c := range cases {
		if got := g.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
	if g.Mean() != 0 || g.Std() != 1 {
		t.Error("Gaussian moments wrong")
	}
}

func TestGaussianDeepTails(t *testing.T) {
	g := NewGaussian(0, 1)
	// P(X > 8) ≈ 6.22e-16: must be positive and accurate, not rounded to 0.
	tail := g.TailAbove(8)
	if tail <= 0 || tail > 1e-15 {
		t.Fatalf("TailAbove(8) = %g", tail)
	}
	if d := math.Abs(g.TailBelow(-8) - tail); d > 1e-18 {
		t.Fatalf("tail symmetry broken by %g", d)
	}
}

func TestGaussianShiftScale(t *testing.T) {
	g := NewGaussian(2, 3)
	ref := NewGaussian(0, 1)
	for _, x := range []float64{-5, 0, 2, 7} {
		if got, want := g.CDF(x), ref.CDF((x-2)/3); math.Abs(got-want) > 1e-14 {
			t.Errorf("CDF(%g): %g vs %g", x, got, want)
		}
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(-1, 3)
	if u.CDF(-2) != 0 || u.CDF(5) != 1 {
		t.Error("uniform CDF clamping broken")
	}
	if got := u.CDF(1); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF(1) = %g", got)
	}
	if math.Abs(u.Mean()-1) > 1e-15 {
		t.Error("uniform mean")
	}
	if math.Abs(u.Std()-4/math.Sqrt(12)) > 1e-15 {
		t.Error("uniform std")
	}
}

func TestSinusoidal(t *testing.T) {
	s := NewSinusoidal(2)
	if s.CDF(-2) != 0 || s.CDF(2) != 1 {
		t.Error("sinusoidal support clamping")
	}
	if got := s.CDF(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF(0) = %g", got)
	}
	// P(|X| < A/√2) = 1/2 for the arcsine law.
	p := s.CDF(2/math.Sqrt2) - s.CDF(-2/math.Sqrt2)
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("arcsine quartile property: %g", p)
	}
	if math.Abs(s.Std()-math.Sqrt2) > 1e-15 {
		t.Error("sinusoidal std")
	}
}

func TestMixture(t *testing.T) {
	m, err := NewMixture(
		[]Continuous{NewGaussian(0, 1), NewGaussian(4, 1)},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mean(); math.Abs(got-2) > 1e-14 {
		t.Errorf("mixture mean = %g", got)
	}
	// Var = E[Var] + Var[E] = 1 + 4.
	if got := m.Std(); math.Abs(got-math.Sqrt(5)) > 1e-14 {
		t.Errorf("mixture std = %g", got)
	}
	if got := m.CDF(2); math.Abs(got-0.5) > 1e-10 {
		t.Errorf("mixture CDF(2) = %g", got)
	}
}

func TestMixtureErrors(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Continuous{NewGaussian(0, 1)}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewMixture([]Continuous{NewGaussian(0, 1)}, []float64{0}); err == nil {
		t.Error("zero-total weights accepted")
	}
}

func TestPMFBasics(t *testing.T) {
	p, err := NewPMF(0.1, 0, -1, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatal("len")
	}
	if math.Abs(p.Mean()) > 1e-15 {
		t.Errorf("mean = %g", p.Mean())
	}
	if got, want := p.Var(), 0.005; math.Abs(got-want) > 1e-15 {
		t.Errorf("var = %g want %g", got, want)
	}
	if p.Min() != -0.1 || p.Max() != 0.1 || p.MaxAbs() != 0.1 {
		t.Error("support bounds")
	}
	if got := p.CDF(0); math.Abs(got-0.75) > 1e-15 {
		t.Errorf("CDF(0) = %g", got)
	}
}

func TestPMFValidation(t *testing.T) {
	if _, err := NewPMF(0, 0, 0, []float64{1}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := NewPMF(1, 0, 0, nil); err == nil {
		t.Error("empty PMF accepted")
	}
	if _, err := NewPMF(1, 0, 0, []float64{-1, 2}); err == nil {
		t.Error("negative prob accepted")
	}
	if _, err := NewPMF(1, 0, 0, []float64{0, 0}); err == nil {
		t.Error("zero mass accepted")
	}
}

func TestDelta(t *testing.T) {
	d := Delta(0.25, 0.5)
	if d.Len() != 1 || d.Value(0) != 0.5 || d.Prob[0] != 1 {
		t.Fatalf("Delta = %v", d)
	}
	if Delta(0.25, 0.6).Value(0) != 0.5 {
		t.Error("Delta should round onto grid")
	}
}

func TestConvolve(t *testing.T) {
	p, _ := NewPMF(1, 0, 0, []float64{0.5, 0.5}) // fair coin on {0,1}
	q, _ := NewPMF(1, 0, 0, []float64{0.5, 0.5})
	c, err := p.Convolve(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i, w := range want {
		if math.Abs(c.Prob[i]-w) > 1e-15 {
			t.Fatalf("conv[%d] = %g want %g", i, c.Prob[i], w)
		}
	}
	if math.Abs(c.Mean()-1) > 1e-15 {
		t.Error("conv mean")
	}
	if _, err := p.Convolve(&PMF{Step: 2, Prob: []float64{1}}); err == nil {
		t.Error("step mismatch accepted")
	}
}

func TestQuickConvolutionMoments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *PMF {
			n := 1 + rng.Intn(6)
			pr := make([]float64, n)
			for i := range pr {
				pr[i] = rng.Float64() + 0.01
			}
			p, err := NewPMF(0.5, 0, rng.Intn(5)-2, pr)
			if err != nil {
				return nil
			}
			return p
		}
		p, q := mk(), mk()
		if p == nil || q == nil {
			return false
		}
		c, err := p.Convolve(q)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range c.Prob {
			sum += v
		}
		return math.Abs(sum-1) < 1e-12 &&
			math.Abs(c.Mean()-(p.Mean()+q.Mean())) < 1e-12 &&
			math.Abs(c.Var()-(p.Var()+q.Var())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeGaussianMoments(t *testing.T) {
	g := NewGaussian(0, 0.05)
	p, err := Quantize(g, 0.01, -30, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()) > 1e-6 {
		t.Errorf("quantized mean = %g", p.Mean())
	}
	if math.Abs(p.Std()-0.05) > 1e-3 {
		t.Errorf("quantized std = %g", p.Std())
	}
	sum := 0.0
	for _, v := range p.Prob {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("quantized mass = %g", sum)
	}
}

func TestQuantizeTailFolding(t *testing.T) {
	// Support much narrower than the law: all mass must still be captured.
	g := NewGaussian(0, 10)
	p, err := Quantize(g, 1, -2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p.Prob {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass lost: %g", sum)
	}
	if p.Prob[0] < 0.3 {
		t.Error("left fold bin should carry heavy tail mass")
	}
}

func TestQuantizeErrors(t *testing.T) {
	g := NewGaussian(0, 1)
	if _, err := Quantize(g, 0, 0, 1); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Quantize(g, 1, 3, 1); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRescaled(t *testing.T) {
	p, _ := NewPMF(0.2, 0, -1, []float64{0.25, 0.5, 0.25})
	r, err := p.Rescaled(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Step != 0.1 || r.MinK != -2 || r.Len() != 5 {
		t.Fatalf("rescaled shape: %v", r)
	}
	if math.Abs(r.Mean()-p.Mean()) > 1e-15 || math.Abs(r.Var()-p.Var()) > 1e-15 {
		t.Error("rescaling changed moments")
	}
	if _, err := p.Rescaled(0.1, 0); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestTrim(t *testing.T) {
	p, _ := NewPMF(1, 0, -2, []float64{0, 0.5, 0.5, 0, 0})
	q := p.Trim()
	if q.Len() != 2 || q.MinK != -1 {
		t.Fatalf("Trim = %v", q)
	}
	if math.Abs(q.Mean()-p.Mean()) > 1e-15 {
		t.Error("trim changed mean")
	}
}

func TestQuantile(t *testing.T) {
	p, _ := NewPMF(1, 0, 0, []float64{0.25, 0.25, 0.5})
	if p.Quantile(0) != 0 || p.Quantile(0.25) != 0 || p.Quantile(0.3) != 1 || p.Quantile(1) != 2 {
		t.Fatalf("quantiles: %g %g %g %g", p.Quantile(0), p.Quantile(0.25), p.Quantile(0.3), p.Quantile(1))
	}
}

func TestSortedValues(t *testing.T) {
	p, _ := NewPMF(0.5, 0, -1, []float64{1, 1, 1})
	vs := p.SortedValues()
	want := []float64{-0.5, 0, 0.5}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("SortedValues = %v", vs)
		}
	}
}

func TestDriftPMFMeanAndBounds(t *testing.T) {
	spec := DriftSpec{Step: 0.01, Max: 0.05, Mean: 0.012, Shape: 0.5}
	p, err := DriftPMF(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-0.012) > 1e-9 {
		t.Errorf("drift mean = %g, want 0.012", p.Mean())
	}
	if p.MaxAbs() > 0.05+1e-12 {
		t.Errorf("drift exceeds bound: %g", p.MaxAbs())
	}
	// Non-Gaussian: must be visibly skewed (nonzero third central moment).
	mu := p.Mean()
	m3 := 0.0
	p.Support(func(v float64, _ int, pr float64) { m3 += pr * math.Pow(v-mu, 3) })
	if m3 == 0 {
		t.Error("drift PMF unexpectedly symmetric")
	}
}

func TestDriftPMFZeroMean(t *testing.T) {
	p, err := DriftPMF(DriftSpec{Step: 0.01, Max: 0.03, Mean: 0, Shape: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()) > 1e-12 {
		t.Errorf("zero-mean drift has mean %g", p.Mean())
	}
}

func TestDriftPMFErrors(t *testing.T) {
	if _, err := DriftPMF(DriftSpec{Step: 0, Max: 1, Shape: 0.5}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := DriftPMF(DriftSpec{Step: 0.01, Max: 0.005, Shape: 0.5}); err == nil {
		t.Error("sub-step max accepted")
	}
	if _, err := DriftPMF(DriftSpec{Step: 0.01, Max: 0.05, Mean: 0.06, Shape: 0.5}); err == nil {
		t.Error("unreachable mean accepted")
	}
	if _, err := DriftPMF(DriftSpec{Step: 0.01, Max: 0.05, Shape: 0}); err == nil {
		t.Error("zero shape accepted")
	}
}

func TestDefaultDrift(t *testing.T) {
	spec := DefaultDrift(0.01, 0.04)
	p, err := DriftPMF(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-0.01) > 1e-9 {
		t.Errorf("default drift mean = %g", p.Mean())
	}
}

func TestFromSamples(t *testing.T) {
	p, err := FromSamples([]float64{0.1, 0.1, -0.1, 0.32}, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.CDF(-0.1)-0.25) > 1e-15 {
		t.Errorf("CDF(-0.1) = %g", p.CDF(-0.1))
	}
	// 0.32 clamps to index 2 (value 0.2).
	if p.Max() != 0.2 {
		t.Errorf("max = %g", p.Max())
	}
	if _, err := FromSamples(nil, 0.1, 2); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestSamplerMatchesPMF(t *testing.T) {
	p, _ := NewPMF(1, 0, -1, []float64{0.2, 0.5, 0.3})
	s, err := NewSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for i, pr := range p.Prob {
		got := float64(counts[p.Value(i)]) / n
		if math.Abs(got-pr) > 0.01 {
			t.Errorf("value %g: freq %g want %g", p.Value(i), got, pr)
		}
	}
}

func TestSamplerIndex(t *testing.T) {
	p, _ := NewPMF(1, 0, 5, []float64{1})
	s, _ := NewSampler(p)
	rng := rand.New(rand.NewSource(1))
	if idx := s.SampleIndex(rng); idx != 5 {
		t.Fatalf("SampleIndex = %d", idx)
	}
}

func TestQuickSamplerMeanConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		pr := make([]float64, n)
		for i := range pr {
			pr[i] = rng.Float64() + 0.05
		}
		p, err := NewPMF(0.25, 0, -n/2, pr)
		if err != nil {
			return false
		}
		s, err := NewSampler(p)
		if err != nil {
			return false
		}
		sum := 0.0
		const draws = 40000
		for i := 0; i < draws; i++ {
			sum += s.Sample(rng)
		}
		return math.Abs(sum/draws-p.Mean()) < 6*p.Std()/math.Sqrt(draws)+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
