package dist

import (
	"math"
	"testing"
)

func TestLaplaceCDF(t *testing.T) {
	l := NewLaplace(0, 1)
	if got := l.CDF(0); got != 0.5 {
		t.Fatalf("CDF(0) = %g", got)
	}
	if got := l.CDF(1); math.Abs(got-(1-0.5*math.Exp(-1))) > 1e-15 {
		t.Fatalf("CDF(1) = %g", got)
	}
	// Symmetry: CDF(−x) = 1 − CDF(x).
	for _, x := range []float64{0.3, 1.7, 5} {
		if d := math.Abs(l.CDF(-x) - (1 - l.CDF(x))); d > 1e-15 {
			t.Fatalf("symmetry broken at %g by %g", x, d)
		}
	}
}

func TestLaplaceMoments(t *testing.T) {
	l := LaplaceFromStd(0.05)
	if l.Mean() != 0 {
		t.Error("mean")
	}
	if math.Abs(l.Std()-0.05) > 1e-15 {
		t.Errorf("std = %g", l.Std())
	}
}

func TestLaplaceDeepTails(t *testing.T) {
	l := LaplaceFromStd(0.02)
	tail := l.TailAbove(0.5)
	// Closed form: 0.5·exp(−0.5/b) with b = 0.02/√2.
	want := 0.5 * math.Exp(-0.5*math.Sqrt2/0.02)
	if math.Abs(tail-want) > want*1e-12 {
		t.Fatalf("tail = %g, want %g", tail, want)
	}
	if tail <= 0 {
		t.Fatal("deep tail underflowed")
	}
	if d := math.Abs(l.TailBelow(-0.5) - tail); d > tail*1e-12 {
		t.Fatal("tail symmetry")
	}
	// Complement consistency at moderate x.
	for _, x := range []float64{-0.03, 0, 0.04} {
		if d := math.Abs(l.TailAbove(x) + l.TailBelow(x) - 1); d > 1e-15 {
			t.Fatalf("complement broken at %g by %g", x, d)
		}
	}
}

// TestLaplaceHeavierThanGaussian: at equal std, the Laplace tail dominates
// the Gaussian tail by many orders of magnitude far out — the reason
// jitter tail shape matters at BER targets.
func TestLaplaceHeavierThanGaussian(t *testing.T) {
	std := 0.02
	lap := LaplaceFromStd(std)
	gau := NewGaussian(0, std)
	lt := lap.TailAbove(0.5)
	gt := gau.TailAbove(0.5)
	if lt < 1e12*gt {
		t.Fatalf("Laplace tail %g not ≫ Gaussian tail %g", lt, gt)
	}
}

func TestLaplacePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLaplace(0, 0) },
		func() { LaplaceFromStd(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
