package dist

import (
	"math"
	"testing"
)

func TestSumLawDegenerateShift(t *testing.T) {
	g := NewGaussian(0, 1)
	shift := Delta(0.5, 1.0) // Y ≡ 1
	s, err := NewSumLaw(g, shift)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewGaussian(1, 1)
	for _, x := range []float64{-3, 0, 1, 2.5} {
		if d := math.Abs(s.CDF(x) - ref.CDF(x)); d > 1e-15 {
			t.Fatalf("CDF(%g) off by %g", x, d)
		}
	}
	if s.Mean() != 1 || math.Abs(s.Std()-1) > 1e-15 {
		t.Fatalf("moments: mean %g std %g", s.Mean(), s.Std())
	}
}

func TestSumLawMoments(t *testing.T) {
	g := NewGaussian(0.2, 0.5)
	p, err := NewPMF(0.1, 0, -1, []float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSumLaw(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(s.Mean() - (g.Mean() + p.Mean())); d > 1e-15 {
		t.Fatalf("mean off by %g", d)
	}
	wantVar := g.Std()*g.Std() + p.Var()
	if d := math.Abs(s.Std()*s.Std() - wantVar); d > 1e-15 {
		t.Fatalf("variance off by %g", d)
	}
}

func TestSumLawTailsDeep(t *testing.T) {
	g := NewGaussian(0, 0.02)
	p, err := Quantize(NewSinusoidal(0.05), 0.01, -6, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSumLaw(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Deep tail must remain positive and far below float rounding of
	// 1 − CDF: at 0.5 the Gaussian alone is ~25σ−2.5UI... the shifted
	// components put the nearest mass at (0.5−0.05)/0.02 = 22.5σ.
	tail := s.TailAbove(0.5)
	if tail <= 0 || tail > 1e-80 {
		t.Fatalf("deep tail = %g", tail)
	}
	// Symmetry of both components around 0.
	if d := math.Abs(s.TailBelow(-0.5) - tail); d > tail*1e-6 {
		t.Fatalf("tail asymmetry %g vs %g", s.TailBelow(-0.5), tail)
	}
	// Consistency between the CDF and tails at moderate x.
	for _, x := range []float64{-0.06, 0, 0.03} {
		if d := math.Abs(s.TailBelow(x) - s.CDF(x)); d > 1e-12 {
			t.Fatalf("TailBelow/CDF mismatch at %g: %g", x, d)
		}
		if d := math.Abs(s.TailAbove(x) + s.CDF(x) - 1); d > 1e-12 {
			t.Fatalf("TailAbove complement broken at %g by %g", x, d)
		}
	}
}

func TestSumLawValidation(t *testing.T) {
	if _, err := NewSumLaw(nil, Delta(1, 0)); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewSumLaw(NewGaussian(0, 1), nil); err == nil {
		t.Error("nil PMF accepted")
	}
}
