package dist

import (
	"errors"
)

// DualDirac builds the industry-standard dual-Dirac jitter law: total
// jitter = deterministic jitter modeled as two equal atoms at ±W/2 plus
// Gaussian random jitter of the given sigma. It is the usual way link
// budgets quote "DJ(δδ) + RJ", and it slots directly into Spec.EyeJitter:
// the atoms ride on the exact-CDF Gaussian, so deep BER tails remain
// meaningful. W is the total deterministic jitter width in UI; step is
// the grid step the atoms are rounded to.
func DualDirac(w, sigma, step float64) (Continuous, error) {
	if w < 0 {
		return nil, errors.New("dist: negative DJ width")
	}
	if sigma <= 0 {
		return nil, errors.New("dist: RJ sigma must be positive")
	}
	if w == 0 {
		return NewGaussian(0, sigma), nil
	}
	if step <= 0 {
		return nil, errors.New("dist: step must be positive")
	}
	half := w / 2
	k := int(half/step + 0.5)
	if k == 0 {
		// The DJ width rounds below the grid: treat as pure RJ.
		return NewGaussian(0, sigma), nil
	}
	atoms, err := NewPMF(step, 0, -k, appendAtoms(2*k))
	if err != nil {
		return nil, err
	}
	return NewSumLaw(NewGaussian(0, sigma), atoms)
}

// appendAtoms builds the two-atom probability slice spanning span+1 bins
// with mass only at the ends.
func appendAtoms(span int) []float64 {
	p := make([]float64, span+1)
	p[0] = 0.5
	p[span] = 0.5
	return p
}
