// Package passage computes first-passage quantities of Markov chains:
// expected hitting times of a target set (the paper's "mean transition
// times between certain sets of MC states", which give the average time
// between cycle slips), hit-this-before-that probabilities, and the
// stationary-flux (Kac) estimate of mean time between entries into a rare
// set — the numerically robust route when the mean time is of the order
// 1/BER and fixed-point iterations would need that many sweeps.
package passage

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/spmat"
)

// HittingTimesDense solves (I − Q)·t = 1 exactly with dense LU, where Q is
// the TPM restricted to non-target states. t[i] is the expected number of
// steps to first reach the target from state i; target states report 0.
// Intended for chains up to a few thousand states.
func HittingTimesDense(p *spmat.CSR, target []bool) ([]float64, error) {
	n, m := p.Dims()
	if n != m {
		return nil, errors.New("passage: TPM must be square")
	}
	if len(target) != n {
		return nil, errors.New("passage: target length mismatch")
	}
	// Compact index of non-target states.
	idx := make([]int, n)
	nt := 0
	for i := range target {
		if target[i] {
			idx[i] = -1
		} else {
			idx[i] = nt
			nt++
		}
	}
	if nt == 0 {
		return make([]float64, n), nil
	}
	if nt == n {
		return nil, errors.New("passage: empty target set")
	}
	a := spmat.NewDense(nt, nt)
	for i := 0; i < n; i++ {
		ri := idx[i]
		if ri < 0 {
			continue
		}
		a.Set(ri, ri, 1)
		cols, vals := p.Row(i)
		for k, j := range cols {
			if rj := idx[j]; rj >= 0 {
				a.Add(ri, rj, -vals[k])
			}
		}
	}
	lu, err := spmat.Factorize(a)
	if err != nil {
		return nil, fmt.Errorf("passage: target unreachable from some state: %w", err)
	}
	ones := make([]float64, nt)
	for i := range ones {
		ones[i] = 1
	}
	tc := lu.Solve(ones)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if ri := idx[i]; ri >= 0 {
			out[i] = tc[ri]
		}
	}
	return out, nil
}

// IterOptions configures the iterative hitting-time solver.
type IterOptions struct {
	// Tol is the convergence threshold on the max relative update.
	// Default 1e-10.
	Tol float64
	// MaxIter bounds the Gauss–Seidel sweeps. Default 1e6. The fixed-point
	// contraction rate is ≈ 1 − 1/E[T], so rare-event sets need either
	// the dense solver or the flux estimate instead.
	MaxIter int
	// Trace receives a span around the solve and one "iter" event per
	// sweep whose Residual field carries the max relative update. Nil
	// disables tracing at zero cost.
	Trace obs.Tracer
	// Ctx, when non-nil, is checked at every sweep boundary: a canceled or
	// expired context stops the solve with a partial-progress error
	// wrapping ctx.Err(). Nil never cancels.
	Ctx context.Context
}

func (o IterOptions) withDefaults() IterOptions {
	o.Trace = obs.StampFromContext(o.Ctx, o.Trace)
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000000
	}
	return o
}

// HittingTimesIterative solves t = 1 + Q·t with Gauss–Seidel sweeps.
// It reports whether the iteration converged.
func HittingTimesIterative(p *spmat.CSR, target []bool, opt IterOptions) ([]float64, bool, error) {
	n, m := p.Dims()
	if n != m {
		return nil, false, errors.New("passage: TPM must be square")
	}
	if len(target) != n {
		return nil, false, errors.New("passage: target length mismatch")
	}
	opt = opt.withDefaults()
	any := false
	for _, b := range target {
		if b {
			any = true
			break
		}
	}
	if !any {
		return nil, false, errors.New("passage: empty target set")
	}
	t := make([]float64, n)
	endSpan := obs.StartSpan(opt.Trace, "hitting-gs")
	defer endSpan()
	for it := 0; it < opt.MaxIter; it++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return t, false, fmt.Errorf("passage: hitting-time solve stopped after %d sweeps: %w", it, err)
			}
		}
		maxRel := 0.0
		for i := 0; i < n; i++ {
			if target[i] {
				continue
			}
			cols, vals := p.Row(i)
			sum := 1.0
			var selfP float64
			for k, j := range cols {
				if target[j] {
					continue
				}
				if j == i {
					selfP = vals[k]
					continue
				}
				sum += vals[k] * t[j]
			}
			var next float64
			if selfP < 1 {
				next = sum / (1 - selfP)
			} else {
				return nil, false, fmt.Errorf("passage: state %d cannot leave itself", i)
			}
			den := math.Abs(next)
			if den < 1 {
				den = 1
			}
			if rel := math.Abs(next-t[i]) / den; rel > maxRel {
				maxRel = rel
			}
			t[i] = next
		}
		obs.IterEvent(opt.Trace, "hitting-gs", it+1, maxRel)
		if maxRel <= opt.Tol {
			return t, true, nil
		}
	}
	return t, false, nil
}

// MeanFirstPassage returns Σ_i from[i]·t[i] given hitting times t and a
// start distribution (normalized internally over its positive mass).
func MeanFirstPassage(from, times []float64) (float64, error) {
	if len(from) != len(times) {
		return 0, errors.New("passage: length mismatch")
	}
	mass, acc := 0.0, 0.0
	for i, f := range from {
		if f < 0 {
			return 0, errors.New("passage: negative start mass")
		}
		mass += f
		acc += f * times[i]
	}
	if mass <= 0 {
		return 0, errors.New("passage: zero start mass")
	}
	return acc / mass, nil
}

// HitBeforeDense returns h[i] = P(reach set A before set B | X0 = i),
// solved exactly with dense LU. States in A report 1, in B report 0.
func HitBeforeDense(p *spmat.CSR, a, b []bool) ([]float64, error) {
	n, m := p.Dims()
	if n != m || len(a) != n || len(b) != n {
		return nil, errors.New("passage: dimension mismatch")
	}
	for i := range a {
		if a[i] && b[i] {
			return nil, fmt.Errorf("passage: state %d in both sets", i)
		}
	}
	idx := make([]int, n)
	nt := 0
	for i := range idx {
		if a[i] || b[i] {
			idx[i] = -1
		} else {
			idx[i] = nt
			nt++
		}
	}
	out := make([]float64, n)
	for i := range a {
		if a[i] {
			out[i] = 1
		}
	}
	if nt == 0 {
		return out, nil
	}
	sys := spmat.NewDense(nt, nt)
	rhs := make([]float64, nt)
	for i := 0; i < n; i++ {
		ri := idx[i]
		if ri < 0 {
			continue
		}
		sys.Set(ri, ri, 1)
		cols, vals := p.Row(i)
		for k, j := range cols {
			switch {
			case a[j]:
				rhs[ri] += vals[k]
			case b[j]:
				// contributes 0
			default:
				sys.Add(ri, idx[j], -vals[k])
			}
		}
	}
	lu, err := spmat.Factorize(sys)
	if err != nil {
		return nil, fmt.Errorf("passage: absorbing sets unreachable: %w", err)
	}
	h := lu.Solve(rhs)
	for i := 0; i < n; i++ {
		if ri := idx[i]; ri >= 0 {
			out[i] = h[ri]
		}
	}
	return out, nil
}

// FluxResult reports the stationary-flux analysis of a rare set.
type FluxResult struct {
	// Flux is the stationary probability per step of entering the target
	// from outside: Σ_{i∉T} π_i Σ_{j∈T} P_ij.
	Flux float64
	// OutsideMass is Σ_{i∉T} π_i.
	OutsideMass float64
	// MeanTimeBetween is the mean number of steps between entries into the
	// target while operating outside it: OutsideMass / Flux (conditional
	// renewal estimate). +Inf when the flux vanishes.
	MeanTimeBetween float64
	// TargetMass is π(T); by Kac's formula the mean return time to T is
	// 1/TargetMass.
	TargetMass float64
}

// SlipFlux computes the stationary entry flux into a target set, the
// paper's cycle-slip-rate measure in its numerically robust form: it needs
// only the stationary vector (available from the multigrid solve) and one
// pass over the matrix, and remains accurate when the mean time between
// slips is astronomically large.
func SlipFlux(p *spmat.CSR, pi []float64, target []bool) (FluxResult, error) {
	n, m := p.Dims()
	if n != m || len(pi) != n || len(target) != n {
		return FluxResult{}, errors.New("passage: dimension mismatch")
	}
	var res FluxResult
	for i := 0; i < n; i++ {
		if target[i] {
			res.TargetMass += pi[i]
			continue
		}
		res.OutsideMass += pi[i]
		if pi[i] == 0 {
			continue
		}
		cols, vals := p.Row(i)
		rowFlux := 0.0
		for k, j := range cols {
			if target[j] {
				rowFlux += vals[k]
			}
		}
		res.Flux += pi[i] * rowFlux
	}
	if res.Flux > 0 {
		res.MeanTimeBetween = res.OutsideMass / res.Flux
	} else {
		res.MeanTimeBetween = math.Inf(1)
	}
	return res, nil
}

// MulVecer is the column action y = P·x — the one operation the flux
// measure needs from a transition backend. Both *spmat.CSR and the
// matrix-free kron.Descriptor satisfy it.
type MulVecer interface {
	MulVec(y, x []float64)
}

// SlipFluxOp is SlipFlux for an implicit transition operator: the per-row
// target mass Σ_{j∈T} P_ij is a single column action on the target's
// indicator vector, so the flux of a matrix-free chain costs one shuffle
// product instead of a materialized matrix.
func SlipFluxOp(p MulVecer, pi []float64, target []bool) (FluxResult, error) {
	n := len(pi)
	if len(target) != n {
		return FluxResult{}, errors.New("passage: dimension mismatch")
	}
	ind := make([]float64, n)
	for i, t := range target {
		if t {
			ind[i] = 1
		}
	}
	rowMass := make([]float64, n)
	p.MulVec(rowMass, ind)
	var res FluxResult
	for i := 0; i < n; i++ {
		if target[i] {
			res.TargetMass += pi[i]
			continue
		}
		res.OutsideMass += pi[i]
		res.Flux += pi[i] * rowMass[i]
	}
	if res.Flux > 0 {
		res.MeanTimeBetween = res.OutsideMass / res.Flux
	} else {
		res.MeanTimeBetween = math.Inf(1)
	}
	return res, nil
}

// ExpectedVisitsDense returns the fundamental matrix N = (I − Q)⁻¹ of the
// chain absorbed on target: N[i][j] is the expected number of visits to
// non-target state j before absorption when starting at non-target state
// i. Row sums of N are the hitting times. Indices are compacted to
// non-target states in order; the mapping is returned alongside.
func ExpectedVisitsDense(p *spmat.CSR, target []bool) (*spmat.Dense, []int, error) {
	n, m := p.Dims()
	if n != m || len(target) != n {
		return nil, nil, errors.New("passage: dimension mismatch")
	}
	var states []int
	for i, b := range target {
		if !b {
			states = append(states, i)
		}
	}
	nt := len(states)
	if nt == 0 {
		return spmat.NewDense(0, 0), nil, nil
	}
	if nt == n {
		return nil, nil, errors.New("passage: empty target set")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	for k, s := range states {
		idx[s] = k
	}
	a := spmat.NewDense(nt, nt)
	for k, s := range states {
		a.Set(k, k, 1)
		cols, vals := p.Row(s)
		for kk, j := range cols {
			if rj := idx[j]; rj >= 0 {
				a.Add(k, rj, -vals[kk])
			}
		}
	}
	lu, err := spmat.Factorize(a)
	if err != nil {
		return nil, nil, fmt.Errorf("passage: singular fundamental system: %w", err)
	}
	nMat := spmat.NewDense(nt, nt)
	e := make([]float64, nt)
	for j := 0; j < nt; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := lu.Solve(e)
		for i := 0; i < nt; i++ {
			nMat.Set(i, j, col[i])
		}
	}
	return nMat, states, nil
}
