package passage

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

// Quasi-stationary analysis: conditioned on never having entered the
// target (slip) set, the loop state converges to the quasi-stationary
// distribution ν — the left Perron eigenvector of the substochastic
// matrix Q (the TPM restricted to non-target states):
//
//	ν·Q = λ·ν,  λ < 1,
//
// and the survival probability decays geometrically, P(T > k) ≈ C·λᵏ.
// 1−λ is the asymptotic slip hazard per bit, the sharp version of the
// stationary-flux estimate; ν is the ensemble a long-surviving receiver
// actually operates in (e.g. for the BER of links that are reset on
// slip).

// QuasiStationaryResult reports the quasi-stationary solve.
type QuasiStationaryResult struct {
	// Nu is the quasi-stationary distribution over ALL states (zero on
	// the target set), normalized to unit mass.
	Nu []float64
	// Lambda is the Perron eigenvalue of Q: the per-step survival
	// probability of the conditioned process.
	Lambda float64
	// HazardPerStep is 1 − Lambda, the asymptotic slip rate.
	HazardPerStep float64
	// Iterations is the number of power steps performed.
	Iterations int
	// Converged reports whether the eigenvector residual met tol.
	Converged bool
}

// QSOptions configures the quasi-stationary power iteration.
type QSOptions struct {
	// Tol is the 1-norm eigenvector residual threshold. Default 1e-12.
	Tol float64
	// MaxIter bounds the power steps. Default 100000.
	MaxIter int
	// Workers is the parallel team width for the x·Q products
	// (0 = GOMAXPROCS, 1 = serial; see spmat.Pool). Ignored when Pool
	// is set.
	Workers int
	// Pool optionally supplies an externally owned worker team; it is
	// never closed by the solver.
	Pool *spmat.Pool
	// Ctx, when non-nil, is checked at every sweep boundary: a canceled
	// or expired context stops the solve with a partial-progress error
	// wrapping ctx.Err(). It also carries the cost meter, when the caller
	// accounts the solve. Nil never cancels.
	Ctx context.Context
}

// QuasiStationary computes (ν, λ) by power iteration on the substochastic
// restriction of p to the complement of target, renormalizing each sweep
// (the normalization factor converges to λ).
func QuasiStationary(p *spmat.CSR, target []bool, tol float64, maxIter int) (QuasiStationaryResult, error) {
	return QuasiStationaryOpt(p, target, QSOptions{Tol: tol, MaxIter: maxIter})
}

// QuasiStationaryOpt is QuasiStationary with the full option set: it runs
// the per-sweep x·Q product on a parallel worker team and allocates only
// its two iterate buffers for the whole solve.
func QuasiStationaryOpt(p *spmat.CSR, target []bool, opt QSOptions) (QuasiStationaryResult, error) {
	n, m := p.Dims()
	if n != m {
		return QuasiStationaryResult{}, errors.New("passage: TPM must be square")
	}
	if len(target) != n {
		return QuasiStationaryResult{}, errors.New("passage: target length mismatch")
	}
	tol, maxIter := opt.Tol, opt.MaxIter
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	pool := opt.Pool
	if pool == nil {
		pool = spmat.NewPool(opt.Workers)
	}
	inside := 0
	for _, b := range target {
		if b {
			inside++
		}
	}
	if inside == 0 {
		return QuasiStationaryResult{}, errors.New("passage: empty target set")
	}
	if inside == n {
		return QuasiStationaryResult{}, errors.New("passage: no surviving states")
	}

	x := make([]float64, n)
	for i := range x {
		if !target[i] {
			x[i] = 1
		}
	}
	norm := 0.0
	for _, v := range x {
		norm += v
	}
	for i := range x {
		x[i] /= norm
	}
	y := make([]float64, n)
	res := QuasiStationaryResult{}
	// Cost accounting: one meter lookup per solve; the deferred
	// attribution also covers the cancellation return.
	meter := cost.FromContext(opt.Ctx)
	if meter != nil {
		stats0 := pool.Stats()
		meter.SampleGoroutines()
		defer func() {
			meter.AddSweeps(int64(res.Iterations))
			meter.AddPoolDelta(stats0, pool.Stats())
		}()
	}
	for it := 1; it <= maxIter; it++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				res.Nu = x
				res.HazardPerStep = 1 - res.Lambda
				return res, fmt.Errorf("passage: quasi-stationary solve stopped after %d sweeps: %w",
					res.Iterations, err)
			}
		}
		// y = x·Q: propagate through P, then zero the target states.
		pool.VecMul(p, y, x)
		lambda := 0.0
		for i := range y {
			if target[i] {
				y[i] = 0
			} else {
				lambda += y[i]
			}
		}
		if lambda <= 0 {
			return QuasiStationaryResult{}, errors.New("passage: survival mass vanished (target absorbs immediately)")
		}
		resid := 0.0
		inv := 1 / lambda
		for i := range y {
			y[i] *= inv
			resid += math.Abs(y[i] - x[i])
		}
		x, y = y, x
		res.Iterations = it
		res.Lambda = lambda
		if resid <= tol {
			res.Converged = true
			meter.AddResidual(resid)
			break
		}
		if it == maxIter {
			meter.AddResidual(resid)
		}
	}
	res.Nu = x
	res.HazardPerStep = 1 - res.Lambda
	return res, nil
}
