package passage

import (
	"errors"
	"math"

	"cdrstoch/internal/spmat"
)

// Quasi-stationary analysis: conditioned on never having entered the
// target (slip) set, the loop state converges to the quasi-stationary
// distribution ν — the left Perron eigenvector of the substochastic
// matrix Q (the TPM restricted to non-target states):
//
//	ν·Q = λ·ν,  λ < 1,
//
// and the survival probability decays geometrically, P(T > k) ≈ C·λᵏ.
// 1−λ is the asymptotic slip hazard per bit, the sharp version of the
// stationary-flux estimate; ν is the ensemble a long-surviving receiver
// actually operates in (e.g. for the BER of links that are reset on
// slip).

// QuasiStationaryResult reports the quasi-stationary solve.
type QuasiStationaryResult struct {
	// Nu is the quasi-stationary distribution over ALL states (zero on
	// the target set), normalized to unit mass.
	Nu []float64
	// Lambda is the Perron eigenvalue of Q: the per-step survival
	// probability of the conditioned process.
	Lambda float64
	// HazardPerStep is 1 − Lambda, the asymptotic slip rate.
	HazardPerStep float64
	// Iterations is the number of power steps performed.
	Iterations int
	// Converged reports whether the eigenvector residual met tol.
	Converged bool
}

// QuasiStationary computes (ν, λ) by power iteration on the substochastic
// restriction of p to the complement of target, renormalizing each sweep
// (the normalization factor converges to λ).
func QuasiStationary(p *spmat.CSR, target []bool, tol float64, maxIter int) (QuasiStationaryResult, error) {
	n, m := p.Dims()
	if n != m {
		return QuasiStationaryResult{}, errors.New("passage: TPM must be square")
	}
	if len(target) != n {
		return QuasiStationaryResult{}, errors.New("passage: target length mismatch")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	inside := 0
	for _, b := range target {
		if b {
			inside++
		}
	}
	if inside == 0 {
		return QuasiStationaryResult{}, errors.New("passage: empty target set")
	}
	if inside == n {
		return QuasiStationaryResult{}, errors.New("passage: no surviving states")
	}

	x := make([]float64, n)
	for i := range x {
		if !target[i] {
			x[i] = 1
		}
	}
	norm := 0.0
	for _, v := range x {
		norm += v
	}
	for i := range x {
		x[i] /= norm
	}
	y := make([]float64, n)
	res := QuasiStationaryResult{}
	for it := 1; it <= maxIter; it++ {
		// y = x·Q: propagate through P, then zero the target states.
		p.VecMul(y, x)
		lambda := 0.0
		for i := range y {
			if target[i] {
				y[i] = 0
			} else {
				lambda += y[i]
			}
		}
		if lambda <= 0 {
			return QuasiStationaryResult{}, errors.New("passage: survival mass vanished (target absorbs immediately)")
		}
		resid := 0.0
		inv := 1 / lambda
		for i := range y {
			y[i] *= inv
			resid += math.Abs(y[i] - x[i])
		}
		x, y = y, x
		res.Iterations = it
		res.Lambda = lambda
		if resid <= tol {
			res.Converged = true
			break
		}
	}
	res.Nu = x
	res.HazardPerStep = 1 - res.Lambda
	return res, nil
}
