package passage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdrstoch/internal/spmat"
)

// symmetricWalk builds a symmetric random walk on {0..n-1} with reflecting
// ends (used with absorbing analysis by passing target sets).
func symmetricWalk(n int) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			tr.Add(0, 0, 0.5)
			tr.Add(0, 1, 0.5)
		} else if i == n-1 {
			tr.Add(n-1, n-1, 0.5)
			tr.Add(n-1, n-2, 0.5)
		} else {
			tr.Add(i, i-1, 0.5)
			tr.Add(i, i+1, 0.5)
		}
	}
	return tr.ToCSR()
}

func randomStochasticCSR(n int, rng *rand.Rand) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			s += row[j]
		}
		for j := range row {
			tr.Add(i, j, row[j]/s)
		}
	}
	return tr.ToCSR()
}

// TestHittingTimesGamblersRuin: for the symmetric walk on {0..n-1} with the
// target {0, n-1}, the expected absorption time from i is i·(n-1-i)... for
// the *absorbed* walk. Our walk reflects at the ends, but states 0 and n-1
// are in the target so their rows never matter.
func TestHittingTimesGamblersRuin(t *testing.T) {
	n := 11
	p := symmetricWalk(n)
	target := make([]bool, n)
	target[0], target[n-1] = true, true
	times, err := HittingTimesDense(p, target)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i * (n - 1 - i))
		if math.Abs(times[i]-want) > 1e-9 {
			t.Errorf("t[%d] = %g, want %g", i, times[i], want)
		}
	}
}

func TestHittingTimesIterativeMatchesDense(t *testing.T) {
	n := 15
	p := symmetricWalk(n)
	target := make([]bool, n)
	target[0], target[n-1] = true, true
	dense, err := HittingTimesDense(p, target)
	if err != nil {
		t.Fatal(err)
	}
	iter, ok, err := HittingTimesIterative(p, target, IterOptions{Tol: 1e-12})
	if err != nil || !ok {
		t.Fatalf("iterative: ok=%v err=%v", ok, err)
	}
	for i := range dense {
		if math.Abs(dense[i]-iter[i]) > 1e-6*(1+dense[i]) {
			t.Errorf("t[%d]: dense %g vs iter %g", i, dense[i], iter[i])
		}
	}
}

func TestHittingTimesErrors(t *testing.T) {
	p := symmetricWalk(5)
	if _, err := HittingTimesDense(p, make([]bool, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := HittingTimesDense(p, make([]bool, 5)); err == nil {
		t.Error("empty target accepted")
	}
	all := []bool{true, true, true, true, true}
	times, err := HittingTimesDense(p, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range times {
		if v != 0 {
			t.Error("target states must have zero hitting time")
		}
	}
	if _, _, err := HittingTimesIterative(p, make([]bool, 5), IterOptions{}); err == nil {
		t.Error("iterative empty target accepted")
	}
}

func TestHittingTimesUnreachableTarget(t *testing.T) {
	// Two disconnected 2-cycles; target inside one of them only.
	tr := spmat.NewTriplet(4, 4)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(2, 3, 1)
	tr.Add(3, 2, 1)
	p := tr.ToCSR()
	target := []bool{true, false, false, false}
	if _, err := HittingTimesDense(p, target); err == nil {
		t.Error("unreachable target accepted by dense solver")
	}
}

func TestMeanFirstPassage(t *testing.T) {
	times := []float64{0, 10, 20}
	mfp, err := MeanFirstPassage([]float64{0, 0.5, 0.5}, times)
	if err != nil || math.Abs(mfp-15) > 1e-12 {
		t.Fatalf("MFP = %g err=%v", mfp, err)
	}
	// Unnormalized start mass is normalized internally.
	mfp2, err := MeanFirstPassage([]float64{0, 1, 1}, times)
	if err != nil || math.Abs(mfp2-15) > 1e-12 {
		t.Fatalf("MFP2 = %g", mfp2)
	}
	if _, err := MeanFirstPassage([]float64{1}, times); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanFirstPassage([]float64{0, 0, 0}, times); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := MeanFirstPassage([]float64{-1, 1, 1}, times); err == nil {
		t.Error("negative mass accepted")
	}
}

// TestHitBeforeGamblersRuin: P(hit n-1 before 0 | start i) = i/(n-1) for
// the symmetric walk.
func TestHitBeforeGamblersRuin(t *testing.T) {
	n := 9
	p := symmetricWalk(n)
	a := make([]bool, n)
	b := make([]bool, n)
	a[n-1] = true
	b[0] = true
	h, err := HitBeforeDense(p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) / float64(n-1)
		if math.Abs(h[i]-want) > 1e-10 {
			t.Errorf("h[%d] = %g, want %g", i, h[i], want)
		}
	}
}

func TestHitBeforeOverlappingSetsRejected(t *testing.T) {
	p := symmetricWalk(4)
	a := []bool{true, false, false, false}
	b := []bool{true, false, false, true}
	if _, err := HitBeforeDense(p, a, b); err == nil {
		t.Error("overlapping sets accepted")
	}
}

func TestSlipFluxMatchesKac(t *testing.T) {
	// On an ergodic chain, mean return time to T is 1/pi(T) (Kac). The
	// entry-flux estimate equals pi(outside)·E[time between entries]; for a
	// singleton target with no self-loop, flux = pi(T) exactly.
	rng := rand.New(rand.NewSource(7))
	p := randomStochasticCSR(8, rng)
	pi, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]bool, 8)
	target[3] = true
	res, err := SlipFlux(p, pi, target)
	if err != nil {
		t.Fatal(err)
	}
	// flux = sum_{i != 3} pi_i P_{i,3} = pi_3 - pi_3 P_{3,3} (stationarity).
	want := pi[3] * (1 - p.At(3, 3))
	if math.Abs(res.Flux-want) > 1e-12 {
		t.Errorf("flux = %g, want %g", res.Flux, want)
	}
	if math.Abs(res.TargetMass-pi[3]) > 1e-15 {
		t.Error("target mass wrong")
	}
	if math.Abs(res.OutsideMass-(1-pi[3])) > 1e-12 {
		t.Error("outside mass wrong")
	}
	if math.Abs(res.MeanTimeBetween-res.OutsideMass/res.Flux) > 1e-9 {
		t.Error("mean time inconsistent with flux")
	}
}

// TestSlipFluxAgreesWithHittingTimes cross-validates the two routes to the
// mean time between entries on a chain where both are computable: the
// renewal identity says E_π̃[T_hit] ≈ OutsideMass/Flux − 1 ≤ MFP within a
// factor close to one for sets entered from a thin boundary; here we only
// require order-of-magnitude agreement, since the two measures differ by
// the conditioning at entry.
func TestSlipFluxAgreesWithHittingTimes(t *testing.T) {
	// Biased walk with a rarely-visited right end as target.
	n := 20
	tr := spmat.NewTriplet(n, n)
	up, down := 0.2, 0.5
	for i := 0; i < n; i++ {
		stay := 1 - up - down
		switch i {
		case 0:
			tr.Add(0, 0, stay+down)
			tr.Add(0, 1, up)
		case n - 1:
			tr.Add(n-1, n-1, stay+up)
			tr.Add(n-1, n-2, down)
		default:
			tr.Add(i, i-1, down)
			tr.Add(i, i, stay)
			tr.Add(i, i+1, up)
		}
	}
	p := tr.ToCSR()
	pi, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]bool, n)
	target[n-1] = true
	res, err := SlipFlux(p, pi, target)
	if err != nil {
		t.Fatal(err)
	}
	times, err := HittingTimesDense(p, target)
	if err != nil {
		t.Fatal(err)
	}
	// Start from the stationary distribution conditioned outside the target.
	from := make([]float64, n)
	for i := range from {
		if !target[i] {
			from[i] = pi[i]
		}
	}
	mfp, err := MeanFirstPassage(from, times)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mfp / res.MeanTimeBetween
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("flux MTB %g vs MFP %g (ratio %g)", res.MeanTimeBetween, mfp, ratio)
	}
}

func TestExpectedVisitsRowSumsAreHittingTimes(t *testing.T) {
	n := 9
	p := symmetricWalk(n)
	target := make([]bool, n)
	target[0], target[n-1] = true, true
	nMat, states, err := ExpectedVisitsDense(p, target)
	if err != nil {
		t.Fatal(err)
	}
	times, err := HittingTimesDense(p, target)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range states {
		sum := 0.0
		for j := range states {
			sum += nMat.At(k, j)
		}
		if math.Abs(sum-times[s]) > 1e-9 {
			t.Errorf("row sum %g vs hitting time %g at state %d", sum, times[s], s)
		}
	}
}

// Property: on random ergodic chains with a singleton target, the dense
// hitting times satisfy the defining linear relation t_i = 1 + Σ Q t.
func TestQuickHittingTimesSatisfyEquation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		p := randomStochasticCSR(n, rng)
		target := make([]bool, n)
		target[rng.Intn(n)] = true
		times, err := HittingTimesDense(p, target)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if target[i] {
				if times[i] != 0 {
					return false
				}
				continue
			}
			cols, vals := p.Row(i)
			want := 1.0
			for k, j := range cols {
				if !target[j] {
					want += vals[k] * times[j]
				}
			}
			if math.Abs(times[i]-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
