package passage

import (
	"context"
	"errors"
	"testing"

	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

// trapChain builds the two-survivor-plus-trap chain used across the QS
// tests: survivors {0,1} leak mass eps per step into absorbing state 2.
func trapChain(a, b, eps float64) (*spmat.CSR, []bool) {
	tr := spmat.NewTriplet(3, 3)
	tr.Add(0, 0, (1-eps)*(1-a))
	tr.Add(0, 1, (1-eps)*a)
	tr.Add(0, 2, eps)
	tr.Add(1, 0, (1-eps)*b)
	tr.Add(1, 1, (1-eps)*(1-b))
	tr.Add(1, 2, eps)
	tr.Add(2, 2, 1)
	return tr.ToCSR(), []bool{false, false, true}
}

// TestQuasiStationaryFeedsMeter pins the QS cost wiring: sweeps,
// residual, and kernel counts land on the context's meter.
func TestQuasiStationaryFeedsMeter(t *testing.T) {
	p, target := trapChain(0.3, 0.2, 0.01)
	meter := cost.NewMeter()
	res, err := QuasiStationaryOpt(p, target, QSOptions{Tol: 1e-13, MaxIter: 100000,
		Ctx: cost.ContextWith(context.Background(), meter)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	rep := meter.Finish()
	if rep.Sweeps != int64(res.Iterations) {
		t.Errorf("meter sweeps = %d, want %d", rep.Sweeps, res.Iterations)
	}
	if rep.FinalResidual <= 0 || rep.FinalResidual > 1e-13 {
		t.Errorf("meter residual = %g", rep.FinalResidual)
	}
	if rep.Pool.SpMVs < int64(res.Iterations) {
		t.Errorf("meter SpMVs = %d, want >= %d sweeps", rep.Pool.SpMVs, res.Iterations)
	}
}

// TestQuasiStationaryHonorsContext checks the new cancellation support:
// a canceled context stops the solve with partial progress and an error
// wrapping ctx.Err, and the meter still receives the sweeps done so far.
func TestQuasiStationaryHonorsContext(t *testing.T) {
	p, target := trapChain(0.3, 0.2, 0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	meter := cost.NewMeter()
	res, err := QuasiStationaryOpt(p, target, QSOptions{Tol: 1e-13,
		Ctx: cost.ContextWith(ctx, meter)})
	if err == nil {
		t.Fatal("canceled solve returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if res.Converged {
		t.Error("canceled solve claims convergence")
	}
	if res.Nu == nil {
		t.Error("no partial distribution on cancellation")
	}
	rep := meter.Finish()
	if rep.Sweeps != int64(res.Iterations) {
		t.Errorf("meter sweeps = %d, want %d", rep.Sweeps, res.Iterations)
	}
}

// TestQuasiStationaryPlainContext ensures an uncanceled bare context
// changes nothing.
func TestQuasiStationaryPlainContext(t *testing.T) {
	p, target := trapChain(0.3, 0.2, 0.01)
	plain, err := QuasiStationary(p, target, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := QuasiStationaryOpt(p, target, QSOptions{Tol: 1e-13, MaxIter: 100000,
		Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != ctxed.Iterations || plain.Lambda != ctxed.Lambda {
		t.Errorf("bare context changed the solve: %+v vs %+v", plain, ctxed)
	}
}
