package passage

import (
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/spmat"
)

func TestQuasiStationaryTwoStatePlusTrap(t *testing.T) {
	// Survivor states {0,1} with uniform leak eps to trap state 2:
	// Q = (1−eps)·[[1−a,a],[b,1−b]], so λ = 1−eps and ν is the two-state
	// stationary vector.
	a, b, eps := 0.3, 0.2, 0.01
	tr := spmat.NewTriplet(3, 3)
	tr.Add(0, 0, (1-eps)*(1-a))
	tr.Add(0, 1, (1-eps)*a)
	tr.Add(0, 2, eps)
	tr.Add(1, 0, (1-eps)*b)
	tr.Add(1, 1, (1-eps)*(1-b))
	tr.Add(1, 2, eps)
	tr.Add(2, 2, 1)
	p := tr.ToCSR()
	target := []bool{false, false, true}
	res, err := QuasiStationary(p, target, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if math.Abs(res.Lambda-(1-eps)) > 1e-10 {
		t.Fatalf("lambda = %g, want %g", res.Lambda, 1-eps)
	}
	want := []float64{b / (a + b), a / (a + b), 0}
	for i := range want {
		if math.Abs(res.Nu[i]-want[i]) > 1e-9 {
			t.Fatalf("nu[%d] = %g, want %g", i, res.Nu[i], want[i])
		}
	}
}

func TestQuasiStationaryEigenRelation(t *testing.T) {
	// ν·Q = λ·ν on a random chain with a random small target set.
	rng := rand.New(rand.NewSource(61))
	n := 12
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			s += row[j]
		}
		for j := range row {
			tr.Add(i, j, row[j]/s)
		}
	}
	p := tr.ToCSR()
	target := make([]bool, n)
	target[2], target[9] = true, true
	res, err := QuasiStationary(p, target, 1e-13, 200000)
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
	// Check the eigen relation directly.
	y := make([]float64, n)
	p.VecMul(y, res.Nu)
	for i := 0; i < n; i++ {
		if target[i] {
			if res.Nu[i] != 0 {
				t.Fatalf("nu nonzero on target state %d", i)
			}
			continue
		}
		if math.Abs(y[i]-res.Lambda*res.Nu[i]) > 1e-10 {
			t.Fatalf("eigen relation broken at %d: %g vs %g", i, y[i], res.Lambda*res.Nu[i])
		}
	}
	if res.HazardPerStep <= 0 || res.HazardPerStep >= 1 {
		t.Fatalf("hazard %g", res.HazardPerStep)
	}
}

// TestQuasiStationaryHazardNearFlux: for a rarely-hit target, the QS
// hazard and the stationary entry flux agree to leading order.
func TestQuasiStationaryHazardNearFlux(t *testing.T) {
	// Biased random walk with a rare far end.
	n := 24
	tr := spmat.NewTriplet(n, n)
	up, down := 0.2, 0.5
	for i := 0; i < n; i++ {
		stay := 1 - up - down
		switch i {
		case 0:
			tr.Add(0, 0, stay+down)
			tr.Add(0, 1, up)
		case n - 1:
			tr.Add(n-1, n-1, stay+up)
			tr.Add(n-1, n-2, down)
		default:
			tr.Add(i, i-1, down)
			tr.Add(i, i, stay)
			tr.Add(i, i+1, up)
		}
	}
	p := tr.ToCSR()
	pi, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]bool, n)
	target[n-1] = true
	flux, err := SlipFlux(p, pi, target)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := QuasiStationary(p, target, 1e-13, 500000)
	if err != nil || !qs.Converged {
		t.Fatalf("%v %+v", err, qs)
	}
	ratio := qs.HazardPerStep * flux.MeanTimeBetween
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("hazard %g vs 1/MTB %g (product %g)",
			qs.HazardPerStep, 1/flux.MeanTimeBetween, ratio)
	}
}

func TestQuasiStationaryValidation(t *testing.T) {
	p := symmetricWalk(4)
	if _, err := QuasiStationary(p, []bool{true}, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := QuasiStationary(p, make([]bool, 4), 0, 0); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := QuasiStationary(p, []bool{true, true, true, true}, 0, 0); err == nil {
		t.Error("all-target accepted")
	}
}
