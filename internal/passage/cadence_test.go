package passage

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/spmat"
)

// cancelAtSweep cancels a context the first time it sees an "iter" event
// at or past trigger, recording everything — the differential
// cancellation pattern shared with the multigrid and markov suites.
type cancelAtSweep struct {
	*obs.Collector
	cancel  context.CancelFunc
	trigger int
	firedAt int
}

func (c *cancelAtSweep) Emit(e obs.Event) {
	c.Collector.Emit(e)
	if e.Kind == "iter" && e.Iter >= c.trigger && c.firedAt == 0 {
		c.firedAt = e.Iter
		c.cancel()
	}
}

// TestHittingTimesCancellationCadence checks the Gauss–Seidel hitting
// sweep observes ctx.Done() within one sweep of the cancellation: no
// "iter" event may follow the one that pulled the trigger.
func TestHittingTimesCancellationCadence(t *testing.T) {
	// Lazy cycle with one target: slow contraction keeps the sweep loop
	// running until the cancellation stops it.
	n := 64
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 0.5)
		tr.Add(i, (i+1)%n, 0.5)
	}
	p := tr.ToCSR()
	target := make([]bool, n)
	target[0] = true

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := &cancelAtSweep{Collector: obs.NewCollector(nil), cancel: cancel, trigger: 3}
	_, ok, err := HittingTimesIterative(p, target, IterOptions{
		Ctx: ctx, Trace: col, Tol: 1e-300, MaxIter: 500,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ok {
		t.Error("canceled solve reported converged")
	}
	if !strings.Contains(err.Error(), "stopped after") {
		t.Errorf("error lacks partial progress: %v", err)
	}
	if col.firedAt == 0 {
		t.Fatal("the trigger sweep never ran")
	}
	for _, e := range col.Events() {
		if e.Kind == "iter" && e.Iter > col.firedAt {
			t.Errorf("sweep traced after cancellation (trigger %d): %+v", col.firedAt, e)
		}
	}
}
