package passage

import (
	"context"
	"errors"
	"testing"

	"cdrstoch/internal/spmat"
)

func TestHittingTimesIterativeHonorsContext(t *testing.T) {
	// Lazy cycle with a single target state; long hitting times force many
	// sweeps, but the pre-canceled context must stop the very first one.
	n := 32
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 0.5)
		tr.Add(i, (i+1)%n, 0.5)
	}
	p := tr.ToCSR()
	target := make([]bool, n)
	target[0] = true

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := HittingTimesIterative(p, target, IterOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// Nil context still converges.
	times, ok, err := HittingTimesIterative(p, target, IterOptions{})
	if err != nil || !ok {
		t.Fatalf("nil-context solve failed: ok=%v err=%v", ok, err)
	}
	if times[0] != 0 || times[1] <= 0 {
		t.Errorf("unexpected hitting times: %v", times[:2])
	}
}
