package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"cdrstoch/internal/obs"
)

// batchValues is a smooth noise family: pattern-identical neighboring
// TPMs, so the batch path exercises value refresh and warm starts.
func batchValues() []float64 { return []float64{0.050, 0.052, 0.054} }

// TestSweepBatchWarmStartsAndCaches checks the continuation chain: every
// point solves, points after the first reuse the symbolic setup and warm
// start, each point lands in the cache under the analyze key (a later
// /v1/analyze of the same spec is a byte-identical hit), and repeating
// the batch is answered from cache without solving.
func TestSweepBatchWarmStartsAndCaches(t *testing.T) {
	reg := obs.NewRegistry()
	eng := NewEngine(EngineConfig{Registry: reg})
	spec := testSpec(t)

	body, err := eng.SweepBatch(context.Background(), spec, "stdnw", batchValues())
	if err != nil {
		t.Fatal(err)
	}
	var sweep SweepBody
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if !sweep.Batch {
		t.Error("batch response not flagged")
	}
	if len(sweep.Points) != len(batchValues()) {
		t.Fatalf("points = %d, want %d", len(sweep.Points), len(batchValues()))
	}
	for i, p := range sweep.Points {
		if p.Error != "" {
			t.Fatalf("point %d failed: %s", i, p.Error)
		}
		if len(p.Result) == 0 {
			t.Fatalf("point %d has no result", i)
		}
		if p.Cycles <= 0 {
			t.Errorf("point %d reports no cycles", i)
		}
		if wantWarm := i > 0; p.WarmStarted != wantWarm || p.ReusedSetup != wantWarm {
			t.Errorf("point %d: warm=%v reused=%v, want %v", i, p.WarmStarted, p.ReusedSetup, wantWarm)
		}
		if i > 0 && p.Cycles >= sweep.Points[0].Cycles {
			t.Errorf("warm point %d took %d cycles, cold point took %d",
				i, p.Cycles, sweep.Points[0].Cycles)
		}
		var ab AnalyzeBody
		if err := json.Unmarshal(p.Result, &ab); err != nil {
			t.Fatal(err)
		}
		if !ab.Converged || ab.Residual > 1e-12 {
			t.Errorf("point %d: converged=%v residual=%g", i, ab.Converged, ab.Residual)
		}
	}

	// The batch populated the analyze cache: a direct Analyze of a mid
	// point must hit and return the identical bytes.
	pSpec, err := applySweepParam(spec, "stdnw", batchValues()[1])
	if err != nil {
		t.Fatal(err)
	}
	got, cached, err := eng.Analyze(context.Background(), pSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("analyze after batch missed the cache")
	}
	if !bytes.Equal(got, sweep.Points[1].Result) {
		t.Error("analyze body differs from the batch point body")
	}

	// Repeating the batch must be pure cache.
	solvesBefore := reg.Snapshot().Counters["serve.solves"]
	again, err := eng.SweepBatch(context.Background(), spec, "stdnw", batchValues())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["serve.solves"]; got != solvesBefore {
		t.Errorf("repeat batch ran %d extra solves", got-solvesBefore)
	}
	var sweep2 SweepBody
	if err := json.Unmarshal(again, &sweep2); err != nil {
		t.Fatal(err)
	}
	for i := range sweep2.Points {
		if !sweep2.Points[i].Cached {
			t.Errorf("repeat point %d not from cache", i)
		}
	}
}

// TestSweepBatchMatchesFanOut checks batch and fan-out sweeps agree on
// the physics: same BER per point to solver accuracy.
func TestSweepBatchMatchesFanOut(t *testing.T) {
	spec := testSpec(t)
	batchBody, err := NewEngine(EngineConfig{}).SweepBatch(context.Background(), spec, "stdnw", batchValues())
	if err != nil {
		t.Fatal(err)
	}
	fanBody, err := NewEngine(EngineConfig{}).Sweep(context.Background(), spec, "stdnw", batchValues())
	if err != nil {
		t.Fatal(err)
	}
	var batch, fan SweepBody
	if err := json.Unmarshal(batchBody, &batch); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fanBody, &fan); err != nil {
		t.Fatal(err)
	}
	for i := range batch.Points {
		var b, f AnalyzeBody
		if err := json.Unmarshal(batch.Points[i].Result, &b); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(fan.Points[i].Result, &f); err != nil {
			t.Fatal(err)
		}
		diff := b.BER - f.BER
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(f.BER+1e-300) {
			t.Errorf("point %d: batch BER %g vs fan-out %g", i, b.BER, f.BER)
		}
	}
}

// TestSweepBatchPerPointErrors checks a bad point fails in place without
// sinking the chain, and request-level validation still rejects early.
func TestSweepBatchPerPointErrors(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	body, err := eng.SweepBatch(context.Background(), testSpec(t), "counter", []float64{2, 2.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	var sweep SweepBody
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Points[0].Error != "" || sweep.Points[2].Error != "" {
		t.Errorf("valid points failed: %+v", sweep.Points)
	}
	if !strings.Contains(sweep.Points[1].Error, "positive integer") {
		t.Errorf("bad point error = %q", sweep.Points[1].Error)
	}
	if _, err := eng.SweepBatch(context.Background(), testSpec(t), "bogus", []float64{1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown param: %v", err)
	}
	if _, err := eng.SweepBatch(context.Background(), testSpec(t), "stdnw", nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty family: %v", err)
	}
}

// TestServerSweepBatchEndpoint drives /v1/sweep with batch: true through
// HTTP and checks the response shape plus the X-Solve-Cost-Warmstart
// header (the last solved point of a smooth family is warm-started).
func TestServerSweepBatchEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Spec: testSpec(t), Param: "stdnw", Values: batchValues(), Batch: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sweep SweepBody
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if !sweep.Batch || len(sweep.Points) != len(batchValues()) {
		t.Fatalf("sweep = %+v", sweep)
	}
	if !sweep.Points[len(sweep.Points)-1].WarmStarted {
		t.Error("last point not warm-started")
	}
	if got := resp.Header.Get("X-Solve-Cost-Warmstart"); got != "1" {
		t.Errorf("X-Solve-Cost-Warmstart = %q, want 1", got)
	}
}
