package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/progress"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	Event string
	Data  []byte
}

// readSSE consumes a text/event-stream body until the predicate says
// stop, the stream ends, or the deadline passes, returning the frames
// and the number of comment (heartbeat) lines seen.
func readSSE(t *testing.T, resp *http.Response, deadline time.Duration, stop func(sseFrame) bool) ([]sseFrame, int) {
	t.Helper()
	timer := time.AfterFunc(deadline, func() { resp.Body.Close() })
	defer timer.Stop()
	var frames []sseFrame
	comments := 0
	cur := sseFrame{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			comments++
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Event == "" && cur.Data == nil {
				continue
			}
			frames = append(frames, cur)
			if stop(cur) {
				return frames, comments
			}
			cur = sseFrame{}
		}
	}
	return frames, comments
}

// TestJobEventsSSE proves the streaming contract on a batched sweep: the
// stream yields one "start" and one "progress" event per solved point,
// heartbeat comments while the job sits queued, and a terminal "done"
// frame carrying the finished JobView with its queue timestamps.
func TestJobEventsSSE(t *testing.T) {
	// The dequeue delay holds the job queued for 150ms so the SSE client
	// subscribes before the first point solves (and heartbeats fire while
	// nothing else is flowing); the cycle delay keeps each point slow
	// enough that iter events interleave with reads.
	_, url, _ := newChaosServer(t, "jobs.dequeue:delay:ms=150:n=1,multigrid.cycle:delay:ms=1",
		ServerConfig{EventsHeartbeat: 20 * time.Millisecond})

	req := sweepRequest{Spec: testSpec(t), Param: "counter", Values: []float64{1, 2, 4}, Async: true, Batch: true}
	resp, body := postJSON(t, url+"/v1/sweep", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(url + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	frames, comments := readSSE(t, stream, 30*time.Second, func(f sseFrame) bool { return f.Event == "done" })
	count := map[string]int{}
	for _, f := range frames {
		count[f.Event]++
	}
	if count["start"] != 3 || count["progress"] != 3 {
		t.Fatalf("start/progress counts = %d/%d, want 3/3 (events: %v)", count["start"], count["progress"], count)
	}
	if count["done"] != 1 {
		t.Fatalf("done count = %d, want 1", count["done"])
	}
	if count["iter"] == 0 {
		t.Fatalf("no iter events streamed (events: %v)", count)
	}
	if comments == 0 {
		t.Fatal("no heartbeat comments on the stream")
	}

	// Every progress frame is a parseable solver event stamped with the
	// job's trace; the done frame is the terminal JobView with both queue
	// timestamps.
	for _, f := range frames {
		if f.Event != "progress" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(f.Data, &e); err != nil {
			t.Fatalf("unparseable progress frame %s: %v", f.Data, err)
		}
		if e.Kind != "solve_end" || e.Trace != view.TraceID {
			t.Fatalf("progress frame kind=%q trace=%q, want solve_end under %q", e.Kind, e.Trace, view.TraceID)
		}
	}
	var done JobView
	if err := json.Unmarshal(frames[len(frames)-1].Data, &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("terminal status = %q, want %q", done.Status, StatusDone)
	}
	if done.QueuedAt == "" || done.StartedAt == "" {
		t.Fatalf("terminal view missing timestamps: queued_at=%q started_at=%q", done.QueuedAt, done.StartedAt)
	}
}

// TestJobEventsSSEDisconnect pins the teardown contract under -race: a
// client that walks away mid-stream releases its handler goroutine and
// subscription instead of leaking them against the running solve.
func TestJobEventsSSEDisconnect(t *testing.T) {
	s, url, reg := newChaosServer(t, "multigrid.cycle:delay:ms=20",
		ServerConfig{EventsHeartbeat: 20 * time.Millisecond})

	spec := testSpec(t)
	spec.TransitionDensity = 0.45 // fresh spec: never cached by other tests
	resp, body := postJSON(t, url+"/v1/analyze", solveRequest{Spec: spec, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/jobs/"+view.ID+"/events", nil)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame so the handler is demonstrably mid-stream, then
	// hang up.
	readSSE(t, stream, 10*time.Second, func(sseFrame) bool { return true })
	cancel()
	stream.Body.Close()

	// The handler notices the disconnect at its next event or heartbeat
	// and exits; subscriber count drains to zero and the goroutine count
	// settles back (slack for the still-running solve and test plumbing).
	deadline := time.Now().Add(5 * time.Second)
	for {
		subs := reg.Counter("serve.sse_disconnects").Value()
		if subs >= 1 && runtime.NumGoroutine() <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handler did not tear down: disconnects=%d goroutines=%d (baseline %d)",
				subs, runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = s
}

// TestWatchdogStallInjection is the chaos proof of the watchdog: a
// solver wedged by an injected delay at the multigrid.cycle seam is
// classified stalled within the configured window, the verdict event
// carries the job's trace ID, and — with cancel-on-stall armed — the
// hopeless solve is reaped so the job terminates instead of burning its
// full deadline.
func TestWatchdogStallInjection(t *testing.T) {
	s, url, reg := newChaosServer(t, "multigrid.cycle:delay:d=30s:after=3",
		ServerConfig{
			StallWindow:      120 * time.Millisecond,
			WatchdogInterval: 20 * time.Millisecond,
			CancelOnStall:    true,
			JobRetries:       -1,
		})

	spec := testSpec(t)
	spec.CounterLen = 3 // fresh spec: the solve must actually run
	resp, body := postJSON(t, url+"/v1/analyze", solveRequest{Spec: spec, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	// The stall verdict must land in the watchdog ring, stamped with the
	// job's trace, within a couple of windows.
	var verdict obs.Event
	deadline := time.Now().Add(5 * time.Second)
	for verdict.Kind == "" {
		for _, e := range s.Progress().Ring().Tail(-1) {
			if e.Kind == "watchdog" && e.Name == progress.StateStalled && e.Trace == view.TraceID {
				verdict = e
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stalled verdict for trace %s in watchdog ring: %+v",
				view.TraceID, s.Progress().Ring().Tail(-1))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if verdict.Reason == "" {
		t.Fatalf("stalled verdict carries no reason: %+v", verdict)
	}

	// Cancel-on-stall reaps the solve: the job reaches a terminal state
	// long before the 120s sync default or the 30s injected sleep.
	deadline = time.Now().Add(10 * time.Second)
	for {
		v, ok := s.jobs.Get(view.ID)
		if !ok {
			t.Fatalf("job %s evicted while awaited", view.ID)
		}
		if terminalStatus(v.Status) {
			if v.Status == StatusDone {
				t.Fatalf("wedged job finished clean: %+v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after stall cancel", v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if got := reg.Counter("progress.solves_stalled_total").Value(); got < 1 {
		t.Errorf("progress.solves_stalled_total = %d, want >= 1", got)
	}
	if got := reg.Counter("watchdog.cancels_total").Value(); got < 1 {
		t.Errorf("watchdog.cancels_total = %d, want >= 1", got)
	}
}

// TestDebugProgressLiveETA proves /debug/progress shows a solve
// in-flight with a finite ETA while it runs, in both the JSON and the
// Accept-negotiated table form, and that the running job's poll view
// carries the same live progress.
func TestDebugProgressLiveETA(t *testing.T) {
	s, url, _ := newChaosServer(t, "multigrid.cycle:delay:ms=25", ServerConfig{})

	spec := testSpec(t)
	spec.CounterLen = 1 // fresh spec for this test
	resp, body := postJSON(t, url+"/v1/analyze", solveRequest{Spec: spec, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	type progressResp struct {
		Count  int                      `json:"count"`
		Solves []progress.SolveProgress `json:"solves"`
	}
	var live progress.SolveProgress
	deadline := time.Now().Add(10 * time.Second)
	for live.EtaSeconds == nil {
		r, b := getJSON(t, url+"/debug/progress")
		if r.StatusCode != http.StatusOK {
			t.Fatalf("/debug/progress: %d %s", r.StatusCode, b)
		}
		var pr progressResp
		if err := json.Unmarshal(b, &pr); err != nil {
			t.Fatalf("unparseable /debug/progress body %s: %v", b, err)
		}
		for _, sp := range pr.Solves {
			if sp.Trace == view.TraceID && sp.EtaSeconds != nil {
				live = sp
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no in-flight solve with finite ETA for trace %s (last body: %s)", view.TraceID, b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if live.State != progress.StateProgressing {
		t.Errorf("live state = %q, want %q", live.State, progress.StateProgressing)
	}
	if *live.EtaSeconds < 0 {
		t.Errorf("negative ETA %v", *live.EtaSeconds)
	}
	if live.Iter <= 0 || live.Residual <= 0 {
		t.Errorf("implausible live view: %+v", live)
	}

	// The running job's poll view carries the same live progress block.
	if r, b := getJSON(t, url+"/v1/jobs/"+view.ID); r.StatusCode == http.StatusOK {
		var jv JobView
		if err := json.Unmarshal(b, &jv); err != nil {
			t.Fatal(err)
		}
		if jv.Status == StatusRunning && jv.Progress == nil {
			t.Errorf("running job view has no progress block: %s", b)
		}
	}

	// Accept: text/plain renders the human table.
	req, _ := http.NewRequest(http.MethodGet, url+"/debug/progress", nil)
	req.Header.Set("Accept", "text/plain")
	tr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	table, err := io.ReadAll(tr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "solve(s) in flight") {
		t.Fatalf("table form missing summary line: %q", table)
	}

	// Drain: don't leave the slow solve running into other tests.
	waitTerminal(t, s, view.ID, 60*time.Second)
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, s *Server, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, ok := s.jobs.Get(id)
		if !ok || terminalStatus(v.Status) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at drain deadline", id, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
