package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"cdrstoch/internal/multigrid"
)

// getWithHeaders issues a GET with extra headers and returns the response
// and its body.
func getWithHeaders(t *testing.T, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServerMetricsContentNegotiation pins the /metrics contract: a
// Prometheus scrape Accept header gets the text exposition (with
// histogram bucket/sum/count series), an explicit application/json or a
// bare GET keeps the byte-stable JSON snapshot.
func TestServerMetricsContentNegotiation(t *testing.T) {
	_, ts, reg := newTestServer(t, ServerConfig{})
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)}) // populate histograms

	resp, body := getWithHeaders(t, ts.URL+"/metrics", map[string]string{
		"Accept": "text/plain; version=0.0.4",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_solves counter",
		"serve_solves 1",
		"# TYPE serve_solve_ms histogram",
		`serve_solve_ms_bucket{le="+Inf"}`,
		"serve_solve_ms_sum",
		"serve_solve_ms_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if json.Valid(body) {
		t.Error("Prometheus exposition should not be JSON")
	}

	// Explicit JSON wish wins even when text/plain also appears.
	resp, body = getWithHeaders(t, ts.URL+"/metrics", map[string]string{
		"Accept": "application/json, text/plain",
	})
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	want, err := reg.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripUptime(body), stripUptime(want)) {
		t.Errorf("negotiated JSON diverges from SnapshotJSON")
	}
}

// TestServerTraceIDMiddleware checks that every response carries a trace
// ID and that a client-supplied one is adopted rather than replaced.
func TestServerTraceIDMiddleware(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})

	resp, _ := mustGet(t, ts.URL+"/healthz")
	if got := resp.Header.Get("X-Trace-Id"); len(got) != 16 {
		t.Errorf("minted X-Trace-Id = %q, want 16 hex chars", got)
	}

	resp, _ = getWithHeaders(t, ts.URL+"/healthz", map[string]string{"X-Trace-Id": "client-trace-0001"})
	if got := resp.Header.Get("X-Trace-Id"); got != "client-trace-0001" {
		t.Errorf("adopted X-Trace-Id = %q", got)
	}
}

// TestServerUnconvergedCarriesFlight is the postmortem acceptance test: a
// solve forced to fail convergence (one multigrid cycle) answers 5xx with
// the request's trace ID and a flight-recorder tail whose every event is
// stamped with that trace, and the dump also lands in the error log.
func TestServerUnconvergedCarriesFlight(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts, reg := newTestServer(t, ServerConfig{
		Engine:   EngineConfig{Multigrid: multigrid.Config{MaxCycles: 1}},
		ErrorLog: log.New(&logBuf, "", 0),
	})

	b, err := json.Marshal(solveRequest{Spec: testSpec(t)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "unconv-trace-0001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}

	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "did not converge") {
		t.Errorf("error = %q, want non-convergence", eb.Error)
	}
	if eb.TraceID != "unconv-trace-0001" {
		t.Errorf("trace_id = %q", eb.TraceID)
	}
	if len(eb.Flight) == 0 {
		t.Fatal("error response carries no flight tail")
	}
	for i, e := range eb.Flight {
		if e.Trace != "unconv-trace-0001" {
			t.Errorf("flight event %d has trace %q", i, e.Trace)
		}
	}
	if got := reg.Snapshot().Counters["serve.unconverged"]; got != 1 {
		t.Errorf("serve.unconverged = %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["serve.flight_dumps"]; got != 1 {
		t.Errorf("serve.flight_dumps = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "unconv-trace-0001") {
		t.Error("error log carries no flight dump")
	}
}

// TestServerJobTraceEndpoint submits an async solve under a known trace
// ID and reads its solver events back from /v1/jobs/{id}/trace.
func TestServerJobTraceEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})

	b, err := json.Marshal(solveRequest{Spec: testSpec(t), Async: true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "job-trace-000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d %s", resp.StatusCode, body)
	}
	var job JobView
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.TraceID != "job-trace-000001" {
		t.Fatalf("202 trace_id = %q", job.TraceID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for job.Status != StatusDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.Status)
		}
		time.Sleep(time.Millisecond)
		_, body = mustGet(t, ts.URL+"/v1/jobs/"+job.ID)
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
	}

	resp, body = mustGet(t, ts.URL+"/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace GET: %d %s", resp.StatusCode, body)
	}
	var tr jobTraceBody
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "job-trace-000001" || tr.Status != StatusDone {
		t.Errorf("trace body = %+v", tr)
	}
	if tr.Retained == 0 || len(tr.Events) != tr.Retained {
		t.Fatalf("retained=%d events=%d; cache-miss solve must leave events", tr.Retained, len(tr.Events))
	}
	for i, e := range tr.Events {
		if e.Trace != "job-trace-000001" {
			t.Errorf("event %d trace = %q", i, e.Trace)
		}
	}

	resp, _ = mustGet(t, ts.URL+"/v1/jobs/job-999999/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

// TestServerDebugFlight checks the always-on ring is readable on demand.
func TestServerDebugFlight(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)})

	resp, body := mustGet(t, ts.URL+"/debug/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var fb flightBody
	if err := json.Unmarshal(body, &fb); err != nil {
		t.Fatal(err)
	}
	if len(fb.Events) == 0 {
		t.Error("flight ring empty after a cache-miss solve")
	}
	for i, e := range fb.Events {
		if e.Trace == "" {
			t.Errorf("flight event %d unstamped: %+v", i, e)
		}
	}
}

// TestServerFlightAlwaysOnWithNilTracer proves the recorder works with no
// configured tracer at all — the tee keeps the ring populated.
func TestServerFlightAlwaysOnWithNilTracer(t *testing.T) {
	s, ts, _ := newTestServer(t, ServerConfig{Tracer: nil})
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)})
	if got := len(s.flight.Snapshot()); got == 0 {
		t.Error("flight recorder empty despite a solve")
	}
	// A cache hit must add no solver events: silence is the cache proof.
	before := len(s.flight.Snapshot())
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)})
	if got := len(s.flight.Snapshot()); got != before {
		t.Errorf("cache hit grew the flight ring %d -> %d", before, got)
	}
}
