package serve

import (
	"sync"

	"cdrstoch/internal/faults"
)

// call is one in-flight computation shared by every waiter on a key.
type call struct {
	done    chan struct{}
	body    []byte
	err     error
	waiters int // extra callers that joined this flight (guarded by group.mu)
}

// group coalesces concurrent computations by key: the first caller runs
// fn, later callers with the same key block on the same result. Unlike
// golang.org/x/sync/singleflight (which the module deliberately does not
// depend on) the flight is forgotten as soon as it completes — subsequent
// callers consult the result cache instead, so a completed flight never
// pins a stale value.
type group struct {
	mu sync.Mutex
	m  map[string]*call
	// faults arms the singleflight.leader injection point, hit the moment
	// a caller becomes the flight leader. Nil (the default) is disabled.
	faults *faults.Injector
}

// do runs fn once per key among concurrent callers. It reports the body,
// whether this caller shared another caller's flight, and fn's error.
//
// The flight always completes: fn runs behind the panic shield and the
// key removal plus done-channel close are unconditional, so a panicking
// leader surfaces a *PanicError to every waiter instead of stranding
// them on a channel that never closes.
func (g *group) do(key string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.body, true, c.err
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.err = shield(func() error {
		if err := g.faults.Fire("singleflight.leader"); err != nil {
			return err
		}
		var err error
		c.body, err = fn()
		return err
	})

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, false, c.err
}

// joined reports how many extra callers are sharing the flight on key;
// test instrumentation.
func (g *group) joined(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
