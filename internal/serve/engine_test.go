package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/obs"
)

func TestAnalyzeCacheHitIsByteIdentical(t *testing.T) {
	reg := obs.NewRegistry()
	col := obs.NewCollector(nil)
	eng := NewEngine(EngineConfig{Registry: reg, Tracer: col})
	ctx := context.Background()

	first, cached, err := eng.Analyze(ctx, testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request reported a cache hit on a cold cache")
	}
	if n := len(col.Events()); n == 0 {
		t.Fatal("cache-miss solve emitted no trace events")
	}
	col.Reset()

	second, cached, err := eng.Analyze(ctx, testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second identical request missed the cache")
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached body differs:\n%s\nvs\n%s", first, second)
	}
	// The cache hit must not have touched a solver: no trace events.
	if evs := col.Events(); len(evs) != 0 {
		t.Errorf("cache hit emitted %d solver trace events, want 0: %+v", len(evs), evs[0])
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.cache_hits"]; got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
	if got := snap.Counters["serve.solves"]; got != 1 {
		t.Errorf("solves = %d, want 1", got)
	}

	var body AnalyzeBody
	if err := json.Unmarshal(first, &body); err != nil {
		t.Fatal(err)
	}
	if body.States != 153 {
		t.Errorf("states = %d, want 153", body.States)
	}
	if !body.Converged || body.BER <= 0 || body.BER >= 1 {
		t.Errorf("implausible analysis: converged=%v ber=%g", body.Converged, body.BER)
	}
	if len(body.SpecKey) != 64 {
		t.Errorf("spec key %q is not a sha256 hex digest", body.SpecKey)
	}
}

func TestAnalyzeConcurrentIdenticalSpecsSolveOnce(t *testing.T) {
	reg := obs.NewRegistry()
	eng := NewEngine(EngineConfig{Registry: reg})
	spec := testSpec(t)

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := eng.Analyze(context.Background(), spec)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("goroutine %d saw a different body", i)
		}
	}
	// Whether a caller joined the flight or arrived after completion and
	// hit the cache, exactly one solve must have run.
	if got := reg.Snapshot().Counters["serve.solves"]; got != 1 {
		t.Errorf("solves = %d, want 1 (singleflight + cache dedup)", got)
	}
}

// TestEngineConcurrentMixedSpecs is the race-detector workout demanded by
// the acceptance criteria: ≥32 goroutines with a mix of specs, asserting
// per-spec byte identity at the end.
func TestEngineConcurrentMixedSpecs(t *testing.T) {
	reg := obs.NewRegistry()
	eng := NewEngine(EngineConfig{Registry: reg, CacheEntries: 8, MaxConcurrent: 4})
	specs := testSpecVariants(t)

	const goroutines = 32
	type result struct {
		spec int
		body []byte
	}
	results := make([]result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			si := i % len(specs)
			var (
				body []byte
				err  error
			)
			if i%8 == 7 { // sprinkle slip requests into the mix
				body, _, err = eng.Slip(context.Background(), specs[si])
				si = -1 - si // slip bodies compare within their own group
			} else {
				body, _, err = eng.Analyze(context.Background(), specs[si])
			}
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = result{spec: si, body: body}
		}(i)
	}
	wg.Wait()

	canonical := map[int][]byte{}
	for i, r := range results {
		if r.body == nil {
			continue
		}
		if prev, ok := canonical[r.spec]; ok {
			if !bytes.Equal(prev, r.body) {
				t.Errorf("goroutine %d: body for spec group %d differs", i, r.spec)
			}
		} else {
			canonical[r.spec] = r.body
		}
	}
}

// cancelOnIter cancels a context as soon as the traced solver reports
// reaching a given cycle, while still recording every event.
type cancelOnIter struct {
	*obs.Collector
	cancel context.CancelFunc
	cycle  int
}

func (c *cancelOnIter) Emit(e obs.Event) {
	c.Collector.Emit(e)
	if e.Kind == "iter" && e.Iter >= c.cycle {
		c.cancel()
	}
}

// TestAnalyzeCancelStopsWithinOneCycle pins the cancellation contract end
// to end: canceling the request context mid-solve stops multigrid within
// one cycle, observable in the obs trace.
func TestAnalyzeCancelStopsWithinOneCycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tracer := &cancelOnIter{Collector: obs.NewCollector(nil), cancel: cancel, cycle: 2}
	eng := NewEngine(EngineConfig{
		Tracer: tracer,
		// An unreachable tolerance keeps the solver iterating until the
		// cancellation lands.
		Multigrid: multigrid.Config{Tol: 1e-300, MaxCycles: 10000},
	})

	_, _, err := eng.Analyze(ctx, testSpec(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "stopped after") {
		t.Errorf("error lacks partial progress: %v", err)
	}
	maxCycle := 0
	for _, e := range tracer.Events() {
		if (e.Kind == "iter" || e.Kind == "level") && e.Iter > maxCycle {
			maxCycle = e.Iter
		}
	}
	if maxCycle > tracer.cycle+1 {
		t.Errorf("solver ran to cycle %d after cancellation at cycle %d", maxCycle, tracer.cycle)
	}
}

func TestAnalyzeRejectsInvalidSpec(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	spec := testSpec(t)
	spec.CounterLen = 0
	_, _, err := eng.Analyze(context.Background(), spec)
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
}

func TestSlipBodyShape(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	body, _, err := eng.Slip(context.Background(), testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var resp SlipResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.States != 153 {
		t.Errorf("states = %d, want 153", resp.States)
	}
	if resp.Slip.TargetMass < 0 || resp.Slip.TargetMass > 1 {
		t.Errorf("target mass %g outside [0,1]", resp.Slip.TargetMass)
	}
}

func TestSweepFansOutAndReusesCache(t *testing.T) {
	reg := obs.NewRegistry()
	eng := NewEngine(EngineConfig{Registry: reg})
	spec := testSpec(t)

	body, err := eng.Sweep(context.Background(), spec, "counter", []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var sweep SweepBody
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(sweep.Points))
	}
	for i, p := range sweep.Points {
		if p.Error != "" {
			t.Errorf("point %d failed: %s", i, p.Error)
		}
		if len(p.Result) == 0 {
			t.Errorf("point %d has no result", i)
		}
	}

	// Re-sweeping the same family must be answered from the cache alone.
	solvesBefore := reg.Snapshot().Counters["serve.solves"]
	again, err := eng.Sweep(context.Background(), spec, "counter", []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["serve.solves"]; got != solvesBefore {
		t.Errorf("repeat sweep ran %d extra solves, want 0", got-solvesBefore)
	}
	var sweep2 SweepBody
	if err := json.Unmarshal(again, &sweep2); err != nil {
		t.Fatal(err)
	}
	for i := range sweep2.Points {
		if !sweep2.Points[i].Cached {
			t.Errorf("repeat sweep point %d not served from cache", i)
		}
		if !bytes.Equal(sweep2.Points[i].Result, sweep.Points[i].Result) {
			t.Errorf("repeat sweep point %d body differs", i)
		}
	}
}

func TestSweepRejectsUnknownParam(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	_, err := eng.Sweep(context.Background(), testSpec(t), "bogus", []float64{1})
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
	_, err = eng.Sweep(context.Background(), testSpec(t), "counter", nil)
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty sweep: err = %v, want ErrBadRequest", err)
	}
}

func TestSweepReportsPerPointErrors(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	body, err := eng.Sweep(context.Background(), testSpec(t), "counter", []float64{2, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	var sweep SweepBody
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Points[0].Error != "" {
		t.Errorf("valid point failed: %s", sweep.Points[0].Error)
	}
	if !strings.Contains(sweep.Points[1].Error, "positive integer") {
		t.Errorf("fractional counter point error = %q, want complaint", sweep.Points[1].Error)
	}
}
