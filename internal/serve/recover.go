package serve

import (
	"errors"
	"fmt"
	"runtime/debug"

	"cdrstoch/internal/core"
	"cdrstoch/internal/faults"
)

// PanicError wraps a panic recovered at a service boundary — the
// singleflight leader, an async job, a sweep point, or an HTTP handler.
// Converting panics into typed errors is what keeps a panicking solve a
// failed request instead of a dead process; the HTTP layer maps it to
// 500 with the trace ID and flight tail attached like any other solver
// failure.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// Unwrap exposes an error panic value (e.g. an injected *faults.Error)
// to errors.Is/As through the wrapper.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// shield runs fn, converting a panic into a *PanicError. It is the one
// recovery primitive every solver-side boundary shares, so the guarantee
// "a panicking solve fails that solve, not the process" has a single
// implementation to audit.
func shield(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// transientErr classifies a failure for the retry policy: transient
// failures (a solve that ran out of cycles, or an injected fault not
// marked permanent) are worth a bounded retry with backoff; everything
// else — bad requests, cancellations, panics, permanent injections — is
// not. Panics are permanent even when the panic value is a transient
// injected error: a panic's partial execution cannot be assumed safe to
// repeat blindly, and the chaos suite asserts the job fails cleanly
// instead.
func transientErr(err error) bool {
	var pe *PanicError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, core.ErrUnconverged) {
		return true
	}
	var fe *faults.Error
	if errors.As(err, &fe) {
		return !fe.Permanent
	}
	return false
}
