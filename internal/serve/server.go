package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/obs"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Engine configures the solve/cache layer. Its Registry and Tracer
	// default to the server-level ones when unset.
	Engine EngineConfig
	// Workers is the async job worker count. Default 2.
	Workers int
	// QueueDepth bounds the async queue; a full queue answers 429.
	// Default 8.
	QueueDepth int
	// SyncTimeout caps synchronous request handling. Solves that exceed it
	// are canceled at the next solver iteration boundary and the request
	// answers 504. Default 120s.
	SyncTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Registry receives all serve.* and http metrics; also the body of
	// /metrics. May be nil.
	Registry *obs.Registry
	// Tracer receives solver events for cache-miss solves. May be nil.
	Tracer obs.Tracer
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Engine.Registry == nil {
		c.Engine.Registry = c.Registry
	}
	if c.Engine.Tracer == nil {
		c.Engine.Tracer = c.Tracer
	}
	return c
}

// Server wires the Engine and the Jobs queue to HTTP. Construct with
// NewServer, mount Handler on an http.Server, and Close during shutdown
// (after http.Server.Shutdown) to drain queued jobs.
type Server struct {
	cfg    ServerConfig
	engine *Engine
	jobs   *Jobs
	reg    *obs.Registry
}

// NewServer returns a ready Server.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:    cfg,
		engine: NewEngine(cfg.Engine),
		reg:    cfg.Registry,
		jobs:   NewJobs(cfg.Workers, cfg.QueueDepth, cfg.Registry),
	}
}

// Engine exposes the underlying engine (tests, warm-up solves).
func (s *Server) Engine() *Engine { return s.engine }

// Close drains the async queue: queued jobs still run, new submissions
// are refused. Call after the http.Server has stopped accepting.
func (s *Server) Close() { s.jobs.Close() }

// CancelJobs aborts running jobs; for hard shutdown after a drain
// deadline.
func (s *Server) CancelJobs() { s.jobs.CancelAll() }

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleSolve("analyze", s.engine.Analyze))
	mux.HandleFunc("POST /v1/slip", s.handleSolve("slip", s.engine.Slip))
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeError maps engine errors onto HTTP statuses: client errors to 400,
// deadline overruns to 504, client disconnects to 499 (nginx's
// convention; the client is gone either way), everything else to 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = 499
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	}
	s.reg.Counter(fmt.Sprintf("serve.http_%d", code)).Inc()
	s.writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeBody emits a finished engine body, labeling cache disposition.
func (s *Server) writeBody(w http.ResponseWriter, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.reg.Counter("serve.http_200").Inc()
	w.Write(append(body, '\n'))
}

// solveRequest is the envelope of /v1/analyze and /v1/slip.
type solveRequest struct {
	Spec core.Spec `json:"spec"`
	// Async enqueues the solve and answers 202 with a job ID for
	// /v1/jobs/{id} polling instead of blocking.
	Async bool `json:"async"`
}

// decode parses a request envelope into v, enforcing the body cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding body: %v", err)
	}
	return nil
}

// enqueue submits an async job and answers 202 (or 429/503).
func (s *Server) enqueue(w http.ResponseWriter, run func(context.Context) ([]byte, bool, error)) {
	id, err := s.jobs.Submit(run)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Counter("serve.http_202").Inc()
	s.writeJSON(w, http.StatusAccepted, JobView{ID: id, Status: StatusQueued})
}

// handleSolve serves the shared analyze/slip shape: decode, validate,
// then either enqueue (async) or solve under the request deadline.
func (s *Server) handleSolve(name string, solve func(context.Context, core.Spec) ([]byte, bool, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer s.reg.Timer("serve.http_" + name).Time()()
		var req solveRequest
		if err := s.decode(w, r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		if err := req.Spec.Validate(); err != nil {
			s.writeError(w, badRequestf("invalid spec: %v", err))
			return
		}
		if req.Async {
			spec := req.Spec
			s.enqueue(w, func(ctx context.Context) ([]byte, bool, error) {
				return solve(ctx, spec)
			})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SyncTimeout)
		defer cancel()
		body, cached, err := solve(ctx, req.Spec)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeBody(w, body, cached)
	}
}

// sweepRequest is the envelope of /v1/sweep.
type sweepRequest struct {
	Spec   core.Spec `json:"spec"`
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
	Async  bool      `json:"async"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	defer s.reg.Timer("serve.http_sweep").Time()()
	var req sweepRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		s.writeError(w, badRequestf("invalid spec: %v", err))
		return
	}
	if req.Async {
		s.enqueue(w, func(ctx context.Context) ([]byte, bool, error) {
			body, err := s.engine.Sweep(ctx, req.Spec, req.Param, req.Values)
			return body, false, err
		})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SyncTimeout)
	defer cancel()
	body, err := s.engine.Sweep(ctx, req.Spec, req.Param, req.Values)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeBody(w, body, false)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted job"})
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

// healthBody is the /healthz response.
type healthBody struct {
	Status       string `json:"status"`
	CacheEntries int    `json:"cache_entries"`
	QueueLength  int    `json:"queue_length"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthBody{
		Status:       "ok",
		CacheEntries: s.engine.CacheLen(),
		QueueLength:  len(s.jobs.queue),
	})
}

// handleMetrics serves the obs registry snapshot — byte-identical to
// Registry.SnapshotJSON, which tests pin.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := s.reg.SnapshotJSON()
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
