package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"cdrstoch/internal/buildinfo"
	"cdrstoch/internal/core"
	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Engine configures the solve/cache layer. Its Registry and Tracer
	// default to the server-level ones when unset.
	Engine EngineConfig
	// Workers is the async job worker count. Default 2.
	Workers int
	// QueueDepth bounds the async queue; a full queue answers 429.
	// Default 8.
	QueueDepth int
	// SyncTimeout caps synchronous request handling. Solves that exceed it
	// are canceled at the next solver iteration boundary and the request
	// answers 504. Default 120s.
	SyncTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Registry receives all serve.* and http metrics; also the body of
	// /metrics. May be nil.
	Registry *obs.Registry
	// Tracer receives solver events for cache-miss solves. May be nil.
	// The server always tees the flight recorder in front of it, so a nil
	// Tracer still leaves the postmortem ring populated.
	Tracer obs.Tracer
	// FlightSize bounds the always-on flight recorder ring (recent solver
	// events kept for postmortem dumps). Default obs.DefaultFlightSize.
	FlightSize int
	// ErrorLog receives the flight-recorder dump when a solve fails with
	// cancellation or non-convergence. Nil disables log dumps (the dump
	// still rides the error response).
	ErrorLog *log.Logger
	// Faults arms the fault-injection points across the service (engine,
	// cache, singleflight, jobs, solver cycles). Nil disables injection
	// at zero cost. cdrserved arms it from CDR_FAULTS.
	Faults *faults.Injector
	// JobRetries bounds the transient-failure re-runs an async job gets
	// beyond its first attempt. Default 2; negative disables retry.
	JobRetries int
	// JobRetryBase is the first retry backoff; attempt k waits a
	// jittered JobRetryBase·2^k. Default 25ms.
	JobRetryBase time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Engine.Registry == nil {
		c.Engine.Registry = c.Registry
	}
	if c.Engine.Tracer == nil {
		c.Engine.Tracer = c.Tracer
	}
	if c.Engine.Faults == nil {
		c.Engine.Faults = c.Faults
	}
	return c
}

// Server wires the Engine and the Jobs queue to HTTP. Construct with
// NewServer, mount Handler on an http.Server, and Close during shutdown
// (after http.Server.Shutdown) to drain queued jobs.
type Server struct {
	cfg    ServerConfig
	engine *Engine
	jobs   *Jobs
	reg    *obs.Registry
	flight *obs.FlightRecorder
}

// NewServer returns a ready Server.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	// The flight recorder sits in front of any configured tracer: always
	// on, overwrite-oldest, so every solve leaves a postmortem trail even
	// when nothing else is listening.
	flight := obs.NewFlightRecorder(cfg.FlightSize)
	cfg.Engine.Tracer = obs.Tee(flight, cfg.Engine.Tracer)
	return &Server{
		cfg:    cfg,
		engine: NewEngine(cfg.Engine),
		reg:    cfg.Registry,
		flight: flight,
		jobs: NewJobsConfig(JobsConfig{
			Workers:   cfg.Workers,
			Depth:     cfg.QueueDepth,
			Registry:  cfg.Registry,
			Faults:    cfg.Faults,
			RetryMax:  cfg.JobRetries,
			RetryBase: cfg.JobRetryBase,
		}),
	}
}

// Engine exposes the underlying engine (tests, warm-up solves).
func (s *Server) Engine() *Engine { return s.engine }

// Close drains the async queue: queued jobs still run, new submissions
// are refused. Call after the http.Server has stopped accepting.
func (s *Server) Close() { s.jobs.Close() }

// CancelJobs aborts running jobs; for hard shutdown after a drain
// deadline.
func (s *Server) CancelJobs() { s.jobs.CancelAll() }

// Handler returns the service mux wrapped in the tracing middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleSolve("analyze", s.engine.Analyze))
	mux.HandleFunc("POST /v1/slip", s.handleSolve("slip", s.engine.Slip))
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	return s.traced(s.recovered(mux))
}

// recovered is the panic-recovery middleware: a panicking handler (or a
// solver panic that escaped every inner shield) answers 500 with the
// trace ID and flight tail instead of killing the connection — and never
// the process. It sits inside traced, so the X-Trace-Id response header
// is already set when the recovery body is written. http.ErrAbortHandler
// is re-raised: it is net/http's own control flow, not a failure.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.reg.Counter("serve.panics_recovered").Inc()
				s.writeError(w, r, &PanicError{Value: rec, Stack: debug.Stack()})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// traced is the tracing middleware: every request gets a trace ID
// (adopted from X-Trace-Id when the client sent one, minted otherwise)
// and a root span ID, carried by the request context into the engine and
// solvers, stamped onto every event they emit, and echoed back in the
// X-Trace-Id response header so clients can correlate responses with
// traces and flight-recorder dumps.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get("X-Trace-Id")
		if trace == "" {
			trace = obs.NewTraceID()
		}
		span := obs.NewTraceID()
		w.Header().Set("X-Trace-Id", trace)
		next.ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), trace, span)))
	})
}

// errorBody is the uniform error response shape. Solver failures
// (cancellation, timeout, non-convergence, internal errors) carry the
// request's trace ID and the flight-recorder tail for that trace, so the
// evidence of what the solver was doing ships with the failure.
type errorBody struct {
	Error   string      `json:"error"`
	TraceID string      `json:"trace_id,omitempty"`
	Flight  []obs.Event `json:"flight,omitempty"`
}

// flightTailMax bounds the flight events attached to one error response.
const flightTailMax = 64

// flightTraceMax bounds the events served by /v1/jobs/{id}/trace.
const flightTraceMax = 512

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeError maps engine errors onto HTTP statuses: client errors to 400,
// deadline overruns to 504, client disconnects to 499 (nginx's
// convention; the client is gone either way), everything else to 500.
// Solver failures (every status outside the client-fault range) attach
// the request's flight-recorder tail and dump it to the error log.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *PanicError
	if errors.As(err, &pe) {
		s.reg.Counter("serve.panic_errors").Inc()
	}
	code := http.StatusInternalServerError
	switch {
	case pe != nil:
		// Recovered panics are always 500s, even when the panic value is
		// an injected cancellation-flavored error.
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = 499
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	}
	body := errorBody{Error: err.Error()}
	if code >= 500 || code == 499 {
		if trace, _ := obs.TraceFromContext(r.Context()); trace != "" {
			body.TraceID = trace
			body.Flight = s.flight.TailFor(trace, flightTailMax)
			s.dumpFlight(trace, err, body.Flight)
		}
	}
	s.reg.Counter(fmt.Sprintf("serve.http_%d", code)).Inc()
	s.writeJSON(w, code, body)
}

// dumpFlight writes a failed solve's flight-recorder tail to the error
// log, one JSON line per event, so postmortems survive even when the
// client discards the error response.
func (s *Server) dumpFlight(trace string, cause error, events []obs.Event) {
	if s.cfg.ErrorLog == nil {
		return
	}
	s.reg.Counter("serve.flight_dumps").Inc()
	s.cfg.ErrorLog.Printf("trace %s failed: %v; flight tail (%d events):", trace, cause, len(events))
	for _, e := range events {
		if b, err := json.Marshal(e); err == nil {
			s.cfg.ErrorLog.Printf("  %s", b)
		}
	}
}

// writeBody emits a finished engine body, labeling cache disposition.
func (s *Server) writeBody(w http.ResponseWriter, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.reg.Counter("serve.http_200").Inc()
	w.Write(append(body, '\n'))
}

// solveRequest is the envelope of /v1/analyze and /v1/slip.
type solveRequest struct {
	Spec core.Spec `json:"spec"`
	// Async enqueues the solve and answers 202 with a job ID for
	// /v1/jobs/{id} polling instead of blocking.
	Async bool `json:"async"`
}

// syncTimeout resolves the synchronous deadline of a request: the
// server's SyncTimeout, tightened — never loosened — by the client's
// Request-Timeout header. The header value is either a plain number of
// seconds ("2.5") or a Go duration ("750ms"); anything else, or a
// non-positive value, is a 400.
func (s *Server) syncTimeout(r *http.Request) (time.Duration, error) {
	d := s.cfg.SyncTimeout
	h := strings.TrimSpace(r.Header.Get("Request-Timeout"))
	if h == "" {
		return d, nil
	}
	var want time.Duration
	if secs, err := strconv.ParseFloat(h, 64); err == nil {
		want = time.Duration(secs * float64(time.Second))
	} else if dur, err := time.ParseDuration(h); err == nil {
		want = dur
	} else {
		return 0, badRequestf("unparseable Request-Timeout %q", h)
	}
	if want <= 0 {
		return 0, badRequestf("non-positive Request-Timeout %q", h)
	}
	if want < d {
		d = want
	}
	return d, nil
}

// decode parses a request envelope into v, enforcing the body cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding body: %v", err)
	}
	return nil
}

// enqueue submits an async job carrying the request's trace ID and
// answers 202 (or 429/503).
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, run func(context.Context) ([]byte, bool, error)) {
	trace, _ := obs.TraceFromContext(r.Context())
	id, err := s.jobs.Submit(trace, run)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.reg.Counter("serve.http_202").Inc()
	s.writeJSON(w, http.StatusAccepted, JobView{ID: id, Status: StatusQueued, TraceID: trace})
}

// handleSolve serves the shared analyze/slip shape: decode, validate,
// then either enqueue (async) or solve under the request deadline.
func (s *Server) handleSolve(name string, solve func(context.Context, core.Spec) ([]byte, bool, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer s.reg.Timer("serve.http_" + name).Time()()
		start := time.Now()
		defer func() { s.reg.Histogram("serve.http_" + name + "_ms").Observe(ms(time.Since(start))) }()
		var req solveRequest
		if err := s.decode(w, r, &req); err != nil {
			s.writeError(w, r, err)
			return
		}
		if err := req.Spec.Validate(); err != nil {
			s.writeError(w, r, badRequestf("invalid spec: %v", err))
			return
		}
		if req.Async {
			spec := req.Spec
			s.enqueue(w, r, func(ctx context.Context) ([]byte, bool, error) {
				return solve(ctx, spec)
			})
			return
		}
		timeout, err := s.syncTimeout(r)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		body, cached, err := solve(ctx, req.Spec)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.writeBody(w, body, cached)
	}
}

// sweepRequest is the envelope of /v1/sweep.
type sweepRequest struct {
	Spec   core.Spec `json:"spec"`
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
	Async  bool      `json:"async"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	defer s.reg.Timer("serve.http_sweep").Time()()
	start := time.Now()
	defer func() { s.reg.Histogram("serve.http_sweep_ms").Observe(ms(time.Since(start))) }()
	var req sweepRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		s.writeError(w, r, badRequestf("invalid spec: %v", err))
		return
	}
	if req.Async {
		s.enqueue(w, r, func(ctx context.Context) ([]byte, bool, error) {
			body, err := s.engine.Sweep(ctx, req.Spec, req.Param, req.Values)
			return body, false, err
		})
		return
	}
	timeout, err := s.syncTimeout(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	body, err := s.engine.Sweep(ctx, req.Spec, req.Param, req.Values)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeBody(w, body, false)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted job"})
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

// jobTraceBody is the response of /v1/jobs/{id}/trace: the solver events
// the flight recorder still retains for the job's trace ID, oldest
// first. Cache-hit jobs legitimately have zero events (nothing solved),
// and very old traces age out of the ring — Retained reports how many
// events the response carries.
type jobTraceBody struct {
	ID       string      `json:"id"`
	TraceID  string      `json:"trace_id"`
	Status   string      `json:"status"`
	Retained int         `json:"retained"`
	Events   []obs.Event `json:"events"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted job"})
		return
	}
	events := s.flight.TailFor(view.TraceID, flightTraceMax)
	if events == nil {
		events = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, jobTraceBody{
		ID:       view.ID,
		TraceID:  view.TraceID,
		Status:   view.Status,
		Retained: len(events),
		Events:   events,
	})
}

// flightBody is the /debug/flight response: everything the ring
// currently retains, plus how much history has been overwritten.
type flightBody struct {
	Dropped uint64      `json:"dropped"`
	Events  []obs.Event `json:"events"`
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	events := s.flight.Snapshot()
	if events == nil {
		events = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, flightBody{Dropped: s.flight.Dropped(), Events: events})
}

// healthBody is the /healthz response. Version and revision come from
// the binary's build info, so health checks attribute a running daemon
// to a commit.
type healthBody struct {
	Status       string `json:"status"`
	Version      string `json:"version"`
	Revision     string `json:"vcs_revision,omitempty"`
	CacheEntries int    `json:"cache_entries"`
	QueueLength  int    `json:"queue_length"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Get()
	s.writeJSON(w, http.StatusOK, healthBody{
		Status:       "ok",
		Version:      bi.Version,
		Revision:     bi.Revision,
		CacheEntries: s.engine.CacheLen(),
		QueueLength:  len(s.jobs.queue),
	})
}

// handleMetrics negotiates the exposition format on the Accept header:
// Prometheus text exposition for scrapers asking for text/plain (the
// standard scrape Accept is "text/plain; version=0.0.4") or
// OpenMetrics, and otherwise the registry's JSON snapshot —
// byte-identical to Registry.SnapshotJSON, which tests pin, so existing
// JSON consumers see exactly the bytes they always did.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
			s.reg.Counter("serve.metrics_write_errors").Inc()
		}
		return
	}
	b, err := s.reg.SnapshotJSON()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// acceptsPrometheus reports whether the Accept header asks for the
// Prometheus text exposition. An explicit application/json wish wins
// even when text/plain also appears, keeping curl-with-defaults and all
// pre-existing JSON clients on the stable JSON snapshot.
func acceptsPrometheus(accept string) bool {
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
