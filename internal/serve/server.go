package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"cdrstoch/internal/buildinfo"
	"cdrstoch/internal/core"
	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/obs/progress"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Engine configures the solve/cache layer. Its Registry and Tracer
	// default to the server-level ones when unset.
	Engine EngineConfig
	// Workers is the async job worker count. Default 2.
	Workers int
	// QueueDepth bounds the async queue; a full queue answers 429.
	// Default 8.
	QueueDepth int
	// SyncTimeout caps synchronous request handling. Solves that exceed it
	// are canceled at the next solver iteration boundary and the request
	// answers 504. Default 120s.
	SyncTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Registry receives all serve.* and http metrics; also the body of
	// /metrics. May be nil.
	Registry *obs.Registry
	// Tracer receives solver events for cache-miss solves. May be nil.
	// The server always tees the flight recorder in front of it, so a nil
	// Tracer still leaves the postmortem ring populated.
	Tracer obs.Tracer
	// FlightSize bounds the always-on flight recorder ring (recent solver
	// events kept for postmortem dumps). Default obs.DefaultFlightSize.
	FlightSize int
	// ErrorLog receives the flight-recorder dump when a solve fails with
	// cancellation or non-convergence. Nil disables log dumps (the dump
	// still rides the error response).
	ErrorLog *log.Logger
	// Faults arms the fault-injection points across the service (engine,
	// cache, singleflight, jobs, solver cycles). Nil disables injection
	// at zero cost. cdrserved arms it from CDR_FAULTS.
	Faults *faults.Injector
	// JobRetries bounds the transient-failure re-runs an async job gets
	// beyond its first attempt. Default 2; negative disables retry.
	JobRetries int
	// JobRetryBase is the first retry backoff; attempt k waits a
	// jittered JobRetryBase·2^k. Default 25ms.
	JobRetryBase time.Duration
	// CostRingSize bounds the in-memory SolveReport ring behind
	// /debug/solves. Default cost.DefaultRingSize.
	CostRingSize int
	// CostLog optionally mirrors every SolveReport to a JSONL sink for
	// offline analysis; its drop counter is exported as cost.log_dropped.
	CostLog *cost.JSONL
	// StallWindow is the watchdog's staleness window: a solve with no
	// events or no residual improvement for this long is classified
	// stalled. Default 10s.
	StallWindow time.Duration
	// WatchdogInterval is the watchdog check cadence. Default 1s.
	WatchdogInterval time.Duration
	// DivergeChecks is how many consecutive residual-growth checks flag a
	// solve diverging. Default 3.
	DivergeChecks int
	// CancelOnStall lets the watchdog cancel solves it classifies stalled
	// or diverging, so the job layer's retry/backoff kicks in sooner.
	// Off by default: a false positive under CPU starvation would kill a
	// solve that was still making (slow) progress.
	CancelOnStall bool
	// WatchdogRingSize bounds the watchdog event ring behind
	// /debug/progress. Default 1024.
	WatchdogRingSize int
	// EventsHeartbeat is the SSE keep-alive comment cadence on
	// /v1/jobs/{id}/events. Default 5s.
	EventsHeartbeat time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Engine.Registry == nil {
		c.Engine.Registry = c.Registry
	}
	if c.Engine.Tracer == nil {
		c.Engine.Tracer = c.Tracer
	}
	if c.Engine.Faults == nil {
		c.Engine.Faults = c.Faults
	}
	if c.EventsHeartbeat <= 0 {
		c.EventsHeartbeat = 5 * time.Second
	}
	return c
}

// Server wires the Engine and the Jobs queue to HTTP. Construct with
// NewServer, mount Handler on an http.Server, and Close during shutdown
// (after http.Server.Shutdown) to drain queued jobs.
type Server struct {
	cfg      ServerConfig
	engine   *Engine
	jobs     *Jobs
	reg      *obs.Registry
	flight   *obs.FlightRecorder
	costs    *cost.Ring
	progress *progress.Tracker
}

// NewServer returns a ready Server.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	// The flight recorder sits in front of any configured tracer: always
	// on, overwrite-oldest, so every solve leaves a postmortem trail even
	// when nothing else is listening.
	flight := obs.NewFlightRecorder(cfg.FlightSize)
	cfg.Engine.Tracer = obs.Tee(flight, cfg.Engine.Tracer)
	costs := cfg.Engine.Costs
	if costs == nil {
		costs = cost.NewRing(cfg.CostRingSize)
		cfg.Engine.Costs = costs
	}
	if cfg.Engine.CostLog == nil {
		cfg.Engine.CostLog = cfg.CostLog
	}
	// The progress tracker watches every cache-miss solve; its watchdog
	// events land in the flight recorder (for postmortems) and its own
	// ring (for /debug/progress). It must exist before the engine so the
	// engine can tee per-solve handles into its tracer chain.
	prog := progress.New(progress.Config{
		Registry:      cfg.Registry,
		Out:           flight,
		Tol:           cfg.Engine.Multigrid.Tol,
		StallWindow:   cfg.StallWindow,
		Interval:      cfg.WatchdogInterval,
		DivergeChecks: cfg.DivergeChecks,
		CancelOnStall: cfg.CancelOnStall,
		RingSize:      cfg.WatchdogRingSize,
	})
	cfg.Engine.Progress = prog
	s := &Server{
		cfg:      cfg,
		engine:   NewEngine(cfg.Engine),
		reg:      cfg.Registry,
		flight:   flight,
		costs:    costs,
		progress: prog,
		jobs: NewJobsConfig(JobsConfig{
			Workers:   cfg.Workers,
			Depth:     cfg.QueueDepth,
			Registry:  cfg.Registry,
			Faults:    cfg.Faults,
			RetryMax:  cfg.JobRetries,
			RetryBase: cfg.JobRetryBase,
		}),
	}
	// Process identity and drop-count exports. Start time is a constant
	// gauge; uptime and the drop counters are computed at snapshot time,
	// so silent event/report loss is visible on every /metrics scrape.
	s.reg.Gauge("process.start_time_unix_seconds").Set(float64(buildinfo.StartTime().Unix()))
	s.reg.GaugeFunc("process.uptime_seconds", func() float64 { return buildinfo.Uptime().Seconds() })
	s.reg.GaugeFunc("obs.flight_dropped", func() float64 { return float64(flight.Dropped()) })
	s.reg.GaugeFunc("cost.reports_dropped", func() float64 { return float64(costs.Dropped()) })
	if cl := cfg.Engine.CostLog; cl != nil {
		s.reg.GaugeFunc("cost.log_dropped", func() float64 { return float64(cl.Dropped()) })
	}
	if j, ok := cfg.Tracer.(*obs.JSONL); ok {
		s.reg.GaugeFunc("obs.jsonl_dropped", func() float64 { return float64(j.Dropped()) })
	}
	prog.Start()
	return s
}

// Engine exposes the underlying engine (tests, warm-up solves).
func (s *Server) Engine() *Engine { return s.engine }

// Progress exposes the live progress tracker (tests, embedding).
func (s *Server) Progress() *progress.Tracker { return s.progress }

// Close drains the async queue: queued jobs still run, new submissions
// are refused. Call after the http.Server has stopped accepting. The
// watchdog stops only after the drain, so under CancelOnStall it can
// still reap a stuck job blocking shutdown.
func (s *Server) Close() {
	s.jobs.Close()
	s.progress.Stop()
}

// CancelJobs aborts running jobs; for hard shutdown after a drain
// deadline.
func (s *Server) CancelJobs() { s.jobs.CancelAll() }

// Handler returns the service mux wrapped in the tracing middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleSolve("analyze", s.engine.AnalyzeBackend))
	mux.HandleFunc("POST /v1/slip", s.handleSolve("slip", func(ctx context.Context, spec core.Spec, backend string) ([]byte, bool, error) {
		// The slip endpoint's quasi-stationary refinement needs the
		// explicit matrix; refuse the field rather than silently ignore it.
		if backend != "" {
			return nil, false, badRequestf("backend %q not supported on /v1/slip", backend)
		}
		return s.engine.Slip(ctx, spec)
	}))
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/solves", s.handleSolves)
	mux.HandleFunc("GET /debug/progress", s.handleProgress)
	return s.traced(s.recovered(mux))
}

// recovered is the panic-recovery middleware: a panicking handler (or a
// solver panic that escaped every inner shield) answers 500 with the
// trace ID and flight tail instead of killing the connection — and never
// the process. It sits inside traced, so the X-Trace-Id response header
// is already set when the recovery body is written. http.ErrAbortHandler
// is re-raised: it is net/http's own control flow, not a failure.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.reg.Counter("serve.panics_recovered").Inc()
				s.writeError(w, r, &PanicError{Value: rec, Stack: debug.Stack()})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// traced is the tracing middleware: every request gets a trace ID
// (adopted from X-Trace-Id when the client sent one, minted otherwise)
// and a root span ID, carried by the request context into the engine and
// solvers, stamped onto every event they emit, and echoed back in the
// X-Trace-Id response header so clients can correlate responses with
// traces and flight-recorder dumps.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get("X-Trace-Id")
		if trace == "" {
			trace = obs.NewTraceID()
		}
		span := obs.NewTraceID()
		w.Header().Set("X-Trace-Id", trace)
		next.ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), trace, span)))
	})
}

// errorBody is the uniform error response shape. Solver failures
// (cancellation, timeout, non-convergence, internal errors) carry the
// request's trace ID and the flight-recorder tail for that trace, so the
// evidence of what the solver was doing ships with the failure.
type errorBody struct {
	Error   string      `json:"error"`
	TraceID string      `json:"trace_id,omitempty"`
	Flight  []obs.Event `json:"flight,omitempty"`
}

// flightTailMax bounds the flight events attached to one error response.
const flightTailMax = 64

// flightTraceMax bounds the events served by /v1/jobs/{id}/trace.
const flightTraceMax = 512

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeError maps engine errors onto HTTP statuses: client errors to 400,
// deadline overruns to 504, client disconnects to 499 (nginx's
// convention; the client is gone either way), everything else to 500.
// Solver failures (every status outside the client-fault range) attach
// the request's flight-recorder tail and dump it to the error log.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *PanicError
	if errors.As(err, &pe) {
		s.reg.Counter("serve.panic_errors").Inc()
	}
	code := http.StatusInternalServerError
	switch {
	case pe != nil:
		// Recovered panics are always 500s, even when the panic value is
		// an injected cancellation-flavored error.
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = 499
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	}
	body := errorBody{Error: err.Error()}
	if code >= 500 || code == 499 {
		if trace, _ := obs.TraceFromContext(r.Context()); trace != "" {
			body.TraceID = trace
			body.Flight = s.flight.TailFor(trace, flightTailMax)
			s.dumpFlight(trace, err, body.Flight)
		}
	}
	s.reg.Counter(fmt.Sprintf("serve.http_%d", code)).Inc()
	s.writeJSON(w, code, body)
}

// dumpFlight writes a failed solve's flight-recorder tail to the error
// log, one JSON line per event, so postmortems survive even when the
// client discards the error response.
func (s *Server) dumpFlight(trace string, cause error, events []obs.Event) {
	if s.cfg.ErrorLog == nil {
		return
	}
	s.reg.Counter("serve.flight_dumps").Inc()
	s.cfg.ErrorLog.Printf("trace %s failed: %v; flight tail (%d events):", trace, cause, len(events))
	for _, e := range events {
		if b, err := json.Marshal(e); err == nil {
			s.cfg.ErrorLog.Printf("  %s", b)
		}
	}
}

// writeBody emits a finished engine body, labeling cache disposition.
func (s *Server) writeBody(w http.ResponseWriter, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.reg.Counter("serve.http_200").Inc()
	// body is the cache/singleflight-shared slice: appending the newline
	// to it would write into the shared backing array and race with
	// concurrent responses serving the same bytes.
	w.Write(body)
	io.WriteString(w, "\n")
}

// solveRequest is the envelope of /v1/analyze and /v1/slip.
type solveRequest struct {
	Spec core.Spec `json:"spec"`
	// Async enqueues the solve and answers 202 with a job ID for
	// /v1/jobs/{id} polling instead of blocking.
	Async bool `json:"async"`
	// Backend selects the transition representation on /v1/analyze:
	// "explicit" (or empty, the default) assembles the product TPM,
	// "kron" solves matrix-free through the Kronecker descriptor.
	// /v1/slip accepts only the default.
	Backend string `json:"backend,omitempty"`
}

// syncTimeout resolves the synchronous deadline of a request: the
// server's SyncTimeout, tightened — never loosened — by the client's
// Request-Timeout header. The header value is either a plain number of
// seconds ("2.5") or a Go duration ("750ms"); anything else, or a
// non-positive value, is a 400.
func (s *Server) syncTimeout(r *http.Request) (time.Duration, error) {
	d := s.cfg.SyncTimeout
	h := strings.TrimSpace(r.Header.Get("Request-Timeout"))
	if h == "" {
		return d, nil
	}
	var want time.Duration
	if secs, err := strconv.ParseFloat(h, 64); err == nil {
		want = time.Duration(secs * float64(time.Second))
	} else if dur, err := time.ParseDuration(h); err == nil {
		want = dur
	} else {
		return 0, badRequestf("unparseable Request-Timeout %q", h)
	}
	if want <= 0 {
		return 0, badRequestf("non-positive Request-Timeout %q", h)
	}
	if want < d {
		d = want
	}
	return d, nil
}

// decode parses a request envelope into v, enforcing the body cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding body: %v", err)
	}
	return nil
}

// enqueue submits an async job carrying the request's trace ID and
// answers 202 (or 429/503).
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, run func(context.Context) ([]byte, bool, error)) {
	trace, _ := obs.TraceFromContext(r.Context())
	id, err := s.jobs.Submit(trace, run)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.reg.Counter("serve.http_202").Inc()
	s.writeJSON(w, http.StatusAccepted, JobView{ID: id, Status: StatusQueued, TraceID: trace})
}

// handleSolve serves the shared analyze/slip shape: decode, validate,
// then either enqueue (async) or solve under the request deadline.
func (s *Server) handleSolve(name string, solve func(context.Context, core.Spec, string) ([]byte, bool, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer s.reg.Timer("serve.http_" + name).Time()()
		start := time.Now()
		defer func() { s.reg.Histogram("serve.http_" + name + "_ms").Observe(ms(time.Since(start))) }()
		var req solveRequest
		if err := s.decode(w, r, &req); err != nil {
			s.writeError(w, r, err)
			return
		}
		if err := req.Spec.Validate(); err != nil {
			s.writeError(w, r, badRequestf("invalid spec: %v", err))
			return
		}
		if req.Async {
			spec, backend := req.Spec, req.Backend
			s.enqueue(w, r, func(ctx context.Context) ([]byte, bool, error) {
				return solve(ctx, spec, backend)
			})
			return
		}
		timeout, err := s.syncTimeout(r)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		body, cached, err := solve(ctx, req.Spec, req.Backend)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.setCostHeaders(w, r, cached)
		s.writeBody(w, body, cached)
	}
}

// setCostHeaders stamps the X-Solve-Cost-* response headers from the
// solve's SolveReport (matched by the request's trace ID in the cost
// ring). Cache hits only carry the cache disposition — their body came
// from an earlier solve whose cost was attributed then. A miss served
// through singleflight sharing has no report under this trace either;
// it degrades to the disposition header the same way.
func (s *Server) setCostHeaders(w http.ResponseWriter, r *http.Request, cached bool) {
	h := w.Header()
	if cached {
		h.Set("X-Solve-Cost-Cache", "hit")
		return
	}
	h.Set("X-Solve-Cost-Cache", "miss")
	trace, _ := obs.TraceFromContext(r.Context())
	rep, ok := s.costs.LatestByTrace(trace)
	if !ok {
		return
	}
	h.Set("X-Solve-Cost-Wall-Ms", strconv.FormatFloat(rep.WallMS(), 'f', 3, 64))
	h.Set("X-Solve-Cost-Cpu-Ms", strconv.FormatFloat(rep.CPUMS(), 'f', 3, 64))
	h.Set("X-Solve-Cost-Cycles", strconv.FormatInt(rep.Cycles, 10))
	h.Set("X-Solve-Cost-Spmvs", strconv.FormatInt(rep.Pool.SpMVs, 10))
	h.Set("X-Solve-Cost-States", strconv.Itoa(rep.States))
	if rep.WarmStarted {
		h.Set("X-Solve-Cost-Warmstart", "1")
	}
}

// setWarmstartHeader stamps X-Solve-Cost-Warmstart: 1 when the request's
// most recent solve report was warm-started — on a batch sweep, that is
// the last point actually solved under this trace.
func (s *Server) setWarmstartHeader(w http.ResponseWriter, r *http.Request) {
	trace, _ := obs.TraceFromContext(r.Context())
	if rep, ok := s.costs.LatestByTrace(trace); ok && rep.WarmStarted {
		w.Header().Set("X-Solve-Cost-Warmstart", "1")
	}
}

// sweepRequest is the envelope of /v1/sweep.
type sweepRequest struct {
	Spec   core.Spec `json:"spec"`
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
	Async  bool      `json:"async"`
	// Batch runs the sweep as a warm-started continuation chain (shared
	// symbolic setup, neighbor-seeded solves) instead of fanning the
	// points out as independent solves. Same per-point cache entries and
	// result bodies; the response additionally carries per-point
	// warm_started / reused_setup / cycles fields.
	Batch bool `json:"batch"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	defer s.reg.Timer("serve.http_sweep").Time()()
	start := time.Now()
	defer func() { s.reg.Histogram("serve.http_sweep_ms").Observe(ms(time.Since(start))) }()
	var req sweepRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		s.writeError(w, r, badRequestf("invalid spec: %v", err))
		return
	}
	run := s.engine.Sweep
	if req.Batch {
		run = s.engine.SweepBatch
	}
	if req.Async {
		s.enqueue(w, r, func(ctx context.Context) ([]byte, bool, error) {
			body, err := run(ctx, req.Spec, req.Param, req.Values)
			return body, false, err
		})
		return
	}
	timeout, err := s.syncTimeout(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	body, err := run(ctx, req.Spec, req.Param, req.Values)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.setWarmstartHeader(w, r)
	s.writeBody(w, body, false)
}

// jobView resolves a job's current view, enriched with what the
// observability layers know about it: terminal jobs carry their solve's
// cost report (when the ring still retains it — the job layer preserved
// the submitter's trace ID across retries, so the lookup matches even
// for retried jobs, and the view's retry count is copied onto the
// report), running jobs carry the live progress of their in-flight
// solve (phase, iteration, residual, watchdog state, ETA).
func (s *Server) jobView(id string) (JobView, bool) {
	view, ok := s.jobs.Get(id)
	if !ok {
		return JobView{}, false
	}
	switch view.Status {
	case StatusDone, StatusFailed:
		if rep, ok := s.costs.LatestByTrace(view.TraceID); ok {
			rep.Retries = view.Retries
			rep.Cached = view.Cached
			view.Cost = &rep
		}
	case StatusRunning:
		if p, ok := s.progress.LatestByTrace(view.TraceID); ok {
			view.Progress = &p
		}
	}
	return view, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobView(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted job"})
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

// jobTraceBody is the response of /v1/jobs/{id}/trace: the solver events
// the flight recorder still retains for the job's trace ID, oldest
// first. Cache-hit jobs legitimately have zero events (nothing solved),
// and very old traces age out of the ring — Retained reports how many
// events the response carries.
type jobTraceBody struct {
	ID       string      `json:"id"`
	TraceID  string      `json:"trace_id"`
	Status   string      `json:"status"`
	Retained int         `json:"retained"`
	Events   []obs.Event `json:"events"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted job"})
		return
	}
	events := s.flight.TailFor(view.TraceID, flightTraceMax)
	if events == nil {
		events = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, jobTraceBody{
		ID:       view.ID,
		TraceID:  view.TraceID,
		Status:   view.Status,
		Retained: len(events),
		Events:   events,
	})
}

// flightBody is the /debug/flight response: the most recent retained
// events (bounded by ?limit=), plus how much history has been
// overwritten and how many events this response carries.
type flightBody struct {
	Dropped  uint64      `json:"dropped"`
	Retained int         `json:"retained"`
	Events   []obs.Event `json:"events"`
}

// Debug endpoint response bounds: default and maximum ?limit= values.
// Both /debug/flight and /debug/solves clamp to these so a long-running
// server never returns an unbounded body.
const (
	flightLimitDefault = 1024
	flightLimitMax     = 4096
	solvesLimitDefault = 64
	solvesLimitMax     = 512
)

// queryLimit parses ?limit= with a default and a hard cap. Absent or
// unparseable values select the default; non-positive and oversized
// values clamp into [1, max].
func queryLimit(r *http.Request, def, max int) int {
	n, err := strconv.Atoi(r.URL.Query().Get("limit"))
	if err != nil {
		return def
	}
	if n < 1 {
		return 1
	}
	if n > max {
		return max
	}
	return n
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	limit := queryLimit(r, flightLimitDefault, flightLimitMax)
	events := s.flight.Tail(limit)
	if events == nil {
		events = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, flightBody{
		Dropped:  s.flight.Dropped(),
		Retained: len(events),
		Events:   events,
	})
}

// solvesBody is the /debug/solves JSON response: the matching
// SolveReports, newest first, plus ring-level loss accounting.
type solvesBody struct {
	Count   int                `json:"count"`
	Dropped uint64             `json:"dropped"`
	Reports []cost.SolveReport `json:"reports"`
}

// handleSolves serves the SolveReport ring: the per-solve cost records
// of recent solves, filterable by trace ID (?trace=), spec key (?spec=),
// endpoint (?endpoint=), and minimum wall time (?min_ms=), newest first,
// capped by ?limit=. Accept: text/plain renders the human cost table
// (sorted by CPU time); everything else gets JSON.
func (s *Server) handleSolves(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := cost.Filter{
		Trace:    q.Get("trace"),
		SpecKey:  q.Get("spec"),
		Endpoint: q.Get("endpoint"),
		Limit:    queryLimit(r, solvesLimitDefault, solvesLimitMax),
	}
	if minMS, err := strconv.ParseFloat(q.Get("min_ms"), 64); err == nil && minMS > 0 {
		f.MinWall = time.Duration(minMS * float64(time.Millisecond))
	}
	reports := s.costs.Reports(f)
	if acceptsPrometheus(r.Header.Get("Accept")) {
		// text/plain: the same human table cdrreport -top renders.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := cost.WriteTable(w, reports); err != nil {
			s.reg.Counter("serve.metrics_write_errors").Inc()
		}
		return
	}
	if reports == nil {
		reports = []cost.SolveReport{}
	}
	s.writeJSON(w, http.StatusOK, solvesBody{
		Count:   len(reports),
		Dropped: s.costs.Dropped(),
		Reports: reports,
	})
}

// progressBody is the /debug/progress JSON response: the in-flight
// solves (live phase/iteration/residual/ETA, watchdog state) plus the
// recent watchdog events the ring retains.
type progressBody struct {
	Count    int                      `json:"count"`
	Solves   []progress.SolveProgress `json:"solves"`
	Watchdog []obs.Event              `json:"watchdog"`
}

// handleProgress serves the live in-flight solve table. Accept:
// text/plain renders the aligned human table (same negotiation as
// /debug/solves); everything else gets JSON with the watchdog event
// tail (bounded by ?limit=) attached.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	solves := s.progress.Snapshot()
	if acceptsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := progress.WriteTable(w, solves); err != nil {
			s.reg.Counter("serve.metrics_write_errors").Inc()
		}
		return
	}
	if solves == nil {
		solves = []progress.SolveProgress{}
	}
	wd := s.progress.Ring().Tail(queryLimit(r, solvesLimitDefault, solvesLimitMax))
	if wd == nil {
		wd = []obs.Event{}
	}
	s.writeJSON(w, http.StatusOK, progressBody{
		Count:    len(solves),
		Solves:   solves,
		Watchdog: wd,
	})
}

// healthBody is the /healthz response. Version and revision come from
// the binary's build info, so health checks attribute a running daemon
// to a commit.
type healthBody struct {
	Status       string  `json:"status"`
	Version      string  `json:"version"`
	Revision     string  `json:"vcs_revision,omitempty"`
	StartTime    string  `json:"start_time"`
	UptimeSecs   float64 `json:"uptime_seconds"`
	CacheEntries int     `json:"cache_entries"`
	QueueLength  int     `json:"queue_length"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Get()
	s.writeJSON(w, http.StatusOK, healthBody{
		Status:       "ok",
		Version:      bi.Version,
		Revision:     bi.Revision,
		StartTime:    buildinfo.StartTime().UTC().Format(time.RFC3339),
		UptimeSecs:   buildinfo.Uptime().Seconds(),
		CacheEntries: s.engine.CacheLen(),
		QueueLength:  len(s.jobs.queue),
	})
}

// handleMetrics negotiates the exposition format on the Accept header:
// Prometheus text exposition for scrapers asking for text/plain (the
// standard scrape Accept is "text/plain; version=0.0.4") or
// OpenMetrics, and otherwise the registry's JSON snapshot —
// byte-identical to Registry.SnapshotJSON, which tests pin, so existing
// JSON consumers see exactly the bytes they always did.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
			s.reg.Counter("serve.metrics_write_errors").Inc()
		}
		return
	}
	b, err := s.reg.SnapshotJSON()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// acceptsPrometheus reports whether the Accept header asks for the
// Prometheus text exposition. An explicit application/json wish wins
// even when text/plain also appears, keeping curl-with-defaults and all
// pre-existing JSON clients on the stable JSON snapshot.
func acceptsPrometheus(accept string) bool {
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}
