package speckey

import (
	"encoding/json"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

func TestHashDeterministic(t *testing.T) {
	a, err := Hash(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hash(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical specs hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("want 64 hex chars, got %d", len(a))
	}
}

func TestHashSeparatesSpecs(t *testing.T) {
	base := core.DefaultSpec()
	h0, err := Hash(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []func(*core.Spec){
		func(s *core.Spec) { s.CounterLen = 4 },
		func(s *core.Spec) { s.EyeJitter = dist.NewGaussian(0, 0.03) },
		func(s *core.Spec) { s.TransitionDensity = 0.4 },
		func(s *core.Spec) { s.PDDeadZone = 0.01 },
	}
	seen := map[string]bool{h0: true}
	for i, mutate := range variants {
		s := core.DefaultSpec()
		mutate(&s)
		h, err := Hash(s)
		if err != nil {
			t.Fatal(err)
		}
		if seen[h] {
			t.Errorf("variant %d collides with an earlier hash", i)
		}
		seen[h] = true
	}
}

// TestHashStableAcrossDecode pins the property the service relies on:
// decoding is deterministic, so two requests carrying the same body bytes
// always map to the same cache key.
func TestHashStableAcrossDecode(t *testing.T) {
	s := core.DefaultSpec()
	b, err := Canonical(s)
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]string, 2)
	for i := range hashes {
		var back core.Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		hashes[i], err = Hash(back)
		if err != nil {
			t.Fatal(err)
		}
	}
	if hashes[0] != hashes[1] {
		t.Errorf("same request bytes produced different keys: %s vs %s", hashes[0], hashes[1])
	}
}
