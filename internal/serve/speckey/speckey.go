// Package speckey derives content-addressed cache keys for CDR analysis
// results. The performance measures the service computes (stationary BER,
// slip statistics, sweep families) are pure functions of core.Spec, so a
// collision-resistant hash of the spec's canonical encoding identifies a
// result completely: two requests with the same key may share one solve
// and one cached body.
//
// Canonicality is inherited from core.Spec's MarshalJSON: struct-driven
// field order, no maps, shortest-round-trip float formatting. The hash is
// therefore a pure function of the spec value. It is deliberately
// conservative: two specs that are mathematically equivalent but
// represented differently (say, a drift PMF carrying an explicit zero
// tail) hash differently and merely miss the cache — never the reverse.
package speckey

import (
	"crypto/sha256"
	"encoding/hex"

	"cdrstoch/internal/core"
)

// Canonical returns the canonical serialization of the spec — the exact
// bytes that Hash digests. It fails only for jitter laws outside
// internal/dist, which cannot arrive through the service API.
func Canonical(s core.Spec) ([]byte, error) {
	return s.MarshalJSON()
}

// Hash returns the lowercase hex SHA-256 of the canonical serialization.
func Hash(s core.Spec) (string, error) {
	b, err := Canonical(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
