package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
)

// postJSONTraced posts v with an explicit X-Trace-Id.
func postJSONTraced(t *testing.T, url, trace string, v any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServerCostHeaders pins the acceptance criterion: every sync miss
// carries the full X-Solve-Cost-* header set; hits carry only the cache
// disposition (their solve was attributed when it ran).
func TestServerCostHeaders(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	req := solveRequest{Spec: testSpec(t)}

	resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Solve-Cost-Cache"); got != "miss" {
		t.Fatalf("X-Solve-Cost-Cache = %q, want miss", got)
	}
	for _, h := range []string{"X-Solve-Cost-Wall-Ms", "X-Solve-Cost-Cpu-Ms",
		"X-Solve-Cost-Cycles", "X-Solve-Cost-Spmvs", "X-Solve-Cost-States"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("miss response lacks %s", h)
		}
	}
	if states, _ := strconv.Atoi(resp.Header.Get("X-Solve-Cost-States")); states <= 0 {
		t.Errorf("X-Solve-Cost-States = %q, want > 0", resp.Header.Get("X-Solve-Cost-States"))
	}
	if wall, _ := strconv.ParseFloat(resp.Header.Get("X-Solve-Cost-Wall-Ms"), 64); wall <= 0 {
		t.Errorf("X-Solve-Cost-Wall-Ms = %q, want > 0", resp.Header.Get("X-Solve-Cost-Wall-Ms"))
	}

	resp, _ = postJSON(t, ts.URL+"/v1/analyze", req)
	if got := resp.Header.Get("X-Solve-Cost-Cache"); got != "hit" {
		t.Errorf("hit X-Solve-Cost-Cache = %q", got)
	}
	if resp.Header.Get("X-Solve-Cost-Cycles") != "" {
		t.Error("cache hit carries per-solve cost headers")
	}
}

// TestServerDebugSolvesReplay pins the /debug/solves contract: the
// report of a finished solve replays by trace ID, filters compose, and
// Accept: text/plain renders the human table.
func TestServerDebugSolvesReplay(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	const trace = "cost-trace-000001"
	resp, body := postJSONTraced(t, ts.URL+"/v1/analyze", trace, solveRequest{Spec: testSpec(t)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}

	_, body = mustGet(t, ts.URL+"/debug/solves?trace="+trace)
	var solves solvesBody
	if err := json.Unmarshal(body, &solves); err != nil {
		t.Fatal(err)
	}
	if solves.Count != 1 || len(solves.Reports) != 1 {
		t.Fatalf("solves = %+v, want exactly the traced report", solves)
	}
	rep := solves.Reports[0]
	if rep.Trace != trace {
		t.Errorf("report trace = %q", rep.Trace)
	}
	if rep.Endpoint != "analyze" || rep.SpecKey == "" {
		t.Errorf("report identity = %q/%q", rep.Endpoint, rep.SpecKey)
	}
	if rep.States <= 0 || rep.NNZ <= 0 || rep.MatrixBytes <= 0 {
		t.Errorf("matrix dims missing: states=%d nnz=%d bytes=%d", rep.States, rep.NNZ, rep.MatrixBytes)
	}
	if rep.Cycles <= 0 || rep.Pool.SpMVs <= 0 {
		t.Errorf("solver work missing: cycles=%d spmvs=%d", rep.Cycles, rep.Pool.SpMVs)
	}
	if rep.FinalResidual <= 0 || len(rep.ResidualTail) == 0 {
		t.Errorf("convergence audit missing: final=%g tail=%v", rep.FinalResidual, rep.ResidualTail)
	}
	if len(rep.Levels) == 0 {
		t.Error("per-level multigrid attribution missing")
	}

	// Unmatched filters return empty, not an error.
	_, body = mustGet(t, ts.URL+"/debug/solves?trace=no-such-trace")
	if err := json.Unmarshal(body, &solves); err != nil {
		t.Fatal(err)
	}
	if solves.Count != 0 || solves.Reports == nil {
		t.Errorf("unmatched filter: %+v, want empty non-nil reports", solves)
	}

	// min_ms high enough excludes everything.
	_, body = mustGet(t, ts.URL+"/debug/solves?min_ms=3600000")
	if err := json.Unmarshal(body, &solves); err != nil {
		t.Fatal(err)
	}
	if solves.Count != 0 {
		t.Errorf("min_ms filter matched %d", solves.Count)
	}

	// Accept: text/plain renders the cost table.
	resp, body = getWithHeaders(t, ts.URL+"/debug/solves", map[string]string{"Accept": "text/plain"})
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("table Content-Type = %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, "TRACE") || !strings.Contains(text, "analyze") {
		t.Errorf("table rendering:\n%s", text)
	}
	if json.Valid(body) {
		t.Error("text table should not be JSON")
	}
}

// TestServerDebugLimits pins satellite (f): /debug/flight and
// /debug/solves respect ?limit= and clamp instead of erroring.
func TestServerDebugLimits(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	// Two distinct solves produce two reports and plenty of flight events.
	for _, spec := range testSpecVariants(t)[:2] {
		postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec})
	}

	_, body := mustGet(t, ts.URL+"/debug/solves?limit=1")
	var solves solvesBody
	if err := json.Unmarshal(body, &solves); err != nil {
		t.Fatal(err)
	}
	if solves.Count != 1 {
		t.Errorf("limit=1 returned %d reports", solves.Count)
	}

	var flight flightBody
	_, body = mustGet(t, ts.URL+"/debug/flight?limit=3")
	if err := json.Unmarshal(body, &flight); err != nil {
		t.Fatal(err)
	}
	if flight.Retained > 3 || len(flight.Events) > 3 {
		t.Errorf("flight limit=3 retained %d/%d", flight.Retained, len(flight.Events))
	}

	// Unparseable and oversized limits degrade to default/cap, never 4xx/5xx.
	for _, q := range []string{"?limit=banana", "?limit=-4", "?limit=999999"} {
		resp, _ := mustGet(t, ts.URL+"/debug/solves"+q)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("limit %q: status %d", q, resp.StatusCode)
		}
		resp, _ = mustGet(t, ts.URL+"/debug/flight"+q)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("flight limit %q: status %d", q, resp.StatusCode)
		}
	}
}

// TestServerHealthUptime pins satellite (b): /healthz reports process
// start time and uptime.
func TestServerHealthUptime(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	_, body := mustGet(t, ts.URL+"/healthz")
	var health healthBody
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	start, err := time.Parse(time.RFC3339, health.StartTime)
	if err != nil {
		t.Fatalf("start_time %q: %v", health.StartTime, err)
	}
	if time.Since(start) < 0 || time.Since(start) > time.Hour {
		t.Errorf("start_time %v implausible", start)
	}
	if health.UptimeSecs <= 0 {
		t.Errorf("uptime_seconds = %g", health.UptimeSecs)
	}

	// The same numbers appear as gauges in the JSON metrics.
	_, body = mustGet(t, ts.URL+"/metrics")
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gauges["process.uptime_seconds"] <= 0 {
		t.Errorf("process.uptime_seconds gauge = %g", snap.Gauges["process.uptime_seconds"])
	}
	if got := snap.Gauges["process.start_time_unix_seconds"]; int64(got) != start.Unix() {
		t.Errorf("start gauge = %g, healthz start = %d", got, start.Unix())
	}
}

// TestServerCostHistogramsExported pins the acceptance criterion that
// per-endpoint cost histograms reach both the JSON snapshot and the
// Prometheus exposition.
func TestServerCostHistogramsExported(t *testing.T) {
	_, ts, reg := newTestServer(t, ServerConfig{})
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)})

	snap := reg.Snapshot()
	for _, name := range []string{"cost.analyze.cpu_seconds", "cost.analyze.wall_seconds",
		"cost.analyze.spmv_total", "cost.analyze.cycles"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 1 {
			t.Errorf("histogram %s = %+v, want one observation", name, h)
		}
	}
	if snap.Counters["cost.reports"] != 1 {
		t.Errorf("cost.reports = %d", snap.Counters["cost.reports"])
	}

	resp, body := getWithHeaders(t, ts.URL+"/metrics", map[string]string{"Accept": "text/plain; version=0.0.4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE cost_analyze_cpu_seconds histogram",
		"cost_analyze_cpu_seconds_count 1",
		"cost_analyze_spmv_total_count 1",
		"cost_reports 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestServerMetricsSurviveLint is the live half of the metrics-lint
// satellite: after exercising every endpoint, every registered metric
// name must survive Prometheus sanitization unchanged and stay
// collision-free.
func TestServerMetricsSurviveLint(t *testing.T) {
	_, ts, reg := newTestServer(t, ServerConfig{})
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)})
	postJSON(t, ts.URL+"/v1/slip", solveRequest{Spec: testSpec(t)})
	postJSON(t, ts.URL+"/v1/sweep", sweepRequest{Spec: testSpec(t), Param: "counter", Values: []float64{1, 2}})
	pollJob(t, ts.URL, submitAsync(t, ts.URL, solveRequest{Spec: testSpecVariants(t)[1]}))
	mustGet(t, ts.URL+"/healthz")
	mustGet(t, ts.URL+"/metrics")

	// Include the runtime collector's gauges in the checked surface.
	cost.NewRuntimeCollector(reg).Poll()

	if probs := reg.Snapshot().LintMetrics(); len(probs) != 0 {
		t.Errorf("metrics lint failed:\n%s", strings.Join(probs, "\n"))
	}
}

// TestServerJobViewCarriesCost: polling a finished async job returns its
// SolveReport inline, matched by the submitter's trace.
func TestServerJobViewCarriesCost(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	id := submitAsync(t, ts.URL, solveRequest{Spec: testSpec(t)})
	v := pollJob(t, ts.URL, id)
	if v.Status != StatusDone {
		t.Fatalf("job = %+v", v)
	}
	if v.Cost == nil {
		t.Fatal("finished JobView carries no cost report")
	}
	if v.Cost.Trace != v.TraceID {
		t.Errorf("cost trace %q != job trace %q", v.Cost.Trace, v.TraceID)
	}
	if v.Cost.Endpoint != "analyze" || v.Cost.States <= 0 {
		t.Errorf("job cost report = %+v", v.Cost)
	}
}

// TestServerRetryPreservesTrace pins satellite (c): after a transient
// fault forces an async retry, the flight tail and the SolveReport still
// carry the submitter's original trace ID.
func TestServerRetryPreservesTrace(t *testing.T) {
	_, url, _ := newChaosServer(t, "jobs.dequeue:error:n=1",
		ServerConfig{SyncTimeout: time.Minute, JobRetryBase: time.Millisecond})

	const trace = "retry-trace-00001"
	req := solveRequest{Spec: testSpec(t), Async: true}
	resp, body := postJSONTraced(t, url+"/v1/analyze", trace, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.TraceID != trace {
		t.Fatalf("job adopted trace %q, want %q", accepted.TraceID, trace)
	}

	v := pollJob(t, url, accepted.ID)
	if v.Status != StatusDone || v.Retries < 1 {
		t.Fatalf("job = %+v, want done after >=1 retry", v)
	}
	if v.TraceID != trace {
		t.Errorf("terminal view trace = %q", v.TraceID)
	}
	if v.Cost == nil {
		t.Fatal("retried job view carries no cost report")
	}
	if v.Cost.Trace != trace {
		t.Errorf("cost report trace = %q, want submitter's %q", v.Cost.Trace, trace)
	}
	if v.Cost.Retries != v.Retries {
		t.Errorf("cost retries = %d, view retries = %d", v.Cost.Retries, v.Retries)
	}

	// The report replays from /debug/solves under the same trace.
	_, body = mustGet(t, url+"/debug/solves?trace="+trace)
	var solves solvesBody
	if err := json.Unmarshal(body, &solves); err != nil {
		t.Fatal(err)
	}
	if solves.Count < 1 {
		t.Fatal("no report in ring for submitter trace after retry")
	}

	// The flight tail for the job is stamped with the submitter's trace.
	_, body = mustGet(t, url+"/v1/jobs/"+accepted.ID+"/trace")
	var jt jobTraceBody
	if err := json.Unmarshal(body, &jt); err != nil {
		t.Fatal(err)
	}
	if jt.TraceID != trace || jt.Retained == 0 {
		t.Fatalf("job trace tail = %+v, want events under %q", jt, trace)
	}
	for _, ev := range jt.Events {
		if ev.Trace != trace {
			t.Errorf("flight event trace = %q, want %q", ev.Trace, trace)
		}
	}
}

// TestServerDropCountersExported pins satellite (a): ring and sink drop
// counts surface as gauges.
func TestServerDropCountersExported(t *testing.T) {
	var sink strings.Builder
	s, ts, reg := newTestServer(t, ServerConfig{
		CostRingSize: 1,
		CostLog:      cost.NewJSONL(&sink),
	})
	for _, spec := range testSpecVariants(t)[:2] {
		postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec})
	}
	if s.costs.Dropped() < 1 {
		t.Fatalf("ring dropped = %d, want >= 1 with size-1 ring", s.costs.Dropped())
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["cost.reports_dropped"]; got < 1 {
		t.Errorf("cost.reports_dropped gauge = %g", got)
	}
	if _, ok := snap.Gauges["cost.log_dropped"]; !ok {
		t.Error("cost.log_dropped gauge missing when a sink is configured")
	}
	if _, ok := snap.Gauges["obs.flight_dropped"]; !ok {
		t.Error("obs.flight_dropped gauge missing")
	}
	// The healthy sink received one JSONL line per solve.
	if n := strings.Count(sink.String(), "\n"); n < 2 {
		t.Errorf("JSONL sink lines = %d, want >= 2", n)
	}
}
