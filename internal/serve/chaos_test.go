package serve

// The chaos suite drives the full HTTP service with deterministic fault
// injection armed at every seam and asserts the hardening invariants:
//
//   - the process never dies (a /healthz probe answers 200 after every
//     storm);
//   - every 5xx body and header carries the trace ID;
//   - the cache never serves a corrupted body — replay after the fault
//     clears is byte-identical;
//   - no singleflight waiter is ever stranded (concurrent bursts always
//     complete);
//   - async jobs retry transient faults, fail cleanly on permanent ones
//     and on panics, and never take the worker down.
//
// The seed comes from CDR_FAULTS_SEED (default 1) so ci.sh can replay
// the same storms across a fixed seed matrix. `go test -short` skips the
// suite.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
)

// chaosSeed reads the injection seed the same way cdrserved does, so a
// failing CI storm reproduces locally with one env var.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("CDR_FAULTS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CDR_FAULTS_SEED=%q: %v", v, err)
	}
	return seed
}

// newChaosServer arms spec on a fresh test server.
func newChaosServer(t *testing.T, spec string, cfg ServerConfig) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	inj, err := faults.Parse(spec, chaosSeed(t), reg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Faults = inj
	s, ts, _ := newTestServer(t, cfg)
	return s, ts.URL, reg
}

// checkErrorCarriesTrace asserts the non-2xx contract: the X-Trace-Id
// header is set and the JSON body repeats the trace ID next to the error.
func checkErrorCarriesTrace(t *testing.T, resp *http.Response, body []byte) {
	t.Helper()
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Errorf("%d response lacks X-Trace-Id header", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("%d body is not an error envelope: %v\n%s", resp.StatusCode, err, body)
	}
	if eb.Error == "" || eb.TraceID == "" {
		t.Errorf("%d body missing error/trace_id: %s", resp.StatusCode, body)
	}
	if eb.TraceID != resp.Header.Get("X-Trace-Id") {
		t.Errorf("body trace %q != header trace %q", eb.TraceID, resp.Header.Get("X-Trace-Id"))
	}
}

// checkAlive asserts the process-survival invariant after a storm.
func checkAlive(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz after storm: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after storm = %d, want 200", resp.StatusCode)
	}
}

// TestChaosSyncMatrix storms every synchronous seam with every mode. Each
// cell arms a one-shot fault (n=1), fires a concurrent burst of identical
// requests through it (the stranded-waiter probe), then replays after the
// fault has cleared and checks byte-identical recovery.
func TestChaosSyncMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	cases := []struct {
		point string
		mode  string
		// clean reports that this cell's fault is absorbed without a 5xx
		// (delays just slow the request; a skipped cache insert re-solves).
		clean bool
	}{
		{"engine.solve", "error", false},
		{"engine.solve", "panic", false},
		{"engine.solve", "delay", true},
		{"singleflight.leader", "error", false},
		{"singleflight.leader", "panic", false},
		{"singleflight.leader", "delay", true},
		{"multigrid.cycle", "error", false},
		{"multigrid.cycle", "panic", false},
		{"multigrid.cycle", "delay", true},
		{"cache.put", "error", true},
		{"cache.put", "panic", false},
		{"cache.put", "delay", true},
	}
	for _, tc := range cases {
		t.Run(tc.point+"/"+tc.mode, func(t *testing.T) {
			spec := fmt.Sprintf("%s:%s:n=1", tc.point, tc.mode)
			if tc.mode == "delay" {
				spec += ":ms=30"
			}
			_, url, reg := newChaosServer(t, spec, ServerConfig{SyncTimeout: time.Minute})
			req := solveRequest{Spec: testSpec(t)}

			// Storm: a concurrent burst through the armed seam. Every
			// request must complete — a stranded singleflight waiter would
			// hang the burst until the test deadline kills the run.
			const burst = 4
			var wg sync.WaitGroup
			codes := make([]int, burst)
			bodies := make([][]byte, burst)
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp, body := postJSON(t, url+"/v1/analyze", req)
					codes[i] = resp.StatusCode
					bodies[i] = body
					if resp.StatusCode >= 500 {
						checkErrorCarriesTrace(t, resp, body)
					} else if resp.StatusCode != http.StatusOK {
						t.Errorf("burst %d: status %d\n%s", i, resp.StatusCode, body)
					}
				}(i)
			}
			wg.Wait()
			fired := reg.Counter("faults.fired." + tc.point).Value()
			if fired != 1 {
				t.Errorf("faults.fired.%s = %d, want the armed one-shot to fire once", tc.point, fired)
			}
			saw5xx := false
			for _, c := range codes {
				if c >= 500 {
					saw5xx = true
				}
			}
			if tc.clean && saw5xx {
				t.Errorf("codes %v: an absorbed fault surfaced a 5xx", codes)
			}
			if !tc.clean && !saw5xx {
				t.Errorf("codes %v: the storm never surfaced the fault", codes)
			}

			// Recovery: the fault is exhausted; the same spec must now
			// solve and replay byte-identically, including against any
			// body the storm already served.
			respA, bodyA := postJSON(t, url+"/v1/analyze", req)
			respB, bodyB := postJSON(t, url+"/v1/analyze", req)
			if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
				t.Fatalf("post-fault replay: %d then %d\n%s", respA.StatusCode, respB.StatusCode, bodyA)
			}
			if !bytes.Equal(bodyA, bodyB) {
				t.Errorf("post-fault replay bodies differ:\n%s\nvs\n%s", bodyA, bodyB)
			}
			if respB.Header.Get("X-Cache") != "hit" {
				t.Errorf("second post-fault replay X-Cache = %q, want hit", respB.Header.Get("X-Cache"))
			}
			// A storm body served while the cache.put fault skipped the
			// insert was never cached, so its solve_ms wall-clock field
			// legitimately differs from the later re-solve; every other
			// cell's storm bodies share the cache with the replay.
			if !(tc.point == "cache.put" && tc.mode == "error") {
				for i, c := range codes {
					if c == http.StatusOK && !bytes.Equal(bodies[i], bodyA) {
						t.Errorf("storm body %d differs from post-fault body:\n%s\nvs\n%s", i, bodies[i], bodyA)
					}
				}
			}
			checkAlive(t, url)
		})
	}
}

// TestChaosCacheEvict arms the eviction seam on a one-entry cache: an
// injected eviction failure may leave the cache transiently over
// capacity but never corrupts it — every stored body replays
// byte-identically and the next insert finishes the deferred eviction.
func TestChaosCacheEvict(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	specs := testSpecVariants(t)

	t.Run("error", func(t *testing.T) {
		e, url, _ := newChaosServer(t, "cache.evict:error:n=1",
			ServerConfig{Engine: EngineConfig{CacheEntries: 1}, SyncTimeout: time.Minute})
		_, bodyA := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[0]})
		// Inserting B trips the eviction fault: A stays, cache runs over
		// capacity, the request itself is unaffected.
		respB, _ := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[1]})
		if respB.StatusCode != http.StatusOK {
			t.Fatalf("insert across failed eviction: %d", respB.StatusCode)
		}
		if n := e.engine.CacheLen(); n != 2 {
			t.Errorf("cache len after failed eviction = %d, want 2 (deferred evict)", n)
		}
		respA2, bodyA2 := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[0]})
		if respA2.Header.Get("X-Cache") != "hit" || !bytes.Equal(bodyA, bodyA2) {
			t.Errorf("entry surviving a failed eviction must replay byte-identically (X-Cache=%q)",
				respA2.Header.Get("X-Cache"))
		}
		// The next insert drains the backlog down to capacity.
		postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[2]})
		if n := e.engine.CacheLen(); n != 1 {
			t.Errorf("cache len after recovery insert = %d, want 1", n)
		}
		checkAlive(t, url)
	})

	t.Run("panic", func(t *testing.T) {
		e, url, _ := newChaosServer(t, "cache.evict:panic:n=1",
			ServerConfig{Engine: EngineConfig{CacheEntries: 1}, SyncTimeout: time.Minute})
		_, bodyA := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[0]})
		// The panic fires mid-insert of B: that request 500s, but the
		// insert itself completed before the eviction step, so both
		// entries stay intact.
		respB, errB := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[1]})
		if respB.StatusCode != http.StatusInternalServerError {
			t.Fatalf("eviction panic: %d, want 500", respB.StatusCode)
		}
		checkErrorCarriesTrace(t, respB, errB)
		if n := e.engine.CacheLen(); n != 2 {
			t.Errorf("cache len after eviction panic = %d, want 2 (insert completed)", n)
		}
		respA2, bodyA2 := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[0]})
		if respA2.StatusCode != http.StatusOK || !bytes.Equal(bodyA, bodyA2) {
			t.Errorf("cache corrupted by eviction panic: %d", respA2.StatusCode)
		}
		respB2, bodyB2 := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[1]})
		respB3, bodyB3 := postJSON(t, url+"/v1/analyze", solveRequest{Spec: specs[1]})
		if respB2.StatusCode != http.StatusOK || respB3.StatusCode != http.StatusOK ||
			!bytes.Equal(bodyB2, bodyB3) {
			t.Errorf("post-panic replay of the inserting spec differs")
		}
		checkAlive(t, url)
	})
}

// pollJob polls the HTTP jobs endpoint until the job reaches a terminal
// status.
func pollJob(t *testing.T, url, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getJSON(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d\n%s", id, resp.StatusCode, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal status", id)
	return JobView{}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// submitAsync posts an async analyze and returns the accepted job ID.
func submitAsync(t *testing.T, url string, req solveRequest) string {
	t.Helper()
	req.Async = true
	resp, body := postJSON(t, url+"/v1/analyze", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d\n%s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// TestChaosJobsDequeue storms the async path through the jobs.dequeue
// seam: transient faults retry to success, permanent faults and panics
// fail exactly that job, and the worker pool keeps serving afterwards.
func TestChaosJobsDequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	base := ServerConfig{SyncTimeout: time.Minute, JobRetryBase: time.Millisecond}

	t.Run("transient-error-retries", func(t *testing.T) {
		_, url, reg := newChaosServer(t, "jobs.dequeue:error:n=1", base)
		v := pollJob(t, url, submitAsync(t, url, solveRequest{Spec: testSpec(t)}))
		if v.Status != StatusDone || v.Retries < 1 {
			t.Errorf("job = %+v, want done after >=1 retry", v)
		}
		if got := reg.Counter("serve.jobs_retried").Value(); got < 1 {
			t.Errorf("jobs_retried = %d, want >=1", got)
		}
		checkAlive(t, url)
	})

	t.Run("permanent-error-fails", func(t *testing.T) {
		_, url, _ := newChaosServer(t, "jobs.dequeue:error:n=1:perm=1", base)
		v := pollJob(t, url, submitAsync(t, url, solveRequest{Spec: testSpec(t)}))
		if v.Status != StatusFailed || v.Retries != 0 {
			t.Errorf("job = %+v, want failed without retries", v)
		}
		checkAlive(t, url)
	})

	t.Run("panic-fails-job-not-pool", func(t *testing.T) {
		_, url, _ := newChaosServer(t, "jobs.dequeue:panic:n=1", base)
		v := pollJob(t, url, submitAsync(t, url, solveRequest{Spec: testSpec(t)}))
		if v.Status != StatusFailed || v.Retries != 0 {
			t.Errorf("job = %+v, want failed without retries (panics are permanent)", v)
		}
		// The pool survived: the next job runs clean.
		v = pollJob(t, url, submitAsync(t, url, solveRequest{Spec: testSpec(t)}))
		if v.Status != StatusDone {
			t.Errorf("post-panic job = %+v, want done", v)
		}
		checkAlive(t, url)
	})

	t.Run("delay-succeeds", func(t *testing.T) {
		_, url, _ := newChaosServer(t, "jobs.dequeue:delay:ms=30:n=1", base)
		v := pollJob(t, url, submitAsync(t, url, solveRequest{Spec: testSpec(t)}))
		if v.Status != StatusDone {
			t.Errorf("delayed job = %+v, want done", v)
		}
		checkAlive(t, url)
	})
}
