package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/faults"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/obs/progress"
	"cdrstoch/internal/passage"
	"cdrstoch/internal/serve/speckey"
	"cdrstoch/internal/spmat"
	"cdrstoch/internal/sweep"
)

// ErrBadRequest marks client errors (invalid specs, unknown sweep
// parameters); the HTTP layer maps it to 400 instead of 500.
var ErrBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// CacheEntries bounds the result cache. Default 256.
	CacheEntries int
	// MaxConcurrent bounds the number of simultaneous solves across all
	// requests (sweep fan-out included). Default 4.
	MaxConcurrent int
	// SolveWorkers is the parallel team width each solve uses for its
	// sparse kernels. The default divides the machine among the solve
	// slots — max(1, GOMAXPROCS/MaxConcurrent) — so a saturated solve
	// semaphore does not oversubscribe the cores. Set 1 to force serial
	// solves.
	SolveWorkers int
	// Multigrid overrides the stationary solver configuration; its Ctx and
	// Trace fields are overwritten per request. The zero value selects
	// core.SolveOptions' robust defaults.
	Multigrid multigrid.Config
	// Registry receives the serve.* metrics. May be nil (no-op).
	Registry *obs.Registry
	// Tracer receives solver events (multigrid spans, per-cycle
	// residuals) for every cache-miss solve. Cache hits emit nothing —
	// that silence is the observable proof a response came from the cache.
	Tracer obs.Tracer
	// Faults arms the engine's injection points (engine.solve, cache.put,
	// cache.evict, singleflight.leader) and is threaded into the solver
	// (multigrid.cycle). Nil (the default) disables injection at zero
	// cost.
	Faults *faults.Injector
	// Progress registers every cache-miss solve with the live progress
	// tracker: the solve's tracer events additionally feed a per-solve
	// record (phase, iteration, residual, ETA) that the watchdog
	// classifies and /debug/progress serves. Nil (the default) disables
	// tracking at zero cost.
	Progress *progress.Tracker
	// Costs receives one SolveReport per cache-miss solve (the backing
	// store of /debug/solves and the X-Solve-Cost-* headers). Nil skips
	// the ring but the per-endpoint histograms still reach Registry.
	Costs *cost.Ring
	// CostLog optionally mirrors every SolveReport to a JSONL sink for
	// offline analysis. Nil disables the sink.
	CostLog *cost.JSONL
}

// Engine maps specs to immutable response bodies: content-addressed cache
// in front, singleflight dedup and a solve-concurrency semaphore behind.
// All methods are safe for concurrent use.
type Engine struct {
	cfg EngineConfig
	reg *obs.Registry

	mu    sync.Mutex // guards cache
	cache *Cache

	sf  group
	sem chan struct{}

	// teams recycles sparse-kernel worker pools across requests: at most
	// MaxConcurrent are live at once (one per solve slot), each of width
	// SolveWorkers, so concurrent solves share the machine instead of
	// each spawning a full-width team. Pools dropped under memory
	// pressure release their goroutines via finalizer.
	teams sync.Pool
}

// NewEngine returns a ready Engine.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.SolveWorkers <= 0 {
		w := runtime.GOMAXPROCS(0) / cfg.MaxConcurrent
		if w < 1 {
			w = 1
		}
		cfg.SolveWorkers = w
	}
	e := &Engine{
		cfg:   cfg,
		reg:   cfg.Registry,
		cache: NewCache(cfg.CacheEntries, cfg.Registry),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
	e.cache.faults = cfg.Faults
	e.sf.faults = cfg.Faults
	e.teams.New = func() any { return spmat.NewPool(cfg.SolveWorkers) }
	return e
}

// fptr boxes a float for JSON, mapping non-finite values to null (JSON
// has no Inf/NaN; an infinite mean time between slips means "no slips
// observed at stationarity").
func fptr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// SlipBody is the slip-statistics section shared by responses.
type SlipBody struct {
	// Flux is the stationary entry probability per bit into the slip set.
	Flux float64 `json:"flux"`
	// OutsideMass and TargetMass split the stationary mass around the set.
	OutsideMass float64 `json:"outside_mass"`
	TargetMass  float64 `json:"target_mass"`
	// MeanTimeBetween is the conditional renewal estimate in bit periods;
	// null when no slip flux exists.
	MeanTimeBetween *float64 `json:"mean_time_between_bits"`
	// WrapRate and WrapMeanTimeBetween report the exact boundary-crossing
	// slip measure of WrapPhase models; omitted otherwise.
	WrapRate            *float64 `json:"wrap_rate,omitempty"`
	WrapMeanTimeBetween *float64 `json:"wrap_mean_time_between_bits,omitempty"`
}

// AnalyzeBody is the response body of /v1/analyze (and of each sweep
// point). Bodies are cached as bytes, so identical specs always yield
// byte-identical responses.
type AnalyzeBody struct {
	SpecKey   string   `json:"spec_key"`
	States    int      `json:"states"`
	BER       float64  `json:"ber"`
	Converged bool     `json:"converged"`
	Cycles    int      `json:"cycles"`
	Residual  float64  `json:"residual"`
	SolveMS   float64  `json:"solve_ms"` // wall clock of the original solve
	Slip      SlipBody `json:"slip"`
}

// cacheGet consults the cache under the engine lock.
func (e *Engine) cacheGet(key string) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.get(key)
}

// cachePut stores a finished body under the engine lock.
func (e *Engine) cachePut(key string, body []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache.put(key, body)
}

// acquire takes a solve slot, honoring ctx while queueing.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: queued for a solve slot: %w", ctx.Err())
	}
}

func (e *Engine) release() { <-e.sem }

// cached wraps the cache + singleflight + solve pipeline shared by all
// endpoints. compute must be a pure function of the key. The flight runs
// under the initiating request's context; a waiter whose own context is
// still live retries when the leader's context dies — whether the leader
// was canceled or ran out its own (possibly tighter) deadline — becoming
// the new leader, so one impatient or short-deadlined client cannot
// poison the result for others. A follower never surfaces the dead
// leader's ctx.Err() as its own result.
func (e *Engine) cached(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	if body, ok := e.cacheGet(key); ok {
		return body, true, nil
	}
	for {
		body, shared, err := e.sf.do(key, func() ([]byte, error) {
			// Double-check under singleflight: another flight may have
			// completed between the miss above and this call.
			if body, ok := e.cacheGet(key); ok {
				return body, nil
			}
			body, err := compute(ctx)
			if err != nil {
				return nil, err
			}
			e.cachePut(key, body)
			return body, nil
		})
		if shared {
			e.reg.Counter("serve.singleflight_shared").Inc()
			leaderCtxDied := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
			if err != nil && leaderCtxDied && ctx.Err() == nil {
				continue // the leader's context died, ours did not: retry as leader
			}
		}
		return body, shared && err == nil, err
	}
}

// validate hashes and validates a spec, mapping both failure modes to
// ErrBadRequest.
func validate(spec core.Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", badRequestf("invalid spec: %v", err)
	}
	h, err := speckey.Hash(spec)
	if err != nil {
		return "", badRequestf("unhashable spec: %v", err)
	}
	return h, nil
}

// ms converts a duration to fractional milliseconds for histogram
// observations.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// shortKey returns the spec-key prefix used in error messages and pprof
// labels (bounded cardinality for profile label indexes).
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// trackProgress registers one solve with the live progress tracker. The
// returned context is cancelable by the watchdog (armed only under
// cancel-on-stall), the returned tracer tees the solve's events into its
// tracker handle — per-solve attribution by construction, so concurrent
// solves sharing a request trace (sweep fan-out) never mix records — and
// the returned func closes the registration with the solve's disposition.
// With no tracker configured everything passes through untouched.
func (e *Engine) trackProgress(ctx context.Context, endpoint, key string) (context.Context, obs.Tracer, func(error)) {
	if e.cfg.Progress == nil {
		return ctx, e.cfg.Tracer, func(error) {}
	}
	ctx, cancel := context.WithCancel(ctx)
	h := e.cfg.Progress.Begin(ctx, endpoint, shortKey(key), cancel)
	return ctx, obs.Tee(e.cfg.Tracer, h), func(err error) {
		h.End(err)
		cancel()
	}
}

// Solve backends selectable in the request envelope. The empty string
// and "explicit" assemble the product TPM; "kron" never forms it and
// solves through the Kronecker-descriptor operator instead.
const (
	backendExplicit = "explicit"
	backendKron     = "kron"
)

// validBackend maps an envelope backend string to ErrBadRequest when it
// names no known solve backend.
func validBackend(backend string) error {
	switch backend {
	case "", backendExplicit, backendKron:
		return nil
	}
	return badRequestf("unknown backend %q (want %q or %q)", backend, backendExplicit, backendKron)
}

// solve builds the model and runs the stationary analysis under ctx.
// backend selects the transition representation: explicit CSR (the
// default) or the matrix-free Kronecker descriptor, which never
// assembles the product matrix — the build stage then runs BuildShell
// and the solve stage the implicit-fine-level multigrid.
// Both stages record latency histograms (serve.build_ms, serve.solve_ms)
// and emit trace-stamped spans, so per-request traces and the flight
// recorder see the engine stages alongside the solver's own events. The
// stages additionally run under pprof labels (endpoint, spec, stage), so
// CPU profiles of a busy server attribute samples to the spec being
// solved, not just to "the solver".
func (e *Engine) solve(ctx context.Context, spec core.Spec, key, endpoint, backend string) (m *core.Model, a *core.Analysis, err error) {
	if err := e.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer e.release()
	ctx, sink, endTrack := e.trackProgress(ctx, endpoint, key)
	defer func() { endTrack(err) }()
	if ferr := e.cfg.Faults.FireCtx(ctx, "engine.solve"); ferr != nil {
		return nil, nil, fmt.Errorf("serve: solve %s: %w", shortKey(key), ferr)
	}
	defer e.reg.Timer("serve.solve").Time()()
	e.reg.Counter("serve.solves").Inc()
	tr := obs.StampFromContext(ctx, sink)

	buildStart := time.Now()
	endBuild := obs.StartSpan(tr, "serve.build")
	pprof.Do(ctx, pprof.Labels("endpoint", endpoint, "spec", shortKey(key), "stage", "build"), func(ctx context.Context) {
		if backend == backendKron {
			m, err = core.BuildShell(spec)
		} else {
			m, err = core.Build(spec)
		}
	})
	endBuild()
	e.reg.Histogram("serve.build_ms").Observe(ms(time.Since(buildStart)))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: build %s: %w", shortKey(key), err)
	}
	team := e.teams.Get().(*spmat.Pool)
	defer e.teams.Put(team)
	mg := e.cfg.Multigrid
	mg.Trace = sink
	mg.Pool = team
	mg.Faults = e.cfg.Faults
	solveStart := time.Now()
	endSolve := obs.StartSpan(tr, "serve.solve")
	pprof.Do(ctx, pprof.Labels("endpoint", endpoint, "spec", shortKey(key), "stage", "solve"), func(ctx context.Context) {
		mg.Ctx = ctx // the labeled ctx still carries trace ID and meter
		if backend == backendKron {
			a, err = m.SolveKron(core.SolveOptions{Multigrid: mg})
		} else {
			a, err = m.Solve(core.SolveOptions{Multigrid: mg})
		}
	})
	endSolve()
	e.reg.Histogram("serve.solve_ms").Observe(ms(time.Since(solveStart)))
	if err != nil {
		if errors.Is(err, core.ErrUnconverged) {
			e.reg.Counter("serve.unconverged").Inc()
		}
		return m, nil, fmt.Errorf("serve: solve %s: %w", shortKey(key), err)
	}
	e.reg.Counter("serve.solver_cycles").Add(int64(a.Multigrid.Cycles))
	e.reg.Histogram("serve.solve_cycles").Observe(float64(a.Multigrid.Cycles))
	return m, a, nil
}

// recordCost closes a solve's meter and fans the report out to the ring,
// the registry histograms, and the JSONL sink. m may be nil (build
// failed); err annotates failed solves. The report's trace identity
// comes from the context the solve actually ran under, so async jobs
// carry their submitter's trace ID even across retries.
func (e *Engine) recordCost(ctx context.Context, meter *cost.Meter, endpoint, key string, m *core.Model, err error) {
	rep := meter.Finish()
	rep.Endpoint = endpoint
	rep.SpecKey = key
	rep.Trace, rep.Parent = obs.TraceFromContext(ctx)
	if m != nil {
		switch {
		case m.P != nil:
			rep.States = m.NumStates()
			rep.NNZ = m.P.NNZ()
			rep.MatrixBytes = m.P.MemoryBytes()
		case m.Desc != nil:
			// Matrix-free solve: NNZ and MatrixBytes describe the factor
			// matrices actually resident — the numbers States is paid for
			// with, not what an explicit assembly would have stored.
			rep.States = m.NumStates()
			rep.NNZ = int(m.Desc.NNZ())
			rep.MatrixBytes = m.Desc.MemoryBytes()
		}
	}
	if err != nil {
		rep.Err = err.Error()
	}
	e.cfg.Costs.Add(rep)
	cost.Aggregate(e.reg, rep)
	e.cfg.CostLog.Write(rep)
}

// Costs exposes the engine's report ring (for the HTTP layer).
func (e *Engine) Costs() *cost.Ring { return e.cfg.Costs }

func slipBody(m *core.Model, a *core.Analysis) (SlipBody, error) {
	flux, err := m.SlipStats(a.Pi)
	if err != nil {
		return SlipBody{}, err
	}
	out := SlipBody{
		Flux:            flux.Flux,
		OutsideMass:     flux.OutsideMass,
		TargetMass:      flux.TargetMass,
		MeanTimeBetween: fptr(flux.MeanTimeBetween),
	}
	if m.Spec.WrapPhase {
		rate, mtbs, err := m.WrapSlipRate(a.Pi)
		if err != nil {
			return SlipBody{}, err
		}
		out.WrapRate = fptr(rate)
		out.WrapMeanTimeBetween = fptr(mtbs)
	}
	return out, nil
}

// analyzeBodyJSON assembles the AnalyzeBody bytes of one solved spec.
// Both /v1/analyze and the batch sweep go through this one marshaller, so
// a batch point's cache entry is byte-compatible with what a later
// /v1/analyze of the identical spec would have produced (and vice versa).
func analyzeBodyJSON(h string, m *core.Model, a *core.Analysis, start time.Time) ([]byte, error) {
	slip, err := slipBody(m, a)
	if err != nil {
		return nil, err
	}
	return json.Marshal(AnalyzeBody{
		SpecKey:   h,
		States:    m.NumStates(),
		BER:       a.BER,
		Converged: a.Multigrid.Converged,
		Cycles:    a.Multigrid.Cycles,
		Residual:  a.Multigrid.Residual,
		SolveMS:   float64(time.Since(start).Microseconds()) / 1000,
		Slip:      slip,
	})
}

// Analyze returns the stationary + BER body for spec, reporting whether
// it was served from cache.
func (e *Engine) Analyze(ctx context.Context, spec core.Spec) ([]byte, bool, error) {
	return e.AnalyzeBackend(ctx, spec, "")
}

// AnalyzeBackend is Analyze with an explicit solve backend. The two
// backends produce numerically matching bodies but are cached under
// distinct keys ("analyze:" vs "analyze:kron:"): their solve_ms fields
// differ by construction, and keeping the namespaces apart means a
// backend comparison always exercises both paths instead of the second
// request silently hitting the first one's entry.
func (e *Engine) AnalyzeBackend(ctx context.Context, spec core.Spec, backend string) ([]byte, bool, error) {
	if err := validBackend(backend); err != nil {
		return nil, false, err
	}
	h, err := validate(spec)
	if err != nil {
		return nil, false, err
	}
	key := "analyze:" + h
	if backend == backendKron {
		key = "analyze:kron:" + h
	}
	return e.cached(ctx, key, func(ctx context.Context) ([]byte, error) {
		start := time.Now()
		meter := cost.NewMeter()
		ctx = cost.ContextWith(ctx, meter)
		m, a, err := e.solve(ctx, spec, h, "analyze", backend)
		defer func() { e.recordCost(ctx, meter, "analyze", h, m, err) }()
		if err != nil {
			return nil, err
		}
		return analyzeBodyJSON(h, m, a, start)
	})
}

// SlipResponse is the body of /v1/slip: the slip measures plus the
// quasi-stationary hazard of the conditioned loop.
type SlipResponse struct {
	SpecKey string   `json:"spec_key"`
	States  int      `json:"states"`
	Slip    SlipBody `json:"slip"`
	// HazardPerBit is the asymptotic slip hazard of the quasi-stationary
	// regime; ConditionedBER the error rate conditioned on never slipping.
	HazardPerBit   *float64 `json:"hazard_per_bit,omitempty"`
	ConditionedBER *float64 `json:"conditioned_ber,omitempty"`
}

// Slip returns the cycle-slip body for spec.
func (e *Engine) Slip(ctx context.Context, spec core.Spec) ([]byte, bool, error) {
	h, err := validate(spec)
	if err != nil {
		return nil, false, err
	}
	return e.cached(ctx, "slip:"+h, func(ctx context.Context) ([]byte, error) {
		meter := cost.NewMeter()
		ctx = cost.ContextWith(ctx, meter)
		m, a, err := e.solve(ctx, spec, h, "slip", "")
		defer func() { e.recordCost(ctx, meter, "slip", h, m, err) }()
		if err != nil {
			return nil, err
		}
		slip, err := slipBody(m, a)
		if err != nil {
			return nil, err
		}
		body := SlipResponse{SpecKey: h, States: m.NumStates(), Slip: slip}
		// The quasi-stationary refinement only exists when the slip set is
		// nonempty and reachable; degrade gracefully when it is not. It
		// runs under the metered ctx so its sweeps are attributed (and
		// canceled) with the rest of the request.
		if qs, qerr := m.SlipQuasiStationaryOpt(passage.QSOptions{Ctx: ctx, Workers: e.cfg.SolveWorkers}); qerr == nil {
			body.HazardPerBit = fptr(qs.HazardPerStep)
			body.ConditionedBER = fptr(m.BER(qs.Nu))
		}
		return json.Marshal(body)
	})
}

// SweepPoint is one member of a sweep family.
type SweepPoint struct {
	Value  float64         `json:"value"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Batch-mode provenance: whether the point's solve started from a
	// neighbor's solution, whether it reused the previous point's symbolic
	// setup, and the multigrid cycles it took. Absent on fan-out sweeps,
	// cache hits, and flights shared with a concurrent request.
	WarmStarted bool `json:"warm_started,omitempty"`
	ReusedSetup bool `json:"reused_setup,omitempty"`
	Cycles      int  `json:"cycles,omitempty"`
}

// SweepBody is the response body of /v1/sweep.
type SweepBody struct {
	Param string `json:"param"`
	// Batch is true when the sweep ran as a warm-started continuation
	// chain (request field "batch") instead of the parallel fan-out.
	Batch  bool         `json:"batch,omitempty"`
	Points []SweepPoint `json:"points"`
}

// maxSweepValues bounds a sweep request; larger families should be split
// by the client (each point is cached, so splitting costs nothing).
const maxSweepValues = 256

// applySweepParam derives the spec of one sweep point.
func applySweepParam(base core.Spec, param string, v float64) (core.Spec, error) {
	s := base
	switch param {
	case "counter":
		n := int(v)
		if float64(n) != v || n < 1 {
			return s, badRequestf("counter value %g is not a positive integer", v)
		}
		s.CounterLen = n
	case "stdnw":
		if v <= 0 {
			return s, badRequestf("stdnw value %g must be positive", v)
		}
		s.EyeJitter = dist.NewGaussian(0, v)
	case "density":
		s.TransitionDensity = v
	case "threshold":
		s.Threshold = v
	default:
		return s, badRequestf("unknown sweep param %q (want counter, stdnw, density or threshold)", param)
	}
	return s, nil
}

// Sweep fans a parameter family out over the engine's bounded solve pool
// and assembles the per-point analyze bodies in request order. Individual
// point failures are reported in place; only request-level errors (bad
// param, empty family, canceled context) fail the whole sweep.
func (e *Engine) Sweep(ctx context.Context, base core.Spec, param string, values []float64) ([]byte, error) {
	if len(values) == 0 {
		return nil, badRequestf("sweep needs at least one value")
	}
	if len(values) > maxSweepValues {
		return nil, badRequestf("sweep of %d values exceeds the limit of %d", len(values), maxSweepValues)
	}
	if _, err := applySweepParam(base, param, values[0]); err != nil {
		return nil, err // reject unknown params before spawning anything
	}
	points := make([]SweepPoint, len(values))
	var wg sync.WaitGroup
	for i, v := range values {
		wg.Add(1)
		go func(i int, v float64) {
			defer wg.Done()
			points[i] = SweepPoint{Value: v}
			// The shield keeps a panicking point (injected or real) a
			// failed point, not a dead process: a goroutine panic would
			// otherwise bypass every recovery layer above us.
			err := shield(func() error {
				spec, err := applySweepParam(base, param, v)
				if err == nil {
					err = spec.Validate()
				}
				if err != nil {
					return err
				}
				body, cached, err := e.Analyze(ctx, spec)
				if err != nil {
					return err
				}
				points[i].Cached = cached
				points[i].Result = body
				return nil
			})
			if err != nil {
				points[i].Error = err.Error()
			}
		}(i, v)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("serve: sweep stopped: %w", err)
	}
	return json.Marshal(SweepBody{Param: param, Points: points})
}

// swapTracer is an obs.Tracer whose target can be swapped between
// solves. The batch sweep bakes one tracer into its long-lived session's
// solver; the swap lets each point re-route the solver's events through
// that point's progress handle without rebuilding the hierarchy.
type swapTracer struct {
	mu sync.RWMutex
	t  obs.Tracer
}

func (s *swapTracer) set(t obs.Tracer) {
	s.mu.Lock()
	s.t = t
	s.mu.Unlock()
}

func (s *swapTracer) Emit(e obs.Event) {
	s.mu.RLock()
	t := s.t
	s.mu.RUnlock()
	if t != nil {
		t.Emit(e)
	}
}

// sessionSolve runs one batch sweep point through the shared Session
// under a solve slot, with the same metrics, fault point, pprof labels,
// and trace spans as the point-at-a-time path. The slot is held only for
// the point's own solve — never while waiting on another request's
// flight — so a batch cannot deadlock a MaxConcurrent=1 engine. hold is
// the session solver's swappable event sink (nil in tests that call this
// directly); for the point's duration it routes through the progress
// handle.
func (e *Engine) sessionSolve(ctx context.Context, sess *sweep.Session, spec core.Spec, key string, hold *swapTracer) (pt *sweep.Point, err error) {
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	ctx, sink, endTrack := e.trackProgress(ctx, "sweep", key)
	defer func() { endTrack(err) }()
	if hold != nil {
		hold.set(sink)
		defer hold.set(e.cfg.Tracer)
	}
	if ferr := e.cfg.Faults.FireCtx(ctx, "engine.solve"); ferr != nil {
		return nil, fmt.Errorf("serve: solve %s: %w", shortKey(key), ferr)
	}
	defer e.reg.Timer("serve.solve").Time()()
	e.reg.Counter("serve.solves").Inc()
	tr := obs.StampFromContext(ctx, sink)
	solveStart := time.Now()
	endSolve := obs.StartSpan(tr, "serve.sweep_point")
	pprof.Do(ctx, pprof.Labels("endpoint", "sweep", "spec", shortKey(key), "stage", "solve"), func(ctx context.Context) {
		pt, err = sess.Solve(ctx, spec)
	})
	endSolve()
	e.reg.Histogram("serve.solve_ms").Observe(ms(time.Since(solveStart)))
	if err != nil {
		if errors.Is(err, core.ErrUnconverged) {
			e.reg.Counter("serve.unconverged").Inc()
		}
		return nil, fmt.Errorf("serve: solve %s: %w", shortKey(key), err)
	}
	e.reg.Counter("serve.solver_cycles").Add(int64(pt.Analysis.Multigrid.Cycles))
	e.reg.Histogram("serve.solve_cycles").Observe(float64(pt.Analysis.Multigrid.Cycles))
	return pt, nil
}

// SweepBatch solves a parameter family as one warm-started continuation
// chain: points run sequentially through a sweep.Session that reuses the
// symbolic setup across pattern-identical neighbors and seeds each solve
// from the previous solution. Each point still gets its own cache entry
// under the same key /v1/analyze uses — hits skip the solve (and break
// the seed chain harmlessly; seed quality is measured, not assumed) — and
// each miss runs under singleflight, so a batch and concurrent analyze
// requests for the same spec share one solve. Point failures are
// reported in place, like Sweep.
func (e *Engine) SweepBatch(ctx context.Context, base core.Spec, param string, values []float64) ([]byte, error) {
	if len(values) == 0 {
		return nil, badRequestf("sweep needs at least one value")
	}
	if len(values) > maxSweepValues {
		return nil, badRequestf("sweep of %d values exceeds the limit of %d", len(values), maxSweepValues)
	}
	if _, err := applySweepParam(base, param, values[0]); err != nil {
		return nil, err
	}
	team := e.teams.Get().(*spmat.Pool)
	defer e.teams.Put(team)
	hold := &swapTracer{t: e.cfg.Tracer}
	mg := e.cfg.Multigrid
	mg.Trace = hold
	mg.Pool = team
	mg.Faults = e.cfg.Faults
	sess := sweep.New(sweep.Options{Solve: core.SolveOptions{Multigrid: mg}})
	points := make([]SweepPoint, len(values))
	for i, v := range values {
		points[i] = SweepPoint{Value: v}
		err := shield(func() error {
			spec, err := applySweepParam(base, param, v)
			if err == nil {
				err = spec.Validate()
			}
			if err != nil {
				return err
			}
			h, err := speckey.Hash(spec)
			if err != nil {
				return badRequestf("unhashable spec: %v", err)
			}
			var pt *sweep.Point
			body, cached, err := e.cached(ctx, "analyze:"+h, func(ctx context.Context) ([]byte, error) {
				start := time.Now()
				meter := cost.NewMeter()
				ctx = cost.ContextWith(ctx, meter)
				p, err := e.sessionSolve(ctx, sess, spec, h, hold)
				defer func() {
					var m *core.Model
					if p != nil {
						m = p.Model
					}
					e.recordCost(ctx, meter, "sweep", h, m, err)
				}()
				if err != nil {
					return nil, err
				}
				pt = p
				return analyzeBodyJSON(h, p.Model, p.Analysis, start)
			})
			if err != nil {
				return err
			}
			points[i].Cached = cached
			points[i].Result = body
			if pt != nil {
				points[i].WarmStarted = pt.WarmStarted
				points[i].ReusedSetup = pt.ReusedSetup
				points[i].Cycles = pt.Analysis.Multigrid.Cycles
			}
			return nil
		})
		if err != nil {
			points[i].Error = err.Error()
		}
		if ctx.Err() != nil {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("serve: sweep stopped: %w", err)
	}
	st := sess.Stats()
	e.reg.Counter("serve.sweep_batch_points").Add(int64(st.Points))
	e.reg.Counter("serve.sweep_warm_starts").Add(int64(st.WarmStarted))
	e.reg.Counter("serve.sweep_setup_reuses").Add(int64(st.ReusedSetup))
	return json.Marshal(SweepBody{Param: param, Batch: true, Points: points})
}

// CacheLen reports the number of cached bodies (for tests and /healthz).
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache.len()
}
