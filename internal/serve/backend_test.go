package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
)

// TestAnalyzeKronBackendParity drives /v1/analyze end to end through
// both solve backends and pins the contract the matrix-free path makes:
// numerically matching results, distinct cache namespaces, and SpMV
// counts attributed to the request in the X-Solve-Cost-* headers.
func TestAnalyzeKronBackendParity(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	spec := testSpec(t)

	resp, body := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit solve: %d %s", resp.StatusCode, body)
	}
	var explicit AnalyzeBody
	if err := json.Unmarshal(body, &explicit); err != nil {
		t.Fatal(err)
	}

	kresp, kbody := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec, Backend: "kron"})
	if kresp.StatusCode != http.StatusOK {
		t.Fatalf("kron solve: %d %s", kresp.StatusCode, kbody)
	}
	// Distinct cache namespace: the kron request must have solved, not hit
	// the explicit request's entry.
	if got := kresp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("kron request X-Cache = %q, want miss", got)
	}
	var kron AnalyzeBody
	if err := json.Unmarshal(kbody, &kron); err != nil {
		t.Fatal(err)
	}
	if !kron.Converged {
		t.Fatal("kron solve did not converge")
	}
	if kron.States != explicit.States || kron.SpecKey != explicit.SpecKey {
		t.Fatalf("identity mismatch: explicit %+v vs kron %+v", explicit, kron)
	}
	if d := kron.BER - explicit.BER; d > 1e-10 || d < -1e-10 {
		t.Fatalf("BER: explicit %g vs kron %g", explicit.BER, kron.BER)
	}
	if d := kron.Slip.Flux - explicit.Slip.Flux; d > 1e-10 || d < -1e-10 {
		t.Fatalf("slip flux: explicit %g vs kron %g", explicit.Slip.Flux, kron.Slip.Flux)
	}

	// Cost attribution: the matrix-free solve is made of SpMVs and must
	// report them on the wire.
	if got := kresp.Header.Get("X-Solve-Cost-Cache"); got != "miss" {
		t.Fatalf("X-Solve-Cost-Cache = %q, want miss", got)
	}
	spmvs, err := strconv.ParseInt(kresp.Header.Get("X-Solve-Cost-Spmvs"), 10, 64)
	if err != nil || spmvs <= 0 {
		t.Fatalf("X-Solve-Cost-Spmvs = %q (err %v), want positive", kresp.Header.Get("X-Solve-Cost-Spmvs"), err)
	}
	if got := kresp.Header.Get("X-Solve-Cost-States"); got != strconv.Itoa(explicit.States) {
		t.Fatalf("X-Solve-Cost-States = %q, want %d", got, explicit.States)
	}

	// Same spec + backend again: cache hit in the kron namespace.
	hresp, hbody := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec, Backend: "kron"})
	if got := hresp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat kron request X-Cache = %q, want hit", got)
	}
	if string(hbody) != string(kbody) {
		t.Fatal("cached kron body differs from original")
	}
}

// The backend field is validated, and /v1/slip refuses it outright (its
// quasi-stationary refinement needs the explicit matrix).
func TestBackendValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	spec := testSpec(t)

	resp, body := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec, Backend: "dense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/slip", solveRequest{Spec: spec, Backend: "kron"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("slip with backend: %d %s", resp.StatusCode, body)
	}
	// "explicit" is the spelled-out default and works everywhere analyze
	// accepts a backend.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: spec, Backend: "explicit"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit backend: %d %s", resp.StatusCode, body)
	}
}
