package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cdrstoch/internal/obs"
)

// sseSubBuffer is the per-stream event buffer, sized to absorb a burst
// of roughly one whole solve's iteration events while the client is
// catching up. A client that reads slower than the solver emits loses
// events (counted, never blocking the solver) rather than growing
// memory; the terminal "done" event is delivered out of band, so a
// lossy stream still ends correctly.
const sseSubBuffer = 1024

// handleJobEvents streams a job's live solve events as Server-Sent
// Events: one "start" per tracked solve, "iter" for raw solver
// iterations, "progress" when a solve finishes (one per sweep point on
// batched sweeps), "watchdog" for stall/divergence verdicts, and a
// terminal "done" carrying the final JobView. Heartbeat comments keep
// idle connections alive; a disconnected client tears the stream down
// at the next event or heartbeat.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobView(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	s.reg.Counter("serve.sse_streams").Inc()

	// Subscribe before the terminal check: events arriving between the
	// two would otherwise fall in a gap. For already-terminal jobs the
	// subscription is released immediately.
	sub := s.progress.Subscribe(view.TraceID, sseSubBuffer)
	defer sub.Close()

	writeSSE(w, "job", view)
	fl.Flush()
	if terminalStatus(view.Status) {
		writeSSE(w, "done", view)
		fl.Flush()
		return
	}

	hb := time.NewTicker(s.cfg.EventsHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			s.reg.Counter("serve.sse_disconnects").Inc()
			return
		case e, open := <-sub.C():
			if !open {
				return
			}
			writeSSE(w, sseEventName(e), e)
			fl.Flush()
		case <-hb.C:
			// Heartbeat doubles as the terminal poll: job completion is
			// observed through the job table, not the event stream, so a
			// lossy (slow-reader) stream still terminates correctly.
			if view, ok = s.jobView(r.PathValue("id")); !ok || terminalStatus(view.Status) {
				if ok {
					// The job went terminal between event reads: the final
					// solve_end (and any trailing watchdog events) may still
					// sit buffered in the subscription. Drain them so the
					// "done" frame is genuinely last.
					for drained := false; !drained; {
						select {
						case e, open := <-sub.C():
							if !open {
								drained = true
								break
							}
							writeSSE(w, sseEventName(e), e)
						default:
							drained = true
						}
					}
					writeSSE(w, "done", view)
				}
				fl.Flush()
				return
			}
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		}
	}
}

// terminalStatus reports whether a job status is final.
func terminalStatus(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// sseEventName maps tracker event kinds onto SSE event names.
func sseEventName(e obs.Event) string {
	switch e.Kind {
	case "solve_start":
		return "start"
	case "solve_end":
		return "progress"
	case "watchdog":
		return "watchdog"
	}
	return "iter"
}

// writeSSE emits one SSE frame. Encoding failures are unrepresentable
// for the event/view types streamed here, so they degrade to a skipped
// frame rather than a torn one.
func writeSSE(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}
