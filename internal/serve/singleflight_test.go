package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGroupDedupesConcurrentCalls(t *testing.T) {
	var g group
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		body, shared, err := g.do("k", func() ([]byte, error) {
			calls.Add(1)
			close(started)
			<-release
			return []byte("result"), nil
		})
		if err != nil || shared || string(body) != "result" {
			t.Errorf("leader: body=%q shared=%v err=%v", body, shared, err)
		}
	}()
	<-started // the flight is now registered; joiners must coalesce

	const waiters = 7
	var wg sync.WaitGroup
	results := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, shared, err := g.do("k", func() ([]byte, error) {
				calls.Add(1)
				return []byte("wrong"), nil
			})
			if err != nil || string(body) != "result" {
				t.Errorf("waiter %d: body=%q err=%v", i, body, err)
			}
			results[i] = shared
		}(i)
	}
	// Release only once every waiter has joined the flight — otherwise a
	// late waiter would find the flight forgotten and lead its own.
	for g.joined("k") < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-leaderDone

	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want exactly 1", n)
	}
	for i, shared := range results {
		if !shared {
			t.Errorf("waiter %d did not share the leader's flight", i)
		}
	}
}

func TestGroupForgetsCompletedFlights(t *testing.T) {
	var g group
	var calls atomic.Int64
	run := func() ([]byte, error) {
		calls.Add(1)
		return []byte("x"), nil
	}
	if _, _, err := g.do("k", run); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.do("k", run); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("sequential calls ran fn %d times, want 2 (flights are forgotten)", n)
	}
}

func TestGroupDistinctKeysRunIndependently(t *testing.T) {
	var g group
	a, _, _ := g.do("a", func() ([]byte, error) { return []byte("A"), nil })
	b, _, _ := g.do("b", func() ([]byte, error) { return []byte("B"), nil })
	if string(a) != "A" || string(b) != "B" {
		t.Errorf("got %q, %q", a, b)
	}
}
