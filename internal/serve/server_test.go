package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/obs"
)

// newTestServer returns a Server, its httptest wrapper, and the registry.
func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, cfg.Registry
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestWriteBodyLeavesSharedSliceAlone pins the immutability contract the
// cache and singleflight rely on: writeBody serves the same slice to
// every concurrent response, so it must not write into the slice's
// backing array — not even into spare capacity past len, which is where
// appending the trailing newline used to land (a data race between
// handlers, caught by the chaos suite only when json.Marshal's size
// class left room). The sentinel in the spare capacity makes the check
// deterministic.
func TestWriteBodyLeavesSharedSliceAlone(t *testing.T) {
	body := make([]byte, 64, 128)
	backing := body[:cap(body)]
	for i := range backing {
		backing[i] = 'x'
	}
	var s Server // nil registry: counters are no-ops
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.writeBody(rec, body, true)
			if got := rec.Body.String(); got != string(body)+"\n" {
				t.Errorf("response = %q", got)
			}
		}()
	}
	wg.Wait()
	for i, b := range backing {
		if b != 'x' {
			t.Fatalf("backing array mutated at offset %d: %q", i, b)
		}
	}
}

// TestServerConcurrentCachedResponses pins writeBody's shared-slice
// contract: the cached body is one slice handed to every concurrent
// response, so the handler must never mutate it (the old append of the
// trailing newline wrote into the shared backing array — a data race
// the detector catches here, and torn bytes without it). All responses
// must come back byte-identical.
func TestServerConcurrentCachedResponses(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	req := solveRequest{Spec: testSpec(t)}
	_, want := postJSON(t, ts.URL+"/v1/analyze", req) // prime the cache

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := json.Marshal(req)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			if !bytes.Equal(body, want) {
				errs <- fmt.Errorf("concurrent cached body differs:\n%s\nvs\n%s", body, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerAnalyzeCacheFlow(t *testing.T) {
	_, ts, reg := newTestServer(t, ServerConfig{})
	req := solveRequest{Spec: testSpec(t)}

	resp1, body1 := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/analyze", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cached response differs:\n%s\nvs\n%s", body1, body2)
	}
	if got := reg.Snapshot().Counters["serve.cache_hits"]; got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{`},
		{"unknown field", `{"spex": {}}`},
		{"invalid spec", `{"spec": {"grid_step": -1}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestServerSweepEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Spec: testSpec(t), Param: "counter", Values: []float64{1, 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sweep SweepBody
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 || sweep.Points[0].Error != "" || sweep.Points[1].Error != "" {
		t.Errorf("sweep = %+v", sweep)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep", sweepRequest{
		Spec: testSpec(t), Param: "nope", Values: []float64{1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown param: status %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestServerAsyncJobLifecycle(t *testing.T) {
	s, ts, _ := newTestServer(t, ServerConfig{})

	// Solve synchronously first so async and sync bodies can be compared.
	_, syncBody := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)})

	resp, body := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t), Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d %s", resp.StatusCode, body)
	}
	var job JobView
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Status != StatusQueued {
		t.Fatalf("202 body = %+v", job)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = mustGet(t, ts.URL+"/v1/jobs/"+job.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if !job.Cached {
		t.Error("async job after identical sync solve should be a cache hit")
	}
	if !bytes.Equal(job.Result, bytes.TrimRight(syncBody, "\n")) {
		t.Errorf("async result differs from sync body:\n%s\nvs\n%s", job.Result, syncBody)
	}
	_ = s
}

func mustGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServerJobNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	resp, _ := mustGet(t, ts.URL+"/v1/jobs/job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestServerQueueBackpressure(t *testing.T) {
	s, ts, _ := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 1})

	// Occupy the single worker and fill the queue with blocking jobs,
	// then the next async HTTP submission must bounce with 429.
	block := make(chan struct{})
	defer close(block)
	blocker := func(context.Context) ([]byte, bool, error) {
		<-block
		return nil, false, nil
	}
	running, err := s.jobs.Submit("", blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s.jobs, running, StatusRunning)
	if _, err := s.jobs.Submit("", blocker); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t), Async: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerConfig{})
	resp, body := mustGet(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var health healthBody
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("health = %+v", health)
	}
	if health.Version == "" {
		t.Error("healthz carries no build version")
	}
}

// uptimeRE matches the one volatile gauge in a snapshot: process uptime
// advances between the HTTP response and the comparison snapshot, so
// byte-parity tests pin it to zero on both sides.
var uptimeRE = regexp.MustCompile(`"process\.uptime_seconds":[0-9.eE+-]+`)

func stripUptime(b []byte) []byte {
	return uptimeRE.ReplaceAll(b, []byte(`"process.uptime_seconds":0`))
}

// TestServerMetricsMatchesSnapshotJSON pins the satellite requirement:
// /metrics serves exactly the bytes of Registry.SnapshotJSON (modulo the
// uptime gauge, which is time-dependent by design).
func TestServerMetricsMatchesSnapshotJSON(t *testing.T) {
	_, ts, reg := newTestServer(t, ServerConfig{})
	postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: testSpec(t)}) // populate metrics

	_, got := mustGet(t, ts.URL+"/metrics")
	want, err := reg.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, want = stripUptime(got), stripUptime(want)
	if !bytes.Equal(got, want) {
		t.Errorf("/metrics body diverges from SnapshotJSON:\n%s\nvs\n%s", got, want)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(got, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.solves"] != 1 {
		t.Errorf("metrics solves = %d, want 1", snap.Counters["serve.solves"])
	}
}

// TestServerMetricsRaceClean hammers the registry from writers while
// readers hit /metrics; meaningful under -race.
func TestServerMetricsRaceClean(t *testing.T) {
	_, ts, reg := newTestServer(t, ServerConfig{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter(fmt.Sprintf("test.worker_%d", w%4)).Inc()
				reg.Gauge("test.gauge").Set(float64(i))
				reg.Timer("test.timer").Observe(time.Duration(i))
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, body := mustGet(t, ts.URL+"/metrics")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("metrics status %d", resp.StatusCode)
					return
				}
				if !json.Valid(body) {
					t.Errorf("metrics body invalid JSON under concurrency")
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestServerDefaultSpecRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full default spec solve is slow")
	}
	_, ts, _ := newTestServer(t, ServerConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", solveRequest{Spec: core.DefaultSpec()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out AnalyzeBody
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Error("default spec did not converge")
	}
}
