package serve

import (
	"fmt"
	"testing"

	"cdrstoch/internal/obs"
)

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(2, reg)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was touched and must survive")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c was just inserted and must survive")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.cache_evictions"]; got != 1 {
		t.Errorf("evictions counter = %d, want 1", got)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(2, nil)
	c.put("k", []byte("v1"))
	c.put("k", []byte("v2"))
	body, ok := c.get("k")
	if !ok || string(body) != "v2" {
		t.Errorf("get after update = %q, %v; want v2, true", body, ok)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestCacheCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(8, reg)
	for i := 0; i < 3; i++ {
		c.get("missing")
	}
	c.put("k", []byte("v"))
	for i := 0; i < 5; i++ {
		c.get("k")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve.cache_misses"]; got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := snap.Counters["serve.cache_hits"]; got != 5 {
		t.Errorf("hits = %d, want 5", got)
	}
}

func TestCacheMinCapacity(t *testing.T) {
	c := NewCache(0, nil)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want capacity clamp to 1", c.len())
	}
}
