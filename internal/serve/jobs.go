package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"cdrstoch/internal/obs"
)

// ErrQueueFull reports that the job queue rejected a submission; the HTTP
// layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown reports a submission after Close began draining.
var ErrShuttingDown = errors.New("serve: shutting down")

// Job statuses, in lifecycle order.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// JobView is the poll response of /v1/jobs/{id}. Result is present only
// once Status is "done". TraceID names the trace the job's solver events
// are stamped with; GET /v1/jobs/{id}/trace serves them.
type JobView struct {
	ID      string          `json:"id"`
	Status  string          `json:"status"`
	TraceID string          `json:"trace_id,omitempty"`
	Cached  bool            `json:"cached,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// job is the internal record behind a JobView.
type job struct {
	id    string
	trace string
	run   func(context.Context) ([]byte, bool, error)

	mu     sync.Mutex
	status string
	cached bool
	err    string
	body   []byte
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{ID: j.id, Status: j.status, TraceID: j.trace, Cached: j.cached, Error: j.err, Result: j.body}
}

func (j *job) set(status string, body []byte, cached bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = status
	j.body = body
	j.cached = cached
	if err != nil {
		j.err = err.Error()
	}
}

// maxFinishedJobs bounds how many completed job records are retained for
// polling; beyond it the oldest finished records are dropped and polls
// for them return 404.
const maxFinishedJobs = 1024

// Jobs is a bounded asynchronous work queue: Submit enqueues with
// backpressure, a fixed worker pool drains, finished results stay
// pollable until evicted. Close drains gracefully — queued jobs still
// run; new submissions are refused.
type Jobs struct {
	queue chan *job
	wg    sync.WaitGroup
	reg   *obs.Registry

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // eviction order for completed records
	seq      int
	closed   bool
}

// NewJobs starts a pool of workers consuming a queue of the given depth.
// Jobs run under a context canceled only by CancelAll — a disconnected
// submitter must not kill a job another poller may still want.
func NewJobs(workers, depth int, reg *obs.Registry) *Jobs {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Jobs{
		queue:   make(chan *job, depth),
		reg:     reg,
		baseCtx: ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
	}
	j.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go j.worker()
	}
	return j
}

func (j *Jobs) worker() {
	defer j.wg.Done()
	for t := range j.queue {
		j.reg.Gauge("serve.jobs_queued").Set(float64(len(j.queue)))
		t.set(StatusRunning, nil, false, nil)
		// Jobs run under the pool's own context (a disconnected submitter
		// must not kill them) but keep the submitting request's trace
		// identity, so solver events stay attributable to the request.
		ctx := j.baseCtx
		if t.trace != "" {
			ctx = obs.ContextWithTrace(ctx, t.trace, t.id)
		}
		body, cached, err := t.run(ctx)
		switch {
		case err == nil:
			t.set(StatusDone, body, cached, nil)
			j.reg.Counter("serve.jobs_done").Inc()
		case errors.Is(err, context.Canceled):
			t.set(StatusCanceled, nil, false, err)
			j.reg.Counter("serve.jobs_canceled").Inc()
		default:
			t.set(StatusFailed, nil, false, err)
			j.reg.Counter("serve.jobs_failed").Inc()
		}
		j.retire(t.id)
	}
}

// retire records a finished job for eviction accounting.
func (j *Jobs) retire(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = append(j.finished, id)
	for len(j.finished) > maxFinishedJobs {
		delete(j.jobs, j.finished[0])
		j.finished = j.finished[1:]
	}
}

// Submit enqueues run for asynchronous execution and returns the job ID.
// trace is the submitting request's trace ID (empty for untraced
// submissions); the job's context carries it so solver events stay tied
// to the request. A full queue returns ErrQueueFull immediately (never
// blocks): that backpressure is the contract that keeps the daemon
// responsive.
func (j *Jobs) Submit(trace string, run func(context.Context) ([]byte, bool, error)) (string, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return "", ErrShuttingDown
	}
	j.seq++
	t := &job{id: fmt.Sprintf("job-%06d", j.seq), trace: trace, run: run, status: StatusQueued}
	j.jobs[t.id] = t
	j.mu.Unlock()

	select {
	case j.queue <- t:
		j.reg.Counter("serve.jobs_submitted").Inc()
		j.reg.Gauge("serve.jobs_queued").Set(float64(len(j.queue)))
		return t.id, nil
	default:
		j.mu.Lock()
		delete(j.jobs, t.id)
		j.mu.Unlock()
		j.reg.Counter("serve.jobs_rejected").Inc()
		return "", ErrQueueFull
	}
}

// Get returns the current view of a job, if it is still retained.
func (j *Jobs) Get(id string) (JobView, bool) {
	j.mu.Lock()
	t, ok := j.jobs[id]
	j.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return t.view(), true
}

// Close refuses new submissions, lets queued jobs drain, and returns when
// every worker has exited. Safe to call once.
func (j *Jobs) Close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.mu.Unlock()
	close(j.queue)
	j.wg.Wait()
}

// CancelAll aborts running jobs by canceling their shared context. Meant
// for hard shutdown after a drain deadline passes.
func (j *Jobs) CancelAll() { j.cancel() }
