package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/obs/progress"
)

// ErrQueueFull reports that the job queue rejected a submission; the HTTP
// layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown reports a submission after Close began draining.
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrShedOnShutdown reports a job that was still queued when the hard
// shutdown (CancelAll) hit: it never started and will not run. Distinct
// from a cancellation mid-run, so operators can tell dropped work from
// interrupted work.
var ErrShedOnShutdown = errors.New("serve: job shed on shutdown")

// Job statuses, in lifecycle order.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// JobView is the poll response of /v1/jobs/{id}. Result is present only
// once Status is "done". TraceID names the trace the job's solver events
// are stamped with; GET /v1/jobs/{id}/trace serves them. Retries counts
// the transient-failure re-runs the job needed (absent when it succeeded
// or failed on the first attempt).
type JobView struct {
	ID      string          `json:"id"`
	Status  string          `json:"status"`
	TraceID string          `json:"trace_id,omitempty"`
	Cached  bool            `json:"cached,omitempty"`
	Retries int             `json:"retries,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	// QueuedAt and StartedAt (RFC 3339, nanosecond precision) separate
	// queue wait from run time; StartedAt is absent while the job is still
	// queued.
	QueuedAt  string `json:"queued_at,omitempty"`
	StartedAt string `json:"started_at,omitempty"`
	// Progress is the live view of the job's in-flight solve (phase,
	// iteration, residual, watchdog state, ETA), attached by the HTTP
	// layer at poll time while the job runs.
	Progress *progress.SolveProgress `json:"progress,omitempty"`
	// Cost is the SolveReport of the job's solve, attached by the HTTP
	// layer at poll time for terminal jobs whose report is still retained
	// in the cost ring (matched by TraceID).
	Cost *cost.SolveReport `json:"cost,omitempty"`
}

// job is the internal record behind a JobView.
type job struct {
	id    string
	trace string
	run   func(context.Context) ([]byte, bool, error)

	mu        sync.Mutex
	status    string
	cached    bool
	retries   int
	err       string
	body      []byte
	queuedAt  time.Time
	startedAt time.Time
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Status: j.status, TraceID: j.trace, Cached: j.cached,
		Retries: j.retries, Error: j.err, Result: j.body}
	if !j.queuedAt.IsZero() {
		v.QueuedAt = j.queuedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.startedAt.IsZero() {
		v.StartedAt = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	return v
}

func (j *job) set(status string, body []byte, cached bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = status
	if status == StatusRunning && j.startedAt.IsZero() {
		j.startedAt = time.Now()
	}
	j.body = body
	j.cached = cached
	if err != nil {
		j.err = err.Error()
	}
}

func (j *job) addRetry() {
	j.mu.Lock()
	j.retries++
	j.mu.Unlock()
}

// maxFinishedJobs bounds how many completed job records are retained for
// polling; beyond it the oldest finished records are dropped and polls
// for them return 404.
const maxFinishedJobs = 1024

// JobsConfig parameterizes a Jobs queue.
type JobsConfig struct {
	// Workers is the worker pool size. Default 1.
	Workers int
	// Depth bounds the queue; a full queue refuses submissions. Default 1.
	Depth int
	// Registry receives the serve.jobs_* metrics. May be nil.
	Registry *obs.Registry
	// Faults arms the jobs.dequeue injection point. May be nil.
	Faults *faults.Injector
	// RetryMax is the number of re-runs a transiently failing job gets
	// beyond its first attempt (transient: core.ErrUnconverged or a
	// non-permanent injected fault). Default 2; negative disables retry.
	RetryMax int
	// RetryBase is the first backoff; attempt k waits a jittered
	// RetryBase·2^k. Default 25ms.
	RetryBase time.Duration
}

// Jobs is a bounded asynchronous work queue: Submit enqueues with
// backpressure, a fixed worker pool drains, finished results stay
// pollable until evicted. Transient failures are retried with jittered
// exponential backoff; panics fail the job, never the process. Close
// drains gracefully — queued jobs still run; new submissions are
// refused.
type Jobs struct {
	queue  chan *job
	wg     sync.WaitGroup
	reg    *obs.Registry
	faults *faults.Injector

	retryMax  int
	retryBase time.Duration

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // eviction order for completed records
	seq      int
	closed   bool
}

// NewJobs starts a pool of workers consuming a queue of the given depth,
// with the default retry policy. Jobs run under a context canceled only
// by CancelAll — a disconnected submitter must not kill a job another
// poller may still want.
func NewJobs(workers, depth int, reg *obs.Registry) *Jobs {
	return NewJobsConfig(JobsConfig{Workers: workers, Depth: depth, Registry: reg})
}

// NewJobsConfig starts a worker pool with the full configuration.
func NewJobsConfig(cfg JobsConfig) *Jobs {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 2
	}
	if cfg.RetryMax < 0 {
		cfg.RetryMax = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Jobs{
		queue:     make(chan *job, cfg.Depth),
		reg:       cfg.Registry,
		faults:    cfg.Faults,
		retryMax:  cfg.RetryMax,
		retryBase: cfg.RetryBase,
		baseCtx:   ctx,
		cancel:    cancel,
		jobs:      make(map[string]*job),
	}
	// Queue depth is computed at scrape time, so queue wait — previously
	// folded invisibly into job wall time — is observable directly.
	j.reg.GaugeFunc("serve.jobs_queue_depth", func() float64 { return float64(len(j.queue)) })
	j.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go j.worker()
	}
	return j
}

func (j *Jobs) worker() {
	defer j.wg.Done()
	for t := range j.queue {
		j.reg.Gauge("serve.jobs_queued").Set(float64(len(j.queue)))
		j.runJob(t)
		j.retire(t.id)
	}
}

// runJob executes one dequeued job to a terminal status: done, failed
// (with retries for transient errors), canceled, or shed. Panics inside
// the job body become a failed job via the shield — a panicking job must
// fail that job, not the process.
func (j *Jobs) runJob(t *job) {
	// A job dequeued after the hard-shutdown cancel never starts: it is
	// reported failed with the distinct shed error rather than silently
	// dropped or misreported as a mid-run cancellation.
	if j.baseCtx.Err() != nil {
		t.set(StatusFailed, nil, false, ErrShedOnShutdown)
		j.reg.Counter("serve.jobs_shed").Inc()
		return
	}
	t.set(StatusRunning, nil, false, nil)
	// Jobs run under the pool's own context (a disconnected submitter
	// must not kill them) but keep the submitting request's trace
	// identity, so solver events stay attributable to the request.
	ctx := j.baseCtx
	if t.trace != "" {
		ctx = obs.ContextWithTrace(ctx, t.trace, t.id)
	}
	var body []byte
	var cached bool
	var err error
	for attempt := 0; ; attempt++ {
		first := attempt == 0
		err = shield(func() error {
			if first {
				if ferr := j.faults.FireCtx(ctx, "jobs.dequeue"); ferr != nil {
					return fmt.Errorf("serve: dequeue: %w", ferr)
				}
			}
			var rerr error
			body, cached, rerr = t.run(ctx)
			return rerr
		})
		if err == nil || attempt >= j.retryMax || !transientErr(err) ||
			ctx.Err() != nil || j.draining() {
			break
		}
		t.addRetry()
		j.reg.Counter("serve.jobs_retried").Inc()
		if !j.backoff(ctx, attempt) {
			break // canceled while waiting: surface the last attempt's error
		}
	}
	switch {
	case err == nil:
		t.set(StatusDone, body, cached, nil)
		j.reg.Counter("serve.jobs_done").Inc()
	case errors.Is(err, context.Canceled):
		t.set(StatusCanceled, nil, false, err)
		j.reg.Counter("serve.jobs_canceled").Inc()
	default:
		t.set(StatusFailed, nil, false, err)
		j.reg.Counter("serve.jobs_failed").Inc()
	}
}

// backoff sleeps the jittered exponential delay before retry attempt+1:
// uniformly within [base·2^attempt/2, base·2^attempt), so synchronized
// transient failures do not retry in lockstep. It returns false when the
// pool context died while waiting.
func (j *Jobs) backoff(ctx context.Context, attempt int) bool {
	d := j.retryBase << uint(attempt)
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// draining reports whether Close has begun; retries stop so the drain
// stays bounded.
func (j *Jobs) draining() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// retire records a finished job for eviction accounting.
func (j *Jobs) retire(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = append(j.finished, id)
	for len(j.finished) > maxFinishedJobs {
		delete(j.jobs, j.finished[0])
		j.finished = j.finished[1:]
	}
}

// Submit enqueues run for asynchronous execution and returns the job ID.
// trace is the submitting request's trace ID (empty for untraced
// submissions); the job's context carries it so solver events stay tied
// to the request. A full queue returns ErrQueueFull immediately (never
// blocks): that backpressure is the contract that keeps the daemon
// responsive.
//
// The registration and the enqueue happen under one lock so a Submit
// racing Close can never send on the closed queue channel: either it
// observes closed and refuses, or the send completes before Close closes
// the channel (Close serializes behind the same lock).
func (j *Jobs) Submit(trace string, run func(context.Context) ([]byte, bool, error)) (string, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return "", ErrShuttingDown
	}
	j.seq++
	t := &job{id: fmt.Sprintf("job-%06d", j.seq), trace: trace, run: run,
		status: StatusQueued, queuedAt: time.Now()}
	select {
	case j.queue <- t:
		j.jobs[t.id] = t
		j.mu.Unlock()
		j.reg.Counter("serve.jobs_submitted").Inc()
		j.reg.Gauge("serve.jobs_queued").Set(float64(len(j.queue)))
		return t.id, nil
	default:
		j.mu.Unlock()
		j.reg.Counter("serve.jobs_rejected").Inc()
		return "", ErrQueueFull
	}
}

// Get returns the current view of a job, if it is still retained.
func (j *Jobs) Get(id string) (JobView, bool) {
	j.mu.Lock()
	t, ok := j.jobs[id]
	j.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return t.view(), true
}

// Close refuses new submissions, lets queued jobs drain, and returns when
// every worker has exited. Safe to call once.
func (j *Jobs) Close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.mu.Unlock()
	close(j.queue)
	j.wg.Wait()
}

// CancelAll aborts running jobs by canceling their shared context; jobs
// still queued at that point are shed (StatusFailed, ErrShedOnShutdown)
// instead of started. Meant for hard shutdown after a drain deadline
// passes.
func (j *Jobs) CancelAll() { j.cancel() }
