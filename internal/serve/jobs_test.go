package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cdrstoch/internal/obs"
)

// waitStatus polls a job until it reaches want or the deadline passes.
func waitStatus(t *testing.T, jobs *Jobs, id, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := jobs.Get(id); ok && v.Status == want {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := jobs.Get(id)
	t.Fatalf("job %s stuck in %q, want %q", id, v.Status, want)
	return JobView{}
}

func TestJobsLifecycle(t *testing.T) {
	jobs := NewJobs(1, 4, obs.NewRegistry())
	defer jobs.Close()

	id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		return []byte(`{"x":1}`), true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitStatus(t, jobs, id, StatusDone)
	if string(v.Result) != `{"x":1}` || !v.Cached {
		t.Errorf("view = %+v", v)
	}

	id, err = jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		return nil, false, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	v = waitStatus(t, jobs, id, StatusFailed)
	if v.Error != "boom" {
		t.Errorf("error = %q, want boom", v.Error)
	}
}

func TestJobsBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := NewJobs(1, 1, reg)

	block := make(chan struct{})
	running, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		<-block
		return nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, jobs, running, StatusRunning) // the worker is now occupied

	queued, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		return nil, false, nil
	})
	if err != nil {
		t.Fatalf("queue of depth 1 rejected its first entry: %v", err)
	}

	if _, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		return nil, false, nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if got := reg.Snapshot().Counters["serve.jobs_rejected"]; got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}

	close(block)
	waitStatus(t, jobs, queued, StatusDone)
	jobs.Close()
}

func TestJobsGracefulDrain(t *testing.T) {
	jobs := NewJobs(2, 8, nil)
	ids := make([]string, 6)
	for i := range ids {
		var err error
		ids[i], err = jobs.Submit("", func(context.Context) ([]byte, bool, error) {
			time.Sleep(time.Millisecond)
			return []byte("done"), false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	jobs.Close() // must block until every queued job ran

	for _, id := range ids {
		v, ok := jobs.Get(id)
		if !ok || v.Status != StatusDone {
			t.Errorf("job %s after drain: %+v (present %v)", id, v, ok)
		}
	}
	if _, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		return nil, false, nil
	}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after close: err = %v, want ErrShuttingDown", err)
	}
}

func TestJobsCancelAll(t *testing.T) {
	jobs := NewJobs(1, 2, nil)
	id, err := jobs.Submit("", func(ctx context.Context) ([]byte, bool, error) {
		<-ctx.Done()
		return nil, false, fmt.Errorf("stopped: %w", ctx.Err())
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, jobs, id, StatusRunning)
	jobs.CancelAll()
	v := waitStatus(t, jobs, id, StatusCanceled)
	if v.Error == "" {
		t.Error("canceled job carries no error detail")
	}
	jobs.Close()
}

func TestJobsEvictOldFinished(t *testing.T) {
	jobs := NewJobs(4, 16, nil)
	var first string
	for i := 0; i < maxFinishedJobs+8; i++ {
		for {
			id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
				return nil, false, nil
			})
			if errors.Is(err, ErrQueueFull) {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if first == "" {
				first = id
			}
			break
		}
	}
	jobs.Close()
	if _, ok := jobs.Get(first); ok {
		t.Errorf("job %s should have been evicted from the finished set", first)
	}
}
