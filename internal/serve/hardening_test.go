package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
)

// TestCachedLeaderDeathReelection is the foreign-cancel regression test:
// the leader's caller cancels (or runs out its tighter deadline) while N
// followers wait. The followers must re-elect a leader among themselves
// and must never surface the dead leader's ctx.Err() as their own
// result.
func TestCachedLeaderDeathReelection(t *testing.T) {
	cases := []struct {
		name string
		ctx  func() (context.Context, context.CancelFunc)
	}{
		{"canceled", func() (context.Context, context.CancelFunc) {
			return context.WithCancel(context.Background())
		}},
		{"deadline-exceeded", func() (context.Context, context.CancelFunc) {
			return context.WithTimeout(context.Background(), 20*time.Millisecond)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(EngineConfig{})
			const key = "k"
			leaderCtx, killLeader := tc.ctx()
			defer killLeader()

			leaderIn := make(chan struct{})
			leaderOut := make(chan error, 1)
			go func() {
				_, _, err := e.cached(leaderCtx, key, func(ctx context.Context) ([]byte, error) {
					close(leaderIn)
					<-ctx.Done() // the caller dies while followers wait
					return nil, fmt.Errorf("serve: solve: %w", ctx.Err())
				})
				leaderOut <- err
			}()
			<-leaderIn

			const followers = 8
			var reelected atomic.Int64
			var wg sync.WaitGroup
			errs := make([]error, followers)
			bodies := make([][]byte, followers)
			for i := 0; i < followers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					bodies[i], _, errs[i] = e.cached(context.Background(), key, func(ctx context.Context) ([]byte, error) {
						reelected.Add(1)
						return []byte("ok"), nil
					})
				}(i)
			}
			// Let every follower join the doomed flight before killing it.
			for e.sf.joined(key) < followers {
				runtime.Gosched()
			}
			killLeader()
			wg.Wait()

			if err := <-leaderOut; err == nil ||
				!(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				t.Errorf("leader error = %v, want its own ctx error", err)
			}
			for i := 0; i < followers; i++ {
				if errs[i] != nil {
					t.Errorf("follower %d inherited the dead leader's error: %v", i, errs[i])
				}
				if string(bodies[i]) != "ok" {
					t.Errorf("follower %d body = %q, want ok", i, bodies[i])
				}
			}
			if reelected.Load() == 0 {
				t.Error("no follower re-elected itself leader")
			}
		})
	}
}

// TestGroupLeaderPanicReleasesWaiters pins the no-stranded-waiters
// guarantee: a panicking leader must complete the flight with a
// *PanicError for every waiter instead of leaving done unclosed.
func TestGroupLeaderPanicReleasesWaiters(t *testing.T) {
	var g group
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.do("k", func() ([]byte, error) {
			close(release)
			for g.joined("k") < 3 {
				runtime.Gosched()
			}
			panic("leader exploded")
		})
		leaderErr <- err
	}()
	<-release
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.do("k", func() ([]byte, error) { return []byte("x"), nil })
		}(i)
	}
	wg.Wait()
	var pe *PanicError
	if err := <-leaderErr; !errors.As(err, &pe) {
		t.Fatalf("leader error = %v, want *PanicError", err)
	}
	for i, err := range errs {
		if !errors.As(err, &pe) {
			t.Errorf("waiter %d error = %v, want the leader's *PanicError", i, err)
		}
	}
}

// TestJobsShedOnShutdown drives a submission across the shutdown edge:
// jobs still queued when the hard cancel hits must be reported failed
// with the distinct shed error — not silently dropped, not misreported
// as mid-run cancellations.
func TestJobsShedOnShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := NewJobsConfig(JobsConfig{Workers: 1, Depth: 8, Registry: reg})

	blockerStarted := make(chan struct{})
	blocker, err := jobs.Submit("", func(ctx context.Context) ([]byte, bool, error) {
		close(blockerStarted)
		<-ctx.Done()
		return nil, false, fmt.Errorf("solve: %w", ctx.Err())
	})
	if err != nil {
		t.Fatal(err)
	}
	<-blockerStarted

	var queued []string
	for i := 0; i < 3; i++ {
		id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
			return []byte("late"), false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}

	jobs.CancelAll()
	jobs.Close()

	if v := waitStatus(t, jobs, blocker, StatusCanceled); !strings.Contains(v.Error, "context canceled") {
		t.Errorf("blocker error = %q, want a cancellation", v.Error)
	}
	for _, id := range queued {
		v, ok := jobs.Get(id)
		if !ok {
			t.Fatalf("job %s dropped without a record", id)
		}
		if v.Status != StatusFailed || !strings.Contains(v.Error, ErrShedOnShutdown.Error()) {
			t.Errorf("queued job %s = %q/%q, want failed with the shed error", id, v.Status, v.Error)
		}
	}
	if got := reg.Counter("serve.jobs_shed").Value(); got != 3 {
		t.Errorf("jobs_shed = %d, want 3", got)
	}
}

// TestJobsSubmitCloseRace hammers Submit from several goroutines while
// Close runs. Before the fix, a Submit racing Close could send on the
// closed queue channel and kill the process; now every submission either
// lands (and reaches a terminal status) or is refused with
// ErrShuttingDown.
func TestJobsSubmitCloseRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		jobs := NewJobs(2, 4, nil)
		var accepted sync.Map
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
						return []byte("ok"), false, nil
					})
					if errors.Is(err, ErrShuttingDown) {
						return
					}
					if err == nil {
						accepted.Store(id, true)
					}
					runtime.Gosched()
				}
			}()
		}
		close(start)
		runtime.Gosched()
		jobs.Close()
		wg.Wait()
		accepted.Range(func(k, _ any) bool {
			v, ok := jobs.Get(k.(string))
			if !ok {
				t.Fatalf("accepted job %v has no record", k)
			}
			if v.Status != StatusDone {
				t.Fatalf("accepted job %v ended %q, want done", k, v.Status)
			}
			return true
		})
	}
}

// TestJobsRetryTransient checks the bounded-retry policy: transient
// failures (core.ErrUnconverged) re-run with backoff and eventually
// succeed; permanent failures do not retry.
func TestJobsRetryTransient(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := NewJobsConfig(JobsConfig{Workers: 1, Depth: 4, Registry: reg,
		RetryMax: 3, RetryBase: time.Millisecond})
	defer jobs.Close()

	var attempts atomic.Int64
	id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		if attempts.Add(1) <= 2 {
			return nil, false, fmt.Errorf("solve: %w", core.ErrUnconverged)
		}
		return []byte("ok"), false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitStatus(t, jobs, id, StatusDone)
	if v.Retries != 2 || string(v.Result) != "ok" {
		t.Errorf("view = %+v, want 2 retries and the ok body", v)
	}
	if got := reg.Counter("serve.jobs_retried").Value(); got != 2 {
		t.Errorf("jobs_retried = %d, want 2", got)
	}

	var permAttempts atomic.Int64
	id, err = jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		permAttempts.Add(1)
		return nil, false, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	v = waitStatus(t, jobs, id, StatusFailed)
	if v.Retries != 0 || permAttempts.Load() != 1 {
		t.Errorf("permanent failure retried: view=%+v attempts=%d", v, permAttempts.Load())
	}
}

// TestJobsExhaustedRetriesFail checks a persistently transient failure
// surfaces after RetryMax re-runs instead of looping forever.
func TestJobsExhaustedRetriesFail(t *testing.T) {
	jobs := NewJobsConfig(JobsConfig{Workers: 1, Depth: 2,
		RetryMax: 2, RetryBase: time.Millisecond})
	defer jobs.Close()
	var attempts atomic.Int64
	id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		attempts.Add(1)
		return nil, false, fmt.Errorf("solve: %w", core.ErrUnconverged)
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitStatus(t, jobs, id, StatusFailed)
	if attempts.Load() != 3 || v.Retries != 2 {
		t.Errorf("attempts=%d retries=%d, want 3 and 2", attempts.Load(), v.Retries)
	}
	if !strings.Contains(v.Error, "did not converge") {
		t.Errorf("error = %q, want the unconverged cause", v.Error)
	}
}

// TestJobsPanicFailsJobNotProcess pins the panic contract for the async
// path: the job fails with a panic-typed error, is never retried, and
// the worker keeps serving.
func TestJobsPanicFailsJobNotProcess(t *testing.T) {
	jobs := NewJobsConfig(JobsConfig{Workers: 1, Depth: 4,
		RetryMax: 3, RetryBase: time.Millisecond})
	defer jobs.Close()
	var attempts atomic.Int64
	id, err := jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		attempts.Add(1)
		panic("job exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitStatus(t, jobs, id, StatusFailed)
	if !strings.Contains(v.Error, "panic: job exploded") {
		t.Errorf("error = %q, want the panic message", v.Error)
	}
	if attempts.Load() != 1 {
		t.Errorf("panicking job ran %d times, want 1 (panics are not retried)", attempts.Load())
	}
	// The worker survived: the next job runs normally.
	id, err = jobs.Submit("", func(context.Context) ([]byte, bool, error) {
		return []byte("alive"), false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitStatus(t, jobs, id, StatusDone); string(v.Result) != "alive" {
		t.Errorf("post-panic job = %+v", v)
	}
}

// TestRecoveredMiddleware checks the HTTP panic-recovery layer directly:
// a panicking handler answers 500 with the trace ID, and the
// panics_recovered counter moves.
func TestRecoveredMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(ServerConfig{Registry: reg})
	h := s.traced(s.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Error("panic response lacks X-Trace-Id header")
	}
	if !strings.Contains(rec.Body.String(), "panic: handler exploded") {
		t.Errorf("body = %s, want the panic message", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"trace_id"`) {
		t.Errorf("body = %s, want a trace_id field", rec.Body.String())
	}
	if got := reg.Counter("serve.panics_recovered").Value(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
}

// TestRequestTimeoutHeader checks the deadline propagation rules: the
// client header tightens the server deadline, never loosens it, and
// malformed values are 400s.
func TestRequestTimeoutHeader(t *testing.T) {
	s := NewServer(ServerConfig{SyncTimeout: 10 * time.Second})
	req := func(header string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/analyze", nil)
		if header != "" {
			r.Header.Set("Request-Timeout", header)
		}
		return r
	}
	cases := []struct {
		header string
		want   time.Duration
		bad    bool
	}{
		{"", 10 * time.Second, false},
		{"2", 2 * time.Second, false},
		{"0.25", 250 * time.Millisecond, false},
		{"750ms", 750 * time.Millisecond, false},
		{"1h", 10 * time.Second, false}, // looser than the server cap: ignored
		{"60", 10 * time.Second, false},
		{"0", 0, true},
		{"-3", 0, true},
		{"soon", 0, true},
	}
	for _, tc := range cases {
		got, err := s.syncTimeout(req(tc.header))
		if tc.bad {
			if err == nil || !errors.Is(err, ErrBadRequest) {
				t.Errorf("header %q: want ErrBadRequest, got %v", tc.header, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("header %q: got %v, %v; want %v", tc.header, got, err, tc.want)
		}
	}
}

// TestRequestTimeoutTightensSolve drives the full HTTP path: a delay
// fault stalls the solve past the client's Request-Timeout, and the
// request answers 504 with the trace ID attached.
func TestRequestTimeoutTightensSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection test skipped in -short")
	}
	reg := obs.NewRegistry()
	inj, err := faults.Parse("engine.solve:delay:d=5s:n=1", 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, ServerConfig{Registry: reg, Faults: inj, SyncTimeout: time.Minute})
	client := &http.Client{Timeout: 30 * time.Second}
	body, err := json.Marshal(solveRequest{Spec: testSpec(t)})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", ts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Request-Timeout", "100ms")
	start := time.Now()
	resp, err := client.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("timeout response lacks X-Trace-Id")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("tightened deadline took %v, want well under the injected 5s stall", elapsed)
	}
}
