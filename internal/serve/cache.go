// Package serve turns the analysis engine into a long-running HTTP
// service: a content-addressed result cache keyed by spec hashes
// (internal/serve/speckey), singleflight deduplication so concurrent
// identical requests solve once, a bounded job queue with backpressure,
// and HTTP handlers wiring the whole thing to the observability registry.
//
// The layering, bottom up:
//
//	Cache        LRU over immutable response bodies ([]byte), hit/miss
//	             counters in the obs registry.
//	group        singleflight: one in-flight computation per key.
//	Engine       spec -> response body: cache lookup, singleflight solve
//	             with a concurrency semaphore, context-aware solvers.
//	Jobs         bounded queue + worker pool with async job tracking,
//	             backpressure (ErrQueueFull -> 429) and graceful drain.
//	Server       HTTP handlers: /v1/analyze, /v1/slip, /v1/sweep,
//	             /v1/jobs/{id}, /healthz, /metrics.
package serve

import (
	"container/list"

	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
)

// Cache is a fixed-capacity LRU from string keys to immutable byte
// slices. Values must never be mutated after put — get returns the stored
// slice without copying, which is what makes repeated cache hits
// byte-identical for free. Cache carries no lock of its own: the Engine
// serializes all access under its mutex.
type Cache struct {
	max     int
	ll      *list.List
	entries map[string]*list.Element
	reg     *obs.Registry

	hits, misses, evictions *obs.Counter
	size                    *obs.Gauge

	// faults arms the cache.put and cache.evict injection points. Both
	// are hit before any structural mutation, so an injected panic leaves
	// the LRU intact — the corruption-free guarantee the chaos suite
	// verifies by byte-identical replay after the fault clears.
	faults *faults.Injector
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns an LRU holding at most max entries (min 1). reg may be
// nil; counters then vanish into the obs no-op path.
func NewCache(max int, reg *obs.Registry) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:       max,
		ll:        list.New(),
		entries:   make(map[string]*list.Element),
		reg:       reg,
		hits:      reg.Counter("serve.cache_hits"),
		misses:    reg.Counter("serve.cache_misses"),
		evictions: reg.Counter("serve.cache_evictions"),
		size:      reg.Gauge("serve.cache_entries"),
	}
}

// get returns the cached body for key and whether it was present, marking
// the entry most recently used. Callers hold the Engine lock.
func (c *Cache) get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// over capacity. Callers hold the Engine lock. An injected cache.put
// fault skips the insert (the body is still served; the next request
// re-solves); an injected cache.evict fault leaves the over-full entry
// for the next put to evict.
func (c *Cache) put(key string, body []byte) {
	if err := c.faults.Fire("cache.put"); err != nil {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.entries[key] = el
	for c.ll.Len() > c.max {
		if err := c.faults.Fire("cache.evict"); err != nil {
			break
		}
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(float64(c.ll.Len()))
}

// len reports the current entry count. Callers hold the Engine lock.
func (c *Cache) len() int { return c.ll.Len() }
