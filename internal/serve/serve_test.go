package serve

import (
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// testSpec returns a deliberately small model (3 data × 3 counter × 17
// phase = 153 states) that solves in milliseconds, keeping the service
// tests fast.
func testSpec(t *testing.T) core.Spec {
	t.Helper()
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 4, Shape: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      3,
		EyeJitter:         dist.NewGaussian(0, 0.05),
		Drift:             drift,
		CounterLen:        2,
		Threshold:         0.5,
	}
}

// testSpecVariants returns distinct valid specs for mixed-load tests.
func testSpecVariants(t *testing.T) []core.Spec {
	t.Helper()
	base := testSpec(t)
	out := make([]core.Spec, 4)
	for i := range out {
		out[i] = base
	}
	out[1].CounterLen = 1
	out[2].TransitionDensity = 0.4
	out[3].EyeJitter = dist.NewGaussian(0, 0.03)
	return out
}
