package markov

import (
	"errors"
	"fmt"
	"math"
)

// Statistics of functions defined on the chain's states under a stationary
// distribution — the quantities the paper derives once η is available:
// expectations, threshold-exceedance (tail) masses, and autocorrelation
// sequences (the paper names the autocorrelation of a state function as
// the canonical follow-on computation after η).

// Expectation returns Σ_i pi[i]·f[i].
func Expectation(pi, f []float64) (float64, error) {
	if len(pi) != len(f) {
		return 0, fmt.Errorf("markov: expectation length mismatch %d vs %d", len(pi), len(f))
	}
	s := 0.0
	for i, p := range pi {
		s += p * f[i]
	}
	return s, nil
}

// Variance returns the stationary variance of f.
func Variance(pi, f []float64) (float64, error) {
	mu, err := Expectation(pi, f)
	if err != nil {
		return 0, err
	}
	v := 0.0
	for i, p := range pi {
		d := f[i] - mu
		v += p * d * d
	}
	return v, nil
}

// TailMass returns Σ{pi[i] : indicator[i]} — the probability of the event
// described by the indicator (e.g. "phase error beyond half a cycle").
func TailMass(pi []float64, indicator []bool) (float64, error) {
	if len(pi) != len(indicator) {
		return 0, errors.New("markov: tail mass length mismatch")
	}
	s := 0.0
	for i, p := range pi {
		if indicator[i] {
			s += p
		}
	}
	return s, nil
}

// Autocovariance returns the stationary autocovariance sequence
// r(k) = E[f(X_0)f(X_k)] − E[f]² for k = 0..maxLag, computed with repeated
// sparse products f ← P·f (no matrix powers are formed).
func (c *Chain) Autocovariance(pi, f []float64, maxLag int) ([]float64, error) {
	if len(pi) != c.N() || len(f) != c.N() {
		return nil, errors.New("markov: autocovariance length mismatch")
	}
	if maxLag < 0 {
		return nil, errors.New("markov: negative lag")
	}
	mu, err := Expectation(pi, f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxLag+1)
	fk := make([]float64, len(f))
	copy(fk, f)
	tmp := make([]float64, len(f))
	for k := 0; k <= maxLag; k++ {
		// E[f(X_0) f(X_k)] = Σ_i pi_i f_i (P^k f)_i
		s := 0.0
		for i, p := range pi {
			s += p * f[i] * fk[i]
		}
		out[k] = s - mu*mu
		if k < maxLag {
			c.p.MulVec(tmp, fk)
			fk, tmp = tmp, fk
		}
	}
	return out, nil
}

// Autocorrelation returns the autocovariance normalized by r(0); it is 1 at
// lag 0 by construction. An error is returned when f is degenerate
// (zero stationary variance).
func (c *Chain) Autocorrelation(pi, f []float64, maxLag int) ([]float64, error) {
	cov, err := c.Autocovariance(pi, f, maxLag)
	if err != nil {
		return nil, err
	}
	if cov[0] <= 0 {
		return nil, errors.New("markov: degenerate function, zero variance")
	}
	out := make([]float64, len(cov))
	for i, v := range cov {
		out[i] = v / cov[0]
	}
	return out, nil
}

// TotalVariation returns ½‖p − q‖₁, the total variation distance between
// two distributions of equal length.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, errors.New("markov: TV length mismatch")
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// MixingTime returns the smallest k ≤ maxSteps with
// TV(x₀Pᵏ, pi) ≤ eps, or maxSteps+1 when not reached. It is used by tests
// and ablation benches to relate counter length to loop bandwidth.
func (c *Chain) MixingTime(x0, pi []float64, eps float64, maxSteps int) (int, error) {
	if len(x0) != c.N() || len(pi) != c.N() {
		return 0, errors.New("markov: mixing time length mismatch")
	}
	x := make([]float64, len(x0))
	copy(x, x0)
	y := make([]float64, len(x0))
	for k := 0; k <= maxSteps; k++ {
		tv, err := TotalVariation(x, pi)
		if err != nil {
			return 0, err
		}
		if tv <= eps {
			return k, nil
		}
		c.p.VecMul(y, x)
		x, y = y, x
	}
	return maxSteps + 1, nil
}
