package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdrstoch/internal/spmat"
)

// perturbTwoState builds E = d/dε of the two-state TPM family
// [[1−(a+ε), a+ε], [b, 1−b]]: rows sum to zero.
func perturbTwoState(t testing.TB) *spmat.CSR {
	t.Helper()
	tr := spmat.NewTriplet(2, 2)
	tr.Add(0, 0, -1)
	tr.Add(0, 1, 1)
	return tr.ToCSR()
}

func TestStationaryDerivativeTwoStateAnalytic(t *testing.T) {
	// π(a) = (b, a)/(a+b): dπ/da = (−b, b)/(a+b)².
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	aSharp, err := c.GroupInverse(pi)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.StationaryDerivative(pi, perturbTwoState(t), aSharp)
	if err != nil {
		t.Fatal(err)
	}
	den := (a + b) * (a + b)
	want := []float64{-b / den, b / den}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-10 {
			t.Fatalf("dpi[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

func TestStationaryDerivativeMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 8
	c := randomChain(t, n, rng)
	pi, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	aSharp, err := c.GroupInverse(pi)
	if err != nil {
		t.Fatal(err)
	}
	// Perturbation: shift mass from each state's first listed target to
	// its second (rows sum to zero by construction).
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		cols, _ := c.P().Row(i)
		if len(cols) >= 2 {
			tr.Add(i, cols[0], -1)
			tr.Add(i, cols[1], 1)
		}
	}
	e := tr.ToCSR()
	d, err := c.StationaryDerivative(pi, e, aSharp)
	if err != nil {
		t.Fatal(err)
	}

	// Finite differences on the perturbed family.
	eps := 1e-7
	perturbed := func(sign float64) []float64 {
		tr := spmat.NewTriplet(n, n)
		for i := 0; i < n; i++ {
			cols, vals := c.P().Row(i)
			for k, j := range cols {
				tr.Add(i, j, vals[k]+sign*eps*e.At(i, j))
			}
		}
		pp, err := spmat.StationaryGTHCSR(tr.ToCSR())
		if err != nil {
			t.Fatal(err)
		}
		return pp
	}
	plus := perturbed(+1)
	minus := perturbed(-1)
	for i := 0; i < n; i++ {
		fd := (plus[i] - minus[i]) / (2 * eps)
		if math.Abs(d[i]-fd) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("dpi[%d]: analytic %g vs FD %g", i, d[i], fd)
		}
	}
}

func TestMeasureSensitivity(t *testing.T) {
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	aSharp, err := c.GroupInverse(pi)
	if err != nil {
		t.Fatal(err)
	}
	f := []float64{0, 1} // E[f] = π₁ = a/(a+b); d/da = b/(a+b)².
	s, err := c.MeasureSensitivity(pi, f, perturbTwoState(t), aSharp)
	if err != nil {
		t.Fatal(err)
	}
	want := b / ((a + b) * (a + b))
	if math.Abs(s-want) > 1e-10 {
		t.Fatalf("sensitivity %g, want %g", s, want)
	}
}

func TestSensitivityValidation(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	pi := wantTwoState(0.3, 0.2)
	aSharp, err := c.GroupInverse(pi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GroupInverse([]float64{1}); err == nil {
		t.Error("bad pi length accepted")
	}
	// Perturbation with nonzero row sums.
	tr := spmat.NewTriplet(2, 2)
	tr.Add(0, 0, 1)
	if _, err := c.StationaryDerivative(pi, tr.ToCSR(), aSharp); err == nil {
		t.Error("non-conservative perturbation accepted")
	}
	if _, err := c.MeasureSensitivity(pi, []float64{1}, perturbTwoState(t), aSharp); err == nil {
		t.Error("bad f length accepted")
	}
}

func TestKemenyConstantTwoState(t *testing.T) {
	// For the two-state chain, K = 1 + 1/(a+b).
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	k, err := c.KemenyConstant(pi)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 1/(a+b)
	if math.Abs(k-want) > 1e-10 {
		t.Fatalf("Kemeny constant %g, want %g", k, want)
	}
}

func TestKemenyConstantStartIndependence(t *testing.T) {
	// Cross-check against the defining sum Σ_j π_j·m_ij computed from
	// hitting times, for two different start states.
	rng := rand.New(rand.NewSource(51))
	c := randomChain(t, 7, rng)
	pi, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	k, err := c.KemenyConstant(pi)
	if err != nil {
		t.Fatal(err)
	}
	// m_ij from single-target hitting times (m_jj = 0 by convention, so
	// the sum picks up π_j·0 there; Kemeny's form uses m_jj = 0 plus the
	// +1 lands naturally when counting the step into the target — our
	// group-inverse form matches Σ_j π_j·m_ij + 1).
	for _, start := range []int{0, 3} {
		sum := 1.0
		for j := 0; j < 7; j++ {
			target := make([]bool, 7)
			target[j] = true
			times, err := hittingTimesRef(c, target)
			if err != nil {
				t.Fatal(err)
			}
			sum += pi[j] * times[start]
		}
		if math.Abs(sum-k) > 1e-8 {
			t.Fatalf("start %d: Σπm+1 = %g vs Kemeny %g", start, sum, k)
		}
	}
}

// hittingTimesRef solves (I−Q)t = 1 densely without importing passage
// (avoids a test-only dependency cycle risk).
func hittingTimesRef(c *Chain, target []bool) ([]float64, error) {
	n := c.N()
	idx := make([]int, n)
	nt := 0
	for i := range target {
		if target[i] {
			idx[i] = -1
		} else {
			idx[i] = nt
			nt++
		}
	}
	a := spmat.NewDense(nt, nt)
	for i := 0; i < n; i++ {
		ri := idx[i]
		if ri < 0 {
			continue
		}
		a.Set(ri, ri, 1)
		cols, vals := c.P().Row(i)
		for k, j := range cols {
			if rj := idx[j]; rj >= 0 {
				a.Add(ri, rj, -vals[k])
			}
		}
	}
	lu, err := spmat.Factorize(a)
	if err != nil {
		return nil, err
	}
	ones := make([]float64, nt)
	for i := range ones {
		ones[i] = 1
	}
	tc := lu.Solve(ones)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if ri := idx[i]; ri >= 0 {
			out[i] = tc[ri]
		}
	}
	return out, nil
}

// Property: the derivative components sum to zero (total mass is
// conserved along any stochastic perturbation).
func TestQuickDerivativeMassConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		c := randomChain(t, n, rng)
		pi, err := c.StationaryDirect()
		if err != nil {
			return false
		}
		aSharp, err := c.GroupInverse(pi)
		if err != nil {
			return false
		}
		tr := spmat.NewTriplet(n, n)
		for i := 0; i < n; i++ {
			j1, j2 := rng.Intn(n), rng.Intn(n)
			if j1 != j2 {
				tr.Add(i, j1, -0.5)
				tr.Add(i, j2, 0.5)
			}
		}
		d, err := c.StationaryDerivative(pi, tr.ToCSR(), aSharp)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range d {
			sum += v
		}
		return math.Abs(sum) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
