package markov

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cdrstoch/internal/obs"
	"cdrstoch/internal/spmat"
)

// cancelAtIter is a Tracer that cancels a context the first time it sees
// an "iter" event at or past trigger, recording every event — the same
// differential pattern as multigrid's cancellation test. FiredAt keeps
// the Iter value that pulled the trigger so the cadence assertion can be
// exact even for solvers whose Iter counts jump (GMRES counts matvecs).
type cancelAtIter struct {
	*obs.Collector
	cancel  context.CancelFunc
	trigger int
	firedAt int
}

func (c *cancelAtIter) Emit(e obs.Event) {
	c.Collector.Emit(e)
	if e.Kind == "iter" && e.Iter >= c.trigger && c.firedAt == 0 {
		c.firedAt = e.Iter
		c.cancel()
	}
}

// TestStationaryCancellationCadence checks every stationary solver loop
// observes ctx.Done() within one outer iteration: after the iteration
// that saw the cancellation, no further "iter" event may appear — the
// very next boundary check must stop the solve.
func TestStationaryCancellationCadence(t *testing.T) {
	// A two-step lazy ring stepping BACKWARD: a forward Gauss–Seidel
	// sweep then only reads not-yet-updated states (state i's mass comes
	// from i+1 and i+2), so it contracts slowly like Jacobi. A forward
	// ring would let one in-sweep substitution chain solve the system to
	// machine exactness within two sweeps, converging before the
	// cancellation trigger.
	const n = 64
	tri := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tri.Add(i, i, 0.4)
		tri.Add(i, (i+n-1)%n, 0.35)
		tri.Add(i, (i+n-2)%n, 0.25)
	}
	ch, err := New(tri.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	// The lazy ring's stationary vector is uniform — the solvers' default
	// start — so convergence would be instant. A concentrated X0 plus an
	// unreachable tolerance keeps every loop iterating until the
	// cancellation is the only way out.
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = float64(i + 1) // strictly positive, far from uniform
	}
	solvers := map[string]func(ctx context.Context, tr obs.Tracer) (Result, error){
		"power": func(ctx context.Context, tr obs.Tracer) (Result, error) {
			return ch.StationaryPower(Options{Ctx: ctx, Trace: tr, X0: x0, Tol: 1e-300, MaxIter: 500})
		},
		"jacobi": func(ctx context.Context, tr obs.Tracer) (Result, error) {
			return ch.StationaryJacobi(Options{Ctx: ctx, Trace: tr, X0: x0, Tol: 1e-300, MaxIter: 500})
		},
		"gauss-seidel": func(ctx context.Context, tr obs.Tracer) (Result, error) {
			return ch.StationaryGaussSeidel(Options{Ctx: ctx, Trace: tr, X0: x0, Tol: 1e-300, MaxIter: 500})
		},
		"gmres": func(ctx context.Context, tr obs.Tracer) (Result, error) {
			return ch.StationaryGMRES(GMRESOptions{Ctx: ctx, Trace: tr, X0: x0, Tol: 1e-300, MaxIter: 500, Restart: 10})
		},
	}
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			tr := &cancelAtIter{Collector: obs.NewCollector(nil), cancel: cancel, trigger: 3}
			res, err := solve(ctx, tr)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if !strings.Contains(err.Error(), "stopped after") {
				t.Errorf("error lacks partial progress: %v", err)
			}
			if res.Converged {
				t.Error("canceled solve reported converged")
			}
			if tr.firedAt == 0 {
				t.Fatal("the trigger iteration never ran")
			}
			for _, e := range tr.Events() {
				if e.Kind == "iter" && e.Iter > tr.firedAt {
					t.Errorf("%s iterated past the cancellation (trigger %d): %+v", name, tr.firedAt, e)
				}
			}
		})
	}
}
