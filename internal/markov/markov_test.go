package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdrstoch/internal/spmat"
)

// chainFromRows builds a chain from dense row data.
func chainFromRows(t testing.TB, rows [][]float64) *Chain {
	t.Helper()
	n := len(rows)
	tr := spmat.NewTriplet(n, n)
	for i, row := range rows {
		if len(row) != n {
			t.Fatalf("row %d has %d entries", i, len(row))
		}
		for j, v := range row {
			if v != 0 {
				tr.Add(i, j, v)
			}
		}
	}
	c, err := New(tr.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomChain(t testing.TB, n int, rng *rand.Rand) *Chain {
	t.Helper()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		s := 0.0
		for j := range rows[i] {
			rows[i][j] = rng.Float64() + 1e-3
			s += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= s
		}
	}
	return chainFromRows(t, rows)
}

// twoState returns the chain [[1-a,a],[b,1-b]] with stationary (b,a)/(a+b).
func twoState(t testing.TB, a, b float64) *Chain {
	return chainFromRows(t, [][]float64{{1 - a, a}, {b, 1 - b}})
}

func wantTwoState(a, b float64) []float64 {
	return []float64{b / (a + b), a / (a + b)}
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewRejectsNonStochastic(t *testing.T) {
	tr := spmat.NewTriplet(2, 2)
	tr.Add(0, 0, 0.5)
	tr.Add(1, 1, 1)
	if _, err := New(tr.ToCSR()); err == nil {
		t.Fatal("non-stochastic accepted")
	}
}

func TestSolversAgreeOnTwoState(t *testing.T) {
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	want := wantTwoState(a, b)
	opt := Options{Tol: 1e-13}

	pw, err := c.StationaryPower(opt)
	if err != nil || !pw.Converged {
		t.Fatalf("power: %v %+v", err, pw)
	}
	ja, err := c.StationaryJacobi(Options{Tol: 1e-13, Damping: 0.7})
	if err != nil || !ja.Converged {
		t.Fatalf("jacobi: %v %+v", err, ja)
	}
	gs, err := c.StationaryGaussSeidel(opt)
	if err != nil || !gs.Converged {
		t.Fatalf("gs: %v %+v", err, gs)
	}
	di, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	for name, pi := range map[string][]float64{"power": pw.Pi, "jacobi": ja.Pi, "gs": gs.Pi, "gth": di} {
		if d := maxAbsDiff(pi, want); d > 1e-10 {
			t.Errorf("%s off by %g: %v", name, d, pi)
		}
	}
}

func TestPowerDampingHandlesPeriodicChain(t *testing.T) {
	// Two-state flip chain: period 2; undamped power iteration from a
	// non-uniform start oscillates forever.
	c := chainFromRows(t, [][]float64{{0, 1}, {1, 0}})
	x0 := []float64{0.9, 0.1}
	und, err := c.StationaryPower(Options{Tol: 1e-12, MaxIter: 500, X0: x0})
	if err != nil {
		t.Fatal(err)
	}
	if und.Converged {
		t.Fatal("undamped power should not converge on a period-2 chain from a biased start")
	}
	dam, err := c.StationaryPower(Options{Tol: 1e-12, MaxIter: 5000, X0: x0, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !dam.Converged {
		t.Fatalf("damped power failed: %+v", dam)
	}
	if d := maxAbsDiff(dam.Pi, []float64{0.5, 0.5}); d > 1e-10 {
		t.Errorf("damped power off by %g", d)
	}
}

func TestJacobiGSRejectAbsorbing(t *testing.T) {
	c := chainFromRows(t, [][]float64{{1, 0}, {0.5, 0.5}})
	if _, err := c.StationaryJacobi(Options{}); err == nil {
		t.Error("Jacobi accepted absorbing state")
	}
	if _, err := c.StationaryGaussSeidel(Options{}); err == nil {
		t.Error("GS accepted absorbing state")
	}
}

func TestSORAcceleratesGS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomChain(t, 30, rng)
	gs, err := c.StationaryGaussSeidel(Options{Tol: 1e-12})
	if err != nil || !gs.Converged {
		t.Fatalf("gs: %v", err)
	}
	sor, err := c.StationaryGaussSeidel(Options{Tol: 1e-12, Omega: 1.1})
	if err != nil || !sor.Converged {
		t.Fatalf("sor: %v", err)
	}
	if d := maxAbsDiff(gs.Pi, sor.Pi); d > 1e-9 {
		t.Errorf("SOR fixed point differs by %g", d)
	}
}

func TestX0Validation(t *testing.T) {
	c := twoState(t, 0.2, 0.3)
	if _, err := c.StationaryPower(Options{X0: []float64{1, 2, 3}}); err == nil {
		t.Error("bad X0 length accepted")
	}
	if _, err := c.StationaryPower(Options{X0: []float64{0, 0}}); err == nil {
		t.Error("zero X0 accepted")
	}
}

func TestStepAndResidual(t *testing.T) {
	c := twoState(t, 0.3, 0.1)
	pi := wantTwoState(0.3, 0.1)
	if r := c.Residual(pi); r > 1e-15 {
		t.Errorf("residual at stationary = %g", r)
	}
	x := []float64{1, 0}
	y := c.Step(nil, x)
	if math.Abs(y[0]-0.7) > 1e-15 || math.Abs(y[1]-0.3) > 1e-15 {
		t.Errorf("step = %v", y)
	}
}

func TestSCCsAndRecurrentClasses(t *testing.T) {
	// States 0,1 communicate; state 2 is absorbing; 0->2 leaks.
	c := chainFromRows(t, [][]float64{
		{0.5, 0.4, 0.1},
		{1, 0, 0},
		{0, 0, 1},
	})
	comps := c.SCCs()
	if len(comps) != 2 {
		t.Fatalf("SCC count = %d, want 2", len(comps))
	}
	rec := c.RecurrentClasses()
	if len(rec) != 1 || len(rec[0]) != 1 || rec[0][0] != 2 {
		t.Fatalf("recurrent classes = %v", rec)
	}
	if c.IsIrreducible() {
		t.Error("reducible chain reported irreducible")
	}
	if c.Period() != 0 {
		t.Error("period of reducible chain should be 0")
	}
}

func TestPeriod(t *testing.T) {
	// 3-cycle: period 3.
	cyc := chainFromRows(t, [][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
	if p := cyc.Period(); p != 3 {
		t.Errorf("cycle period = %d, want 3", p)
	}
	if cyc.IsErgodic() {
		t.Error("periodic chain reported ergodic")
	}
	// Self-loop makes it aperiodic.
	ap := chainFromRows(t, [][]float64{{0.5, 0.5, 0}, {0, 0, 1}, {1, 0, 0}})
	if p := ap.Period(); p != 1 {
		t.Errorf("aperiodic chain period = %d", p)
	}
	if !ap.IsErgodic() {
		t.Error("ergodic chain not recognized")
	}
}

func TestSCCsLargeChainIterative(t *testing.T) {
	// A long path with a back edge: single SCC of size n. Exercises the
	// explicit-stack Tarjan on a deep graph (recursion would overflow for
	// much larger n; here we verify correctness on a deep-but-feasible one).
	n := 20000
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n-1; i++ {
		tr.Add(i, i+1, 1)
	}
	tr.Add(n-1, 0, 1)
	c, err := New(tr.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	comps := c.SCCs()
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("got %d comps", len(comps))
	}
	if p := c.Period(); p != n {
		t.Fatalf("pure cycle period = %d, want %d", p, n)
	}
}

func TestExpectationVarianceTail(t *testing.T) {
	pi := []float64{0.25, 0.25, 0.5}
	f := []float64{0, 1, 2}
	mu, err := Expectation(pi, f)
	if err != nil || math.Abs(mu-1.25) > 1e-15 {
		t.Fatalf("E = %g err=%v", mu, err)
	}
	v, err := Variance(pi, f)
	if err != nil || math.Abs(v-0.6875) > 1e-15 {
		t.Fatalf("Var = %g err=%v", v, err)
	}
	tm, err := TailMass(pi, []bool{false, false, true})
	if err != nil || tm != 0.5 {
		t.Fatalf("tail = %g", tm)
	}
	if _, err := Expectation(pi, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TailMass(pi, []bool{true}); err == nil {
		t.Error("tail length mismatch accepted")
	}
}

func TestAutocovarianceIIDChainIsDelta(t *testing.T) {
	// All rows equal: X_k i.i.d., so r(k)=0 for k>=1.
	c := chainFromRows(t, [][]float64{
		{0.2, 0.3, 0.5},
		{0.2, 0.3, 0.5},
		{0.2, 0.3, 0.5},
	})
	pi := []float64{0.2, 0.3, 0.5}
	f := []float64{-1, 0, 2}
	cov, err := c.Autocovariance(pi, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cov[0] <= 0 {
		t.Fatal("variance must be positive")
	}
	for k := 1; k <= 4; k++ {
		if math.Abs(cov[k]) > 1e-14 {
			t.Errorf("r(%d) = %g, want 0", k, cov[k])
		}
	}
}

func TestAutocorrelationTwoStateGeometric(t *testing.T) {
	// For the two-state chain, the autocorrelation of any non-degenerate f
	// is (1-a-b)^k.
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	f := []float64{0, 1}
	rho, err := c.Autocorrelation(pi, f, 6)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 1 - a - b
	for k := 0; k <= 6; k++ {
		want := math.Pow(lambda, float64(k))
		if math.Abs(rho[k]-want) > 1e-12 {
			t.Errorf("rho(%d) = %g, want %g", k, rho[k], want)
		}
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	pi := wantTwoState(0.3, 0.2)
	if _, err := c.Autocorrelation(pi, []float64{5, 5}, 3); err == nil {
		t.Error("constant f accepted")
	}
	if _, err := c.Autocovariance(pi, []float64{1, 2}, -1); err == nil {
		t.Error("negative lag accepted")
	}
}

func TestTotalVariationAndMixing(t *testing.T) {
	tv, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || tv != 1 {
		t.Fatalf("TV = %g", tv)
	}
	if _, err := TotalVariation([]float64{1}, []float64{0, 1}); err == nil {
		t.Error("TV length mismatch accepted")
	}
	c := twoState(t, 0.3, 0.2)
	pi := wantTwoState(0.3, 0.2)
	k, err := c.MixingTime([]float64{1, 0}, pi, 1e-6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// TV decays like 0.5^k; need about log(eps)/log(0.5) ≈ 20 steps.
	if k < 5 || k > 60 {
		t.Errorf("mixing time = %d", k)
	}
	if k2, _ := c.MixingTime(pi, pi, 1e-9, 10); k2 != 0 {
		t.Errorf("mixing from stationary = %d", k2)
	}
}

func TestQuickAllSolversMatchGTH(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz%12)
		c := randomChain(t, n, rng)
		ref, err := c.StationaryDirect()
		if err != nil {
			return false
		}
		opt := Options{Tol: 1e-13, MaxIter: 200000}
		pw, err1 := c.StationaryPower(opt)
		ja, err2 := c.StationaryJacobi(Options{Tol: 1e-13, MaxIter: 200000, Damping: 0.8})
		gs, err3 := c.StationaryGaussSeidel(opt)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return maxAbsDiff(pw.Pi, ref) < 1e-9 &&
			maxAbsDiff(ja.Pi, ref) < 1e-9 &&
			maxAbsDiff(gs.Pi, ref) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStationaryIsFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomChain(t, 2+rng.Intn(10), rng)
		res, err := c.StationaryGaussSeidel(Options{Tol: 1e-13})
		if err != nil || !res.Converged {
			return false
		}
		return c.Residual(res.Pi) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
