package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvolveConvergesToStationary(t *testing.T) {
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	x, err := c.Evolve([]float64{1, 0}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, wantTwoState(a, b)); d > 1e-12 {
		t.Fatalf("evolved distribution off by %g", d)
	}
	// Zero steps returns the (normalized) start.
	x0, err := c.Evolve([]float64{2, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x0[0] != 1 || x0[1] != 0 {
		t.Fatalf("zero-step evolve = %v", x0)
	}
}

func TestEvolveErrors(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	if _, err := c.Evolve([]float64{1}, 5); err == nil {
		t.Error("bad length accepted")
	}
	if _, err := c.Evolve([]float64{1, 0}, -1); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := c.Evolve([]float64{0, 0}, 1); err == nil {
		t.Error("zero mass accepted")
	}
}

func TestExpectedCumulativeStationaryIsLinear(t *testing.T) {
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	f := []float64{0.1, 0.4}
	mu, err := Expectation(pi, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []int{1, 10, 57} {
		got, err := c.ExpectedCumulative(pi, f, steps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-mu*float64(steps)) > 1e-12*float64(steps) {
			t.Fatalf("cumulative(%d) = %g, want %g", steps, got, mu*float64(steps))
		}
	}
}

func TestSurvivalProbabilityIIDCase(t *testing.T) {
	// All rows equal and constant event probability e: survival = (1-e)^n.
	c := chainFromRows(t, [][]float64{
		{0.3, 0.7},
		{0.3, 0.7},
	})
	e := 0.01
	s, err := c.SurvivalProbability([]float64{0.3, 0.7}, []float64{e, e}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-e, 100)
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("survival = %g, want %g", s, want)
	}
}

func TestSurvivalStateDependence(t *testing.T) {
	// Errors only in state 1; starting in state 0 of a slowly-switching
	// chain survives longer than starting in state 1.
	c := chainFromRows(t, [][]float64{
		{0.95, 0.05},
		{0.05, 0.95},
	})
	e := []float64{0, 0.2}
	s0, err := c.SurvivalProbability([]float64{1, 0}, e, 20)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.SurvivalProbability([]float64{0, 1}, e, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s0 <= s1 {
		t.Fatalf("survival from safe state %g <= from risky state %g", s0, s1)
	}
}

func TestSurvivalValidation(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	if _, err := c.SurvivalProbability([]float64{1, 0}, []float64{0.5}, 5); err == nil {
		t.Error("bad eventProb length accepted")
	}
	if _, err := c.SurvivalProbability([]float64{1, 0}, []float64{1.5, 0}, 5); err == nil {
		t.Error("eventProb > 1 accepted")
	}
	if _, err := c.SurvivalProbability([]float64{1, 0}, []float64{-0.1, 0}, 5); err == nil {
		t.Error("negative eventProb accepted")
	}
	if _, err := c.SurvivalProbability([]float64{1, 0}, []float64{0, 0}, -1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestFrameErrorRateComplementsSurvival(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	e := []float64{0.001, 0.01}
	pi := wantTwoState(0.3, 0.2)
	s, err := c.SurvivalProbability(pi, e, 810*8) // SONET STS-1 frame bits
	if err != nil {
		t.Fatal(err)
	}
	fer, err := c.FrameErrorRate(pi, e, 810*8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s+fer-1) > 1e-15 {
		t.Fatalf("survival %g + FER %g != 1", s, fer)
	}
}

// Property: survival is monotone non-increasing in the horizon and bounded
// by the i.i.d. envelopes built from min/max event probabilities.
func TestQuickSurvivalBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := randomChain(t, n, rng)
		e := make([]float64, n)
		lo, hi := 1.0, 0.0
		for i := range e {
			e[i] = rng.Float64() * 0.3
			if e[i] < lo {
				lo = e[i]
			}
			if e[i] > hi {
				hi = e[i]
			}
		}
		x0 := c.Uniform()
		prev := 1.0
		for _, steps := range []int{1, 3, 7, 15} {
			s, err := c.SurvivalProbability(x0, e, steps)
			if err != nil {
				return false
			}
			if s > prev+1e-12 {
				return false
			}
			prev = s
			if s > math.Pow(1-lo, float64(steps))+1e-12 ||
				s < math.Pow(1-hi, float64(steps))-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
