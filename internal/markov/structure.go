package markov

// Structural analysis: strongly connected components (Tarjan), recurrence
// classification, irreducibility and period. The CDR model is constructed
// over its reachable state space, but reducibility can still arise from
// degenerate parameter choices (e.g. zero transition density); these
// checks turn such mistakes into diagnostics instead of silent
// non-convergence.

// SCCs returns the strongly connected components of the chain's directed
// transition graph (edges with positive probability), using Tarjan's
// algorithm with an explicit stack to survive million-state graphs without
// blowing the goroutine stack. Components are returned in reverse
// topological order (every edge leaving component k targets a component
// with index < k... specifically Tarjan emits sinks first).
func (c *Chain) SCCs() [][]int {
	n := c.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		nextID int
	)
	// Iterative Tarjan: frame holds the vertex and the position within its
	// adjacency list.
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = nextID
		low[root] = nextID
		nextID++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			cols, vals := c.p.Row(f.v)
			advanced := false
			for f.ei < len(cols) {
				w := cols[f.ei]
				pw := vals[f.ei]
				f.ei++
				if pw == 0 {
					continue
				}
				if index[w] == unvisited {
					index[w] = nextID
					low[w] = nextID
					nextID++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All edges of f.v explored: close the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// IsIrreducible reports whether the chain has a single strongly connected
// component.
func (c *Chain) IsIrreducible() bool { return len(c.SCCs()) == 1 }

// RecurrentClasses returns the closed (recurrent) communicating classes:
// SCCs with no positive-probability edge leaving them. An ergodic chain
// has exactly one, covering all states.
func (c *Chain) RecurrentClasses() [][]int {
	comps := c.SCCs()
	id := make([]int, c.N())
	for ci, comp := range comps {
		for _, v := range comp {
			id[v] = ci
		}
	}
	closed := make([]bool, len(comps))
	for i := range closed {
		closed[i] = true
	}
	for v := 0; v < c.N(); v++ {
		cols, vals := c.p.Row(v)
		for k, w := range cols {
			if vals[k] > 0 && id[w] != id[v] {
				closed[id[v]] = false
			}
		}
	}
	var out [][]int
	for ci, comp := range comps {
		if closed[ci] {
			out = append(out, comp)
		}
	}
	return out
}

// Period returns the period of an irreducible chain: the gcd of all cycle
// lengths, computed from BFS level differences. It returns 0 for a
// reducible chain (period is then class-dependent).
func (c *Chain) Period() int {
	if !c.IsIrreducible() {
		return 0
	}
	n := c.N()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	g := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cols, vals := c.p.Row(v)
		for k, w := range cols {
			if vals[k] == 0 {
				continue
			}
			if level[w] < 0 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			} else {
				d := level[v] + 1 - level[w]
				if d < 0 {
					d = -d
				}
				g = gcd(g, d)
				if g == 1 {
					return 1
				}
			}
		}
	}
	if g == 0 {
		// Single state with a self-loop-free graph cannot occur in a
		// stochastic matrix; g==0 means no cycle discrepancies, i.e. the
		// chain is a single cycle of length n.
		return n
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// IsErgodic reports whether the chain is irreducible and aperiodic, the
// condition under which every solver here converges to the unique
// stationary distribution.
func (c *Chain) IsErgodic() bool {
	return c.IsIrreducible() && c.Period() == 1
}
