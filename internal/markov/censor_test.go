package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCensorStationaryIsConditional(t *testing.T) {
	// The stationary vector of the censored chain equals the original
	// stationary restricted to the watched set and renormalized.
	rng := rand.New(rand.NewSource(31))
	c := randomChain(t, 9, rng)
	pi, err := c.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	watched := make([]bool, 9)
	watched[1], watched[4], watched[7] = true, true, true
	cc, idx, err := c.Censor(watched)
	if err != nil {
		t.Fatal(err)
	}
	piC, err := cc.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	mass := pi[1] + pi[4] + pi[7]
	for k, i := range idx {
		want := pi[i] / mass
		if math.Abs(piC[k]-want) > 1e-11 {
			t.Fatalf("state %d: censored pi %g vs conditional %g", i, piC[k], want)
		}
	}
}

func TestCensorIsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	c := randomChain(t, 12, rng)
	watched := make([]bool, 12)
	for i := 0; i < 5; i++ {
		watched[i] = true
	}
	cc, _, err := c.Censor(watched)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.P().CheckStochastic(1e-10); err != nil {
		t.Fatal(err)
	}
}

func TestCensorWholeChain(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	watched := []bool{true, true}
	cc, idx, err := c.Censor(watched)
	if err != nil {
		t.Fatal(err)
	}
	if cc != c || len(idx) != 2 {
		t.Fatal("watching everything should return the chain itself")
	}
}

func TestCensorErrors(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	if _, _, err := c.Censor([]bool{true}); err == nil {
		t.Error("mask length mismatch accepted")
	}
	if _, _, err := c.Censor([]bool{false, false}); err == nil {
		t.Error("empty watched set accepted")
	}
	// Reducible chain whose unwatched block is closed: censoring must fail.
	red := chainFromRows(t, [][]float64{
		{0.5, 0.5, 0},
		{0, 1, 0},
		{0, 0, 1},
	})
	if _, _, err := red.Censor([]bool{true, false, false}); err == nil {
		t.Error("closed unwatched block accepted")
	}
}

func TestCensorTwoStateExplicit(t *testing.T) {
	// Watching only state 0 of the two-state chain gives the trivial
	// one-state chain.
	c := twoState(t, 0.3, 0.2)
	cc, idx, err := c.Censor([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("idx = %v", idx)
	}
	if got := cc.P().At(0, 0); math.Abs(got-1) > 1e-14 {
		t.Fatalf("P_censored(0,0) = %g", got)
	}
}

// Property: censoring a random chain on a random nonempty proper subset
// yields a stochastic chain whose stationary vector is the conditional
// one.
func TestQuickCensorConditional(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		c := randomChain(t, n, rng)
		watched := make([]bool, n)
		count := 0
		for i := range watched {
			if rng.Float64() < 0.5 {
				watched[i] = true
				count++
			}
		}
		if count == 0 {
			watched[0] = true
			count = 1
		}
		if count == n {
			watched[n-1] = false
			count--
		}
		cc, idx, err := c.Censor(watched)
		if err != nil {
			return false
		}
		pi, err := c.StationaryDirect()
		if err != nil {
			return false
		}
		piC, err := cc.StationaryDirect()
		if err != nil {
			return false
		}
		mass := 0.0
		for _, i := range idx {
			mass += pi[i]
		}
		for k, i := range idx {
			if math.Abs(piC[k]-pi[i]/mass) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
