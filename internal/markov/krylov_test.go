package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGMRESMatchesGTHOnTwoState(t *testing.T) {
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	res, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	want := wantTwoState(a, b)
	if d := maxAbsDiff(res.Pi, want); d > 1e-10 {
		t.Fatalf("GMRES off by %g: %v", d, res.Pi)
	}
}

func TestGMRESRandomChains(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(40)
		c := randomChain(t, n, rng)
		ref, err := c.StationaryDirect()
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: not converged: %+v", trial, res)
		}
		if d := maxAbsDiff(res.Pi, ref); d > 1e-9 {
			t.Fatalf("trial %d: off by %g", trial, d)
		}
	}
}

func TestGMRESHandlesPeriodicChain(t *testing.T) {
	// Period-2 chain: power iteration oscillates, GMRES solves the linear
	// system directly.
	c := chainFromRows(t, [][]float64{{0, 1}, {1, 0}})
	res, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if d := maxAbsDiff(res.Pi, []float64{0.5, 0.5}); d > 1e-10 {
		t.Fatalf("off by %g", d)
	}
}

func TestGMRESSlowMixingBeatsPower(t *testing.T) {
	// Weak-drift random walk: power iteration needs thousands of products,
	// GMRES far fewer.
	n := 128
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		up, down := 0.26, 0.25
		stay := 1 - up - down
		switch i {
		case 0:
			rows[i][0] = stay + down
			rows[i][1] = up
		case n - 1:
			rows[i][n-1] = stay + up
			rows[i][n-2] = down
		default:
			rows[i][i-1] = down
			rows[i][i] = stay
			rows[i][i+1] = up
		}
	}
	c := chainFromRows(t, rows)
	gm, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-10, Restart: 40})
	if err != nil || !gm.Converged {
		t.Fatalf("gmres: %v %+v", err, gm)
	}
	pw, err := c.StationaryPower(Options{Tol: 1e-10, MaxIter: 1000000, Damping: 0.95})
	if err != nil || !pw.Converged {
		t.Fatalf("power: %v %+v", err, pw)
	}
	if pw.Iterations < 5*gm.Iterations {
		t.Fatalf("expected GMRES win: gmres %d matvecs vs power %d sweeps",
			gm.Iterations, pw.Iterations)
	}
	if d := maxAbsDiff(gm.Pi, pw.Pi); d > 1e-7 {
		t.Fatalf("solutions differ by %g", d)
	}
}

func TestGMRESX0Validation(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	if _, err := c.StationaryGMRES(GMRESOptions{X0: []float64{1}}); err == nil {
		t.Error("bad X0 length accepted")
	}
}

func TestGMRESNonNegativeOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := randomChain(t, 25, rng)
	res, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("%v %+v", err, res)
	}
	sum := 0.0
	for _, v := range res.Pi {
		if v < 0 {
			t.Fatalf("negative entry %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass %g", sum)
	}
}

func TestQuickGMRESFixedPoint(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(sz%20)
		c := randomChain(t, n, rng)
		res, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-11})
		if err != nil || !res.Converged {
			return false
		}
		return c.Residual(res.Pi) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
