package markov

import (
	"math/rand"
	"runtime"
	"testing"

	"cdrstoch/internal/spmat"
)

// forceParallel drops the serial-fallback cutoff so even the small test
// chains exercise the parallel kernels, restoring it afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	old := spmat.ParallelCutoff
	spmat.ParallelCutoff = 0
	t.Cleanup(func() { spmat.ParallelCutoff = old })
}

func solverWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// The iterative solvers must agree between serial and any parallel team
// width to well below the convergence tolerance: MulVec is bit-identical
// by construction and VecMul only reassociates the gather, so the fixed
// points coincide to rounding.
func TestStationarySolversParallelMatchSerial(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(42))
	c := randomChain(t, 80, rng)

	type solver struct {
		name string
		run  func(workers int) ([]float64, error)
	}
	solvers := []solver{
		{"power", func(w int) ([]float64, error) {
			r, err := c.StationaryPower(Options{Tol: 1e-13, Workers: w})
			return r.Pi, err
		}},
		{"jacobi", func(w int) ([]float64, error) {
			r, err := c.StationaryJacobi(Options{Tol: 1e-13, Damping: 0.8, Workers: w})
			return r.Pi, err
		}},
		{"gauss-seidel", func(w int) ([]float64, error) {
			r, err := c.StationaryGaussSeidel(Options{Tol: 1e-13, Workers: w})
			return r.Pi, err
		}},
		{"gmres", func(w int) ([]float64, error) {
			r, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-13, Workers: w})
			return r.Pi, err
		}},
	}
	for _, s := range solvers {
		serial, err := s.run(1)
		if err != nil {
			t.Fatalf("%s serial: %v", s.name, err)
		}
		for _, w := range solverWorkerCounts()[1:] {
			par, err := s.run(w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", s.name, w, err)
			}
			if d := maxAbsDiff(par, serial); d > 1e-12 {
				t.Errorf("%s workers=%d differs from serial by %g", s.name, w, d)
			}
		}
	}
}

// A Workspace carried across solves must not change results: the buffers
// are scratch, the pool is stateless between dispatches.
func TestWorkspaceReuseAcrossSolves(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(7))
	ws := &Workspace{Pool: spmat.NewPool(2)}
	defer ws.Pool.Close()
	for trial := 0; trial < 4; trial++ {
		c := randomChain(t, 20+10*trial, rng)
		fresh, err := c.StationaryPower(Options{Tol: 1e-13})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := c.StationaryPower(Options{Tol: 1e-13, Ws: ws})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(fresh.Pi, reused.Pi); d > 1e-12 {
			t.Errorf("trial %d: workspace reuse changed result by %g", trial, d)
		}
	}
}

// The sweep loops must not allocate: a solve running 16x more iterations
// may not allocate more than the fixed per-solve setup.
func TestSolverAllocsDoNotScaleWithIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomChain(t, 60, rng)
	ws := &Workspace{Pool: spmat.NewPool(1)}

	measure := func(run func()) float64 {
		return testing.AllocsPerRun(50, run)
	}
	type tc struct {
		name string
		run  func(maxIter int)
	}
	// An unreachably small tolerance makes both runs exit on MaxIter, so
	// the difference between them is pure sweep-loop work.
	cases := []tc{
		{"power", func(mi int) {
			c.StationaryPower(Options{Tol: 1e-300, MaxIter: mi, Ws: ws})
		}},
		{"jacobi", func(mi int) {
			c.StationaryJacobi(Options{Tol: 1e-300, MaxIter: mi, Damping: 0.8, Ws: ws})
		}},
		{"gauss-seidel", func(mi int) {
			c.StationaryGaussSeidel(Options{Tol: 1e-300, MaxIter: mi, Ws: ws})
		}},
	}
	for _, tcase := range cases {
		short := measure(func() { tcase.run(4) })
		long := measure(func() { tcase.run(64) })
		if long > short {
			t.Errorf("%s: allocs grew with iterations: %v (4 iters) -> %v (64 iters)",
				tcase.name, short, long)
		}
	}
}
