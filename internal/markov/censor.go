package markov

import (
	"errors"

	"cdrstoch/internal/spmat"
)

// Censored (watched) chains via stochastic complementation. Watching a
// subset A of states — recording the chain only when it visits A — yields
// a new Markov chain on A whose TPM is the stochastic complement
//
//	S = P_AA + P_AB · (I − P_BB)⁻¹ · P_BA,
//
// the exact counterpart of the *approximate* iterate-weighted lumping used
// inside the multigrid cycle (Meyer's theory of nearly uncoupled chains
// connects the two). Its stationary vector is the conditional stationary
// distribution π(·|A) — a property the tests exploit, and a useful exact
// reduction when only a component of the CDR state (e.g. the phase error
// at counter-reset instants) is of interest.

// Censor returns the stochastic complement of the chain on the watched
// states (given as a boolean mask) along with the watched state indices in
// increasing order. The unwatched block must be transient relative to the
// watched set (i.e. (I − P_BB) nonsingular), which holds for any
// irreducible chain and proper subset.
func (c *Chain) Censor(watched []bool) (*Chain, []int, error) {
	n := c.N()
	if len(watched) != n {
		return nil, nil, errors.New("markov: watched mask length mismatch")
	}
	var aIdx, bIdx []int
	for i, w := range watched {
		if w {
			aIdx = append(aIdx, i)
		} else {
			bIdx = append(bIdx, i)
		}
	}
	if len(aIdx) == 0 {
		return nil, nil, errors.New("markov: empty watched set")
	}
	if len(bIdx) == 0 {
		// Watching everything: the complement is the chain itself.
		return c, aIdx, nil
	}
	na, nb := len(aIdx), len(bIdx)
	posA := make([]int, n)
	posB := make([]int, n)
	for i := range posA {
		posA[i], posB[i] = -1, -1
	}
	for k, i := range aIdx {
		posA[i] = k
	}
	for k, i := range bIdx {
		posB[i] = k
	}

	// Dense blocks: censoring is used for modest watched complements; the
	// (I − P_BB) solve is the dominant cost.
	iMinusBB := spmat.NewDense(nb, nb)
	pBA := spmat.NewDense(nb, na)
	for k, i := range bIdx {
		iMinusBB.Set(k, k, 1)
		cols, vals := c.p.Row(i)
		for kk, j := range cols {
			if pb := posB[j]; pb >= 0 {
				iMinusBB.Add(k, pb, -vals[kk])
			} else {
				pBA.Add(k, posA[j], vals[kk])
			}
		}
	}
	lu, err := spmat.Factorize(iMinusBB)
	if err != nil {
		return nil, nil, errors.New("markov: unwatched block not transient (reducible chain?)")
	}
	// X = (I − P_BB)⁻¹ P_BA, solved column by column.
	x := spmat.NewDense(nb, na)
	col := make([]float64, nb)
	for j := 0; j < na; j++ {
		for i := 0; i < nb; i++ {
			col[i] = pBA.At(i, j)
		}
		sol := lu.Solve(col)
		for i := 0; i < nb; i++ {
			x.Set(i, j, sol[i])
		}
	}

	tr := spmat.NewTriplet(na, na)
	for k, i := range aIdx {
		cols, vals := c.p.Row(i)
		for kk, j := range cols {
			if pa := posA[j]; pa >= 0 {
				tr.Add(k, pa, vals[kk])
			} else {
				pb := posB[j]
				v := vals[kk]
				for jj := 0; jj < na; jj++ {
					if xv := x.At(pb, jj); xv != 0 {
						tr.Add(k, jj, v*xv)
					}
				}
			}
		}
	}
	s := tr.ToCSR()
	censored, err := New(s)
	if err != nil {
		return nil, nil, err
	}
	return censored, aIdx, nil
}
