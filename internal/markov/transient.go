package markov

import (
	"errors"
	"fmt"
)

// Transient analysis: finite-horizon distribution evolution and
// event-survival probabilities. The stationary analysis answers "what is
// the BER"; the transient analysis answers the framing questions around
// it — how fast the loop acquires lock from a given start, and how likely
// a whole frame (e.g. a SONET frame) survives without a single detection
// error, where the per-bit error probability depends on the loop state.

// Evolve returns the state distribution after the given number of steps
// from x0 (which is normalized internally).
func (c *Chain) Evolve(x0 []float64, steps int) ([]float64, error) {
	if len(x0) != c.N() {
		return nil, fmt.Errorf("markov: x0 length %d, want %d", len(x0), c.N())
	}
	if steps < 0 {
		return nil, errors.New("markov: negative step count")
	}
	x := make([]float64, len(x0))
	copy(x, x0)
	if err := normalize(x); err != nil {
		return nil, err
	}
	y := make([]float64, len(x))
	for k := 0; k < steps; k++ {
		c.p.VecMul(y, x)
		x, y = y, x
	}
	return x, nil
}

// ExpectedCumulative returns E[Σ_{k=0}^{steps−1} f(X_k)] from start x0 —
// e.g. the expected number of bit errors over a horizon when f is the
// per-state error probability.
func (c *Chain) ExpectedCumulative(x0, f []float64, steps int) (float64, error) {
	if len(x0) != c.N() || len(f) != c.N() {
		return 0, errors.New("markov: length mismatch")
	}
	if steps < 0 {
		return 0, errors.New("markov: negative step count")
	}
	x := make([]float64, len(x0))
	copy(x, x0)
	if err := normalize(x); err != nil {
		return 0, err
	}
	y := make([]float64, len(x))
	total := 0.0
	for k := 0; k < steps; k++ {
		for i, p := range x {
			total += p * f[i]
		}
		c.p.VecMul(y, x)
		x, y = y, x
	}
	return total, nil
}

// SurvivalProbability returns P(no event occurs during steps transitions)
// when the event fires at each step with state-dependent probability
// eventProb[state], independently given the state. The computation is
// exact: the defective distribution v_k = x ∘ (1−e) is propagated through
// P and its final mass is the survival probability. With eventProb set to
// the per-state bit-error probability this is the frame-survival (no
// errored bit) probability.
func (c *Chain) SurvivalProbability(x0, eventProb []float64, steps int) (float64, error) {
	n := c.N()
	if len(x0) != n || len(eventProb) != n {
		return 0, errors.New("markov: length mismatch")
	}
	if steps < 0 {
		return 0, errors.New("markov: negative step count")
	}
	for i, e := range eventProb {
		if e < 0 || e > 1 {
			return 0, fmt.Errorf("markov: eventProb[%d] = %g outside [0,1]", i, e)
		}
	}
	v := make([]float64, n)
	copy(v, x0)
	if err := normalize(v); err != nil {
		return 0, err
	}
	w := make([]float64, n)
	for k := 0; k < steps; k++ {
		for i := range v {
			v[i] *= 1 - eventProb[i]
		}
		c.p.VecMul(w, v)
		v, w = w, v
	}
	mass := 0.0
	for _, p := range v {
		mass += p
	}
	return mass, nil
}

// FrameErrorRate returns P(at least one event in a frame of frameLen
// steps) starting from x0 — the frame/packet loss rate implied by the
// per-state error probabilities.
func (c *Chain) FrameErrorRate(x0, eventProb []float64, frameLen int) (float64, error) {
	s, err := c.SurvivalProbability(x0, eventProb, frameLen)
	if err != nil {
		return 0, err
	}
	return 1 - s, nil
}
