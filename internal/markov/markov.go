// Package markov provides discrete-time Markov chain analysis over sparse
// transition probability matrices: structural classification (reachability,
// irreducibility, period), classical stationary-distribution solvers
// (power, Jacobi, Gauss–Seidel, SOR), and the state-function statistics the
// paper derives from the stationary vector (expectations, tail masses and
// autocorrelations).
//
// The multilevel aggregation solver that accelerates these classical
// iterations lives in internal/multigrid; the subtraction-free direct GTH
// solve lives in internal/spmat.
package markov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

// meterSolve hooks one iterative solve into the cost meter the context
// carries (if any): it snapshots the pool's kernel counters up front and
// returns a finish function that attributes sweep count, final residual,
// and the kernel delta to the meter. Usage in every solver:
//
//	defer meterSolve(opt.Ctx, pool, &res)()
//
// The meter lookup happens once per solve; an unmetered context returns
// a no-op closure, so the sweep loops never branch on accounting.
func meterSolve(ctx context.Context, pool *spmat.Pool, res *Result) func() {
	meter := cost.FromContext(ctx)
	if meter == nil {
		return func() {}
	}
	stats0 := pool.Stats()
	meter.SampleGoroutines()
	return func() {
		meter.AddSweeps(int64(res.Iterations))
		if res.Iterations > 0 {
			meter.AddResidual(res.Residual)
		}
		meter.AddPoolDelta(stats0, pool.Stats())
	}
}

// Chain is a finite discrete-time Markov chain over an abstract
// transition operator: explicit CSR chains (New) carry the matrix and
// support every solver and structural analysis; matrix-free chains
// (NewOperator) carry only the operator and run the operator-capable
// iterations.
type Chain struct {
	p  *spmat.CSR // non-nil only for the explicit backend
	op Operator   // always non-nil; equals p for explicit chains
	// opsPerMul is the matrix-free backend's per-product work estimate
	// for cost accounting; 0 when the backend does not report one.
	opsPerMul int
}

// New validates P as a row-stochastic matrix and wraps it in a Chain.
func New(p *spmat.CSR) (*Chain, error) {
	if err := p.CheckStochastic(1e-9); err != nil {
		return nil, err
	}
	return &Chain{p: p, op: p}, nil
}

// P returns the transition probability matrix; nil for a matrix-free
// chain (NewOperator), whose transitions exist only through Operator.
func (c *Chain) P() *spmat.CSR { return c.p }

// Operator returns the chain's transition operator (the CSR itself for
// explicit chains).
func (c *Chain) Operator() Operator { return c.op }

// N returns the number of states.
func (c *Chain) N() int {
	n, _ := c.op.Dims()
	return n
}

// transpose returns Pᵀ through the matrix-owned cache (spmat.CSR.T): the
// column-sweep solvers here and the parallel gather kernels share one
// transpose per matrix. Safe because a Chain's matrix is never mutated.
// Only the explicit backend has a transpose; operator-backed chains must
// never reach here (their solvers use the splitting identity
// Σ_{j≠i} P_ji x_j = (x·P)_i − P_ii·x_i instead).
func (c *Chain) transpose() *spmat.CSR {
	if c.p == nil {
		panic("markov: transpose requires an explicit CSR backend")
	}
	return c.p.T()
}

// Uniform returns the uniform distribution over the chain's states.
func (c *Chain) Uniform() []float64 {
	n := c.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return x
}

// Step advances a distribution one step: returns x·P in dst (allocated when
// nil) and the destination slice.
func (c *Chain) Step(dst, x []float64) []float64 {
	if dst == nil {
		dst = make([]float64, c.N())
	}
	c.op.VecMul(dst, x)
	return dst
}

// Residual returns ‖x·P − x‖₁, the stationarity defect of x.
func (c *Chain) Residual(x []float64) float64 {
	return c.residualInto(nil, make([]float64, len(x)), x)
}

// residualInto computes ‖x·P − x‖₁ using scratch y and the given team —
// the allocation-free form the sweep loops call once per iteration.
func (c *Chain) residualInto(pool *spmat.Pool, y, x []float64) float64 {
	c.vecMul(pool, y, x)
	r := 0.0
	for i := range x {
		r += math.Abs(y[i] - x[i])
	}
	return r
}

// Workspace holds the buffers and the parallel worker team an iterative
// solve reuses across sweeps — and, when passed via Options.Ws, across
// solves. The zero value is ready to use. The service path keeps
// Workspaces in a sync.Pool so concurrent requests share teams and
// buffers instead of rebuilding them per request.
type Workspace struct {
	// Pool is the sparse-kernel worker team. When nil, the solver
	// installs one sized by Options.Workers on first use; the workspace
	// keeps it for later solves.
	Pool *spmat.Pool
	y    []float64 // iterate/product buffer
	r    []float64 // residual scratch
}

// ensure sizes the buffers for an n-state solve, reusing capacity.
func (w *Workspace) ensure(n int) {
	if cap(w.y) < n {
		w.y = make([]float64, n)
		w.r = make([]float64, n)
	}
	w.y = w.y[:n]
	w.r = w.r[:n]
}

// team returns the workspace's pool, creating one of the given width
// (0 = GOMAXPROCS, 1 = serial) on first use.
func (w *Workspace) team(workers int) *spmat.Pool {
	if w.Pool == nil {
		w.Pool = spmat.NewPool(workers)
	}
	return w.Pool
}

// normalize rescales x to unit 1-norm in place; returns an error when the
// mass vanished (a symptom of a defective iteration).
func normalize(x []float64) error {
	s := 0.0
	for _, v := range x {
		s += v
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return errors.New("markov: iterate lost probability mass")
	}
	inv := 1 / s
	for i := range x {
		x[i] *= inv
	}
	return nil
}

// Options configures an iterative stationary solve.
type Options struct {
	// Tol is the convergence threshold on ‖xP − x‖₁. Default 1e-12.
	Tol float64
	// MaxIter bounds the iteration count. Default 100000.
	MaxIter int
	// X0 is the initial distribution; uniform when nil.
	X0 []float64
	// Damping is the power-iteration damping factor α in
	// x ← α·xP + (1−α)·x; 1 (undamped) by default. Damping below 1 makes
	// the iteration converge on periodic chains.
	Damping float64
	// Omega is the SOR relaxation factor; 1 (Gauss–Seidel) by default.
	Omega float64
	// Trace receives a span around the solve and one "iter" event per
	// sweep with the running residual. The nil default keeps the
	// iteration loop free of observability overhead.
	Trace obs.Tracer
	// Ctx, when non-nil, is checked at every sweep boundary: a canceled or
	// expired context stops the solve and the solver returns a
	// partial-progress error wrapping ctx.Err(). Nil never cancels.
	Ctx context.Context
	// Workers is the width of the parallel worker team for the sparse
	// products of the sweep: 0 selects runtime.GOMAXPROCS, 1 forces
	// serial; matrices below spmat.ParallelCutoff run serially
	// regardless of the setting. Ignored when Ws carries a live Pool.
	Workers int
	// Ws supplies reusable buffers and the worker team. Passing the same
	// Workspace to consecutive solves removes the per-solve buffer and
	// team setup; nil uses a private workspace.
	Ws *Workspace
	// Faults arms the markov.sweep injection point, hit at every sweep
	// boundary alongside the Ctx check. Nil (the default) disables
	// injection at the cost of one branch per sweep.
	Faults *faults.Injector
}

// workspace returns the caller-supplied workspace or a private one,
// sized for n states.
func (o Options) workspace(n int) *Workspace {
	ws := o.Ws
	if ws == nil {
		ws = &Workspace{}
	}
	ws.ensure(n)
	return ws
}

// ctxErr reports the context error or injected fault to surface at a
// sweep boundary, nil when the solve should continue. name and progress
// label the partial result in the returned error.
func (o Options) ctxErr(name string, iterations int, residual float64) error {
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return fmt.Errorf("markov: %s solve stopped after %d sweeps (residual %.3e): %w",
				name, iterations, residual, err)
		}
	}
	if err := o.Faults.FireCtx(o.Ctx, "markov.sweep"); err != nil {
		return fmt.Errorf("markov: %s solve stopped after %d sweeps (residual %.3e): %w",
			name, iterations, residual, err)
	}
	return nil
}

func (o Options) withDefaults(n int) Options {
	// Tie the solver's events to the request that initiated it: when the
	// context carries a trace ID, every span/iter event is stamped with it.
	o.Trace = obs.StampFromContext(o.Ctx, o.Trace)
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	if o.Omega <= 0 {
		o.Omega = 1
	}
	return o
}

// Result reports the outcome of an iterative stationary solve.
type Result struct {
	// Pi is the computed stationary distribution.
	Pi []float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final ‖πP − π‖₁.
	Residual float64
	// Converged reports whether Residual ≤ Tol was reached.
	Converged bool
}

func (r Result) String() string {
	return fmt.Sprintf("iter=%d residual=%.3e converged=%v", r.Iterations, r.Residual, r.Converged)
}

func (c *Chain) initial(opt Options) ([]float64, error) {
	if opt.X0 == nil {
		return c.Uniform(), nil
	}
	if len(opt.X0) != c.N() {
		return nil, fmt.Errorf("markov: X0 length %d, want %d", len(opt.X0), c.N())
	}
	x := make([]float64, len(opt.X0))
	copy(x, opt.X0)
	if err := normalize(x); err != nil {
		return nil, err
	}
	return x, nil
}

// StationaryPower computes the stationary distribution by (optionally
// damped) power iteration x ← α·xP + (1−α)·x. This is the paper's baseline
// "Gauss–Jacobi" smoother, and the smoother used between multigrid levels.
func (c *Chain) StationaryPower(opt Options) (Result, error) {
	opt = opt.withDefaults(c.N())
	ws := opt.workspace(c.N())
	pool := ws.team(opt.Workers)
	x, err := c.initial(opt)
	if err != nil {
		return Result{}, err
	}
	y := ws.y
	res := Result{}
	endSpan := obs.StartSpan(opt.Trace, "power")
	defer endSpan()
	defer meterSolve(opt.Ctx, pool, &res)()
	for it := 1; it <= opt.MaxIter; it++ {
		if err := opt.ctxErr("power", res.Iterations, res.Residual); err != nil {
			res.Pi = x
			return res, err
		}
		c.vecMul(pool, y, x)
		r := 0.0
		a := opt.Damping
		for i := range x {
			r += math.Abs(y[i] - x[i])
			x[i] = a*y[i] + (1-a)*x[i]
		}
		if err := normalize(x); err != nil {
			return Result{}, err
		}
		res.Iterations = it
		res.Residual = r
		obs.IterEvent(opt.Trace, "power", it, r)
		if r <= opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Pi = x
	return res, nil
}

// StationaryJacobi computes the stationary distribution with the Jacobi
// splitting of (I − Pᵀ)x = 0: x_i ← Σ_{j≠i} P_ji x_j / (1 − P_ii).
// Because the system is singular, the plain Jacobi iteration matrix can
// carry an eigenvalue at −1 and oscillate; Options.Damping < 1 (weighted
// Jacobi / JOR) restores convergence and is recommended.
func (c *Chain) StationaryJacobi(opt Options) (Result, error) {
	opt = opt.withDefaults(c.N())
	diag := c.op.Diag()
	for i, d := range diag {
		if d >= 1 {
			return Result{}, fmt.Errorf("markov: absorbing state %d, Jacobi splitting undefined", i)
		}
	}
	if c.p == nil {
		return c.stationaryJacobiOp(opt, diag)
	}
	ws := opt.workspace(c.N())
	pool := ws.team(opt.Workers)
	pt := c.transpose()
	x, err := c.initial(opt)
	if err != nil {
		return Result{}, err
	}
	orig := x
	y := make([]float64, len(x))
	res := Result{}
	// The Jacobi update reads only x and writes y[i] for its own rows, so
	// the sweep is row-parallel over Pᵀ with bit-identical results at any
	// team width. The kernel struct and its method value are built once;
	// the sweep loop then allocates nothing.
	kern := &jacobiSweep{pt: pt, diag: diag, a: opt.Damping}
	sweep := kern.rows
	endSpan := obs.StartSpan(opt.Trace, "jacobi")
	defer endSpan()
	defer meterSolve(opt.Ctx, pool, &res)()
	for it := 1; it <= opt.MaxIter; it++ {
		if err := opt.ctxErr("jacobi", res.Iterations, res.Residual); err != nil {
			res.Pi = x
			return res, err
		}
		kern.x, kern.y = x, y
		pool.RunRows(pt, sweep)
		x, y = y, x
		if err := normalize(x); err != nil {
			return Result{}, err
		}
		res.Iterations = it
		res.Residual = c.residualInto(pool, ws.r, x)
		obs.IterEvent(opt.Trace, "jacobi", it, res.Residual)
		if res.Residual <= opt.Tol {
			res.Converged = true
			break
		}
	}
	// The buffer swap may leave the final iterate in y's storage; return
	// the slice the caller cannot see aliased elsewhere.
	if &x[0] != &orig[0] {
		copy(orig, x)
		x = orig
	}
	res.Pi = x
	return res, nil
}

// jacobiSweep is the row-parallel Jacobi kernel: one update of
// y_i ← a·Σ_{j≠i} Pᵀ_ij x_j / (1 − P_ii) + (1−a)·x_i over a row range.
type jacobiSweep struct {
	pt   *spmat.CSR
	diag []float64
	x, y []float64
	a    float64
}

func (s *jacobiSweep) rows(_, lo, hi int) {
	a := s.a
	for i := lo; i < hi; i++ {
		cols, vals := s.pt.Row(i) // row i of Pᵀ = column i of P
		sum := 0.0
		for k, j := range cols {
			if j != i {
				sum += vals[k] * s.x[j]
			}
		}
		s.y[i] = a*sum/(1-s.diag[i]) + (1-a)*s.x[i]
	}
}

// stationaryJacobiOp is the Jacobi sweep for operator-backed chains. A
// matrix-free backend has no transpose, but none is needed: the off-
// diagonal column sum the splitting wants is recovered from the full
// product, Σ_{j≠i} P_ji·x_j = (x·P)_i − P_ii·x_i, so one VecMul plus the
// cached diagonal drives each sweep. The update reads x[i] and y[i] only
// at index i, so it runs in place on x.
func (c *Chain) stationaryJacobiOp(opt Options, diag []float64) (Result, error) {
	ws := opt.workspace(c.N())
	pool := ws.team(opt.Workers)
	x, err := c.initial(opt)
	if err != nil {
		return Result{}, err
	}
	y := ws.y
	res := Result{}
	a := opt.Damping
	endSpan := obs.StartSpan(opt.Trace, "jacobi")
	defer endSpan()
	defer meterSolve(opt.Ctx, pool, &res)()
	for it := 1; it <= opt.MaxIter; it++ {
		if err := opt.ctxErr("jacobi", res.Iterations, res.Residual); err != nil {
			res.Pi = x
			return res, err
		}
		c.vecMul(pool, y, x)
		for i := range x {
			x[i] = a*(y[i]-diag[i]*x[i])/(1-diag[i]) + (1-a)*x[i]
		}
		if err := normalize(x); err != nil {
			return Result{}, err
		}
		res.Iterations = it
		res.Residual = c.residualInto(pool, ws.r, x)
		obs.IterEvent(opt.Trace, "jacobi", it, res.Residual)
		if res.Residual <= opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Pi = x
	return res, nil
}

// StationaryGaussSeidel computes the stationary distribution with forward
// Gauss–Seidel sweeps on (I − Pᵀ)x = 0, optionally over-relaxed (SOR) via
// Options.Omega.
func (c *Chain) StationaryGaussSeidel(opt Options) (Result, error) {
	if c.p == nil {
		return Result{}, errors.New("markov: Gauss-Seidel requires an explicit CSR backend")
	}
	opt = opt.withDefaults(c.N())
	ws := opt.workspace(c.N())
	pool := ws.team(opt.Workers)
	pt := c.transpose()
	diag := c.p.Diag()
	for i, d := range diag {
		if d >= 1 {
			return Result{}, fmt.Errorf("markov: absorbing state %d, Gauss-Seidel splitting undefined", i)
		}
	}
	x, err := c.initial(opt)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	omega := opt.Omega
	n := c.N()
	endSpan := obs.StartSpan(opt.Trace, "gauss-seidel")
	defer endSpan()
	defer meterSolve(opt.Ctx, pool, &res)()
	for it := 1; it <= opt.MaxIter; it++ {
		if err := opt.ctxErr("gauss-seidel", res.Iterations, res.Residual); err != nil {
			res.Pi = x
			return res, err
		}
		for i := 0; i < n; i++ {
			cols, vals := pt.Row(i)
			s := 0.0
			for k, j := range cols {
				if j != i {
					s += vals[k] * x[j]
				}
			}
			gs := s / (1 - diag[i])
			x[i] = (1-omega)*x[i] + omega*gs
		}
		if err := normalize(x); err != nil {
			return Result{}, err
		}
		res.Iterations = it
		res.Residual = c.residualInto(pool, ws.r, x)
		obs.IterEvent(opt.Trace, "gauss-seidel", it, res.Residual)
		if res.Residual <= opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Pi = x
	return res, nil
}

// StationaryDirect computes the stationary distribution with the dense
// subtraction-free GTH algorithm. Intended for small chains (it densifies
// the TPM); it is exact to rounding and preserves tiny tail masses.
func (c *Chain) StationaryDirect() ([]float64, error) {
	if c.p == nil {
		return nil, errors.New("markov: direct GTH solve requires an explicit CSR backend")
	}
	return spmat.StationaryGTHCSR(c.p)
}
