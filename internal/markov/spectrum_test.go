package markov

import (
	"math"
	"testing"
)

// lorentzian is the exact PSD of a process with geometric autocovariance
// r(k) = r0·λ^|k|:  S(ν) = r0·(1−λ²)/(1 − 2λcos(2πν) + λ²).
func lorentzian(r0, lambda, nu float64) float64 {
	c := math.Cos(2 * math.Pi * nu)
	return r0 * (1 - lambda*lambda) / (1 - 2*lambda*c + lambda*lambda)
}

func TestSpectralDensityTwoStateLorentzian(t *testing.T) {
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	f := []float64{0, 1}
	lambda := 1 - a - b
	cov, err := c.Autocovariance(pi, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0 := cov[0]
	freqs := []float64{0.05, 0.1, 0.25, 0.5}
	// Long maxLag: the Bartlett window bias vanishes as maxLag grows.
	psd, err := c.SpectralDensity(pi, f, 4000, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, nu := range freqs {
		want := lorentzian(r0, lambda, nu)
		if rel := math.Abs(psd[i]-want) / want; rel > 0.02 {
			t.Fatalf("S(%g) = %g, want %g (rel %g)", nu, psd[i], want, rel)
		}
	}
}

func TestSpectralDensityIIDFlat(t *testing.T) {
	// i.i.d. chain: PSD flat at r(0).
	c := chainFromRows(t, [][]float64{
		{0.4, 0.6},
		{0.4, 0.6},
	})
	pi := []float64{0.4, 0.6}
	f := []float64{-1, 1}
	cov, err := c.Autocovariance(pi, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	psd, err := c.SpectralDensity(pi, f, 100, []float64{0.1, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range psd {
		if math.Abs(s-cov[0]) > 1e-10 {
			t.Fatalf("flat PSD broken at %d: %g vs %g", i, s, cov[0])
		}
	}
}

func TestSpectralDensityValidation(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	pi := wantTwoState(0.3, 0.2)
	f := []float64{0, 1}
	if _, err := c.SpectralDensity(pi, f, 0, []float64{0.1}); err == nil {
		t.Error("zero maxLag accepted")
	}
	if _, err := c.SpectralDensity(pi, f, 10, []float64{0}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := c.SpectralDensity(pi, f, 10, []float64{0.6}); err == nil {
		t.Error("super-Nyquist frequency accepted")
	}
}

func TestAsymptoticVarianceTwoState(t *testing.T) {
	// Exact: σ²∞ = r0·(1+λ)/(1−λ) for geometric autocovariance.
	a, b := 0.3, 0.2
	c := twoState(t, a, b)
	pi := wantTwoState(a, b)
	f := []float64{0, 1}
	lambda := 1 - a - b
	cov, err := c.Autocovariance(pi, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := cov[0] * (1 + lambda) / (1 - lambda)
	got, err := c.AsymptoticVariance(pi, f, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 1e-6 {
		t.Fatalf("sigma2 = %g, want %g", got, want)
	}
	tau, err := c.IntegratedAutocorrelationTime(pi, f, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tau-(1+lambda)/(1-lambda)) / tau; rel > 1e-6 {
		t.Fatalf("tau = %g", tau)
	}
}

func TestAsymptoticVarianceIIDEqualsVariance(t *testing.T) {
	c := chainFromRows(t, [][]float64{
		{0.4, 0.6},
		{0.4, 0.6},
	})
	pi := []float64{0.4, 0.6}
	f := []float64{3, 7}
	v, err := Variance(pi, f)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.AsymptoticVariance(pi, f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-v) > 1e-10 {
		t.Fatalf("iid sigma2 %g vs variance %g", s, v)
	}
}

func TestIntegratedAutocorrelationDegenerate(t *testing.T) {
	c := twoState(t, 0.3, 0.2)
	pi := wantTwoState(0.3, 0.2)
	if _, err := c.IntegratedAutocorrelationTime(pi, []float64{5, 5}, 10); err == nil {
		t.Error("constant f accepted")
	}
}
