package markov

import (
	"errors"
	"math"
)

// Spectral analysis of stationary functions on the chain. The paper names
// the autocorrelation of a function on the MC states as the canonical
// computation after the stationary vector; its Fourier transform is the
// power spectral density — for f = phase error, the recovered clock's
// phase-noise spectrum, the quantity clock specifications are written
// against.

// SpectralDensity evaluates the one-sided power spectral density of the
// stationary process f(X_k) at the given normalized frequencies
// (cycles/step, in (0, 0.5]):
//
//	S(ν) = r(0) + 2·Σ_{k=1..maxLag} w_k·r(k)·cos(2πνk)
//
// where r is the autocovariance and w_k a Bartlett (triangular) window
// that keeps the truncated estimate non-negative. maxLag bounds the
// matvec count; it should exceed the chain's correlation time.
func (c *Chain) SpectralDensity(pi, f []float64, maxLag int, freqs []float64) ([]float64, error) {
	if maxLag < 1 {
		return nil, errors.New("markov: maxLag must be positive")
	}
	for _, nu := range freqs {
		if nu <= 0 || nu > 0.5 {
			return nil, errors.New("markov: frequencies must lie in (0, 0.5]")
		}
	}
	cov, err := c.Autocovariance(pi, f, maxLag)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(freqs))
	for i, nu := range freqs {
		s := cov[0]
		for k := 1; k <= maxLag; k++ {
			w := 1 - float64(k)/float64(maxLag+1) // Bartlett window
			s += 2 * w * cov[k] * math.Cos(2*math.Pi*nu*float64(k))
		}
		if s < 0 {
			s = 0 // windowing guarantees ≥ 0 up to rounding
		}
		out[i] = s
	}
	return out, nil
}

// AsymptoticVariance returns σ²∞ = r(0) + 2·Σ_{k≥1} r(k), the variance
// constant of the central limit theorem for time averages of f(X_k):
// Var[(1/n)Σf(X_k)] ≈ σ²∞/n. It quantifies how much a Monte Carlo
// estimate of E[f] is inflated by the chain's correlation relative to an
// i.i.d. sampler (the ratio σ²∞/r(0) is the integrated autocorrelation
// time). The sum is truncated at maxLag, which must exceed the
// correlation time for an accurate constant.
func (c *Chain) AsymptoticVariance(pi, f []float64, maxLag int) (float64, error) {
	if maxLag < 1 {
		return 0, errors.New("markov: maxLag must be positive")
	}
	cov, err := c.Autocovariance(pi, f, maxLag)
	if err != nil {
		return 0, err
	}
	s := cov[0]
	for k := 1; k <= maxLag; k++ {
		s += 2 * cov[k]
	}
	if s < 0 {
		s = 0
	}
	return s, nil
}

// IntegratedAutocorrelationTime returns τ = σ²∞ / r(0) ≥ 0; a Monte Carlo
// run needs τ× more samples than an i.i.d. one for the same precision on
// E[f]. Degenerate (constant) f returns an error.
func (c *Chain) IntegratedAutocorrelationTime(pi, f []float64, maxLag int) (float64, error) {
	cov, err := c.Autocovariance(pi, f, 0)
	if err != nil {
		return 0, err
	}
	if cov[0] <= 0 {
		return 0, errors.New("markov: degenerate function, zero variance")
	}
	s, err := c.AsymptoticVariance(pi, f, maxLag)
	if err != nil {
		return 0, err
	}
	return s / cov[0], nil
}
