package markov

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cdrstoch/internal/spmat"
)

// ringChain builds a lazy cycle on n states: stay with probability 1/2,
// advance with probability 1/2 — aperiodic, irreducible, slow to mix.
func ringChain(n int) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 0.5)
		tr.Add(i, (i+1)%n, 0.5)
	}
	return tr.ToCSR()
}

func TestStationarySolversHonorContext(t *testing.T) {
	ch, err := New(ringChain(64))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Ctx: ctx, MaxIter: 1000}
	solvers := map[string]func() (Result, error){
		"power":        func() (Result, error) { return ch.StationaryPower(opt) },
		"jacobi":       func() (Result, error) { return ch.StationaryJacobi(opt) },
		"gauss-seidel": func() (Result, error) { return ch.StationaryGaussSeidel(opt) },
		"gmres":        func() (Result, error) { return ch.StationaryGMRES(GMRESOptions{Ctx: ctx}) },
	}
	for name, solve := range solvers {
		res, err := solve()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", name, err)
			continue
		}
		if !strings.Contains(err.Error(), "stopped after") {
			t.Errorf("%s: error lacks partial progress: %v", name, err)
		}
		if res.Converged {
			t.Errorf("%s: canceled solve reported converged", name)
		}
	}
}

func TestStationaryPowerNilContext(t *testing.T) {
	ch, err := New(ringChain(16))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ch.StationaryPower(Options{Tol: 1e-10})
	if err != nil || !res.Converged {
		t.Fatalf("nil-context solve failed: %v %v", res, err)
	}
}
