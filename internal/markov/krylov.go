package markov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cdrstoch/internal/faults"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/obs/cost"
)

// Krylov-subspace stationary solver. The paper lists Krylov methods among
// the candidates that aggregation/disaggregation can accelerate; this file
// provides the baseline itself: restarted GMRES on the nonsingular
// formulation of the stationary equations, where the homogeneous system
// (I − Pᵀ)x = 0 has its first equation replaced by the normalization
// Σ_i x_i = 1 (paper equations (6)–(7)).

// GMRESOptions configures the restarted GMRES solve.
type GMRESOptions struct {
	// Tol is the convergence threshold on ‖πP − π‖₁ of the normalized
	// iterate. Default 1e-12.
	Tol float64
	// Restart is the Krylov subspace dimension m of GMRES(m). Default 30.
	Restart int
	// MaxIter bounds the total number of matrix–vector products.
	// Default 100000.
	MaxIter int
	// X0 is the initial distribution; uniform when nil.
	X0 []float64
	// Trace receives a span around the solve and one "iter" event per
	// restart cycle (Iter = cumulative matrix–vector products) with the
	// stationarity defect of the normalized iterate. Nil disables tracing.
	Trace obs.Tracer
	// Ctx, when non-nil, is checked at every restart boundary: a canceled
	// or expired context stops the solve with a partial-progress error
	// wrapping ctx.Err(). Nil never cancels.
	Ctx context.Context
	// Workers is the parallel team width for the sparse products (see
	// Options.Workers): 0 = GOMAXPROCS, 1 = serial. Ignored when Ws
	// carries a live Pool.
	Workers int
	// Ws supplies reusable solve buffers and the worker team; nil uses a
	// private workspace.
	Ws *Workspace
	// Faults arms the gmres.restart injection point, hit at every restart
	// boundary alongside the Ctx check. Nil (the default) disables
	// injection at the cost of one branch per restart.
	Faults *faults.Injector
}

func (o GMRESOptions) withDefaults() GMRESOptions {
	o.Trace = obs.StampFromContext(o.Ctx, o.Trace)
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100000
	}
	return o
}

// StationaryGMRES computes the stationary distribution with restarted
// GMRES. The operator is
//
//	(A·x)_i = x_i − (x·P)_i   for i ≥ 1,
//	(A·x)_0 = Σ_i x_i,
//
// and the right-hand side e₀ encodes the normalization, so A is
// nonsingular exactly when the chain has a unique stationary vector.
func (c *Chain) StationaryGMRES(opt GMRESOptions) (Result, error) {
	opt = opt.withDefaults()
	n := c.N()
	if n == 0 {
		return Result{}, errors.New("markov: empty chain")
	}
	ws := opt.Ws
	if ws == nil {
		ws = &Workspace{}
	}
	ws.ensure(n)
	pool := ws.team(opt.Workers)
	apply := func(dst, x []float64) {
		c.vecMul(pool, dst, x) // dst = x·P
		s := 0.0
		for i := range x {
			s += x[i]
			dst[i] = x[i] - dst[i]
		}
		dst[0] = s
	}
	b := make([]float64, n)
	b[0] = 1

	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return Result{}, fmt.Errorf("markov: X0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	} else {
		for i := range x {
			x[i] = 1 / float64(n)
		}
	}

	m := opt.Restart
	// Arnoldi basis and Hessenberg factors.
	basis := make([][]float64, m+1)
	for i := range basis {
		basis[i] = make([]float64, n)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	w := make([]float64, n)
	// Per-restart buffers, hoisted so restarts reuse them: the projected
	// triangular solve and the normalized-iterate copy.
	ybuf := make([]float64, m)
	xn := make([]float64, n)
	res := Result{}

	matvecs := 0
	endSpan := obs.StartSpan(opt.Trace, "gmres")
	defer endSpan()
	// Sweeps here are matrix–vector products; each restart additionally
	// records its defect so the report shows per-restart convergence.
	defer meterSolve(opt.Ctx, pool, &res)()
	meter := cost.FromContext(opt.Ctx)
	for matvecs < opt.MaxIter {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				res.Pi = x
				return res, fmt.Errorf("markov: gmres solve stopped after %d matvecs (residual %.3e): %w",
					matvecs, res.Residual, err)
			}
		}
		if err := opt.Faults.FireCtx(opt.Ctx, "gmres.restart"); err != nil {
			res.Pi = x
			return res, fmt.Errorf("markov: gmres solve stopped after %d matvecs (residual %.3e): %w",
				matvecs, res.Residual, err)
		}
		// r = b − A·x
		apply(w, x)
		matvecs++
		beta := 0.0
		for i := range w {
			w[i] = b[i] - w[i]
			beta += w[i] * w[i]
		}
		beta = math.Sqrt(beta)
		if beta <= opt.Tol*1e-3 {
			// The current iterate already solves the system (possible when
			// x0 is the stationary vector); finalize it.
			sum := 0.0
			for _, v := range x {
				sum += v
			}
			if sum <= 0 {
				return Result{}, errors.New("markov: GMRES iterate lost mass")
			}
			for i := range x {
				x[i] /= sum
			}
			res.Iterations = matvecs
			res.Residual = c.residualInto(pool, ws.r, x)
			res.Converged = res.Residual <= opt.Tol
			obs.IterEvent(opt.Trace, "gmres", matvecs, res.Residual)
			res.Pi = x
			return res, nil
		}
		inv := 1 / beta
		for i := range w {
			basis[0][i] = w[i] * inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && matvecs < opt.MaxIter; k++ {
			apply(w, basis[k])
			matvecs++
			// Modified Gram–Schmidt.
			for j := 0; j <= k; j++ {
				dot := 0.0
				for i := range w {
					dot += w[i] * basis[j][i]
				}
				h[j][k] = dot
				for i := range w {
					w[i] -= dot * basis[j][i]
				}
			}
			norm := 0.0
			for i := range w {
				norm += w[i] * w[i]
			}
			norm = math.Sqrt(norm)
			h[k+1][k] = norm
			if norm > 0 {
				inv := 1 / norm
				for i := range w {
					basis[k+1][i] = w[i] * inv
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for j := 0; j < k; j++ {
				t := cs[j]*h[j][k] + sn[j]*h[j+1][k]
				h[j+1][k] = -sn[j]*h[j][k] + cs[j]*h[j+1][k]
				h[j][k] = t
			}
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				k++
				break
			}
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
			h[k][k] = denom
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			if math.Abs(g[k+1]) < opt.Tol*1e-3 {
				k++
				break
			}
		}
		// Back-substitute y from the k×k triangular system and update x.
		y := ybuf[:k]
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				return Result{}, errors.New("markov: GMRES breakdown (reducible chain?)")
			}
			y[i] = sum / h[i][i]
		}
		for j := 0; j < k; j++ {
			for i := range x {
				x[i] += y[j] * basis[j][i]
			}
		}

		// Normalize and measure the stationarity defect.
		copy(xn, x)
		sum := 0.0
		for _, v := range xn {
			sum += v
		}
		if sum <= 0 || math.IsNaN(sum) {
			return Result{}, errors.New("markov: GMRES iterate lost mass")
		}
		for i := range xn {
			xn[i] /= sum
		}
		res.Iterations = matvecs
		res.Residual = c.residualInto(pool, ws.r, xn)
		obs.IterEvent(opt.Trace, "gmres", matvecs, res.Residual)
		meter.AddRestarts(1)
		meter.AddResidual(res.Residual)
		if res.Residual <= opt.Tol {
			res.Converged = true
			// Clip the tiny negative entries GMRES can leave in deep
			// tails, then renormalize.
			for i := range xn {
				if xn[i] < 0 {
					xn[i] = 0
				}
			}
			total := 0.0
			for _, v := range xn {
				total += v
			}
			for i := range xn {
				xn[i] /= total
			}
			res.Pi = xn
			return res, nil
		}
	}
	// Not converged: return the best normalized iterate.
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum > 0 {
		for i := range x {
			x[i] /= sum
		}
	}
	res.Pi = x
	return res, nil
}
