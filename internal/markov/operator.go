package markov

import (
	"fmt"
	"math"
	"time"

	"cdrstoch/internal/spmat"
)

// Operator is the abstract transition-matrix surface the iterative
// solvers run on: the row action y = P·x, the distribution action
// y = x·P, and the two structural vectors the splittings and the
// stochasticity check need. Two backends satisfy it today — the explicit
// *spmat.CSR and the matrix-free kron.Descriptor (structurally; neither
// package imports the other) — so the same power, Jacobi and GMRES loops
// solve chains whose product matrix was never materialized.
type Operator interface {
	// Dims returns the (square) matrix dimensions.
	Dims() (r, c int)
	// MulVec computes y = P·x.
	MulVec(y, x []float64)
	// VecMul computes y = x·P.
	VecMul(y, x []float64)
	// Diag returns a fresh copy of the diagonal.
	Diag() []float64
	// RowSums returns fresh per-row sums (≈1 for a stochastic operator).
	RowSums() []float64
}

// The explicit backend is the CSR itself.
var _ Operator = (*spmat.CSR)(nil)

// opsEstimator lets a matrix-free backend report the per-product work
// estimate the cost accounting attributes to each implicit SpMV.
type opsEstimator interface {
	OpsPerMul() int64
}

// NewOperator wraps any Operator backend in a Chain. An explicit
// *spmat.CSR takes the New path (full stochasticity validation and
// access to the transpose-based solvers); other backends are validated
// through their row sums and support the operator-capable solvers —
// StationaryPower, StationaryJacobi, StationaryGMRES, Step, Residual.
// Structural analyses and the Gauss–Seidel/direct solvers need explicit
// storage and report an error (or return a nil P) on matrix-free chains.
func NewOperator(op Operator) (*Chain, error) {
	if p, ok := op.(*spmat.CSR); ok {
		return New(p)
	}
	r, c := op.Dims()
	if r != c {
		return nil, fmt.Errorf("markov: operator is %dx%d, want square", r, c)
	}
	if r == 0 {
		return nil, fmt.Errorf("markov: empty operator")
	}
	for i, s := range op.RowSums() {
		if math.Abs(s-1) > 1e-9 {
			return nil, fmt.Errorf("markov: operator row %d sums to %v, want 1", i, s)
		}
	}
	ch := &Chain{op: op}
	if est, ok := op.(opsEstimator); ok {
		ch.opsPerMul = int(est.OpsPerMul())
	}
	return ch, nil
}

// vecMul computes y = x·P through whichever backend the chain carries:
// the pool's parallel CSR kernel for explicit chains, the operator's own
// product (accounted as one external SpMV on the pool's counters) for
// matrix-free chains. This is the one seam every solver loop multiplies
// through.
func (c *Chain) vecMul(pool *spmat.Pool, y, x []float64) {
	if c.p != nil {
		pool.VecMul(c.p, y, x)
		return
	}
	start := time.Now()
	c.op.VecMul(y, x)
	pool.CountExternal(1, c.opsPerMul, start)
}
