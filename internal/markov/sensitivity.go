package markov

import (
	"errors"
	"fmt"

	"cdrstoch/internal/spmat"
)

// Stationary-distribution perturbation analysis via the group inverse.
// For an ergodic chain with stationary row vector π, the group inverse of
// A = I − P is A# = (I − P + 1π)⁻¹ − 1π, and a perturbation P → P + E
// moves the stationary vector (to first order) by
//
//	dπ = π·E·A#.
//
// This turns "how much does the BER move if the eye jitter grows a
// little" into a single linear solve instead of a re-build and re-solve —
// and it exposes which transitions the performance is most sensitive to.
// Dense O(n³) computation; intended for models up to a few thousand
// states (use finite differences of full solves beyond that).

// GroupInverse returns A# = (I − P + 1π)⁻¹ − 1π as a dense matrix,
// given the chain's stationary vector π.
func (c *Chain) GroupInverse(pi []float64) (*spmat.Dense, error) {
	n := c.N()
	if len(pi) != n {
		return nil, errors.New("markov: stationary vector length mismatch")
	}
	// Z = (I − P + 1π)⁻¹ (the fundamental matrix of Kemeny & Snell, up to
	// the 1π shift).
	a := spmat.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		cols, vals := c.p.Row(i)
		for k, j := range cols {
			a.Add(i, j, -vals[k])
		}
		for j := 0; j < n; j++ {
			a.Add(i, j, pi[j])
		}
	}
	lu, err := spmat.Factorize(a)
	if err != nil {
		return nil, errors.New("markov: singular fundamental system (non-ergodic chain?)")
	}
	z := spmat.NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := lu.Solve(e)
		for i := 0; i < n; i++ {
			z.Set(i, j, col[i])
		}
	}
	// A# = Z − 1π.
	for i := 0; i < n; i++ {
		row := z.Row(i)
		for j := 0; j < n; j++ {
			row[j] -= pi[j]
		}
	}
	return z, nil
}

// StationaryDerivative returns dπ = π·E·A# for a perturbation direction E
// of the TPM (E's rows must sum to zero for P+εE to remain stochastic;
// this is checked). aSharp must come from GroupInverse on the same chain.
func (c *Chain) StationaryDerivative(pi []float64, e *spmat.CSR, aSharp *spmat.Dense) ([]float64, error) {
	n := c.N()
	er, ec := e.Dims()
	if er != n || ec != n || len(pi) != n {
		return nil, errors.New("markov: perturbation dimension mismatch")
	}
	for i, s := range e.RowSums() {
		if s > 1e-9 || s < -1e-9 {
			return nil, fmt.Errorf("markov: perturbation row %d sums to %g, want 0", i, s)
		}
	}
	// v = π·E (row vector), then dπ = v·A#.
	v := make([]float64, n)
	e.VecMul(v, pi)
	d := make([]float64, n)
	aSharp.VecMul(d, v)
	return d, nil
}

// MeasureSensitivity returns d(πᵀf)/dε for the perturbation P + εE and a
// state function f: the first-order change of any stationary expectation
// (a BER, an occupancy, a correction rate) per unit of perturbation.
func (c *Chain) MeasureSensitivity(pi, f []float64, e *spmat.CSR, aSharp *spmat.Dense) (float64, error) {
	d, err := c.StationaryDerivative(pi, e, aSharp)
	if err != nil {
		return 0, err
	}
	if len(f) != len(d) {
		return 0, errors.New("markov: function length mismatch")
	}
	s := 0.0
	for i := range d {
		s += d[i] * f[i]
	}
	return s, nil
}

// KemenyConstant returns K = Σ_j π_j·m_ij (the expected time to reach a
// π-random target), which is famously independent of the start state i.
// It equals trace(A#) + 1 and measures the chain's overall mixing: for
// the CDR loop it is the mean number of bits to forget the current loop
// state. Dense O(n³); small chains only.
func (c *Chain) KemenyConstant(pi []float64) (float64, error) {
	aSharp, err := c.GroupInverse(pi)
	if err != nil {
		return 0, err
	}
	n := c.N()
	k := 1.0
	for i := 0; i < n; i++ {
		k += aSharp.At(i, i)
	}
	return k, nil
}
