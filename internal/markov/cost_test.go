package markov

import (
	"context"
	"testing"

	"cdrstoch/internal/obs/cost"
)

// TestStationarySolversFeedMeter pins the cost wiring across the three
// fixed-point solvers: sweeps, residuals, and pool kernel counts land on
// the context's meter.
func TestStationarySolversFeedMeter(t *testing.T) {
	c := twoState(t, 0.3, 0.1)
	for name, solve := range map[string]func(Options) (Result, error){
		"power":        c.StationaryPower,
		"jacobi":       c.StationaryJacobi,
		"gauss-seidel": c.StationaryGaussSeidel,
	} {
		meter := cost.NewMeter()
		res, err := solve(Options{Tol: 1e-12, Ctx: cost.ContextWith(context.Background(), meter)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := meter.Finish()
		if rep.Sweeps != int64(res.Iterations) {
			t.Errorf("%s: meter sweeps = %d, want %d", name, rep.Sweeps, res.Iterations)
		}
		if rep.FinalResidual != res.Residual {
			t.Errorf("%s: meter residual = %g, want %g", name, rep.FinalResidual, res.Residual)
		}
		if rep.Pool.SpMVs == 0 && rep.Pool.RowSweeps == 0 {
			t.Errorf("%s: meter pool counters empty: %+v", name, rep.Pool)
		}
	}
}

// TestGMRESFeedsMeterRestarts checks GMRES attributes matvec sweeps and
// per-restart residuals.
func TestGMRESFeedsMeterRestarts(t *testing.T) {
	c := twoState(t, 0.3, 0.1)
	meter := cost.NewMeter()
	res, err := c.StationaryGMRES(GMRESOptions{Tol: 1e-13,
		Ctx: cost.ContextWith(context.Background(), meter)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	rep := meter.Finish()
	if rep.Restarts < 1 {
		t.Errorf("meter restarts = %d, want >= 1", rep.Restarts)
	}
	if rep.Sweeps != int64(res.Iterations) {
		t.Errorf("meter sweeps = %d, want %d matvecs", rep.Sweeps, res.Iterations)
	}
	if rep.FinalResidual != res.Residual {
		t.Errorf("meter residual = %g, want %g", rep.FinalResidual, res.Residual)
	}
	if len(rep.ResidualTail) == 0 {
		t.Error("no per-restart residual tail")
	}
}

// TestSolversUnmeteredStillWork guards the disabled path: a bare context
// (no meter) is not an error and changes no results.
func TestSolversUnmeteredStillWork(t *testing.T) {
	c := twoState(t, 0.3, 0.1)
	plain, err := c.StationaryPower(Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := c.StationaryPower(Options{Tol: 1e-12, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(plain.Pi, ctxed.Pi) != 0 || plain.Iterations != ctxed.Iterations {
		t.Error("bare context changed the solve")
	}
}
