package markov

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/kron"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

func randomStochastic(n int, rng *rand.Rand) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			s += row[j]
		}
		for j := range row {
			tr.Add(i, j, row[j]/s)
		}
	}
	return tr.ToCSR()
}

// testDescriptor builds a two-term mixture of three-factor products — a
// descriptor with genuine multi-term structure — plus its materialized
// CSR for the explicit reference chain.
func testDescriptor(t *testing.T, seed int64) (*kron.Descriptor, *spmat.CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func() []*spmat.CSR {
		return []*spmat.CSR{
			randomStochastic(3, rng),
			randomStochastic(4, rng),
			randomStochastic(2, rng),
		}
	}
	d, err := kron.NewDescriptor([]kron.Term{
		{Coeff: 0.35, Factors: mk()},
		{Coeff: 0.65, Factors: mk()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, d.ToCSR()
}

func TestNewOperatorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Non-stochastic operator (coeff 0.5 mixture sums rows to 0.5).
	bad, err := kron.NewDescriptor([]kron.Term{
		{Coeff: 0.5, Factors: []*spmat.CSR{randomStochastic(3, rng)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOperator(bad); err == nil {
		t.Fatal("non-stochastic operator accepted")
	}
	// The CSR path delegates to New and keeps the explicit backend.
	p := randomStochastic(3, rng)
	ch, err := NewOperator(p)
	if err != nil {
		t.Fatal(err)
	}
	if ch.P() != p {
		t.Fatal("CSR operator did not keep explicit backend")
	}
}

func TestOperatorChainParity(t *testing.T) {
	d, p := testDescriptor(t, 12)
	implicit, err := NewOperator(d)
	if err != nil {
		t.Fatal(err)
	}
	if implicit.P() != nil {
		t.Fatal("matrix-free chain exposes a CSR")
	}
	explicit, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := explicit.StationaryDirect()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, pi []float64) {
		t.Helper()
		for i := range ref {
			if math.Abs(pi[i]-ref[i]) > 1e-12 {
				t.Fatalf("%s: pi[%d] = %g, want %g (diff %g)",
					name, i, pi[i], ref[i], pi[i]-ref[i])
			}
		}
	}
	opt := Options{Tol: 1e-14, Damping: 0.9}
	res, err := implicit.StationaryPower(opt)
	if err != nil {
		t.Fatal(err)
	}
	check("power", res.Pi)
	res, err = implicit.StationaryJacobi(opt)
	if err != nil {
		t.Fatal(err)
	}
	check("jacobi", res.Pi)
	gres, err := implicit.StationaryGMRES(GMRESOptions{Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	check("gmres", gres.Pi)

	// Step and Residual run through the operator too.
	x := implicit.Uniform()
	y1 := implicit.Step(nil, x)
	y2 := explicit.Step(nil, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-13 {
			t.Fatalf("Step[%d] = %g, want %g", i, y1[i], y2[i])
		}
	}
	if r := implicit.Residual(res.Pi); r > 1e-12 {
		t.Fatalf("Residual(pi) = %g", r)
	}
}

func TestOperatorChainExplicitOnlySolvers(t *testing.T) {
	d, _ := testDescriptor(t, 13)
	ch, err := NewOperator(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.StationaryGaussSeidel(Options{}); err == nil {
		t.Fatal("Gauss-Seidel on matrix-free chain succeeded")
	}
	if _, err := ch.StationaryDirect(); err == nil {
		t.Fatal("direct solve on matrix-free chain succeeded")
	}
}

// Matrix-free products are attributed to the pool's SpMV counters via
// CountExternal, so cost accounting covers implicit solves.
func TestOperatorChainCostAccounting(t *testing.T) {
	d, _ := testDescriptor(t, 14)
	ch, err := NewOperator(d)
	if err != nil {
		t.Fatal(err)
	}
	ws := &Workspace{Pool: spmat.NewPool(1)}
	meter := cost.NewMeter()
	ctx := cost.ContextWith(context.Background(), meter)
	res, err := ch.StationaryPower(Options{Tol: 1e-12, Damping: 0.9, Ws: ws, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	stats := ws.Pool.Stats()
	if stats.SpMVs < int64(res.Iterations) {
		t.Fatalf("SpMVs %d < iterations %d", stats.SpMVs, res.Iterations)
	}
	if stats.NNZ < int64(res.Iterations)*d.OpsPerMul() {
		t.Fatalf("NNZ %d below %d products of %d ops", stats.NNZ, res.Iterations, d.OpsPerMul())
	}
	rep := meter.Finish()
	if rep.Pool.SpMVs != stats.SpMVs {
		t.Fatalf("meter SpMVs %d, pool %d", rep.Pool.SpMVs, stats.SpMVs)
	}
}

func TestOperatorChainCancellation(t *testing.T) {
	d, _ := testDescriptor(t, 15)
	ch, err := NewOperator(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ch.StationaryPower(Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("power: err = %v", err)
	}
	if _, err := ch.StationaryJacobi(Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("jacobi: err = %v", err)
	}
	if _, err := ch.StationaryGMRES(GMRESOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("gmres: err = %v", err)
	}
}
