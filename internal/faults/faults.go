// Package faults is the deterministic fault-injection layer of the
// repository: named injection points threaded through the service and
// solver seams (engine solve entry, cache insert/evict, singleflight
// leader handoff, job-queue dequeue, multigrid/GMRES cycle boundaries)
// that can be armed to return errors, panic, or delay — reproducibly,
// from a seed.
//
// The package follows the same zero-cost-when-disabled contract as
// internal/obs: a nil *Injector is valid and disables every point at the
// cost of one branch, and firing an unarmed point on a live injector is
// one map lookup with no allocation. Hot solver loops therefore carry
// their injection points unconditionally; chaos tests and operators arm
// them via Parse/FromEnv (the CDR_FAULTS environment variable).
//
// Registered injection points in this repository:
//
//	engine.solve         serve.Engine.solve entry (after the solve slot
//	                     is acquired)
//	cache.put            serve result-cache insert, before any mutation
//	cache.evict          serve result-cache eviction, before each removal
//	singleflight.leader  the moment a caller becomes the flight leader
//	jobs.dequeue         async job dequeue, before the job runs
//	multigrid.cycle      every multigrid cycle boundary
//	gmres.restart        every GMRES restart boundary
//	markov.sweep         every power/Jacobi/Gauss–Seidel sweep boundary
//
// Spec grammar (CDR_FAULTS or Parse):
//
//	spec  := rule (',' rule)*
//	rule  := point ':' mode (':' key '=' value)*
//	mode  := error | panic | delay
//	keys  := p     fire probability per hit (default 1: always)
//	         after skip the first N hits
//	         n     cap the total number of fires (default unlimited)
//	         ms    delay in milliseconds (delay mode; default 10)
//	         d     delay as a Go duration (delay mode)
//	         perm  1 marks injected errors permanent (not retryable)
//
// Example: one transient solve failure then clean behavior, plus a 50 ms
// stall on every fourth cache insert:
//
//	CDR_FAULTS='engine.solve:error:n=1,cache.put:delay:ms=50:p=0.25'
//
// Probabilistic rules draw from a splitmix64 stream seeded by
// (seed, rule index), so a fixed seed replays the same fire/skip
// decision sequence; CDR_FAULTS_SEED overrides the default seed of 1.
package faults

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cdrstoch/internal/obs"
)

// Mode selects what an armed injection point does when it fires.
type Mode int

const (
	// ModeError makes the point return an *Error.
	ModeError Mode = iota
	// ModePanic makes the point panic with an *Error value.
	ModePanic
	// ModeDelay makes the point sleep for Rule.Delay, then succeed.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrInjected is the sentinel every injected error (and panic value)
// wraps; errors.Is(err, faults.ErrInjected) identifies chaos-made
// failures in tests and logs.
var ErrInjected = errors.New("injected fault")

// Error is the failure an armed error- or panic-mode point produces.
// Permanent feeds the service's retry taxonomy: transient injected
// failures (the default) are retryable the way core.ErrUnconverged is,
// permanent ones are not.
type Error struct {
	Point     string
	Permanent bool
}

func (e *Error) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("%s injected fault at %s", kind, e.Point)
}

func (e *Error) Unwrap() error { return ErrInjected }

// Rule arms one injection point. The zero values of the tuning fields
// mean "always, immediately, forever": Prob outside (0,1) fires on every
// hit, After 0 skips nothing, Count 0 never exhausts.
type Rule struct {
	// Point names the injection point the rule arms.
	Point string
	// Mode selects error, panic, or delay.
	Mode Mode
	// Prob is the per-hit fire probability; values outside (0,1) always
	// fire. Decisions are drawn from the rule's seeded stream.
	Prob float64
	// After skips the first N hits of the point before the rule becomes
	// eligible.
	After int64
	// Count caps the total number of fires; 0 is unlimited. An exhausted
	// rule lets the point succeed — chaos tests use this to assert clean
	// recovery after the fault clears.
	Count int64
	// Delay is the ModeDelay sleep.
	Delay time.Duration
	// Permanent marks injected errors non-retryable.
	Permanent bool
}

// armed is a Rule plus its runtime state: hit/fire counters and the
// private splitmix64 stream behind probabilistic decisions.
type armed struct {
	Rule
	fired *obs.Counter
	hits  atomic.Int64
	shots atomic.Int64
	rng   atomic.Uint64
}

// Injector holds the armed rules, indexed by point name. A nil *Injector
// is valid and disables everything; all methods are safe for concurrent
// use.
type Injector struct {
	rules map[string][]*armed
}

// splitmix64 is the splitmix64 finalizer (Steele, Lea & Flood 2014), the
// same bijective mixer the Monte Carlo sub-seeding uses.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

const golden = 0x9E3779B97F4A7C15

// New arms the given rules. Probabilistic decisions are deterministic in
// (seed, rule order). reg may be nil; each rule otherwise increments a
// faults.fired.<point> counter when it fires. An empty rule set yields a
// nil (disabled) injector.
func New(rules []Rule, seed int64, reg *obs.Registry) (*Injector, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	in := &Injector{rules: make(map[string][]*armed, len(rules))}
	for i, r := range rules {
		if r.Point == "" {
			return nil, fmt.Errorf("faults: rule %d has no point name", i)
		}
		if r.Mode < ModeError || r.Mode > ModeDelay {
			return nil, fmt.Errorf("faults: rule %d (%s): unknown mode %d", i, r.Point, int(r.Mode))
		}
		if r.Mode == ModeDelay && r.Delay <= 0 {
			r.Delay = 10 * time.Millisecond
		}
		a := &armed{Rule: r, fired: reg.Counter("faults.fired." + r.Point)}
		a.rng.Store(splitmix64(uint64(seed) + (uint64(i)+1)*golden))
		in.rules[r.Point] = append(in.rules[r.Point], a)
	}
	return in, nil
}

// Parse arms an injector from a spec string (see the package comment for
// the grammar). An empty spec yields a nil (disabled) injector.
func Parse(spec string, seed int64, reg *obs.Registry) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("faults: rule %q: want point:mode[:key=value...]", raw)
		}
		r := Rule{Point: parts[0]}
		switch parts[1] {
		case "error":
			r.Mode = ModeError
		case "panic":
			r.Mode = ModePanic
		case "delay":
			r.Mode = ModeDelay
		default:
			return nil, fmt.Errorf("faults: rule %q: unknown mode %q (want error, panic or delay)", raw, parts[1])
		}
		for _, kv := range parts[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faults: rule %q: parameter %q is not key=value", raw, kv)
			}
			var err error
			switch k {
			case "p":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "after":
				r.After, err = strconv.ParseInt(v, 10, 64)
			case "n":
				r.Count, err = strconv.ParseInt(v, 10, 64)
			case "ms":
				var msv int64
				msv, err = strconv.ParseInt(v, 10, 64)
				r.Delay = time.Duration(msv) * time.Millisecond
			case "d":
				r.Delay, err = time.ParseDuration(v)
			case "perm":
				r.Permanent = v == "1" || v == "true"
			default:
				return nil, fmt.Errorf("faults: rule %q: unknown parameter %q", raw, k)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: rule %q: parameter %q: %v", raw, kv, err)
			}
		}
		rules = append(rules, r)
	}
	return New(rules, seed, reg)
}

// FromEnv arms an injector from the CDR_FAULTS environment variable,
// seeded by CDR_FAULTS_SEED (default 1). Unset or empty CDR_FAULTS
// yields a nil (disabled) injector and no error.
func FromEnv(reg *obs.Registry) (*Injector, error) {
	spec := os.Getenv("CDR_FAULTS")
	if spec == "" {
		return nil, nil
	}
	seed := int64(1)
	if s := os.Getenv("CDR_FAULTS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: CDR_FAULTS_SEED: %v", err)
		}
		seed = v
	}
	return Parse(spec, seed, reg)
}

// Fire hits the named injection point: it returns an injected *Error,
// panics, or sleeps when an armed rule fires, and returns nil otherwise.
// On a nil injector it costs one branch; on a live injector with no rule
// for the point, one map lookup. Neither path allocates.
func (in *Injector) Fire(point string) error { return in.FireCtx(nil, point) }

// FireCtx is Fire with a context bounding delay-mode sleeps: a canceled
// or expired ctx cuts the sleep short (the point then succeeds — the
// caller's own ctx check at the next boundary reports cancellation). A
// nil ctx sleeps the full delay.
func (in *Injector) FireCtx(ctx context.Context, point string) error {
	if in == nil {
		return nil
	}
	rules := in.rules[point]
	if rules == nil {
		return nil
	}
	for _, r := range rules {
		if err := r.fire(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (r *armed) fire(ctx context.Context) error {
	if r.hits.Add(1) <= r.After {
		return nil
	}
	if r.Prob > 0 && r.Prob < 1 && !r.roll() {
		return nil
	}
	if shot := r.shots.Add(1); r.Count > 0 && shot > r.Count {
		return nil
	}
	r.fired.Inc()
	switch r.Mode {
	case ModeDelay:
		r.sleep(ctx)
		return nil
	case ModePanic:
		panic(&Error{Point: r.Point, Permanent: r.Permanent})
	default:
		return &Error{Point: r.Point, Permanent: r.Permanent}
	}
}

// roll draws the rule's next fire/skip decision from its private
// splitmix64 stream. The stream state advances atomically, so the k-th
// decision is deterministic in (seed, rule index, k) regardless of which
// goroutine takes it.
func (r *armed) roll() bool {
	s := splitmix64(r.rng.Add(golden))
	return float64(s>>11)/(1<<53) < r.Prob
}

func (r *armed) sleep(ctx context.Context) {
	if ctx == nil {
		time.Sleep(r.Delay)
		return
	}
	t := time.NewTimer(r.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Points lists the armed injection points, sorted; nil when disabled.
// cdrserved logs this at startup so chaos runs are self-describing.
func (in *Injector) Points() []string {
	if in == nil {
		return nil
	}
	pts := make([]string, 0, len(in.rules))
	for p := range in.rules {
		pts = append(pts, p)
	}
	sort.Strings(pts)
	return pts
}

// String summarizes the armed rules, sorted by point.
func (in *Injector) String() string {
	if in == nil {
		return "faults: disabled"
	}
	var b strings.Builder
	b.WriteString("faults:")
	for _, p := range in.Points() {
		for _, r := range in.rules[p] {
			fmt.Fprintf(&b, " %s:%s", r.Point, r.Mode)
			if r.Prob > 0 && r.Prob < 1 {
				fmt.Fprintf(&b, ":p=%g", r.Prob)
			}
			if r.After > 0 {
				fmt.Fprintf(&b, ":after=%d", r.After)
			}
			if r.Count > 0 {
				fmt.Fprintf(&b, ":n=%d", r.Count)
			}
			if r.Mode == ModeDelay {
				fmt.Fprintf(&b, ":d=%s", r.Delay)
			}
			if r.Permanent {
				b.WriteString(":perm=1")
			}
		}
	}
	return b.String()
}
