package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cdrstoch/internal/obs"
)

func mustNew(t *testing.T, rules []Rule, seed int64, reg *obs.Registry) *Injector {
	t.Helper()
	in, err := New(rules, seed, reg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.Fire("engine.solve"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if pts := in.Points(); pts != nil {
		t.Fatalf("nil injector has points: %v", pts)
	}
}

func TestErrorMode(t *testing.T) {
	reg := obs.NewRegistry()
	in := mustNew(t, []Rule{{Point: "x", Mode: ModeError, Count: 2}}, 1, reg)
	for i := 0; i < 2; i++ {
		err := in.Fire("x")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: want ErrInjected, got %v", i, err)
		}
		var fe *Error
		if !errors.As(err, &fe) || fe.Point != "x" || fe.Permanent {
			t.Fatalf("fire %d: bad error %#v", i, err)
		}
	}
	// The rule is exhausted: the point succeeds from now on.
	for i := 0; i < 5; i++ {
		if err := in.Fire("x"); err != nil {
			t.Fatalf("exhausted rule still fired: %v", err)
		}
	}
	if got := reg.Counter("faults.fired.x").Value(); got != 2 {
		t.Errorf("fired counter = %d, want 2", got)
	}
	// Unarmed points never fire.
	if err := in.Fire("y"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestAfterSkipsEarlyHits(t *testing.T) {
	in := mustNew(t, []Rule{{Point: "x", Mode: ModeError, After: 3}}, 1, nil)
	for i := 0; i < 3; i++ {
		if err := in.Fire("x"); err != nil {
			t.Fatalf("hit %d fired before After: %v", i, err)
		}
	}
	if err := in.Fire("x"); err == nil {
		t.Fatal("hit 4 did not fire")
	}
}

func TestPanicModeCarriesTypedValue(t *testing.T) {
	in := mustNew(t, []Rule{{Point: "x", Mode: ModePanic, Permanent: true}}, 1, nil)
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Point != "x" || !fe.Permanent {
			t.Fatalf("panic value = %#v, want permanent *Error at x", r)
		}
	}()
	in.Fire("x")
	t.Fatal("point did not panic")
}

func TestDelayModeHonorsContext(t *testing.T) {
	in := mustNew(t, []Rule{{Point: "x", Mode: ModeDelay, Delay: 10 * time.Second}}, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := in.FireCtx(ctx, "x"); err != nil {
		t.Fatalf("delay point errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled delay slept %v", elapsed)
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	decisions := func(seed int64) []bool {
		in := mustNew(t, []Rule{{Point: "x", Mode: ModeError, Prob: 0.5}}, seed, nil)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("x") != nil
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 rule fired %d/%d times", fires, len(a))
	}
	c := decisions(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 42 and 43 produced identical decision sequences")
	}
}

func TestParseGrammar(t *testing.T) {
	in, err := Parse("engine.solve:error:n=1, cache.put:delay:ms=5:p=0.25, jobs.dequeue:panic:after=2:perm=1", 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cache.put", "engine.solve", "jobs.dequeue"}
	got := in.Points()
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
	if err := in.Fire("engine.solve"); err == nil {
		t.Error("n=1 rule did not fire once")
	}
	if err := in.Fire("engine.solve"); err != nil {
		t.Errorf("n=1 rule fired twice: %v", err)
	}

	for _, bad := range []string{
		"pointonly",
		"x:nuke",
		"x:error:pfive",
		"x:error:p=abc",
		"x:error:zap=1",
	} {
		if _, err := Parse(bad, 1, nil); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}

	for _, empty := range []string{"", "  "} {
		in, err := Parse(empty, 1, nil)
		if err != nil || in != nil {
			t.Errorf("Parse(%q) = %v, %v; want disabled, nil", empty, in, err)
		}
	}
}

// TestFireZeroAlloc pins the acceptance criterion that the injection
// layer adds zero allocations on the solve hot path when disabled: both
// the nil injector and a live injector hit on an unarmed point.
func TestFireZeroAlloc(t *testing.T) {
	var nilIn *Injector
	if allocs := testing.AllocsPerRun(1000, func() {
		nilIn.Fire("engine.solve")
	}); allocs != 0 {
		t.Errorf("nil injector: %v allocs per Fire, want 0", allocs)
	}
	in := mustNew(t, []Rule{{Point: "cache.put", Mode: ModeError}}, 1, nil)
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		in.FireCtx(ctx, "engine.solve")
	}); allocs != 0 {
		t.Errorf("unarmed point: %v allocs per Fire, want 0", allocs)
	}
}

// TestFireConcurrent exercises the counters and the rng stream under the
// race detector and checks the Count cap holds across goroutines.
func TestFireConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	in := mustNew(t, []Rule{{Point: "x", Mode: ModeError, Count: 100, Prob: 0.5}}, 9, reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Fire("x")
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("faults.fired.x").Value(); got != 100 {
		t.Errorf("fired %d times, want exactly Count=100", got)
	}
}
