package bitsim

import (
	"context"
	"errors"
	"testing"

	"cdrstoch/internal/core"
)

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Spec: core.DefaultSpec(),
		Bits: 1 << 18, // several progress strides
		Seed: 1,
		Ctx:  ctx,
	}
	if _, err := Run(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunParallelHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Spec: core.DefaultSpec(),
		Bits: 1 << 19,
		Seed: 1,
		Ctx:  ctx,
	}
	if _, err := RunParallel(cfg, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
