package bitsim

import (
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// noisySpec returns a spec with BER large enough (~1e-2..1e-3) that a
// modest Monte Carlo run resolves it.
func noisySpec(t testing.TB) core.Spec {
	t.Helper()
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 8, Shape: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      3,
		EyeJitter:         dist.NewGaussian(0, 0.15),
		Drift:             drift,
		CounterLen:        3,
		Threshold:         0.5,
	}
}

func TestRunValidation(t *testing.T) {
	cfg := Config{Spec: noisySpec(t), Bits: 0}
	if _, err := Run(cfg); err == nil {
		t.Error("zero bits accepted")
	}
	bad := noisySpec(t)
	bad.GridStep = 0
	if _, err := Run(Config{Spec: bad, Bits: 1000}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestMonteCarloMatchesAnalysis(t *testing.T) {
	spec := noisySpec(t)
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	analytic := m.BER(pi)
	if analytic < 1e-4 {
		t.Fatalf("test spec BER too small to validate by MC: %g", analytic)
	}
	res, err := Run(Config{Spec: spec, Bits: 1000000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Allow 1.5× the Wilson half-width: the check is deterministic for a
	// fixed seed; the slack absorbs the one-in-twenty seeds whose 95%
	// interval just misses.
	half := (res.CIHigh - res.CILow) / 2
	if math.Abs(analytic-res.BER) > 1.5*half {
		t.Fatalf("analytic BER %.3e vs MC %.3e ± %.1e", analytic, res.BER, half)
	}
}

func TestMonteCarloPhaseHistogramMatchesStationary(t *testing.T) {
	spec := noisySpec(t)
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	marg := m.PhaseMarginal(pi)
	res, err := Run(Config{Spec: spec, Bits: 400000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Total variation between empirical and analytic phase marginals.
	tv := 0.0
	for i := range marg {
		tv += math.Abs(marg[i] - res.PhaseHistogram[i])
	}
	tv /= 2
	if tv > 0.02 {
		t.Fatalf("phase marginal TV distance %g", tv)
	}
}

func TestMonteCarloSlipsMatchFlux(t *testing.T) {
	spec := noisySpec(t)
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	flux, err := m.SlipStats(pi)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Spec: spec, Bits: 600000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlipEntries < 50 {
		t.Fatalf("too few slips to compare: %d", res.SlipEntries)
	}
	ratio := res.MeanTimeBetweenSlips / flux.MeanTimeBetween
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("MC MTBS %g vs flux %g (ratio %g)",
			res.MeanTimeBetweenSlips, flux.MeanTimeBetween, ratio)
	}
}

func TestReproducibility(t *testing.T) {
	cfg := Config{Spec: noisySpec(t), Bits: 50000, Seed: 5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Errors != b.Errors || a.SlipEntries != b.SlipEntries {
		t.Fatal("same seed produced different counts")
	}
	cfg.Seed = 6
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Errors == a.Errors && c.SlipEntries == a.SlipEntries {
		t.Log("different seed produced identical counts (possible but unlikely)")
	}
}

func TestEyeSamplerLaws(t *testing.T) {
	spec := noisySpec(t)
	// Uniform law.
	spec.EyeJitter = dist.NewUniform(-0.3, 0.3)
	if _, err := Run(Config{Spec: spec, Bits: 20000, Seed: 1}); err != nil {
		t.Errorf("uniform law rejected: %v", err)
	}
	// Sinusoidal law.
	spec.EyeJitter = dist.NewSinusoidal(0.2)
	if _, err := Run(Config{Spec: spec, Bits: 20000, Seed: 1}); err != nil {
		t.Errorf("sinusoidal law rejected: %v", err)
	}
	// PMF law.
	pmf, err := dist.Quantize(dist.NewGaussian(0, 0.15), spec.GridStep, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec.EyeJitter = pmf
	if _, err := Run(Config{Spec: spec, Bits: 20000, Seed: 1}); err != nil {
		t.Errorf("PMF law rejected: %v", err)
	}
	// Unsupported law without an explicit sampler.
	mix, err := dist.NewMixture([]dist.Continuous{dist.NewGaussian(0, 0.1)}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	spec.EyeJitter = mix
	if _, err := Run(Config{Spec: spec, Bits: 20000, Seed: 1}); err == nil {
		t.Error("unsupported law accepted without sampler")
	}
	// ... but accepted with one.
	if _, err := Run(Config{
		Spec: spec, Bits: 20000, Seed: 1,
		SampleEye: func(rng *rand.Rand) float64 { return 0.1 * rng.NormFloat64() },
	}); err != nil {
		t.Errorf("explicit sampler rejected: %v", err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Error("empty trial interval")
	}
	lo, hi = wilson(0, 1000)
	if lo != 0 {
		t.Errorf("zero-error lower bound %g", lo)
	}
	if hi < 0.001 || hi > 0.01 {
		t.Errorf("zero-error upper bound %g", hi)
	}
	lo, hi = wilson(500, 1000)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("interval [%g,%g] must contain 0.5", lo, hi)
	}
	if hi-lo > 0.07 {
		t.Errorf("interval too wide: %g", hi-lo)
	}
}

func TestBitsForTarget(t *testing.T) {
	bits, err := BitsForTarget(1e-12, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if bits < 1e14 || bits > 1e15 {
		t.Fatalf("bits for 1e-12@10%% = %g", bits)
	}
	if _, err := BitsForTarget(0, 0.1); err == nil {
		t.Error("ber=0 accepted")
	}
	if _, err := BitsForTarget(0.5, 0); err == nil {
		t.Error("rel=0 accepted")
	}
}
