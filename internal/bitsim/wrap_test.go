package bitsim

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
)

func TestMonteCarloWrapSlipsMatchAnalysis(t *testing.T) {
	spec := noisySpec(t)
	spec.WrapPhase = true
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	rate, mtbs, err := m.WrapSlipRate(pi)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("wrap slip rate %g", rate)
	}
	res, err := Run(Config{Spec: spec, Bits: 800000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlipEntries < 100 {
		t.Fatalf("too few wrap slips to compare: %d", res.SlipEntries)
	}
	mcRate := float64(res.SlipEntries) / float64(res.Bits)
	if ratio := mcRate / rate; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("MC wrap rate %g vs analytic %g (ratio %g)", mcRate, rate, ratio)
	}
	if math.Abs(res.MeanTimeBetweenSlips-1/mcRate) > 0.01/mcRate {
		t.Fatalf("MC MTBS %g inconsistent with rate %g", res.MeanTimeBetweenSlips, mcRate)
	}
	_ = mtbs
}

func TestMonteCarloWrapBERMatchesAnalysis(t *testing.T) {
	spec := noisySpec(t)
	spec.WrapPhase = true
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	analytic := m.BER(pi)
	res, err := Run(Config{Spec: spec, Bits: 1000000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	half := (res.CIHigh - res.CILow) / 2
	if math.Abs(analytic-res.BER) > 2*half {
		t.Fatalf("wrap analytic BER %.3e vs MC %.3e ± %.1e", analytic, res.BER, half)
	}
}
