// Package bitsim is the "straightforward, simulation based" baseline the
// paper argues against: a direct Monte Carlo simulation of the CDR
// difference equations (2)–(3), one bit period per step. It exists for two
// reasons. First, it cross-validates the Markov-chain analysis wherever
// the BER is large enough to estimate by counting errors. Second, it makes
// the paper's infeasibility argument quantitative: estimating a BER of
// 1e−12 to ±10% needs ~1e14 simulated bits, while the analysis of the same
// model solves in seconds (see the mcvalidate example and the
// BenchmarkMonteCarloBER benchmark).
package bitsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/obs"
)

// Config parameterizes a Monte Carlo run.
type Config struct {
	// Spec is the CDR model specification; the simulator reproduces the
	// exact discretized dynamics of the Markov model (grid phase, PMF
	// n_r), so estimates converge to the analysis results.
	Spec core.Spec
	// Bits is the number of bit periods to simulate after warmup.
	Bits int64
	// WarmupBits discards the acquisition transient. Default Bits/20,
	// at least 1000.
	WarmupBits int64
	// Seed seeds the random stream.
	Seed int64
	// SampleEye overrides the eye-jitter sampler. When nil, a sampler is
	// derived from Spec.EyeJitter (Gaussian and uniform laws are
	// recognized; other laws must supply a sampler).
	SampleEye func(*rand.Rand) float64
	// Trace receives "progress" events (one roughly every 2^17 simulated
	// bit periods, plus one at completion) carrying WorkerID, the bits
	// simulated so far and the total. Nil disables tracing at zero cost.
	Trace obs.Tracer
	// Metrics, when non-nil, accumulates the counters "bitsim.bits",
	// "bitsim.errors" and "bitsim.slips" and sets the gauge
	// "bitsim.bits_per_sec" from the run's wall-clock rate.
	Metrics *obs.Registry
	// WorkerID labels progress events; RunParallel sets it to the chunk
	// index. Leave 0 for serial runs.
	WorkerID int
	// ChunkBits is RunParallel's work-decomposition granularity (bits per
	// chunk; default 262144). The chunk layout — not the worker count —
	// determines every random stream, so merged estimates depend only on
	// (Seed, Bits, ChunkBits). Override only to tune scheduling.
	ChunkBits int64
	// Ctx, when non-nil, is polled on the progress cadence (every 2^17
	// simulated bits): a canceled or expired context aborts the run with a
	// partial-progress error wrapping ctx.Err(). RunParallel additionally
	// checks it between chunks. Nil never cancels.
	Ctx context.Context
}

// Result reports a Monte Carlo run.
type Result struct {
	// Bits and Errors count simulated decisions and bit errors.
	Bits, Errors int64
	// BER is the point estimate Errors/Bits.
	BER float64
	// CILow and CIHigh bound the 95% Wilson confidence interval.
	CILow, CIHigh float64
	// SlipEntries counts entries into the slip set (|Φ| reaching the
	// decision threshold from below).
	SlipEntries int64
	// MeanTimeBetweenSlips is Bits-outside-slip / SlipEntries (+Inf when
	// no slip occurred).
	MeanTimeBetweenSlips float64
	// PhaseHistogram is the empirical phase-error distribution over the
	// grid (normalized).
	PhaseHistogram []float64
}

// String summarizes the estimate.
func (r *Result) String() string {
	return fmt.Sprintf("bits=%d errors=%d BER=%.3e [%.3e, %.3e] slips=%d",
		r.Bits, r.Errors, r.BER, r.CILow, r.CIHigh, r.SlipEntries)
}

// eyeSampler derives a sampler from the spec's eye-jitter law.
func eyeSampler(c dist.Continuous) (func(*rand.Rand) float64, error) {
	switch law := c.(type) {
	case dist.Gaussian:
		return func(rng *rand.Rand) float64 {
			return law.Mu + law.Sigma*rng.NormFloat64()
		}, nil
	case dist.Uniform:
		return func(rng *rand.Rand) float64 {
			return law.A + (law.B-law.A)*rng.Float64()
		}, nil
	case dist.Sinusoidal:
		return func(rng *rand.Rand) float64 {
			return law.Amp * math.Sin(2*math.Pi*rng.Float64())
		}, nil
	case dist.Laplace:
		return func(rng *rand.Rand) float64 {
			u := rng.Float64() - 0.5
			sign := 1.0
			if u < 0 {
				sign = -1
				u = -u
			}
			return law.Mu - sign*law.B*math.Log(1-2*u)
		}, nil
	case *dist.PMF:
		s, err := dist.NewSampler(law)
		if err != nil {
			return nil, err
		}
		return s.Sample, nil
	default:
		return nil, errors.New("bitsim: unsupported eye-jitter law; supply Config.SampleEye")
	}
}

// Run simulates the CDR loop and estimates the BER and slip statistics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Bits <= 0 {
		return nil, errors.New("bitsim: Bits must be positive")
	}
	cfg.Trace = obs.StampFromContext(cfg.Ctx, cfg.Trace)
	warm := cfg.WarmupBits
	if warm <= 0 {
		warm = cfg.Bits / 20
		if warm < 1000 {
			warm = 1000
		}
	}
	m, err := core.Build(cfg.Spec) // reuse the validated grid geometry
	if err != nil {
		return nil, err
	}
	sampleEye := cfg.SampleEye
	if sampleEye == nil {
		sampleEye, err = eyeSampler(cfg.Spec.EyeJitter)
		if err != nil {
			return nil, err
		}
	}
	drift := cfg.Spec.Drift.Trim()
	driftSampler, err := dist.NewSampler(drift)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Loop state, mirroring the Markov model exactly.
	run := 0                         // data run-length state
	counter := m.Spec.CounterLen - 1 // counter index (value 0)
	mi := m.PhaseIndex(0)            // phase index (Φ = 0)
	thr := cfg.Spec.Threshold

	hist := make([]float64, m.M)
	res := &Result{PhaseHistogram: hist}
	wrap := cfg.Spec.WrapPhase
	slipNow := func(mIdx int) bool {
		if wrap {
			return false // wrap models count boundary crossings instead
		}
		phi := m.PhaseValue(mIdx)
		return phi >= thr || phi <= -thr
	}
	inSlip := slipNow(mi)
	var outsideBits int64

	// Progress cadence: cheap power-of-two stride so the check is a mask.
	const progressStride = 1 << 17
	start := time.Now()
	endSpan := obs.StartSpan(cfg.Trace, "bitsim.run")
	defer endSpan()

	total := warm + cfg.Bits
	for k := int64(0); k < total; k++ {
		if (k+1)&(progressStride-1) == 0 {
			if cfg.Trace != nil {
				obs.ProgressEvent(cfg.Trace, "bitsim", cfg.WorkerID, k+1, total)
			}
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, fmt.Errorf("bitsim: run stopped after %d of %d bits: %w", k+1, total, err)
				}
			}
		}
		measuring := k >= warm
		phi := m.PhaseValue(mi)
		nw := sampleEye(rng)

		if measuring {
			res.Bits++
			hist[mi]++
			if phi+nw > thr || phi+nw < -thr {
				res.Errors++
			}
			if !inSlip {
				outsideBits++
			}
		}

		// Data source: forced transition at the run-length cap.
		transition := false
		if cfg.Spec.MaxRunLength > 0 && run == cfg.Spec.MaxRunLength-1 {
			transition = true
		} else if rng.Float64() < cfg.Spec.TransitionDensity {
			transition = true
		}
		corr := 0
		if transition {
			run = 0
			v := phi + nw
			switch {
			case v > cfg.Spec.PDDeadZone:
				counter, corr = counterStep(m, counter, +1)
			case v <= -cfg.Spec.PDDeadZone:
				counter, corr = counterStep(m, counter, -1)
			default:
				// Dead zone: the PD emits NULL; the counter holds.
			}
		} else if cfg.Spec.MaxRunLength > 0 && run < cfg.Spec.MaxRunLength-1 {
			run++
		}

		// Phase update: correction plus sampled n_r — saturating, or
		// wrapping with boundary crossings counted as cycle slips.
		mi += corr + driftSampler.SampleIndex(rng)
		if wrap {
			if mi < 0 || mi >= m.M {
				if measuring {
					res.SlipEntries++
				}
				mi = ((mi % m.M) + m.M) % m.M
			}
		} else {
			if mi < 0 {
				mi = 0
			}
			if mi >= m.M {
				mi = m.M - 1
			}
			nowSlip := slipNow(mi)
			if measuring && nowSlip && !inSlip {
				res.SlipEntries++
			}
			inSlip = nowSlip
		}
	}

	for i := range hist {
		hist[i] /= float64(res.Bits)
	}
	res.BER = float64(res.Errors) / float64(res.Bits)
	res.CILow, res.CIHigh = wilson(res.Errors, res.Bits)
	if res.SlipEntries > 0 {
		res.MeanTimeBetweenSlips = float64(outsideBits) / float64(res.SlipEntries)
	} else {
		res.MeanTimeBetweenSlips = math.Inf(1)
	}
	obs.ProgressEvent(cfg.Trace, "bitsim", cfg.WorkerID, total, total)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("bitsim.bits").Add(res.Bits)
		cfg.Metrics.Counter("bitsim.errors").Add(res.Errors)
		cfg.Metrics.Counter("bitsim.slips").Add(res.SlipEntries)
		if dt := time.Since(start).Seconds(); dt > 0 {
			cfg.Metrics.Gauge("bitsim.bits_per_sec").Set(float64(total) / dt)
		}
	}
	return res, nil
}

// counterStep mirrors core's counter semantics using the model geometry.
func counterStep(m *core.Model, cIdx, dir int) (next, corrSteps int) {
	l := m.Spec.CounterLen
	c := cIdx - (l - 1) + dir
	g := int(m.Spec.CorrectionStep/m.Spec.GridStep + 0.5)
	switch {
	case c >= l:
		return l - 1, -g
	case c <= -l:
		return l - 1, +g
	default:
		return c + (l - 1), 0
	}
}

// wilson returns the 95% Wilson score interval for k successes in n trials.
func wilson(k, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// BitsForTarget returns the number of simulated bits needed to estimate a
// BER of magnitude ber with the given relative precision at ~95%
// confidence — the quantitative form of the paper's infeasibility
// argument (ber=1e−12, rel=0.1 → ~3.8e14 bits).
func BitsForTarget(ber, rel float64) (float64, error) {
	if ber <= 0 || ber >= 1 || rel <= 0 {
		return 0, errors.New("bitsim: need 0 < ber < 1 and rel > 0")
	}
	const z = 1.959963984540054
	return z * z * (1 - ber) / (ber * rel * rel), nil
}
