package bitsim

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
)

func TestRunParallelMatchesAnalysis(t *testing.T) {
	spec := noisySpec(t)
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	analytic := m.BER(pi)
	res, err := RunParallel(Config{Spec: spec, Bits: 1200000, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := (res.CIHigh - res.CILow) / 2
	if math.Abs(analytic-res.BER) > 2*half {
		t.Fatalf("analytic %.3e vs parallel MC %.3e ± %.1e", analytic, res.BER, half)
	}
	if res.Bits != 1200000 {
		t.Fatalf("merged bits = %d", res.Bits)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg := Config{Spec: noisySpec(t), Bits: 200000, Seed: 9}
	a, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Errors != b.Errors || a.SlipEntries != b.SlipEntries {
		t.Fatal("parallel run not deterministic for fixed (seed, workers)")
	}
}

// TestRunParallelWorkerCountInvariant pins the chunked decomposition
// contract: random streams belong to chunks, not workers, so the merged
// counts for one seed are identical whatever the parallelism.
func TestRunParallelWorkerCountInvariant(t *testing.T) {
	// Three chunks at the default granularity, so worker counts 1, 2 and
	// 5 (capped to 3) all schedule the chunks differently.
	cfg := Config{Spec: noisySpec(t), Bits: 700000, Seed: 2}
	ref, err := RunParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5} {
		r, err := RunParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bits != ref.Bits || r.Errors != ref.Errors || r.SlipEntries != ref.SlipEntries {
			t.Fatalf("workers=%d: bits/errors/slips = %d/%d/%d, want %d/%d/%d",
				workers, r.Bits, r.Errors, r.SlipEntries, ref.Bits, ref.Errors, ref.SlipEntries)
		}
	}
}

func TestSubSeedDistinctAndDeterministic(t *testing.T) {
	seen := map[int64]int64{}
	for c := int64(0); c < 10000; c++ {
		s := subSeed(42, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("chunks %d and %d share seed %d", prev, c, s)
		}
		seen[s] = c
		if s != subSeed(42, c) {
			t.Fatal("subSeed not deterministic")
		}
	}
	if subSeed(1, 0) == subSeed(2, 0) {
		t.Error("different top-level seeds collide at chunk 0")
	}
}

func TestRunParallelHistogramNormalized(t *testing.T) {
	res, err := RunParallel(Config{Spec: noisySpec(t), Bits: 300000, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.PhaseHistogram {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("merged histogram mass %g", sum)
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(Config{Spec: noisySpec(t), Bits: 0}, 2); err == nil {
		t.Error("zero bits accepted")
	}
	// More workers than bits collapses gracefully.
	res, err := RunParallel(Config{Spec: noisySpec(t), Bits: 3, Seed: 1, WarmupBits: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 3 {
		t.Fatalf("bits = %d", res.Bits)
	}
}
