package bitsim

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
)

func TestRunParallelMatchesAnalysis(t *testing.T) {
	spec := noisySpec(t)
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	analytic := m.BER(pi)
	res, err := RunParallel(Config{Spec: spec, Bits: 1200000, Seed: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	half := (res.CIHigh - res.CILow) / 2
	if math.Abs(analytic-res.BER) > 2*half {
		t.Fatalf("analytic %.3e vs parallel MC %.3e ± %.1e", analytic, res.BER, half)
	}
	if res.Bits != 1200000 {
		t.Fatalf("merged bits = %d", res.Bits)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg := Config{Spec: noisySpec(t), Bits: 200000, Seed: 9}
	a, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Errors != b.Errors || a.SlipEntries != b.SlipEntries {
		t.Fatal("parallel run not deterministic for fixed (seed, workers)")
	}
}

func TestRunParallelSingleWorkerEqualsSerial(t *testing.T) {
	cfg := Config{Spec: noisySpec(t), Bits: 100000, Seed: 2}
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Errors != par.Errors || serial.SlipEntries != par.SlipEntries {
		t.Fatal("workers=1 diverges from serial Run")
	}
}

func TestRunParallelHistogramNormalized(t *testing.T) {
	res, err := RunParallel(Config{Spec: noisySpec(t), Bits: 300000, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.PhaseHistogram {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("merged histogram mass %g", sum)
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(Config{Spec: noisySpec(t), Bits: 0}, 2); err == nil {
		t.Error("zero bits accepted")
	}
	// More workers than bits collapses gracefully.
	res, err := RunParallel(Config{Spec: noisySpec(t), Bits: 3, Seed: 1, WarmupBits: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 3 {
		t.Fatalf("bits = %d", res.Bits)
	}
}
