package bitsim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// RunParallel splits a Monte Carlo run across workers goroutines (one
// independent random stream each, derived deterministically from the
// seed) and merges the counts. The merged estimate is deterministic for a
// fixed (seed, workers) pair. workers ≤ 0 selects GOMAXPROCS.
//
// Even embarrassingly parallel simulation does not rescue the low-BER
// regime — 1e14 bits at ~1e8 bits/s/core is still days across a large
// cluster — but it makes the feasible regime (cross-validation, slip
// statistics) several times faster.
func RunParallel(cfg Config, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Bits <= 0 {
		return nil, errors.New("bitsim: Bits must be positive")
	}
	if int64(workers) > cfg.Bits {
		workers = int(cfg.Bits)
	}
	if workers == 1 {
		return Run(cfg)
	}

	per := cfg.Bits / int64(workers)
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := cfg
			sub.Bits = per
			if w == workers-1 {
				sub.Bits = cfg.Bits - per*int64(workers-1)
			}
			// Distinct, deterministic stream per worker: splitmix-style
			// decorrelation of the base seed.
			sub.Seed = cfg.Seed + int64(w+1)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)
			results[w], errs[w] = Run(sub)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bitsim: worker %d: %w", w, err)
		}
	}

	merged := &Result{}
	var hist []float64
	var outsideBits float64
	for _, r := range results {
		merged.Bits += r.Bits
		merged.Errors += r.Errors
		merged.SlipEntries += r.SlipEntries
		if hist == nil {
			hist = make([]float64, len(r.PhaseHistogram))
		}
		for i, v := range r.PhaseHistogram {
			hist[i] += v * float64(r.Bits)
		}
		if !math.IsInf(r.MeanTimeBetweenSlips, 1) {
			outsideBits += r.MeanTimeBetweenSlips * float64(r.SlipEntries)
		} else {
			// No slips in this shard: approximate its outside time by its
			// full span (exact when the shard never entered the slip set).
			outsideBits += float64(r.Bits)
		}
	}
	for i := range hist {
		hist[i] /= float64(merged.Bits)
	}
	merged.PhaseHistogram = hist
	merged.BER = float64(merged.Errors) / float64(merged.Bits)
	merged.CILow, merged.CIHigh = wilson(merged.Errors, merged.Bits)
	if merged.SlipEntries > 0 {
		merged.MeanTimeBetweenSlips = outsideBits / float64(merged.SlipEntries)
	} else {
		merged.MeanTimeBetweenSlips = math.Inf(1)
	}
	return merged, nil
}
