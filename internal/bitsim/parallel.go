package bitsim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// defaultChunkBits is the work-decomposition granularity of RunParallel:
// each chunk simulates this many bit periods (the last one takes the
// remainder). Chunks, not workers, own the random streams, so the merged
// estimate is identical for every worker count.
const defaultChunkBits = 1 << 18

// subSeed derives the random seed of chunk c from the top-level seed.
//
// Derivation: the chunk index (offset by one so chunk 0 does not collapse
// to a plain finalization of the seed) is advanced along the splitmix64
// increment sequence, seed + (c+1)·0x9E3779B97F4A7C15, and passed through
// the full splitmix64 finalizer (Steele, Lea & Flood 2014). Distinctness:
// the finalizer is a bijection on 64-bit integers and the pre-images
// seed + (c+1)·golden are pairwise distinct for c < 2^64/golden, so two
// chunks of one run can never share a stream; determinism: the value
// depends only on (seed, c), never on scheduling or worker count.
func subSeed(seed int64, c int64) int64 {
	z := uint64(seed) + (uint64(c)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RunParallel splits a Monte Carlo run into fixed-size chunks (one
// independent random stream each, derived deterministically from the seed
// by subSeed), simulates them on `workers` goroutines, and merges the
// counts in chunk order. Because streams are owned by chunks rather than
// workers, the merged estimate is deterministic in (Seed, Bits,
// ChunkBits) and identical for every worker count. workers ≤ 0 selects
// GOMAXPROCS.
//
// Even embarrassingly parallel simulation does not rescue the low-BER
// regime — 1e14 bits at ~1e8 bits/s/core is still days across a large
// cluster — but it makes the feasible regime (cross-validation, slip
// statistics) several times faster.
func RunParallel(cfg Config, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Bits <= 0 {
		return nil, errors.New("bitsim: Bits must be positive")
	}
	chunk := cfg.ChunkBits
	if chunk <= 0 {
		chunk = defaultChunkBits
	}
	numChunks := (cfg.Bits + chunk - 1) / chunk
	if int64(workers) > numChunks {
		workers = int(numChunks)
	}

	start := time.Now()
	results := make([]*Result, numChunks)
	errs := make([]error, numChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= numChunks {
					return
				}
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					errs[c] = fmt.Errorf("bitsim: chunk not started: %w", cfg.Ctx.Err())
					return
				}
				sub := cfg
				sub.Bits = chunk
				if c == numChunks-1 {
					sub.Bits = cfg.Bits - chunk*(numChunks-1)
				}
				sub.Seed = subSeed(cfg.Seed, c)
				sub.WorkerID = int(c)
				results[c], errs[c] = Run(sub)
			}
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bitsim: chunk %d: %w", c, err)
		}
	}

	merged := &Result{}
	var hist []float64
	var outsideBits float64
	for _, r := range results {
		merged.Bits += r.Bits
		merged.Errors += r.Errors
		merged.SlipEntries += r.SlipEntries
		if hist == nil {
			hist = make([]float64, len(r.PhaseHistogram))
		}
		for i, v := range r.PhaseHistogram {
			hist[i] += v * float64(r.Bits)
		}
		if !math.IsInf(r.MeanTimeBetweenSlips, 1) {
			outsideBits += r.MeanTimeBetweenSlips * float64(r.SlipEntries)
		} else {
			// No slips in this chunk: approximate its outside time by its
			// full span (exact when the chunk never entered the slip set).
			outsideBits += float64(r.Bits)
		}
	}
	for i := range hist {
		hist[i] /= float64(merged.Bits)
	}
	merged.PhaseHistogram = hist
	merged.BER = float64(merged.Errors) / float64(merged.Bits)
	merged.CILow, merged.CIHigh = wilson(merged.Errors, merged.Bits)
	if merged.SlipEntries > 0 {
		merged.MeanTimeBetweenSlips = outsideBits / float64(merged.SlipEntries)
	} else {
		merged.MeanTimeBetweenSlips = math.Inf(1)
	}
	// The per-chunk gauge writes race each other; overwrite with the
	// aggregate wall-clock rate of the whole parallel run.
	if cfg.Metrics != nil {
		if dt := time.Since(start).Seconds(); dt > 0 {
			cfg.Metrics.Gauge("bitsim.bits_per_sec").Set(float64(merged.Bits) / dt)
		}
	}
	return merged, nil
}
