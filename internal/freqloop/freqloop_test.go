package freqloop

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// strongDriftBase returns a first-order spec whose drift (0.01 UI/bit)
// exceeds the proportional path's tracking capacity G/(2L) ≈ 0.0078
// UI/bit, so the first-order loop lags toward the decision threshold —
// the regime the frequency path exists for.
func strongDriftBase(t testing.TB) core.Spec {
	t.Helper()
	h := 1.0 / 32
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0.01, Shape: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.06),
		Drift:             drift,
		CounterLen:        4,
		Threshold:         0.5,
	}
}

func TestValidate(t *testing.T) {
	base := strongDriftBase(t)
	good := Spec{Base: base, FreqLen: 4, FreqStep: base.GridStep}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []Spec{
		{Base: base, FreqLen: -1},
		{Base: base, FreqLen: 2, FreqStep: 0},
		{Base: base, FreqLen: 2, FreqStep: 0.7 * base.GridStep}, // not a multiple
		{Base: base, FreqLen: 1, FreqStep: base.GridStep / 1e3}, // cannot reach drift -- invalid multiple too
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	bad := base
	bad.GridStep = 0
	if err := (Spec{Base: bad}).Validate(); err == nil {
		t.Error("invalid base accepted")
	}
}

// TestFreqLenZeroEqualsFirstOrder: with the frequency path disabled, the
// extended model's TPM is entry-for-entry the first-order chain.
func TestFreqLenZeroEqualsFirstOrder(t *testing.T) {
	base := strongDriftBase(t)
	first, err := core.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Build(Spec{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if second.NumStates() != first.NumStates() {
		t.Fatalf("state counts differ: %d vs %d", second.NumStates(), first.NumStates())
	}
	for i := 0; i < first.NumStates(); i++ {
		c1, v1 := first.P.Row(i)
		c2, v2 := second.P.Row(i)
		if len(c1) != len(c2) {
			t.Fatalf("row %d nnz %d vs %d", i, len(c1), len(c2))
		}
		for k := range c1 {
			if c1[k] != c2[k] || math.Abs(v1[k]-v2[k]) > 1e-15 {
				t.Fatalf("row %d entry %d differs", i, k)
			}
		}
	}
}

func TestSecondOrderErgodicAndSolvable(t *testing.T) {
	spec := Spec{Base: strongDriftBase(t), FreqLen: 4, FreqStep: strongDriftBase(t).GridStep}
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsErgodic() {
		t.Fatal("second-order model not ergodic")
	}
	pi, res, err := m.Solve(1e-12, 200000)
	if err != nil {
		t.Fatalf("%v (%v)", err, res)
	}
	ref, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(pi[i]-ref[i]) > 1e-8 {
			t.Fatalf("multigrid vs GTH at %d: %g vs %g", i, pi[i], ref[i])
		}
	}
}

// TestFrequencyPathCancelsDrift: the stationary register mean must supply
// the drift compensation, and the phase lag (stationary mean phase) must
// shrink dramatically relative to the first-order loop.
func TestFrequencyPathCancelsDrift(t *testing.T) {
	base := strongDriftBase(t)
	spec := Spec{Base: base, FreqLen: 6, FreqStep: base.GridStep / 2}
	if err := spec.Validate(); err == nil {
		// FreqStep h/2 is not a grid multiple: expected invalid; use h.
		t.Fatal("expected invalid half-step spec")
	}
	spec.FreqStep = base.GridStep
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	comp := m.MeanFreqCorrection(pi)
	driftMean := base.Drift.Mean()
	// The integral path carries most of the drift compensation.
	if comp > -0.5*driftMean {
		t.Fatalf("integral path supplies %g of drift %g", -comp, driftMean)
	}

	meanPhase := func(marg []float64, phase func(int) float64) float64 {
		mu := 0.0
		for i, p := range marg {
			mu += p * phase(i)
		}
		return mu
	}
	first, err := core.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	piF, err := first.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	lagFirst := meanPhase(first.PhaseMarginal(piF), first.PhaseValue)
	lagSecond := meanPhase(m.PhaseMarginal(pi), m.PhaseValue)
	if math.Abs(lagSecond) > 0.5*math.Abs(lagFirst) {
		t.Fatalf("second-order lag %g not below half the first-order lag %g",
			lagSecond, lagFirst)
	}
}

// TestSecondOrderImprovesBERUnderStrongDrift: with the drift beyond the
// proportional path's capacity, a second-order loop with *modest*
// register authority (F = 1, the per-bit correction one grid step) must
// beat the first-order loop. Larger F is measurably worse — the bang-bang
// integral path hunts with amplitude proportional to its authority — so
// the register range is itself a design parameter this analysis can
// optimize (see TestSecondOrderGainTradeOff).
func TestSecondOrderImprovesBERUnderStrongDrift(t *testing.T) {
	base := strongDriftBase(t)
	first, err := core.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	piF, err := first.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	berFirst := first.BER(piF)

	spec := Spec{Base: base, FreqLen: 1, FreqStep: base.GridStep}
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	piS, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	berSecond := m.BER(piS)
	if berSecond >= berFirst/2 {
		t.Fatalf("second order did not clearly improve BER: %g vs %g", berSecond, berFirst)
	}
}

// TestSecondOrderGainTradeOff: excessive register authority hunts — the
// phase spread (and BER) grows with F once the drift is compensated.
func TestSecondOrderGainTradeOff(t *testing.T) {
	base := strongDriftBase(t)
	ber := func(f int) float64 {
		m, err := Build(Spec{Base: base, FreqLen: f, FreqStep: base.GridStep})
		if err != nil {
			t.Fatal(err)
		}
		pi, _, err := m.Solve(1e-11, 500000)
		if err != nil {
			t.Fatal(err)
		}
		return m.BER(pi)
	}
	if b1, b3 := ber(1), ber(3); b3 <= b1 {
		t.Fatalf("hunting penalty missing: BER(F=3)=%g <= BER(F=1)=%g", b3, b1)
	}
}

func TestFreqMarginalSums(t *testing.T) {
	base := strongDriftBase(t)
	m, err := Build(Spec{Base: base, FreqLen: 3, FreqStep: base.GridStep})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for _, marg := range [][]float64{m.PhaseMarginal(pi), m.FreqMarginal(pi)} {
		sum := 0.0
		for _, v := range marg {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("marginal sums to %g", sum)
		}
	}
	if m.FreqValue(0) != -3 || m.FreqValue(m.Fn-1) != 3 {
		t.Error("FreqValue endpoints wrong")
	}
}
