// Package freqloop extends the CDR model with a second-order
// (phase-and-frequency) digital loop — the standard remedy when the
// receiver faces a frequency offset too large for the first-order
// phase-selection loop to track without a static lag. The paper's model
// is first order (its nonzero-mean n_r *is* the untracked offset); this
// extension adds the integral path a dual-loop digital CDR would carry:
//
//	f_{k+1} = clamp(f_k + overflow_k, −F, +F)
//	Φ_{k+1} = Φ_k − overflow_k·G − f_k·q + n_r(k)
//
// where overflow_k ∈ {−1, 0, +1} is the loop-filter counter's overflow
// event (exactly as in internal/core), q the frequency-register weight in
// UI/bit, and F the register range. At equilibrium f ≈ E[n_r]/q and the
// proportional path no longer needs a sustained correction rate: the
// static phase lag that produces the paper's Figure-5 long-counter
// penalty disappears.
//
// With FreqLen = 0 the model is bit-for-bit the first-order chain of
// internal/core (verified by test), so every comparison against the base
// model is exact.
package freqloop

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/spmat"
)

// Spec extends the first-order CDR specification with the frequency path.
type Spec struct {
	// Base is the underlying first-order model specification.
	Base core.Spec
	// FreqLen is the register range F: the frequency estimate walks on
	// the integers [−F, +F]. Zero disables the frequency path.
	FreqLen int
	// FreqStep is the register weight q in UI/bit — the per-bit phase
	// correction applied per register count. Must be a positive multiple
	// of Base.GridStep when FreqLen > 0.
	FreqStep float64
}

// Validate checks the extended specification.
func (s Spec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.FreqLen < 0 {
		return errors.New("freqloop: negative FreqLen")
	}
	if s.FreqLen > 0 {
		if s.FreqStep <= 0 {
			return errors.New("freqloop: FreqStep must be positive")
		}
		ratio := s.FreqStep / s.Base.GridStep
		if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
			return fmt.Errorf("freqloop: FreqStep %g is not a multiple of GridStep %g",
				s.FreqStep, s.Base.GridStep)
		}
		// The register must be able to cancel the drift mean.
		if need := math.Abs(s.Base.Drift.Mean()) / s.FreqStep; float64(s.FreqLen) < need {
			return fmt.Errorf("freqloop: register range %d cannot reach the drift compensation ~%.1f counts",
				s.FreqLen, need)
		}
	}
	return nil
}

// Model is the assembled second-order chain. The product space is indexed
// (((d·C)+c)·Fn + f)·M + m with the phase fastest, Fn = 2·FreqLen+1 — but
// unlike the first-order model, the product is not fully reachable: a
// large register value drags the phase so hard that (high |f|,
// opposing-phase) states can never be re-entered. Build therefore
// restricts the chain to the closed class reachable from the locked
// state; States maps restricted indices back to product indices.
type Model struct {
	Spec Spec
	// D, C, Fn, M are the data, counter, frequency and phase state counts
	// of the underlying product space.
	D, C, Fn, M int
	// P is the transition probability matrix over the reachable class.
	P *spmat.CSR
	// States maps reachable-state indices to product-space indices.
	States []int
	// FormTime is the assembly wall-clock time.
	FormTime time.Duration

	mid       int
	corrSteps int
	freqSteps int   // FreqStep in grid steps
	pos       []int // product index -> reachable index (or −1)
}

// Build assembles the second-order transition matrix.
func Build(spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	base := spec.Base
	m := &Model{
		Spec:      spec,
		D:         numData(base),
		C:         2*base.CounterLen - 1,
		Fn:        2*spec.FreqLen + 1,
		corrSteps: int(base.CorrectionStep/base.GridStep + 0.5),
	}
	if spec.FreqLen > 0 {
		m.freqSteps = int(spec.FreqStep/base.GridStep + 0.5)
	}
	if base.WrapPhase {
		m.M = int(math.Round(1 / base.GridStep))
		m.mid = m.M / 2
	} else {
		half := int(math.Round(base.PhaseMax / base.GridStep))
		m.M = 2*half + 1
		m.mid = half
	}

	drift := base.Drift.Trim()
	n := m.D * m.C * m.Fn * m.M
	tr := spmat.NewTriplet(n, n)
	tr.Reserve(n * (drift.Len() + 3))

	for d := 0; d < m.D; d++ {
		pt := transProb(base, d)
		dNoTrans := nextDataState(base, d, false)
		for c := 0; c < m.C; c++ {
			cLead, ovLead := core.CounterAdvance(base.CounterLen, c, +1)
			cLag, ovLag := core.CounterAdvance(base.CounterLen, c, -1)
			for f := 0; f < m.Fn; f++ {
				fVal := f - spec.FreqLen
				fLead := clampInt(fVal+ovLead, -spec.FreqLen, spec.FreqLen) + spec.FreqLen
				fLag := clampInt(fVal+ovLag, -spec.FreqLen, spec.FreqLen) + spec.FreqLen
				// Per-bit integral-path correction in grid steps.
				fCorr := -fVal * m.freqSteps
				for mi := 0; mi < m.M; mi++ {
					phi := m.PhaseValue(mi)
					from := m.productIndex(d, c, f, mi)
					pLead, pLag, pNull := core.PDProbs(base, phi)

					if w := 1 - pt; w > 0 {
						m.addBranch(tr, from, dNoTrans, c, f, mi, fCorr, w, drift)
					}
					if pt > 0 {
						if w := pt * pLead; w > 0 {
							m.addBranch(tr, from, 0, cLead, fLead, mi, fCorr-ovLead*m.corrSteps, w, drift)
						}
						if w := pt * pLag; w > 0 {
							m.addBranch(tr, from, 0, cLag, fLag, mi, fCorr-ovLag*m.corrSteps, w, drift)
						}
						if w := pt * pNull; w > 0 {
							m.addBranch(tr, from, 0, c, f, mi, fCorr, w, drift)
						}
					}
				}
			}
		}
	}
	full := tr.ToCSR()
	if err := full.CheckStochastic(1e-9); err != nil {
		return nil, fmt.Errorf("freqloop: assembled TPM invalid: %w", err)
	}

	// Restrict to the closed class reachable from the locked state
	// (run 0, counter 0, register 0, Φ = 0). The reachable set is closed
	// by construction, so the restriction stays exactly stochastic.
	locked := m.productIndex(0, base.CounterLen-1, spec.FreqLen, m.mid)
	reach := bfsReachable(full, locked)
	m.States = reach
	m.pos = make([]int, n)
	for i := range m.pos {
		m.pos[i] = -1
	}
	for k, s := range reach {
		m.pos[s] = k
	}
	sub := spmat.NewTriplet(len(reach), len(reach))
	for k, s := range reach {
		cols, vals := full.Row(s)
		for kk, j := range cols {
			pj := m.pos[j]
			if pj < 0 {
				return nil, errors.New("freqloop: reachable set not closed (internal error)")
			}
			sub.Add(k, pj, vals[kk])
		}
	}
	m.P = sub.ToCSR()
	if err := m.P.CheckStochastic(1e-9); err != nil {
		return nil, fmt.Errorf("freqloop: restricted TPM invalid: %w", err)
	}
	m.FormTime = time.Since(start)
	return m, nil
}

// bfsReachable returns the sorted set of states reachable from start via
// positive-probability transitions.
func bfsReachable(p *spmat.CSR, start int) []int {
	n, _ := p.Dims()
	seen := make([]bool, n)
	seen[start] = true
	queue := []int{start}
	var out []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		cols, vals := p.Row(v)
		for k, w := range cols {
			if vals[k] > 0 && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	// BFS emits in discovery order; sort for a stable layout.
	sortInts(out)
	return out
}

func sortInts(a []int) {
	// Insertion-free: use the standard library.
	// (kept as a helper for clarity at call sites)
	sort.Ints(a)
}

func (m *Model) addBranch(tr *spmat.Triplet, from, d, c, f, mi, shift int, w float64, drift *dist.PMF) {
	base := mi + shift
	wrap := m.Spec.Base.WrapPhase
	drift.Support(func(_ float64, k int, pk float64) {
		mj := base + k
		if wrap {
			mj = ((mj % m.M) + m.M) % m.M
		} else {
			if mj < 0 {
				mj = 0
			}
			if mj >= m.M {
				mj = m.M - 1
			}
		}
		tr.Add(from, m.productIndex(d, c, f, mj), w*pk)
	})
}

// productIndex maps (data, counter, freq, phase) to the full product
// index used during assembly.
func (m *Model) productIndex(d, c, f, mi int) int {
	return ((d*m.C+c)*m.Fn+f)*m.M + mi
}

// NumStates returns the size of the reachable (restricted) state space.
func (m *Model) NumStates() int { return len(m.States) }

// ProductStates returns the size of the unrestricted product space.
func (m *Model) ProductStates() int { return m.D * m.C * m.Fn * m.M }

// StateIndex maps (data, counter, freq, phase) coordinates to the
// restricted index, or −1 when the state is unreachable.
func (m *Model) StateIndex(d, c, f, mi int) int {
	return m.pos[m.productIndex(d, c, f, mi)]
}

// PhaseValue returns the phase of grid index mi in UI.
func (m *Model) PhaseValue(mi int) float64 {
	return float64(mi-m.mid) * m.Spec.Base.GridStep
}

// FreqValue returns the signed register value of frequency index f.
func (m *Model) FreqValue(f int) int { return f - m.Spec.FreqLen }

// PhaseMarginal returns the stationary marginal over the phase grid.
func (m *Model) PhaseMarginal(pi []float64) []float64 {
	out := make([]float64, m.M)
	for k, p := range pi {
		out[m.States[k]%m.M] += p
	}
	return out
}

// FreqMarginal returns the stationary marginal over the frequency
// register values (length Fn, index 0 = −FreqLen).
func (m *Model) FreqMarginal(pi []float64) []float64 {
	out := make([]float64, m.Fn)
	for k, p := range pi {
		out[(m.States[k]/m.M)%m.Fn] += p
	}
	return out
}

// MeanFreqCorrection returns the stationary mean of the integral-path
// correction −E[f]·q in UI/bit; at lock it cancels the drift mean.
func (m *Model) MeanFreqCorrection(pi []float64) float64 {
	marg := m.FreqMarginal(pi)
	mean := 0.0
	for f, p := range marg {
		mean += p * float64(m.FreqValue(f))
	}
	return -mean * m.Spec.FreqStep
}

// BER integrates the decision-error tails under the stationary marginal.
func (m *Model) BER(pi []float64) float64 {
	marg := m.PhaseMarginal(pi)
	t := m.Spec.Base.Threshold
	ber := 0.0
	for mi, p := range marg {
		if p == 0 {
			continue
		}
		phi := m.PhaseValue(mi)
		ber += p * (dist.TailBelow(m.Spec.Base.EyeJitter, -t-phi) +
			dist.TailAbove(m.Spec.Base.EyeJitter, t-phi))
	}
	return ber
}

// Solve computes the stationary distribution with Gauss–Seidel sweeps
// (the restricted state space breaks the regular segment layout the
// multigrid coarsening relies on; GS handles these model sizes directly).
func (m *Model) Solve(tol float64, maxIter int) ([]float64, markov.Result, error) {
	ch, err := markov.New(m.P)
	if err != nil {
		return nil, markov.Result{}, err
	}
	res, err := ch.StationaryGaussSeidel(markov.Options{Tol: tol, MaxIter: maxIter})
	if err != nil {
		return nil, markov.Result{}, err
	}
	if !res.Converged {
		return nil, res, fmt.Errorf("freqloop: Gauss-Seidel %w: %v", core.ErrUnconverged, res)
	}
	return res.Pi, res, nil
}

// SolveDirect computes the stationary distribution with dense GTH.
func (m *Model) SolveDirect() ([]float64, error) {
	ch, err := markov.New(m.P)
	if err != nil {
		return nil, err
	}
	return ch.StationaryDirect()
}

// Chain wraps the TPM for structural queries.
func (m *Model) Chain() (*markov.Chain, error) { return markov.New(m.P) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// The data-source helpers mirror core's unexported logic exactly.

func numData(s core.Spec) int {
	if s.MaxRunLength <= 0 {
		return 1
	}
	return s.MaxRunLength
}

func transProb(s core.Spec, r int) float64 {
	if s.MaxRunLength > 0 && r == s.MaxRunLength-1 {
		return 1
	}
	return s.TransitionDensity
}

func nextDataState(s core.Spec, r int, transition bool) int {
	if transition {
		return 0
	}
	if s.MaxRunLength > 0 && r < s.MaxRunLength-1 {
		return r + 1
	}
	return 0
}
