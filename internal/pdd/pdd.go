// Package pdd implements probability decision diagrams: reduced ordered
// algebraic decision diagrams (ADDs) over the binary encoding of the
// state index, representing probability vectors with node sharing. The
// paper cites such structured representations (Bozga & Maler, CAV'99) as
// the route to storing distributions "over structured domains" when even
// the stationary vector outgrows explicit storage; the CDR stationary
// vectors are highly structured (smooth in the phase coordinate,
// near-product across components), which decision diagrams exploit.
//
// The implementation is a textbook reduced ADD: terminals hold float64
// values (optionally quantized to a tolerance to enable sharing between
// nearly equal leaves), internal nodes branch on one bit of the state
// index (most significant bit first), and a unique table guarantees
// canonicity, so structurally equal subtrees are stored once.
package pdd

import (
	"errors"
	"fmt"
	"math"
)

// Diagram is a canonical reduced ADD for a vector of length 2^bits
// (shorter vectors are zero-padded; Len records the true length).
type Diagram struct {
	// Len is the represented vector length.
	Len int

	bits  int
	root  int
	nodes []node // nodes[0..] internal; terminals are encoded separately
	terms []float64

	// builder state
	unique map[nodeKey]int
	tset   map[float64]int
	tol    float64
}

// node is an internal decision node: branch on bit level (MSB = level 0).
type node struct {
	level  int
	lo, hi int // references: >=0 internal node index, <0 ~terminal index
}

type nodeKey struct {
	level  int
	lo, hi int
}

// ref encoding: internal nodes are non-negative indices; terminal t is
// encoded as -(t+1).
func termRef(t int) int { return -(t + 1) }
func isTerm(r int) bool { return r < 0 }
func termIdx(r int) int { return -r - 1 }

// FromVector builds a reduced diagram for v. Terminal values are
// quantized to multiples of tol before sharing (tol = 0 shares only
// exactly equal values). The input is not retained.
func FromVector(v []float64, tol float64) (*Diagram, error) {
	if len(v) == 0 {
		return nil, errors.New("pdd: empty vector")
	}
	if tol < 0 {
		return nil, errors.New("pdd: negative tolerance")
	}
	bits := 0
	for (1 << bits) < len(v) {
		bits++
	}
	d := &Diagram{
		Len:    len(v),
		bits:   bits,
		unique: map[nodeKey]int{},
		tset:   map[float64]int{},
		tol:    tol,
	}
	d.root = d.build(v, 0, 0)
	return d, nil
}

// terminal interns a (quantized) terminal value and returns its ref.
func (d *Diagram) terminal(v float64) int {
	if d.tol > 0 {
		v = math.Round(v/d.tol) * d.tol
	}
	if v == 0 {
		v = 0 // normalize -0
	}
	if t, ok := d.tset[v]; ok {
		return termRef(t)
	}
	t := len(d.terms)
	d.terms = append(d.terms, v)
	d.tset[v] = t
	return termRef(t)
}

// mk interns an internal node, applying the ADD reduction rule
// (lo == hi collapses to the child).
func (d *Diagram) mk(level, lo, hi int) int {
	if lo == hi {
		return lo
	}
	key := nodeKey{level: level, lo: lo, hi: hi}
	if n, ok := d.unique[key]; ok {
		return n
	}
	n := len(d.nodes)
	d.nodes = append(d.nodes, node{level: level, lo: lo, hi: hi})
	d.unique[key] = n
	return n
}

// build recursively constructs the subdiagram for indices with the given
// bit prefix. level counts from the MSB; base is the first index of the
// block.
func (d *Diagram) build(v []float64, level, base int) int {
	if level == d.bits {
		if base < len(v) {
			return d.terminal(v[base])
		}
		return d.terminal(0)
	}
	half := 1 << (d.bits - level - 1)
	lo := d.build(v, level+1, base)
	hi := d.build(v, level+1, base+half)
	return d.mk(level, lo, hi)
}

// NumNodes returns the count of internal nodes plus distinct terminals —
// the diagram's storage size, to compare against Len explicit floats.
func (d *Diagram) NumNodes() int { return len(d.nodes) + len(d.terms) }

// NumTerminals returns the number of distinct leaf values.
func (d *Diagram) NumTerminals() int { return len(d.terms) }

// CompressionRatio returns Len / NumNodes; above 1 the diagram is smaller
// than the explicit vector.
func (d *Diagram) CompressionRatio() float64 {
	return float64(d.Len) / float64(d.NumNodes())
}

// At evaluates the vector entry at index i by walking the diagram.
func (d *Diagram) At(i int) (float64, error) {
	if i < 0 || i >= d.Len {
		return 0, fmt.Errorf("pdd: index %d out of range %d", i, d.Len)
	}
	r := d.root
	for !isTerm(r) {
		n := d.nodes[r]
		// Skipped levels mean both halves are equal: no bit test needed
		// for them; test only the node's own bit.
		if i&(1<<(d.bits-n.level-1)) != 0 {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return d.terms[termIdx(r)], nil
}

// ToVector expands the diagram back to an explicit vector.
func (d *Diagram) ToVector() []float64 {
	out := make([]float64, d.Len)
	d.fill(out, d.root, 0, 0)
	return out
}

// fill writes the subdiagram's block into out.
func (d *Diagram) fill(out []float64, r, level, base int) {
	if base >= len(out) {
		return
	}
	if isTerm(r) {
		v := d.terms[termIdx(r)]
		end := base + (1 << (d.bits - level))
		if end > len(out) {
			end = len(out)
		}
		for i := base; i < end; i++ {
			out[i] = v
		}
		return
	}
	n := d.nodes[r]
	// Expand skipped levels implicitly: the node's level may be deeper
	// than `level`; everything between is a "both halves equal" region,
	// which fill handles by recursing with the same ref on both halves.
	if n.level > level {
		half := 1 << (d.bits - level - 1)
		d.fill(out, r, level+1, base)
		d.fill(out, r, level+1, base+half)
		return
	}
	half := 1 << (d.bits - n.level - 1)
	d.fill(out, n.lo, n.level+1, base)
	d.fill(out, n.hi, n.level+1, base+half)
}

// Sum returns the total mass of the represented (padded) vector, computed
// in one bottom-up pass over the shared structure: the cost is
// proportional to the diagram size, not the vector length. Zero padding
// contributes nothing because quantization maps 0 to 0.
func (d *Diagram) Sum() float64 {
	// memo[r] holds the mass of internal node r evaluated at its own
	// level; reaching it from a shallower level multiplies by the number
	// of skipped-level copies.
	memo := map[int]float64{}
	var rec func(r, level int) float64
	rec = func(r, level int) float64 {
		if isTerm(r) {
			width := float64(int64(1) << (d.bits - level))
			return d.terms[termIdx(r)] * width
		}
		n := d.nodes[r]
		factor := float64(int64(1) << (n.level - level))
		if v, ok := memo[r]; ok {
			return factor * v
		}
		v := rec(n.lo, n.level+1) + rec(n.hi, n.level+1)
		memo[r] = v
		return factor * v
	}
	return rec(d.root, 0)
}

// MaxAbsError returns the largest |d(i) − v(i)| against a reference
// vector, bounding the quantization loss.
func (d *Diagram) MaxAbsError(v []float64) (float64, error) {
	if len(v) != d.Len {
		return 0, errors.New("pdd: length mismatch")
	}
	got := d.ToVector()
	maxErr := 0.0
	for i := range v {
		if e := math.Abs(got[i] - v[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}
