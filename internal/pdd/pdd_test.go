package pdd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 8, 17, 100} {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()
		}
		d, err := FromVector(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		back := d.ToVector()
		if len(back) != n {
			t.Fatalf("n=%d: round trip length %d", n, len(back))
		}
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("n=%d: entry %d: %g vs %g", n, i, back[i], v[i])
			}
			at, err := d.At(i)
			if err != nil || at != v[i] {
				t.Fatalf("n=%d: At(%d) = %g (err %v), want %g", n, i, at, err, v[i])
			}
		}
	}
}

func TestUniformVectorCollapses(t *testing.T) {
	v := make([]float64, 1024)
	for i := range v {
		v[i] = 0.25
	}
	d, err := FromVector(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A constant function reduces to a single terminal.
	if d.NumNodes() != 1 {
		t.Fatalf("uniform vector uses %d nodes", d.NumNodes())
	}
	if d.CompressionRatio() < 1000 {
		t.Fatalf("compression ratio %g", d.CompressionRatio())
	}
	if got, _ := d.At(513); got != 0.25 {
		t.Fatalf("At = %g", got)
	}
}

func TestPeriodicVectorShares(t *testing.T) {
	// A vector with period 4 over 256 entries: massive subtree sharing.
	v := make([]float64, 256)
	pat := []float64{0.1, 0.2, 0.3, 0.4}
	for i := range v {
		v[i] = pat[i%4]
	}
	d, err := FromVector(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() > 16 {
		t.Fatalf("periodic vector uses %d nodes", d.NumNodes())
	}
	if err := checkEqual(d, v); err != nil {
		t.Fatal(err)
	}
}

func checkEqual(d *Diagram, v []float64) error {
	back := d.ToVector()
	for i := range v {
		if back[i] != v[i] {
			return fmt.Errorf("mismatch at %d: %g vs %g", i, back[i], v[i])
		}
	}
	return nil
}

func TestQuantizationSharing(t *testing.T) {
	// Nearly-equal values share terminals under a tolerance.
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 512)
	for i := range v {
		v[i] = 0.5 + 1e-9*rng.Float64()
	}
	exact, err := FromVector(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	quant, err := FromVector(v, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if quant.NumNodes() != 1 {
		t.Fatalf("quantized diagram uses %d nodes", quant.NumNodes())
	}
	if exact.NumNodes() < 100 {
		t.Fatalf("exact diagram unexpectedly small: %d", exact.NumNodes())
	}
	maxErr, err := quant.MaxAbsError(v)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 1e-6 {
		t.Fatalf("quantization error %g exceeds tolerance", maxErr)
	}
}

func TestSumMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{5, 64, 200, 1000} {
		v := make([]float64, n)
		want := 0.0
		for i := range v {
			v[i] = rng.Float64()
			want += v[i]
		}
		d, err := FromVector(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Sum(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: Sum = %g, want %g", n, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := FromVector(nil, 0); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := FromVector([]float64{1}, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	d, err := FromVector([]float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.At(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := d.At(3); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := d.MaxAbsError([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: round trip is exact at tol 0 and within tol otherwise, and
// Sum matches the explicit sum.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, tolPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		v := make([]float64, n)
		sum := 0.0
		for i := range v {
			v[i] = rng.NormFloat64()
			sum += v[i]
		}
		tol := 0.0
		if tolPick%2 == 1 {
			tol = 1e-4
		}
		d, err := FromVector(v, tol)
		if err != nil {
			return false
		}
		maxErr, err := d.MaxAbsError(v)
		if err != nil {
			return false
		}
		if tol == 0 && maxErr != 0 {
			return false
		}
		if maxErr > tol/2+1e-15 {
			return false
		}
		return math.Abs(d.Sum()-sum) <= float64(n)*(tol/2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
