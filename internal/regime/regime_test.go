package regime

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/multigrid"
)

// loopBase returns the shared loop parameters (noise supplied per regime).
func loopBase(t testing.TB) core.Spec {
	t.Helper()
	h := 1.0 / 16
	return core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		CounterLen:        3,
		Threshold:         0.5,
	}
}

func mkDrift(t testing.TB, h, mean float64) *dist.PMF {
	t.Helper()
	d, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: mean, Shape: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// burstSpec returns a quiet regime (σ=0.05) interrupted by interference
// bursts (σ=0.18) with mean dwell times of 200 and 20 bits.
func burstSpec(t testing.TB) Spec {
	t.Helper()
	base := loopBase(t)
	drift := mkDrift(t, base.GridStep, base.GridStep/16)
	return Spec{
		Base: base,
		Regimes: []Regime{
			{Name: "quiet", EyeJitter: dist.NewGaussian(0, 0.05), Drift: drift},
			{Name: "burst", EyeJitter: dist.NewGaussian(0, 0.18), Drift: drift},
		},
		Switch: [][]float64{
			{1 - 1.0/200, 1.0 / 200},
			{1.0 / 20, 1 - 1.0/20},
		},
	}
}

func TestValidate(t *testing.T) {
	good := burstSpec(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := good
	bad.Regimes = nil
	if err := bad.Validate(); err == nil {
		t.Error("no regimes accepted")
	}
	bad = good
	bad.Switch = [][]float64{{1}}
	if err := bad.Validate(); err == nil {
		t.Error("wrong switch shape accepted")
	}
	bad = good
	bad.Switch = [][]float64{{0.5, 0.4}, {0.1, 0.9}}
	if err := bad.Validate(); err == nil {
		t.Error("deficient switch row accepted")
	}
	bad = good
	bad.Switch = [][]float64{{1.5, -0.5}, {0.1, 0.9}}
	if err := bad.Validate(); err == nil {
		t.Error("negative switch entry accepted")
	}
	bad = good
	bad.Regimes = []Regime{{Name: "x", EyeJitter: nil, Drift: mkDrift(t, good.Base.GridStep, 0)}}
	bad.Switch = [][]float64{{1}}
	if err := bad.Validate(); err == nil {
		t.Error("regime without eye law accepted")
	}
}

// TestSingleRegimeEqualsCore: one regime with an identity switch is
// bit-for-bit the first-order core model.
func TestSingleRegimeEqualsCore(t *testing.T) {
	base := loopBase(t)
	drift := mkDrift(t, base.GridStep, base.GridStep/16)
	eye := dist.NewGaussian(0, 0.08)
	spec := Spec{
		Base:    base,
		Regimes: []Regime{{Name: "only", EyeJitter: eye, Drift: drift}},
		Switch:  [][]float64{{1}},
	}
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	coreSpec := base
	coreSpec.EyeJitter = eye
	coreSpec.Drift = drift
	ref, err := core.Build(coreSpec)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != ref.NumStates() {
		t.Fatalf("state counts %d vs %d", m.NumStates(), ref.NumStates())
	}
	for i := 0; i < ref.NumStates(); i++ {
		c1, v1 := ref.P.Row(i)
		c2, v2 := m.P.Row(i)
		if len(c1) != len(c2) {
			t.Fatalf("row %d nnz %d vs %d", i, len(c1), len(c2))
		}
		for k := range c1 {
			if c1[k] != c2[k] || math.Abs(v1[k]-v2[k]) > 1e-15 {
				t.Fatalf("row %d entry %d differs", i, k)
			}
		}
	}
}

func TestRegimeMarginalMatchesSwitchChain(t *testing.T) {
	spec := burstSpec(t)
	m, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	marg := m.RegimeMarginal(pi)
	// The regime process is autonomous: its marginal is the 2-state
	// switch chain's stationary vector (b, a)/(a+b).
	a, b := spec.Switch[0][1], spec.Switch[1][0]
	want := []float64{b / (a + b), a / (a + b)}
	for r := range want {
		if math.Abs(marg[r]-want[r]) > 1e-9 {
			t.Fatalf("regime %d occupancy %g, want %g", r, marg[r], want[r])
		}
	}
}

func TestConditionalBEROrdering(t *testing.T) {
	m, err := Build(burstSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	cond := m.ConditionalBER(pi)
	if !(cond[1] > 10*cond[0]) {
		t.Fatalf("burst BER %g not far above quiet BER %g", cond[1], cond[0])
	}
	total := m.BER(pi)
	marg := m.RegimeMarginal(pi)
	mix := marg[0]*cond[0] + marg[1]*cond[1]
	if math.Abs(total-mix) > 1e-12 {
		t.Fatalf("BER %g != regime mixture %g", total, mix)
	}
}

// TestBurstsClusterFrameErrors: with errors concentrated in bursts, the
// exact frame error rate sits clearly below the i.i.d. estimate at the
// same BER — the quantitative signature of correlated interference the
// paper's industrial anecdote describes.
func TestBurstsClusterFrameErrors(t *testing.T) {
	m, err := Build(burstSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	ber := m.BER(pi)
	frame := 512
	fer, err := m.FrameErrorRate(pi, frame)
	if err != nil {
		t.Fatal(err)
	}
	iid := 1 - math.Pow(1-ber, float64(frame))
	if fer >= 0.9*iid {
		t.Fatalf("no clustering: FER %g vs i.i.d. %g (BER %g)", fer, iid, ber)
	}
	if _, err := m.FrameErrorRate(pi, 0); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestMultigridSolveMatchesDirect(t *testing.T) {
	m, err := Build(burstSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	pi, res, err := m.Solve(multigrid.Config{Tol: 1e-12})
	if err != nil {
		t.Fatalf("%v (%v)", err, res)
	}
	ref, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(pi[i]-ref[i]) > 1e-9 {
			t.Fatalf("pi[%d]: %g vs %g", i, pi[i], ref[i])
		}
	}
	ch, err := m.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsErgodic() {
		t.Fatal("regime model not ergodic")
	}
}
