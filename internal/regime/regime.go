// Package regime extends the CDR model with Markov-modulated noise: the
// jitter environment itself switches between regimes (e.g. "quiet" and
// "interference burst") according to a small Markov chain, and each
// regime carries its own eye-jitter law and accumulating-noise PMF.
//
// This is the paper's modeling language taken one step further — the
// random inputs are "functions on a Markov chain state-space", so a
// regime process is just one more component FSM in the composition — and
// it captures the paper's motivating industrial failure: a multiplexer
// chip whose BER was an order of magnitude off spec because of
// *interference noise* coupled from the rest of the chip, i.e. noise that
// arrives in correlated bursts rather than as a white background. The
// stationary BER of the modulated model is the regime-weighted average of
// conditional error rates, but the *frame* error rate is not: bursts
// cluster errors, which this model quantifies exactly.
package regime

import (
	"errors"
	"fmt"
	"math"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/lump"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/spmat"
)

// Regime describes one noise environment.
type Regime struct {
	// Name labels the regime in reports.
	Name string
	// EyeJitter is the n_w law while this regime is active.
	EyeJitter dist.Continuous
	// Drift is the n_r PMF while this regime is active (grid-aligned).
	Drift *dist.PMF
}

// Spec extends a base CDR specification with regime switching. The base
// spec's EyeJitter and Drift are ignored; each regime supplies its own.
type Spec struct {
	// Base carries the loop parameters (grid, counter, data statistics,
	// threshold, boundary model, dead zone).
	Base core.Spec
	// Regimes lists the noise environments (at least one).
	Regimes []Regime
	// Switch is the regime transition matrix: Switch[i][j] is the per-bit
	// probability of moving from regime i to regime j. Rows must sum to 1.
	Switch [][]float64
}

// Validate checks the extended specification.
func (s Spec) Validate() error {
	if len(s.Regimes) == 0 {
		return errors.New("regime: at least one regime required")
	}
	if len(s.Switch) != len(s.Regimes) {
		return fmt.Errorf("regime: switch matrix has %d rows for %d regimes", len(s.Switch), len(s.Regimes))
	}
	for i, row := range s.Switch {
		if len(row) != len(s.Regimes) {
			return fmt.Errorf("regime: switch row %d has %d entries", i, len(row))
		}
		sum := 0.0
		for j, p := range row {
			if p < 0 {
				return fmt.Errorf("regime: negative switch probability at (%d,%d)", i, j)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("regime: switch row %d sums to %g", i, sum)
		}
	}
	for i, r := range s.Regimes {
		probe := s.Base
		probe.EyeJitter = r.EyeJitter
		probe.Drift = r.Drift
		if err := probe.Validate(); err != nil {
			return fmt.Errorf("regime %d (%s): %w", i, r.Name, err)
		}
	}
	return nil
}

// Model is the assembled regime-modulated chain. State index layout is
// (((r·D)+d)·C + c)·M + m with the phase fastest and the regime slowest,
// so the multigrid phase-pair coarsening applies unchanged with
// R·D·C segments.
type Model struct {
	Spec Spec
	// R, D, C, M are the regime, data, counter and phase state counts.
	R, D, C, M int
	// P is the transition probability matrix.
	P *spmat.CSR
	// FormTime is the assembly wall-clock time.
	FormTime time.Duration

	mid       int
	corrSteps int
}

// Build assembles the modulated transition matrix. The regime switches
// independently of the loop each bit; within a bit the active regime's
// laws drive the PD decision and the phase jump (the regime transition
// applies the *current* regime's noise, then moves).
func Build(spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	base := spec.Base
	m := &Model{
		Spec:      spec,
		R:         len(spec.Regimes),
		C:         2*base.CounterLen - 1,
		corrSteps: int(base.CorrectionStep/base.GridStep + 0.5),
	}
	if base.MaxRunLength <= 0 {
		m.D = 1
	} else {
		m.D = base.MaxRunLength
	}
	if base.WrapPhase {
		m.M = int(math.Round(1 / base.GridStep))
		m.mid = m.M / 2
	} else {
		half := int(math.Round(base.PhaseMax / base.GridStep))
		m.M = 2*half + 1
		m.mid = half
	}

	n := m.NumStates()
	tr := spmat.NewTriplet(n, n)
	for r := 0; r < m.R; r++ {
		reg := spec.Regimes[r]
		drift := reg.Drift.Trim()
		regimeSpec := base
		regimeSpec.EyeJitter = reg.EyeJitter
		for d := 0; d < m.D; d++ {
			pt := transProb(base, d)
			dNoTrans := nextDataState(base, d)
			for c := 0; c < m.C; c++ {
				cLead, ovLead := core.CounterAdvance(base.CounterLen, c, +1)
				cLag, ovLag := core.CounterAdvance(base.CounterLen, c, -1)
				for mi := 0; mi < m.M; mi++ {
					phi := m.PhaseValue(mi)
					from := m.StateIndex(r, d, c, mi)
					pLead, pLag, pNull := core.PDProbs(regimeSpec, phi)
					for r2 := 0; r2 < m.R; r2++ {
						ps := spec.Switch[r][r2]
						if ps == 0 {
							continue
						}
						if w := ps * (1 - pt); w > 0 {
							m.addBranch(tr, from, r2, dNoTrans, c, mi, 0, w, drift)
						}
						if pt > 0 {
							if w := ps * pt * pLead; w > 0 {
								m.addBranch(tr, from, r2, 0, cLead, mi, -ovLead*m.corrSteps, w, drift)
							}
							if w := ps * pt * pLag; w > 0 {
								m.addBranch(tr, from, r2, 0, cLag, mi, -ovLag*m.corrSteps, w, drift)
							}
							if w := ps * pt * pNull; w > 0 {
								m.addBranch(tr, from, r2, 0, c, mi, 0, w, drift)
							}
						}
					}
				}
			}
		}
	}
	p := tr.ToCSR()
	if err := p.CheckStochastic(1e-9); err != nil {
		return nil, fmt.Errorf("regime: assembled TPM invalid: %w", err)
	}
	m.P = p
	m.FormTime = time.Since(start)
	return m, nil
}

func (m *Model) addBranch(tr *spmat.Triplet, from, r, d, c, mi, shift int, w float64, drift *dist.PMF) {
	base := mi + shift
	wrap := m.Spec.Base.WrapPhase
	drift.Support(func(_ float64, k int, pk float64) {
		mj := base + k
		if wrap {
			mj = ((mj % m.M) + m.M) % m.M
		} else {
			if mj < 0 {
				mj = 0
			}
			if mj >= m.M {
				mj = m.M - 1
			}
		}
		tr.Add(from, m.StateIndex(r, d, c, mj), w*pk)
	})
}

// NumStates returns R·D·C·M.
func (m *Model) NumStates() int { return m.R * m.D * m.C * m.M }

// StateIndex maps (regime, data, counter, phase) to the global index.
func (m *Model) StateIndex(r, d, c, mi int) int {
	return ((r*m.D+d)*m.C+c)*m.M + mi
}

// PhaseValue returns the phase of grid index mi in UI.
func (m *Model) PhaseValue(mi int) float64 {
	return float64(mi-m.mid) * m.Spec.Base.GridStep
}

// RegimeMarginal returns the stationary regime occupancies.
func (m *Model) RegimeMarginal(pi []float64) []float64 {
	out := make([]float64, m.R)
	block := m.D * m.C * m.M
	for idx, p := range pi {
		out[idx/block] += p
	}
	return out
}

// PhaseMarginal returns the stationary marginal over the phase grid.
func (m *Model) PhaseMarginal(pi []float64) []float64 {
	out := make([]float64, m.M)
	for idx, p := range pi {
		out[idx%m.M] += p
	}
	return out
}

// ErrorProbVector returns the per-state error probability with the active
// regime's eye-jitter law.
func (m *Model) ErrorProbVector() []float64 {
	t := m.Spec.Base.Threshold
	out := make([]float64, m.NumStates())
	block := m.D * m.C * m.M
	for idx := range out {
		r := idx / block
		phi := m.PhaseValue(idx % m.M)
		eye := m.Spec.Regimes[r].EyeJitter
		out[idx] = dist.TailBelow(eye, -t-phi) + dist.TailAbove(eye, t-phi)
	}
	return out
}

// BER returns the stationary bit error rate.
func (m *Model) BER(pi []float64) float64 {
	e := m.ErrorProbVector()
	acc := 0.0
	for i, p := range pi {
		acc += p * e[i]
	}
	return acc
}

// ConditionalBER returns the error rate conditioned on each regime.
func (m *Model) ConditionalBER(pi []float64) []float64 {
	e := m.ErrorProbVector()
	block := m.D * m.C * m.M
	num := make([]float64, m.R)
	den := make([]float64, m.R)
	for i, p := range pi {
		r := i / block
		num[r] += p * e[i]
		den[r] += p
	}
	out := make([]float64, m.R)
	for r := range out {
		if den[r] > 0 {
			out[r] = num[r] / den[r]
		}
	}
	return out
}

// FrameErrorRate returns P(≥1 error in frameBits consecutive bits) from
// the stationary ensemble — with bursty regimes this sits *below* the
// i.i.d. estimate because errors cluster inside bursts.
func (m *Model) FrameErrorRate(pi []float64, frameBits int) (float64, error) {
	if frameBits <= 0 {
		return 0, fmt.Errorf("regime: frame length %d", frameBits)
	}
	ch, err := markov.New(m.P)
	if err != nil {
		return 0, err
	}
	return ch.FrameErrorRate(pi, m.ErrorProbVector(), frameBits)
}

// Hierarchy builds the phase-pair multigrid coarsening (segments =
// R·D·C), continuing across the counter dimension.
func (m *Model) Hierarchy(minSegLen int) ([]*lump.Partition, error) {
	parts, err := multigrid.BuildPairHierarchy(m.M, m.R*m.D*m.C, minSegLen)
	if err != nil {
		return nil, err
	}
	segLen := m.M
	for segLen > minSegLen {
		segLen = (segLen + 1) / 2
	}
	counters := m.C
	for counters > 3 {
		part, err := lump.PairSegmentsElementwise(segLen, counters, m.R*m.D)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		counters = (counters + 1) / 2
	}
	return parts, nil
}

// Solve computes the stationary distribution with the multilevel solver.
func (m *Model) Solve(cfg multigrid.Config) ([]float64, multigrid.Result, error) {
	if cfg.Cycle == multigrid.VCycle && cfg.PreSmooth == 0 && cfg.PostSmooth == 0 {
		cfg.Cycle = multigrid.WCycle
		cfg.PreSmooth = 2
		cfg.PostSmooth = 2
	}
	parts, err := m.Hierarchy(4)
	if err != nil {
		return nil, multigrid.Result{}, err
	}
	solver, err := multigrid.New(m.P, parts, cfg)
	if err != nil {
		return nil, multigrid.Result{}, err
	}
	res, err := solver.Solve(nil)
	if err != nil {
		return nil, multigrid.Result{}, err
	}
	if !res.Converged {
		return nil, res, fmt.Errorf("regime: multigrid %w: %v", core.ErrUnconverged, res)
	}
	return res.Pi, res, nil
}

// SolveDirect computes the stationary distribution with dense GTH.
func (m *Model) SolveDirect() ([]float64, error) {
	ch, err := markov.New(m.P)
	if err != nil {
		return nil, err
	}
	return ch.StationaryDirect()
}

// Chain wraps the TPM for structural queries.
func (m *Model) Chain() (*markov.Chain, error) { return markov.New(m.P) }

func transProb(s core.Spec, r int) float64 {
	if s.MaxRunLength > 0 && r == s.MaxRunLength-1 {
		return 1
	}
	return s.TransitionDensity
}

func nextDataState(s core.Spec, r int) int {
	if s.MaxRunLength > 0 && r < s.MaxRunLength-1 {
		return r + 1
	}
	return 0
}
