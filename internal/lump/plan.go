package lump

import (
	"errors"
	"fmt"

	"cdrstoch/internal/spmat"
)

// Plan precomputes everything about iterate-weighted lumping that depends
// only on the fine sparsity pattern and the partition: the coarse matrix's
// structural pattern and, for every fine stored entry, the index of the
// coarse entry it accumulates into. Repeated lumping along a sequence of
// iterates — the multigrid cycle does one per level per cycle — then
// reduces to a weights pass and an O(nnz) scatter into the coarse value
// slice, with zero allocation after the plan is built. Lump, by contrast,
// rebuilds a triplet and re-sorts it on every call.
//
// The coarse pattern is the structural image of the fine pattern: it keeps
// entries whose accumulated value happens to be zero for the current
// iterate, which a fresh Lump would drop. Explicit zeros are valid CSR and
// harmless to the smoothers and the coarsest-level GTH solve.
type Plan struct {
	p      *spmat.CSR
	part   *Partition
	coarse *spmat.CSR
	dest   []int     // coarse val index per fine stored entry, row-major
	w      []float64 // disaggregation weights of the last Update
	sums   []float64 // per-block mass scratch
	counts []int     // block sizes, for the vanished-mass uniform fallback
}

// NewPlan validates the pair like Lump and builds the structural plan.
// The fine matrix's values may change between Updates (the multigrid
// hierarchy refreshes them in place level by level); its pattern must not.
func NewPlan(p *spmat.CSR, part *Partition) (*Plan, error) {
	n, m := p.Dims()
	if n != m {
		return nil, errors.New("lump: TPM must be square")
	}
	if n != part.NumStates() {
		return nil, fmt.Errorf("lump: partition covers %d states, TPM has %d", part.NumStates(), n)
	}
	nb := part.NumBlocks()
	counts := make([]int, nb)
	for _, b := range part.blockOf {
		counts[b]++
	}
	tr := spmat.NewTriplet(nb, nb)
	tr.Reserve(p.NNZ())
	for i := 0; i < n; i++ {
		bi := part.blockOf[i]
		cols, _ := p.Row(i)
		for _, j := range cols {
			tr.Add(bi, part.blockOf[j], 0)
		}
	}
	coarse := tr.ToCSR()
	dest := make([]int, p.NNZ())
	k := 0
	for i := 0; i < n; i++ {
		bi := part.blockOf[i]
		cols, _ := p.Row(i)
		for _, j := range cols {
			d := coarse.EntryIndex(bi, part.blockOf[j])
			if d < 0 {
				return nil, fmt.Errorf("lump: internal: coarse entry (%d,%d) missing", bi, part.blockOf[j])
			}
			dest[k] = d
			k++
		}
	}
	return &Plan{
		p:      p,
		part:   part,
		coarse: coarse,
		dest:   dest,
		w:      make([]float64, n),
		sums:   make([]float64, nb),
		counts: counts,
	}, nil
}

// Coarse returns the plan-owned coarse matrix. Update rewrites its values
// in place; the pointer stays valid across Updates.
func (pl *Plan) Coarse() *spmat.CSR { return pl.coarse }

// Weights returns the disaggregation weights computed by the last Update.
// The slice aliases plan storage and is overwritten by the next Update.
func (pl *Plan) Weights() []float64 { return pl.w }

// Update recomputes the coarse matrix values for iterate x — the same
// operator Lump(p, part, x) builds — reusing the plan's pattern and
// buffers. It also refreshes Weights. No allocation.
func (pl *Plan) Update(x []float64) error {
	bo := pl.part.blockOf
	n := len(bo)
	if len(x) != n {
		return errors.New("lump: weight vector length mismatch")
	}
	clear(pl.sums)
	for i, b := range bo {
		pl.sums[b] += x[i]
	}
	for i, b := range bo {
		if pl.sums[b] > 0 {
			pl.w[i] = x[i] / pl.sums[b]
		} else {
			pl.w[i] = 1 / float64(pl.counts[b])
		}
	}
	cv := pl.coarse.RawValues()
	clear(cv)
	k := 0
	for i := 0; i < n; i++ {
		_, vals := pl.p.Row(i)
		wi := pl.w[i]
		if wi == 0 {
			k += len(vals)
			continue
		}
		for _, v := range vals {
			cv[pl.dest[k]] += wi * v
			k++
		}
	}
	if err := pl.coarse.CheckStochastic(1e-8); err != nil {
		return fmt.Errorf("lump: coarse TPM not stochastic: %w", err)
	}
	return nil
}
