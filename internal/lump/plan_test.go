package lump

import (
	"math"
	"math/rand"
	"testing"

	"cdrstoch/internal/spmat"
)

// TestPlanMatchesLump checks the fixed-pattern Update against a fresh Lump
// for several random chains, partitions, and iterates. The two accumulate
// per coarse entry in the same row-major fine order, so values must agree
// to rounding on the shared pattern and the plan's extra (structural-only)
// entries must carry zero.
func TestPlanMatchesLump(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{8, 30, 64} {
		p := randomStochasticCSR(n, rng)
		part, err := PairsWithinSegments(n/2, 2)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(p, part)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.Float64()
			}
			want, err := Lump(p, part, x)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Update(x); err != nil {
				t.Fatal(err)
			}
			got := plan.Coarse()
			nb := part.NumBlocks()
			for i := 0; i < nb; i++ {
				for j := 0; j < nb; j++ {
					d := math.Abs(got.At(i, j) - want.At(i, j))
					if d > 1e-14 {
						t.Fatalf("n=%d trial %d: coarse (%d,%d) = %g, Lump %g",
							n, trial, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
			w := part.Weights(x)
			for i, v := range plan.Weights() {
				if math.Abs(v-w[i]) > 1e-15 {
					t.Fatalf("weights[%d] = %g, want %g", i, v, w[i])
				}
			}
		}
	}
}

// TestPlanTracksInPlaceFineRefresh rewrites the fine values in place (the
// level-to-level situation in the multigrid hierarchy) and checks Update
// picks up the new values.
func TestPlanTracksInPlaceFineRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := randomStochasticCSR(20, rng)
	part, err := PairsWithinSegments(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(p, part)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 20)
	for i := range x {
		x[i] = 1
	}
	// Replace p's values with a different stochastic matrix of identical
	// pattern (dense random rows → same full pattern).
	fresh := randomStochasticCSR(20, rng)
	copy(p.RawValues(), fresh.RawValues())
	if err := plan.Update(x); err != nil {
		t.Fatal(err)
	}
	want, err := Lump(fresh, part, x)
	if err != nil {
		t.Fatal(err)
	}
	got := plan.Coarse()
	for i := 0; i < part.NumBlocks(); i++ {
		for j := 0; j < part.NumBlocks(); j++ {
			if d := math.Abs(got.At(i, j) - want.At(i, j)); d > 1e-14 {
				t.Fatalf("coarse (%d,%d) off by %g after refresh", i, j, d)
			}
		}
	}
}

// TestPlanUpdateNoAlloc asserts the steady-state promise: zero heap
// allocation per Update after the plan is built.
func TestPlanUpdateNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomStochasticCSR(32, rng)
	part, err := PairsWithinSegments(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(p, part)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 32)
	for i := range x {
		x[i] = rng.Float64() + 0.01
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := plan.Update(x); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Update allocates %v times per call, want 0", avg)
	}
}

func TestPlanValidation(t *testing.T) {
	rect := spmat.NewTriplet(2, 3)
	rect.Add(0, 0, 1)
	rect.Add(1, 2, 1)
	part2, err := NewPartition([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(rect.ToCSR(), part2); err == nil {
		t.Error("rectangular matrix accepted")
	}
	rng := rand.New(rand.NewSource(14))
	p := randomStochasticCSR(6, rng)
	if _, err := NewPlan(p, part2); err == nil {
		t.Error("mismatched partition accepted")
	}
	part6, err := PairsWithinSegments(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(p, part6)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Update(make([]float64, 3)); err == nil {
		t.Error("short iterate accepted")
	}
}
