package lump

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdrstoch/internal/spmat"
)

func csrFromRows(t testing.TB, rows [][]float64) *spmat.CSR {
	t.Helper()
	n := len(rows)
	tr := spmat.NewTriplet(n, len(rows[0]))
	for i, row := range rows {
		for j, v := range row {
			if v != 0 {
				tr.Add(i, j, v)
			}
		}
	}
	return tr.ToCSR()
}

func randomStochasticCSR(n int, rng *rand.Rand) *spmat.CSR {
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			s += row[j]
		}
		for j := range row {
			tr.Add(i, j, row[j]/s)
		}
	}
	return tr.ToCSR()
}

func TestNewPartitionValidation(t *testing.T) {
	if _, err := NewPartition(nil); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := NewPartition([]int{0, -1}); err == nil {
		t.Error("negative block accepted")
	}
	if _, err := NewPartition([]int{0, 2}); err == nil {
		t.Error("gap in block ids accepted")
	}
	p, err := NewPartition([]int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 2 || p.NumStates() != 4 {
		t.Error("partition shape")
	}
	if p.BlockOf(2) != 0 {
		t.Error("BlockOf")
	}
}

func TestBlocks(t *testing.T) {
	p, _ := NewPartition([]int{0, 1, 0, 2})
	blocks := p.Blocks()
	if len(blocks) != 3 {
		t.Fatal("block count")
	}
	if len(blocks[0]) != 2 || blocks[0][0] != 0 || blocks[0][1] != 2 {
		t.Errorf("block 0 = %v", blocks[0])
	}
}

func TestPairsWithinSegments(t *testing.T) {
	// 2 segments of length 5: blocks per segment = 3 (last is singleton).
	p, err := PairsWithinSegments(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 10 || p.NumBlocks() != 6 {
		t.Fatalf("shape %d/%d", p.NumStates(), p.NumBlocks())
	}
	want := []int{0, 0, 1, 1, 2, 3, 3, 4, 4, 5}
	for i, b := range want {
		if p.BlockOf(i) != b {
			t.Fatalf("BlockOf(%d) = %d, want %d", i, p.BlockOf(i), b)
		}
	}
	if _, err := PairsWithinSegments(0, 2); err == nil {
		t.Error("zero segment length accepted")
	}
}

func TestPairSegmentsElementwise(t *testing.T) {
	// 2 groups × 3 segments × 2 entries: segments (0,1) merge, 2 stays.
	p, err := PairSegmentsElementwise(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 12 || p.NumBlocks() != 8 {
		t.Fatalf("shape %d/%d", p.NumStates(), p.NumBlocks())
	}
	want := []int{
		0, 1, 0, 1, 2, 3, // group 0: segs 0,1 -> coarse 0; seg 2 -> coarse 1
		4, 5, 4, 5, 6, 7, // group 1
	}
	for i, b := range want {
		if p.BlockOf(i) != b {
			t.Fatalf("BlockOf(%d) = %d, want %d", i, p.BlockOf(i), b)
		}
	}
	if _, err := PairSegmentsElementwise(0, 1, 1); err == nil {
		t.Error("bad layout accepted")
	}
}

func TestRestrictProlongRoundTrip(t *testing.T) {
	p, _ := NewPartition([]int{0, 0, 1, 1, 1})
	fine := []float64{0.1, 0.2, 0.3, 0.3, 0.1}
	coarse := p.Restrict(nil, fine)
	if math.Abs(coarse[0]-0.3) > 1e-15 || math.Abs(coarse[1]-0.7) > 1e-15 {
		t.Fatalf("restrict = %v", coarse)
	}
	w := p.Weights(fine)
	back := p.Prolong(nil, coarse, w)
	for i := range fine {
		if math.Abs(back[i]-fine[i]) > 1e-15 {
			t.Fatalf("round trip broke at %d: %g vs %g", i, back[i], fine[i])
		}
	}
}

func TestWeightsZeroBlockFallsBackUniform(t *testing.T) {
	p, _ := NewPartition([]int{0, 0, 1, 1})
	w := p.Weights([]float64{0, 0, 0.5, 0.5})
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Fatalf("zero block weights = %v", w[:2])
	}
}

func TestLumpPreservesStochasticity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomStochasticCSR(9, rng)
	part, _ := PairsWithinSegments(3, 3)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.Float64()
	}
	coarse, err := Lump(p, part, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := coarse.CheckStochastic(1e-10); err != nil {
		t.Fatal(err)
	}
	r, c := coarse.Dims()
	if r != part.NumBlocks() || c != part.NumBlocks() {
		t.Fatalf("coarse dims %dx%d", r, c)
	}
}

// TestLumpExactAtStationary: when x is the exact stationary vector, the
// coarse chain's stationary vector equals the aggregated fine one.
func TestLumpExactAtStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomStochasticCSR(8, rng)
	pi, err := spmat.StationaryGTHCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := NewPartition([]int{0, 0, 1, 1, 2, 2, 3, 3})
	coarse, err := Lump(p, part, pi)
	if err != nil {
		t.Fatal(err)
	}
	piC, err := spmat.StationaryGTHCSR(coarse)
	if err != nil {
		t.Fatal(err)
	}
	want := part.Restrict(nil, pi)
	for b := range want {
		if math.Abs(piC[b]-want[b]) > 1e-12 {
			t.Fatalf("block %d: coarse pi %g vs aggregated %g", b, piC[b], want[b])
		}
	}
}

func TestLumpErrors(t *testing.T) {
	p := csrFromRows(t, [][]float64{{0.5, 0.5}, {1, 0}})
	part, _ := NewPartition([]int{0})
	if _, err := Lump(p, part, []float64{1, 1}); err == nil {
		t.Error("partition size mismatch accepted")
	}
	part2, _ := NewPartition([]int{0, 0})
	if _, err := Lump(p, part2, []float64{1}); err == nil {
		t.Error("weight size mismatch accepted")
	}
}

func TestIsExactlyLumpableSymmetricChain(t *testing.T) {
	// A chain symmetric under swapping states {0,1}: lumping {0,1} vs {2}
	// is exact.
	p := csrFromRows(t, [][]float64{
		{0.2, 0.3, 0.5},
		{0.3, 0.2, 0.5},
		{0.25, 0.25, 0.5},
	})
	part, _ := NewPartition([]int{0, 0, 1})
	ok, err := IsExactlyLumpable(p, part, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("symmetric lumping not detected")
	}
}

func TestIsExactlyLumpableRejects(t *testing.T) {
	p := csrFromRows(t, [][]float64{
		{0.2, 0.3, 0.5},
		{0.6, 0.2, 0.2},
		{0.25, 0.25, 0.5},
	})
	part, _ := NewPartition([]int{0, 0, 1})
	ok, err := IsExactlyLumpable(p, part, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-lumpable partition accepted")
	}
}

func TestIsExactlyLumpableTrivialPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomStochasticCSR(6, rng)
	// Identity partition: always lumpable.
	id := make([]int, 6)
	for i := range id {
		id[i] = i
	}
	pid, _ := NewPartition(id)
	if ok, _ := IsExactlyLumpable(p, pid, 1e-12); !ok {
		t.Error("identity partition must be lumpable")
	}
	// Single block: always lumpable (rows sum to 1).
	one, _ := NewPartition(make([]int, 6))
	if ok, _ := IsExactlyLumpable(p, one, 1e-9); !ok {
		t.Error("single-block partition must be lumpable")
	}
}

// Property: restriction preserves total mass, and lumping preserves
// stochasticity for arbitrary iterates.
func TestQuickLumpInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		segs := 1 + rng.Intn(4)
		segLen := 1 + rng.Intn(6)
		n := segs * segLen
		p := randomStochasticCSR(n, rng)
		part, err := PairsWithinSegments(segLen, segs)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		coarse, err := Lump(p, part, x)
		if err != nil {
			return false
		}
		if err := coarse.CheckStochastic(1e-9); err != nil {
			return false
		}
		sum := 0.0
		for _, v := range part.Restrict(nil, x) {
			sum += v
		}
		want := 0.0
		for _, v := range x {
			want += v
		}
		return math.Abs(sum-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
