// Package lump implements state-space partitions, lumped (aggregated)
// Markov chains and lumpability tests — the machinery behind the paper's
// aggregation/disaggregation acceleration. A partition of the state space
// induces a coarse process; it is Markov for every initial distribution
// only under (strong) lumpability, which almost never holds for a
// non-redundant model. The multigrid solver therefore uses *iterate-
// weighted* lumping (weak lumpability along the current iterate): the
// coarse TPM depends on the current fine-level estimate of the stationary
// vector, exactly as in aggregation/disaggregation methods and the
// Horton–Leutenegger multilevel algorithm.
package lump

import (
	"errors"
	"fmt"

	"cdrstoch/internal/spmat"
)

// Partition assigns each fine state to exactly one block (aggregate).
type Partition struct {
	blockOf []int
	nBlocks int
}

// NewPartition builds a partition from the block id of each state. Block
// ids must cover 0..max contiguously (every block non-empty).
func NewPartition(blockOf []int) (*Partition, error) {
	if len(blockOf) == 0 {
		return nil, errors.New("lump: empty partition")
	}
	max := -1
	for i, b := range blockOf {
		if b < 0 {
			return nil, fmt.Errorf("lump: state %d has negative block %d", i, b)
		}
		if b > max {
			max = b
		}
	}
	seen := make([]bool, max+1)
	for _, b := range blockOf {
		seen[b] = true
	}
	for b, s := range seen {
		if !s {
			return nil, fmt.Errorf("lump: block %d is empty", b)
		}
	}
	cp := make([]int, len(blockOf))
	copy(cp, blockOf)
	return &Partition{blockOf: cp, nBlocks: max + 1}, nil
}

// PairsWithinSegments partitions numSegs contiguous segments of length
// segLen by pairing consecutive entries inside each segment (the last
// entry of an odd-length segment forms a singleton block). This is the
// paper's coarsening strategy: "lump the two states corresponding to
// consecutive discretized phase error values", applied independently
// within each (data state, filter state) segment.
func PairsWithinSegments(segLen, numSegs int) (*Partition, error) {
	if segLen <= 0 || numSegs <= 0 {
		return nil, fmt.Errorf("lump: bad segmentation %dx%d", segLen, numSegs)
	}
	blocksPerSeg := (segLen + 1) / 2
	blockOf := make([]int, segLen*numSegs)
	for s := 0; s < numSegs; s++ {
		for i := 0; i < segLen; i++ {
			blockOf[s*segLen+i] = s*blocksPerSeg + i/2
		}
	}
	return NewPartition(blockOf)
}

// PairSegmentsElementwise partitions a state space laid out as
// groups × segsPerGroup × segLen (innermost fastest) by merging adjacent
// *segments* within each group elementwise: segment pair (2k, 2k+1) maps
// entry m onto coarse entry m of coarse segment k. The multigrid hierarchy
// uses it to keep coarsening across the loop-filter (counter) dimension
// once the phase grid within segments has been exhausted.
func PairSegmentsElementwise(segLen, segsPerGroup, groups int) (*Partition, error) {
	if segLen <= 0 || segsPerGroup <= 0 || groups <= 0 {
		return nil, fmt.Errorf("lump: bad layout %dx%dx%d", groups, segsPerGroup, segLen)
	}
	coarseSegs := (segsPerGroup + 1) / 2
	blockOf := make([]int, groups*segsPerGroup*segLen)
	for g := 0; g < groups; g++ {
		for s := 0; s < segsPerGroup; s++ {
			for m := 0; m < segLen; m++ {
				fine := (g*segsPerGroup+s)*segLen + m
				blockOf[fine] = (g*coarseSegs+s/2)*segLen + m
			}
		}
	}
	return NewPartition(blockOf)
}

// NumBlocks returns the number of aggregates.
func (p *Partition) NumBlocks() int { return p.nBlocks }

// NumStates returns the number of fine states.
func (p *Partition) NumStates() int { return len(p.blockOf) }

// BlockOf returns the block id of fine state i.
func (p *Partition) BlockOf(i int) int { return p.blockOf[i] }

// Blocks materializes the member lists of every block.
func (p *Partition) Blocks() [][]int {
	out := make([][]int, p.nBlocks)
	for i, b := range p.blockOf {
		out[b] = append(out[b], i)
	}
	return out
}

// Restrict aggregates a fine vector: dst[B] = Σ_{i∈B} fine[i]. dst is
// allocated when nil; it is returned.
func (p *Partition) Restrict(dst, fine []float64) []float64 {
	if len(fine) != len(p.blockOf) {
		panic("lump: Restrict dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, p.nBlocks)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, b := range p.blockOf {
		dst[b] += fine[i]
	}
	return dst
}

// Weights returns the within-block proportions of a non-negative fine
// vector x: w[i] = x[i] / Σ_{j∈block(i)} x[j], falling back to uniform
// within blocks whose mass vanished. These are the disaggregation weights
// of the aggregation/disaggregation step.
func (p *Partition) Weights(x []float64) []float64 {
	if len(x) != len(p.blockOf) {
		panic("lump: Weights dimension mismatch")
	}
	sums := p.Restrict(nil, x)
	counts := make([]int, p.nBlocks)
	for _, b := range p.blockOf {
		counts[b]++
	}
	w := make([]float64, len(x))
	for i, b := range p.blockOf {
		if sums[b] > 0 {
			w[i] = x[i] / sums[b]
		} else {
			w[i] = 1 / float64(counts[b])
		}
	}
	return w
}

// Prolong disaggregates a coarse vector with the given weights:
// dst[i] = coarse[block(i)]·weights[i]. dst is allocated when nil.
func (p *Partition) Prolong(dst, coarse, weights []float64) []float64 {
	if len(coarse) != p.nBlocks || len(weights) != len(p.blockOf) {
		panic("lump: Prolong dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, len(p.blockOf))
	}
	for i, b := range p.blockOf {
		dst[i] = coarse[b] * weights[i]
	}
	return dst
}

// Lump forms the iterate-weighted coarse TPM:
//
//	P_c[I,J] = Σ_{i∈I} w_i · Σ_{j∈J} P[i,j],  w_i = x_i / Σ_{i'∈I} x_{i'}
//
// With x equal to the exact stationary vector, the coarse chain's
// stationary vector is exactly the aggregated fine one; with an
// approximate iterate it is the standard A/D coarse operator. The result
// is row-stochastic whenever P is.
func Lump(p *spmat.CSR, part *Partition, x []float64) (*spmat.CSR, error) {
	n, m := p.Dims()
	if n != m {
		return nil, errors.New("lump: TPM must be square")
	}
	if n != part.NumStates() {
		return nil, fmt.Errorf("lump: partition covers %d states, TPM has %d", part.NumStates(), n)
	}
	if len(x) != n {
		return nil, errors.New("lump: weight vector length mismatch")
	}
	w := part.Weights(x)
	nb := part.NumBlocks()
	tr := spmat.NewTriplet(nb, nb)
	tr.Reserve(p.NNZ())
	for i := 0; i < n; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		bi := part.blockOf[i]
		cols, vals := p.Row(i)
		for k, j := range cols {
			if vals[k] == 0 {
				continue
			}
			tr.Add(bi, part.blockOf[j], wi*vals[k])
		}
	}
	coarse := tr.ToCSR()
	// Zero-weight rows can arise only from blocks with vanished mass whose
	// fallback-uniform weights still cover them, so rows should be
	// stochastic; verify cheaply in debug-style.
	if err := coarse.CheckStochastic(1e-8); err != nil {
		return nil, fmt.Errorf("lump: coarse TPM not stochastic: %w", err)
	}
	return coarse, nil
}

// IsExactlyLumpable reports whether the partition is strongly lumpable for
// P: for every block J, the aggregated transition probability into J is
// constant across the states of each block I (within tol). Strongly
// lumpable partitions yield a coarse chain that is Markov for every
// initial distribution — the rare, redundant-model case discussed in the
// paper.
func IsExactlyLumpable(p *spmat.CSR, part *Partition, tol float64) (bool, error) {
	n, m := p.Dims()
	if n != m || n != part.NumStates() {
		return false, errors.New("lump: dimension mismatch")
	}
	// For each state, compute its aggregated row (distribution over
	// blocks), then compare within blocks against the block's first state.
	nb := part.NumBlocks()
	ref := make(map[int][]float64, nb) // block -> aggregated row of first member
	rowAgg := make([]float64, nb)
	touched := make([]int, 0, 16)
	for i := 0; i < n; i++ {
		for _, b := range touched {
			rowAgg[b] = 0
		}
		touched = touched[:0]
		cols, vals := p.Row(i)
		for k, j := range cols {
			b := part.blockOf[j]
			if rowAgg[b] == 0 && vals[k] != 0 {
				touched = append(touched, b)
			}
			rowAgg[b] += vals[k]
		}
		bi := part.blockOf[i]
		if r, ok := ref[bi]; ok {
			for b := 0; b < nb; b++ {
				d := rowAgg[b] - r[b]
				if d < 0 {
					d = -d
				}
				if d > tol {
					return false, nil
				}
			}
		} else {
			cp := make([]float64, nb)
			copy(cp, rowAgg)
			ref[bi] = cp
		}
	}
	return true, nil
}
