package experiments

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

func TestGridStudyConverges(t *testing.T) {
	// σ_r must stay resolvable on the coarsest grid (σ_r ≳ h/3), or the
	// quantized n_r freezes and the dynamics degenerate.
	points, err := GridStudy([]int{16, 32, 64}, 0.0005, 0.012, 0.08, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].States <= points[i-1].States {
			t.Error("refinement did not grow the state space")
		}
		if points[i].BER <= 0 || points[i].BER >= 1 {
			t.Fatalf("BER out of range: %+v", points[i])
		}
	}
	// Successive differences shrink: the h -> h/2 jump dominates the
	// h/2 -> h/4 jump.
	d1 := math.Abs(points[1].BER - points[0].BER)
	d2 := math.Abs(points[2].BER - points[1].BER)
	if d2 >= d1 {
		t.Fatalf("no grid convergence: |ΔBER| %g -> %g (BERs %g, %g, %g)",
			d1, d2, points[0].BER, points[1].BER, points[2].BER)
	}
}

func TestGridStudyValidation(t *testing.T) {
	if _, err := GridStudy([]int{32}, 0, 0.01, 0.05, 4); err == nil {
		t.Error("single resolution accepted")
	}
	if _, err := GridStudy([]int{4, 8}, 0, 0.01, 0.05, 4); err == nil {
		t.Error("too-coarse grid accepted")
	}
}

func TestOptimalCounterFindsEight(t *testing.T) {
	points, best, err := OptimalCounter(Fig5Spec, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if points[best].CounterLen != 8 {
		t.Fatalf("optimal length = %d, want 8 (sweep: %+v)", points[best].CounterLen, points)
	}
	for _, p := range points {
		if p.BER <= 0 || p.MeanTimeBetweenSlips <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestOptimalCounterValidation(t *testing.T) {
	if _, _, err := OptimalCounter(Fig5Spec, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestOptimalCounterCustomSpec(t *testing.T) {
	// A tiny custom spec family keeps this fast and exercises the
	// callback form.
	mk := func(l int) core.Spec {
		h := 1.0 / 16
		drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 16, Shape: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		return core.Spec{
			GridStep:          h,
			PhaseMax:          0.5,
			CorrectionStep:    2 * h,
			TransitionDensity: 0.5,
			MaxRunLength:      2,
			EyeJitter:         dist.NewGaussian(0, 0.09),
			Drift:             drift,
			CounterLen:        l,
			Threshold:         0.5,
		}
	}
	points, best, err := OptimalCounter(mk, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if best < 0 || best >= len(points) {
		t.Fatalf("best index %d", best)
	}
	for i, p := range points {
		if i != best && p.BER < points[best].BER {
			t.Fatalf("best index wrong: %+v", points)
		}
	}
}
