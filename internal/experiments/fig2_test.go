package experiments

import (
	"strings"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// TestModelTopologyMatchesFig2 verifies that the exported FSM network has
// exactly the compositional structure of the paper's Figure 2: four
// machines (data statistics, phase detector, up/down counter, phase
// error) and three stochastic sources (the bit process driving the data
// FSM, the eye jitter n_w into the phase detector, and n_r into the phase
// error), wired data→PD, PD→counter, counter→phase, phase→PD.
func TestModelTopologyMatchesFig2(t *testing.T) {
	spec := BaseSpec()
	m, err := core.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := dist.Quantize(spec.EyeJitter, spec.GridStep, -6, 6)
	if err != nil {
		t.Fatal(err)
	}
	net, err := m.AsNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumMachines() != 4 {
		t.Fatalf("machines = %d, want 4", net.NumMachines())
	}
	for _, name := range []string{"data", "pd", "counter", "phase"} {
		if net.Machine(name) == nil {
			t.Errorf("missing machine %q", name)
		}
	}
	for _, name := range []string{"bitflip", "nw", "nr"} {
		if net.Source(name) == nil {
			t.Errorf("missing source %q", name)
		}
	}
	dot := net.DOT()
	for _, wire := range []string{
		`"m_data" -> "m_pd"`,
		`"m_pd" -> "m_counter"`,
		`"m_counter" -> "m_phase"`,
		`"m_phase" -> "m_pd"`, // the Moore feedback closing the loop
		`"src_nw" -> "m_pd"`,
		`"src_nr" -> "m_phase"`,
		`"src_bitflip" -> "m_data"`,
	} {
		if !strings.Contains(dot, wire) {
			t.Errorf("DOT missing wire %s:\n%s", wire, dot)
		}
	}
	// The product chain over this network is a Markov chain (built and
	// checked stochastic by construction).
	ch, err := net.BuildChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.States) == 0 {
		t.Fatal("empty reachable chain")
	}
}
