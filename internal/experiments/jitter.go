package experiments

import (
	"errors"
	"fmt"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// Sinusoidal jitter tolerance. The paper notes that deterministic
// sinusoidally varying jitter can be mimicked "by assigning the amplitude
// distribution of n_r appropriately" — the amplitude law of A·sin(θ) with
// uniform phase is the arcsine distribution (dist.Sinusoidal). These
// helpers inject an arcsine jitter component of amplitude A into either
// noise slot and search for the largest A that still meets a BER target,
// producing the jitter-tolerance figure a receiver datasheet quotes.

// SJSlot selects which noise input carries the sinusoidal jitter.
type SJSlot int

// Sinusoidal-jitter injection slots.
const (
	// SJEye adds the jitter to n_w: each bit's sampling position moves by
	// an independent arcsine-distributed amount — appropriate for jitter
	// far above the loop bandwidth (the loop cannot track it).
	SJEye SJSlot = iota
	// SJDrift convolves the arcsine PMF into n_r, the paper's suggestion:
	// the jitter accumulates into the phase error like low-frequency
	// wander that the loop must track.
	SJDrift
)

// WithSinusoidalJitter returns spec with an arcsine jitter component of
// the given amplitude (UI) injected into the selected slot.
func WithSinusoidalJitter(spec core.Spec, amp float64, slot SJSlot) (core.Spec, error) {
	if amp < 0 {
		return core.Spec{}, errors.New("experiments: negative SJ amplitude")
	}
	if amp == 0 {
		return spec, nil
	}
	k := int(amp/spec.GridStep) + 1
	sj, err := dist.Quantize(dist.NewSinusoidal(amp), spec.GridStep, -k, k)
	if err != nil {
		return core.Spec{}, err
	}
	switch slot {
	case SJEye:
		law, err := dist.NewSumLaw(spec.EyeJitter, sj)
		if err != nil {
			return core.Spec{}, err
		}
		spec.EyeJitter = law
	case SJDrift:
		drift, err := spec.Drift.Convolve(sj)
		if err != nil {
			return core.Spec{}, err
		}
		spec.Drift = drift.Trim()
	default:
		return core.Spec{}, fmt.Errorf("experiments: unknown SJ slot %d", slot)
	}
	return spec, spec.Validate()
}

// BERWithSJ builds and solves the model with the given sinusoidal jitter
// amplitude and returns its BER. An optional SolveOptions (first value
// wins) forwards solver knobs to the stationary solve.
func BERWithSJ(spec core.Spec, amp float64, slot SJSlot, opts ...core.SolveOptions) (float64, error) {
	s, err := WithSinusoidalJitter(spec, amp, slot)
	if err != nil {
		return 0, err
	}
	m, err := core.Build(s)
	if err != nil {
		return 0, err
	}
	var opt core.SolveOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	a, err := m.Solve(opt)
	if err != nil {
		return 0, err
	}
	return a.BER, nil
}

// JitterTolerance finds, by bisection, the largest sinusoidal jitter
// amplitude (UI, up to maxAmp) whose BER stays at or below target. It
// returns 0 when the jitter-free BER already violates the target, and
// maxAmp when even maxAmp passes. tolUI sets the bisection resolution.
func JitterTolerance(spec core.Spec, target float64, slot SJSlot, maxAmp, tolUI float64, opts ...core.SolveOptions) (float64, error) {
	if target <= 0 || maxAmp <= 0 || tolUI <= 0 {
		return 0, errors.New("experiments: positive target, maxAmp and tolUI required")
	}
	base, err := BERWithSJ(spec, 0, slot, opts...)
	if err != nil {
		return 0, err
	}
	if base > target {
		return 0, nil
	}
	top, err := BERWithSJ(spec, maxAmp, slot, opts...)
	if err != nil {
		return 0, err
	}
	if top <= target {
		return maxAmp, nil
	}
	lo, hi := 0.0, maxAmp
	for hi-lo > tolUI {
		mid := (lo + hi) / 2
		ber, err := BERWithSJ(spec, mid, slot, opts...)
		if err != nil {
			return 0, err
		}
		if ber <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
