package experiments

import (
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// smallSpec is a fast model for the jitter-tolerance searches.
func smallSpec(t testing.TB) core.Spec {
	t.Helper()
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 16, Shape: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.05),
		Drift:             drift,
		CounterLen:        3,
		Threshold:         0.5,
	}
}

func TestWithSinusoidalJitterSlots(t *testing.T) {
	spec := smallSpec(t)
	for _, slot := range []SJSlot{SJEye, SJDrift} {
		s, err := WithSinusoidalJitter(spec, 0.1, slot)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	// Amplitude zero is the identity.
	s, err := WithSinusoidalJitter(spec, 0, SJEye)
	if err != nil {
		t.Fatal(err)
	}
	if s.EyeJitter != spec.EyeJitter {
		t.Error("zero amplitude changed the law")
	}
	if _, err := WithSinusoidalJitter(spec, -1, SJEye); err == nil {
		t.Error("negative amplitude accepted")
	}
	if _, err := WithSinusoidalJitter(spec, 0.1, SJSlot(99)); err == nil {
		t.Error("unknown slot accepted")
	}
}

func TestBERIncreasesWithSJAmplitude(t *testing.T) {
	spec := smallSpec(t)
	for _, slot := range []SJSlot{SJEye, SJDrift} {
		prev := -1.0
		for _, amp := range []float64{0, 0.1, 0.2} {
			ber, err := BERWithSJ(spec, amp, slot)
			if err != nil {
				t.Fatalf("slot %d amp %g: %v", slot, amp, err)
			}
			if ber <= prev {
				t.Fatalf("slot %d: BER not increasing at amp %g: %g <= %g", slot, amp, ber, prev)
			}
			prev = ber
		}
	}
}

func TestJitterTolerance(t *testing.T) {
	spec := smallSpec(t)
	base, err := BERWithSJ(spec, 0, SJEye)
	if err != nil {
		t.Fatal(err)
	}
	target := 100 * base
	tol, err := JitterTolerance(spec, target, SJEye, 0.4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tol <= 0 || tol >= 0.4 {
		t.Fatalf("tolerance = %g UI", tol)
	}
	// The found amplitude meets the target; a step beyond violates it.
	at, err := BERWithSJ(spec, tol, SJEye)
	if err != nil {
		t.Fatal(err)
	}
	if at > target {
		t.Fatalf("BER %g at tolerance exceeds target %g", at, target)
	}
	beyond, err := BERWithSJ(spec, tol+0.02, SJEye)
	if err != nil {
		t.Fatal(err)
	}
	if beyond <= target {
		t.Fatalf("BER %g beyond tolerance still meets target %g", beyond, target)
	}
}

func TestJitterToleranceEdgeCases(t *testing.T) {
	spec := smallSpec(t)
	base, err := BERWithSJ(spec, 0, SJEye)
	if err != nil {
		t.Fatal(err)
	}
	// Unreachable target: zero tolerance.
	tol, err := JitterTolerance(spec, base/10, SJEye, 0.3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tol != 0 {
		t.Fatalf("tolerance %g for unreachable target", tol)
	}
	// Trivial target: full amplitude passes.
	tol, err = JitterTolerance(spec, 0.9, SJEye, 0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tol != 0.1 {
		t.Fatalf("tolerance %g for trivial target", tol)
	}
	if _, err := JitterTolerance(spec, 0, SJEye, 0.1, 0.01); err == nil {
		t.Error("zero target accepted")
	}
}
