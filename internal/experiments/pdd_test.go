package experiments

import (
	"testing"

	"cdrstoch/internal/pdd"
)

// TestStationaryVectorCompresses exercises the paper's reference-[8]
// direction — decision-diagram representations of probability vectors —
// on a real CDR stationary distribution: with terminals quantized at the
// solver tolerance, the diagram stores the vector in fewer nodes than the
// explicit float array (the deep tails collapse into shared subtrees),
// while the introduced error stays below the quantization step.
func TestStationaryVectorCompresses(t *testing.T) {
	p, err := RunPanel(Fig4Spec(false))
	if err != nil {
		t.Fatal(err)
	}
	pi := p.Analysis.Pi

	exact, err := pdd.FromVector(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if me, _ := exact.MaxAbsError(pi); me != 0 {
		t.Fatalf("exact diagram lossy: %g", me)
	}

	quant, err := pdd.FromVector(pi, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if quant.CompressionRatio() < 1.3 {
		t.Fatalf("compression ratio %.2f (nodes %d for %d entries)",
			quant.CompressionRatio(), quant.NumNodes(), len(pi))
	}
	me, err := quant.MaxAbsError(pi)
	if err != nil {
		t.Fatal(err)
	}
	if me > 1e-15 {
		t.Fatalf("quantization error %g", me)
	}
	// Mass is preserved through the shared-structure Sum.
	if s := quant.Sum(); s < 0.999999 || s > 1.000001 {
		t.Fatalf("diagram mass %g", s)
	}
}
