package experiments

import (
	"errors"
	"fmt"
	"math"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// Discretization and design-space studies.

// GridPoint is one row of a grid-convergence study.
type GridPoint struct {
	// GridDenom is 1/h.
	GridDenom int
	// States is the model size at this resolution.
	States int
	// BER is the converged bit error rate.
	BER float64
	// Cycles is the multigrid cycle count.
	Cycles int
}

// GridStudy quantifies the discretization error the paper's grid-fineness
// requirement controls: the same *physical* model — a continuous
// (Gaussian) accumulating noise with fixed mean and sigma, quantized onto
// each grid — is solved at successive resolutions. As h shrinks, the
// quantized dynamics approach the continuous ones and the BER converges;
// successive differences |BER(h/2) − BER(h)| should fall. nrSigma must be
// resolvable on the coarsest grid (σ_r ≳ h/3): a frozen quantized n_r
// degenerates the dynamics — the grid-fineness requirement the paper
// states for capturing "the small jumps in phase error due to n_r".
func GridStudy(denoms []int, nrMean, nrSigma, eyeSigma float64, counterLen int) ([]GridPoint, error) {
	if len(denoms) < 2 {
		return nil, errors.New("experiments: need at least two resolutions")
	}
	var out []GridPoint
	for _, denom := range denoms {
		if denom < 8 {
			return nil, fmt.Errorf("experiments: grid denom %d too coarse", denom)
		}
		h := 1.0 / float64(denom)
		// Quantize the physical n_r onto this grid, spanning ±5σ around
		// the mean (plus the mean itself).
		span := int(math.Ceil((math.Abs(nrMean) + 5*nrSigma) / h))
		if span < 1 {
			span = 1
		}
		drift, err := dist.Quantize(dist.NewGaussian(nrMean, nrSigma), h, -span, span)
		if err != nil {
			return nil, err
		}
		spec := core.Spec{
			GridStep:          h,
			PhaseMax:          0.75,
			CorrectionStep:    1.0 / 16,
			TransitionDensity: 0.5,
			MaxRunLength:      4,
			EyeJitter:         dist.NewGaussian(0, eyeSigma),
			Drift:             drift.Trim(),
			CounterLen:        counterLen,
			Threshold:         0.5,
		}
		p, err := RunPanel(spec)
		if err != nil {
			return nil, fmt.Errorf("grid 1/%d: %w", denom, err)
		}
		out = append(out, GridPoint{
			GridDenom: denom,
			States:    p.Model.NumStates(),
			BER:       p.Analysis.BER,
			Cycles:    p.Analysis.Multigrid.Cycles,
		})
	}
	return out, nil
}

// CounterPoint is one row of a counter-length design sweep.
type CounterPoint struct {
	CounterLen int
	BER        float64
	// MeanTimeBetweenSlips is the flux-based slip interval.
	MeanTimeBetweenSlips float64
}

// OptimalCounter evaluates the BER across candidate loop-filter lengths
// and returns the sweep together with the index of the best length — the
// design computation the paper's conclusion says the method enables
// ("there is an optimal counter length for given levels of noise, the
// computation of which is enabled by the accurate and efficient analysis
// method").
func OptimalCounter(mkSpec func(counterLen int) core.Spec, lengths []int, opts ...core.SolveOptions) ([]CounterPoint, int, error) {
	if len(lengths) == 0 {
		return nil, 0, errors.New("experiments: no candidate lengths")
	}
	out := make([]CounterPoint, 0, len(lengths))
	best := 0
	for i, l := range lengths {
		p, err := RunPanel(mkSpec(l), opts...)
		if err != nil {
			return nil, 0, fmt.Errorf("counter %d: %w", l, err)
		}
		out = append(out, CounterPoint{
			CounterLen:           l,
			BER:                  p.Analysis.BER,
			MeanTimeBetweenSlips: p.Slip.MeanTimeBetween,
		})
		if p.Analysis.BER < out[best].BER {
			best = i
		}
	}
	return out, best, nil
}
