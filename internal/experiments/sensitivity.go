package experiments

import (
	"errors"
	"fmt"

	"cdrstoch/internal/core"
	"cdrstoch/internal/spmat"
)

// BER sensitivity to a model parameter. The stationary expectation
// BER(θ) = π(θ)ᵀ·e(θ) moves with a parameter through two channels — the
// stationary vector (via the TPM) and the per-state error probabilities —
// and the chain rule splits cleanly:
//
//	dBER/dθ = (dπᵀ)·e + πᵀ·(de/dθ),
//
// where dπ = π·E·A# comes from the group inverse (markov.GroupInverse)
// with E = dP/dθ, and both E and de/dθ are evaluated by central finite
// differences of two cheap model *builds* (no extra solves). For models
// up to a few thousand states this prices a whole gradient at one dense
// linear solve — the "which knob moves the BER" question a designer asks
// before re-running the full analysis.

// SensitivityResult decomposes the BER derivative.
type SensitivityResult struct {
	// Total is dBER/dθ.
	Total float64
	// ViaStationary is the contribution through the stationary vector
	// (the loop's behavior changes).
	ViaStationary float64
	// ViaErrorProb is the contribution through the per-state error
	// probabilities (the decision tails change).
	ViaErrorProb float64
}

// BERSensitivity computes dBER/dθ at the given spec, where vary(θ)
// returns the spec with the parameter set to θ, and theta0/h give the
// evaluation point and the finite-difference half-step for building the
// perturbed TPMs. The base model is solved exactly (dense GTH), so the
// method suits models up to a few thousand states.
func BERSensitivity(vary func(theta float64) core.Spec, theta0, h float64) (SensitivityResult, error) {
	if h <= 0 {
		return SensitivityResult{}, errors.New("experiments: positive FD step required")
	}
	build := func(theta float64) (*core.Model, error) {
		spec := vary(theta)
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: spec at theta=%g: %w", theta, err)
		}
		return core.Build(spec)
	}
	m0, err := build(theta0)
	if err != nil {
		return SensitivityResult{}, err
	}
	mPlus, err := build(theta0 + h)
	if err != nil {
		return SensitivityResult{}, err
	}
	mMinus, err := build(theta0 - h)
	if err != nil {
		return SensitivityResult{}, err
	}
	n := m0.NumStates()
	if mPlus.NumStates() != n || mMinus.NumStates() != n {
		return SensitivityResult{}, errors.New("experiments: parameter changes the state space; sensitivity undefined")
	}

	pi, err := m0.SolveDirect()
	if err != nil {
		return SensitivityResult{}, err
	}
	ch, err := m0.Chain()
	if err != nil {
		return SensitivityResult{}, err
	}
	aSharp, err := ch.GroupInverse(pi)
	if err != nil {
		return SensitivityResult{}, err
	}

	// E = dP/dθ by central differences, assembled sparse.
	tr := spmat.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		merge := map[int]float64{}
		cols, vals := mPlus.P.Row(i)
		for k, j := range cols {
			merge[j] += vals[k]
		}
		cols, vals = mMinus.P.Row(i)
		for k, j := range cols {
			merge[j] -= vals[k]
		}
		for j, v := range merge {
			if v != 0 {
				tr.Add(i, j, v/(2*h))
			}
		}
	}
	e0 := m0.ErrorProbVector()
	viaPi, err := ch.MeasureSensitivity(pi, e0, tr.ToCSR(), aSharp)
	if err != nil {
		return SensitivityResult{}, err
	}

	// de/dθ by central differences of the error vectors.
	ePlus := mPlus.ErrorProbVector()
	eMinus := mMinus.ErrorProbVector()
	viaErr := 0.0
	for i := 0; i < n; i++ {
		viaErr += pi[i] * (ePlus[i] - eMinus[i]) / (2 * h)
	}
	return SensitivityResult{
		Total:         viaPi + viaErr,
		ViaStationary: viaPi,
		ViaErrorProb:  viaErr,
	}, nil
}
