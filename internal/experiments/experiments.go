// Package experiments pins down the calibrated configurations that
// regenerate the paper's figures, and shared helpers used by the command-
// line tools, the runnable examples and the benchmark harness. Each
// experiment is indexed in DESIGN.md; EXPERIMENTS.md records the measured
// outcomes against the paper's.
//
// The paper's own numeric annotations are largely lost to OCR damage; the
// configurations here were calibrated (see DESIGN.md §2) so that the
// *shape* of each result matches the paper's prose exactly: Figure 4's
// negligible-vs-visible BER as the eye jitter grows, and Figure 5's
// interior BER optimum at counter length 8 within {2, 8, 32}.
package experiments

import (
	"fmt"
	"io"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/obs"
	"cdrstoch/internal/passage"
)

// Fig5Lengths are the counter lengths compared in Figure 5. The paper's
// panel labels are OCR-damaged ("?", "8", "?"); the prose demands a short
// length whose loop follows n_w, the optimum at 8, and a long length too
// slow for the n_r drift.
var Fig5Lengths = []int{2, 8, 32}

// BaseSpec is the calibrated model shared by the figure experiments:
// 1/64-UI grid on ±0.75 UI, 1/16-UI correction step, SONET-style data
// (density 1/2, max run 4), and a bounded skewed n_r with mean 2e−4 UI/bit
// (frequency offset) and MAXnr = 1/32 UI.
func BaseSpec() core.Spec {
	s := core.DefaultSpec()
	drift, err := dist.DriftPMF(dist.DriftSpec{
		Step:  s.GridStep,
		Max:   2 * s.GridStep,
		Mean:  0.0002,
		Shape: 0.05,
	})
	if err != nil {
		panic("experiments: drift construction failed: " + err.Error())
	}
	s.Drift = drift
	return s
}

// Fig4Spec returns the Figure 4 configuration: counter length 8 with low
// (σ = 0.02 UI) or high (σ = 0.08 UI, 4×) Gaussian eye jitter. The paper:
// "the noise levels are so small that the CDR system has negligible BER;
// when the standard deviation of the noise source n_w … is increased …
// the BER increases".
func Fig4Spec(highNoise bool) core.Spec {
	s := BaseSpec()
	s.CounterLen = 8
	sigma := 0.02
	if highNoise {
		sigma = 0.08
	}
	s.EyeJitter = dist.NewGaussian(0, sigma)
	return s
}

// Fig5Spec returns the Figure 5 configuration for a given counter length:
// σ = 0.09 UI eye jitter against the BaseSpec drift, which places the BER
// optimum at counter length 8.
func Fig5Spec(counterLen int) core.Spec {
	s := BaseSpec()
	s.CounterLen = counterLen
	s.EyeJitter = dist.NewGaussian(0, 0.09)
	return s
}

// ScaledSpec refines the BaseSpec grid by the given power-of-two factor
// (1 → 1/64 UI, 2 → 1/128 UI, …), growing the state space proportionally.
// The n_r jumps are re-quantized at the new grid step — the paper's point
// that the grid must be "fine enough to accurately capture the small jumps
// in phase error due to n_r" — so the phase diffusion slows as the grid
// refines and classical iterations degrade while multigrid cycles stay
// level. Used by the solver-scaling experiment (the paper's "million state
// problems in less than an hour" claim, scaled to CI budgets).
func ScaledSpec(refine int) (core.Spec, error) {
	if refine < 1 {
		return core.Spec{}, fmt.Errorf("experiments: refine factor %d < 1", refine)
	}
	s := BaseSpec()
	s.GridStep /= float64(refine)
	drift, err := dist.DriftPMF(dist.DriftSpec{
		Step:  s.GridStep,
		Max:   2 * s.GridStep, // jumps live at the grid scale
		Mean:  0.0002,
		Shape: 0.05,
	})
	if err != nil {
		return core.Spec{}, err
	}
	s.Drift = drift
	s.EyeJitter = dist.NewGaussian(0, 0.08)
	return s, nil
}

// Panel is one solved figure panel with everything the paper annotates.
type Panel struct {
	Model    *core.Model
	Analysis *core.Analysis
	Slip     passage.FluxResult
}

// RunPanel builds and solves a figure panel. An optional SolveOptions
// (first value wins) forwards solver knobs — notably the parallel worker
// count — to the stationary solve.
func RunPanel(spec core.Spec, opts ...core.SolveOptions) (*Panel, error) {
	m, err := core.Build(spec)
	if err != nil {
		return nil, err
	}
	var opt core.SolveOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	a, err := m.Solve(opt)
	if err != nil {
		return nil, err
	}
	slip, err := m.SlipStats(a.Pi)
	if err != nil {
		return nil, err
	}
	return &Panel{Model: m, Analysis: a, Slip: slip}, nil
}

// WriteCSV emits the two density series of a figure panel (stationary
// phase-error PDF and the PD input Φ+n_w PDF) as CSV with a header row.
func (p *Panel) WriteCSV(w io.Writer) error {
	pdf := p.Model.PhasePDF(p.Analysis.Pi)
	lo, hi := -1.0, 1.0
	n := 256
	jpdf, err := p.Model.PhasePlusJitterPDF(p.Analysis.Pi, lo, hi, n)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "series,phase_ui,density"); err != nil {
		return err
	}
	for mi, v := range pdf {
		if _, err := fmt.Fprintf(w, "phase,%.6f,%.6e\n", p.Model.PhaseValue(mi), v); err != nil {
			return err
		}
	}
	width := (hi - lo) / float64(n)
	for j, v := range jpdf {
		x := lo + (float64(j)+0.5)*width
		if _, err := fmt.Fprintf(w, "phase_plus_nw,%.6f,%.6e\n", x, v); err != nil {
			return err
		}
	}
	return nil
}

// Annotate writes the paper-style header and footer annotation lines.
func (p *Panel) Annotate(w io.Writer) error {
	if _, err := fmt.Fprintln(w, p.Model.FigureHeader(p.Analysis.BER)); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, p.Model.FigureFooter(p.Analysis))
	return err
}

// SolverRow is one row of the solver-comparison table (experiment T1).
type SolverRow struct {
	Name string
	// Iterations counts solver-specific units: sweeps for the classical
	// methods, cycles for multigrid.
	Iterations int
	// SweepEquivalents approximates total work in units of one fine-level
	// matrix sweep.
	SweepEquivalents int
	Residual         float64
	Converged        bool
	Elapsed          time.Duration
	// Slope is the least-squares residual-decay rate fitted over the
	// solver's traced per-iteration residuals, in log10 decades per
	// iteration (negative when converging; NaN when under two points).
	Slope float64
	// SlopePoints is the number of trace points the fit used.
	SlopePoints int
}

// CompareSolvers runs the classical iterations and the multilevel solver
// on one model at the given tolerance and returns the comparison table —
// the quantitative form of the paper's Numerical Methods section. Each
// solver runs under its own residual-trajectory collector (forwarded to
// trace when non-nil), from which the per-solver decay slope is fitted.
func CompareSolvers(m *core.Model, tol float64, maxSweeps int, trace obs.Tracer) ([]SolverRow, error) {
	ch, err := m.Chain()
	if err != nil {
		return nil, err
	}
	var rows []SolverRow
	add := func(name string, iters, sweepEq int, resid float64, conv bool, dt time.Duration, col *obs.Collector, event string) {
		slope, points := obs.DecaySlope(col.Events(), event)
		rows = append(rows, SolverRow{
			Name: name, Iterations: iters, SweepEquivalents: sweepEq,
			Residual: resid, Converged: conv, Elapsed: dt,
			Slope: slope, SlopePoints: points,
		})
	}

	col := obs.NewCollector(trace)
	start := time.Now()
	pw, err := ch.StationaryPower(markov.Options{Tol: tol, MaxIter: maxSweeps, Damping: 0.95, Trace: col})
	if err != nil {
		return nil, err
	}
	add("power(0.95)", pw.Iterations, pw.Iterations, pw.Residual, pw.Converged, time.Since(start), col, "power")

	col = obs.NewCollector(trace)
	start = time.Now()
	ja, err := ch.StationaryJacobi(markov.Options{Tol: tol, MaxIter: maxSweeps, Damping: 0.8, Trace: col})
	if err != nil {
		return nil, err
	}
	add("jacobi(0.8)", ja.Iterations, ja.Iterations, ja.Residual, ja.Converged, time.Since(start), col, "jacobi")

	col = obs.NewCollector(trace)
	start = time.Now()
	gs, err := ch.StationaryGaussSeidel(markov.Options{Tol: tol, MaxIter: maxSweeps, Trace: col})
	if err != nil {
		return nil, err
	}
	add("gauss-seidel", gs.Iterations, gs.Iterations, gs.Residual, gs.Converged, time.Since(start), col, "gauss-seidel")

	col = obs.NewCollector(trace)
	start = time.Now()
	gm, err := ch.StationaryGMRES(markov.GMRESOptions{Tol: tol, Restart: 30, MaxIter: maxSweeps, Trace: col})
	if err != nil {
		return nil, err
	}
	add("gmres(30)", gm.Iterations, gm.Iterations, gm.Residual, gm.Converged, time.Since(start), col, "gmres")

	for _, mg := range []struct {
		name string
		cfg  multigrid.Config
	}{
		{"mg-vcycle", multigrid.Config{Tol: tol, PreSmooth: 2, PostSmooth: 2, Cycle: multigrid.VCycle}},
		{"mg-wcycle", multigrid.Config{Tol: tol, PreSmooth: 2, PostSmooth: 2, Cycle: multigrid.WCycle}},
	} {
		parts, err := m.Hierarchy(4)
		if err != nil {
			return nil, err
		}
		col = obs.NewCollector(trace)
		mg.cfg.Trace = col
		solver, err := multigrid.New(m.P, parts, mg.cfg)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		res, err := solver.Solve(nil)
		if err != nil {
			return nil, err
		}
		levels := len(res.LevelSizes)
		perCycle := 4 * levels // V-cycle approximation
		if mg.cfg.Cycle == multigrid.WCycle {
			perCycle = 8 * levels
		}
		add(mg.name, res.Cycles, res.Cycles*perCycle, res.Residual, res.Converged, time.Since(start), col, "multigrid")
	}
	return rows, nil
}

// WriteSolverTable renders the comparison rows as an aligned text table.
// The decay column is the traced residual-decay slope in log10 decades
// per iteration (more negative = faster convergence).
func WriteSolverTable(w io.Writer, rows []SolverRow) error {
	if _, err := fmt.Fprintf(w, "%-14s %10s %12s %12s %10s %10s %12s\n",
		"solver", "iters", "sweep-equiv", "residual", "converged", "seconds", "decay/iter"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-14s %10d %12d %12.3e %10v %10.3f %12.4f\n",
			r.Name, r.Iterations, r.SweepEquivalents, r.Residual, r.Converged,
			r.Elapsed.Seconds(), r.Slope); err != nil {
			return err
		}
	}
	return nil
}
