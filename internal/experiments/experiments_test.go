package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cdrstoch/internal/core"
)

func TestBaseSpecValid(t *testing.T) {
	if err := BaseSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Specs(t *testing.T) {
	low := Fig4Spec(false)
	high := Fig4Spec(true)
	if low.CounterLen != 8 || high.CounterLen != 8 {
		t.Error("Figure 4 fixes the counter length at 8")
	}
	if high.EyeJitter.Std() != 4*low.EyeJitter.Std() {
		t.Errorf("high/low sigma ratio = %g, want 4",
			high.EyeJitter.Std()/low.EyeJitter.Std())
	}
}

func TestFig5SpecLengths(t *testing.T) {
	if len(Fig5Lengths) != 3 || Fig5Lengths[1] != 8 {
		t.Fatalf("Fig5Lengths = %v", Fig5Lengths)
	}
	for _, l := range Fig5Lengths {
		if err := Fig5Spec(l).Validate(); err != nil {
			t.Errorf("Fig5Spec(%d): %v", l, err)
		}
	}
}

// TestFig4Shape: the paper's Figure 4 contrast — negligible BER at low
// noise, sharply higher when the eye jitter quadruples.
func TestFig4Shape(t *testing.T) {
	low, err := RunPanel(Fig4Spec(false))
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunPanel(Fig4Spec(true))
	if err != nil {
		t.Fatal(err)
	}
	if low.Analysis.BER > 1e-9 {
		t.Errorf("low-noise BER %.3e not negligible", low.Analysis.BER)
	}
	if high.Analysis.BER < 1e3*low.Analysis.BER {
		t.Errorf("BER contrast too small: low %.3e, high %.3e",
			low.Analysis.BER, high.Analysis.BER)
	}
}

// TestFig5Shape: the paper's Figure 5 conclusion — an interior optimum at
// counter length 8, worse at both shorter and longer lengths.
func TestFig5Shape(t *testing.T) {
	ber := map[int]float64{}
	for _, l := range Fig5Lengths {
		p, err := RunPanel(Fig5Spec(l))
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		ber[l] = p.Analysis.BER
	}
	if !(ber[8] < ber[2] && ber[8] < ber[32]) {
		t.Fatalf("no interior optimum at 8: %v", ber)
	}
	if ber[2]/ber[8] < 1.5 {
		t.Errorf("short-counter penalty only %.2fx", ber[2]/ber[8])
	}
	if ber[32]/ber[8] < 2 {
		t.Errorf("long-counter penalty only %.2fx", ber[32]/ber[8])
	}
}

func TestScaledSpec(t *testing.T) {
	s, err := ScaledSpec(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	base := BaseSpec()
	if s.GridStep != base.GridStep/2 {
		t.Error("grid not refined")
	}
	m, err := core.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := core.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() <= mb.NumStates() {
		t.Error("refinement did not grow the state space")
	}
	if _, err := ScaledSpec(0); err == nil {
		t.Error("refine=0 accepted")
	}
}

func TestPanelOutputs(t *testing.T) {
	p, err := RunPanel(Fig4Spec(true))
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.HasPrefix(out, "series,phase_ui,density\n") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(out, "phase,") || !strings.Contains(out, "phase_plus_nw,") {
		t.Error("missing series")
	}
	var ann bytes.Buffer
	if err := p.Annotate(&ann); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"COUNTER:", "BER:", "Size:", "Solvetime:"} {
		if !strings.Contains(ann.String(), want) {
			t.Errorf("annotation missing %q", want)
		}
	}
	if p.Slip.Flux <= 0 {
		t.Error("slip flux must be positive on the high-noise panel")
	}
}

// TestCompareSolvers verifies the paper's Numerical Methods claims in
// their honest, measurable form: every solver reaches the same fixed
// point; the multilevel method needs orders of magnitude fewer iterations
// than the basic iterations it accelerates; and as the grid refines, the
// classical sweep counts grow with the slowing phase diffusion while the
// multigrid cycle count stays nearly level.
func TestCompareSolvers(t *testing.T) {
	run := func(refine int) map[string]SolverRow {
		s, err := ScaledSpec(refine)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.Build(s)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := CompareSolvers(m, 1e-10, 50000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 6 {
			t.Fatalf("rows = %d", len(rows))
		}
		byName := map[string]SolverRow{}
		for _, r := range rows {
			if !r.Converged {
				t.Fatalf("refine %d: %s did not converge: %+v", refine, r.Name, r)
			}
			if r.SlopePoints < 2 || !(r.Slope < 0) {
				t.Errorf("refine %d: %s decay slope %g over %d points, want negative fit",
					refine, r.Name, r.Slope, r.SlopePoints)
			}
			byName[r.Name] = r
		}
		var buf bytes.Buffer
		if err := WriteSolverTable(&buf, rows); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "mg-wcycle") {
			t.Error("table missing multigrid row")
		}
		return byName
	}
	r1 := run(2)
	r2 := run(4)

	// Multigrid accelerates the basic iterations: ≥5× fewer iterations
	// than power at both scales.
	for _, r := range []map[string]SolverRow{r1, r2} {
		if r["power(0.95)"].Iterations < 5*r["mg-wcycle"].Iterations {
			t.Errorf("power %d iters vs mg %d cycles: acceleration too small",
				r["power(0.95)"].Iterations, r["mg-wcycle"].Iterations)
		}
	}
	// Scalability: classical sweeps grow with refinement, multigrid cycles
	// stay level (within 2×).
	if r2["gauss-seidel"].Iterations < r1["gauss-seidel"].Iterations*3/2 {
		t.Errorf("GS sweeps did not grow under refinement: %d -> %d",
			r1["gauss-seidel"].Iterations, r2["gauss-seidel"].Iterations)
	}
	if r2["mg-wcycle"].Iterations > 2*r1["mg-wcycle"].Iterations {
		t.Errorf("multigrid cycles not level: %d -> %d",
			r1["mg-wcycle"].Iterations, r2["mg-wcycle"].Iterations)
	}
}
