package experiments

import (
	"math"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// varySigma returns the smallSpec family parameterized by the eye-jitter
// standard deviation.
func varySigma(t testing.TB) func(float64) core.Spec {
	t.Helper()
	base := smallSpec(t)
	return func(sigma float64) core.Spec {
		s := base
		s.EyeJitter = dist.NewGaussian(0, sigma)
		return s
	}
}

func TestBERSensitivityMatchesFullFD(t *testing.T) {
	vary := varySigma(t)
	theta0, h := 0.08, 1e-4
	res, err := BERSensitivity(vary, theta0, h)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: central differences of the fully re-solved BER.
	ber := func(sigma float64) float64 {
		m, err := core.Build(vary(sigma))
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.SolveDirect()
		if err != nil {
			t.Fatal(err)
		}
		return m.BER(pi)
	}
	fd := (ber(theta0+h) - ber(theta0-h)) / (2 * h)
	if rel := math.Abs(res.Total-fd) / math.Abs(fd); rel > 1e-3 {
		t.Fatalf("sensitivity %g vs full FD %g (rel %g)", res.Total, fd, rel)
	}
	// More eye jitter must hurt, through both channels.
	if res.Total <= 0 || res.ViaErrorProb <= 0 {
		t.Fatalf("unexpected signs: %+v", res)
	}
}

func TestBERSensitivityDriftMean(t *testing.T) {
	base := smallSpec(t)
	vary := func(mean float64) core.Spec {
		s := base
		d, err := dist.DriftPMF(dist.DriftSpec{
			Step: s.GridStep, Max: 2 * s.GridStep, Mean: mean, Shape: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Drift = d
		return s
	}
	res, err := BERSensitivity(vary, 0.002, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// A drift-mean change acts only through the loop dynamics: the error
	// tails are untouched, so the error-probability channel vanishes.
	if res.ViaErrorProb != 0 {
		t.Fatalf("drift mean leaked into the error channel: %g", res.ViaErrorProb)
	}
	if res.Total <= 0 {
		t.Fatalf("more drift should raise the BER: %+v", res)
	}
}

func TestBERSensitivityValidation(t *testing.T) {
	vary := varySigma(t)
	if _, err := BERSensitivity(vary, 0.08, 0); err == nil {
		t.Error("zero step accepted")
	}
	// A family that turns invalid on the minus side of the FD stencil.
	base0 := smallSpec(t)
	densityVary := func(p float64) core.Spec {
		s := base0
		s.TransitionDensity = p
		return s
	}
	if _, err := BERSensitivity(densityVary, 0.00005, 1e-4); err == nil {
		t.Error("invalid spec family accepted")
	}
	// A parameter that changes the state space is rejected.
	base := smallSpec(t)
	badVary := func(pm float64) core.Spec {
		s := base
		s.PhaseMax = pm
		return s
	}
	if _, err := BERSensitivity(badVary, 0.5, 1.0/16); err == nil {
		t.Error("state-space-changing parameter accepted")
	}
}
