package sweep

import (
	"context"
	"math"
	"testing"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
	"cdrstoch/internal/obs/cost"
)

// testSpec is a fast model whose TPM pattern is stable under small
// eye-jitter changes (the value-only refresh path).
func testSpec(t testing.TB, sigma float64, counterLen int) core.Spec {
	t.Helper()
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 16, Shape: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, sigma),
		Drift:             drift,
		CounterLen:        counterLen,
		Threshold:         0.5,
	}
}

func sigmaSweep() []float64 {
	return []float64{0.050, 0.052, 0.054, 0.056, 0.058}
}

// freshPoint solves one spec in a brand-new session: the from-scratch
// reference every sweep comparison is held against.
func freshPoint(t *testing.T, spec core.Spec, opt Options) *Point {
	t.Helper()
	pt, err := New(opt).Solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// TestSessionRefreshByteIdentical is the satellite guarantee of the
// value-only refresh: with warm starts disabled, a continued session —
// which refreshes values into the first point's hierarchy in place — must
// produce stationary vectors byte-identical to from-scratch builds, point
// for point. Identical floating-point operations, identical bytes.
func TestSessionRefreshByteIdentical(t *testing.T) {
	opt := Options{NoWarmStart: true}
	sess := New(opt)
	for i, sigma := range sigmaSweep() {
		spec := testSpec(t, sigma, 3)
		got, err := sess.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("sigma %g: %v", sigma, err)
		}
		if wantReuse := i > 0; got.ReusedSetup != wantReuse {
			t.Fatalf("sigma %g: ReusedSetup = %v, want %v", sigma, got.ReusedSetup, wantReuse)
		}
		if got.WarmStarted {
			t.Fatalf("sigma %g: warm start with NoWarmStart", sigma)
		}
		want := freshPoint(t, spec, opt)
		if len(want.Analysis.Pi) != len(got.Analysis.Pi) {
			t.Fatalf("sigma %g: dimension mismatch", sigma)
		}
		for j := range want.Analysis.Pi {
			if want.Analysis.Pi[j] != got.Analysis.Pi[j] {
				t.Fatalf("sigma %g: pi[%d] = %g (refresh) vs %g (fresh)",
					sigma, j, got.Analysis.Pi[j], want.Analysis.Pi[j])
			}
		}
	}
	st := sess.Stats()
	if st.Points != len(sigmaSweep()) || st.ReusedSetup != len(sigmaSweep())-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionPatternFallback covers the rebuild path: a counter-length
// change alters the state space, so the session must rebuild the
// hierarchy (ReusedSetup false) and still match from-scratch solves
// byte-identically — and a return to a previously seen pattern must not
// resurrect the stale continuation chain.
func TestSessionPatternFallback(t *testing.T) {
	opt := Options{NoWarmStart: true}
	sess := New(opt)
	for _, counter := range []int{2, 3, 2} {
		spec := testSpec(t, 0.05, counter)
		got, err := sess.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("counter %d: %v", counter, err)
		}
		if got.ReusedSetup {
			t.Fatalf("counter %d: setup reused across pattern change", counter)
		}
		want := freshPoint(t, spec, opt)
		for j := range want.Analysis.Pi {
			if want.Analysis.Pi[j] != got.Analysis.Pi[j] {
				t.Fatalf("counter %d: pi[%d] differs after rebuild", counter, j)
			}
		}
	}
}

// TestSessionWarmStartAccuracyAndCost checks the continuation path: warm
// starts engage from the second point, every point still converges to the
// same tolerance — BER agrees with the from-scratch solve to solver
// accuracy — and the cost meter records both the warm-start flag and the
// reduced cycle counts the acceptance criteria require.
func TestSessionWarmStartAccuracyAndCost(t *testing.T) {
	sess := New(Options{})
	var coldCycles, warmCycles int64
	for i, sigma := range sigmaSweep() {
		meter := cost.NewMeter()
		ctx := cost.ContextWith(context.Background(), meter)
		spec := testSpec(t, sigma, 3)
		got, err := sess.Solve(ctx, spec)
		if err != nil {
			t.Fatalf("sigma %g: %v", sigma, err)
		}
		rep := meter.Finish()
		if i == 0 {
			if got.WarmStarted || rep.WarmStarted {
				t.Fatal("first point cannot be warm-started")
			}
			coldCycles = rep.Cycles
		} else {
			if !got.WarmStarted {
				t.Fatalf("sigma %g: continuation did not engage", sigma)
			}
			if !rep.WarmStarted {
				t.Fatalf("sigma %g: meter missed the warm-start mark", sigma)
			}
			if got.SeedResidual <= 0 || got.SeedResidual > 0.5 {
				t.Fatalf("sigma %g: implausible seed residual %g", sigma, got.SeedResidual)
			}
			warmCycles = rep.Cycles
			if !got.Fallback && warmCycles >= coldCycles {
				t.Errorf("sigma %g: warm-started point took %d cycles, cold took %d",
					sigma, warmCycles, coldCycles)
			}
		}
		if !got.Analysis.Multigrid.Converged {
			t.Fatalf("sigma %g: unconverged point returned", sigma)
		}
		want := freshPoint(t, spec, Options{NoWarmStart: true})
		if d := math.Abs(want.Analysis.BER - got.Analysis.BER); d > 1e-9*(want.Analysis.BER+1e-300) {
			t.Fatalf("sigma %g: BER %g (warm) vs %g (fresh), diff %g",
				sigma, got.Analysis.BER, want.Analysis.BER, d)
		}
	}
	st := sess.Stats()
	if st.WarmStarted != len(sigmaSweep())-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionContextCancel checks a canceled context stops the chain with
// an error instead of a bogus point.
func TestSessionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(Options{}).Solve(ctx, testSpec(t, 0.05, 3)); err == nil {
		t.Fatal("canceled solve returned nil error")
	}
}

// TestSessionBadSpec checks spec validation surfaces before any solver
// state is touched.
func TestSessionBadSpec(t *testing.T) {
	spec := testSpec(t, 0.05, 3)
	spec.GridStep = -1
	if _, err := New(Options{}).Solve(context.Background(), spec); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
