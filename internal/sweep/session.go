// Package sweep is the batched sweep engine: a Session amortizes
// everything shared across a parameter sweep of the CDR model. Neighboring
// sweep points differ only smoothly, which the point-at-a-time path
// (core.Model.Solve) cannot exploit — it rebuilds the lumping plans,
// transposes, and multigrid hierarchy from scratch and solves every point
// from the uniform vector with robust W-cycles.
//
// A Session instead keeps three things alive between points:
//
//  1. Symbolic setup. The multigrid hierarchy — partition chain, lump
//     plans, coarse patterns, transposes, iterate buffers — is built once.
//     When the next spec's TPM has the identical CSR pattern, only the
//     values are refreshed in place (Solver.RefreshFine through the stored
//     transpose permutation); the coarse levels re-lump by value anyway on
//     every cycle, so they need no attention. A pattern or dimension
//     change falls back to a full rebuild.
//
//  2. Warm-start continuation. Each point's solve can start from its
//     neighbor's converged vector. The Session scores its candidate
//     seeds — the previous solution, linear and quadratic extrapolations
//     through the previous two or three, and the uniform vector — in one
//     blocked SpMM traversal (Solver.Residuals over Pool.MulVecs) and
//     starts from the best.
//
//  3. Cycle-kind continuation. W-cycles visit level k 2^k times, so every
//     level costs about as much as the finest per cycle — the right
//     robustness for a cold start, ~len(levels)× overkill within a few
//     grid steps of the answer. Warm-started points therefore run cheap
//     V-cycles; if one fails to converge the Session transparently re-runs
//     the point cold with the configured W-cycles, so accuracy is never
//     traded: every returned point satisfies the same residual tolerance.
package sweep

import (
	"context"
	"fmt"
	"time"

	"cdrstoch/internal/core"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/obs/cost"
	"cdrstoch/internal/spmat"
)

// Options configures a Session.
type Options struct {
	// Solve carries the cold-start solver configuration (defaults match
	// core.SolveOptions: W-cycles, 2+2 smoothing, 1e−12) and MinSegLen.
	// Solve.Multigrid.Pool / Workers select the worker team; Ctx and any
	// cost Meter are taken per point from the context given to Solve.
	Solve core.SolveOptions
	// NoWarmStart disables seed selection and cycle-kind continuation:
	// every point solves cold with the configured cycle kind. Setup reuse
	// (symbolic refresh) still applies. For tests and baselines.
	NoWarmStart bool
}

// Point is one solved sweep point.
type Point struct {
	// Model is the point's freshly assembled model (measures like BER,
	// SlipStats, and marginals hang off it).
	Model *core.Model
	// Analysis bundles the stationary solution and solver statistics,
	// exactly as core.Model.Solve would return.
	Analysis *core.Analysis
	// ReusedSetup is true when the point refreshed values into the
	// previous hierarchy instead of rebuilding it.
	ReusedSetup bool
	// WarmStarted is true when the solve started from a neighbor-derived
	// seed rather than the uniform vector.
	WarmStarted bool
	// SeedResidual is the ‖xP − x‖₁ of the chosen initial iterate (1 − the
	// quality of the continuation guess; the uniform vector on cold
	// points).
	SeedResidual float64
	// Continuation is true when the point ran the cheap V-cycle
	// continuation; Fallback is true when that failed to converge and the
	// point was transparently re-solved cold.
	Continuation bool
	Fallback     bool
}

// Stats are cumulative Session counters.
type Stats struct {
	// Points counts solved points; ReusedSetup and WarmStarted count how
	// many of them hit each fast path; Fallbacks counts continuation
	// solves that had to be redone cold.
	Points      int
	ReusedSetup int
	WarmStarted int
	Fallbacks   int
	// Cycles is the total multigrid cycles across all points, including
	// fallback re-solves.
	Cycles int64
}

// Session is a stateful sweep executor. Not safe for concurrent use: a
// sweep is a chain, each point seeded by the last — callers wanting
// parallelism run one Session per chain.
type Session struct {
	opt     Options
	solver  *multigrid.Solver
	fine    *spmat.CSR // finest matrix owned by solver; pattern reference
	prev    []float64  // last converged solution
	prev2   []float64  // the one before it
	prev3   []float64  // and the one before that
	extrap  []float64  // linear-extrapolation scratch
	extrap2 []float64  // quadratic-extrapolation scratch
	uni     []float64  // uniform-candidate scratch
	stats   Stats
}

// New returns an empty session; the first Solve builds the hierarchy.
func New(opt Options) *Session {
	return &Session{opt: opt}
}

// Stats returns the cumulative counters.
func (s *Session) Stats() Stats { return s.stats }

// coldConfig materializes the cold-start multigrid configuration with
// core's defaults applied, forced refreshable so later points can rewrite
// values in place.
func (s *Session) coldConfig() (multigrid.Config, int) {
	o := s.opt.Solve
	if o.MinSegLen <= 0 {
		o.MinSegLen = 4
	}
	cfg := o.Multigrid
	if cfg.Cycle == multigrid.VCycle && cfg.PreSmooth == 0 && cfg.PostSmooth == 0 {
		cfg.Cycle = multigrid.WCycle
		cfg.PreSmooth = 2
		cfg.PostSmooth = 2
	}
	cfg.Refreshable = true
	return cfg, o.MinSegLen
}

// Solve assembles and solves one sweep point, reusing the previous
// point's symbolic setup and solution where valid. ctx is consulted at
// every cycle boundary and may carry a cost.Meter; the meter receives the
// point's cycles, kernel counts, and warm-start flag.
func (s *Session) Solve(ctx context.Context, spec core.Spec) (*Point, error) {
	m, err := core.Build(spec)
	if err != nil {
		return nil, err
	}
	pt := &Point{Model: m}
	cfg, minSeg := s.coldConfig()
	if s.solver != nil && spmat.SamePattern(s.fine, m.P) {
		if err := s.solver.RefreshFine(m.P); err != nil {
			return nil, err
		}
		pt.ReusedSetup = true
	} else {
		parts, err := m.Hierarchy(minSeg)
		if err != nil {
			return nil, err
		}
		solver, err := multigrid.New(m.P, parts, cfg)
		if err != nil {
			return nil, err
		}
		s.solver, s.fine = solver, m.P
	}
	n := m.NumStates()
	if s.prev != nil && len(s.prev) != n {
		// Dimension change: the continuation chain is broken.
		s.prev, s.prev2, s.prev3 = nil, nil, nil
	}

	meter := cost.FromContext(ctx)
	seed, seedRes := s.chooseSeed(n)
	s.solver.SetSolveContext(ctx)
	kind := cfg.Cycle
	if seed != nil {
		// Warm start: the iterate is already near the answer, so the cheap
		// V-cycle suffices; non-convergence falls back below.
		kind = multigrid.VCycle
		pt.WarmStarted = true
		pt.Continuation = true
		meter.MarkWarmStarted()
	}
	pt.SeedResidual = seedRes
	s.solver.SetCycle(kind)
	start := time.Now()
	res, err := s.solver.Solve(seed)
	if err != nil {
		return nil, err
	}
	if !res.Converged && pt.Continuation {
		// The continuation gamble failed; re-solve cold with the robust
		// configured cycle kind so accuracy never degrades.
		pt.Fallback = true
		s.stats.Fallbacks++
		s.stats.Cycles += int64(res.Cycles)
		s.solver.SetCycle(cfg.Cycle)
		res, err = s.solver.Solve(nil)
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	s.stats.Points++
	s.stats.Cycles += int64(res.Cycles)
	if pt.ReusedSetup {
		s.stats.ReusedSetup++
	}
	if pt.WarmStarted {
		s.stats.WarmStarted++
	}
	if !res.Converged {
		return nil, fmt.Errorf("sweep: multigrid %w: %v", core.ErrUnconverged, res)
	}
	s.prev3, s.prev2, s.prev = s.prev2, s.prev, res.Pi
	pt.Analysis = &core.Analysis{
		Pi:        res.Pi,
		BER:       m.BER(res.Pi),
		Multigrid: res,
		SolveTime: elapsed,
	}
	return pt, nil
}

// chooseSeed scores the candidate initial iterates — previous solution,
// linear and quadratic extrapolations through the previous two or three,
// uniform — in one blocked SpMM traversal and returns the best
// non-uniform seed, or nil when the uniform vector wins (cold start) or
// warm starts are disabled. The returned residual is the chosen
// candidate's ‖xP − x‖₁.
func (s *Session) chooseSeed(n int) ([]float64, float64) {
	if s.opt.NoWarmStart || s.prev == nil {
		return nil, 0
	}
	if s.uni == nil || len(s.uni) != n {
		s.uni = make([]float64, n)
	}
	for i := range s.uni {
		s.uni[i] = 1 / float64(n)
	}
	cands := [][]float64{s.uni, s.prev}
	if s.prev2 != nil {
		cands = append(cands, s.extrapolate(n))
	}
	if s.prev3 != nil {
		cands = append(cands, s.extrapolateQuad(n))
	}
	res := s.solver.Residuals(cands)
	best := 0
	for b := 1; b < len(res); b++ {
		if res[b] < res[best] {
			best = b
		}
	}
	if best == 0 {
		return nil, res[0]
	}
	return cands[best], res[best]
}

// extrapolate fills the scratch buffer with the normalized, clamped
// linear continuation 2·prev − prev2 — first-order in the sweep step, so
// its residual is typically orders of magnitude below the previous
// solution's.
func (s *Session) extrapolate(n int) []float64 {
	if s.extrap == nil || len(s.extrap) != n {
		s.extrap = make([]float64, n)
	}
	sum := 0.0
	for i := range s.extrap {
		v := 2*s.prev[i] - s.prev2[i]
		if v < 0 {
			v = 0
		}
		s.extrap[i] = v
		sum += v
	}
	if sum <= 0 {
		copy(s.extrap, s.prev)
		return s.extrap
	}
	inv := 1 / sum
	for i := range s.extrap {
		s.extrap[i] *= inv
	}
	return s.extrap
}

// extrapolateQuad fills the scratch buffer with the normalized, clamped
// quadratic continuation 3·prev − 3·prev2 + prev3 (Newton forward
// difference through three equally spaced points) — second-order in the
// sweep step. On a smooth axis its residual sits a further one to two
// orders below the linear extrapolation's, which the residual scoring
// confirms or rejects per point.
func (s *Session) extrapolateQuad(n int) []float64 {
	if s.extrap2 == nil || len(s.extrap2) != n {
		s.extrap2 = make([]float64, n)
	}
	sum := 0.0
	for i := range s.extrap2 {
		v := 3*s.prev[i] - 3*s.prev2[i] + s.prev3[i]
		if v < 0 {
			v = 0
		}
		s.extrap2[i] = v
		sum += v
	}
	if sum <= 0 {
		copy(s.extrap2, s.prev)
		return s.extrap2
	}
	inv := 1 / sum
	for i := range s.extrap2 {
		s.extrap2[i] *= inv
	}
	return s.extrap2
}
