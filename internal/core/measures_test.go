package core

import (
	"math"
	"testing"

	"cdrstoch/internal/dist"
)

func solvedTiny(t *testing.T) (*Model, []float64) {
	t.Helper()
	m := buildTiny(t)
	pi, err := m.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	return m, pi
}

func TestBERAtOffsetCenterMatchesBER(t *testing.T) {
	m, pi := solvedTiny(t)
	if d := math.Abs(m.BERAtOffset(pi, 0) - m.BER(pi)); d > 1e-18 {
		t.Fatalf("centered offset BER differs by %g", d)
	}
}

func TestBathtubShape(t *testing.T) {
	m, pi := solvedTiny(t)
	offsets, ber, err := m.Bathtub(pi, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 41 || len(ber) != 41 {
		t.Fatal("bathtub length")
	}
	center := 20
	// Walls must rise monotonically-ish from the floor: the edge values
	// must dominate the center by orders of magnitude.
	if ber[0] < 10*ber[center] || ber[40] < 10*ber[center] {
		t.Fatalf("bathtub walls too low: %g / %g / %g", ber[0], ber[center], ber[40])
	}
	// The curve is a valid probability everywhere.
	for i, b := range ber {
		if b < 0 || b > 1 {
			t.Fatalf("ber[%d] = %g", i, b)
		}
	}
	if _, _, err := m.Bathtub(pi, 2); err == nil {
		t.Error("degenerate bathtub accepted")
	}
}

func TestEyeOpening(t *testing.T) {
	m, pi := solvedTiny(t)
	floor := m.BER(pi)
	open, err := m.EyeOpening(pi, 100*floor)
	if err != nil {
		t.Fatal(err)
	}
	if open <= 0 || open > 2*m.Spec.Threshold {
		t.Fatalf("eye opening %g UI", open)
	}
	// A looser target opens the eye wider.
	wider, err := m.EyeOpening(pi, 1e4*floor)
	if err != nil {
		t.Fatal(err)
	}
	if wider < open {
		t.Fatalf("eye narrowed with looser target: %g -> %g", open, wider)
	}
	// Unreachable target: zero opening.
	closed, err := m.EyeOpening(pi, floor/10)
	if err != nil {
		t.Fatal(err)
	}
	if closed != 0 {
		t.Fatalf("impossible target gave opening %g", closed)
	}
	if _, err := m.EyeOpening(pi, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestCorrectionActivityBalancesDrift(t *testing.T) {
	m, pi := solvedTiny(t)
	act := m.CorrectionActivity(pi)
	if act.UpRate <= 0 || act.DownRate <= 0 {
		t.Fatalf("degenerate activity: %+v", act)
	}
	// At equilibrium (away from grid saturation) the net correction per
	// bit cancels the n_r drift mean. The tiny model saturates a little,
	// so allow 20% slack.
	driftMean := m.Spec.Drift.Mean()
	if math.Abs(act.NetUIPerBit+driftMean) > 0.2*driftMean {
		t.Fatalf("net correction %.6g does not balance drift %.6g",
			act.NetUIPerBit, driftMean)
	}
}

func TestPhaseAutocorrelationDecays(t *testing.T) {
	m, pi := solvedTiny(t)
	rho, err := m.PhaseAutocorrelation(pi, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho[0]-1) > 1e-12 {
		t.Fatalf("rho(0) = %g", rho[0])
	}
	if math.Abs(rho[50]) > 0.5*math.Abs(rho[1]) {
		t.Fatalf("autocorrelation failed to decay: rho(1)=%g rho(50)=%g", rho[1], rho[50])
	}
}

func TestPhaseNoiseSpectrum(t *testing.T) {
	m, pi := solvedTiny(t)
	freqs := []float64{0.01, 0.05, 0.2, 0.5}
	psd, err := m.PhaseNoiseSpectrum(pi, 400, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range psd {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("psd[%d] = %g", i, s)
		}
	}
	// The loop tracks slowly and dithers: phase noise concentrates at low
	// frequencies, so the lowest bin dominates the Nyquist bin.
	if psd[0] <= psd[len(psd)-1] {
		t.Fatalf("no low-frequency dominance: %v", psd)
	}
	// Parseval-style sanity: integrating S over (0, 0.5] with the window
	// recovers the stationary variance within a factor ~2 (windowing and
	// coarse frequency sampling).
	marg := m.PhaseMarginal(pi)
	mu, varSum := 0.0, 0.0
	for mi, p := range marg {
		mu += p * m.PhaseValue(mi)
	}
	for mi, p := range marg {
		d := m.PhaseValue(mi) - mu
		varSum += p * d * d
	}
	grid := 64
	fs := make([]float64, grid)
	for i := range fs {
		fs[i] = 0.5 * float64(i+1) / float64(grid)
	}
	dense, err := m.PhaseNoiseSpectrum(pi, 400, fs)
	if err != nil {
		t.Fatal(err)
	}
	integral := 0.0
	for _, s := range dense {
		integral += s * (0.5 / float64(grid)) * 2 // one-sided → total power
	}
	if integral < varSum/3 || integral > varSum*3 {
		t.Fatalf("spectrum integral %g vs variance %g", integral, varSum)
	}
	if _, err := m.PhaseNoiseSpectrum(pi, 0, freqs); err == nil {
		t.Error("zero maxLag accepted")
	}
}

func TestErrorProbVectorMatchesBER(t *testing.T) {
	m, pi := solvedTiny(t)
	e := m.ErrorProbVector()
	acc := 0.0
	for i, p := range pi {
		acc += p * e[i]
	}
	if d := math.Abs(acc - m.BER(pi)); d > 1e-15 {
		t.Fatalf("E[errorProb] differs from BER by %g", d)
	}
}

func TestFrameErrorRate(t *testing.T) {
	m, pi := solvedTiny(t)
	ber := m.BER(pi)
	for _, frame := range []int{1, 64, 512} {
		fer, err := m.FrameErrorRate(pi, frame)
		if err != nil {
			t.Fatal(err)
		}
		if fer <= 0 || fer >= 1 {
			t.Fatalf("frame %d: FER = %g", frame, fer)
		}
		// FER is bounded by the union bound n·BER and is at least the
		// single-bit error probability.
		if fer > float64(frame)*ber*1.0000001 {
			t.Fatalf("frame %d: FER %g exceeds union bound %g", frame, fer, float64(frame)*ber)
		}
		if frame == 1 && math.Abs(fer-ber) > 1e-15 {
			t.Fatalf("single-bit FER %g != BER %g", fer, ber)
		}
	}
	if _, err := m.FrameErrorRate(pi, 0); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestFrameErrorsCluster(t *testing.T) {
	// Errors correlate through the loop state, so the exact FER must be
	// at most the i.i.d. estimate (clustering lowers the chance that a
	// frame is hit at least once, at fixed BER).
	m, pi := solvedTiny(t)
	ber := m.BER(pi)
	frame := 256
	fer, err := m.FrameErrorRate(pi, frame)
	if err != nil {
		t.Fatal(err)
	}
	iid := 1 - math.Pow(1-ber, float64(frame))
	if fer > iid*1.001 {
		t.Fatalf("FER %g exceeds i.i.d. estimate %g: errors anti-cluster?", fer, iid)
	}
}

func TestAcquisitionTime(t *testing.T) {
	m, pi := solvedTiny(t)
	// Starting far from lock takes longer than starting at lock.
	far, err := m.AcquisitionTime(pi, 0.4, 0.05, 100000)
	if err != nil {
		t.Fatal(err)
	}
	near, err := m.AcquisitionTime(pi, 0, 0.05, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Fatalf("acquisition from 0.4 UI (%d) not slower than from lock (%d)", far, near)
	}
}

// TestLaplaceTailsDominateBER: swapping the Gaussian eye jitter for a
// Laplace law at the same RMS must raise the BER — the tail-shape
// sensitivity that makes jitter *distribution* (not just RMS) part of a
// link budget.
func TestLaplaceTailsDominateBER(t *testing.T) {
	// A fine-grid, quiet configuration: the stationary phase stays within
	// ~±0.1 UI, so the BER is pure eye-jitter tail mass at the threshold
	// — where the two laws differ by >15 orders of magnitude at 0.04 UI
	// RMS. (The coarse tiny model would hide this behind phase-excursion
	// mass.)
	s := DefaultSpec()
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: s.GridStep, Max: 2 * s.GridStep, Mean: 0.0002, Shape: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s.Drift = drift
	ber := func(eye dist.Continuous) float64 {
		s2 := s
		s2.EyeJitter = eye
		m, err := Build(s2)
		if err != nil {
			t.Fatal(err)
		}
		a, err := m.Solve(SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return a.BER
	}
	berG := ber(dist.NewGaussian(0, 0.04))
	berL := ber(dist.LaplaceFromStd(0.04))
	if berG > 1e-12 {
		t.Fatalf("Gaussian BER %g unexpectedly large", berG)
	}
	if berL < 1e-9 {
		t.Fatalf("Laplace BER %g unexpectedly small", berL)
	}
	if berL < 1e3*berG {
		t.Fatalf("tail-shape separation missing: Laplace %g vs Gaussian %g", berL, berG)
	}
}

func TestSumLawEyeJitter(t *testing.T) {
	// Adding a sinusoidal-jitter PMF to the eye law must raise the BER.
	s := tinySpec(t)
	base, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	piBase, err := base.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := dist.Quantize(dist.NewSinusoidal(0.15), s.GridStep, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	law, err := dist.NewSumLaw(s.EyeJitter, sj)
	if err != nil {
		t.Fatal(err)
	}
	s2 := s
	s2.EyeJitter = law
	withSJ, err := Build(s2)
	if err != nil {
		t.Fatal(err)
	}
	piSJ, err := withSJ.SolveDirect()
	if err != nil {
		t.Fatal(err)
	}
	if withSJ.BER(piSJ) <= base.BER(piBase) {
		t.Fatalf("sinusoidal jitter did not degrade BER: %g vs %g",
			withSJ.BER(piSJ), base.BER(piBase))
	}
}
