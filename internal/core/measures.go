package core

import (
	"errors"
	"fmt"

	"cdrstoch/internal/dist"
)

// Additional performance measures beyond the headline BER: bathtub curves
// and eye opening (the standard presentation of timing margin in CDR
// datasheets, and the form in which the paper's "eye opening" input
// specification is written), phase-correction activity of the selection
// loop, the recovered-clock phase autocorrelation (the paper names the
// autocorrelation of a function on the chain as the canonical follow-on
// computation), and frame-level error statistics.

// BERAtOffset returns the bit error rate when the sampling instant is
// displaced by offset UI from the eye center: an error occurs when
// Φ + n_w leaves (−Threshold + offset, Threshold + offset].
func (m *Model) BERAtOffset(pi []float64, offset float64) float64 {
	marg := m.PhaseMarginal(pi)
	t := m.Spec.Threshold
	ber := 0.0
	for mi, p := range marg {
		if p == 0 {
			continue
		}
		phi := m.PhaseValue(mi)
		ber += p * (dist.TailBelow(m.Spec.EyeJitter, -t+offset-phi) +
			dist.TailAbove(m.Spec.EyeJitter, t+offset-phi))
	}
	return ber
}

// Bathtub evaluates the BER at n sampling offsets spanning
// (−Threshold, +Threshold) and returns the offsets and BER values — the
// classic bathtub curve whose floor is the centered BER and whose walls
// set the timing margin.
func (m *Model) Bathtub(pi []float64, n int) (offsets, ber []float64, err error) {
	if n < 3 {
		return nil, nil, errors.New("core: bathtub needs at least 3 points")
	}
	t := m.Spec.Threshold
	offsets = make([]float64, n)
	ber = make([]float64, n)
	for i := 0; i < n; i++ {
		x := -t + 2*t*float64(i)/float64(n-1)
		offsets[i] = x
		ber[i] = m.BERAtOffset(pi, x)
	}
	return offsets, ber, nil
}

// EyeOpening returns the width (in UI) of the sampling-offset window whose
// BER stays at or below target, found by bisection from the eye center
// outwards. It returns 0 when even the centered BER exceeds the target.
func (m *Model) EyeOpening(pi []float64, target float64) (float64, error) {
	if target <= 0 {
		return 0, errors.New("core: target BER must be positive")
	}
	if m.BERAtOffset(pi, 0) > target {
		return 0, nil
	}
	edge := func(dir float64) float64 {
		lo, hi := 0.0, m.Spec.Threshold
		for iter := 0; iter < 60; iter++ {
			mid := (lo + hi) / 2
			if m.BERAtOffset(pi, dir*mid) <= target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	return edge(+1) + edge(-1), nil
}

// CorrectionActivity reports the stationary rate of phase corrections.
type CorrectionActivity struct {
	// UpRate and DownRate are corrections per bit in each direction
	// (Up = counter overflow = retard by G; Down = advance by G).
	UpRate, DownRate float64
	// NetUIPerBit is the mean phase correction per bit in UI
	// (negative = net retard), which at equilibrium balances the n_r
	// drift.
	NetUIPerBit float64
}

// CorrectionActivity computes the stationary phase-correction rates: the
// probability per bit that the counter overflows (underflows) and steps
// the phase mux. At equilibrium the net correction cancels the mean of
// n_r — a useful model sanity check and the activity figure for the phase
// selection logic.
func (m *Model) CorrectionActivity(pi []float64) CorrectionActivity {
	var act CorrectionActivity
	topC := m.C - 1 // counter value +(L−1): next LEAD overflows
	botC := 0       // counter value −(L−1): next LAG underflows
	for d := 0; d < m.D; d++ {
		pt := m.Spec.transProb(d)
		if pt == 0 {
			continue
		}
		for mi := 0; mi < m.M; mi++ {
			pLead, pLag, _ := m.pdProbs(m.PhaseValue(mi))
			act.UpRate += pi[m.StateIndex(d, topC, mi)] * pt * pLead
			act.DownRate += pi[m.StateIndex(d, botC, mi)] * pt * pLag
		}
	}
	act.NetUIPerBit = (act.DownRate - act.UpRate) * m.Spec.CorrectionStep
	return act
}

// PhaseAutocorrelation returns the normalized autocorrelation sequence of
// the phase error under stationarity for lags 0..maxLag — the recovered
// clock's phase memory, from which loop-bandwidth behavior can be read.
func (m *Model) PhaseAutocorrelation(pi []float64, maxLag int) ([]float64, error) {
	ch, err := m.Chain()
	if err != nil {
		return nil, err
	}
	f := make([]float64, m.NumStates())
	for i := range f {
		f[i] = m.PhaseValue(i % m.M)
	}
	return ch.Autocorrelation(pi, f, maxLag)
}

// PhaseNoiseSpectrum evaluates the one-sided power spectral density of
// the recovered clock's phase error at the given normalized frequencies
// (cycles/bit, in (0, 0.5]) — the spectral form of "specifications on the
// recovered clock jitter". maxLag truncates the underlying autocovariance
// sum and should exceed the loop's correlation time (a few counter
// periods).
func (m *Model) PhaseNoiseSpectrum(pi []float64, maxLag int, freqs []float64) ([]float64, error) {
	ch, err := m.Chain()
	if err != nil {
		return nil, err
	}
	f := make([]float64, m.NumStates())
	for i := range f {
		f[i] = m.PhaseValue(i % m.M)
	}
	return ch.SpectralDensity(pi, f, maxLag, freqs)
}

// ErrorProbVector returns the per-state bit-error probability
// P(|Φ_i + n_w| > Threshold), the event-probability input to frame-level
// (survival) analysis.
func (m *Model) ErrorProbVector() []float64 {
	t := m.Spec.Threshold
	out := make([]float64, m.NumStates())
	for i := range out {
		phi := m.PhaseValue(i % m.M)
		out[i] = dist.TailBelow(m.Spec.EyeJitter, -t-phi) +
			dist.TailAbove(m.Spec.EyeJitter, t-phi)
	}
	return out
}

// FrameErrorRate returns P(at least one bit error in a frame of frameBits
// consecutive bits), starting from the stationary ensemble pi. Unlike the
// i.i.d. approximation 1 − (1−BER)^n, this accounts for the correlation
// of errors through the loop state (errors cluster when the phase
// wanders).
func (m *Model) FrameErrorRate(pi []float64, frameBits int) (float64, error) {
	if frameBits <= 0 {
		return 0, fmt.Errorf("core: frame length %d", frameBits)
	}
	ch, err := m.Chain()
	if err != nil {
		return 0, err
	}
	return ch.FrameErrorRate(pi, m.ErrorProbVector(), frameBits)
}

// AcquisitionTime returns the number of bits needed for the loop, started
// at phase offset startPhi (counter reset, run length 0), to bring the
// total-variation distance to the stationary distribution below eps.
func (m *Model) AcquisitionTime(pi []float64, startPhi float64, eps float64, maxBits int) (int, error) {
	ch, err := m.Chain()
	if err != nil {
		return 0, err
	}
	x0 := make([]float64, m.NumStates())
	x0[m.StateIndex(0, m.Spec.CounterLen-1, m.PhaseIndex(startPhi))] = 1
	return ch.MixingTime(x0, pi, eps, maxBits)
}
