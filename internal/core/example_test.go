package core_test

import (
	"fmt"
	"log"

	"cdrstoch/internal/core"
	"cdrstoch/internal/dist"
)

// Example builds a small CDR model, solves it exactly, and prints the
// headline measures — the library's minimal end-to-end path.
func Example() {
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: h / 16, Shape: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.08),
		Drift:             drift,
		CounterLen:        3,
		Threshold:         0.5,
	}
	model, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	pi, err := model.SolveDirect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d\n", model.NumStates())
	fmt.Printf("BER:    %.2e\n", model.BER(pi))
	// Output:
	// states: 170
	// BER:    8.10e-04
}

// ExampleModel_Bathtub evaluates the BER at off-center sampling points.
func ExampleModel_Bathtub() {
	h := 1.0 / 16
	drift, err := dist.DriftPMF(dist.DriftSpec{Step: h, Max: 2 * h, Mean: 0, Shape: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.Spec{
		GridStep:          h,
		PhaseMax:          0.5,
		CorrectionStep:    2 * h,
		TransitionDensity: 0.5,
		MaxRunLength:      2,
		EyeJitter:         dist.NewGaussian(0, 0.1),
		Drift:             drift,
		CounterLen:        2,
		Threshold:         0.5,
	}
	model, err := core.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	pi, err := model.SolveDirect()
	if err != nil {
		log.Fatal(err)
	}
	offsets, ber, err := model.Bathtub(pi, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i := range offsets {
		fmt.Printf("offset %+.1f UI: BER %.0e\n", offsets[i], ber[i])
	}
	// Output:
	// offset -0.5 UI: BER 5e-01
	// offset +0.0 UI: BER 2e-03
	// offset +0.5 UI: BER 5e-01
}
