package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"cdrstoch/internal/dist"
	"cdrstoch/internal/kron"
	"cdrstoch/internal/lump"
	"cdrstoch/internal/markov"
	"cdrstoch/internal/multigrid"
	"cdrstoch/internal/passage"
)

// ErrUnconverged marks a solve that exhausted its cycle budget without
// reaching tolerance. Callers (the HTTP service in particular) match it
// with errors.Is to trigger postmortem handling — flight-recorder dumps
// attached to the error response — distinct from plain input errors.
// It aliases the kron package's sentinel (core imports kron, never the
// reverse), so a matrix-free solve's failure matches under either name.
var ErrUnconverged = kron.ErrUnconverged

// SolveOptions configures the stationary analysis.
type SolveOptions struct {
	// Multigrid configures the multilevel solver. The zero value selects
	// robust defaults (W-cycles, 2+2 Gauss–Seidel smoothing, 1e−12).
	Multigrid multigrid.Config
	// MinSegLen stops the phase-pair coarsening once segments shrink to
	// this many phase points. Default 4.
	MinSegLen int
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.MinSegLen <= 0 {
		o.MinSegLen = 4
	}
	cfg := &o.Multigrid
	if cfg.Cycle == multigrid.VCycle && cfg.PreSmooth == 0 && cfg.PostSmooth == 0 {
		cfg.Cycle = multigrid.WCycle
		cfg.PreSmooth = 2
		cfg.PostSmooth = 2
	}
	return o
}

// Analysis bundles the stationary solution and the performance measures
// the paper reports for each figure panel.
type Analysis struct {
	// Pi is the stationary distribution over the product state space.
	Pi []float64
	// BER is the stationary probability of a detection error,
	// P(|Φ + n_w| > Threshold).
	BER float64
	// Multigrid reports the solver statistics (cycles, residual, levels).
	Multigrid multigrid.Result
	// SolveTime is the wall-clock stationary-solve duration (the paper's
	// "Solvetime" annotation).
	SolveTime time.Duration
}

// Hierarchy builds the multigrid partition chain for this model. First,
// pairs of consecutive phase grid points are lumped within every
// (data, counter) segment — the paper's coarsening strategy — level after
// level, until segments reach minSegLen points. Then, to keep the coarsest
// problem small even for long loop-filter counters, coarsening continues
// across the counter dimension (adjacent counter states merge
// elementwise) until at most three counter states remain per data state.
func (m *Model) Hierarchy(minSegLen int) ([]*lump.Partition, error) {
	parts, err := multigrid.BuildPairHierarchy(m.M, m.D*m.C, minSegLen)
	if err != nil {
		return nil, err
	}
	segLen := m.M
	for segLen > minSegLen {
		segLen = (segLen + 1) / 2
	}
	cp, err := m.counterParts(segLen)
	if err != nil {
		return nil, err
	}
	return append(parts, cp...), nil
}

// counterParts continues the coarsening across the counter dimension —
// adjacent counter states merge elementwise — once the phase dimension
// has been reduced to segLen points per segment, until at most three
// counter states remain per data state. Shared by the explicit hierarchy
// (Hierarchy, below the phase-pair levels) and the matrix-free solve
// (below the aggregated Kronecker restriction).
func (m *Model) counterParts(segLen int) ([]*lump.Partition, error) {
	var parts []*lump.Partition
	counters := m.C
	for counters > 3 {
		part, err := lump.PairSegmentsElementwise(segLen, counters, m.D)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		counters = (counters + 1) / 2
	}
	return parts, nil
}

// Solve computes the stationary distribution with the multilevel solver
// and derives the standard performance measures.
func (m *Model) Solve(opt SolveOptions) (*Analysis, error) {
	opt = opt.withDefaults()
	parts, err := m.Hierarchy(opt.MinSegLen)
	if err != nil {
		return nil, err
	}
	solver, err := multigrid.New(m.P, parts, opt.Multigrid)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := solver.Solve(nil)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if !res.Converged {
		return nil, fmt.Errorf("core: multigrid %w: %v", ErrUnconverged, res)
	}
	return &Analysis{
		Pi:        res.Pi,
		BER:       m.BER(res.Pi),
		Multigrid: res,
		SolveTime: elapsed,
	}, nil
}

// SolveKron computes the stationary distribution without materializing
// the TPM: the chain's Kronecker descriptor (the model's Desc, built on
// demand for explicit models) stays implicit at the finest level of the
// multigrid.KronSolver, whose first restriction folds the phase-pair
// coarsening — all the levels Hierarchy would build explicitly, down to
// MinSegLen — into one aggregated explicit coarse matrix, with the
// counter lumping continuing below it. Memory stays at a few state-sized
// vectors plus the coarse hierarchy; the product matrix never exists.
func (m *Model) SolveKron(opt SolveOptions) (*Analysis, error) {
	opt = opt.withDefaults()
	d := m.Desc
	if d == nil {
		var err error
		d, err = m.BuildDescriptor()
		if err != nil {
			return nil, err
		}
		m.Desc = d
	}
	// The implicit restriction folds at most two phase pairings: deeper
	// folds skip too many smoothing levels and the cycle stalls on wide
	// phase grids, while two keep the explicit coarse matrix at ~1/16 of
	// the product nnz. Below it, phase pairing continues level by level on
	// the explicit coarse hierarchy exactly as the assembled solve does.
	const maxImplicitAgg = 2
	agg := 0
	mc := m.M
	for mc > opt.MinSegLen && agg < maxImplicitAgg {
		mc = (mc + 1) / 2
		agg++
	}
	if agg == 0 {
		// Phase grid already at or below MinSegLen: the implicit restriction
		// still needs one coarsening step to produce its explicit level.
		if m.M < 2 {
			return nil, errors.New("core: phase grid too small for the matrix-free solver")
		}
		agg = 1
		mc = (m.M + 1) / 2
	}
	workers := opt.Multigrid.Workers
	if workers == 0 {
		if opt.Multigrid.Pool != nil {
			workers = opt.Multigrid.Pool.Workers()
		} else {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	d.SetWorkers(workers)
	var parts []*lump.Partition
	segLen := mc
	if segLen > opt.MinSegLen {
		pp, err := multigrid.BuildPairHierarchy(segLen, m.D*m.C, opt.MinSegLen)
		if err != nil {
			return nil, err
		}
		parts = pp
		for segLen > opt.MinSegLen {
			segLen = (segLen + 1) / 2
		}
	}
	cp, err := m.counterParts(segLen)
	if err != nil {
		return nil, err
	}
	parts = append(parts, cp...)
	solver, err := multigrid.NewKron(d, agg, parts, opt.Multigrid)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := solver.Solve(nil)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if !res.Converged {
		return nil, fmt.Errorf("core: multigrid %w: %v", ErrUnconverged, res)
	}
	return &Analysis{
		Pi:        res.Pi,
		BER:       m.BER(res.Pi),
		Multigrid: res,
		SolveTime: elapsed,
	}, nil
}

// SolveDirect computes the stationary distribution with dense GTH — exact,
// subtraction-free, O(n³); for small models and cross-validation.
func (m *Model) SolveDirect() ([]float64, error) {
	if m.P == nil {
		return nil, errors.New("core: SolveDirect requires an assembled TPM")
	}
	ch, err := markov.New(m.P)
	if err != nil {
		return nil, err
	}
	return ch.StationaryDirect()
}

// BER integrates the tails of Φ + n_w beyond the decision threshold under
// the given stationary distribution: for each phase value the eye jitter
// tail probabilities are evaluated with deep-tail-safe CDF complements.
func (m *Model) BER(pi []float64) float64 {
	if len(pi) != m.NumStates() {
		panic("core: BER distribution length mismatch")
	}
	marg := m.PhaseMarginal(pi)
	t := m.Spec.Threshold
	ber := 0.0
	for mi, p := range marg {
		if p == 0 {
			continue
		}
		phi := m.PhaseValue(mi)
		errProb := dist.TailBelow(m.Spec.EyeJitter, -t-phi) + dist.TailAbove(m.Spec.EyeJitter, t-phi)
		ber += p * errProb
	}
	return ber
}

// PhaseMarginal returns the stationary marginal over the phase grid
// (length M, sums to 1).
func (m *Model) PhaseMarginal(pi []float64) []float64 {
	out := make([]float64, m.M)
	for idx, p := range pi {
		out[idx%m.M] += p
	}
	return out
}

// CounterMarginal returns the stationary marginal over counter states
// (length C).
func (m *Model) CounterMarginal(pi []float64) []float64 {
	out := make([]float64, m.C)
	for idx, p := range pi {
		out[(idx/m.M)%m.C] += p
	}
	return out
}

// DataMarginal returns the stationary marginal over data-source states
// (length D).
func (m *Model) DataMarginal(pi []float64) []float64 {
	out := make([]float64, m.D)
	for idx, p := range pi {
		out[idx/(m.M*m.C)] += p
	}
	return out
}

// PhasePlusJitterPDF evaluates the density of Φ + n_w on a uniform grid of
// n points spanning [lo, hi]: entry j is P(Φ + n_w ∈ bin_j)/width. This is
// the second curve of the paper's Figure 4/5 panels (the PD's effective
// input), whose tails beyond ±Threshold are the BER.
func (m *Model) PhasePlusJitterPDF(pi []float64, lo, hi float64, n int) ([]float64, error) {
	if n <= 0 || hi <= lo {
		return nil, errors.New("core: bad evaluation grid")
	}
	marg := m.PhaseMarginal(pi)
	width := (hi - lo) / float64(n)
	out := make([]float64, n)
	for mi, p := range marg {
		if p == 0 {
			continue
		}
		phi := m.PhaseValue(mi)
		for j := 0; j < n; j++ {
			a := lo + float64(j)*width
			b := a + width
			mass := m.Spec.EyeJitter.CDF(b-phi) - m.Spec.EyeJitter.CDF(a-phi)
			out[j] += p * mass / width
		}
	}
	return out, nil
}

// PhasePDF returns the stationary phase-error density: marginal
// probability per grid cell divided by the grid step (first curve of the
// figure panels).
func (m *Model) PhasePDF(pi []float64) []float64 {
	marg := m.PhaseMarginal(pi)
	for i := range marg {
		marg[i] /= m.Spec.GridStep
	}
	return marg
}

// SlipSet marks the states whose phase error has reached the decision
// threshold: |Φ| ≥ Threshold. Reaching it means the loop is about to
// re-lock onto a neighboring bit (a cycle slip).
func (m *Model) SlipSet() []bool {
	out := make([]bool, m.NumStates())
	for idx := range out {
		phi := m.PhaseValue(idx % m.M)
		if phi >= m.Spec.Threshold || phi <= -m.Spec.Threshold {
			out[idx] = true
		}
	}
	return out
}

// SlipStats computes the stationary entry flux into the slip set and the
// implied mean time between cycle slips (in bit periods).
func (m *Model) SlipStats(pi []float64) (passage.FluxResult, error) {
	if m.P != nil {
		return passage.SlipFlux(m.P, pi, m.SlipSet())
	}
	if m.Desc != nil {
		return passage.SlipFluxOp(m.Desc, pi, m.SlipSet())
	}
	return passage.FluxResult{}, errors.New("core: model has no transition backend")
}

// WrapSlipRate returns the stationary probability per bit that the phase
// error wraps across the ±0.5 UI boundary — the exact cycle-slip rate of
// a WrapPhase model — together with the implied mean time between slips.
// It errors on saturating models, whose slip measure is SlipStats.
func (m *Model) WrapSlipRate(pi []float64) (rate, meanTimeBetween float64, err error) {
	if m.wrapSlip == nil {
		return 0, 0, errors.New("core: WrapSlipRate requires a WrapPhase model")
	}
	if len(pi) != m.NumStates() {
		return 0, 0, errors.New("core: distribution length mismatch")
	}
	for i, p := range pi {
		rate += p * m.wrapSlip[i]
	}
	if rate <= 0 {
		return rate, math.Inf(1), nil
	}
	return rate, 1 / rate, nil
}

// SlipQuasiStationary computes the quasi-stationary distribution and the
// asymptotic slip hazard: conditioned on never having slipped, the loop
// settles into ν and slips with probability HazardPerStep each bit. The
// conditioned BER m.BER(ν) is the error rate of a link that is restarted
// on every slip.
func (m *Model) SlipQuasiStationary() (passage.QuasiStationaryResult, error) {
	return passage.QuasiStationary(m.P, m.SlipSet(), 1e-12, 500000)
}

// SlipQuasiStationaryOpt is SlipQuasiStationary with the full option set:
// a cancellation (and cost-accounting) context, a shared worker team, and
// tolerance overrides. Zero-valued options keep SlipQuasiStationary's
// defaults. The service path uses this form so quasi-stationary sweeps
// respect request deadlines and attribute their kernel work.
func (m *Model) SlipQuasiStationaryOpt(opt passage.QSOptions) (passage.QuasiStationaryResult, error) {
	if opt.Tol <= 0 {
		opt.Tol = 1e-12
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 500000
	}
	return passage.QuasiStationaryOpt(m.P, m.SlipSet(), opt)
}

// MeanTimeToSlip solves the expected first-passage time (in bit periods)
// from the locked state to the slip set with the dense solver. Feasible
// for models up to a few thousand states; larger models should use
// SlipStats.
func (m *Model) MeanTimeToSlip() (float64, error) {
	times, err := passage.HittingTimesDense(m.P, m.SlipSet())
	if err != nil {
		return 0, err
	}
	return times[m.LockedIndex()], nil
}

// Chain wraps the transition backend in a markov.Chain: the TPM when one
// was assembled (full structural queries and solvers), the Kronecker
// descriptor otherwise (the operator-capable solvers).
func (m *Model) Chain() (*markov.Chain, error) {
	if m.P == nil && m.Desc != nil {
		return markov.NewOperator(m.Desc)
	}
	if m.P == nil {
		return nil, errors.New("core: model has no transition backend")
	}
	return markov.New(m.P)
}

// FigureHeader renders the annotation line the paper prints above each
// figure panel: counter length, n_w standard deviation, max |n_r| and BER.
func (m *Model) FigureHeader(ber float64) string {
	return fmt.Sprintf("COUNTER: %d  STDnw: %.1e  MAXnr: %.1e  BER: %.1e",
		m.Spec.CounterLen, m.Spec.EyeJitter.Std(), m.Spec.Drift.MaxAbs(), ber)
}

// FigureFooter renders the annotation line below each panel: state-space
// size, multigrid cycles, matrix formation time and solve time in minutes.
func (m *Model) FigureFooter(a *Analysis) string {
	return fmt.Sprintf("Size: %d  Iter: %d  Matrixformtime: %.2f mins  Solvetime: %.2f mins",
		m.NumStates(), a.Multigrid.Cycles, m.FormTime.Minutes(), a.SolveTime.Minutes())
}

// Describe returns a multi-line summary of the model dimensions.
func (m *Model) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CDR model: %d states (data %d × counter %d × phase %d)\n",
		m.NumStates(), m.D, m.C, m.M)
	fmt.Fprintf(&b, "  grid step %.5f UI on ±%.3f UI, correction %.5f UI\n",
		m.Spec.GridStep, m.Spec.PhaseMax, m.Spec.CorrectionStep)
	fmt.Fprintf(&b, "  transition density %.2f, max run %d, counter length %d\n",
		m.Spec.TransitionDensity, m.Spec.MaxRunLength, m.Spec.CounterLen)
	fmt.Fprintf(&b, "  n_w std %.4g UI, n_r mean %.4g max %.4g UI\n",
		m.Spec.EyeJitter.Std(), m.Spec.Drift.Mean(), m.Spec.Drift.MaxAbs())
	if m.P != nil {
		fmt.Fprintf(&b, "  TPM nnz %d, bandwidth %d", m.P.NNZ(), m.P.Bandwidth())
	} else if m.Desc != nil {
		fmt.Fprintf(&b, "  Kronecker descriptor: %d terms, %d stored entries (%d B)",
			m.Desc.NumTerms(), m.Desc.NNZ(), m.Desc.MemoryBytes())
	}
	return b.String()
}
